// E12 — trace audit: flight-recorder tracing under a faulty,
// resumption-heavy soak (DESIGN.md §11).
//
// The scenario is deliberately the nastiest one the repo can stage: burst
// loss on the wire, a periodically wedged main loop (so the WDT bites and
// warm-resets the board mid-traffic), and reconnect-heavy TLS clients that
// carry resumption tickets across board deaths. The same seeded scenario
// runs twice — tracing disabled, then enabled — and the bench enforces:
//
//   passivity      — tracing changes nothing: the traced run completes and
//                    fails exactly the same sessions, boots the same number
//                    of times (tracing draws no PRNG, ticks no clock);
//   completeness   — audit_trace() finds no orphan connections (every
//                    ESTABLISHED reaches a CLOSED/TIME_WAIT terminal, even
//                    across board deaths), no orphan handshake spans, no
//                    handshake span escaping its connection's lifetime;
//   coverage       — the trace saw resumed handshakes and at least one
//                    watchdog bite, i.e. the interesting paths were hit;
//   black box      — the battery-SRAM flight recorder's retained tail is
//                    byte-for-byte the suffix of the full trace, and the
//                    WDT postmortem carries the pre-death trace lines;
//   zero when off  — the disabled run emits no events at all.
//
// Tracing overhead (host wall-clock, traced vs untraced) is printed to
// stdout ONLY — never into the JSON, which carries exclusively virtual /
// deterministic counts so BENCH_E12.json is byte-reproducible per seed.
// Exit status is 1 on any violated invariant.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "services/supervisor.h"
#include "telemetry/flightrec.h"
#include "telemetry/trace.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

struct SoakResult {
  bool ok = true;
  int completed = 0;
  int failed = 0;
  int stuck = 0;
  u64 resumed = 0;  // completed sessions that took the abbreviated path
  u64 boots = 0;
  u64 wdt_bites = 0;
  u64 elapsed_virtual_ms = 0;
  double wall_ms = 0.0;  // host time; stdout only, NEVER in the JSON

  // Traced run only.
  u64 events = 0;
  u64 ring_size = 0;
  u64 ring_total = 0;
  bool ring_matches = false;
  u64 postmortem_trace_lines = 0;
  u64 pcap_packets = 0;
  u64 pcap_bytes = 0;
};

struct LiveClient {
  std::unique_ptr<services::Client> client;
};

SoakResult run_soak(u64 seed, bool traced, u64 max_ms, u64 spawn_until,
                    std::vector<telemetry::TraceEvent>* events_out) {
  auto& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(traced);
  tracer.set_pcap_capture(traced);

  net::SimNet medium(seed);
  medium.set_fault_plan(net::FaultPlan::burst_loss(0.02));
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  // A WDT bite can destroy the board mid-close: the client has its FIN acked
  // (FIN_WAIT_2) but the peer's FIN dies with the board, and FIN_WAIT_2 has
  // no retransmission to time out on. Without this the trace audit would
  // flag a genuinely half-open TCB as an orphan forever. 10s of silence is
  // far beyond the retx give-up horizon, and the post-soak drain runs 30s.
  backend_host.set_fin_wait2_timeout_ms(10'000);
  client_host.set_fin_wait2_timeout_ms(10'000);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::ServiceBoardConfig cfg;
  cfg.redirector.listen_port = 4433;
  cfg.redirector.backend_ip = 2;
  cfg.redirector.backend_port = 8000;
  cfg.redirector.secure = true;
  cfg.redirector.psk = bytes_of("e12");
  cfg.redirector.handler_slots = 3;
  cfg.redirector.tls = issl::Config::embedded_port();
  cfg.redirector.tls.resumption = true;
  cfg.redirector.session_cache_capacity = 8;
  cfg.redirector.crypto_cycles_handshake = 2'000'000;
  cfg.redirector.crypto_cycles_resumed_handshake = 500'000;
  cfg.board_ip = 1;
  cfg.net_seed = seed * 131;
  cfg.wdt_period_ms = 400;
  cfg.reboot_ms = 2;
  services::ServiceBoard board(medium, cfg);

  issl::Config ctls = issl::Config::embedded_port();
  ctls.resumption = true;

  const std::vector<u8> payload = bytes_of("ping over resumed tls");
  SoakResult r;
  std::vector<LiveClient> live;
  u64 spawned = 0;
  constexpr std::size_t kConcurrency = 2;

  auto spawn = [&]() {
    LiveClient lc;
    lc.client = std::make_unique<services::Client>(
        client_host, 1, 4433, true, ctls, bytes_of("e12"),
        seed * 977 + ++spawned);
    lc.client->set_idle_give_up(25'000);
    (void)lc.client->start();
    (void)lc.client->send(payload);
    live.push_back(std::move(lc));
  };

  // First wedge lands mid-soak so the bite kills live handshakes/forwards;
  // the reschedule guarantees at least two bites inside the spawn window.
  u64 wedge_countdown = 6'000;

  const auto wall0 = std::chrono::steady_clock::now();
  u64 t = 0;
  for (; t < max_ms; ++t) {
    while (t < spawn_until && live.size() < kConcurrency) spawn();

    if (board.up() && t < spawn_until && wedge_countdown > 0 &&
        --wedge_countdown == 0) {
      board.wedge_for_ms(cfg.wdt_period_ms + 200);  // guarantee a bite
      wedge_countdown = 9'000;
    }

    board.poll();
    backend.poll();
    for (std::size_t i = 0; i < live.size();) {
      services::Client& c = *live[i].client;
      const bool alive = c.poll();
      const bool done = c.received().size() >= payload.size();
      if (done || !alive || c.failed()) {
        if (done) {
          ++r.completed;
          if (c.resumed()) ++r.resumed;
        } else {
          ++r.failed;
        }
        // Reconnect (carrying the earned ticket) while load is on; settle
        // cleanly afterwards.
        if (t < spawn_until) {
          if (done) c.close();
          if (!c.reconnect().is_ok() || !c.send(payload).is_ok()) {
            r.ok = false;
            live.erase(live.begin() + static_cast<long>(i));
            continue;
          }
        } else {
          c.close();
          live.erase(live.begin() + static_cast<long>(i));
          continue;
        }
      }
      ++i;
    }

    medium.tick(1);
    if (t >= spawn_until && live.empty()) break;
  }
  r.stuck = static_cast<int>(live.size());
  live.clear();

  // Drain: backend conns whose peer died with the board never see traffic
  // again, so close them and let TCP run to a terminal (FIN exchange, or
  // RST/give-up against a dead address). Keeps the trace free of half-open
  // connections the audit would rightly flag.
  backend.close_all();
  for (u64 d = 0; d < 30'000; ++d) {
    board.poll();
    backend.poll();
    medium.tick(1);
  }
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall0)
                  .count();

  r.elapsed_virtual_ms = medium.now_ms();
  r.boots = board.boots();
  r.wdt_bites = board.wdt_bites();

  if (traced) {
    const auto& ev = tracer.events();
    r.events = ev.size();
    // Black box: the ring's retained tail must be exactly the last
    // size() events of the full trace, in order.
    const telemetry::FlightRecorder& ring = board.battery().flightrec;
    const auto tail = ring.tail();
    r.ring_size = tail.size();
    r.ring_total = ring.total();
    r.ring_matches =
        ring.total() == ev.size() && tail.size() <= ev.size() &&
        std::equal(tail.begin(), tail.end(), ev.end() - tail.size());
    for (const std::string& line : board.postmortem()) {
      if (line.rfind("trace ", 0) == 0) ++r.postmortem_trace_lines;
    }
    r.pcap_packets = tracer.pcap_packets();
    r.pcap_bytes = tracer.pcap_file_bytes().size();
    if (events_out != nullptr) *events_out = ev;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.flag_int("seed", 0x12E));
  const u64 max_ms = static_cast<u64>(args.flag_int("max-ms", 60'000));
  const u64 spawn_until =
      static_cast<u64>(args.flag_int("spawn-until-ms", 25'000));

  std::puts("================================================================");
  std::puts("E12: trace audit -- causal spans under a faulty resumption soak");
  std::printf("    seed=%llu  budget=%llu virt ms  load until=%llu virt ms\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(max_ms),
              static_cast<unsigned long long>(spawn_until));
  std::puts("================================================================\n");

  // Untraced first (the baseline the traced run must not perturb), traced
  // second so --trace/--pcap artifacts reflect the traced run.
  const SoakResult off = run_soak(seed, false, max_ms, spawn_until, nullptr);
  const bool disabled_zero_events =
      telemetry::Tracer::global().events().empty();
  std::vector<telemetry::TraceEvent> events;
  const SoakResult on = run_soak(seed, true, max_ms, spawn_until, &events);

  const telemetry::TraceAudit audit = telemetry::audit_trace(events);
  u64 layer_counts[telemetry::kTraceLayers] = {};
  for (const auto& e : events) {
    if (e.layer < telemetry::kTraceLayers) ++layer_counts[e.layer];
  }

  std::printf("%-10s %5s %5s %5s %7s %5s %5s %9s %9s\n", "run", "done",
              "fail", "stuck", "resumed", "boots", "wdt", "events",
              "virt ms");
  std::printf("%-10s %5d %5d %5d %7llu %5llu %5llu %9s %9llu\n", "untraced",
              off.completed, off.failed, off.stuck,
              static_cast<unsigned long long>(off.resumed),
              static_cast<unsigned long long>(off.boots),
              static_cast<unsigned long long>(off.wdt_bites), "-",
              static_cast<unsigned long long>(off.elapsed_virtual_ms));
  std::printf("%-10s %5d %5d %5d %7llu %5llu %5llu %9llu %9llu\n", "traced",
              on.completed, on.failed, on.stuck,
              static_cast<unsigned long long>(on.resumed),
              static_cast<unsigned long long>(on.boots),
              static_cast<unsigned long long>(on.wdt_bites),
              static_cast<unsigned long long>(on.events),
              static_cast<unsigned long long>(on.elapsed_virtual_ms));

  std::printf("\nper layer: net=%llu tcp=%llu issl=%llu service=%llu "
              "board=%llu\n",
              static_cast<unsigned long long>(layer_counts[0]),
              static_cast<unsigned long long>(layer_counts[1]),
              static_cast<unsigned long long>(layer_counts[2]),
              static_cast<unsigned long long>(layer_counts[3]),
              static_cast<unsigned long long>(layer_counts[4]));
  std::printf("audit: %zu conns, %llu established, %llu handshakes "
              "(%llu resumed), orphans conn=%llu hs=%llu nesting=%llu\n",
              audit.conns.size(),
              static_cast<unsigned long long>(audit.established_connections),
              static_cast<unsigned long long>(audit.handshakes_completed),
              static_cast<unsigned long long>(audit.handshakes_resumed),
              static_cast<unsigned long long>(audit.orphan_connections),
              static_cast<unsigned long long>(audit.orphan_handshakes),
              static_cast<unsigned long long>(audit.nesting_violations));
  std::printf("black box: ring %llu/%llu events, tail==suffix %s, "
              "postmortem trace lines %llu\n",
              static_cast<unsigned long long>(on.ring_size),
              static_cast<unsigned long long>(on.ring_total),
              on.ring_matches ? "yes" : "NO",
              static_cast<unsigned long long>(on.postmortem_trace_lines));
  std::printf("pcap: %llu packets, %llu bytes\n",
              static_cast<unsigned long long>(on.pcap_packets),
              static_cast<unsigned long long>(on.pcap_bytes));
  // Host wall-clock: stdout only. Single-run numbers on a shared CI box are
  // noisy — this is a smell test, not a gated figure.
  if (off.wall_ms > 0.0) {
    std::printf("tracing overhead: %.1f ms -> %.1f ms wall (%+.1f%%)\n",
                off.wall_ms, on.wall_ms,
                (on.wall_ms - off.wall_ms) / off.wall_ms * 100.0);
  }

  const bool behavior_identical =
      on.completed == off.completed && on.failed == off.failed &&
      on.stuck == off.stuck && on.resumed == off.resumed &&
      on.boots == off.boots && on.wdt_bites == off.wdt_bites &&
      on.elapsed_virtual_ms == off.elapsed_virtual_ms;

  int rc = 0;
  auto violation = [&rc](bool bad, const char* what) {
    if (bad) {
      std::fprintf(stderr, "E12 violation: %s\n", what);
      rc = 1;
    }
  };
  violation(!off.ok || !on.ok, "soak scenario failed to run");
  violation(off.stuck != 0 || on.stuck != 0, "half-open sessions at end");
  violation(!disabled_zero_events, "disabled tracer recorded events");
  violation(!behavior_identical, "tracing perturbed the scenario");
  violation(on.events == 0, "traced run recorded nothing");
  violation(audit.orphan_connections != 0, "orphan connections in trace");
  violation(audit.orphan_handshakes != 0, "orphan handshake spans");
  violation(audit.nesting_violations != 0, "handshake span escapes conn");
  // Diagnostic for the two span invariants: dump the offending connection's
  // full event list so a failure names the exact gap.
  if (audit.orphan_connections != 0 || audit.orphan_handshakes != 0) {
    for (const auto& ca : audit.conns) {
      const bool orphan_conn = ca.established && !ca.terminated;
      const bool orphan_hs =
          (ca.hs[0].started && !ca.hs[0].ended && !ca.has_terminal) ||
          (ca.hs[1].started && !ca.hs[1].ended && !ca.has_terminal);
      if (!orphan_conn && !orphan_hs) continue;
      std::fprintf(stderr, "-- conn %08x (%s):\n", ca.conn,
                   orphan_conn ? "no terminal after establish"
                               : "unfinished handshake");
      for (const auto& e : events) {
        if (e.conn != ca.conn) continue;
        std::fprintf(stderr, "   %s\n",
                     telemetry::format_trace_event(e).c_str());
      }
    }
  }
  violation(audit.handshakes_resumed == 0, "no resumed handshake traced");
  violation(on.wdt_bites == 0, "no watchdog bite in scenario");
  violation(!on.ring_matches, "flight-recorder tail != trace suffix");
  violation(on.postmortem_trace_lines == 0,
            "postmortem carries no flight-recorder lines");
  violation(on.pcap_packets == 0 || on.pcap_bytes <= 24,
            "pcap capture is empty");

  bench::JsonReport report("E12");
  report.result("disabled.zero_events", disabled_zero_events);
  report.result("behavior_identical", behavior_identical);
  report.result("soak.completed", on.completed);
  report.result("soak.failed_closed", on.failed);
  report.result("soak.half_open", on.stuck);
  report.result("soak.resumed_sessions", on.resumed);
  report.result("soak.boots", on.boots);
  report.result("soak.wdt_bites", on.wdt_bites);
  report.result("soak.elapsed_virtual_ms", on.elapsed_virtual_ms);
  report.result("trace.events", on.events);
  report.result("trace.events_net", layer_counts[0]);
  report.result("trace.events_tcp", layer_counts[1]);
  report.result("trace.events_issl", layer_counts[2]);
  report.result("trace.events_service", layer_counts[3]);
  report.result("trace.events_board", layer_counts[4]);
  report.result("audit.connections", static_cast<u64>(audit.conns.size()));
  report.result("audit.established", audit.established_connections);
  report.result("audit.handshakes_completed", audit.handshakes_completed);
  report.result("audit.handshakes_resumed", audit.handshakes_resumed);
  report.result("audit.orphan_connections", audit.orphan_connections);
  report.result("audit.orphan_handshakes", audit.orphan_handshakes);
  report.result("audit.nesting_violations", audit.nesting_violations);
  report.result("ring.size", on.ring_size);
  report.result("ring.total", on.ring_total);
  report.result("ring.tail_matches_suffix", on.ring_matches);
  report.result("ring.postmortem_trace_lines", on.postmortem_trace_lines);
  report.result("pcap.packets", on.pcap_packets);
  report.result("pcap.bytes", on.pcap_bytes);
  report.result("invariants_clean", rc == 0);
  report.write(args);

  return rc;
}
