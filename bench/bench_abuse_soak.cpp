// E15 — hostile-peer abuse soak: the secure redirector's front door under
// deterministic protocol abuse, plus a coverage-guided fuzz pass over the
// issl parse paths.
//
// E9 made the *network* hostile (loss, corruption, partitions); E15 makes
// the *peer* hostile: malformed and oversized records, truncated handshakes
// and length bombs, Slowloris byte-drips, ClientHello storms, mid-handshake
// resets, spoofed-source SYN floods against the counted backlog, and
// resumption-cache thrash — each a seeded HostileClient (src/abuse), all
// running against the full RmcRedirector while legitimate clients try to
// get real work done.
//
// Gates (exit 1 if any fails):
//   * never-wedge: every scenario settles inside the virtual-time budget —
//     no legit client stuck, every attacker's script ran to completion;
//   * zero corrupted plaintext: nothing a legit client received may differ
//     from its payload (the MAC must convert attacker bytes into failures,
//     never into data);
//   * attributable kills: every shed / watchdog abort / handshake timeout
//     the redirector counted appears in the flight recorder (PR 5), so a
//     post-incident trace explains every dropped connection;
//   * goodput floor: at least `floor` legit clients complete per scenario
//     (with bounded reconnect retries — being attacked is not an excuse to
//     serve nobody);
//   * fuzz pass: no input wedges a session (terminal state within the pump
//     budget), and coverage feedback demonstrably works.
//
// Everything derives from --seed; a fixed seed gives a byte-identical
// --json artifact. --smoke 1 runs only the fuzz pass (the CI fuzz-smoke
// step).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abuse/fuzz.h"
#include "abuse/hostile.h"
#include "bench_util.h"
#include "services/redirector.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

using abuse::Behavior;
using AttackOpts = abuse::HostileClient::Options;

AttackOpts attack(Behavior b, int rounds) {
  AttackOpts o;
  o.behavior = b;
  o.rounds = rounds;
  return o;
}

AttackOpts syn_flood(int per_poll, u64 polls) {
  AttackOpts o;
  o.behavior = Behavior::kSynFlood;
  o.flood_syns_per_poll = per_poll;
  o.flood_polls = polls;
  return o;
}

struct AbuseSpec {
  std::string name;
  std::vector<AttackOpts> attackers;
  int legit_floor;  // minimum legit completions under this attack
};

std::vector<AbuseSpec> make_scenarios(int clients) {
  std::vector<AbuseSpec> v;
  v.push_back({"malformed",
               {attack(Behavior::kMalformedRecord, 8),
                attack(Behavior::kMalformedRecord, 8),
                attack(Behavior::kMalformedRecord, 8)},
               clients});
  v.push_back({"oversize",
               {attack(Behavior::kOversizedRecord, 8),
                attack(Behavior::kOversizedRecord, 8)},
               clients});
  v.push_back({"truncated_hs",
               {attack(Behavior::kTruncatedHandshake, 3),
                attack(Behavior::kTruncatedHandshake, 3)},
               clients});
  v.push_back({"slow_drip",
               {attack(Behavior::kSlowDrip, 2),
                attack(Behavior::kSlowDrip, 2)},
               clients});
  v.push_back({"hello_storm",
               {attack(Behavior::kClientHelloStorm, 8),
                attack(Behavior::kClientHelloStorm, 8),
                attack(Behavior::kClientHelloStorm, 8)},
               clients});
  v.push_back({"mid_reset",
               {attack(Behavior::kMidHandshakeReset, 10),
                attack(Behavior::kMidHandshakeReset, 10),
                attack(Behavior::kMidHandshakeReset, 10)},
               clients});
  v.push_back({"syn_flood", {syn_flood(2, 1500)}, clients});
  v.push_back({"resumption_thrash",
               {attack(Behavior::kResumptionThrash, 8),
                attack(Behavior::kResumptionThrash, 8),
                attack(Behavior::kResumptionThrash, 8)},
               clients});
  v.push_back({"mixed_storm",
               {attack(Behavior::kMalformedRecord, 5),
                attack(Behavior::kSlowDrip, 1),
                attack(Behavior::kClientHelloStorm, 6),
                attack(Behavior::kMidHandshakeReset, 6),
                syn_flood(2, 800),
                attack(Behavior::kResumptionThrash, 6)},
               clients});
  return v;
}

struct AbuseResult {
  int completed = 0;
  int failed = 0;
  int stuck = 0;
  u64 retries = 0;  // legit reconnect attempts beyond the first
  int corrupt_echoes = 0;
  u64 bytes_echoed = 0;
  u64 elapsed_ms = 0;
  bool attackers_done = false;
  // Redirector degradation counters vs. their flight-recorder mirrors.
  u64 shed = 0, trace_shed = 0;
  u64 watchdogs = 0, trace_watchdogs = 0;
  u64 hs_timeouts = 0, trace_hs_timeouts = 0;
  u64 hs_failures = 0;
  u64 served = 0;
  // Hardening telemetry (registry deltas).
  u64 malformed_records = 0;
  u64 resumption_rejects = 0;
  u64 mac_failures = 0;
  // TCP front-door pressure.
  u64 syn_backlog_drops = 0;
  u64 embryonic_timeouts = 0;
  u64 half_open_left = 0;
  // Attacker aggregates.
  u64 atk_conns = 0;
  u64 atk_rounds = 0;
  u64 atk_resets = 0;
  u64 syns_spoofed = 0;
  // Gates.
  bool wedge_free = false;
  bool no_corrupt = false;
  bool attributed = false;
  bool goodput_ok = false;
  bool gates_ok = false;
};

u64 registry_value(const char* name) {
  return telemetry::Registry::global().counter(name).value();
}

u64 count_service_events(std::size_t from, u8 event) {
  const auto& ev = telemetry::Tracer::global().events();
  u64 n = 0;
  for (std::size_t i = from; i < ev.size(); ++i) {
    if (ev[i].layer == static_cast<u8>(telemetry::TraceLayer::kService) &&
        ev[i].event == event) {
      ++n;
    }
  }
  return n;
}

AbuseResult run_scenario(u64 seed, const AbuseSpec& spec, int offered,
                         std::size_t payload_bytes, u64 max_ms) {
  net::SimNet medium(seed);
  net::TcpStack board(medium, 1);
  // The abuse-facing profile: embryos from spoofed SYNs die after 2 s
  // instead of holding backlog slots for the full ~19 s retx horizon.
  board.set_syn_rcvd_timeout_ms(2'000);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  net::TcpStack attacker_host(medium, 4, seed ^ 0xA77A);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.psk = bytes_of("e15");
  cfg.handler_slots = 3;
  cfg.shed_when_busy = true;
  cfg.handshake_timeout_ms = 2'500;  // tight: abuse must die fast
  cfg.idle_timeout_ms = 8'000;
  cfg.tls.resumption = true;
  cfg.session_cache_capacity = 16;
  services::RmcRedirector red(board, medium, cfg);
  AbuseResult r;
  if (!red.start().is_ok()) return r;

  const u64 malformed_before = registry_value("issl.malformed_records");
  const u64 rejects_before = registry_value("issl.resumption_rejects");
  const u64 mac_before = registry_value("issl.mac_failures");
  const std::size_t trace_before = telemetry::Tracer::global().events().size();

  std::vector<u8> payload(payload_bytes);
  common::Xorshift64 fill(seed ^ 0xE15E15);
  fill.fill(payload);
  constexpr std::size_t kChunk = 512;
  constexpr int kMaxAttempts = 5;

  issl::Config legit_tls = issl::Config::embedded_port();
  legit_tls.resumption = true;

  struct Legit {
    std::unique_ptr<services::Client> c;
    std::size_t sent = 0;
    int attempts = 1;
    int state = 0;  // 0 live, 1 completed, 2 failed for good
    u64 retry_at = 0;  // backoff deadline before the next redial
  };
  std::vector<Legit> legit(static_cast<std::size_t>(offered));
  for (int i = 0; i < offered; ++i) {
    auto& L = legit[static_cast<std::size_t>(i)];
    L.c = std::make_unique<services::Client>(
        client_host, 1, 4433, true, legit_tls, bytes_of("e15"),
        seed * 977 + static_cast<u64>(i) * 131);
    (void)L.c->start();
    const std::size_t first = std::min(kChunk, payload_bytes);
    (void)L.c->send(std::span<const u8>(payload.data(), first));
    L.sent = first;
  }

  std::vector<std::unique_ptr<abuse::HostileClient>> attackers;
  for (std::size_t i = 0; i < spec.attackers.size(); ++i) {
    AttackOpts o = spec.attackers[i];
    // Stagger the rounds so attack pressure spans the victim's whole
    // busy/idle cycle instead of all dying into a full house at t=0.
    o.reconnect_delay_polls = 25 + 35 * i;
    attackers.push_back(std::make_unique<abuse::HostileClient>(
        attacker_host, medium, 1, 4433, seed * 13 + i * 101 + 7, o));
  }

  u64 t = 0;
  for (; t < max_ms; ++t) {
    bool all_settled = true;
    for (auto& L : legit) {
      if (L.state != 0) continue;
      services::Client& c = *L.c;
      // Backing off after a shed: don't redial into the same storm.
      if (L.retry_at > t) {
        all_settled = false;
        continue;
      }
      if (L.retry_at != 0 && L.retry_at <= t) {
        L.retry_at = 0;
        (void)c.reconnect();
        const std::size_t first = std::min(kChunk, payload_bytes);
        (void)c.send(std::span<const u8>(payload.data(), first));
        L.sent = first;
        all_settled = false;
        continue;
      }
      const bool alive = c.poll();
      if (c.received().size() >= payload_bytes) {
        L.state = 1;
        c.close();
        continue;
      }
      if (!alive || c.failed()) {
        // Shed or killed — a real client retries (bounded, with linear
        // backoff so the retry lands after the storm), and the retry
        // offers the earned ticket, so recovery rides the abbreviated
        // handshake when the cache survived the abuse.
        if (L.attempts < kMaxAttempts) {
          ++L.attempts;
          ++r.retries;
          L.retry_at = t + 400 * static_cast<u64>(L.attempts);
          all_settled = false;
        } else {
          L.state = 2;
        }
        continue;
      }
      if (c.received().size() >= L.sent && L.sent < payload_bytes) {
        const std::size_t n = std::min(kChunk, payload_bytes - L.sent);
        (void)c.send(std::span<const u8>(payload.data() + L.sent, n));
        L.sent += n;
      }
      all_settled = false;
    }
    bool attackers_done = true;
    for (auto& a : attackers) {
      if (a->poll()) attackers_done = false;
    }
    red.poll();
    backend.poll();
    medium.tick(1);
    if (all_settled && attackers_done) {
      r.attackers_done = true;
      break;
    }
  }
  r.elapsed_ms = t;
  if (!r.attackers_done) {
    r.attackers_done = std::all_of(
        attackers.begin(), attackers.end(),
        [](const auto& a) { return a->done(); });
  }

  for (auto& L : legit) {
    if (L.state == 0) ++r.stuck;
    if (L.state == 2) ++r.failed;
    services::Client& c = *L.c;
    // The zero-corruption invariant covers partial transfers too: whatever
    // came back must be a prefix of what was sent, completed or not.
    const std::size_t n = std::min(c.received().size(), payload.size());
    if (!std::equal(c.received().begin(),
                    c.received().begin() + static_cast<long>(n),
                    payload.begin())) {
      ++r.corrupt_echoes;
      continue;
    }
    r.bytes_echoed += c.received().size();
    if (L.state == 1) ++r.completed;
  }

  for (auto& a : attackers) {
    r.atk_conns += a->stats().conns_attempted;
    r.atk_rounds += a->stats().rounds_done;
    r.atk_resets += a->stats().resets_seen;
    r.syns_spoofed += a->stats().syns_spoofed;
  }

  r.shed = red.stats().connections_shed;
  r.watchdogs = red.stats().watchdog_aborts;
  r.hs_timeouts = red.stats().handshake_timeouts;
  r.hs_failures = red.stats().handshake_failures;
  r.served = red.stats().connections_served;
  r.trace_shed =
      count_service_events(trace_before, telemetry::ServiceTrace::kShed);
  r.trace_watchdogs = count_service_events(
      trace_before, telemetry::ServiceTrace::kWatchdogAbort);
  r.trace_hs_timeouts = count_service_events(
      trace_before, telemetry::ServiceTrace::kHsTimeout);

  r.malformed_records =
      registry_value("issl.malformed_records") - malformed_before;
  r.resumption_rejects =
      registry_value("issl.resumption_rejects") - rejects_before;
  r.mac_failures = registry_value("issl.mac_failures") - mac_before;
  r.syn_backlog_drops = board.syn_backlog_drops();
  r.embryonic_timeouts = board.embryonic_timeouts();
  r.half_open_left = board.half_open_count();

  r.wedge_free = r.stuck == 0 && r.attackers_done && t < max_ms;
  r.no_corrupt = r.corrupt_echoes == 0;
  r.attributed = r.trace_shed == r.shed &&
                 r.trace_watchdogs == r.watchdogs &&
                 r.trace_hs_timeouts == r.hs_timeouts;
  r.goodput_ok = r.completed >= spec.legit_floor;
  r.gates_ok = r.wedge_free && r.no_corrupt && r.attributed && r.goodput_ok;
  return r;
}

struct PoisonResult {
  int warmed = 0;            // phase-A completions that filled the cache
  int tampered = 0;          // cache entries poisoned in the snapshot
  int recovered = 0;         // phase-B completions after the poisoning
  int resumed_after = 0;     // must be 0: nobody resumes off a bad secret
  u64 integrity_rejects = 0;
  u64 registry_rejects = 0;
  bool gates_ok = false;
};

// The cache-poisoning scenario needs choreography the generic loop can't
// express: complete handshakes to fill the cache, corrupt the raw snapshot
// (exactly what a decayed battery image or a poisoned restore hands the
// server), then have the same clients resume against it.
PoisonResult run_cache_poison(u64 seed, std::size_t payload_bytes,
                              u64 max_ms) {
  net::SimNet medium(seed);
  net::TcpStack board(medium, 1);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.psk = bytes_of("e15");
  cfg.handler_slots = 3;
  cfg.handshake_timeout_ms = 2'500;
  cfg.idle_timeout_ms = 8'000;
  cfg.tls.resumption = true;
  cfg.session_cache_capacity = 16;
  services::RmcRedirector red(board, medium, cfg);
  PoisonResult r;
  if (!red.start().is_ok()) return r;
  const u64 rejects_before = registry_value("issl.resumption_rejects");

  std::vector<u8> payload(payload_bytes);
  common::Xorshift64 fill(seed ^ 0xCACE);
  fill.fill(payload);

  issl::Config legit_tls = issl::Config::embedded_port();
  legit_tls.resumption = true;
  constexpr int kClients = 2;
  std::vector<std::unique_ptr<services::Client>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<services::Client>(
        client_host, 1, 4433, true, legit_tls, bytes_of("e15"),
        seed * 331 + static_cast<u64>(i) * 17));
    (void)clients.back()->start();
    (void)clients.back()->send(payload);
  }

  auto drive = [&](auto settled) -> bool {
    for (u64 t = 0; t < max_ms; ++t) {
      bool done = true;
      for (auto& c : clients) {
        (void)c->poll();
        if (!settled(*c)) done = false;
      }
      red.poll();
      backend.poll();
      medium.tick(1);
      if (done) return true;
    }
    return false;
  };

  auto echoed = [&](services::Client& c) {
    return c.received().size() >= payload_bytes || c.failed();
  };
  (void)drive(echoed);
  for (auto& c : clients) {
    if (c->received().size() >= payload_bytes) ++r.warmed;
    c->close();
  }

  // Poison every cached master secret in the raw snapshot, then feed it
  // back through the battery-restore path. The checksums now lie.
  issl::SessionCacheData snap = red.session_cache().data();
  for (auto& e : snap.entries) {
    if (e.in_use != 0) {
      e.master[0] ^= 0xFF;
      ++r.tampered;
    }
  }
  red.session_cache().restore(snap);

  for (auto& c : clients) {
    (void)c->reconnect();  // re-offers the earned (now-poisoned) ticket
    (void)c->send(payload);
  }
  (void)drive(echoed);
  for (auto& c : clients) {
    if (c->received().size() >= payload_bytes) {
      ++r.recovered;
      if (c->resumed()) ++r.resumed_after;
    }
    c->close();
  }

  r.integrity_rejects = red.session_cache().integrity_rejects();
  r.registry_rejects =
      registry_value("issl.resumption_rejects") - rejects_before;
  // Gates: the poisoned offers were refused (one reject per tampered entry
  // offered), nobody completed an abbreviated handshake off a corrupt
  // secret, and every client still got service via the full-handshake
  // fallback.
  r.gates_ok = r.warmed == kClients && r.recovered == kClients &&
               r.resumed_after == 0 &&
               r.integrity_rejects >= static_cast<u64>(kClients) &&
               r.registry_rejects == r.integrity_rejects;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.flag_int("seed", 0xE15));
  const int offered = static_cast<int>(args.flag_int("clients", 4));
  const std::size_t payload =
      static_cast<std::size_t>(args.flag_int("payload", 2048));
  const u64 max_ms = static_cast<u64>(args.flag_int("max-ms", 20'000));
  const std::size_t fuzz_iters =
      static_cast<std::size_t>(args.flag_int("fuzz-iters", 900, 0));
  const bool smoke = args.flag_int("smoke", 0, 0) != 0;

  // The abuse run wants the hardening counters in the registry (they are
  // off by default to keep pre-existing benches' JSON stable) and the
  // flight recorder on (the attribution gate reads it).
  issl::set_hardening_telemetry(true);
  telemetry::Tracer::global().set_enabled(true);

  std::puts("================================================================");
  std::puts("E15: abuse soak -- hostile peers vs the issl/TCP front door");
  std::printf("    seed=%llu  clients=%d  payload=%zu B  budget=%llu virt ms"
              "  fuzz=%zu iters%s\n",
              static_cast<unsigned long long>(seed), offered, payload,
              static_cast<unsigned long long>(max_ms), fuzz_iters,
              smoke ? "  [smoke: fuzz only]" : "");
  std::puts("================================================================\n");

  bench::JsonReport report("E15");
  report.result("seed", seed);
  bool all_ok = true;

  // --- Phase 1: coverage-guided fuzz over the parse paths -----------------
  abuse::Fuzzer fuzzer(seed ^ 0xF0220000);
  fuzzer.add_default_seeds();
  const abuse::FuzzStats fz = fuzzer.run(fuzz_iters);
  // The coverage floor proves the feedback loop works (a broken signal
  // flatlines near the seed count); the wedge count is the invariant.
  const bool fuzz_ok =
      fz.wedges == 0 && fz.coverage_features >= 24 && fz.corpus_size >= 8;
  std::printf("fuzz: %llu iters, %llu coverage features, corpus %llu, "
              "%llu wedges, %llu session failures, %llu poisons  %s\n\n",
              static_cast<unsigned long long>(fz.iterations),
              static_cast<unsigned long long>(fz.coverage_features),
              static_cast<unsigned long long>(fz.corpus_size),
              static_cast<unsigned long long>(fz.wedges),
              static_cast<unsigned long long>(fz.session_failures),
              static_cast<unsigned long long>(fz.record_poisons),
              fuzz_ok ? "[ok]" : "[FAIL]");
  report.result("fuzz.iterations", fz.iterations);
  report.result("fuzz.coverage_features", fz.coverage_features);
  report.result("fuzz.corpus_size", fz.corpus_size);
  report.result("fuzz.wedges", fz.wedges);
  report.result("fuzz.session_failures", fz.session_failures);
  report.result("fuzz.session_closed", fz.session_closed);
  report.result("fuzz.record_poisons", fz.record_poisons);
  report.result("fuzz.malformed_records", fz.malformed_records);
  report.result("fuzz.new_feature_events", fz.new_feature_events);
  report.result("fuzz.ok", fuzz_ok);
  all_ok = all_ok && fuzz_ok;

  if (!smoke) {
    std::printf("%-18s %4s %4s %5s %4s %9s %5s %5s %5s %5s %6s %5s\n",
                "scenario", "done", "fail", "stuck", "rtry", "echoed",
                "shed", "wdog", "hsto", "malf", "syndrp", "gate");
    for (const AbuseSpec& spec : make_scenarios(offered)) {
      const AbuseResult r =
          run_scenario(seed, spec, offered, payload, max_ms);
      std::printf(
          "%-18s %4d %4d %5d %4llu %8lluB %5llu %5llu %5llu %5llu %6llu "
          "%5s\n",
          spec.name.c_str(), r.completed, r.failed, r.stuck,
          static_cast<unsigned long long>(r.retries),
          static_cast<unsigned long long>(r.bytes_echoed),
          static_cast<unsigned long long>(r.shed),
          static_cast<unsigned long long>(r.watchdogs),
          static_cast<unsigned long long>(r.hs_timeouts),
          static_cast<unsigned long long>(r.malformed_records),
          static_cast<unsigned long long>(r.syn_backlog_drops),
          r.gates_ok ? "ok" : "FAIL");
      all_ok = all_ok && r.gates_ok;

      const std::string k = "scn." + spec.name + ".";
      report.result(k + "completed", r.completed);
      report.result(k + "failed", r.failed);
      report.result(k + "stuck", r.stuck);
      report.result(k + "retries", r.retries);
      report.result(k + "corrupt_echoes", r.corrupt_echoes);
      report.result(k + "bytes_echoed", r.bytes_echoed);
      report.result(k + "elapsed_ms", r.elapsed_ms);
      report.result(k + "attacker_conns", r.atk_conns);
      report.result(k + "attacker_rounds", r.atk_rounds);
      report.result(k + "attacker_resets", r.atk_resets);
      report.result(k + "syns_spoofed", r.syns_spoofed);
      report.result(k + "connections_served", r.served);
      report.result(k + "connections_shed", r.shed);
      report.result(k + "watchdog_aborts", r.watchdogs);
      report.result(k + "handshake_timeouts", r.hs_timeouts);
      report.result(k + "handshake_failures", r.hs_failures);
      report.result(k + "trace_shed", r.trace_shed);
      report.result(k + "trace_watchdog_aborts", r.trace_watchdogs);
      report.result(k + "trace_handshake_timeouts", r.trace_hs_timeouts);
      report.result(k + "malformed_records", r.malformed_records);
      report.result(k + "resumption_rejects", r.resumption_rejects);
      report.result(k + "mac_failures", r.mac_failures);
      report.result(k + "syn_backlog_drops", r.syn_backlog_drops);
      report.result(k + "embryonic_timeouts", r.embryonic_timeouts);
      report.result(k + "half_open_left", r.half_open_left);
      report.result(k + "gate_wedge_free", r.wedge_free);
      report.result(k + "gate_no_corrupt", r.no_corrupt);
      report.result(k + "gate_attributed", r.attributed);
      report.result(k + "gate_goodput", r.goodput_ok);
      report.result(k + "gates_ok", r.gates_ok);
    }

    const PoisonResult p = run_cache_poison(seed, payload, max_ms);
    std::printf("%-18s warmed=%d tampered=%d recovered=%d resumed=%d "
                "rejects=%llu  %s\n",
                "cache_poison", p.warmed, p.tampered, p.recovered,
                p.resumed_after,
                static_cast<unsigned long long>(p.integrity_rejects),
                p.gates_ok ? "ok" : "FAIL");
    all_ok = all_ok && p.gates_ok;
    report.result("scn.cache_poison.warmed", p.warmed);
    report.result("scn.cache_poison.tampered", p.tampered);
    report.result("scn.cache_poison.recovered", p.recovered);
    report.result("scn.cache_poison.resumed_after_poison", p.resumed_after);
    report.result("scn.cache_poison.integrity_rejects", p.integrity_rejects);
    report.result("scn.cache_poison.registry_rejects", p.registry_rejects);
    report.result("scn.cache_poison.gates_ok", p.gates_ok);

    std::printf(
        "\nGates per scenario: wedge-free (everything settles inside the"
        " budget),\nzero corrupted plaintext, every shed/watchdog/timeout"
        " present in the\nflight recorder, and a legit-goodput floor."
        " cache_poison additionally\nrequires poisoned offers to be"
        " integrity-rejected, never resumed.\n");
  }

  report.result("all_gates_ok", all_ok);
  report.write(args);
  return all_ok ? 0 : 1;
}
