// E11 — session resumption: the abbreviated handshake vs the full RSA
// exchange (DESIGN.md §10).
//
// The paper's motivation cites Goldberg et al.: "servers that support
// secure communications services can serve an order of magnitude fewer
// clients" (§2) — and nearly all of that cost is the per-connection RSA
// handshake. Real SSL deployments amortize it with session resumption;
// this bench measures what the same trick buys on the simulated 30 MHz
// target, three ways:
//
//   1. session level: modeled handshake crypto cycles, full RSA-512 vs
//      abbreviated (cache hit). The bench FAILS (exit 1) unless the
//      abbreviated handshake is at least 5x cheaper — that is the whole
//      point of carrying the cache.
//   2. service level: a reconnect-heavy client against the RmcRedirector
//      with the CPU-cost model on, resumption off vs on (virtual time for
//      the same number of connect-request-reconnect cycles, plus the
//      cache hit/miss telemetry and the client-side TCB reaping numbers).
//   3. cache level: LRU eviction at capacity and TTL expiry in virtual
//      time, so the bounded xalloc-style behaviour is itself measured.
//
// Everything reported to JSON is virtual (cycles, virtual ms, counts) —
// no host wall-clock — so BENCH_E11.json is byte-reproducible.
#include <cstdio>

#include "bench_util.h"
#include "issl/issl.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "services/redirector.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

struct HsRun {
  bool ok = false;
  bool resumed = false;
  u64 client_cycles = 0;
  u64 server_cycles = 0;
  std::size_t messages = 0;
  u64 virtual_ms = 0;
  issl::ResumptionTicket ticket;
};

u64 total(const HsRun& r) { return r.client_cycles + r.server_cycles; }

/// One handshake over a fresh simulated TCP connection. `cache` is the
/// server's (persistent across calls); `ticket` is the client's offer.
HsRun run_handshake(const issl::Config& config,
                    const crypto::RsaKeyPair& key, issl::SessionCache* cache,
                    const issl::ResumptionTicket* ticket, u64 seed) {
  net::SimNet medium(0xE11 + seed);
  net::TcpStack server_stack(medium, 1);
  net::TcpStack client_stack(medium, 2);
  auto listener = server_stack.listen(4433);
  auto csock = client_stack.connect(1, 4433);
  medium.tick(20);
  auto ssock = server_stack.accept(*listener);
  issl::TcpStream server_stream(server_stack, *ssock);
  issl::TcpStream client_stream(client_stack, *csock);
  common::Xorshift64 srng(11 + seed), crng(22 + seed);

  issl::ServerIdentity id;
  id.rsa = key;
  id.session_cache = cache;
  auto server = issl::issl_bind_server(server_stream, config, srng, id);
  auto client = issl::issl_bind_client(client_stream, config, crng, {}, ticket);

  HsRun run;
  const u64 t0 = medium.now_ms();
  for (int i = 0; i < 5'000; ++i) {
    (void)client.pump();
    (void)server.pump();
    medium.tick(1);
    if (client.established() && server.established()) break;
  }
  run.ok = client.established() && server.established();
  run.resumed = client.resumed() && server.resumed();
  run.client_cycles = client.handshake_cost_cycles();
  run.server_cycles = server.handshake_cost_cycles();
  run.messages =
      client.handshake_messages_seen() + server.handshake_messages_seen();
  run.virtual_ms = medium.now_ms() - t0;
  run.ticket = client.ticket();
  return run;
}

/// Reconnect-heavy client against the RmcRedirector: `cycles` rounds of
/// connect, handshake, request/response, reconnect. Returns virtual ms.
struct ServiceRun {
  bool ok = true;
  u64 virtual_ms = 0;
  u64 resumed_handshakes = 0;
  u64 cache_hits = 0;
  u64 cache_misses = 0;
  u64 client_tcbs_resident = 0;
  u64 client_tcbs_reaped = 0;
};

ServiceRun run_service(bool resumption, int cycles) {
  net::SimNet medium(0x511);
  net::TcpStack rmc_stack(medium, 1);
  net::TcpStack backend_stack(medium, 2);
  net::TcpStack client_stack(medium, 3);

  services::RedirectorConfig rc;
  rc.listen_port = 4433;
  rc.backend_ip = 2;
  rc.backend_port = 8000;
  rc.secure = true;
  rc.tls = issl::Config::embedded_port();
  rc.psk = {'e', '1', '1'};
  // The CPU-cost model carries the E6/session-level numbers: a full
  // handshake costs the board ~2M cycles (PRF + MACs + the key exchange it
  // would have run), an abbreviated one ~0.5M (PRF + MACs only).
  rc.crypto_cycles_handshake = 2'000'000;
  rc.crypto_cycles_resumed_handshake = 500'000;
  if (resumption) {
    rc.tls.resumption = true;
    rc.session_cache_capacity = 8;
  }
  services::RmcRedirector redirector(rmc_stack, medium, rc);
  services::EchoBackend backend(backend_stack, 8000);
  if (!redirector.start().is_ok() || !backend.start().is_ok()) {
    return {false, 0, 0, 0, 0, 0, 0};
  }

  issl::Config ctls = issl::Config::embedded_port();
  ctls.resumption = resumption;
  services::Client client(client_stack, 1, 4433, true, ctls, rc.psk);

  ServiceRun out;
  const u64 t0 = medium.now_ms();
  const std::vector<u8> payload = {'p', 'i', 'n', 'g'};
  if (!client.start().is_ok()) return {false, 0, 0, 0, 0, 0, 0};
  for (int cycle = 0; cycle < cycles; ++cycle) {
    (void)client.send(payload);
    bool served = false;
    for (int i = 0; i < 20'000; ++i) {
      redirector.poll();
      backend.poll();
      (void)client.poll();
      medium.tick(1);
      if (client.received().size() >= payload.size()) {
        served = true;
        break;
      }
      if (client.failed()) break;
    }
    if (!served) {
      out.ok = false;
      break;
    }
    if (client.resumed()) ++out.resumed_handshakes;
    if (cycle + 1 < cycles && !client.reconnect().is_ok()) {
      out.ok = false;
      break;
    }
  }
  client.close();
  out.virtual_ms = medium.now_ms() - t0;
  out.cache_hits = redirector.session_cache().hits();
  out.cache_misses = redirector.session_cache().misses();
  out.client_tcbs_resident = client_stack.tcb_count();
  out.client_tcbs_reaped = client_stack.tcbs_reaped();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);

  std::puts("================================================================");
  std::puts("E11: session resumption: abbreviated handshake vs full RSA");
  std::puts("================================================================\n");

  bench::JsonReport report("E11");
  int rc = 0;

  // --- 1. Session level: full RSA-512 vs abbreviated ----------------------
  issl::Config cfg = issl::Config::unix_default();
  cfg.rsa_modulus_bits = 512;
  cfg.resumption = true;
  common::Xorshift64 keyrng(0xE11);
  const auto key = crypto::rsa_generate(512, keyrng);
  issl::SessionCache cache(issl::kSessionCacheMaxEntries);

  const HsRun full = run_handshake(cfg, key, &cache, nullptr, 1);
  const HsRun resumed = run_handshake(cfg, key, &cache, &full.ticket, 2);
  const double ratio =
      static_cast<double>(total(full)) /
      static_cast<double>(total(resumed) > 0 ? total(resumed) : 1);

  std::printf("%-28s %14s %14s %6s %9s\n", "handshake", "client cyc",
              "server cyc", "msgs", "virt ms");
  std::printf("%-28s %14llu %14llu %6zu %9llu  %s\n", "full RSA-512",
              static_cast<unsigned long long>(full.client_cycles),
              static_cast<unsigned long long>(full.server_cycles),
              full.messages, static_cast<unsigned long long>(full.virtual_ms),
              full.ok ? "" : "FAILED");
  std::printf("%-28s %14llu %14llu %6zu %9llu  %s\n", "abbreviated (resumed)",
              static_cast<unsigned long long>(resumed.client_cycles),
              static_cast<unsigned long long>(resumed.server_cycles),
              resumed.messages,
              static_cast<unsigned long long>(resumed.virtual_ms),
              resumed.ok && resumed.resumed ? "" : "FAILED");
  std::printf("\nfull/abbreviated cycle ratio: %.1fx (gate: >= 5x)\n\n", ratio);

  report.result("full.ok", full.ok);
  report.result("full.client_cycles", full.client_cycles);
  report.result("full.server_cycles", full.server_cycles);
  report.result("full.messages", full.messages);
  report.result("full.virtual_ms", full.virtual_ms);
  report.result("resumed.ok", resumed.ok && resumed.resumed);
  report.result("resumed.client_cycles", resumed.client_cycles);
  report.result("resumed.server_cycles", resumed.server_cycles);
  report.result("resumed.messages", resumed.messages);
  report.result("resumed.virtual_ms", resumed.virtual_ms);
  report.result("full_vs_resumed_cycle_ratio", ratio);

  if (!full.ok || !resumed.ok || !resumed.resumed) {
    std::fprintf(stderr, "handshake scenario failed\n");
    rc = 1;
  } else if (ratio < 5.0) {
    std::fprintf(stderr,
                 "abbreviated handshake ratio %.1fx below the 5x gate\n",
                 ratio);
    rc = 1;
  }

  // --- 2. Service level: reconnect-heavy client, off vs on ----------------
  const int kCycles = 12;
  const ServiceRun off = run_service(false, kCycles);
  const ServiceRun on = run_service(true, kCycles);
  const double speedup = static_cast<double>(off.virtual_ms) /
                         static_cast<double>(on.virtual_ms > 0 ? on.virtual_ms : 1);
  std::printf("%-28s %9s %8s %6s %6s %6s %7s\n", "redirector (12 reconnects)",
              "virt ms", "resumed", "hits", "miss", "tcbs", "reaped");
  std::printf("%-28s %9llu %8llu %6llu %6llu %6llu %7llu  %s\n",
              "resumption off",
              static_cast<unsigned long long>(off.virtual_ms),
              static_cast<unsigned long long>(off.resumed_handshakes),
              static_cast<unsigned long long>(off.cache_hits),
              static_cast<unsigned long long>(off.cache_misses),
              static_cast<unsigned long long>(off.client_tcbs_resident),
              static_cast<unsigned long long>(off.client_tcbs_reaped),
              off.ok ? "" : "FAILED");
  std::printf("%-28s %9llu %8llu %6llu %6llu %6llu %7llu  %s\n",
              "resumption on",
              static_cast<unsigned long long>(on.virtual_ms),
              static_cast<unsigned long long>(on.resumed_handshakes),
              static_cast<unsigned long long>(on.cache_hits),
              static_cast<unsigned long long>(on.cache_misses),
              static_cast<unsigned long long>(on.client_tcbs_resident),
              static_cast<unsigned long long>(on.client_tcbs_reaped),
              on.ok ? "" : "FAILED");
  std::printf("\nvirtual-time speedup from resumption: %.2fx\n\n", speedup);

  report.result("service.cycles", kCycles);
  report.result("service.off.ok", off.ok);
  report.result("service.off.virtual_ms", off.virtual_ms);
  report.result("service.on.ok", on.ok);
  report.result("service.on.virtual_ms", on.virtual_ms);
  report.result("service.on.resumed_handshakes", on.resumed_handshakes);
  report.result("service.on.cache_hits", on.cache_hits);
  report.result("service.on.cache_misses", on.cache_misses);
  report.result("service.on.client_tcbs_resident", on.client_tcbs_resident);
  report.result("service.on.client_tcbs_reaped", on.client_tcbs_reaped);
  report.result("service.speedup", speedup);
  if (!off.ok || !on.ok) {
    std::fprintf(stderr, "service scenario failed\n");
    rc = 1;
  }
  if (on.resumed_handshakes + 1 < static_cast<u64>(kCycles)) {
    std::fprintf(stderr, "expected every reconnect after the first to resume\n");
    rc = 1;
  }

  // --- 3. Cache level: LRU eviction and TTL expiry ------------------------
  issl::SessionCache small(4, /*ttl_ms=*/1'000);
  u8 id[issl::kSessionIdBytes] = {};
  u8 master[issl::kMasterSecretBytes] = {};
  for (u8 i = 0; i < 6; ++i) {  // 6 inserts into 4 slots -> 2 LRU evictions
    id[0] = i;
    small.set_now(i);
    small.insert(id, master, 0, 16);
  }
  id[0] = 5;
  (void)small.lookup(id, nullptr);  // hit (newest survives)
  id[0] = 0;
  (void)small.lookup(id, nullptr);  // miss (LRU-evicted)
  small.set_now(5'000);             // everything ages past the TTL
  id[0] = 5;
  (void)small.lookup(id, nullptr);  // expired -> dropped + miss
  std::printf("%-28s %6s %6s %7s %8s %6s\n", "cache (cap 4, ttl 1s)", "hits",
              "miss", "evicted", "expired", "size");
  std::printf("%-28s %6llu %6llu %7llu %8llu %6zu\n", "",
              static_cast<unsigned long long>(small.hits()),
              static_cast<unsigned long long>(small.misses()),
              static_cast<unsigned long long>(small.evictions()),
              static_cast<unsigned long long>(small.expirations()),
              small.size());
  report.result("cache.hits", small.hits());
  report.result("cache.misses", small.misses());
  report.result("cache.evictions", small.evictions());
  report.result("cache.expirations", small.expirations());
  report.result("cache.size_after_expiry", static_cast<u64>(small.size()));
  if (small.evictions() != 2 || small.expirations() == 0) {
    std::fprintf(stderr, "cache eviction/TTL scenario failed\n");
    rc = 1;
  }

  report.write(args);
  return rc;
}
