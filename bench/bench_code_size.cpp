// E3 — paper §6: "Code size appeared uncorrelated to execution speed. The
// assembly implementation was 9% smaller than the C, but ran more than an
// order of magnitude faster."
//
// Regenerates the size-vs-speed matrix: code bytes and cycles/block for the
// hand assembly and every C-port build, then tests the paper's
// uncorrelated-ness claim by ranking. (Our naive compiler emits bulkier code
// than 2003 Dynamic C did, so the absolute asm-vs-C size gap is larger than
// the paper's 9% — documented in EXPERIMENTS.md — but the *claim under
// test*, size not predicting speed, is evaluated on the full matrix.)
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/prng.h"
#include "services/aes_port.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

struct Build {
  std::string name;
  std::string key;  // json identifier
  std::size_t code_bytes = 0;
  u64 cycles = 0;
};

Build measure(const std::string& name, const std::string& json_key,
              services::AesImpl impl, const dcc::CodegenOptions& opts = {}) {
  auto aes = services::AesOnBoard::create_from_repo(impl, RMC_REPO_ROOT, opts);
  if (!aes.ok()) {
    std::printf("load failed: %s\n", aes.status().to_string().c_str());
    std::exit(1);
  }
  common::Xorshift64 rng(5);
  std::array<u8, 16> key{}, pt{}, ct{};
  rng.fill(key);
  rng.fill(pt);
  (void)aes->set_key(key);
  Build b;
  b.name = name;
  b.key = json_key;
  b.code_bytes = aes->image_bytes();
  b.cycles = *aes->encrypt(pt, ct);
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  std::puts("==========================================================");
  std::puts("E3: code size vs execution speed (paper Section 6)");
  std::puts("==========================================================\n");

  std::vector<Build> builds;
  builds.push_back(measure("hand assembly", "hand_assembly",
                           services::AesImpl::kHandAssembly));
  builds.push_back(measure("C debug (direct port)", "c_debug",
                           services::AesImpl::kCompiledC,
                           dcc::CodegenOptions::debug_defaults()));
  dcc::CodegenOptions nodebug = dcc::CodegenOptions::debug_defaults();
  nodebug.debug_hooks = false;
  builds.push_back(
      measure("C nodebug", "c_nodebug", services::AesImpl::kCompiledC,
              nodebug));
  dcc::CodegenOptions unroll = nodebug;
  unroll.unroll_loops = true;
  builds.push_back(measure("C nodebug+unroll", "c_nodebug_unroll",
                           services::AesImpl::kCompiledC, unroll));
  builds.push_back(measure("C all optimizations", "c_all",
                           services::AesImpl::kCompiledC,
                           dcc::CodegenOptions::all_optimizations()));

  std::printf("%-24s %10s %14s %12s\n", "build", "code B", "enc cyc/blk",
              "cyc per byte");
  for (const Build& b : builds) {
    std::printf("%-24s %10zu %14llu %12.1f\n", b.name.c_str(), b.code_bytes,
                static_cast<unsigned long long>(b.cycles),
                static_cast<double>(b.cycles) / b.code_bytes);
  }

  // Spearman-style check: does the size ranking predict the speed ranking?
  auto rank_of = [&](auto key) {
    std::vector<std::size_t> idx(builds.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) {
                return key(builds[a]) < key(builds[b]);
              });
    std::vector<int> rank(builds.size());
    for (std::size_t r = 0; r < idx.size(); ++r) rank[idx[r]] = static_cast<int>(r);
    return rank;
  };
  const auto size_rank = rank_of([](const Build& b) { return b.code_bytes; });
  const auto speed_rank = rank_of([](const Build& b) { return b.cycles; });
  int agreements = 0;
  int pairs = 0;
  for (std::size_t i = 0; i < builds.size(); ++i) {
    for (std::size_t j = i + 1; j < builds.size(); ++j) {
      ++pairs;
      const bool same_order = (size_rank[i] < size_rank[j]) ==
                              (speed_rank[i] < speed_rank[j]);
      if (same_order) ++agreements;
    }
  }
  std::printf("\nsize-order/speed-order agreement: %d of %d pairs\n",
              agreements, pairs);
  std::puts("paper's claim: size appeared uncorrelated to speed.");
  std::printf("observed: %s\n(e.g. the unrolled build is the largest C build "
              "AND among the fastest;\n the smallest C build is >10x slower "
              "than the hand assembly, which is\n smaller still)\n",
              (agreements != pairs) ? "size does NOT predict speed -- "
                                      "REPRODUCED"
                                    : "monotone in this sweep");

  bench::JsonReport report("E3");
  for (const Build& b : builds) {
    report.result(b.key + ".code_bytes", b.code_bytes);
    report.result(b.key + ".encrypt_cycles_per_block", b.cycles);
  }
  report.result("rank_agreement_pairs", agreements);
  report.result("rank_total_pairs", pairs);
  report.result("size_predicts_speed", agreements == pairs);
  report.write(args);
  return 0;
}
