// E17 — SLO timeline: virtual-time sampling and burn-rate alerting across
// a faulted serving soak.
//
// E10/E15 prove the redirector survives faults; this experiment proves the
// *observability stack* sees them. A resumption-serving soak (reconnect-
// heavy TLS clients against one board) runs through two scheduled faults —
//
//   partition:  the medium delivers nothing for 3 s (cable pull);
//   power cut:  a PowerFaultPlan browns the board out for 3 s;
//
// — while an attached timeseries Sampler scrapes the metrics registry every
// 100 virtual ms and an SloEngine evaluates availability, multi-window
// burn-rate, and p99-latency rules at each sample. Four gates:
//
//   (a) alignment — each fault's availability and burn-rate alerts fire
//       within a bounded number of sample periods of fault onset and clear
//       within a bounded number of periods of recovery; no spurious alerts
//       outside the fault windows;
//   (b) bounded memory — the sampler's retained footprint stays inside the
//       ring budget no matter how long the soak runs;
//   (c) passivity — the identical scenario run bare (no sampler, no tracer,
//       no latency telemetry) produces a byte-identical behavior signature
//       (completions, failures, boots, wire counters, fault edges) to the
//       fully instrumented run: observing the service must not change it;
//   (d) determinism — everything derives from --seed, so the --json /
//       --csv / --trace artifacts are byte-identical across same-seed runs
//       (scripts/check.sh double-runs exactly that).
//
// Exit status is 1 if any gate fails.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "services/supervisor.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// Timeline. Two clocks are in play: the harness loop count, and the
// medium's virtual clock — which runs at ~2 ms per loop pass while the
// board is up, because the redirector's Dynamic-C main loop calls
// tcp_tick(NULL) (one medium tick) once per pass and the harness ticks once
// more. Everything the sampler and the SLO engine see is *medium* time;
// the partition window below is medium ms. The power cut is scheduled in
// fault *points*, not ms, so its exact onset is read back from the board's
// up()/down edges.
constexpr u64 kRunPolls = 40'000;      // harness passes (~77 s medium time)
constexpr u64 kPartitionStart = 8'000;  // medium ms
constexpr u64 kPartitionEnd = 11'000;   // medium ms, exclusive
constexpr u64 kPowerCutStep = 26'000;   // fault points, lands ~48 s medium
constexpr u64 kPowerOffMs = 3'000;

constexpr u64 kPeriodMs = 100;
constexpr std::size_t kRingCapacity = 600;  // 60 s of history at 100 ms
constexpr std::size_t kMemoryBudgetBytes = 4 * 1024 * 1024;

constexpr std::size_t kWorkers = 3;
constexpr u64 kIdleGiveUpPolls = 900;
constexpr std::size_t kPayloadBytes = 64;
/// Pacing between cycles. Unthrottled, a resumed cycle completes in ~3
/// virtual ms — tens of thousands of sessions per run, which says nothing
/// more about the SLO machinery and swells every per-connection table. 200
/// ms per worker is ~15 requests/s fleet-wide: plenty of events per sample
/// window, bounded session count.
constexpr u64 kCycleCooldownMs = 200;

// Alert-alignment budgets, in sample periods. Availability (min_events=1)
// reacts as soon as the first give-up lands in its window; burn rate waits
// for the long window to digest enough errors.
constexpr u64 kAvailFireBudget = 30;
constexpr u64 kBurnFireBudget = 35;
constexpr u64 kClearBudget = 60;

constexpr u64 kFnvOffset = 1469598103934665603ULL;
constexpr u64 kFnvPrime = 1099511628211ULL;

struct Outcome {
  u64 ok = 0;            // completed echo cycles
  u64 fail = 0;          // clients that failed closed / gave up
  u64 spawned = 0;
  u64 rx_bytes = 0;
  u64 boots = 0;
  u64 wdt_bites = 0;
  u64 power_cuts = 0;
  u64 durable_served = 0;
  u64 durable_generation = 0;
  u64 sent = 0;
  u64 delivered = 0;
  u64 payload_bytes = 0;
  u64 drops_partition = 0;
  std::vector<u64> down_at;  // board up->down edges (power cut onsets)
  std::vector<u64> up_at;    // board down->up edges (recoveries)

  /// FNV over every behavioral observable — gate (c) compares the bare and
  /// the instrumented run through this.
  u64 signature() const {
    u64 h = kFnvOffset;
    const auto mix = [&h](u64 v) {
      for (int i = 0; i < 8; ++i) {
        h ^= static_cast<u8>(v >> (8 * i));
        h *= kFnvPrime;
      }
    };
    mix(ok); mix(fail); mix(spawned); mix(rx_bytes);
    mix(boots); mix(wdt_bites); mix(power_cuts);
    mix(durable_served); mix(durable_generation);
    mix(sent); mix(delivered); mix(payload_bytes); mix(drops_partition);
    for (u64 t : down_at) mix(t);
    for (u64 t : up_at) mix(t);
    return h;
  }
};

struct Worker {
  std::unique_ptr<services::Client> client;
  std::size_t want = 0;        // received() size that completes the cycle
  bool resting = false;        // cycle done, waiting out the cooldown
  u64 next_cycle_ms = 0;       // when the next reconnect+send may start
};

// One full soak. `sampler`/`engine` null = the bare (uninstrumented) run;
// both runs are otherwise identical down to every seeded draw.
Outcome run_scenario(u64 seed, telemetry::Sampler* sampler,
                     telemetry::SloEngine* engine) {
  net::SimNet medium(seed);
  net::FaultPlan faults;
  faults.partitions.push_back({kPartitionStart, kPartitionEnd});
  medium.set_fault_plan(faults);

  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::ServiceBoardConfig cfg;
  cfg.redirector.listen_port = 4433;
  cfg.redirector.backend_ip = 2;
  cfg.redirector.backend_port = 8000;
  cfg.redirector.secure = true;
  cfg.redirector.psk = bytes_of("e17");
  cfg.redirector.tls = issl::Config::embedded_port();
  cfg.redirector.tls.resumption = true;
  cfg.redirector.session_cache_capacity = 8;
  cfg.board_ip = 1;
  cfg.net_seed = seed * 131;
  cfg.power_off_ms = kPowerOffMs;
  cfg.reboot_ms = 2;
  cfg.power_plan = dynk::PowerFaultPlan::at({kPowerCutStep});
  services::ServiceBoard board(medium, cfg);
  if (sampler != nullptr) board.attach_sampler(sampler);

  issl::Config client_tls = issl::Config::embedded_port();
  client_tls.resumption = true;

  std::vector<u8> payload(kPayloadBytes);
  common::Xorshift64 fill(seed ^ 0xE17E17);
  fill.fill(payload);

  // The serving signal the SLO rules watch. Both runs move these counters
  // (registry writes are behavior-neutral); only the instrumented run has a
  // sampler turning them into windows.
  auto& requests_ok = telemetry::Registry::global().counter("e17.requests_ok");
  auto& requests_failed =
      telemetry::Registry::global().counter("e17.requests_failed");

  Outcome r;
  std::vector<Worker> workers(kWorkers);

  const auto spawn = [&](Worker& w) {
    w.client = std::make_unique<services::Client>(
        client_host, 1, 4433, true, client_tls, bytes_of("e17"),
        seed * 977 + ++r.spawned);
    // Short enough that an outage turns into counted failures within a few
    // sample windows — the error signal the alerts are gated on.
    w.client->set_idle_give_up(kIdleGiveUpPolls);
    (void)w.client->start();
    (void)w.client->send(payload);
    w.want = w.client->received().size() + payload.size();
  };

  bool was_up = board.up();
  u64 samples_seen = sampler != nullptr ? sampler->samples() : 0;

  for (u64 t = 0; t < kRunPolls; ++t) {
    board.poll();

    // Record the board's power edges: the power-cut onset/recovery that
    // gate (a) aligns alerts against is *observed*, not scheduled.
    if (was_up && !board.up()) r.down_at.push_back(medium.now_ms());
    if (!was_up && board.up() && !r.down_at.empty()) {
      r.up_at.push_back(medium.now_ms());
    }
    was_up = board.up();

    // The SLO engine evaluates at each sample tick (the board's poll just
    // ticked the sampler with the medium clock).
    if (engine != nullptr && sampler != nullptr &&
        sampler->samples() != samples_seen) {
      samples_seen = sampler->samples();
      engine->evaluate(sampler->last_sample_ms());
    }

    backend.poll();
    for (Worker& w : workers) {
      if (!w.client) {
        spawn(w);
        continue;
      }
      services::Client& c = *w.client;
      if (w.resting) {
        if (t < w.next_cycle_ms) continue;  // connection sits idle
        w.resting = false;
        // Keep the earned ticket: steady state is abbreviated handshakes.
        if (c.reconnect().is_ok()) {
          (void)c.send(payload);
          w.want = c.received().size() + payload.size();
        } else {
          w.client.reset();
        }
        continue;
      }
      const bool alive = c.poll();
      if (c.received().size() >= w.want) {
        ++r.ok;
        r.rx_bytes += payload.size();
        requests_ok.add(1);
        w.resting = true;
        w.next_cycle_ms = t + kCycleCooldownMs;
        continue;
      }
      if (!alive || c.failed()) {
        ++r.fail;
        requests_failed.add(1);
        w.client.reset();  // respawned (fresh handshake) next ms
      }
    }

    medium.tick(1);
  }

  r.boots = board.boots();
  r.wdt_bites = board.wdt_bites();
  r.power_cuts = board.power_cuts_seen();
  if (board.up() && board.redirector() != nullptr) {
    const auto& ds = board.redirector()->durable_state();
    r.durable_served = ds.served;
    r.durable_generation = ds.generation;
  }
  r.sent = medium.segments_sent();
  r.delivered = medium.segments_delivered();
  r.payload_bytes = medium.payload_bytes_delivered();
  r.drops_partition = medium.drops_partition();
  return r;
}

struct RuleTimeline {
  std::vector<u64> fires;
  std::vector<u64> clears;
};

RuleTimeline timeline_of(const telemetry::SloEngine& engine,
                         std::size_t rule) {
  RuleTimeline tl;
  for (const telemetry::SloAlert& a : engine.alerts()) {
    if (a.rule != rule) continue;
    (a.fire ? tl.fires : tl.clears).push_back(a.t_ms);
  }
  return tl;
}

bool within(u64 t, u64 lo, u64 hi) { return t >= lo && t <= hi; }

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.flag_int("seed", 0x233));

  std::puts("================================================================");
  std::puts("E17: SLO timeline -- sampler, percentiles, burn-rate alerting");
  std::printf("    seed=%llu  run=%llu virt ms  partition=[%llu,%llu)"
              "  power cut ~step %llu (%llu ms dark)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(kRunPolls),
              static_cast<unsigned long long>(kPartitionStart),
              static_cast<unsigned long long>(kPartitionEnd),
              static_cast<unsigned long long>(kPowerCutStep),
              static_cast<unsigned long long>(kPowerOffMs));
  std::puts("================================================================\n");

  // --- bare run: gate (c)'s baseline --------------------------------------
  telemetry::Registry::global().reset();
  telemetry::Tracer::global().clear();
  const Outcome bare = run_scenario(seed, nullptr, nullptr);

  // --- instrumented run ----------------------------------------------------
  telemetry::Registry::global().reset();
  telemetry::Tracer::global().clear();
  telemetry::Tracer::global().set_enabled(true);
  services::set_latency_telemetry(true);

  telemetry::Sampler sampler(
      telemetry::SamplerConfig{.period_ms = kPeriodMs,
                               .ring_capacity = kRingCapacity});
  telemetry::SloEngine engine(sampler);

  telemetry::SloRule avail;
  avail.name = "availability";
  avail.kind = telemetry::SloKind::kAvailability;
  avail.good_counter = "e17.requests_ok";
  avail.bad_counter = "e17.requests_failed";
  avail.availability_floor = 0.9;
  avail.window = 20;  // 2 s
  avail.min_events = 1;
  avail.clear_after = 3;
  const std::size_t kAvail = engine.add_rule(avail);

  telemetry::SloRule burn;
  burn.name = "burn_rate";
  burn.kind = telemetry::SloKind::kBurnRate;
  burn.good_counter = "e17.requests_ok";
  burn.bad_counter = "e17.requests_failed";
  burn.target = 0.95;     // 5% error budget
  burn.threshold = 2.0;   // page at 2x budget burn in BOTH windows
  burn.short_window = 10;  // 1 s
  burn.long_window = 30;   // 3 s
  burn.min_events = 4;
  burn.clear_after = 3;
  const std::size_t kBurn = engine.add_rule(burn);

  telemetry::SloRule lat;
  lat.name = "p99_resumed_handshake";
  lat.kind = telemetry::SloKind::kLatency;
  lat.histogram = "redirector.handshake_resumed_cycles";
  lat.quantile = 99.0;
  lat.ceiling = 15'000'000.0;  // 500 ms of 30 MHz cycles — reported, roomy
  lat.window = 50;
  lat.min_events = 5;
  lat.clear_after = 3;
  const std::size_t kLat = engine.add_rule(lat);

  const Outcome run = run_scenario(seed, &sampler, &engine);
  services::set_latency_telemetry(false);
  telemetry::Tracer::global().set_enabled(false);

  // --- report ---------------------------------------------------------------
  std::printf("%-12s %8s %8s %6s %6s %9s %9s\n", "run", "ok", "fail", "boots",
              "cuts", "net-drops", "signature");
  const auto row = [](const char* name, const Outcome& o) {
    std::printf("%-12s %8llu %8llu %6llu %6llu %9llu  %016llx\n", name,
                static_cast<unsigned long long>(o.ok),
                static_cast<unsigned long long>(o.fail),
                static_cast<unsigned long long>(o.boots),
                static_cast<unsigned long long>(o.power_cuts),
                static_cast<unsigned long long>(o.drops_partition),
                static_cast<unsigned long long>(o.signature()));
  };
  row("bare", bare);
  row("instrumented", run);

  std::printf("\nalert timeline (period=%llu ms):\n",
              static_cast<unsigned long long>(kPeriodMs));
  for (const telemetry::SloAlert& a : engine.alerts()) {
    std::printf("  t=%6llu ms  %-22s %-5s value=%.6g\n",
                static_cast<unsigned long long>(a.t_ms),
                engine.rule(a.rule).name.c_str(), a.fire ? "FIRE" : "clear",
                a.value);
  }

  const RuleTimeline avail_tl = timeline_of(engine, kAvail);
  const RuleTimeline burn_tl = timeline_of(engine, kBurn);
  const RuleTimeline lat_tl = timeline_of(engine, kLat);

  // Gate (a): one fire/clear pair per fault, aligned with onset/recovery.
  const bool edges_ok = run.down_at.size() == 1 && run.up_at.size() == 1 &&
                        run.power_cuts == 1;
  bool aligned = edges_ok;
  if (edges_ok) {
    const u64 cut_on = run.down_at[0];
    const u64 cut_off = run.up_at[0];
    aligned =
        avail_tl.fires.size() == 2 && avail_tl.clears.size() == 2 &&
        within(avail_tl.fires[0], kPartitionStart,
               kPartitionStart + kAvailFireBudget * kPeriodMs) &&
        within(avail_tl.clears[0], kPartitionEnd,
               kPartitionEnd + kClearBudget * kPeriodMs) &&
        within(avail_tl.fires[1], cut_on,
               cut_on + kAvailFireBudget * kPeriodMs) &&
        within(avail_tl.clears[1], cut_off,
               cut_off + kClearBudget * kPeriodMs) &&
        burn_tl.fires.size() == 2 && burn_tl.clears.size() == 2 &&
        within(burn_tl.fires[0], kPartitionStart,
               kPartitionStart + kBurnFireBudget * kPeriodMs) &&
        within(burn_tl.fires[1], cut_on,
               cut_on + kBurnFireBudget * kPeriodMs) &&
        !engine.firing(kAvail) && !engine.firing(kBurn);
  }

  // Gate (b): retained footprint inside the ring budget.
  const bool memory_ok = sampler.memory_bytes() <= kMemoryBudgetBytes;

  // Gate (c): observing the service did not change it.
  const bool passive_ok = bare.signature() == run.signature();

  // The kSlo trace stream must carry every logged transition.
  u64 slo_trace_events = 0;
  for (const telemetry::TraceEvent& e : telemetry::Tracer::global().events()) {
    if (e.layer == static_cast<u8>(telemetry::TraceLayer::kSlo)) {
      ++slo_trace_events;
    }
  }
  const bool traced_ok = slo_trace_events == engine.alerts().size();

  const double p99_resumed = sampler.window_percentile(
      "redirector.handshake_resumed_cycles", kRingCapacity, 99.0);

  std::printf(
      "\nsampler: %llu samples, %zu series, %zu bytes retained (budget %zu)\n",
      static_cast<unsigned long long>(sampler.samples()),
      sampler.series_count(), sampler.memory_bytes(), kMemoryBudgetBytes);
  std::printf("p99 resumed handshake: %.0f cycles (%.1f ms at 30 MHz)\n",
              p99_resumed, p99_resumed / 30'000.0);
  std::printf(
      "\ngates: aligned=%s  memory=%s  passive=%s  traced=%s\n",
      aligned ? "PASS" : "FAIL", memory_ok ? "PASS" : "FAIL",
      passive_ok ? "PASS" : "FAIL", traced_ok ? "PASS" : "FAIL");

  bench::JsonReport report("E17");
  report.result("seed", seed);
  report.result("run_polls", kRunPolls);
  report.result("period_ms", kPeriodMs);
  report.result("partition_start_ms", kPartitionStart);
  report.result("partition_end_ms", kPartitionEnd);
  report.result("powercut_onset_ms", edges_ok ? run.down_at[0] : 0);
  report.result("powercut_recover_ms", edges_ok ? run.up_at[0] : 0);
  report.result("requests_ok", run.ok);
  report.result("requests_failed", run.fail);
  report.result("clients_spawned", run.spawned);
  report.result("boots", run.boots);
  report.result("power_cuts", run.power_cuts);
  report.result("drops_partition", run.drops_partition);
  report.result("sampler.samples", sampler.samples());
  report.result("sampler.series", static_cast<u64>(sampler.series_count()));
  report.result("sampler.memory_bytes",
                static_cast<u64>(sampler.memory_bytes()));
  report.result("sampler.memory_budget_bytes",
                static_cast<u64>(kMemoryBudgetBytes));
  report.result("p99_resumed_handshake_cycles", p99_resumed);
  report.result("alerts.total", static_cast<u64>(engine.alerts().size()));
  report.result("alerts.slo_trace_events", slo_trace_events);
  report.result("avail.fires", static_cast<u64>(avail_tl.fires.size()));
  report.result("avail.clears", static_cast<u64>(avail_tl.clears.size()));
  if (avail_tl.fires.size() == 2 && avail_tl.clears.size() == 2) {
    report.result("avail.fire1_ms", avail_tl.fires[0]);
    report.result("avail.clear1_ms", avail_tl.clears[0]);
    report.result("avail.fire2_ms", avail_tl.fires[1]);
    report.result("avail.clear2_ms", avail_tl.clears[1]);
  }
  report.result("burn.fires", static_cast<u64>(burn_tl.fires.size()));
  report.result("burn.clears", static_cast<u64>(burn_tl.clears.size()));
  report.result("latency.fires", static_cast<u64>(lat_tl.fires.size()));
  report.result("gate.alerts_aligned", aligned);
  report.result("gate.memory_within_budget", memory_ok);
  report.result("gate.instrumentation_passive", passive_ok);
  report.result("gate.transitions_traced", traced_ok);
  report.timeseries(sampler);
  report.slo(engine);
  report.write(args);

  return (aligned && memory_ok && passive_ok && traced_ok) ? 0 : 1;
}
