// E8 (supporting) — host-side primitive costs, google-benchmark.
//
// The workstation-side numbers behind the system: reference vs T-table AES
// (the optimization gap *tuned C* buys on a 32-bit host, for contrast with
// E1's 8-bit story), SHA-1/HMAC, the record layer, and the bignum/RSA
// operations whose cost got RSA dropped from the port.
#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/modes.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "issl/record.h"

using namespace rmc;
using common::u8;

namespace {

std::vector<u8> random_bytes(std::size_t n, common::u64 seed) {
  common::Xorshift64 rng(seed);
  std::vector<u8> v(n);
  rng.fill(v);
  return v;
}

void BM_AesReferenceEncrypt(benchmark::State& state) {
  const auto key = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  auto aes = crypto::Aes::create(key);
  std::array<u8, 16> pt{}, ct{};
  for (auto _ : state) {
    aes->encrypt_block(pt, ct);
    benchmark::DoNotOptimize(ct);
    pt[0] = ct[0];  // chain to defeat dead-code elimination
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesReferenceEncrypt)->Arg(16)->Arg(24)->Arg(32);

void BM_AesFastEncrypt(benchmark::State& state) {
  const auto key = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  auto aes = crypto::AesFast::create(key);
  std::array<u8, 16> pt{}, ct{};
  for (auto _ : state) {
    aes->encrypt_block(pt, ct);
    benchmark::DoNotOptimize(ct);
    pt[0] = ct[0];
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesFastEncrypt)->Arg(16)->Arg(24)->Arg(32);

void BM_AesKeyExpansion(benchmark::State& state) {
  auto key = random_bytes(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    auto aes = crypto::Aes::create(key);
    benchmark::DoNotOptimize(aes);
    key[0] ^= 1;
  }
}
BENCHMARK(BM_AesKeyExpansion)->Arg(16)->Arg(32);

void BM_CbcEncrypt(benchmark::State& state) {
  const auto key = random_bytes(16, 4);
  const auto iv = random_bytes(16, 5);
  auto aes = crypto::AesFast::create(key);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    auto ct = crypto::cbc_encrypt(*aes, iv, data);
    benchmark::DoNotOptimize(ct);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CbcEncrypt)->Arg(256)->Arg(4096);

void BM_Sha1(benchmark::State& state) {
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto d = crypto::Sha1::digest(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha1(benchmark::State& state) {
  const auto key = random_bytes(20, 8);
  const auto data = random_bytes(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    auto d = crypto::hmac_sha1(key, data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha1)->Arg(64)->Arg(1024);

void BM_RecordSealOpen(benchmark::State& state) {
  common::Xorshift64 rng(10);
  issl::RecordCodec sender(rng), receiver(rng);
  issl::DirectionKeys k1, k2;
  k1.aes_key = random_bytes(16, 11);
  k2.aes_key = random_bytes(16, 12);
  (void)sender.activate_keys(k1, k2);
  (void)receiver.activate_keys(k2, k1);
  const auto payload =
      random_bytes(static_cast<std::size_t>(state.range(0)), 13);
  for (auto _ : state) {
    auto wire = sender.seal(issl::RecordType::kApplicationData, payload);
    (void)receiver.feed(*wire);
    auto rec = receiver.pop();
    benchmark::DoNotOptimize(rec);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordSealOpen)->Arg(64)->Arg(1024)->Arg(8192);

void BM_BigNumMul(benchmark::State& state) {
  common::Xorshift64 rng(14);
  const auto a = crypto::BigNum::random_bits(
      static_cast<std::size_t>(state.range(0)), rng);
  const auto b = crypto::BigNum::random_bits(
      static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto c = a * b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_BigNumMul)->Arg(256)->Arg(512)->Arg(1024);

void BM_BigNumModExp(benchmark::State& state) {
  common::Xorshift64 rng(15);
  const std::size_t bits = static_cast<std::size_t>(state.range(0));
  const auto base = crypto::BigNum::random_bits(bits, rng);
  const auto exp = crypto::BigNum::random_bits(17, rng);  // e ~ 65537 size
  const auto mod = crypto::BigNum::random_bits(bits, rng);
  for (auto _ : state) {
    auto r = base.modexp(exp, mod);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BigNumModExp)->Arg(256)->Arg(512);

void BM_RsaEncrypt(benchmark::State& state) {
  common::Xorshift64 rng(16);
  const auto kp =
      crypto::rsa_generate(static_cast<std::size_t>(state.range(0)), rng);
  const auto msg = random_bytes(8, 17);
  for (auto _ : state) {
    auto ct = crypto::rsa_encrypt(kp.pub, msg, rng);
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_RsaEncrypt)->Arg(256)->Arg(512);

void BM_RsaDecrypt(benchmark::State& state) {
  common::Xorshift64 rng(18);
  const auto kp =
      crypto::rsa_generate(static_cast<std::size_t>(state.range(0)), rng);
  const auto msg = random_bytes(8, 19);
  const auto ct = crypto::rsa_encrypt(kp.pub, msg, rng);
  for (auto _ : state) {
    auto pt = crypto::rsa_decrypt(kp.priv, *ct);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_RsaDecrypt)->Arg(256)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
