// E9 — chaos soak: the secure redirector under a deterministic fault sweep.
//
// The paper's service ran over a real, imperfect 10Base-T segment; E1–E7
// measure it on a clean simulated wire. E9 closes that gap: each scenario
// installs a composable FaultPlan (Gilbert–Elliott burst loss, per-byte
// payload corruption, duplication, jitter reordering, scheduled partitions)
// on the medium and drives a full secure-echo workload through the RMC
// redirector, reporting goodput, handshake success, retransmissions, MAC
// failures, and every degradation path the hardening added (handshake
// timeouts, backend retries, connection shedding, watchdog aborts).
//
// Everything is derived from --seed: the medium's PRNG, the payload bytes,
// and the per-client session RNGs. A fixed seed gives a byte-identical
// --json artifact, so robustness regressions diff machine-readably.
//
// Exit status is 1 if any scenario hangs (a client neither completes nor
// fails inside the budget) or if the moderate burst+corruption scenario
// moves no application bytes at all. Echo mismatches are reported, not
// fatal: the issl MAC makes them impossible on the secure leg, so each one
// is corruption on the plaintext redirector<->backend hop — the SSL
// terminator's trusted-LAN assumption, measured.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "services/redirector.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

struct Scenario {
  std::string name;
  net::FaultPlan plan;
};

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> v;
  v.push_back({"clean", net::FaultPlan{}});
  v.push_back({"loss2", net::FaultPlan::uniform_loss(0.02)});
  v.push_back({"burst5", net::FaultPlan::burst_loss(0.05)});
  {
    net::FaultPlan p = net::FaultPlan::burst_loss(0.05);
    p.corrupt_byte_probability = 0.001;
    v.push_back({"burst5_corrupt", p});
  }
  {
    net::FaultPlan p;
    p.jitter_ms = 8;
    p.duplicate_probability = 0.02;
    v.push_back({"jitter_dup", p});
  }
  {
    // Two outages sized against the TCP RTO (base 200 ms): the first hits
    // the handshakes, the second the transfer; both must be ridden out by
    // retransmission, not by giving up.
    net::FaultPlan p;
    p.partitions.push_back({20, 140});
    p.partitions.push_back({300, 460});
    v.push_back({"partition", p});
  }
  return v;
}

struct SoakResult {
  int completed = 0;
  int failed = 0;
  int stuck = 0;  // neither completed nor failed inside the budget = a hang
  int handshakes_ok = 0;
  // Echoed bytes differing from the payload. The issl MAC makes this
  // impossible on the secure leg, so every occurrence is corruption on the
  // *plaintext* redirector<->backend leg — the SSL terminator's trusted-LAN
  // assumption (paper §2) made visible as a measured quantity.
  int plaintext_leg_corruptions = 0;
  u64 bytes_echoed = 0;     // end-to-end verified echo bytes
  u64 svc_bytes = 0;        // bytes the redirector forwarded (either way)
  u64 elapsed_ms = 0;
  u64 worst_completion_ms = 0;
  u64 retransmissions = 0;
  u64 retx_giveups = 0;
  u64 mac_failures = 0;
  u64 hs_failures = 0;
  u64 hs_timeouts = 0;
  u64 backend_retries = 0;
  u64 shed = 0;
  u64 watchdogs = 0;
  u64 drops_loss = 0;
  u64 drops_partition = 0;
  u64 corrupted = 0;
  u64 duplicated = 0;
};

SoakResult run_scenario(u64 seed, const net::FaultPlan& plan, int offered,
                        std::size_t payload_bytes, u64 max_ms) {
  net::SimNet medium(seed);
  medium.set_fault_plan(plan);
  net::TcpStack board(medium, 1);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.psk = bytes_of("e9");
  cfg.handler_slots = 3;
  cfg.shed_when_busy = true;  // the observable degradation past the ceiling
  cfg.handshake_timeout_ms = 8'000;
  cfg.idle_timeout_ms = 10'000;
  services::RmcRedirector red(board, medium, cfg);
  SoakResult r;
  if (!red.start().is_ok()) return r;

  const u64 mac_before =
      telemetry::Registry::global().counter("issl.mac_failures").value();

  std::vector<u8> payload(payload_bytes);
  common::Xorshift64 fill(seed ^ 0xE9E9);
  fill.fill(payload);

  // The payload travels in 512-byte chunks, one issl record per chunk, the
  // next sent only after the previous echoed back. One corrupted record
  // then costs that session its remaining chunks (poisoned, fail closed)
  // instead of silently deciding the whole scenario — partial delivery is
  // exactly the graceful-degradation signal E9 measures.
  constexpr std::size_t kChunk = 512;
  std::vector<std::unique_ptr<services::Client>> clients;
  std::vector<std::size_t> sent(static_cast<std::size_t>(offered), 0);
  for (int i = 0; i < offered; ++i) {
    clients.push_back(std::make_unique<services::Client>(
        client_host, 1, 4433, true, issl::Config::embedded_port(),
        bytes_of("e9"), seed * 977 + static_cast<u64>(i)));
    (void)clients.back()->start();
    const std::size_t first = std::min(kChunk, payload_bytes);
    (void)clients.back()->send(
        std::span<const u8>(payload.data(), first));
    sent[static_cast<std::size_t>(i)] = first;
  }
  std::vector<int> state(static_cast<std::size_t>(offered), 0);  // 0 live
  std::vector<u64> settle_ms(static_cast<std::size_t>(offered), 0);
  std::vector<bool> hs_seen(static_cast<std::size_t>(offered), false);

  u64 t = 0;
  for (; t < max_ms; ++t) {
    bool all_settled = true;
    for (int i = 0; i < offered; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (state[idx] != 0) continue;
      services::Client& c = *clients[idx];
      const bool alive = c.poll();
      if (c.handshake_done()) hs_seen[idx] = true;
      if (c.received().size() >= payload_bytes) {
        state[idx] = 1;
        settle_ms[idx] = t;
        c.close();
      } else if (!alive || c.failed()) {
        state[idx] = 2;
        settle_ms[idx] = t;
      } else {
        if (c.received().size() >= sent[idx] && sent[idx] < payload_bytes) {
          const std::size_t n = std::min(kChunk, payload_bytes - sent[idx]);
          (void)c.send(std::span<const u8>(payload.data() + sent[idx], n));
          sent[idx] += n;
        }
        all_settled = false;
      }
    }
    red.poll();
    backend.poll();
    medium.tick(1);
    if (all_settled) break;
  }
  r.elapsed_ms = t;

  for (int i = 0; i < offered; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    services::Client& c = *clients[idx];
    if (state[idx] == 0) ++r.stuck;
    if (state[idx] == 2) ++r.failed;
    if (hs_seen[idx]) ++r.handshakes_ok;
    const std::size_t n = std::min(c.received().size(), payload.size());
    if (!std::equal(c.received().begin(), c.received().begin() +
                        static_cast<long>(n), payload.begin())) {
      ++r.plaintext_leg_corruptions;
      continue;
    }
    r.bytes_echoed += c.received().size();
    if (state[idx] == 1) {
      ++r.completed;
      r.worst_completion_ms = std::max(r.worst_completion_ms, settle_ms[idx]);
    }
  }
  r.svc_bytes = red.stats().bytes_client_to_backend +
                red.stats().bytes_backend_to_client;

  r.retransmissions = board.retransmissions() + client_host.retransmissions() +
                      backend_host.retransmissions();
  r.retx_giveups = board.retx_giveups() + client_host.retx_giveups() +
                   backend_host.retx_giveups();
  r.mac_failures =
      telemetry::Registry::global().counter("issl.mac_failures").value() -
      mac_before;
  r.hs_failures = red.stats().handshake_failures;
  r.hs_timeouts = red.stats().handshake_timeouts;
  r.backend_retries = red.stats().backend_retries;
  r.shed = red.stats().connections_shed;
  r.watchdogs = red.stats().watchdog_aborts;
  r.drops_loss = medium.drops_loss();
  r.drops_partition = medium.drops_partition();
  r.corrupted = medium.segments_corrupted();
  r.duplicated = medium.segments_duplicated();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.flag_int("seed", 0xE9));
  const int offered = static_cast<int>(args.flag_int("clients", 6));
  const std::size_t payload =
      static_cast<std::size_t>(args.flag_int("payload", 4096));
  const u64 max_ms = static_cast<u64>(args.flag_int("max-ms", 60'000));

  std::puts("================================================================");
  std::puts("E9: chaos soak -- secure redirector under injected faults");
  std::printf("    seed=%llu  clients=%d  payload=%zu B  budget=%llu virt ms\n",
              static_cast<unsigned long long>(seed), offered, payload,
              static_cast<unsigned long long>(max_ms));
  std::puts("================================================================\n");
  std::printf("%-16s %4s %4s %5s %6s %9s %6s %5s %5s %5s %5s %5s\n",
              "scenario", "done", "fail", "stuck", "hs-ok", "goodput",
              "retx", "mac", "shed", "wdog", "b-rty", "drop");

  bench::JsonReport report("E9");
  report.result("seed", seed);
  bool hang = false;
  u64 moderate_bytes = 1;  // burst5_corrupt must move application bytes

  for (const Scenario& s : make_scenarios()) {
    const SoakResult r = run_scenario(seed, s.plan, offered, payload, max_ms);
    // Goodput: application bytes the service moved per virtual ms. The
    // redirector's job is forwarding, so this counts both directions at the
    // service; end-to-end verified echo bytes are reported separately.
    const double goodput_kbps =
        r.elapsed_ms == 0
            ? 0.0
            : static_cast<double>(r.svc_bytes) /
                  static_cast<double>(r.elapsed_ms);
    std::printf("%-16s %4d %4d %5d %6d %7.2f/s %6llu %5llu %5llu %5llu %5llu %5llu\n",
                s.name.c_str(), r.completed, r.failed, r.stuck,
                r.handshakes_ok, goodput_kbps,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.mac_failures),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.watchdogs),
                static_cast<unsigned long long>(r.backend_retries),
                static_cast<unsigned long long>(r.drops_loss +
                                                r.drops_partition));
    if (r.stuck > 0) hang = true;
    if (s.name == "burst5_corrupt") moderate_bytes = r.svc_bytes;

    const std::string k = "scn." + s.name + ".";
    report.result(k + "completed", r.completed);
    report.result(k + "failed", r.failed);
    report.result(k + "stuck", r.stuck);
    report.result(k + "handshakes_ok", r.handshakes_ok);
    report.result(k + "plaintext_leg_corruptions", r.plaintext_leg_corruptions);
    report.result(k + "bytes_echoed", r.bytes_echoed);
    report.result(k + "bytes_forwarded", r.svc_bytes);
    report.result(k + "elapsed_ms", r.elapsed_ms);
    report.result(k + "worst_completion_ms", r.worst_completion_ms);
    report.result(k + "goodput_bytes_per_ms", goodput_kbps);
    report.result(k + "retransmissions", r.retransmissions);
    report.result(k + "retx_giveups", r.retx_giveups);
    report.result(k + "mac_failures", r.mac_failures);
    report.result(k + "handshake_failures", r.hs_failures);
    report.result(k + "handshake_timeouts", r.hs_timeouts);
    report.result(k + "backend_retries", r.backend_retries);
    report.result(k + "connections_shed", r.shed);
    report.result(k + "watchdog_aborts", r.watchdogs);
    report.result(k + "drops_loss", r.drops_loss);
    report.result(k + "drops_partition", r.drops_partition);
    report.result(k + "segments_corrupted", r.corrupted);
    report.result(k + "segments_duplicated", r.duplicated);
  }

  std::printf("\ngoodput is application bytes forwarded by the service per"
              " virtual ms;\nmac = record MAC failures (each poisons its session);"
              " shed/wdog/b-rty are\nthe redirector's explicit degradation"
              " paths. Zero 'stuck' clients means\nevery connection either"
              " completed or failed closed -- no hangs.\n");

  report.result("zero_hangs", !hang);
  report.result("moderate_goodput_nonzero", moderate_bytes > 0);
  report.write(args);

  if (hang || moderate_bytes == 0) return 1;
  return 0;
}
