// E5 — paper §2: "Security, sadly, is not cheap. ... Goldberg et al.
// observed SSL reducing throughput by an order of magnitude."
//
// Regenerates the comparison on our substrate, with the twist that makes it
// honest for a 30 MHz 8-bit target: the secure redirector's CPU cost is
// charged from the *measured E1 numbers* (cycles per AES block on the
// simulated board), for both cipher builds:
//
//   * "direct C port" costs   — what the paper's first port would sustain;
//   * "hand assembly" costs   — after adopting Rabbit's assembly cipher.
//
// Per-session handshake cost = measured AES key expansion + 22 *measured*
// SHA-1 compressions on the same board build (the PRF for master secret +
// key block is ~8 HMACs = 16 compressions, the two Finished MACs and the
// transcript hash add ~6 more). Bulk cost = AES cycles/byte + the per-64B
// MAC compression, both measured.
#include <cstdio>

#include "bench_util.h"
#include "dcc/codegen.h"
#include "rabbit/board.h"
#include "services/aes_port.h"
#include "services/redirector.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

struct CipherCost {
  u64 cycles_per_byte = 0;
  u64 handshake_cycles = 0;
};

// Measured cycles for one SHA-1 compression on the board (dc/sha1.dc).
u64 measure_sha1_block(const dcc::CodegenOptions& opts) {
  auto src = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                      "/dc/sha1.dc");
  if (!src.ok()) return 0;
  auto compiled = dcc::compile(*src, opts);
  if (!compiled.ok()) return 0;
  rabbit::Board board;
  board.load(compiled->image);
  (void)board.call("f_sha1_init", 100'000'000);
  auto r = board.call("f_sha1_block", 500'000'000);
  return r.ok() ? r->cycles : 0;
}

// `assembly_treatment`: the paper's endpoint — ALL crypto kernels get the
// hand-assembly rewrite. We measured an assembly SHA-1 is not shipped with
// the kit, so its cost is the measured C compression scaled by the E1
// assembly/C ratio (documented estimate; the AES numbers are all measured).
CipherCost measure_cost(services::AesImpl impl, bool assembly_treatment,
                        const dcc::CodegenOptions& opts = {}) {
  auto aes = services::AesOnBoard::create_from_repo(impl, RMC_REPO_ROOT, opts);
  if (!aes.ok()) {
    std::printf("load failed: %s\n", aes.status().to_string().c_str());
    std::exit(1);
  }
  common::Xorshift64 rng(1);
  std::array<u8, 16> key{}, pt{}, ct{};
  rng.fill(key);
  rng.fill(pt);
  const u64 keyexp = *aes->set_key(key);
  const u64 block = *aes->encrypt(pt, ct);
  u64 sha = measure_sha1_block(dcc::CodegenOptions::debug_defaults());
  if (assembly_treatment) {
    // Scale by the measured E1 ratio (C debug block / asm block).
    auto c_aes = services::AesOnBoard::create_from_repo(
        services::AesImpl::kCompiledC, RMC_REPO_ROOT,
        dcc::CodegenOptions::debug_defaults());
    (void)c_aes->set_key(key);
    const u64 c_block = *c_aes->encrypt(pt, ct);
    sha = sha * block / c_block;
  }
  CipherCost cost;
  cost.cycles_per_byte = block / 16 + sha / 64;  // cipher + HMAC share
  cost.handshake_cycles = keyexp + 22 * sha;     // PRF + Finished (header)
  return cost;
}

struct Run {
  double virtual_seconds = 0;
  u64 bytes_echoed = 0;
  double bytes_per_second() const {
    return virtual_seconds > 0 ? bytes_echoed / virtual_seconds : 0;
  }
};

Run serve(bool secure, const CipherCost& cost, int connections,
          std::size_t payload_bytes) {
  net::SimNet medium(0xE5);
  net::TcpStack board(medium, 1);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.secure = secure;
  cfg.psk = bytes_of("e5");
  cfg.handler_slots = 3;
  if (secure) {
    cfg.crypto_cycles_per_byte = cost.cycles_per_byte;
    cfg.crypto_cycles_handshake = cost.handshake_cycles;
  }
  services::RmcRedirector red(board, medium, cfg);
  (void)red.start();

  std::vector<u8> payload(payload_bytes);
  common::Xorshift64 fill(1);
  fill.fill(payload);

  Run run;
  const u64 t0 = medium.now_ms();
  for (int conn = 0; conn < connections; ++conn) {
    services::Client client(client_host, 1, 4433, secure,
                            issl::Config::embedded_port(), bytes_of("e5"),
                            0xE500 + conn);
    (void)client.start();
    (void)client.send(payload);
    for (int round = 0; round < 2'000'000; ++round) {
      red.poll();
      backend.poll();
      (void)client.poll();
      medium.tick(1);
      if (client.received().size() >= payload.size()) break;
    }
    run.bytes_echoed += client.received().size();
    client.close();
    for (int round = 0; round < 10; ++round) {
      red.poll();
      medium.tick(1);
    }
  }
  run.virtual_seconds = static_cast<double>(medium.now_ms() - t0) / 1e3;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int kConns = static_cast<int>(args.flag_int("conns", 3));

  std::puts("=================================================================");
  std::puts("E5: plaintext vs issl-secured redirector throughput");
  std::puts("    (paper Section 2, citing Goldberg et al.: SSL cost ~10x)");
  std::puts("=================================================================\n");

  const CipherCost c_port =
      measure_cost(services::AesImpl::kCompiledC, false,
                   dcc::CodegenOptions::debug_defaults());
  const CipherCost hand =
      measure_cost(services::AesImpl::kHandAssembly, true);
  std::printf("measured on-board cipher costs (from E1):\n");
  std::printf("  direct C port: %llu cyc/B bulk, %llu cyc handshake "
              "(%.1f ms)\n",
              static_cast<unsigned long long>(c_port.cycles_per_byte),
              static_cast<unsigned long long>(c_port.handshake_cycles),
              c_port.handshake_cycles / 30'000.0);
  std::printf("  asm treatment: %llu cyc/B bulk, %llu cyc handshake "
              "(%.1f ms)\n\n",
              static_cast<unsigned long long>(hand.cycles_per_byte),
              static_cast<unsigned long long>(hand.handshake_cycles),
              hand.handshake_cycles / 30'000.0);

  bench::JsonReport report("E5");
  report.result("c_port.cycles_per_byte", c_port.cycles_per_byte);
  report.result("c_port.handshake_cycles", c_port.handshake_cycles);
  report.result("asm.cycles_per_byte", hand.cycles_per_byte);
  report.result("asm.handshake_cycles", hand.handshake_cycles);

  std::printf("%10s %12s %14s %8s %14s %8s\n", "payload B", "plain B/s",
              "secure(C) B/s", "slow", "secure(asm) B/s", "slow");
  double small_c_slowdown = 0;
  for (const std::size_t payload : {64u, 512u, 4096u, 16384u}) {
    const Run plain = serve(false, {}, kConns, payload);
    const Run sec_c = serve(true, c_port, kConns, payload);
    const Run sec_asm = serve(true, hand, kConns, payload);
    const double slow_c = plain.bytes_per_second() / sec_c.bytes_per_second();
    const double slow_asm =
        plain.bytes_per_second() / sec_asm.bytes_per_second();
    if (payload == 64u) small_c_slowdown = slow_c;
    std::printf("%10zu %12.0f %14.0f %7.1fx %14.0f %7.1fx\n", payload,
                plain.bytes_per_second(), sec_c.bytes_per_second(), slow_c,
                sec_asm.bytes_per_second(), slow_asm);
    const std::string row = "payload_" + std::to_string(payload);
    report.result(row + ".plain_bytes_per_s", plain.bytes_per_second());
    report.result(row + ".secure_c_bytes_per_s", sec_c.bytes_per_second());
    report.result(row + ".secure_asm_bytes_per_s",
                  sec_asm.bytes_per_second());
    report.result(row + ".slowdown_c", slow_c);
    report.result(row + ".slowdown_asm", slow_asm);
  }

  std::printf("\nwith the direct C port's crypto the secure service is %.0fx "
              "slower even on\nsmall requests, and the gap *grows* with "
              "payload: on this CPU the bulk\ncrypto, not the handshake, is "
              "the bottleneck -- the opposite regime from\nGoldberg's "
              "workstation. Rewriting the kernels in assembly (the paper's\n"
              "endpoint) recovers an order of magnitude but still leaves "
              "security costing\n~10x at bulk sizes -- securing this class "
              "of device is simply expensive.\n",
              small_c_slowdown);

  report.result("small_payload_c_slowdown", small_c_slowdown);
  report.write(args);
  return 0;
}
