// E14 — the paper's question, re-run at today's frontier.
//
// §6 showed hand assembly beating the C port by an order of magnitude and
// the paper stopped there: on a 2003 microcontroller those were the only
// two places crypto could live. The CryptoSRAM / security-processor
// literature (PAPERS.md) gives the modern third answer — a dedicated
// offload engine — so this bench extends E1's asm-vs-C table with an
// "engine" column (the simulated CryptoCell peripheral behind the
// dynk::CryptoDev driver) and then re-measures E5's "SSL costs an order of
// magnitude" claim with the offload in place.
//
// Three parts:
//   1. primitive costs: AES key setup + per-block and HMAC per-64B, for the
//      C port and asm treatment (measured on the simulated board, as in
//      E1/E5) and for the engine (measured through the driver as CPU stall
//      cycles, descriptor + DMA overhead included);
//   2. record-layer gate: the same issl session run under Backend::kC,
//      kAsm, and kEngine must put byte-identical records on the wire and
//      deliver identical plaintexts; the engine must cost >= 5x less per
//      record than the C backend; kEngine on a board with no engine must
//      fall back to kC with — again — identical bytes. FAILING ANY OF
//      THESE EXITS NONZERO.
//   3. the E5 table with the engine column: secure-vs-plain throughput when
//      record crypto is (modeled as) offloaded — does the redirector
//      finally become network-bound?
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "dcc/codegen.h"
#include "dynk/cryptodev.h"
#include "issl/issl.h"
#include "rabbit/board.h"
#include "services/aes_port.h"
#include "services/redirector.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// ---------------------------------------------------------------------------
// Part 1: primitive costs
// ---------------------------------------------------------------------------

struct PrimitiveCost {
  u64 keysetup = 0;     // AES key schedule (engine: key-load op)
  u64 aes_block = 0;    // per 16-byte block
  u64 sha1_block = 0;   // per 64-byte MAC chunk (engine: HMAC marginal)
};

u64 measure_sha1_block(const dcc::CodegenOptions& opts) {
  auto src =
      services::read_text_file(std::string(RMC_REPO_ROOT) + "/dc/sha1.dc");
  if (!src.ok()) return 0;
  auto compiled = dcc::compile(*src, opts);
  if (!compiled.ok()) return 0;
  rabbit::Board board;
  board.load(compiled->image);
  (void)board.call("f_sha1_init", 100'000'000);
  auto r = board.call("f_sha1_block", 500'000'000);
  return r.ok() ? r->cycles : 0;
}

// Software costs, measured exactly as E5 measures them: AES on the
// simulated board (hand assembly or the MiniDynC debug build), SHA-1 from
// the C build scaled by the measured asm/C AES ratio for the asm treatment.
PrimitiveCost measure_software(services::AesImpl impl,
                               bool assembly_treatment) {
  const auto opts = assembly_treatment ? dcc::CodegenOptions{}
                                       : dcc::CodegenOptions::debug_defaults();
  auto aes = services::AesOnBoard::create_from_repo(impl, RMC_REPO_ROOT, opts);
  if (!aes.ok()) {
    std::printf("load failed: %s\n", aes.status().to_string().c_str());
    std::exit(1);
  }
  common::Xorshift64 rng(1);
  std::array<u8, 16> key{}, pt{}, ct{};
  rng.fill(key);
  rng.fill(pt);
  PrimitiveCost cost;
  cost.keysetup = *aes->set_key(key);
  cost.aes_block = *aes->encrypt(pt, ct);
  cost.sha1_block = measure_sha1_block(dcc::CodegenOptions::debug_defaults());
  if (assembly_treatment) {
    auto c_aes = services::AesOnBoard::create_from_repo(
        services::AesImpl::kCompiledC, RMC_REPO_ROOT,
        dcc::CodegenOptions::debug_defaults());
    (void)c_aes->set_key(key);
    const u64 c_block = *c_aes->encrypt(pt, ct);
    cost.sha1_block = cost.sha1_block * cost.aes_block / c_block;
  }
  return cost;
}

// Engine costs, measured through the driver: CPU stall cycles per op,
// descriptor fetch + DMA + poll-quantum rounding all included — the honest
// "what does the CPU see" number, not the datasheet figure.
PrimitiveCost measure_engine(rabbit::CryptoCellTiming timing) {
  rabbit::Board board;
  board.attach_cryptocell(timing);
  dynk::CryptoDev dev(board.io(), board.mem());
  if (!dev.available()) {
    std::puts("engine did not answer its probe");
    std::exit(1);
  }
  const std::vector<u8> key(16, 0x42);
  const std::vector<u8> iv(16, 0x17);
  auto stall = [&] { return dev.stall_cycles_total(); };

  // Key load: first op carries the slot load, a repeat op does not.
  u64 before = stall();
  (void)dev.aes_cbc(true, key, iv, std::vector<u8>(16, 1));
  const u64 first_op = stall() - before;
  before = stall();
  (void)dev.aes_cbc(true, key, iv, std::vector<u8>(16, 1));
  const u64 one_block_op = stall() - before;

  PrimitiveCost cost;
  cost.keysetup = first_op - one_block_op;
  // Marginal block cost over a 33-block op (amortizes descriptor + poll
  // rounding out of the per-block figure).
  before = stall();
  (void)dev.aes_cbc(true, key, iv, std::vector<u8>(33 * 16, 2));
  const u64 big_op = stall() - before;
  cost.aes_block = (big_op - one_block_op) / 32;

  const std::vector<u8> mac_key(20, 0x33);
  before = stall();
  (void)dev.hmac_sha1(mac_key, std::vector<u8>(64, 3));
  const u64 hmac_small = stall() - before;
  before = stall();
  (void)dev.hmac_sha1(mac_key, std::vector<u8>(33 * 64, 4));
  cost.sha1_block = (stall() - before - hmac_small) / 32;
  if (cost.sha1_block == 0) cost.sha1_block = 1;
  return cost;
}

// ---------------------------------------------------------------------------
// Part 2: record-layer identity + speed gate
// ---------------------------------------------------------------------------

// Two byte queues with wire capture: endpoint A writes into `a2b` (captured),
// reads from `b2a`, and vice versa.
struct DuplexPipe {
  struct End final : public issl::ByteStream {
    std::vector<u8>* out;
    std::vector<u8>* in;
    std::vector<u8>* capture;
    common::Result<std::size_t> write(std::span<const u8> data) override {
      out->insert(out->end(), data.begin(), data.end());
      capture->insert(capture->end(), data.begin(), data.end());
      return data.size();
    }
    common::Result<std::size_t> read(std::span<u8> dst) override {
      if (in->empty()) {
        return common::Status(common::ErrorCode::kUnavailable, "empty");
      }
      const std::size_t n = std::min(dst.size(), in->size());
      std::copy(in->begin(), in->begin() + static_cast<long>(n), dst.begin());
      in->erase(in->begin(), in->begin() + static_cast<long>(n));
      return n;
    }
    bool open() const override { return true; }
    void close() override {}
  };

  std::vector<u8> a2b, b2a, wire_a2b, wire_b2a;
  End a{}, b{};
  DuplexPipe() {
    a.out = &a2b; a.in = &b2a; a.capture = &wire_a2b;
    b.out = &b2a; b.in = &a2b; b.capture = &wire_b2a;
  }
};

struct SessionRun {
  bool ok = false;
  bool client_fallback = false;
  std::vector<u8> wire_c2s, wire_s2c;  // every byte each side emitted
  std::vector<u8> echoed;              // plaintext the client got back
  u64 client_record_cycles = 0;
  u64 server_record_cycles = 0;
};

// One full client<->server exchange over in-memory pipes: handshake, then
// `records` application records of `payload` bytes each, echoed by the
// server. Deterministic: fixed seeds, no network, no timers.
SessionRun run_session(issl::Backend backend, issl::RecordEngine* engine,
                       int records, std::size_t payload) {
  DuplexPipe pipe;
  common::Xorshift64 client_rng(0xE14C);
  common::Xorshift64 server_rng(0xE145);
  issl::Config cfg = issl::Config::embedded_port();
  cfg.backend = backend;
  cfg.engine = engine;
  const auto psk = bytes_of("e14-offload");

  auto client = issl::issl_bind_client(pipe.a, cfg, client_rng, psk);
  issl::ServerIdentity id;
  id.psk = psk;
  auto server = issl::issl_bind_server(pipe.b, cfg, server_rng, std::move(id));

  SessionRun run;
  for (int i = 0; i < 200 && !(client.established() && server.established());
       ++i) {
    (void)client.pump();
    (void)server.pump();
    if (client.failed() || server.failed()) return run;
  }
  if (!client.established() || !server.established()) return run;

  std::vector<u8> msg(payload);
  common::Xorshift64 fill(7);
  for (int r = 0; r < records; ++r) {
    fill.fill(msg);
    if (!client.write(msg).ok()) return run;
    std::vector<u8> got;
    for (int i = 0; i < 50 && got.size() < msg.size(); ++i) {
      (void)server.pump();
      auto rd = server.read();
      if (rd.ok()) got.insert(got.end(), rd->begin(), rd->end());
    }
    if (!server.write(got).ok()) return run;
    for (int i = 0; i < 50; ++i) {
      (void)client.pump();
      auto rd = client.read();
      if (rd.ok()) run.echoed.insert(run.echoed.end(), rd->begin(), rd->end());
    }
  }
  run.ok = true;
  run.client_fallback = client.engine_fallback();
  run.wire_c2s = pipe.wire_a2b;
  run.wire_s2c = pipe.wire_b2a;
  run.client_record_cycles = client.record_cost_cycles();
  run.server_record_cycles = server.record_cost_cycles();
  return run;
}

// ---------------------------------------------------------------------------
// Part 3: the E5 measurement with the engine column
// ---------------------------------------------------------------------------

struct CipherCost {
  u64 cycles_per_byte = 0;
  u64 handshake_cycles = 0;
};

CipherCost to_cipher_cost(const PrimitiveCost& p) {
  CipherCost c;
  c.cycles_per_byte = p.aes_block / 16 + p.sha1_block / 64;
  c.handshake_cycles = p.keysetup + 22 * p.sha1_block;
  return c;
}

struct Run {
  double virtual_seconds = 0;
  u64 bytes_echoed = 0;
  double bytes_per_second() const {
    return virtual_seconds > 0 ? bytes_echoed / virtual_seconds : 0;
  }
};

Run serve(bool secure, const CipherCost& cost, int connections,
          std::size_t payload_bytes) {
  net::SimNet medium(0xE14);
  net::TcpStack board(medium, 1);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.secure = secure;
  cfg.psk = bytes_of("e14");
  cfg.handler_slots = 3;
  if (secure) {
    cfg.crypto_cycles_per_byte = cost.cycles_per_byte;
    cfg.crypto_cycles_handshake = cost.handshake_cycles;
  }
  services::RmcRedirector red(board, medium, cfg);
  (void)red.start();

  std::vector<u8> payload(payload_bytes);
  common::Xorshift64 fill(1);
  fill.fill(payload);

  Run run;
  const u64 t0 = medium.now_ms();
  for (int conn = 0; conn < connections; ++conn) {
    services::Client client(client_host, 1, 4433, secure,
                            issl::Config::embedded_port(), bytes_of("e14"),
                            0xE1400 + conn);
    (void)client.start();
    (void)client.send(payload);
    for (int round = 0; round < 2'000'000; ++round) {
      red.poll();
      backend.poll();
      (void)client.poll();
      medium.tick(1);
      if (client.received().size() >= payload.size()) break;
    }
    run.bytes_echoed += client.received().size();
    client.close();
    for (int round = 0; round < 10; ++round) {
      red.poll();
      medium.tick(1);
    }
  }
  run.virtual_seconds = static_cast<double>(medium.now_ms() - t0) / 1e3;
  return run;
}

bool gate_fail(bench::JsonReport& report, const char* what) {
  std::printf("GATE FAIL: %s\n", what);
  report.result("gate.pass", false);
  report.result("gate.fail_reason", what);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int kConns = static_cast<int>(args.flag_int("conns", 3));
  const int kRecords = static_cast<int>(args.flag_int("records", 8));
  const std::string kBackend = args.flag_str("backend", "all");
  if (kBackend != "all" && kBackend != "c" && kBackend != "asm" &&
      kBackend != "engine") {
    std::fprintf(stderr, "--backend must be all|c|asm|engine\n");
    return 2;
  }

  std::puts("=================================================================");
  std::puts("E14: crypto offload engine vs the paper's asm-vs-C answer");
  std::puts("    (ROADMAP item 3: re-run the question at today's frontier)");
  std::puts("=================================================================\n");

  bench::JsonReport report("E14");

  // --- Part 1: primitive table (E1 + engine column) -----------------------
  const PrimitiveCost c_cost =
      measure_software(services::AesImpl::kCompiledC, false);
  const PrimitiveCost asm_cost =
      measure_software(services::AesImpl::kHandAssembly, true);
  const PrimitiveCost eng_cost = measure_engine({});

  std::printf("%-22s %14s %14s %14s\n", "cycles", "C port", "asm", "engine");
  std::printf("%-22s %14llu %14llu %14llu\n", "AES key setup",
              static_cast<unsigned long long>(c_cost.keysetup),
              static_cast<unsigned long long>(asm_cost.keysetup),
              static_cast<unsigned long long>(eng_cost.keysetup));
  std::printf("%-22s %14llu %14llu %14llu\n", "AES block (16 B)",
              static_cast<unsigned long long>(c_cost.aes_block),
              static_cast<unsigned long long>(asm_cost.aes_block),
              static_cast<unsigned long long>(eng_cost.aes_block));
  std::printf("%-22s %14llu %14llu %14llu\n\n", "SHA-1 block (64 B)",
              static_cast<unsigned long long>(c_cost.sha1_block),
              static_cast<unsigned long long>(asm_cost.sha1_block),
              static_cast<unsigned long long>(eng_cost.sha1_block));
  std::printf("engine speedup: %llux over asm, %llux over the C port "
              "(per AES block)\n\n",
              static_cast<unsigned long long>(asm_cost.aes_block /
                                              eng_cost.aes_block),
              static_cast<unsigned long long>(c_cost.aes_block /
                                              eng_cost.aes_block));

  report.result("c.keysetup_cycles", c_cost.keysetup);
  report.result("c.aes_block_cycles", c_cost.aes_block);
  report.result("c.sha1_block_cycles", c_cost.sha1_block);
  report.result("asm.keysetup_cycles", asm_cost.keysetup);
  report.result("asm.aes_block_cycles", asm_cost.aes_block);
  report.result("asm.sha1_block_cycles", asm_cost.sha1_block);
  report.result("engine.keyload_cycles", eng_cost.keysetup);
  report.result("engine.aes_block_cycles", eng_cost.aes_block);
  report.result("engine.sha1_block_cycles", eng_cost.sha1_block);

  // --- Part 2: record-layer identity + speed gate -------------------------
  // One engine, shared by the client and server sessions (as the board's
  // two redirector directions would share it).
  rabbit::Board engine_board;
  engine_board.attach_cryptocell({});
  dynk::CryptoDev dev(engine_board.io(), engine_board.mem());

  const std::size_t kGatePayload = 1024;
  const auto run_c =
      run_session(issl::Backend::kC, nullptr, kRecords, kGatePayload);
  const auto run_asm =
      run_session(issl::Backend::kAsm, nullptr, kRecords, kGatePayload);
  const auto run_eng =
      run_session(issl::Backend::kEngine, &dev, kRecords, kGatePayload);
  // A session *configured* for the engine on a board without one must fall
  // back to software and still interoperate bit-for-bit.
  rabbit::Board stock_board;  // no attach_cryptocell: probe reads 0xFF
  dynk::CryptoDev absent(stock_board.io(), stock_board.mem());
  const auto run_fb =
      run_session(issl::Backend::kEngine, &absent, kRecords, kGatePayload);

  bool pass = true;
  if (!run_c.ok || !run_asm.ok || !run_eng.ok || !run_fb.ok) {
    pass = gate_fail(report, "a session failed to complete");
  } else if (run_eng.wire_c2s != run_c.wire_c2s ||
             run_eng.wire_s2c != run_c.wire_s2c ||
             run_asm.wire_c2s != run_c.wire_c2s) {
    pass = gate_fail(report, "wire bytes differ across backends");
  } else if (run_eng.echoed != run_c.echoed ||
             run_eng.echoed.size() !=
                 static_cast<std::size_t>(kRecords) * kGatePayload) {
    pass = gate_fail(report, "plaintexts differ across backends");
  } else if (!run_fb.client_fallback ||
             run_fb.wire_c2s != run_c.wire_c2s ||
             run_fb.wire_s2c != run_c.wire_s2c) {
    pass = gate_fail(report, "absent-engine fallback not clean");
  } else if (run_eng.client_record_cycles * 5 > run_c.client_record_cycles) {
    pass = gate_fail(report, "engine backend not >=5x faster than C");
  }

  if (pass) {
    report.result("gate.pass", true);
    std::printf("gate: %d x %zu B records -- wire identical across "
                "c/asm/engine,\n      fallback clean, engine %llux cheaper "
                "per record than C\n\n",
                kRecords, kGatePayload,
                static_cast<unsigned long long>(
                    run_c.client_record_cycles /
                    run_eng.client_record_cycles));
  }
  report.result("gate.records", static_cast<u64>(kRecords));
  report.result("gate.payload_bytes", static_cast<u64>(kGatePayload));
  report.result("gate.c_record_cycles", run_c.client_record_cycles);
  report.result("gate.asm_record_cycles", run_asm.client_record_cycles);
  report.result("gate.engine_record_cycles", run_eng.client_record_cycles);
  report.result("gate.engine_server_record_cycles",
                run_eng.server_record_cycles);
  report.result("gate.fallback_used_c", run_fb.client_fallback);

  // --- Part 3: E5 with the engine column ----------------------------------
  const CipherCost c_cipher = to_cipher_cost(c_cost);
  const CipherCost asm_cipher = to_cipher_cost(asm_cost);
  const CipherCost eng_cipher = to_cipher_cost(eng_cost);
  report.result("engine.cycles_per_byte", eng_cipher.cycles_per_byte);
  report.result("engine.handshake_cycles", eng_cipher.handshake_cycles);

  const bool want_c = kBackend == "all" || kBackend == "c";
  const bool want_asm = kBackend == "all" || kBackend == "asm";
  const bool want_eng = kBackend == "all" || kBackend == "engine";

  std::printf("%10s %12s", "payload B", "plain B/s");
  if (want_c) std::printf(" %12s %6s", "C B/s", "slow");
  if (want_asm) std::printf(" %12s %6s", "asm B/s", "slow");
  if (want_eng) std::printf(" %12s %6s", "engine B/s", "slow");
  std::printf("\n");

  double engine_bulk_slowdown = 0;
  for (const std::size_t payload : {64u, 512u, 4096u, 16384u}) {
    const Run plain = serve(false, {}, kConns, payload);
    const std::string row = "payload_" + std::to_string(payload);
    report.result(row + ".plain_bytes_per_s", plain.bytes_per_second());
    std::printf("%10zu %12.0f", payload, plain.bytes_per_second());
    if (want_c) {
      const Run r = serve(true, c_cipher, kConns, payload);
      const double slow = plain.bytes_per_second() / r.bytes_per_second();
      report.result(row + ".secure_c_bytes_per_s", r.bytes_per_second());
      report.result(row + ".slowdown_c", slow);
      std::printf(" %12.0f %5.1fx", r.bytes_per_second(), slow);
    }
    if (want_asm) {
      const Run r = serve(true, asm_cipher, kConns, payload);
      const double slow = plain.bytes_per_second() / r.bytes_per_second();
      report.result(row + ".secure_asm_bytes_per_s", r.bytes_per_second());
      report.result(row + ".slowdown_asm", slow);
      std::printf(" %12.0f %5.1fx", r.bytes_per_second(), slow);
    }
    if (want_eng) {
      const Run r = serve(true, eng_cipher, kConns, payload);
      const double slow = plain.bytes_per_second() / r.bytes_per_second();
      report.result(row + ".secure_engine_bytes_per_s", r.bytes_per_second());
      report.result(row + ".slowdown_engine", slow);
      std::printf(" %12.0f %5.1fx", r.bytes_per_second(), slow);
      if (payload == 16384u) engine_bulk_slowdown = slow;
    }
    std::printf("\n");
  }

  if (want_eng) {
    std::printf("\nwith record crypto offloaded the secure redirector runs "
                "within %.1fx of\nplaintext even at bulk sizes: the service "
                "is network/CPU-bound on TCP and\nforwarding, not on "
                "ciphering. The 2003 question 'C or assembly?' had the\n"
                "2023 answer 'neither' -- the same conclusion CryptoSRAM "
                "reaches from the\nmemory side.\n",
                engine_bulk_slowdown);
    report.result("engine_bulk_slowdown", engine_bulk_slowdown);
  }

  report.write(args);
  return pass ? 0 : 1;
}
