// E7 — paper §5.2 (memory): the xalloc-without-free discipline and the
// static-allocation fallout.
//
//   "Dynamic C does not support the standard library functions malloc and
//    free. Instead, it provides the xalloc function ... there is no
//    analogue to free; allocated memory cannot be returned to a pool.
//    Instead of implementing our own memory management system ... we chose
//    to remove all references to malloc and statically allocate all
//    variables. This prompted us to drop support of multiple key and block
//    sizes in the issl library."
//
// Two measurements:
//  (a) arena lifetime: how many malloc-style sessions a 128 KiB-class SRAM
//      budget survives when per-session buffers are xalloc'd and never
//      freed — vs the static-allocation plan, which runs forever;
//  (b) the static footprint of the embedded service per compiled-in
//      connection slot (the real cost of "just statically allocate").
#include <cstdio>

#include "bench_util.h"
#include "dynk/xalloc.h"

using namespace rmc;

namespace {

// What one issl session would xalloc if ported naively (malloc-style):
// per-connection socket buffers + session keys + record staging.
constexpr std::size_t kRxBuffer = 2048;
constexpr std::size_t kTxBuffer = 2048;
constexpr std::size_t kKeyBlock = 2 * (20 + 32);  // MACs + max AES keys
constexpr std::size_t kRecordStaging = 1024;
constexpr std::size_t kPerSession =
    kRxBuffer + kTxBuffer + kKeyBlock + kRecordStaging;

// The static plan the paper adopted: one fixed-size slot per compiled-in
// handler, AES-128 only (the dropped key sizes!).
constexpr std::size_t kStaticSlot128 = 2048 + 2048 + 2 * (20 + 16) + 1024;
constexpr std::size_t kStaticSlotAllSizes = kPerSession;  // must size for 256

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  // The RMC2000 has 128 KiB SRAM; the default heap is what's left after the
  // static program data (~32 KiB).
  const std::size_t kArenaBytes =
      static_cast<std::size_t>(args.flag_int("arena-kib", 96)) * 1024;

  std::puts("================================================================");
  std::puts("E7: xalloc-without-free vs static allocation (paper Section 5.2)");
  std::puts("================================================================\n");

  // (a) Arena lifetime under naive dynamic allocation.
  dynk::XallocArena arena(kArenaBytes);
  int sessions = 0;
  while (true) {
    auto a = arena.xalloc(kPerSession);
    if (!a.ok()) break;  // no free() exists: this is permanent
    ++sessions;
  }
  std::printf("(a) naive malloc-style port, %zu KiB arena, %zu B/session:\n",
              kArenaBytes / 1024, kPerSession);
  std::printf("    sessions until permanent exhaustion: %d\n", sessions);
  std::printf("    arena used at death: %zu/%zu B, failed allocations: %llu\n",
              arena.used(), arena.capacity(),
              static_cast<unsigned long long>(arena.failed_allocations()));
  std::puts("    (the device then needs a restart -- the 'sloppy memory\n"
            "     management cured by restarting' anti-pattern of Section 5)\n");

  // (b) Static allocation: footprint per compiled-in slot.
  std::puts("(b) the port's static plan: fixed slots, sized at compile time");
  std::printf("%14s %22s %26s\n", "handler slots", "AES-128 only (B)",
              "all key sizes kept (B)");
  for (int slots = 1; slots <= 8; ++slots) {
    std::printf("%14d %22zu %26zu\n", slots, slots * kStaticSlot128,
                slots * kStaticSlotAllSizes);
  }
  const std::size_t saved_bytes = kStaticSlotAllSizes - kStaticSlot128;
  std::printf("\ndropping 192/256-bit support saves %zu B per slot of key "
              "material --\nmodest, which matches the paper's framing: the "
              "drop was about *simplicity*\n(one key schedule variant, one "
              "set of tables, one unrolled round count to\nsize statically), "
              "not about reclaiming RAM. Going static at all is what\nmakes "
              "the service run unbounded on a free-less allocator (part a).\n",
              saved_bytes);
  std::printf("sessions served by the static plan: unbounded (slots recycle; "
              "verified\nby tests/test_services.cc "
              "WrongPskClientIsRejectedAndSlotRecycles)\n");

  bench::JsonReport report("E7");
  report.result("arena_bytes", kArenaBytes);
  report.result("bytes_per_session", kPerSession);
  report.result("sessions_until_exhaustion", sessions);
  report.result("arena_used_at_death", arena.used());
  report.result("failed_allocations", arena.failed_allocations());
  report.result("static_slot_bytes_aes128", kStaticSlot128);
  report.result("static_slot_bytes_all_sizes", kStaticSlotAllSizes);
  report.write(args);
  return 0;
}
