// E6 — session negotiation cost (paper §2: "Establishing and maintaining a
// secure connection is a computationally-intensive task; negotiating an SSL
// session can degrade server performance").
//
// Breaks the issl session down: handshake latency (virtual ms on the
// simulated network) and handshake message count for PSK (the embedded
// port) vs RSA at several modulus sizes (the Unix build; also what the port
// *saved* by dropping RSA with the bignum package), plus bulk-transfer
// records per session to show where the crossover to cipher-dominated cost
// sits.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "issl/issl.h"
#include "net/simnet.h"
#include "net/tcp.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

struct HandshakeRun {
  u64 virtual_ms = 0;
  double host_ms = 0;  // host CPU time: dominated by bignum for RSA
  std::size_t messages = 0;
  bool ok = false;
};

HandshakeRun run_handshake(const issl::Config& config) {
  net::SimNet medium(0xE6);
  net::TcpStack server_stack(medium, 1);
  net::TcpStack client_stack(medium, 2);
  auto listener = server_stack.listen(4433);
  auto csock = client_stack.connect(1, 4433);
  medium.tick(20);
  auto ssock = server_stack.accept(*listener);
  issl::TcpStream server_stream(server_stack, *ssock);
  issl::TcpStream client_stream(client_stack, *csock);
  common::Xorshift64 srng(1), crng(2);

  const std::vector<u8> psk = {'e', '6'};
  issl::ServerIdentity id;
  id.psk = psk;
  if (config.key_exchange == issl::KeyExchange::kRsa) {
    id.rsa = crypto::rsa_generate(config.rsa_modulus_bits, srng);
  }
  auto server = issl::issl_bind_server(server_stream, config, srng, id);
  auto client = issl::issl_bind_client(client_stream, config, crng, psk);

  HandshakeRun run;
  const u64 t0 = medium.now_ms();
  const auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 5'000; ++i) {
    (void)client.pump();
    (void)server.pump();
    medium.tick(1);
    if (client.established() && server.established()) break;
  }
  run.ok = client.established() && server.established();
  run.virtual_ms = medium.now_ms() - t0;
  run.host_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall0)
                    .count();
  run.messages = server.handshake_messages_seen() +
                 client.handshake_messages_seen();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);

  std::puts("================================================================");
  std::puts("E6: issl session negotiation cost: PSK (the port) vs RSA (Unix)");
  std::puts("================================================================\n");

  struct Row {
    const char* name;
    const char* key;
    issl::Config config;
  };
  issl::Config psk = issl::Config::embedded_port();
  issl::Config rsa256 = issl::Config::unix_default();
  rsa256.rsa_modulus_bits = 256;
  issl::Config rsa512 = issl::Config::unix_default();
  rsa512.rsa_modulus_bits = 512;
  issl::Config rsa768 = issl::Config::unix_default();
  rsa768.rsa_modulus_bits = 768;

  const Row rows[] = {
      {"PSK / AES-128 (embedded port)", "psk", psk},
      {"RSA-256 / AES-256", "rsa256", rsa256},
      {"RSA-512 / AES-256", "rsa512", rsa512},
      {"RSA-768 / AES-256", "rsa768", rsa768},
  };
  bench::JsonReport report("E6");
  double psk_host = 0, rsa_host = 0;
  std::printf("%-32s %12s %14s %8s\n", "configuration", "virt ms",
              "host crypto ms", "msgs");
  for (const Row& row : rows) {
    const HandshakeRun run = run_handshake(row.config);
    std::printf("%-32s %12llu %14.2f %8zu  %s\n", row.name,
                static_cast<unsigned long long>(run.virtual_ms), run.host_ms,
                run.messages, run.ok ? "" : "FAILED");
    if (row.config.key_exchange == issl::KeyExchange::kPsk) {
      psk_host = run.host_ms;
    } else if (row.config.rsa_modulus_bits == 768) {
      rsa_host = run.host_ms;
    }
    const std::string key(row.key);
    report.result(key + ".virtual_ms", run.virtual_ms);
    report.result(key + ".host_crypto_ms", run.host_ms);
    report.result(key + ".messages", run.messages);
    report.result(key + ".ok", run.ok);
  }

  std::printf("\ncompute saved by dropping RSA (768-bit vs PSK, host crypto "
              "time): %.0fx\n",
              rsa_host / (psk_host > 0 ? psk_host : 1e-9));
  std::puts("the paper's port dropped RSA because of the bignum package; on "
            "a 30 MHz\n8-bit target the modexp above would take *minutes* -- "
            "the negotiation\ncost is why the paper calls security 'not "
            "cheap' (Section 2).");

  report.result("rsa768_vs_psk_host_factor",
                rsa_host / (psk_host > 0 ? psk_host : 1e-9));
  report.write(args);
  return 0;
}
