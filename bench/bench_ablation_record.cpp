// Ablation — where the secure path's cycles actually go on this device.
//
// DESIGN.md commits the record layer to AES-CBC + HMAC-SHA1 and the E5 cost
// model to measured kernel costs; this bench ablates that composition:
// for each record size, the per-record cycle budget is decomposed into
//   cipher      AES-CBC over padded payload (+IV block)
//   mac         HMAC-SHA1 over seq||type||payload (4 + payload/64 blocks)
//   key sched   amortized per-record share of the session key expansion
// under both kernel generations (direct C port vs hand assembly, both
// measured on the simulated board; asm SHA-1 scaled by the measured E1
// ratio as in bench_ssl_throughput). The output answers two design
// questions: (1) is MAC-then-encrypt affordable once AES is in assembly?
// (2) which kernel should the *next* porting hour go to?
#include <cstdio>

#include "bench_util.h"
#include "dcc/codegen.h"
#include "rabbit/board.h"
#include "services/aes_port.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

struct Kernels {
  u64 aes_block = 0;   // cycles per 16-byte AES block
  u64 sha_block = 0;   // cycles per SHA-1 compression
  u64 key_sched = 0;   // cycles per AES key expansion
};

u64 measure_sha1() {
  auto src = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                      "/dc/sha1.dc");
  auto compiled = dcc::compile(*src, dcc::CodegenOptions::debug_defaults());
  rabbit::Board board;
  board.load(compiled->image);
  (void)board.call("f_sha1_init", 100'000'000);
  return board.call("f_sha1_block", 500'000'000)->cycles;
}

Kernels measure(services::AesImpl impl, bool scale_sha) {
  auto aes = services::AesOnBoard::create_from_repo(
      impl, RMC_REPO_ROOT, dcc::CodegenOptions::debug_defaults());
  std::array<u8, 16> key{}, pt{}, ct{};
  Kernels k;
  k.key_sched = *aes->set_key(key);
  k.aes_block = *aes->encrypt(pt, ct);
  k.sha_block = measure_sha1();
  if (scale_sha) {
    auto c_aes = services::AesOnBoard::create_from_repo(
        services::AesImpl::kCompiledC, RMC_REPO_ROOT,
        dcc::CodegenOptions::debug_defaults());
    (void)c_aes->set_key(key);
    k.sha_block = k.sha_block * k.aes_block / *c_aes->encrypt(pt, ct);
  }
  return k;
}

void decompose(const char* title, const char* key, const Kernels& k,
               bench::JsonReport& report) {
  std::printf("-- %s: AES block %llu cyc, SHA-1 block %llu cyc, key sched "
              "%llu cyc --\n",
              title, static_cast<unsigned long long>(k.aes_block),
              static_cast<unsigned long long>(k.sha_block),
              static_cast<unsigned long long>(k.key_sched));
  std::printf("%10s %12s %12s %12s %8s %8s %10s\n", "payload B", "cipher cyc",
              "mac cyc", "total cyc", "cipher%", "mac%", "ms @30MHz");
  const int kRecordsPerSession = 64;  // amortization base for key schedule
  for (const std::size_t payload : {16u, 64u, 256u, 1024u, 4096u}) {
    // CBC blocks: payload + 20 B MAC, PKCS7 padded, + 1 IV block.
    const u64 cbc_blocks = (payload + 20) / 16 + 1 + 1;
    // HMAC blocks: 2 fixed (ipad/opad passes) + message blocks + padding.
    const u64 mac_blocks = 4 + (payload + 9 + 63) / 64;
    const u64 cipher = cbc_blocks * k.aes_block;
    const u64 mac = mac_blocks * k.sha_block;
    const u64 total = cipher + mac + k.key_sched / kRecordsPerSession;
    std::printf("%10zu %12llu %12llu %12llu %7.0f%% %7.0f%% %10.2f\n",
                payload, static_cast<unsigned long long>(cipher),
                static_cast<unsigned long long>(mac),
                static_cast<unsigned long long>(total),
                100.0 * cipher / total, 100.0 * mac / total,
                total / 30'000.0);
    const std::string row =
        std::string(key) + ".payload_" + std::to_string(payload);
    report.result(row + ".cipher_cycles", cipher);
    report.result(row + ".mac_cycles", mac);
    report.result(row + ".total_cycles", total);
  }
  report.result(std::string(key) + ".aes_block_cycles", k.aes_block);
  report.result(std::string(key) + ".sha_block_cycles", k.sha_block);
  report.result(std::string(key) + ".key_sched_cycles", k.key_sched);
  std::puts("");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);

  std::puts("==================================================================");
  std::puts("Ablation: per-record cycle decomposition of the issl secure path");
  std::puts("==================================================================\n");

  const Kernels c_port = measure(services::AesImpl::kCompiledC, false);
  const Kernels asm_all = measure(services::AesImpl::kHandAssembly, true);

  bench::JsonReport report("ABLATION");
  decompose("direct C port (every kernel compiled)", "c_port", c_port,
            report);
  decompose("assembly treatment (kernels at the measured E1 ratio)", "asm",
            asm_all, report);

  std::puts("reading:");
  std::puts(" * in the C port, cipher and MAC split the bill -- porting only");
  std::puts("   one kernel to assembly cannot buy more than ~2x;");
  std::puts(" * after the assembly treatment the split persists at ~1/20th");
  std::puts("   the cost: MAC-then-encrypt stays affordable, and the next");
  std::puts("   optimization hour should go to whichever kernel dominates");
  std::puts("   the row sizes your workload actually sends.");

  report.write(args);
  return 0;
}
