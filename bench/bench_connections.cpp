// E4 — paper Figure 3 / §5.3: "to handle multiple connections and
// processes, we split the application into four processes: three processes
// to handle requests (allowing a maximum of three connections), and one to
// drive the TCP stack ... We could easily increase the number of processes
// (and hence simultaneous connections) by adding more costatements, but the
// program would have to be re-compiled."
//
// Regenerates the ceiling matrix: for each compiled-in handler count N
// (re-constructing the redirector = the "recompile"), offer M simultaneous
// secure clients and report how many complete their handshake.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "services/redirector.h"

using namespace rmc;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

int completed_handshakes(std::size_t handler_slots, int offered_clients,
                         int rounds) {
  net::SimNet medium(0xE4);
  net::TcpStack board(medium, 1);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.psk = bytes_of("e4");
  cfg.handler_slots = handler_slots;
  services::RmcRedirector red(board, medium, cfg);
  if (!red.start().is_ok()) return -1;

  std::vector<std::unique_ptr<services::Client>> clients;
  for (int i = 0; i < offered_clients; ++i) {
    clients.push_back(std::make_unique<services::Client>(
        client_host, 1, 4433, true, issl::Config::embedded_port(),
        bytes_of("e4"), 0xE400 + i));
    (void)clients.back()->start();
  }
  for (int round = 0; round < rounds; ++round) {
    red.poll();
    backend.poll();
    for (auto& c : clients) (void)c->poll();
    medium.tick(1);
  }
  int done = 0;
  for (auto& c : clients) done += c->handshake_done() ? 1 : 0;
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int kMaxOffered = static_cast<int>(args.flag_int("max-offered", 8));
  const int kMaxHandlers = static_cast<int>(args.flag_int("max-handlers", 5));
  const int kRounds = static_cast<int>(args.flag_int("rounds", 1200));

  std::puts("================================================================");
  std::puts("E4: simultaneous-connection ceiling vs compiled-in costatements");
  std::puts("    (paper Figure 3: 3 handlers + 1 tcp_tick driver)");
  std::puts("================================================================\n");

  std::printf("completed secure handshakes (rows: handler costatements "
              "compiled in;\ncolumns: simultaneous clients offered)\n\n");
  std::printf("%10s", "handlers");
  for (int offered = 1; offered <= kMaxOffered; ++offered) {
    std::printf("  M=%d", offered);
  }
  std::puts("");
  bench::JsonReport report("E4");
  bool ceiling_holds = true;
  for (std::size_t handlers = 1;
       handlers <= static_cast<std::size_t>(kMaxHandlers); ++handlers) {
    std::printf("%10zu", handlers);
    for (int offered = 1; offered <= kMaxOffered; ++offered) {
      const int done = completed_handshakes(handlers, offered, kRounds);
      std::printf("  %3d", done);
      const int expect = std::min<int>(offered, static_cast<int>(handlers));
      if (done != expect) ceiling_holds = false;
      report.result("handshakes.h" + std::to_string(handlers) + ".m" +
                        std::to_string(offered),
                    done);
    }
    std::puts("");
  }
  std::printf("\nexpected ceiling: min(offered, handlers) -> %s\n",
              ceiling_holds ? "REPRODUCED exactly" : "deviations above");
  std::puts("(the paper's deployed configuration is the handlers=3 row)");

  report.result("ceiling_holds", ceiling_holds);
  report.write(args);
  return 0;
}
