// E10 — crash soak: the secure redirector across seeded board deaths.
//
// E9 abuses the wire; E10 abuses the board. Each scenario kills the
// RMC2000 repeatedly by one of the three device-fault mechanisms —
//
//   wedge:    the main loop stops servicing costatements, nobody hits the
//             watchdog, the WDT bites and hard-resets;
//   powercut: a seeded PowerFaultPlan cuts power at exact fault points,
//             including mid-way through a durable two-slot commit;
//   xalloc:   the no-free arena (§5.2) runs dry and the firmware performs
//             its own counted restart to reclaim the memory —
//
// while a replacement stream of TLS clients keeps offering work. After
// every recovery two invariants are audited:
//
//   durable consistency — the battery-backed counters only move forward,
//   the boot generation never runs ahead of the boot count, and any lost
//   update is (a) at most one commit deep and (b) *signalled* by the
//   torn-recovery outcome, never silent;
//
//   fail closed — every client session settles (completes or fails) inside
//   the TCP give-up horizon; a client still undecided at scenario end is a
//   half-open connection, the thing warm restart must make impossible.
//
// Everything derives from --seed, so the --json artifact is byte-identical
// across same-seed runs (scripts/check.sh gates on exactly that). Exit
// status is 1 on any consistency violation or half-open session.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_util.h"
#include "services/supervisor.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

enum class Death { kWedge, kPowerCut, kXalloc };

struct CrashResult {
  u64 boots = 0;
  u64 resets = 0;
  u64 wdt_bites = 0;
  u64 power_cuts = 0;
  u64 xalloc_restarts = 0;
  u64 recovery_total_ms = 0;
  u64 recovery_last_ms = 0;
  int completed = 0;
  int failed = 0;       // failed *closed* — expected collateral of a death
  int stuck = 0;        // half-open at scenario end = the audited failure
  u64 sessions_dropped = 0;  // live on the board at each death
  u64 durable_served = 0;
  u64 durable_generation = 0;
  u64 torn_recoveries = 0;
  u64 consistency_violations = 0;
  u64 elapsed_ms = 0;
  u64 postmortem_lines = 0;
};

struct LiveClient {
  std::unique_ptr<services::Client> client;
  std::size_t sent = 0;
};

CrashResult run_scenario(u64 seed, Death death, u64 max_ms, u64 spawn_until) {
  net::SimNet medium(seed);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();

  services::ServiceBoardConfig cfg;
  cfg.redirector.listen_port = 4433;
  cfg.redirector.backend_ip = 2;
  cfg.redirector.backend_port = 8000;
  cfg.redirector.secure = true;
  cfg.redirector.psk = bytes_of("e10");
  cfg.redirector.handler_slots = 3;
  cfg.board_ip = 1;
  cfg.net_seed = seed * 131;
  cfg.wdt_period_ms = 400;
  cfg.power_off_ms = 50;
  cfg.reboot_ms = 2;
  if (death == Death::kPowerCut) {
    // Gaps are fault points, not ms: each durable commit contributes three,
    // every main-loop pass one. Most random cuts land between commits; the
    // inserted 1-point gap guarantees the fourth cut strikes inside the
    // recovery boot's own generation commit (site durable.mid), exercising
    // the torn-write path under soak, not just in the unit tests.
    auto plan = dynk::PowerFaultPlan::random(seed ^ 0xE10, 6, 400, 2'500);
    plan.cuts.insert(plan.cuts.begin() + 3, 1);
    cfg.power_plan = plan;
  }
  if (death == Death::kXalloc) {
    cfg.session_xalloc_bytes = 96;
    cfg.xalloc_capacity = 32 * 96;  // 32 sessions, then the arena is spent
  }
  services::ServiceBoard board(medium, cfg);

  const std::size_t kPayload = 1'024;
  const std::size_t kChunk = 256;
  std::vector<u8> payload(kPayload);
  common::Xorshift64 fill(seed ^ 0xE10E10);
  fill.fill(payload);

  CrashResult r;
  std::vector<LiveClient> live;
  u64 spawned = 0;
  constexpr std::size_t kConcurrency = 2;

  auto spawn = [&]() {
    LiveClient lc;
    lc.client = std::make_unique<services::Client>(
        client_host, 1, 4433, true, issl::Config::embedded_port(),
        bytes_of("e10"), seed * 977 + ++spawned);
    // Without a read timeout a client whose handshake or final echo was
    // severed with nothing left in flight would wait forever: TCP only
    // notices a dead peer when it has something to retransmit. 25 s sits
    // above the retransmit give-up horizon (~20 s), so it only fires for
    // the genuinely-silent case.
    lc.client->set_idle_give_up(25'000);
    (void)lc.client->start();
    const std::size_t first = std::min(kChunk, kPayload);
    (void)lc.client->send(std::span<const u8>(payload.data(), first));
    lc.sent = first;
    live.push_back(std::move(lc));
  };

  // Durable-consistency observer: the last in-RAM bookkeeping glimpsed
  // while the board was alive, compared against what recovery restored.
  bool was_up = board.up();
  u64 glimpse_served = 0;
  u64 wedge_countdown = death == Death::kWedge ? 2'500 : 0;

  u64 t = 0;
  for (; t < max_ms; ++t) {
    // Offer load: keep kConcurrency clients in flight while spawning is on.
    while (t < spawn_until && live.size() < kConcurrency) spawn();

    if (death == Death::kWedge && board.up() && wedge_countdown > 0 &&
        --wedge_countdown == 0) {
      board.wedge_for_ms(cfg.wdt_period_ms + 200);  // guarantee a bite
      wedge_countdown = 4'000;                      // and schedule the next
    }

    board.poll();

    // Recovery audit runs on the up-edge, before any new work commits.
    if (board.up() && board.redirector()) {
      const auto& ds = board.redirector()->durable_state();
      if (!was_up) {
        const bool torn = board.redirector()->recovery_outcome() ==
                          dynk::DurableLoadOutcome::kTornRecovered;
        if (torn) ++r.torn_recoveries;
        // At most one commit may be lost across a death, and only with the
        // tear signalled; a silent or deeper rollback is corruption.
        // (Growth is legitimate: a session can complete and commit in the
        // same millisecond the fault is detected.)
        if (ds.served < glimpse_served &&
            (!torn || glimpse_served - ds.served > 1)) {
          ++r.consistency_violations;
        }
      }
      glimpse_served = ds.served;
      was_up = true;
    } else {
      was_up = false;
    }

    backend.poll();
    for (std::size_t i = 0; i < live.size();) {
      services::Client& c = *live[i].client;
      const bool alive = c.poll();
      if (c.received().size() >= kPayload) {
        ++r.completed;
        c.close();
        live.erase(live.begin() + static_cast<long>(i));
        continue;
      }
      if (!alive || c.failed()) {
        ++r.failed;
        live.erase(live.begin() + static_cast<long>(i));
        continue;
      }
      if (c.received().size() >= live[i].sent && live[i].sent < kPayload) {
        const std::size_t n = std::min(kChunk, kPayload - live[i].sent);
        (void)c.send(std::span<const u8>(payload.data() + live[i].sent, n));
        live[i].sent += n;
      }
      ++i;
    }

    medium.tick(1);
    if (t >= spawn_until && live.empty()) break;  // all settled, no new work
  }
  r.elapsed_ms = t;
  r.stuck = static_cast<int>(live.size());  // half-open: neither done nor dead

  r.boots = board.boots();
  r.resets = board.resets();
  r.wdt_bites = board.wdt_bites();
  r.power_cuts = board.power_cuts_seen();
  r.xalloc_restarts = board.xalloc_restarts();
  r.recovery_total_ms = board.total_recovery_ms();
  r.recovery_last_ms = board.last_recovery_ms();
  r.sessions_dropped = board.sessions_dropped();
  r.postmortem_lines = board.postmortem().size();
  if (board.up() && board.redirector()) {
    const auto& ds = board.redirector()->durable_state();
    r.durable_served = ds.served;
    r.durable_generation = ds.generation;
    // Boot-count bookkeeping: the generation may lag boots only by commits
    // the recovery path *reported* torn — never silently.
    if (ds.generation > r.boots ||
        r.boots - ds.generation > r.torn_recoveries) {
      ++r.consistency_violations;
    }
  } else {
    ++r.consistency_violations;  // the board must end the scenario alive
  }
  return r;
}

struct Scenario {
  const char* name;
  Death death;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.flag_int("seed", 0x10E));
  const u64 max_ms = static_cast<u64>(args.flag_int("max-ms", 60'000));
  const u64 spawn_until =
      static_cast<u64>(args.flag_int("spawn-until-ms", 28'000));

  std::puts("================================================================");
  std::puts("E10: crash soak -- watchdog, power cuts, xalloc exhaustion");
  std::printf("    seed=%llu  budget=%llu virt ms  load until=%llu virt ms\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(max_ms),
              static_cast<unsigned long long>(spawn_until));
  std::puts("================================================================\n");
  std::printf("%-9s %6s %5s %5s %5s %6s %5s %6s %8s %6s %5s\n", "scenario",
              "resets", "done", "fail", "stuck", "dropped", "torn", "served",
              "recov-ms", "gen", "viol");

  bench::JsonReport report("E10");
  report.result("seed", seed);
  const Scenario scenarios[] = {
      {"wedge", Death::kWedge},
      {"powercut", Death::kPowerCut},
      {"xalloc", Death::kXalloc},
  };
  bool half_open = false;
  bool inconsistent = false;

  for (const Scenario& s : scenarios) {
    const CrashResult r = run_scenario(seed, s.death, max_ms, spawn_until);
    std::printf("%-9s %6llu %5d %5d %5d %6llu %5llu %6llu %8llu %6llu %5llu\n",
                s.name, static_cast<unsigned long long>(r.resets), r.completed,
                r.failed, r.stuck,
                static_cast<unsigned long long>(r.sessions_dropped),
                static_cast<unsigned long long>(r.torn_recoveries),
                static_cast<unsigned long long>(r.durable_served),
                static_cast<unsigned long long>(r.recovery_total_ms),
                static_cast<unsigned long long>(r.durable_generation),
                static_cast<unsigned long long>(r.consistency_violations));
    if (r.stuck > 0) half_open = true;
    if (r.consistency_violations > 0) inconsistent = true;

    const std::string k = std::string("scn.") + s.name + ".";
    report.result(k + "boots", r.boots);
    report.result(k + "resets", r.resets);
    report.result(k + "wdt_bites", r.wdt_bites);
    report.result(k + "power_cuts", r.power_cuts);
    report.result(k + "xalloc_restarts", r.xalloc_restarts);
    report.result(k + "recovery_total_ms", r.recovery_total_ms);
    report.result(k + "recovery_total_cycles",
                  r.recovery_total_ms * services::ServiceBoard::kCyclesPerMs);
    report.result(k + "recovery_last_ms", r.recovery_last_ms);
    report.result(k + "sessions_completed", r.completed);
    report.result(k + "sessions_failed_closed", r.failed);
    report.result(k + "sessions_half_open", r.stuck);
    report.result(k + "sessions_dropped", r.sessions_dropped);
    report.result(k + "durable_served", r.durable_served);
    report.result(k + "durable_generation", r.durable_generation);
    report.result(k + "torn_recoveries", r.torn_recoveries);
    report.result(k + "consistency_violations", r.consistency_violations);
    report.result(k + "postmortem_lines", r.postmortem_lines);
    report.result(k + "elapsed_ms", r.elapsed_ms);
  }

  std::printf(
      "\nfail = failed *closed* (RST or retx give-up) -- expected collateral"
      "\nof a board death; stuck = half-open at scenario end (audited to 0)."
      "\ntorn = recoveries where the two-slot store reported an interrupted"
      "\ncommit; viol counts silent durable-state corruption (audited to 0).\n");

  report.result("zero_half_open", !half_open);
  report.result("zero_consistency_violations", !inconsistent);
  report.write(args);

  return (half_open || inconsistent) ? 1 : 0;
}
