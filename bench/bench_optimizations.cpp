// E2 — paper §6: "We tried a variety of optimizations on the C code,
// including moving data to root memory, unrolling loops, disabling
// debugging, and enabling compiler optimization, but this only improved run
// time by perhaps 20%."
//
// Regenerates the sweep: the AES C port compiled with each knob alone and
// with all knobs together, relative to the untouched direct port. The point
// of the experiment is the *ceiling*: source-level knobs cannot close the
// gap to hand assembly. A CycleProfiler on each build shows *which*
// functions each knob actually moved — the per-function view of the 20%.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/prng.h"
#include "services/aes_port.h"
#include "telemetry/profiler.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

u64 encrypt_cycles(const dcc::CodegenOptions& opts, int blocks,
                   telemetry::CycleProfiler& prof) {
  auto aes = services::AesOnBoard::create_from_repo(
      services::AesImpl::kCompiledC, RMC_REPO_ROOT, opts,
      [&](rabbit::Board& b, const rabbit::Image& img) {
        prof.attach(b.cpu(), img);
      });
  if (!aes.ok()) {
    std::printf("load failed: %s\n", aes.status().to_string().c_str());
    std::exit(1);
  }
  common::Xorshift64 rng(99);
  std::array<u8, 16> key{}, pt{}, ct{};
  rng.fill(key);
  prof.set_phase("keyexp");
  (void)aes->set_key(key);
  u64 total = 0;
  prof.set_phase("encrypt");
  for (int i = 0; i < blocks; ++i) {
    rng.fill(pt);
    total += *aes->encrypt(pt, ct);
  }
  if (prof.total_cycles() != aes->board().cpu().cycles()) {
    std::puts("ACCOUNTING ERROR: profile does not sum to the CPU counter");
    std::exit(1);
  }
  return total / blocks;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int kBlocks = static_cast<int>(args.flag_int("blocks", 3));
  const int kTopN = static_cast<int>(args.flag_int("top", 4));

  std::puts("===============================================================");
  std::puts("E2: source/compiler optimization sweep on the AES C port");
  std::puts("    (paper Section 6: '...only improved run time by perhaps 20%')");
  std::puts("===============================================================\n");

  const dcc::CodegenOptions base = dcc::CodegenOptions::debug_defaults();

  struct Row {
    const char* name;
    const char* key;
    dcc::CodegenOptions opts;
  };
  dcc::CodegenOptions root = base;     root.xmem_tables = false;
  dcc::CodegenOptions unroll = base;   unroll.unroll_loops = true;
  dcc::CodegenOptions nodebug = base;  nodebug.debug_hooks = false;
  dcc::CodegenOptions copt = base;     copt.fold_constants = true;
                                       copt.peephole = true;
  const Row rows[] = {
      {"baseline (direct debug port)", "baseline", base},
      {"+ data moved to root memory", "root_memory", root},
      {"+ loops unrolled", "unroll", unroll},
      {"+ debugging disabled", "nodebug", nodebug},
      {"+ compiler optimization (fold+peephole)", "fold_peephole", copt},
      {"ALL optimizations together", "all",
       dcc::CodegenOptions::all_optimizations()},
  };
  const std::size_t kRows = sizeof(rows) / sizeof(rows[0]);

  bench::JsonReport report("E2");
  std::vector<std::unique_ptr<telemetry::CycleProfiler>> profs;
  std::vector<u64> cycles(kRows, 0);
  for (std::size_t i = 0; i < kRows; ++i) {
    profs.push_back(std::make_unique<telemetry::CycleProfiler>());
    cycles[i] = encrypt_cycles(rows[i].opts, kBlocks, *profs.back());
  }
  const u64 base_cycles = cycles[0];

  std::printf("%-42s %12s %10s\n", "configuration", "enc cyc/blk",
              "vs base");
  double all_improvement = 0;
  for (std::size_t i = 0; i < kRows; ++i) {
    const double delta =
        100.0 * (1.0 - static_cast<double>(cycles[i]) / base_cycles);
    std::printf("%-42s %12llu %+9.1f%%\n", rows[i].name,
                static_cast<unsigned long long>(cycles[i]), -(-delta));
    all_improvement = delta;  // last row = ALL
    report.result(std::string(rows[i].key) + ".encrypt_cycles_per_block",
                  cycles[i]);
    report.result(std::string(rows[i].key) + ".improvement_percent", delta);
    report.profile(rows[i].key, *profs[i]);
  }
  std::printf("\ntotal improvement from every knob combined: %.0f%%\n",
              all_improvement);
  std::printf("paper's reported band: ~20%%  ->  %s\n",
              (all_improvement >= 10.0 && all_improvement <= 45.0)
                  ? "REPRODUCED (same modest-ceiling shape)"
                  : "outside the reported band; see EXPERIMENTS.md");

  std::puts("\nwhere the knobs moved cycles (encrypt phase, per function):");
  std::printf("\n[baseline]\n%s",
              profs.front()->report(static_cast<std::size_t>(kTopN), "encrypt")
                  .c_str());
  std::printf("\n[ALL optimizations]\n%s",
              profs.back()->report(static_cast<std::size_t>(kTopN), "encrypt")
                  .c_str());

  report.result("total_improvement_percent", all_improvement);
  report.write(args);
  return 0;
}
