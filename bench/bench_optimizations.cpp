// E2 — paper §6: "We tried a variety of optimizations on the C code,
// including moving data to root memory, unrolling loops, disabling
// debugging, and enabling compiler optimization, but this only improved run
// time by perhaps 20%."
//
// Regenerates the sweep: the AES C port compiled with each knob alone and
// with all knobs together, relative to the untouched direct port. The point
// of the experiment is the *ceiling*: source-level knobs cannot close the
// gap to hand assembly.
#include <cstdio>

#include "common/prng.h"
#include "services/aes_port.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

u64 encrypt_cycles(const dcc::CodegenOptions& opts) {
  auto aes = services::AesOnBoard::create_from_repo(
      services::AesImpl::kCompiledC, RMC_REPO_ROOT, opts);
  if (!aes.ok()) {
    std::printf("load failed: %s\n", aes.status().to_string().c_str());
    std::exit(1);
  }
  common::Xorshift64 rng(99);
  std::array<u8, 16> key{}, pt{}, ct{};
  rng.fill(key);
  (void)aes->set_key(key);
  u64 total = 0;
  const int kBlocks = 3;
  for (int i = 0; i < kBlocks; ++i) {
    rng.fill(pt);
    total += *aes->encrypt(pt, ct);
  }
  return total / kBlocks;
}

}  // namespace

int main() {
  std::puts("===============================================================");
  std::puts("E2: source/compiler optimization sweep on the AES C port");
  std::puts("    (paper Section 6: '...only improved run time by perhaps 20%')");
  std::puts("===============================================================\n");

  const dcc::CodegenOptions base = dcc::CodegenOptions::debug_defaults();
  const u64 base_cycles = encrypt_cycles(base);

  struct Row {
    const char* name;
    dcc::CodegenOptions opts;
  };
  dcc::CodegenOptions root = base;     root.xmem_tables = false;
  dcc::CodegenOptions unroll = base;   unroll.unroll_loops = true;
  dcc::CodegenOptions nodebug = base;  nodebug.debug_hooks = false;
  dcc::CodegenOptions copt = base;     copt.fold_constants = true;
                                       copt.peephole = true;
  const Row rows[] = {
      {"baseline (direct debug port)", base},
      {"+ data moved to root memory", root},
      {"+ loops unrolled", unroll},
      {"+ debugging disabled", nodebug},
      {"+ compiler optimization (fold+peephole)", copt},
      {"ALL optimizations together", dcc::CodegenOptions::all_optimizations()},
  };

  std::printf("%-42s %12s %10s\n", "configuration", "enc cyc/blk",
              "vs base");
  double all_improvement = 0;
  for (const Row& row : rows) {
    const u64 cyc = encrypt_cycles(row.opts);
    const double delta =
        100.0 * (1.0 - static_cast<double>(cyc) / base_cycles);
    std::printf("%-42s %12llu %+9.1f%%\n", row.name,
                static_cast<unsigned long long>(cyc), -(-delta));
    all_improvement = delta;  // last row = ALL
  }
  std::printf("\ntotal improvement from every knob combined: %.0f%%\n",
              all_improvement);
  std::printf("paper's reported band: ~20%%  ->  %s\n",
              (all_improvement >= 10.0 && all_improvement <= 45.0)
                  ? "REPRODUCED (same modest-ceiling shape)"
                  : "outside the reported band; see EXPERIMENTS.md");
  return 0;
}
