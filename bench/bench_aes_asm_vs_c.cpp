// E1 — paper §6: "A testbench that pumped keys through the two
// implementations of the AES cipher showed the assembly implementation ran
// faster than the C port by a factor of [10-15x / more than an order of
// magnitude]."
//
// Regenerates the comparison: hand Rabbit assembly vs the MiniDynC C port
// (debug build, as a first direct port would be), over a sweep of keys and
// blocks, with per-phase cycle counts and 30 MHz wall-clock equivalents.
// A CycleProfiler rides along on each board and attributes every cycle to a
// function per phase (init/keyexp/encrypt) — the "where does the 10-15x
// live" breakdown — and the bench hard-fails unless the attribution sums to
// the CPU's own cycle counter exactly, for both builds.
#include <cstdio>

#include "bench_util.h"
#include "common/bytes.h"
#include "common/prng.h"
#include "crypto/aes.h"
#include "services/aes_port.h"
#include "telemetry/profiler.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

struct Sample {
  u64 keyexp = 0;
  u64 encrypt = 0;
};

Sample pump(services::AesOnBoard& aes, telemetry::CycleProfiler& prof,
            int keys, int blocks_per_key, bool verify) {
  Sample total;
  common::Xorshift64 rng(0xDA7E2003);
  std::array<u8, 16> key{}, pt{}, ct{}, expect{};
  for (int k = 0; k < keys; ++k) {
    rng.fill(key);
    prof.set_phase("keyexp");
    total.keyexp += *aes.set_key(key);
    auto host = crypto::Aes::create(key);
    for (int b = 0; b < blocks_per_key; ++b) {
      rng.fill(pt);
      prof.set_phase("encrypt");
      total.encrypt += *aes.encrypt(pt, ct);
      if (verify) {
        host->encrypt_block(pt, expect);
        if (ct != expect) {
          std::printf("MISMATCH at key %d block %d\n", k, b);
          std::exit(1);
        }
      }
    }
  }
  total.keyexp /= keys;
  total.encrypt /= (keys * blocks_per_key);
  return total;
}

// The exact-accounting contract: every cycle the CPU counted since the
// profiler attached (at image load, before aes_init) is attributed.
void check_exact_sum(const char* build, services::AesOnBoard& aes,
                     const telemetry::CycleProfiler& prof) {
  const u64 cpu_total = aes.board().cpu().cycles();
  if (prof.total_cycles() != cpu_total) {
    std::printf("ACCOUNTING ERROR (%s): profiler %llu cycles != CPU %llu\n",
                build, static_cast<unsigned long long>(prof.total_cycles()),
                static_cast<unsigned long long>(cpu_total));
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const int kKeys = static_cast<int>(args.flag_int("keys", 8));
  const int kBlocks = static_cast<int>(args.flag_int("blocks", 2));
  const int kTopN = static_cast<int>(args.flag_int("top", 5));

  std::puts("============================================================");
  std::puts("E1: AES-128 hand assembly vs direct C port (paper Section 6)");
  std::puts("============================================================");
  std::printf("workload: %d random keys x %d blocks each, every ciphertext\n"
              "checked against the host FIPS-197 implementation\n\n",
              kKeys, kBlocks);

  telemetry::CycleProfiler prof_hand, prof_c;
  auto hand = services::AesOnBoard::create_from_repo(
      services::AesImpl::kHandAssembly, RMC_REPO_ROOT, {},
      [&](rabbit::Board& b, const rabbit::Image& img) {
        prof_hand.attach(b.cpu(), img);
      });
  auto cport = services::AesOnBoard::create_from_repo(
      services::AesImpl::kCompiledC, RMC_REPO_ROOT,
      dcc::CodegenOptions::debug_defaults(),
      [&](rabbit::Board& b, const rabbit::Image& img) {
        prof_c.attach(b.cpu(), img);
      });
  if (!hand.ok() || !cport.ok()) {
    std::puts("failed to load AES implementations");
    return 1;
  }

  const Sample hand_s = pump(*hand, prof_hand, kKeys, kBlocks, true);
  const Sample c_s = pump(*cport, prof_c, kKeys, kBlocks, true);
  check_exact_sum("hand assembly", *hand, prof_hand);
  check_exact_sum("C port", *cport, prof_c);

  auto us = [](u64 cyc) { return rabbit::Board::seconds(cyc) * 1e6; };
  auto kibs = [](u64 cyc) {
    return 16.0 / rabbit::Board::seconds(cyc) / 1024.0;
  };

  std::printf("%-18s %14s %12s %12s %10s\n", "", "keyexp cyc", "enc cyc/blk",
              "enc us/blk", "KiB/s");
  std::printf("%-18s %14llu %12llu %12.1f %10.1f\n", "hand assembly",
              static_cast<unsigned long long>(hand_s.keyexp),
              static_cast<unsigned long long>(hand_s.encrypt),
              us(hand_s.encrypt), kibs(hand_s.encrypt));
  std::printf("%-18s %14llu %12llu %12.1f %10.1f\n", "C port (direct)",
              static_cast<unsigned long long>(c_s.keyexp),
              static_cast<unsigned long long>(c_s.encrypt), us(c_s.encrypt),
              kibs(c_s.encrypt));

  const double factor =
      static_cast<double>(c_s.encrypt) / static_cast<double>(hand_s.encrypt);
  const double kx_factor =
      static_cast<double>(c_s.keyexp) / static_cast<double>(hand_s.keyexp);
  std::printf("\nassembly-over-C speedup: encrypt %.1fx, key expansion %.1fx\n",
              factor, kx_factor);
  std::printf("paper's reported band: 10-15x (\"more than an order of "
              "magnitude\")  ->  %s\n",
              factor >= 10.0 ? "REPRODUCED (>= 10x)" : "NOT reproduced");

  std::puts("\nwhere the cycles go (encrypt phase, per function):");
  std::printf("\n[hand assembly]\n%s",
              prof_hand.report(static_cast<std::size_t>(kTopN), "encrypt")
                  .c_str());
  std::printf("\n[C port]\n%s",
              prof_c.report(static_cast<std::size_t>(kTopN), "encrypt")
                  .c_str());
  std::puts("\n(attribution verified: each build's per-phase cycles sum to "
            "the CPU's\ntotal cycle counter exactly)");

  bench::JsonReport report("E1");
  report.result("hand.keyexp_cycles", hand_s.keyexp);
  report.result("hand.encrypt_cycles_per_block", hand_s.encrypt);
  report.result("c_port.keyexp_cycles", c_s.keyexp);
  report.result("c_port.encrypt_cycles_per_block", c_s.encrypt);
  report.result("speedup.encrypt", factor);
  report.result("speedup.keyexp", kx_factor);
  report.result("reproduced", factor >= 10.0);
  report.profile("hand_assembly", prof_hand);
  report.profile("c_port", prof_c);
  report.write(args);
  return 0;
}
