// E1 — paper §6: "A testbench that pumped keys through the two
// implementations of the AES cipher showed the assembly implementation ran
// faster than the C port by a factor of [10-15x / more than an order of
// magnitude]."
//
// Regenerates the comparison: hand Rabbit assembly vs the MiniDynC C port
// (debug build, as a first direct port would be), over a sweep of keys and
// blocks, with per-phase cycle counts and 30 MHz wall-clock equivalents.
#include <cstdio>

#include "common/bytes.h"
#include "common/prng.h"
#include "crypto/aes.h"
#include "services/aes_port.h"

using namespace rmc;
using common::u64;
using common::u8;

namespace {

struct Sample {
  u64 keyexp = 0;
  u64 encrypt = 0;
};

Sample pump(services::AesOnBoard& aes, int keys, int blocks_per_key,
            bool verify) {
  Sample total;
  common::Xorshift64 rng(0xDA7E2003);
  std::array<u8, 16> key{}, pt{}, ct{}, expect{};
  for (int k = 0; k < keys; ++k) {
    rng.fill(key);
    total.keyexp += *aes.set_key(key);
    auto host = crypto::Aes::create(key);
    for (int b = 0; b < blocks_per_key; ++b) {
      rng.fill(pt);
      total.encrypt += *aes.encrypt(pt, ct);
      if (verify) {
        host->encrypt_block(pt, expect);
        if (ct != expect) {
          std::printf("MISMATCH at key %d block %d\n", k, b);
          std::exit(1);
        }
      }
    }
  }
  total.keyexp /= keys;
  total.encrypt /= (keys * blocks_per_key);
  return total;
}

}  // namespace

int main() {
  std::puts("============================================================");
  std::puts("E1: AES-128 hand assembly vs direct C port (paper Section 6)");
  std::puts("============================================================");
  const int kKeys = 8, kBlocks = 2;
  std::printf("workload: %d random keys x %d blocks each, every ciphertext\n"
              "checked against the host FIPS-197 implementation\n\n",
              kKeys, kBlocks);

  auto hand = services::AesOnBoard::create_from_repo(
      services::AesImpl::kHandAssembly, RMC_REPO_ROOT);
  auto cport = services::AesOnBoard::create_from_repo(
      services::AesImpl::kCompiledC, RMC_REPO_ROOT,
      dcc::CodegenOptions::debug_defaults());
  if (!hand.ok() || !cport.ok()) {
    std::puts("failed to load AES implementations");
    return 1;
  }

  const Sample hand_s = pump(*hand, kKeys, kBlocks, true);
  const Sample c_s = pump(*cport, kKeys, kBlocks, true);

  auto us = [](u64 cyc) { return rabbit::Board::seconds(cyc) * 1e6; };
  auto kibs = [](u64 cyc) {
    return 16.0 / rabbit::Board::seconds(cyc) / 1024.0;
  };

  std::printf("%-18s %14s %12s %12s %10s\n", "", "keyexp cyc", "enc cyc/blk",
              "enc us/blk", "KiB/s");
  std::printf("%-18s %14llu %12llu %12.1f %10.1f\n", "hand assembly",
              static_cast<unsigned long long>(hand_s.keyexp),
              static_cast<unsigned long long>(hand_s.encrypt),
              us(hand_s.encrypt), kibs(hand_s.encrypt));
  std::printf("%-18s %14llu %12llu %12.1f %10.1f\n", "C port (direct)",
              static_cast<unsigned long long>(c_s.keyexp),
              static_cast<unsigned long long>(c_s.encrypt), us(c_s.encrypt),
              kibs(c_s.encrypt));

  const double factor =
      static_cast<double>(c_s.encrypt) / static_cast<double>(hand_s.encrypt);
  const double kx_factor =
      static_cast<double>(c_s.keyexp) / static_cast<double>(hand_s.keyexp);
  std::printf("\nassembly-over-C speedup: encrypt %.1fx, key expansion %.1fx\n",
              factor, kx_factor);
  std::printf("paper's reported band: 10-15x (\"more than an order of "
              "magnitude\")  ->  %s\n",
              factor >= 10.0 ? "REPRODUCED (>= 10x)" : "NOT reproduced");
  return 0;
}
