// Shared bench harness: flag parsing and the --json export every table
// bench offers (DESIGN.md "Telemetry & profiling").
//
// Flags are `--name value` or `--name=value`. Each bench declares the knobs
// it supports with flag_int(); the effective values (default or overridden)
// land in the report's "params" object so a BENCH_*.json is self-describing.
// `--json <path>` is available everywhere and selects machine output.
//
// The written document has a stable schema future PRs diff against:
//
//   {
//     "schema_version": 1,
//     "bench": "E1",
//     "params":   { ... declared flags, effective values ... },
//     "results":  { ... bench-specific numbers, insertion order ... },
//     "profiles": { ... optional CycleProfiler attributions ... },
//     "metrics":  { ... the whole telemetry registry ... }
//   }
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/slo.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace rmc::bench {

using common::i64;
using common::u64;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected positional argument: %s\n",
                     arg.c_str());
        std::exit(2);
      }
      arg.erase(0, 2);
      Flag f;
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        f.value = arg.substr(eq + 1);
        arg.erase(eq);
      } else if (i + 1 < argc) {
        f.value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      f.name = std::move(arg);
      flags_.push_back(std::move(f));
    }
    // Tracing exports, available to every bench (DESIGN.md §11). These are
    // deliberately NOT recorded as params: enabling tracing must leave the
    // bench's JSON byte-identical to an untraced run, and an output path is
    // host state, not workload shape.
    if (const std::string* s = take("trace")) {
      trace_path_ = *s;
      telemetry::Tracer::global().set_enabled(true);
    }
    if (const std::string* s = take("pcap")) {
      pcap_path_ = *s;
      telemetry::Tracer::global().set_enabled(true);
      telemetry::Tracer::global().set_pcap_capture(true);
    }
    // Timeseries CSV export path — same policy as --trace/--pcap: an output
    // path is host state, never a param. Only written when the bench also
    // attaches a Sampler to its JsonReport.
    if (const std::string* s = take("csv")) csv_path_ = *s;
  }

  /// Declares an integer knob; returns the parsed override or `def`.
  /// Every current knob is a workload size, so values below `min` (default 1)
  /// are rejected rather than handed to the bench to divide by.
  long flag_int(const std::string& name, long def, long min = 1) {
    long value = def;
    if (const std::string* s = take(name)) {
      char* end = nullptr;
      value = std::strtol(s->c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "flag --%s: not an integer: %s\n", name.c_str(),
                     s->c_str());
        std::exit(2);
      }
      if (value < min) {
        std::fprintf(stderr, "flag --%s: must be >= %ld, got %ld\n",
                     name.c_str(), min, value);
        std::exit(2);
      }
    }
    params_.emplace_back(name, value);
    return value;
  }

  /// Declares a string knob (e.g. --backend asm); returns the override or
  /// `def`. Recorded in "params" alongside the integer knobs.
  std::string flag_str(const std::string& name, const std::string& def) {
    std::string value = def;
    if (const std::string* s = take(name)) value = *s;
    str_params_.emplace_back(name, value);
    return value;
  }

  /// Wall-clock milliseconds since flag parsing (≈ process start). Host
  /// state, not workload shape: reported next to the deterministic numbers
  /// but excluded from the byte-determinism comparison set (see
  /// JsonReport::write and RMC_BENCH_NO_HOST_MS).
  u64 host_ms() const {
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  /// Path given with --json, empty when absent (= human output only).
  std::string json_path() {
    if (const std::string* s = take("json")) return *s;
    return {};
  }

  /// Paths given with --trace / --pcap / --csv (already consumed; empty =
  /// off).
  const std::string& trace_path() const { return trace_path_; }
  const std::string& pcap_path() const { return pcap_path_; }
  const std::string& csv_path() const { return csv_path_; }

  /// Declared knobs with their effective values (for the params object).
  const std::vector<std::pair<std::string, long>>& params() const {
    return params_;
  }
  const std::vector<std::pair<std::string, std::string>>& str_params() const {
    return str_params_;
  }

  /// True when every flag on the command line was declared by the bench.
  bool all_consumed() const {
    bool ok = true;
    for (const Flag& f : flags_) {
      if (!f.taken) {
        std::fprintf(stderr, "unknown flag: --%s\n", f.name.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  struct Flag {
    std::string name;
    std::string value;
    bool taken = false;
  };

  const std::string* take(const std::string& name) {
    for (Flag& f : flags_) {
      if (f.name == name) {
        f.taken = true;
        return &f.value;
      }
    }
    return nullptr;
  }

  std::vector<Flag> flags_;
  std::vector<std::pair<std::string, long>> params_;
  std::vector<std::pair<std::string, std::string>> str_params_;
  std::string trace_path_;
  std::string pcap_path_;
  std::string csv_path_;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// Accumulates a bench's numbers and writes the schema above. Results keep
/// insertion order (the order the table prints in); dotted keys ("hand.keyexp")
/// are the convention for per-row values.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  // u64/i64 cover size_t and long on this platform; don't add overloads for
  // those (they'd collide — same underlying types).
  void result(std::string key, u64 v) {
    entries_.push_back({std::move(key), Entry::kU64, v, 0, 0.0, {}});
  }
  void result(std::string key, i64 v) {
    entries_.push_back({std::move(key), Entry::kI64, 0, v, 0.0, {}});
  }
  void result(std::string key, int v) { result(std::move(key), static_cast<i64>(v)); }
  void result(std::string key, unsigned v) { result(std::move(key), static_cast<u64>(v)); }
  void result(std::string key, double v) {
    entries_.push_back({std::move(key), Entry::kDouble, 0, 0, v, {}});
  }
  void result(std::string key, bool v) {
    entries_.push_back({std::move(key), Entry::kBool, v ? 1u : 0u, 0, 0.0, {}});
  }
  void result(std::string key, std::string v) {
    entries_.push_back({std::move(key), Entry::kString, 0, 0, 0.0, std::move(v)});
  }
  void result(std::string key, const char* v) {
    result(std::move(key), std::string(v));
  }

  /// Attach a cycle attribution under "profiles". The profiler must stay
  /// alive until write(); typical use names one per measured build.
  void profile(std::string name, const telemetry::CycleProfiler& p) {
    profiles_.emplace_back(std::move(name), &p);
  }

  /// Attach the run's timeseries sampler: write() then emits a "timeseries"
  /// section, honors --csv, and the --trace export gains "ph":"C" counter
  /// tracks. Benches that never attach one emit byte-identical JSON to
  /// before this section existed. Must stay alive until write().
  void timeseries(const telemetry::Sampler& s) { sampler_ = &s; }
  /// Attach the run's SLO engine: write() emits an "slo" section (rules,
  /// firing state, alert timeline). Must stay alive until write().
  void slo(const telemetry::SloEngine& e) { slo_ = &e; }

  /// Write BENCH_<id>.json-style output when --json was passed; otherwise a
  /// no-op. Exits nonzero on I/O failure or unknown flags so typos fail the
  /// run instead of silently measuring the default configuration.
  void write(Args& args) const {
    const std::string path = args.json_path();
    if (!args.all_consumed()) std::exit(2);
    write_trace_artifacts(args);
    if (path.empty()) return;

    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("schema_version", 1);
    w.kv("bench", bench_);
    // Wall-clock cost of the run: the perf trajectory the committed
    // snapshots carry. Host state varies run to run, so the determinism
    // gates (scripts/check.sh) export RMC_BENCH_NO_HOST_MS=1 to keep their
    // byte-for-byte comparisons meaningful.
    if (std::getenv("RMC_BENCH_NO_HOST_MS") == nullptr) {
      w.kv("host_ms", args.host_ms());
    }
    w.key("params");
    w.begin_object();
    for (const auto& [name, value] : args.params()) {
      w.kv(name, static_cast<i64>(value));
    }
    for (const auto& [name, value] : args.str_params()) {
      w.kv(name, value);
    }
    w.end_object();
    w.key("results");
    w.begin_object();
    for (const Entry& e : entries_) {
      switch (e.kind) {
        case Entry::kU64: w.kv(e.key, e.u); break;
        case Entry::kI64: w.kv(e.key, e.i); break;
        case Entry::kDouble: w.kv(e.key, e.d); break;
        case Entry::kBool: w.kv(e.key, e.u != 0); break;
        case Entry::kString: w.kv(e.key, e.s); break;
      }
    }
    w.end_object();
    if (!profiles_.empty()) {
      w.key("profiles");
      w.begin_object();
      for (const auto& [name, prof] : profiles_) {
        w.key(name);
        prof->write_json(w);
      }
      w.end_object();
    }
    w.key("metrics");
    telemetry::Registry::global().write_json(w);
    if (sampler_ != nullptr) {
      w.key("timeseries");
      sampler_->write_json(w);
    }
    if (slo_ != nullptr) {
      w.key("slo");
      slo_->write_json(w);
    }
    w.end_object();

    if (!telemetry::write_file(path, w.str())) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::printf("\njson report written to %s\n", path.c_str());
  }

 private:
  /// Honor --trace / --pcap / --csv: dump whatever the tracer and sampler
  /// captured. Runs even without --json, so any bench can be used purely as
  /// a trace source. With a sampler attached the Chrome trace additionally
  /// carries the counter tracks; without one the bytes are unchanged.
  void write_trace_artifacts(const Args& args) const {
    auto& tracer = telemetry::Tracer::global();
    if (!args.trace_path().empty()) {
      const std::string doc =
          sampler_ != nullptr ? sampler_->chrome_trace_json(tracer.events())
                              : telemetry::chrome_trace_json(tracer.events());
      if (!telemetry::write_file(args.trace_path(), doc)) {
        std::fprintf(stderr, "cannot write %s\n", args.trace_path().c_str());
        std::exit(1);
      }
      std::printf("chrome trace written to %s (%zu events)\n",
                  args.trace_path().c_str(), tracer.events().size());
    }
    if (!args.csv_path().empty() && sampler_ != nullptr) {
      if (!telemetry::write_file(args.csv_path(), sampler_->csv())) {
        std::fprintf(stderr, "cannot write %s\n", args.csv_path().c_str());
        std::exit(1);
      }
      std::printf("timeseries csv written to %s (%llu samples)\n",
                  args.csv_path().c_str(),
                  static_cast<unsigned long long>(sampler_->samples()));
    }
    if (!args.pcap_path().empty()) {
      const auto bytes = tracer.pcap_file_bytes();
      if (!telemetry::write_binary_file(args.pcap_path(), bytes)) {
        std::fprintf(stderr, "cannot write %s\n", args.pcap_path().c_str());
        std::exit(1);
      }
      std::printf("pcap written to %s (%llu packets)\n",
                  args.pcap_path().c_str(),
                  static_cast<unsigned long long>(tracer.pcap_packets()));
    }
  }

  struct Entry {
    std::string key;
    enum Kind { kU64, kI64, kDouble, kBool, kString } kind;
    u64 u;
    i64 i;
    double d;
    std::string s;
  };

  std::string bench_;
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, const telemetry::CycleProfiler*>>
      profiles_;
  const telemetry::Sampler* sampler_ = nullptr;
  const telemetry::SloEngine* slo_ = nullptr;
};

}  // namespace rmc::bench
