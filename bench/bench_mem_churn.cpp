// E16 — memory churn soak: the slab allocator under a million connection
// lifetimes, with alloc-fault injection and zero board restarts.
//
// PR 3 made xalloc exhaustion an honest, counted restart; this bench proves
// the production allocator (DESIGN.md §14) makes that restart *unnecessary*.
// Four phases, all derived from --seed:
//
//   churn      in-vitro: a SlabAllocator replays the redirector's exact
//              per-connection recipe (conn.state / conn.session / conn.buf /
//              conn.window, sized from issl::Session::sram_footprint and
//              TcpStack::kConnSramBytes) across --churn-cycles randomized
//              open/close lifetimes on a fixed SRAM budget. This is where
//              the millions come from: the allocator does precisely what it
//              does under the service, minus the TLS bytes around it, so the
//              cycle count is bounded by allocator arithmetic rather than by
//              simulating a million handshakes. Gates: zero exhaustion
//              failures, zero live bytes at the end (leak-free by
//              accounting), and a committed-over-peak-live retention ceiling
//              (the external-fragmentation gate: the slab may cache empty
//              blocks, but only a bounded multiple of the real peak).
//
//   quarantine the same churn in poison/quarantine debug mode, ending with a
//              deliberate double free and a deliberate use-after-free write:
//              both must be *detected* (named fault + counter), both
//              deterministically. check.sh runs this phase under ASan/UBSan.
//
//   service    in-vivo: a slab-mode ServiceBoard serves --sessions real TLS
//              sessions (full and abbreviated handshakes mixed, hostile
//              peers from the E15 harness churning alongside) and must end
//              with zero resets and zero live slab bytes at idle — the
//              steady state the xalloc port could never reach (§5.2).
//
//   faults     a seeded AllocFaultPlan fails allocation attempts 1..4 (one
//              per recipe site) plus a random tail. Every kResourceExhausted
//              lands on one connection: shed with RST, slot recycles, board
//              stays up. Gates: all four sites tripped by name, sheds ==
//              injections, zero restarts of any cause.
//
// Total cycles across the phases must reach --min-cycles (default 1M).
// Exit status 1 on any gate violation; --json output is byte-identical
// across same-seed runs (scripts/check.sh double-runs it to prove that).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "abuse/hostile.h"
#include "bench_util.h"
#include "dynk/allocfault.h"
#include "dynk/slab.h"
#include "services/supervisor.h"

using namespace rmc;
using common::u64;
using common::u8;
using dynk::AllocFaultPlan;
using dynk::SlabAllocator;
using dynk::SlabConfig;
using dynk::SlabHandle;

namespace {

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// The redirector's per-connection recipe (redirector.cc alloc_conn), sized
// for a given TLS shape. Kept in one place so the in-vitro phase replays
// exactly what the in-vivo phase allocates.
struct Recipe {
  std::size_t bytes[4];
  static Recipe for_config(const issl::Config& tls) {
    return {{services::RmcRedirector::kConnStateBytes,
             issl::Session::sram_footprint(tls),
             services::RmcRedirector::kForwardBufBytes,
             net::TcpStack::kConnSramBytes}};
  }
};

// ---------------------------------------------------------------------------
// Phase 1/2: in-vitro churn
// ---------------------------------------------------------------------------

struct ChurnResult {
  u64 cycles = 0;           // connection lifetimes completed (open+close)
  u64 allocs = 0;
  u64 frees = 0;
  u64 failed = 0;           // exhaustion failures (gate: 0)
  u64 peak_live_bytes = 0;
  u64 committed_bytes = 0;  // steady-state commitment after the run
  u64 end_live_bytes = 0;   // gate: 0 (leak-free)
  double retention = 0.0;   // committed / peak live (gate: <= ceiling)
  double internal_frag = 0.0;
  // Quarantine-mode detection demo:
  u64 double_frees_detected = 0;
  u64 poison_trips_detected = 0;
};

ChurnResult run_churn(u64 seed, u64 cycles, bool quarantine,
                      std::size_t slots, std::size_t budget_bytes) {
  SlabConfig sc;
  sc.capacity = budget_bytes;
  sc.quarantine = quarantine;
  SlabAllocator slab(sc);
  common::Xorshift64 rng(seed);

  // Three session shapes the fleet would actually mix: the embedded-port
  // default, a 256-bit-key config, and a resumption-enabled one — three
  // different sram_footprints, three different class mixes.
  issl::Config shapes[3];
  shapes[0] = issl::Config::embedded_port();
  shapes[1] = issl::Config::embedded_port();
  shapes[1].aes_key_bits = 256;
  shapes[2] = issl::Config::embedded_port();
  shapes[2].resumption = true;
  const Recipe recipes[3] = {Recipe::for_config(shapes[0]),
                             Recipe::for_config(shapes[1]),
                             Recipe::for_config(shapes[2])};

  struct Slot {
    SlabHandle h[4] = {0, 0, 0, 0};
    bool open = false;
  };
  std::vector<Slot> live(slots);
  ChurnResult r;

  auto close_slot = [&](Slot& s) {
    for (int k = 3; k >= 0; --k) {  // reverse order, like free_conn
      if (s.h[k] != 0) {
        (void)slab.free(s.h[k]);
        ++r.frees;
        s.h[k] = 0;
      }
    }
    s.open = false;
  };

  while (r.cycles < cycles) {
    Slot& s = live[rng.next() % slots];
    if (!s.open) {
      const Recipe& rec = recipes[rng.next() % 3];
      bool ok = true;
      for (int k = 0; k < 4 && ok; ++k) {
        auto h = slab.alloc(rec.bytes[k], "churn");
        if (h.ok()) {
          s.h[k] = *h;
          ++r.allocs;
        } else {
          ok = false;
        }
      }
      if (!ok) {
        ++r.failed;
        close_slot(s);  // release the partial recipe
      } else {
        s.open = true;
        ++r.cycles;  // a connection lifetime begins (it always ends below)
      }
    } else {
      close_slot(s);
    }
    r.peak_live_bytes = std::max<u64>(r.peak_live_bytes, slab.live_bytes());
  }
  for (Slot& s : live) {
    if (s.open) close_slot(s);
  }
  slab.flush_quarantine();

  if (quarantine) {
    // Detection demo: both bug classes must trip, deterministically.
    auto h = slab.alloc(64, "demo.doublefree");
    if (h.ok()) {
      (void)slab.free(*h);
      (void)slab.free(*h);  // detected: kFailedPrecondition + counter
    }
    auto h2 = slab.alloc(64, "demo.uaf");
    if (h2.ok()) {
      auto stale = slab.view(*h2);
      (void)slab.free(*h2);
      if (!stale.empty()) stale[0] ^= 0xFF;  // write through the dead handle
      slab.flush_quarantine();  // poison audit catches it here
    }
    r.double_frees_detected = slab.double_free_faults();
    r.poison_trips_detected = slab.poison_trips();
  }

  r.committed_bytes = slab.committed_bytes();
  r.end_live_bytes = slab.live_bytes();
  r.retention = r.peak_live_bytes > 0
                    ? static_cast<double>(r.committed_bytes) /
                          static_cast<double>(r.peak_live_bytes)
                    : 0.0;
  r.internal_frag = slab.internal_fragmentation();
  r.failed += 0;  // (injected failures impossible here: no monitor attached)
  return r;
}

// ---------------------------------------------------------------------------
// Phase 3: in-vivo service soak (full + resumed handshakes, abuse peers)
// ---------------------------------------------------------------------------

struct ServiceResult {
  u64 served = 0;
  u64 resumed = 0;       // abbreviated handshakes among served
  u64 failed = 0;
  u64 resets = 0;        // gate: 0
  u64 alloc_sheds = 0;   // gate: 0 (no faults injected in this phase)
  u64 end_live_bytes = 0;  // gate: 0 at idle
  u64 slab_frees = 0;
  u64 hostile_rounds = 0;
  u64 elapsed_ms = 0;
};

services::ServiceBoardConfig board_config(std::size_t budget_bytes) {
  services::ServiceBoardConfig cfg;
  cfg.redirector.listen_port = 4433;
  cfg.redirector.backend_ip = 2;
  cfg.redirector.backend_port = 8000;
  cfg.redirector.secure = true;
  cfg.redirector.psk = bytes_of("e16-psk");
  cfg.redirector.tls = issl::Config::embedded_port();
  cfg.redirector.tls.resumption = true;
  cfg.redirector.session_cache_capacity = 8;
  cfg.redirector.shed_when_busy = true;
  cfg.board_ip = 1;
  cfg.allocator = dynk::AllocatorKind::kSlab;
  cfg.xalloc_capacity = budget_bytes;
  return cfg;
}

ServiceResult run_service(u64 seed, u64 sessions, std::size_t budget_bytes) {
  net::SimNet medium(seed);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  net::TcpStack attacker_host(medium, 4, seed ^ 0xA77A);
  services::EchoBackend backend(backend_host, 8000);
  if (!backend.start().is_ok()) return {};
  services::ServiceBoard board(medium, board_config(budget_bytes));

  // Abuse peers from the E15 harness churn alongside the honest client:
  // abandoned handshakes and resumption-thrash are exactly the traffic that
  // leaks per-connection memory when a cleanup path is missing.
  abuse::HostileClient::Options mo;
  mo.behavior = abuse::Behavior::kMidHandshakeReset;
  mo.rounds = static_cast<int>(std::min<u64>(sessions, 200));
  abuse::HostileClient::Options ro;
  ro.behavior = abuse::Behavior::kResumptionThrash;
  ro.rounds = static_cast<int>(std::min<u64>(sessions, 200));
  abuse::HostileClient mid(attacker_host, medium, 1, 4433, seed * 31 + 1, mo);
  abuse::HostileClient thrash(attacker_host, medium, 1, 4433, seed * 31 + 2,
                              ro);

  ServiceResult r;
  const auto msg = bytes_of("memory churn soak");
  services::Client client(client_host, 1, 4433, true,
                          board_config(budget_bytes).redirector.tls,
                          bytes_of("e16-psk"), seed * 977 + 5);
  client.set_idle_give_up(25'000);
  bool first = true;
  u64 t = 0;
  for (u64 s2 = 0; s2 < sessions; ++s2) {
    bool started;
    if (first) {
      started = client.start().is_ok();
      first = false;
    } else {
      started = client.reconnect().is_ok();  // offers the earned ticket
    }
    if (!started || !client.send(msg).is_ok()) {
      ++r.failed;
      continue;
    }
    const std::size_t want = client.received().size() + msg.size();
    bool done = false;
    for (u64 i = 0; i < 3'000 && !done; ++i, ++t) {
      board.poll();
      backend.poll();
      (void)client.poll();
      (void)mid.poll();
      (void)thrash.poll();
      medium.tick(1);
      if (client.received().size() >= want) done = true;
      if (client.failed()) break;
    }
    if (done) {
      ++r.served;
      if (client.resumed()) ++r.resumed;
    } else {
      ++r.failed;
    }
  }
  client.close();
  // Drain: let the attackers finish their rounds and every slot close, so
  // the end-of-soak live-bytes audit sees the idle steady state.
  for (u64 i = 0; i < 8'000; ++i, ++t) {
    board.poll();
    backend.poll();
    (void)client.poll();
    const bool a = mid.poll();
    const bool b = thrash.poll();
    medium.tick(1);
    if (!a && !b && board.redirector() &&
        board.redirector()->stats().connections_active == 0 && i > 400) {
      break;
    }
  }

  r.resets = board.resets();
  if (board.redirector()) {
    r.alloc_sheds = board.redirector()->stats().alloc_sheds;
  }
  if (board.slab()) {
    board.slab()->flush_quarantine();
    r.end_live_bytes = board.slab()->live_bytes();
    r.slab_frees = board.slab()->free_count();
  }
  r.hostile_rounds = mid.stats().rounds_done + thrash.stats().rounds_done;
  r.elapsed_ms = t;
  return r;
}

// ---------------------------------------------------------------------------
// Phase 4: alloc-fault scenario — every recipe site must shed, not restart
// ---------------------------------------------------------------------------

struct FaultResult {
  u64 served = 0;
  u64 sheds = 0;
  u64 injected = 0;
  u64 sites_tripped = 0;   // gate: all 4 recipe sites
  u64 resets = 0;          // gate: 0
  bool restart_requested = false;  // gate: false
  std::string sites;       // "conn.state,conn.session,conn.buf,conn.window"
  u64 elapsed_ms = 0;
};

FaultResult run_faults(u64 seed, u64 sessions, std::size_t budget_bytes) {
  net::SimNet medium(seed ^ 0xFA17);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  if (!backend.start().is_ok()) return {};

  auto cfg = board_config(budget_bytes);
  cfg.redirector.secure = false;  // the memory path is what's under test
  cfg.redirector.tls.resumption = false;
  cfg.redirector.session_cache_capacity = 0;
  // Gaps 0,1,2,3 walk the failure through the recipe: attempt #1 fails
  // conn.state; then one success (conn.state) and a failure on
  // conn.session; then two successes and a failure on conn.buf; then three
  // and conn.window. A seeded random tail keeps pressure on after coverage.
  AllocFaultPlan plan = AllocFaultPlan::at({0, 1, 2, 3});
  AllocFaultPlan tail = AllocFaultPlan::random(seed, 4, 5, 23);
  plan.failures.insert(plan.failures.end(), tail.failures.begin(),
                       tail.failures.end());
  cfg.alloc_fault_plan = plan;
  services::ServiceBoard board(medium, cfg);

  FaultResult r;
  const auto msg = bytes_of("fault probe");
  u64 t = 0;
  for (u64 s2 = 0; s2 < sessions; ++s2) {
    services::Client c(client_host, 1, 4433, false,
                       issl::Config::embedded_port(), {}, seed * 131 + s2);
    c.set_idle_give_up(2'000);
    if (!c.start().is_ok() || !c.send(msg).is_ok()) continue;
    bool done = false;
    for (u64 i = 0; i < 2'500 && !done; ++i, ++t) {
      board.poll();
      backend.poll();
      (void)c.poll();
      medium.tick(1);
      if (c.received().size() >= msg.size()) done = true;
      if (c.failed()) break;
    }
    if (done) ++r.served;
    c.close();
    for (u64 i = 0; i < 60; ++i, ++t) {
      board.poll();
      backend.poll();
      (void)c.poll();
      medium.tick(1);
    }
  }

  r.resets = board.resets();
  r.injected = board.alloc_faults().injected();
  r.sites_tripped = board.alloc_faults().sites_tripped().size();
  for (const auto& s : board.alloc_faults().sites_tripped()) {
    if (!r.sites.empty()) r.sites += ",";
    r.sites += s;
  }
  if (board.redirector()) {
    r.sheds = board.redirector()->stats().alloc_sheds;
    r.restart_requested = board.redirector()->restart_requested();
  }
  r.elapsed_ms = t;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args(argc, argv);
  const u64 seed = static_cast<u64>(args.flag_int("seed", 233));
  const u64 churn_cycles =
      static_cast<u64>(args.flag_int("churn-cycles", 1'000'000));
  const u64 quarantine_cycles =
      static_cast<u64>(args.flag_int("quarantine-cycles", 50'000));
  const u64 sessions = static_cast<u64>(args.flag_int("sessions", 240));
  const u64 fault_sessions =
      static_cast<u64>(args.flag_int("fault-sessions", 24));
  const u64 min_cycles =
      static_cast<u64>(args.flag_int("min-cycles", 1'000'000));
  // --quarantine 1 additionally runs the *main* churn in quarantine mode
  // (the ASan/UBSan job in check.sh does); the dedicated quarantine phase
  // runs either way. min=0: this is a mode toggle, not a workload size.
  const bool quarantine_main = args.flag_int("quarantine", 0, 0) != 0;
  const std::size_t kSlots = 16;          // concurrent lifetimes in vitro
  const std::size_t kBudget = 256 * 1024; // slab SRAM budget everywhere

  // Named per-cause reset telemetry (satellite of this PR): lets the gate
  // below assert "zero alloc-caused restarts" against the registry by name.
  services::set_reset_cause_telemetry(true);

  std::printf("E16: memory churn soak (slab allocator, DESIGN.md s14)\n");
  std::printf("  seed=%llu churn=%llu quarantine=%llu sessions=%llu "
              "faults=%llu\n\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(churn_cycles),
              static_cast<unsigned long long>(quarantine_cycles),
              static_cast<unsigned long long>(sessions),
              static_cast<unsigned long long>(fault_sessions));

  const ChurnResult churn =
      run_churn(seed, churn_cycles, quarantine_main, kSlots, kBudget);
  std::printf("[churn]      %llu cycles  allocs=%llu frees=%llu failed=%llu\n"
              "             peak_live=%llu committed=%llu retention=%.3f "
              "internal_frag=%.3f\n",
              static_cast<unsigned long long>(churn.cycles),
              static_cast<unsigned long long>(churn.allocs),
              static_cast<unsigned long long>(churn.frees),
              static_cast<unsigned long long>(churn.failed),
              static_cast<unsigned long long>(churn.peak_live_bytes),
              static_cast<unsigned long long>(churn.committed_bytes),
              churn.retention, churn.internal_frag);

  const ChurnResult quar =
      run_churn(seed ^ 0x9E37, quarantine_cycles, true, kSlots, kBudget);
  std::printf("[quarantine] %llu cycles  double-free detected=%llu "
              "uaf detected=%llu\n",
              static_cast<unsigned long long>(quar.cycles),
              static_cast<unsigned long long>(quar.double_frees_detected),
              static_cast<unsigned long long>(quar.poison_trips_detected));

  const ServiceResult svc = run_service(seed, sessions, kBudget);
  std::printf("[service]    served=%llu (resumed=%llu) failed=%llu "
              "hostile_rounds=%llu resets=%llu live_at_idle=%llu\n",
              static_cast<unsigned long long>(svc.served),
              static_cast<unsigned long long>(svc.resumed),
              static_cast<unsigned long long>(svc.failed),
              static_cast<unsigned long long>(svc.hostile_rounds),
              static_cast<unsigned long long>(svc.resets),
              static_cast<unsigned long long>(svc.end_live_bytes));

  const FaultResult flt = run_faults(seed, fault_sessions, kBudget);
  std::printf("[faults]     served=%llu sheds=%llu injected=%llu "
              "sites=[%s] resets=%llu\n\n",
              static_cast<unsigned long long>(flt.served),
              static_cast<unsigned long long>(flt.sheds),
              static_cast<unsigned long long>(flt.injected),
              flt.sites.c_str(),
              static_cast<unsigned long long>(flt.resets));

  const u64 total_cycles =
      churn.cycles + quar.cycles + svc.served + flt.served;
  const u64 total_restarts = svc.resets + flt.resets;

  // --- Gates ---------------------------------------------------------------
  // Retention ceiling: the slab may cache empty blocks (by design), but the
  // committed footprint must stay within 2x the real peak demand — that IS
  // the bounded-external-fragmentation claim, measured not asserted.
  constexpr double kRetentionCeiling = 2.0;
  u64 violations = 0;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      ++violations;
      std::printf("GATE FAILED: %s\n", what);
    }
  };
  gate(total_cycles >= min_cycles, "total cycles under --min-cycles");
  gate(churn.failed == 0, "churn hit exhaustion on a leak-free workload");
  gate(churn.end_live_bytes == 0, "churn leaked live bytes");
  gate(churn.retention <= kRetentionCeiling, "churn retention over ceiling");
  gate(quar.end_live_bytes == 0, "quarantine churn leaked live bytes");
  gate(quar.double_frees_detected == 1, "double free went undetected");
  gate(quar.poison_trips_detected == 1, "use-after-free went undetected");
  gate(svc.served >= sessions * 9 / 10, "service soak served too few");
  gate(svc.resumed > 0, "no abbreviated handshake exercised");
  gate(svc.resets == 0, "service soak restarted the board");
  gate(svc.alloc_sheds == 0, "service soak shed without injected faults");
  gate(svc.end_live_bytes == 0, "service soak left live slab bytes at idle");
  gate(flt.sites_tripped == 4, "fault plan missed a recipe site");
  gate(flt.sheds == flt.injected, "an injected fault did not shed cleanly");
  gate(flt.resets == 0, "an alloc fault restarted the board");
  gate(!flt.restart_requested, "slab mode requested an xalloc-style restart");
  // The named reset-cause counter must not exist: no alloc-caused restart
  // ever happened, by telemetry, not just by our own counters.
  gate(telemetry::Registry::global().find_counter("board.resets.xalloc") ==
           nullptr,
       "board.resets.xalloc counter exists");

  std::printf("%s: %llu cycles, %llu board restarts, %llu violations\n",
              violations == 0 ? "PASS" : "FAIL",
              static_cast<unsigned long long>(total_cycles),
              static_cast<unsigned long long>(total_restarts),
              static_cast<unsigned long long>(violations));

  bench::JsonReport rep("E16");
  rep.result("total_cycles", total_cycles);
  rep.result("total_restarts", total_restarts);
  rep.result("violations", violations);
  rep.result("allocator", dynk::allocator_kind_name(dynk::AllocatorKind::kSlab));
  rep.result("churn.cycles", churn.cycles);
  rep.result("churn.allocs", churn.allocs);
  rep.result("churn.frees", churn.frees);
  rep.result("churn.failed", churn.failed);
  rep.result("churn.peak_live_bytes", churn.peak_live_bytes);
  rep.result("churn.committed_bytes", churn.committed_bytes);
  rep.result("churn.end_live_bytes", churn.end_live_bytes);
  rep.result("churn.retention", churn.retention);
  rep.result("churn.internal_frag", churn.internal_frag);
  rep.result("quarantine.cycles", quar.cycles);
  rep.result("quarantine.double_frees_detected", quar.double_frees_detected);
  rep.result("quarantine.poison_trips_detected", quar.poison_trips_detected);
  rep.result("service.served", svc.served);
  rep.result("service.resumed", svc.resumed);
  rep.result("service.failed", svc.failed);
  rep.result("service.resets", svc.resets);
  rep.result("service.alloc_sheds", svc.alloc_sheds);
  rep.result("service.end_live_bytes", svc.end_live_bytes);
  rep.result("service.slab_frees", svc.slab_frees);
  rep.result("service.hostile_rounds", svc.hostile_rounds);
  rep.result("service.elapsed_ms", svc.elapsed_ms);
  rep.result("faults.served", flt.served);
  rep.result("faults.sheds", flt.sheds);
  rep.result("faults.injected", flt.injected);
  rep.result("faults.sites_tripped", flt.sites_tripped);
  rep.result("faults.sites", flt.sites);
  rep.result("faults.resets", flt.resets);
  rep.result("faults.elapsed_ms", flt.elapsed_ms);
  rep.write(args);

  return violations == 0 ? 0 : 1;
}
