// CryptoCell offload engine (DESIGN.md §12): register-level peripheral
// behavior, the dynk::CryptoDev driver on top of it, and the issl record
// layer's Backend::kEngine dispatch — including every absent/pulled-card
// fault path a stock board (no expansion card) exercises.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "crypto/modes.h"
#include "crypto/sha1.h"
#include "dynk/cryptodev.h"
#include "issl/record.h"
#include "rabbit/board.h"
#include "rabbit/cryptocell.h"

namespace rmc {
namespace {

using common::u16;
using common::u32;
using common::u64;
using common::u8;
using rabbit::CryptoCell;
using rabbit::CryptoCellError;
using rabbit::CryptoCellOp;

// ---------------------------------------------------------------------------
// Peripheral, driven at the register level (no driver, no CPU)
// ---------------------------------------------------------------------------

// A bare engine over a Memory, with helpers that play the driver's role by
// hand: lay descriptors in a ring at kRing, stage data, ring the doorbell.
struct EngineRig {
  static constexpr u16 kBase = 0x0100;
  static constexpr u32 kRing = 0x90000;
  static constexpr u32 kData = 0x91000;
  static constexpr u32 kOut = 0x92000;
  static constexpr u32 kIv = 0x93000;
  static constexpr u32 kKeyBuf = 0x93800;  // keys stage separately from data:
  // descriptors execute at GO, so the key bytes must still be there then

  rabbit::Memory mem;
  rabbit::CryptoCell cc{kBase, mem};
  u8 tail = 0;

  u8 rd(u16 reg) { return cc.io_read(static_cast<u16>(kBase + reg)); }
  void wr(u16 reg, u8 v) { cc.io_write(static_cast<u16>(kBase + reg), v); }

  void program_ring(u8 capacity = 8) {
    wr(3, kRing & 0xFF);
    wr(4, (kRing >> 8) & 0xFF);
    wr(5, (kRing >> 16) & 0x0F);
    wr(6, capacity);
  }

  void poke(u32 addr, std::span<const u8> bytes) {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      mem.write_phys(addr + static_cast<u32>(i), bytes[i]);
    }
  }
  std::vector<u8> peek(u32 addr, std::size_t n) {
    std::vector<u8> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = mem.read_phys(addr + static_cast<u32>(i));
    }
    return out;
  }

  void addr24(u32 field, u32 addr) {
    mem.write_phys(field, addr & 0xFF);
    mem.write_phys(field + 1, (addr >> 8) & 0xFF);
    mem.write_phys(field + 2, (addr >> 16) & 0x0F);
  }

  /// Fill ring slot `tail` and advance the tail register.
  void push(u8 op, u8 slot, u32 src, u32 dst, std::size_t len, u32 iv = 0,
            u8 flags = 0) {
    const u32 d = kRing + tail * static_cast<u32>(CryptoCell::kDescriptorBytes);
    mem.write_phys(d + 0, op);
    mem.write_phys(d + 1, slot);
    addr24(d + 2, src);
    addr24(d + 5, dst);
    mem.write_phys(d + 8, len & 0xFF);
    mem.write_phys(d + 9, (len >> 8) & 0xFF);
    addr24(d + 10, iv);
    mem.write_phys(d + 13, flags);
    mem.write_phys(d + 14, 0);
    mem.write_phys(d + 15, 0);
    tail = static_cast<u8>((tail + 1) % 8);
    wr(8, tail);
  }

  u8 desc_status(u8 slot) {
    return mem.read_phys(kRing +
                         slot * static_cast<u32>(CryptoCell::kDescriptorBytes) +
                         14);
  }

  /// GO, then tick until the busy bit clears (bounded so a broken model
  /// fails the test instead of hanging it).
  u8 go_and_drain() {
    wr(2, CryptoCell::kCtrlGo);
    for (int i = 0; i < 10'000 && (rd(1) & CryptoCell::kStatusBusy); ++i) {
      cc.tick(1'000);
    }
    return rd(1);
  }

  void load_aes_key(std::span<const u8> key, u8 slot = 0) {
    poke(kKeyBuf, key);
    push(static_cast<u8>(CryptoCellOp::kLoadAesKey), slot, kKeyBuf, 0,
         key.size());
  }
  void load_mac_key(std::span<const u8> key, u8 slot = 1) {
    poke(kKeyBuf, key);
    push(static_cast<u8>(CryptoCellOp::kLoadMacKey), slot, kKeyBuf, 0,
         key.size());
  }
};

TEST(CryptoCellHw, IdentityReadsAndStockBoardFloats) {
  EngineRig rig;
  EXPECT_EQ(rig.rd(0), CryptoCell::kIdValue);
  EXPECT_EQ(rig.rd(1), 0);  // idle, no latches

  rabbit::Board stock;  // no attach_cryptocell(): nothing claims the range
  const u64 strays = stock.io().unclaimed_reads();
  EXPECT_EQ(stock.io().read(rabbit::Board::kCryptoCellBase), 0xFF);
  EXPECT_EQ(stock.io().unclaimed_reads(), strays + 1);
}

TEST(CryptoCellHw, AesCbcEncryptMatchesSoftware) {
  EngineRig rig;
  rig.program_ring();
  std::array<u8, 16> key{}, iv{};
  common::Xorshift64 rng(7);
  rng.fill(key);
  rng.fill(iv);
  std::vector<u8> pt(48);
  rng.fill(pt);

  rig.load_aes_key(key);
  rig.poke(EngineRig::kData, pt);
  rig.poke(EngineRig::kIv, iv);
  rig.push(static_cast<u8>(CryptoCellOp::kAesCbcEncrypt), 0, EngineRig::kData,
           EngineRig::kOut, pt.size(), EngineRig::kIv);
  const u8 status = rig.go_and_drain();
  EXPECT_EQ(status, CryptoCell::kStatusDone);

  auto cipher = crypto::AesFast::create(key);
  ASSERT_TRUE(cipher.ok());
  EXPECT_EQ(rig.peek(EngineRig::kOut, pt.size()),
            crypto::cbc_encrypt(*cipher, iv, pt));
  EXPECT_EQ(rig.desc_status(0), 1);  // key load ok
  EXPECT_EQ(rig.desc_status(1), 1);  // encrypt ok
  EXPECT_EQ(rig.rd(7), 2);           // head consumed both
  EXPECT_EQ(rig.cc.ops_completed(), 2u);
  EXPECT_EQ(rig.cc.key_loads(), 1u);

  rig.wr(1, CryptoCell::kStatusDone);  // ack
  EXPECT_EQ(rig.rd(1), 0);
}

TEST(CryptoCellHw, AesCbcDecryptRoundTrips) {
  EngineRig rig;
  rig.program_ring();
  std::array<u8, 16> key{}, iv{};
  common::Xorshift64 rng(11);
  rng.fill(key);
  rng.fill(iv);
  std::vector<u8> pt(64);
  rng.fill(pt);
  auto cipher = crypto::AesFast::create(key);
  ASSERT_TRUE(cipher.ok());
  const std::vector<u8> ct = crypto::cbc_encrypt(*cipher, iv, pt);

  rig.load_aes_key(key);
  rig.poke(EngineRig::kData, ct);
  rig.poke(EngineRig::kIv, iv);
  rig.push(static_cast<u8>(CryptoCellOp::kAesCbcDecrypt), 0, EngineRig::kData,
           EngineRig::kOut, ct.size(), EngineRig::kIv);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusDone);
  EXPECT_EQ(rig.peek(EngineRig::kOut, pt.size()), pt);
}

TEST(CryptoCellHw, HmacSha1MatchesSoftware) {
  EngineRig rig;
  rig.program_ring();
  std::vector<u8> mac_key(20, 0x5A);
  std::vector<u8> msg(100);
  common::Xorshift64 rng(13);
  rng.fill(msg);

  rig.load_mac_key(mac_key);
  rig.poke(EngineRig::kData, msg);
  rig.push(static_cast<u8>(CryptoCellOp::kHmacSha1), 1, EngineRig::kData,
           EngineRig::kOut, msg.size());
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusDone);

  const auto want = crypto::hmac_sha1(mac_key, msg);
  const auto got = rig.peek(EngineRig::kOut, want.size());
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
}

TEST(CryptoCellHw, StaysBusyForModeledCyclesThenLatchesDone) {
  EngineRig rig;
  rig.program_ring();
  std::array<u8, 16> key{};
  rig.load_aes_key(key);
  rig.wr(2, CryptoCell::kCtrlGo);

  // Cost of the key load under default timing: descriptor fetch 120 +
  // descriptor DMA 16/4 + key DMA 16/4 + schedule 220 = 348 cycles.
  EXPECT_EQ(rig.rd(1), CryptoCell::kStatusBusy);
  rig.cc.tick(347);
  EXPECT_EQ(rig.rd(1), CryptoCell::kStatusBusy);  // one cycle short
  rig.cc.tick(1);
  EXPECT_EQ(rig.rd(1), CryptoCell::kStatusDone);
  EXPECT_EQ(rig.cc.busy_cycles_total(), 348u);
}

TEST(CryptoCellHw, ErrorHaltsRingAtOffendingDescriptor) {
  EngineRig rig;
  rig.program_ring();
  std::array<u8, 16> key{}, iv{};
  std::vector<u8> pt(16, 1);
  rig.load_aes_key(key);                       // slot 0: ok
  rig.push(0x77, 0, EngineRig::kData, 0, 16);  // slot 1: no such op
  rig.poke(EngineRig::kData, pt);
  rig.poke(EngineRig::kIv, iv);
  rig.push(static_cast<u8>(CryptoCellOp::kAesCbcEncrypt), 0, EngineRig::kData,
           EngineRig::kOut, pt.size(), EngineRig::kIv);  // slot 2: never runs

  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadOp));
  EXPECT_EQ(rig.rd(7), 1);          // head parked on the bad descriptor
  EXPECT_EQ(rig.desc_status(1), 2); // error writeback
  EXPECT_EQ(rig.desc_status(2), 0); // halted before the good one
  EXPECT_EQ(rig.cc.errors(), 1u);

  // Fix the descriptor in place, ack, and GO again: the ring resumes.
  rig.mem.write_phys(EngineRig::kRing + 1 * CryptoCell::kDescriptorBytes + 0,
                     static_cast<u8>(CryptoCellOp::kAesCbcEncrypt));
  rig.addr24(EngineRig::kRing + 1 * CryptoCell::kDescriptorBytes + 5,
             EngineRig::kOut);
  rig.addr24(EngineRig::kRing + 1 * CryptoCell::kDescriptorBytes + 10,
             EngineRig::kIv);
  rig.wr(1, CryptoCell::kStatusError);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusDone);
  EXPECT_EQ(rig.rd(7), 3);
}

TEST(CryptoCellHw, GoWithoutRingConfigLatchesMisconfig) {
  EngineRig rig;  // capacity register still 0
  rig.wr(2, CryptoCell::kCtrlGo);
  EXPECT_EQ(rig.rd(1), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kRingMisconfig));
}

TEST(CryptoCellHw, ValidationErrors) {
  EngineRig rig;
  rig.program_ring();

  // AES data op on a slot never loaded.
  rig.push(static_cast<u8>(CryptoCellOp::kAesCbcEncrypt), 3, EngineRig::kData,
           EngineRig::kOut, 16, EngineRig::kIv);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadKeySlot));
  rig.wr(2, CryptoCell::kCtrlReset);

  // AES length not a block multiple.
  rig.tail = 0;
  rig.program_ring();
  std::array<u8, 16> key{};
  rig.load_aes_key(key);
  rig.push(static_cast<u8>(CryptoCellOp::kAesCbcEncrypt), 0, EngineRig::kData,
           EngineRig::kOut, 24, EngineRig::kIv);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadLength));
  rig.wr(2, CryptoCell::kCtrlReset);

  // Key loads with out-of-spec lengths (AES-128 only; MAC keys <= 64 B).
  rig.tail = 0;
  rig.program_ring();
  std::vector<u8> wide_key(32, 1);
  rig.load_aes_key(wide_key);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadLength));
  rig.wr(2, CryptoCell::kCtrlReset);

  rig.tail = 0;
  rig.program_ring();
  std::vector<u8> long_mac(65, 1);
  rig.load_mac_key(long_mac);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadLength));

  // Slot index beyond the slot file.
  rig.wr(2, CryptoCell::kCtrlReset);
  rig.tail = 0;
  rig.program_ring();
  rig.push(static_cast<u8>(CryptoCellOp::kHmacSha1), CryptoCell::kKeySlots,
           EngineRig::kData, EngineRig::kOut, 16);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadKeySlot));
}

TEST(CryptoCellHw, SoftResetClearsKeySlotsAndConfig) {
  EngineRig rig;
  rig.program_ring();
  std::array<u8, 16> key{};
  rig.load_aes_key(key);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusDone);

  rig.wr(2, CryptoCell::kCtrlReset);
  EXPECT_EQ(rig.rd(1), 0);
  EXPECT_EQ(rig.rd(6), 0);  // ring config gone
  EXPECT_EQ(rig.rd(7), 0);

  // The slot the reset wiped no longer carries a key.
  rig.tail = 0;
  rig.program_ring();
  rig.push(static_cast<u8>(CryptoCellOp::kAesCbcEncrypt), 0, EngineRig::kData,
           EngineRig::kOut, 16, EngineRig::kIv);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusError);
  EXPECT_EQ(rig.rd(9), static_cast<u8>(CryptoCellError::kBadKeySlot));
}

TEST(CryptoCellHw, IrqLineFollowsEnableAndLatches) {
  EngineRig rig;
  rig.program_ring();
  std::array<u8, 16> key{};
  rig.load_aes_key(key);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusDone);
  EXPECT_FALSE(rig.cc.irq_pending());  // completion IRQ disabled by default

  rig.wr(2, CryptoCell::kCtrlIrqEnable);
  EXPECT_TRUE(rig.cc.irq_pending());  // latch still set
  rig.wr(1, CryptoCell::kStatusDone);
  EXPECT_FALSE(rig.cc.irq_pending());

  rig.load_aes_key(key);
  EXPECT_EQ(rig.go_and_drain(), CryptoCell::kStatusDone);
  EXPECT_TRUE(rig.cc.irq_pending());
  rig.wr(2, CryptoCell::kCtrlIrqDisable);
  EXPECT_FALSE(rig.cc.irq_pending());
  EXPECT_EQ(rig.cc.irq_vector(), rabbit::Board::kCryptoCellIrqVector);
}

// ---------------------------------------------------------------------------
// Driver (dynk::CryptoDev) over a board-attached engine
// ---------------------------------------------------------------------------

TEST(CryptoDevDriver, AbsentEngineFailsEveryOpWithoutHanging) {
  rabbit::Board board;  // stock: probe reads the floating bus
  dynk::CryptoDev dev(board.io(), board.mem());
  EXPECT_FALSE(dev.available());

  const std::vector<u8> key(16, 1), iv(16, 2), data(16, 3);
  auto enc = dev.aes_cbc(true, key, iv, data);
  EXPECT_EQ(enc.status().code(), common::ErrorCode::kUnavailable);
  auto mac = dev.hmac_sha1(key, data);
  EXPECT_EQ(mac.status().code(), common::ErrorCode::kUnavailable);
  EXPECT_EQ(dev.submit_aes_cbc(true, key, iv, data).code(),
            common::ErrorCode::kUnavailable);
  EXPECT_EQ(dev.poll().code(), common::ErrorCode::kUnavailable);
}

TEST(CryptoDevDriver, ProbeSucceedsAfterAttach) {
  rabbit::Board board;
  dynk::CryptoDev dev(board.io(), board.mem());
  EXPECT_FALSE(dev.available());

  board.attach_cryptocell();
  EXPECT_TRUE(dev.probe());
  EXPECT_TRUE(dev.available());
  const std::vector<u8> key(16, 1), iv(16, 2), data(32, 3);
  auto enc = dev.aes_cbc(true, key, iv, data);
  ASSERT_TRUE(enc.ok());

  auto cipher = crypto::AesFast::create(std::span<const u8>(key));
  ASSERT_TRUE(cipher.ok());
  EXPECT_EQ(*enc, crypto::cbc_encrypt(*cipher, iv, data));
}

TEST(CryptoDevDriver, BlockingOpsMatchSoftwareCrypto) {
  rabbit::Board board;
  board.attach_cryptocell();
  dynk::CryptoDev dev(board.io(), board.mem());
  ASSERT_TRUE(dev.available());

  common::Xorshift64 rng(17);
  std::vector<u8> key(16), iv(16), pt(480), mac_key(20), msg(333);
  rng.fill(key);
  rng.fill(iv);
  rng.fill(pt);
  rng.fill(mac_key);
  rng.fill(msg);

  auto ct = dev.aes_cbc(true, key, iv, pt);
  ASSERT_TRUE(ct.ok());
  auto cipher = crypto::AesFast::create(std::span<const u8>(key));
  ASSERT_TRUE(cipher.ok());
  EXPECT_EQ(*ct, crypto::cbc_encrypt(*cipher, iv, pt));

  auto back = dev.aes_cbc(false, key, iv, *ct);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);

  auto digest = dev.hmac_sha1(mac_key, msg);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(*digest, crypto::hmac_sha1(mac_key, msg));

  EXPECT_EQ(dev.ops_completed(), 3u);
  EXPECT_GT(dev.stall_cycles_total(), 0u);
}

TEST(CryptoDevDriver, KeySlotCacheHitsAndEvicts) {
  rabbit::Board board;
  board.attach_cryptocell();
  dynk::CryptoDev dev(board.io(), board.mem());
  const std::vector<u8> iv(16, 0), data(16, 9);

  std::vector<u8> key(16, 0);
  ASSERT_TRUE(dev.aes_cbc(true, key, iv, data).ok());
  ASSERT_TRUE(dev.aes_cbc(true, key, iv, data).ok());
  EXPECT_EQ(dev.key_loads(), 1u);  // second op reused the slot
  EXPECT_EQ(dev.key_cache_hits(), 1u);

  // Enough distinct keys to evict the whole 8-slot file, then the first key
  // again: it must reload.
  for (u8 k = 1; k <= rabbit::CryptoCell::kKeySlots; ++k) {
    std::vector<u8> other(16, k);
    ASSERT_TRUE(dev.aes_cbc(true, other, iv, data).ok());
  }
  EXPECT_EQ(dev.key_loads(), 1u + rabbit::CryptoCell::kKeySlots);
  ASSERT_TRUE(dev.aes_cbc(true, key, iv, data).ok());
  EXPECT_EQ(dev.key_loads(), 2u + rabbit::CryptoCell::kKeySlots);
}

TEST(CryptoDevDriver, AsyncSubmitPollTakesResult) {
  rabbit::Board board;
  rabbit::CryptoCellTiming slow;
  slow.aes_block_cycles = 100'000;  // guarantee poll sees the busy engine
  board.attach_cryptocell(slow);
  dynk::CryptoDev dev(board.io(), board.mem());

  common::Xorshift64 rng(19);
  std::vector<u8> key(16), iv(16), pt(64);
  rng.fill(key);
  rng.fill(iv);
  rng.fill(pt);

  ASSERT_TRUE(dev.submit_aes_cbc(true, key, iv, pt).is_ok());
  EXPECT_TRUE(dev.op_pending());
  // A second submit while one is in flight is a caller bug.
  EXPECT_EQ(dev.submit_hmac_sha1(key, pt).code(),
            common::ErrorCode::kFailedPrecondition);

  common::Status st = dev.poll(64);
  EXPECT_EQ(st.code(), common::ErrorCode::kUnavailable);  // still ciphering
  int polls = 1;
  while (!st.is_ok()) {
    ASSERT_EQ(st.code(), common::ErrorCode::kUnavailable);
    ASSERT_LT(polls++, 100'000);
    st = dev.poll(4096);
  }
  auto cipher = crypto::AesFast::create(std::span<const u8>(key));
  ASSERT_TRUE(cipher.ok());
  EXPECT_EQ(dev.take_data(), crypto::cbc_encrypt(*cipher, iv, pt));
  EXPECT_FALSE(dev.op_pending());
}

TEST(CryptoDevDriver, RejectsOversizeAndUnalignedRequests) {
  rabbit::Board board;
  board.attach_cryptocell();
  dynk::CryptoDev dev(board.io(), board.mem());
  const std::vector<u8> key(16, 1), iv(16, 2);

  std::vector<u8> huge(dynk::CryptoDev::kMaxDataBytes + 16, 0);
  EXPECT_EQ(dev.aes_cbc(true, key, iv, huge).status().code(),
            common::ErrorCode::kInvalidArgument);
  std::vector<u8> ragged(24, 0);
  EXPECT_EQ(dev.aes_cbc(true, key, iv, ragged).status().code(),
            common::ErrorCode::kInvalidArgument);
}

TEST(CryptoDevDriver, RecoversAfterEngineError) {
  rabbit::Board board;
  board.attach_cryptocell();
  dynk::CryptoDev dev(board.io(), board.mem());

  // A 65-byte MAC key passes the driver but the engine rejects the load;
  // the driver must ack + reset + keep working.
  std::vector<u8> long_key(65, 7), msg(32, 1);
  auto bad = dev.hmac_sha1(long_key, msg);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(dev.engine_errors(), 1u);

  std::vector<u8> good_key(20, 7);
  auto digest = dev.hmac_sha1(good_key, msg);
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(*digest, crypto::hmac_sha1(good_key, msg));
}

TEST(CryptoDevDriver, CardPulledMidOpFailsInsteadOfSpinning) {
  rabbit::Board board;
  rabbit::CryptoCellTiming slow;
  slow.aes_block_cycles = 1'000'000;
  board.attach_cryptocell(slow);
  dynk::CryptoDev dev(board.io(), board.mem());

  const std::vector<u8> key(16, 1), iv(16, 2), data(16, 3);
  ASSERT_TRUE(dev.submit_aes_cbc(true, key, iv, data).is_ok());
  board.detach_cryptocell();  // yank the card while the op is in flight

  EXPECT_EQ(dev.poll().code(), common::ErrorCode::kUnavailable);
  EXPECT_FALSE(dev.available());
  EXPECT_FALSE(dev.op_pending());
  // Blocking calls after the pull fail promptly too (no busy-bit spin).
  EXPECT_EQ(dev.aes_cbc(true, key, iv, data).status().code(),
            common::ErrorCode::kUnavailable);
}

TEST(CryptoDevDriver, BoardResetSoftResetsEngine) {
  rabbit::Board board;
  auto& cc = board.attach_cryptocell();
  dynk::CryptoDev dev(board.io(), board.mem());
  const std::vector<u8> key(16, 1), iv(16, 2), data(16, 3);
  ASSERT_TRUE(dev.aes_cbc(true, key, iv, data).ok());
  EXPECT_EQ(cc.key_loads(), 1u);

  board.warm_reset(rabbit::ResetCause::kSoft);
  // The reset wiped the engine's slots; the driver's cache is now stale, so
  // it must re-probe before trusting it.
  EXPECT_TRUE(dev.probe());
  ASSERT_TRUE(dev.aes_cbc(true, key, iv, data).ok());
  EXPECT_EQ(cc.key_loads(), 2u);  // reloaded, not served from a ghost slot
}

// ---------------------------------------------------------------------------
// issl record layer: Backend::kEngine dispatch and fallback
// ---------------------------------------------------------------------------

issl::DirectionKeys test_keys(u8 fill) {
  issl::DirectionKeys k;
  k.aes_key.assign(16, fill);
  k.mac_key.fill(static_cast<u8>(fill ^ 0x55));
  return k;
}

TEST(IsslEngineBackend, WireBytesIdenticalToSoftwareBackends) {
  rabbit::Board board;
  board.attach_cryptocell();
  dynk::CryptoDev dev(board.io(), board.mem());

  // Same RNG seed => same IV draws; the wire must come out bit-identical
  // whichever backend does the arithmetic.
  common::Xorshift64 rng_c(99), rng_asm(99), rng_eng(99);
  issl::RecordCodec c(rng_c, issl::Backend::kC);
  issl::RecordCodec a(rng_asm, issl::Backend::kAsm);
  issl::RecordCodec e(rng_eng, issl::Backend::kEngine, &dev);
  for (issl::RecordCodec* codec : {&c, &a, &e}) {
    ASSERT_TRUE(codec->activate_keys(test_keys(1), test_keys(2)).is_ok());
  }
  EXPECT_EQ(e.effective_backend(), issl::Backend::kEngine);
  EXPECT_FALSE(e.engine_fallback());

  std::vector<u8> msg(200);
  common::Xorshift64 rng(3);
  rng.fill(msg);
  auto wire_c = c.seal(issl::RecordType::kApplicationData, msg);
  auto wire_a = a.seal(issl::RecordType::kApplicationData, msg);
  auto wire_e = e.seal(issl::RecordType::kApplicationData, msg);
  ASSERT_TRUE(wire_c.ok());
  ASSERT_TRUE(wire_a.ok());
  ASSERT_TRUE(wire_e.ok());
  EXPECT_EQ(*wire_c, *wire_a);
  EXPECT_EQ(*wire_c, *wire_e);

  // And an engine-backed receiver opens a software-sealed record.
  common::Xorshift64 rng_rx(77);
  issl::RecordCodec rx(rng_rx, issl::Backend::kEngine, &dev);
  ASSERT_TRUE(rx.activate_keys(test_keys(2), test_keys(1)).is_ok());
  ASSERT_TRUE(rx.feed(*wire_c).is_ok());
  auto rec = rx.pop();
  ASSERT_TRUE(rec.ok());
  ASSERT_TRUE(rec->has_value());
  EXPECT_EQ((*rec)->payload, msg);

  // The engine's modeled cost is far below the C model for the same record.
  EXPECT_LT(e.crypto_cost_cycles() * 5, c.crypto_cost_cycles());
}

TEST(IsslEngineBackend, FallsBackToCWhenEngineMissing) {
  // Null engine pointer.
  common::Xorshift64 rng1(5);
  issl::RecordCodec null_eng(rng1, issl::Backend::kEngine, nullptr);
  ASSERT_TRUE(null_eng.activate_keys(test_keys(1), test_keys(2)).is_ok());
  EXPECT_EQ(null_eng.effective_backend(), issl::Backend::kC);
  EXPECT_TRUE(null_eng.engine_fallback());

  // Driver present but probing a stock board.
  rabbit::Board stock;
  dynk::CryptoDev absent(stock.io(), stock.mem());
  common::Xorshift64 rng2(5);
  issl::RecordCodec dead_eng(rng2, issl::Backend::kEngine, &absent);
  ASSERT_TRUE(dead_eng.activate_keys(test_keys(1), test_keys(2)).is_ok());
  EXPECT_EQ(dead_eng.effective_backend(), issl::Backend::kC);
  EXPECT_TRUE(dead_eng.engine_fallback());

  // Both still produce the exact kC wire (same seed, same draws).
  common::Xorshift64 rng3(5);
  issl::RecordCodec plain_c(rng3, issl::Backend::kC);
  ASSERT_TRUE(plain_c.activate_keys(test_keys(1), test_keys(2)).is_ok());
  const std::vector<u8> msg(48, 0xAB);
  auto w1 = null_eng.seal(issl::RecordType::kApplicationData, msg);
  auto w2 = dead_eng.seal(issl::RecordType::kApplicationData, msg);
  auto w3 = plain_c.seal(issl::RecordType::kApplicationData, msg);
  ASSERT_TRUE(w1.ok() && w2.ok() && w3.ok());
  EXPECT_EQ(*w1, *w3);
  EXPECT_EQ(*w2, *w3);
}

}  // namespace
}  // namespace rmc
