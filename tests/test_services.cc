// Integration tests for the secure redirector — the case study's artifact —
// in both builds (Unix fork-style with RSA, RMC2000 costatement port with
// PSK), against the echo backend over the simulated network. Covers the
// Figure-3 connection ceiling (E4's subject), end-to-end secure forwarding,
// plaintext baseline, ring-buffer logging, and failure paths.
#include <gtest/gtest.h>

#include "services/redirector.h"

namespace rmc::services {
namespace {

using common::u8;
using net::IpAddr;
using net::Port;

constexpr IpAddr kRedirectorIp = 1;
constexpr IpAddr kBackendIp = 2;
constexpr IpAddr kClientIp = 3;
constexpr Port kTlsPort = 4433;
constexpr Port kBackendPort = 8000;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// A world with a redirector host, a backend host, and one client host.
struct World {
  net::SimNet net{321};
  net::TcpStack redirector_stack{net, kRedirectorIp};
  net::TcpStack backend_stack{net, kBackendIp};
  net::TcpStack client_stack{net, kClientIp};
  EchoBackend backend{backend_stack, kBackendPort,
                      [](u8 b) { return static_cast<u8>(std::toupper(b)); }};

  RedirectorConfig rmc_config() {
    RedirectorConfig cfg;
    cfg.listen_port = kTlsPort;
    cfg.backend_ip = kBackendIp;
    cfg.backend_port = kBackendPort;
    cfg.secure = true;
    cfg.tls = issl::Config::embedded_port();
    cfg.psk = bytes_of("board-psk");
    cfg.handler_slots = 3;
    return cfg;
  }

  RedirectorConfig unix_config(common::Xorshift64& rng) {
    RedirectorConfig cfg = rmc_config();
    cfg.secure = true;
    cfg.tls = issl::Config::unix_default();
    cfg.rsa = crypto::rsa_generate(cfg.tls.rsa_modulus_bits, rng);
    cfg.psk.clear();
    return cfg;
  }

  Client make_client(bool secure, const issl::Config& tls,
                     std::vector<u8> psk, common::u64 seed = 0xC11E47) {
    return Client(client_stack, kRedirectorIp, kTlsPort, secure, tls,
                  std::move(psk), seed);
  }
};

// Drive a world containing one redirector and a set of clients.
template <typename Redirector>
void run_world(World& w, Redirector& red, std::vector<Client*> clients,
               int rounds) {
  for (int i = 0; i < rounds; ++i) {
    red.poll();        // redirector costatements (also ticks the medium for
                       // the RMC build; for Unix we tick explicitly below)
    w.backend.poll();
    for (Client* c : clients) c->poll();
    w.net.tick(1);
  }
}

TEST(RmcRedirector, SecureEndToEndForwarding) {
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  RmcRedirector red(w.redirector_stack, w.net, w.rmc_config());
  ASSERT_TRUE(red.start().is_ok());

  Client client = w.make_client(true, issl::Config::embedded_port(),
                                bytes_of("board-psk"));
  ASSERT_TRUE(client.start().is_ok());
  ASSERT_TRUE(client.send(bytes_of("hello embedded world")).is_ok());
  run_world(w, red, {&client}, 600);

  // The backend upper-cases; the client must get the transformed bytes back
  // over the encrypted channel.
  EXPECT_EQ(std::string(client.received().begin(), client.received().end()),
            "HELLO EMBEDDED WORLD");
  EXPECT_GE(red.stats().bytes_client_to_backend, 20u);
  EXPECT_GE(red.stats().bytes_backend_to_client, 20u);
  EXPECT_EQ(red.stats().handshake_failures, 0u);
}

TEST(RmcRedirector, ConnectionCeilingIsHandlerCount) {
  // E4 / Figure 3: with 3 handler costatements, a 4th simultaneous client
  // cannot complete the secure handshake until a slot frees up.
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  RmcRedirector red(w.redirector_stack, w.net, w.rmc_config());
  ASSERT_TRUE(red.start().is_ok());

  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<Client>(w.make_client(
        true, issl::Config::embedded_port(), bytes_of("board-psk"),
        0x1000 + i)));
    ASSERT_TRUE(clients.back()->start().is_ok());
  }
  std::vector<Client*> raw;
  for (auto& c : clients) raw.push_back(c.get());
  run_world(w, red, raw, 800);

  int done = 0;
  Client* pending = nullptr;
  Client* established = nullptr;
  for (auto& c : clients) {
    if (c->handshake_done()) {
      ++done;
      established = c.get();
    } else {
      pending = c.get();
    }
  }
  EXPECT_EQ(done, 3);  // the compile-time ceiling
  EXPECT_EQ(red.stats().connections_active, 3u);
  ASSERT_NE(pending, nullptr);
  ASSERT_NE(established, nullptr);

  // Free one slot: close a finished client; the pending one then completes.
  established->close();
  run_world(w, red, raw, 2500);
  EXPECT_TRUE(pending->handshake_done());
  EXPECT_GE(red.stats().connections_served, 1u);
}

TEST(RmcRedirector, PlaintextBuildForwardsWithoutCrypto) {
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  RedirectorConfig cfg = w.rmc_config();
  cfg.secure = false;
  RmcRedirector red(w.redirector_stack, w.net, cfg);
  ASSERT_TRUE(red.start().is_ok());

  Client client = w.make_client(false, issl::Config::embedded_port(), {});
  ASSERT_TRUE(client.start().is_ok());
  ASSERT_TRUE(client.send(bytes_of("plain text")).is_ok());
  run_world(w, red, {&client}, 400);
  EXPECT_EQ(std::string(client.received().begin(), client.received().end()),
            "PLAIN TEXT");
}

TEST(RmcRedirector, WrongPskClientIsRejectedAndSlotRecycles) {
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  RmcRedirector red(w.redirector_stack, w.net, w.rmc_config());
  ASSERT_TRUE(red.start().is_ok());

  Client bad = w.make_client(true, issl::Config::embedded_port(),
                             bytes_of("wrong-psk"));
  ASSERT_TRUE(bad.start().is_ok());
  run_world(w, red, {&bad}, 600);
  EXPECT_TRUE(bad.failed());
  EXPECT_GE(red.stats().handshake_failures, 1u);

  // The slot must be reusable by a good client afterwards.
  Client good = w.make_client(true, issl::Config::embedded_port(),
                              bytes_of("board-psk"), 0xBEEF);
  ASSERT_TRUE(good.start().is_ok());
  ASSERT_TRUE(good.send(bytes_of("ok?")).is_ok());
  run_world(w, red, {&good}, 800);
  EXPECT_EQ(std::string(good.received().begin(), good.received().end()),
            "OK?");
}

TEST(RmcRedirector, RingLogStaysWithinBudget) {
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  RedirectorConfig cfg = w.rmc_config();
  cfg.log_capacity_bytes = 32;  // tiny SRAM budget
  RmcRedirector red(w.redirector_stack, w.net, cfg);
  ASSERT_TRUE(red.start().is_ok());

  // Serve several sequential connections to generate log churn.
  for (int round = 0; round < 5; ++round) {
    Client c = w.make_client(true, issl::Config::embedded_port(),
                             bytes_of("board-psk"), 0x5000 + round);
    ASSERT_TRUE(c.start().is_ok());
    ASSERT_TRUE(c.send(bytes_of("x")).is_ok());
    run_world(w, red, {&c}, 500);
    c.close();
    run_world(w, red, {&c}, 200);
  }
  EXPECT_LE(red.log().used_bytes(), 32u);
  EXPECT_GT(red.log().total_appended(), red.log().entry_count());  // evicted
}

TEST(RmcRedirector, DeadBackendHandledGracefully) {
  World w;  // note: backend never started
  RmcRedirector red(w.redirector_stack, w.net, w.rmc_config());
  ASSERT_TRUE(red.start().is_ok());
  Client client = w.make_client(true, issl::Config::embedded_port(),
                                bytes_of("board-psk"));
  ASSERT_TRUE(client.start().is_ok());
  run_world(w, red, {&client}, 800);
  // No crash; the slot recycles (connection counted as served).
  EXPECT_GE(red.stats().connections_served, 1u);
  EXPECT_EQ(red.stats().connections_active, 0u);
}

TEST(UnixRedirector, SecureRsaEndToEnd) {
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  common::Xorshift64 keygen_rng(77);
  RedirectorConfig cfg = w.unix_config(keygen_rng);
  UnixRedirector red(w.redirector_stack, cfg);
  ASSERT_TRUE(red.start().is_ok());

  Client client = w.make_client(true, issl::Config::unix_default(), {});
  ASSERT_TRUE(client.start().is_ok());
  ASSERT_TRUE(client.send(bytes_of("rsa forwarded")).is_ok());
  run_world(w, red, {&client}, 800);
  EXPECT_EQ(std::string(client.received().begin(), client.received().end()),
            "RSA FORWARDED");
  EXPECT_EQ(red.stats().handshake_failures, 0u);
}

TEST(UnixRedirector, ManySimultaneousConnections) {
  // The point of fork(): no small compile-time ceiling. Ten concurrent
  // clients all complete (vs. the RMC build's three).
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  common::Xorshift64 keygen_rng(78);
  RedirectorConfig cfg = w.unix_config(keygen_rng);
  UnixRedirector red(w.redirector_stack, cfg);
  ASSERT_TRUE(red.start().is_ok());

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client*> raw;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(std::make_unique<Client>(
        w.make_client(true, issl::Config::unix_default(), {}, 0x2000 + i)));
    ASSERT_TRUE(clients.back()->start().is_ok());
    raw.push_back(clients.back().get());
  }
  run_world(w, red, raw, 3000);
  int done = 0;
  for (auto& c : clients) done += c->handshake_done() ? 1 : 0;
  EXPECT_EQ(done, 10);
  EXPECT_GE(red.log().size(), 10u);  // unbounded log keeps everything
}

TEST(RmcRedirector, SlotAccountingCoversAllConfiguredHandlerSlots) {
  // Regression: the durable slot counters were a fixed 8-entry array behind
  // an `if (slot < 8)` guard while handler_slots is unbounded, so a
  // 10-handler board silently dropped all accounting for slots 8 and 9.
  // Now the array is sized from the record's declared capacity
  // (kDurableSlotCounters) with an explicit overflow aggregate, and the
  // record's schema says so.
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  RedirectorConfig cfg = w.rmc_config();
  cfg.handler_slots = 10;
  RmcRedirector red(w.redirector_stack, w.net, cfg);
  ASSERT_TRUE(red.start().is_ok());

  std::vector<std::unique_ptr<Client>> clients;
  std::vector<Client*> ptrs;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(std::make_unique<Client>(w.make_client(
        true, issl::Config::embedded_port(), bytes_of("board-psk"),
        0xC11E47 + static_cast<common::u64>(i))));
    ASSERT_TRUE(clients.back()->start().is_ok());
    ASSERT_TRUE(clients.back()->send(bytes_of("slot test")).is_ok());
    ptrs.push_back(clients.back().get());
  }
  // Nobody closes until everyone is served, so all ten handler slots end up
  // occupied simultaneously before the first close lands.
  run_world(w, red, ptrs, 4'000);
  for (auto& c : clients) {
    EXPECT_EQ(std::string(c->received().begin(), c->received().end()),
              "SLOT TEST");
    c->close();
  }
  run_world(w, red, ptrs, 600);  // handlers wind down and account

  const auto& d = red.durable_state();
  EXPECT_EQ(d.schema, RedirectorDurableState{}.schema);
  EXPECT_EQ(red.stats().connections_served, 10u);
  common::u64 sum = 0;
  for (std::size_t s = 0; s < kDurableSlotCounters; ++s) {
    sum += d.slot_cycles[s];
  }
  EXPECT_EQ(sum, red.stats().connections_served);
  EXPECT_EQ(d.slot_cycles_overflow, 0u);
  // The slots the old guard dropped on the floor are the interesting ones.
  EXPECT_EQ(d.slot_cycles[8], 1u);
  EXPECT_EQ(d.slot_cycles[9], 1u);
}

TEST(EchoBackendTest, TransformsAndCountsBytes) {
  World w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto c = w.client_stack.connect(kBackendIp, kBackendPort);
  ASSERT_TRUE(c.ok());
  for (int i = 0; i < 20; ++i) {
    w.net.tick(1);
    w.backend.poll();
  }
  ASSERT_TRUE(w.client_stack.is_established(*c));
  const auto msg = bytes_of("abc");
  ASSERT_TRUE(w.client_stack.send(*c, msg).ok());
  for (int i = 0; i < 20; ++i) {
    w.net.tick(1);
    w.backend.poll();
  }
  u8 buf[16];
  auto n = w.client_stack.recv(*c, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "ABC");
  EXPECT_EQ(w.backend.bytes_served(), 3u);
}

}  // namespace
}  // namespace rmc::services
