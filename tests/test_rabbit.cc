// Unit tests for the Rabbit 2000 core: memory translation / bank switching,
// flag semantics of the ALU, control flow, Rabbit-specific instructions
// (MUL, BOOL, XPC, LCALL/LRET), interrupts, and the board model.
#include <gtest/gtest.h>

#include "rabbit/board.h"
#include "rabbit/cpu.h"
#include "rabbit/memory.h"
#include "rabbit/peripherals.h"

namespace rmc::rabbit {
namespace {

using common::u16;
using common::u32;
using common::u8;

// Convenience: run raw opcode bytes placed at 0x0100 on a bare CPU with
// writable "flash" so tests can poke anywhere.
struct BareMachine {
  Memory mem;
  IoBus io;
  Cpu cpu{mem, io};

  BareMachine() {
    mem.set_flash_writable(true);
    cpu.regs().sp = 0xDFF0;
    cpu.regs().pc = 0x0100;
  }

  void load(std::initializer_list<u8> code) {
    u16 a = 0x0100;
    for (u8 b : code) mem.write_phys(a++, b);
  }
  void step_n(int n) {
    for (int i = 0; i < n; ++i) cpu.step();
  }
};

// ---------------------------------------------------------------------------
// Memory / MMU
// ---------------------------------------------------------------------------

TEST(Memory, DefaultMappingIsIdentity) {
  Memory m;
  EXPECT_EQ(m.translate(0x0000), 0x0000u);
  EXPECT_EQ(m.translate(0x5FFF), 0x5FFFu);
  EXPECT_EQ(m.translate(0x6000), 0x6000u);
  EXPECT_EQ(m.translate(0xDFFF), 0xDFFFu);
  EXPECT_EQ(m.translate(0xE000), 0xE000u);
}

TEST(Memory, SegmentRegistersRelocate) {
  Memory m;
  m.set_segsize(0xD6);  // data base 0x6000, stack base 0xD000
  m.set_dataseg(0x7A);
  m.set_stackseg(0x81);
  EXPECT_EQ(m.translate(0x5FFF), 0x5FFFu);                // root untouched
  EXPECT_EQ(m.translate(0x6000), 0x6000u + 0x7A000u);     // = 0x80000
  EXPECT_EQ(m.translate(0xCFFF), 0xCFFFu + 0x7A000u);
  EXPECT_EQ(m.translate(0xD000), 0xD000u + 0x81000u);     // = 0x8E000
}

TEST(Memory, XpcWindowBankSwitches) {
  Memory m;
  m.set_xpc(0x02);
  EXPECT_EQ(m.translate(0xE000), 0xE000u + 0x2000u);
  m.set_xpc(0x10);
  EXPECT_EQ(m.translate(0xE000), 0xE000u + 0x10000u);
  // Same logical address, different banks -> different bytes.
  m.set_flash_writable(true);
  m.set_xpc(0x02);
  m.write(0xE000, 0xAA);
  m.set_xpc(0x10);
  m.write(0xE000, 0xBB);
  m.set_xpc(0x02);
  EXPECT_EQ(m.read(0xE000), 0xAA);
  m.set_xpc(0x10);
  EXPECT_EQ(m.read(0xE000), 0xBB);
}

TEST(Memory, PhysicalWrapsAtOneMegabyte) {
  Memory m;
  m.set_xpc(0xFF);
  const u32 phys = m.translate(0xFFFF);
  EXPECT_LT(phys, Memory::kPhysSize);
}

TEST(Memory, FlashWriteProtection) {
  Memory m;  // flash not writable by default
  m.write(0x0100, 0x42);
  EXPECT_EQ(m.read(0x0100), 0x00);
  EXPECT_EQ(m.flash_write_faults(), 1u);
  m.set_flash_writable(true);
  m.write(0x0100, 0x42);
  EXPECT_EQ(m.read(0x0100), 0x42);
}

TEST(Memory, SramAlwaysWritable) {
  Memory m;
  m.set_dataseg(0x7A);
  m.write(0x6000, 0x77);  // -> 0x80000, SRAM
  EXPECT_EQ(m.read(0x6000), 0x77);
  EXPECT_EQ(m.flash_write_faults(), 0u);
}

// ---------------------------------------------------------------------------
// CPU: loads, ALU, flags
// ---------------------------------------------------------------------------

TEST(Cpu, LdImmediateAndRegisterMoves) {
  BareMachine m;
  m.load({0x3E, 0x12,        // ld a, 12h
          0x47,              // ld b, a
          0x06, 0x34,        // ld b, 34h -- overwrite
          0x48});            // ld c, b
  m.step_n(4);
  EXPECT_EQ(m.cpu.regs().a, 0x12);
  EXPECT_EQ(m.cpu.regs().b, 0x34);
  EXPECT_EQ(m.cpu.regs().c, 0x34);
}

TEST(Cpu, AddSetsCarryAndOverflow) {
  BareMachine m;
  m.load({0x3E, 0x7F,   // ld a, 7Fh
          0xC6, 0x01}); // add a, 1 -> 0x80, overflow set, carry clear
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().a, 0x80);
  EXPECT_TRUE(m.cpu.regs().f & Flag::S);
  EXPECT_TRUE(m.cpu.regs().f & Flag::PV);
  EXPECT_FALSE(m.cpu.regs().f & Flag::C);
  EXPECT_FALSE(m.cpu.regs().f & Flag::Z);
}

TEST(Cpu, AddCarryWraps) {
  BareMachine m;
  m.load({0x3E, 0xFF, 0xC6, 0x01});  // ld a,0xFF; add a,1
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().a, 0x00);
  EXPECT_TRUE(m.cpu.regs().f & Flag::C);
  EXPECT_TRUE(m.cpu.regs().f & Flag::Z);
  EXPECT_FALSE(m.cpu.regs().f & Flag::PV);
}

TEST(Cpu, SubBorrowAndSign) {
  BareMachine m;
  m.load({0x3E, 0x05, 0xD6, 0x07});  // ld a,5; sub 7
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().a, 0xFE);
  EXPECT_TRUE(m.cpu.regs().f & Flag::C);
  EXPECT_TRUE(m.cpu.regs().f & Flag::S);
  EXPECT_TRUE(m.cpu.regs().f & Flag::N);
}

TEST(Cpu, CompareLeavesAIntact) {
  BareMachine m;
  m.load({0x3E, 0x42, 0xFE, 0x42});  // ld a,42h; cp 42h
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().a, 0x42);
  EXPECT_TRUE(m.cpu.regs().f & Flag::Z);
}

TEST(Cpu, LogicOpsClearCarryAndSetParity) {
  BareMachine m;
  m.load({0x37,              // scf
          0x3E, 0x0F,        // ld a, 0Fh
          0xE6, 0x03});      // and 03h -> 0x03 (2 bits, even parity)
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().a, 0x03);
  EXPECT_FALSE(m.cpu.regs().f & Flag::C);
  EXPECT_TRUE(m.cpu.regs().f & Flag::PV);
}

TEST(Cpu, XorClearsToZero) {
  BareMachine m;
  m.load({0x3E, 0x5A, 0xAF});  // ld a,5Ah; xor a
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().a, 0);
  EXPECT_TRUE(m.cpu.regs().f & Flag::Z);
}

TEST(Cpu, IncDecPreserveCarry) {
  BareMachine m;
  m.load({0x37,    // scf
          0x3C,    // inc a
          0x3D});  // dec a
  m.step_n(3);
  EXPECT_TRUE(m.cpu.regs().f & Flag::C);
}

TEST(Cpu, Add16SetsCarry) {
  BareMachine m;
  m.load({0x21, 0xFF, 0xFF,  // ld hl, 0xFFFF
          0x01, 0x02, 0x00,  // ld bc, 2
          0x09});            // add hl, bc
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().hl(), 0x0001);
  EXPECT_TRUE(m.cpu.regs().f & Flag::C);
}

TEST(Cpu, Sbc16ZeroFlag) {
  BareMachine m;
  m.load({0x21, 0x34, 0x12,  // ld hl, 0x1234
          0x11, 0x34, 0x12,  // ld de, 0x1234
          0xB7,              // or a (clear carry)
          0xED, 0x52});      // sbc hl, de
  m.step_n(4);
  EXPECT_EQ(m.cpu.regs().hl(), 0);
  EXPECT_TRUE(m.cpu.regs().f & Flag::Z);
}

TEST(Cpu, RotatesThroughCarry) {
  BareMachine m;
  m.load({0x3E, 0x81,        // ld a, 81h
          0x07});            // rlca -> 0x03, carry set
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().a, 0x03);
  EXPECT_TRUE(m.cpu.regs().f & Flag::C);
}

TEST(Cpu, CbShiftsAndBitOps) {
  BareMachine m;
  m.load({0x06, 0x81,        // ld b, 81h
          0xCB, 0x38,        // srl b -> 0x40, carry 1
          0xCB, 0x78,        // bit 7, b -> Z set (bit is 0)
          0xCB, 0xF8,        // set 7, b
          0xCB, 0x40});      // bit 0, b -> Z set
  m.step_n(5);
  EXPECT_EQ(m.cpu.regs().b, 0xC0);
  EXPECT_TRUE(m.cpu.regs().f & Flag::Z);
}

// ---------------------------------------------------------------------------
// CPU: memory operands, stack, control flow
// ---------------------------------------------------------------------------

TEST(Cpu, HlIndirectLoadStore) {
  BareMachine m;
  m.load({0x21, 0x00, 0x70,  // ld hl, 0x7000 (data segment)
          0x36, 0x99,        // ld (hl), 99h
          0x7E});            // ld a, (hl)
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().a, 0x99);
}

TEST(Cpu, IndexedAddressing) {
  BareMachine m;
  m.load({0xDD, 0x21, 0x00, 0x70,  // ld ix, 0x7000
          0xDD, 0x36, 0x05, 0xAB,  // ld (ix+5), ABh
          0xDD, 0x7E, 0x05});      // ld a, (ix+5)
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().a, 0xAB);
  EXPECT_EQ(m.mem.read(0x7005), 0xAB);
}

TEST(Cpu, IndexedNegativeDisplacement) {
  BareMachine m;
  m.load({0xDD, 0x21, 0x10, 0x70,  // ld ix, 0x7010
          0xDD, 0x36, 0xFE, 0x55,  // ld (ix-2), 55h
          0xDD, 0x46, 0xFE});      // ld b, (ix-2)
  m.step_n(3);
  EXPECT_EQ(m.mem.read(0x700E), 0x55);
  EXPECT_EQ(m.cpu.regs().b, 0x55);
}

TEST(Cpu, PushPopRoundTrip) {
  BareMachine m;
  m.load({0x01, 0x34, 0x12,  // ld bc, 0x1234
          0xC5,              // push bc
          0xD1});            // pop de
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().de(), 0x1234);
  EXPECT_EQ(m.cpu.regs().sp, 0xDFF0);
}

TEST(Cpu, CallAndReturn) {
  BareMachine m;
  m.load({0xCD, 0x10, 0x01,  // call 0x0110
          0x76});            // halt
  m.mem.write_phys(0x0110, 0x3E);  // ld a, 0x77
  m.mem.write_phys(0x0111, 0x77);
  m.mem.write_phys(0x0112, 0xC9);  // ret
  m.step_n(4);
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_EQ(m.cpu.regs().a, 0x77);
}

TEST(Cpu, DjnzLoops) {
  BareMachine m;
  m.load({0x06, 0x05,   // ld b, 5
          0x3C,         // inc a      <- loop
          0x10, 0xFD}); // djnz -3
  while (!m.cpu.halted() && m.cpu.regs().pc < 0x0105) m.cpu.step();
  EXPECT_EQ(m.cpu.regs().a, 5);
  EXPECT_EQ(m.cpu.regs().b, 0);
}

TEST(Cpu, ConditionalJumpTakenAndNot) {
  BareMachine m;
  m.load({0xAF,              // xor a (Z set)
          0xCA, 0x08, 0x01,  // jp z, 0x0108
          0x3E, 0xFF,        // (skipped) ld a, FFh
          0x00, 0x00,
          0x3C});            // 0x0108: inc a
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().a, 1);
}

TEST(Cpu, LdirBlockCopy) {
  BareMachine m;
  // Source bytes at 0x7000, copy 4 to 0x7100.
  for (int i = 0; i < 4; ++i)
    m.mem.write(static_cast<u16>(0x7000 + i), static_cast<u8>(i + 1));
  m.load({0x21, 0x00, 0x70,  // ld hl, 0x7000
          0x11, 0x00, 0x71,  // ld de, 0x7100
          0x01, 0x04, 0x00,  // ld bc, 4
          0xED, 0xB0});      // ldir
  m.step_n(3 + 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(m.mem.read(static_cast<u16>(0x7100 + i)), i + 1);
  }
  EXPECT_EQ(m.cpu.regs().bc(), 0);
}

TEST(Cpu, ExxSwapsRegisterBanks) {
  BareMachine m;
  m.load({0x01, 0x11, 0x11,  // ld bc, 0x1111
          0xD9,              // exx
          0x01, 0x22, 0x22,  // ld bc, 0x2222
          0xD9});            // exx
  m.step_n(4);
  EXPECT_EQ(m.cpu.regs().bc(), 0x1111);
}

// ---------------------------------------------------------------------------
// Rabbit-specific instructions
// ---------------------------------------------------------------------------

TEST(Cpu, MulSignedProduct) {
  BareMachine m;
  m.load({0x01, 0xE8, 0x03,  // ld bc, 1000
          0x11, 0x64, 0x00,  // ld de, 100
          0xF7});            // mul -> HL:BC = 100000 = 0x186A0
  m.step_n(3);
  EXPECT_EQ(m.cpu.regs().hl(), 0x0001);
  EXPECT_EQ(m.cpu.regs().bc(), 0x86A0);
}

TEST(Cpu, MulNegativeOperand) {
  BareMachine m;
  m.load({0x01, 0xFF, 0xFF,  // ld bc, -1
          0x11, 0x07, 0x00,  // ld de, 7
          0xF7});            // mul -> -7
  m.step_n(3);
  const common::u32 prod =
      (static_cast<common::u32>(m.cpu.regs().hl()) << 16) | m.cpu.regs().bc();
  EXPECT_EQ(static_cast<common::i32>(prod), -7);
}

TEST(Cpu, BoolHlNormalizes) {
  BareMachine m;
  m.load({0x21, 0x00, 0x80,  // ld hl, 0x8000
          0xED, 0x90,        // bool hl -> 1
          0x21, 0x00, 0x00,  // ld hl, 0
          0xED, 0x90});      // bool hl -> 0, Z set
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().hl(), 1);
  m.step_n(2);
  EXPECT_EQ(m.cpu.regs().hl(), 0);
  EXPECT_TRUE(m.cpu.regs().f & Flag::Z);
}

TEST(Cpu, XpcRegisterInstructions) {
  BareMachine m;
  m.load({0x3E, 0x12,        // ld a, 12h
          0xED, 0x67,        // ld xpc, a
          0x3E, 0x00,        // ld a, 0
          0xED, 0x77});      // ld a, xpc
  m.step_n(4);
  EXPECT_EQ(m.cpu.regs().a, 0x12);
  EXPECT_EQ(m.mem.xpc(), 0x12);
}

TEST(Cpu, LcallSwitchesBankAndLretRestores) {
  BareMachine m;
  // Far function in physical bank: phys 0x20100 -> window 0xE100 with XPC
  // 0x12 ((0x20100>>12)-0xE = 0x12).
  m.mem.write_phys(0x20100, 0x3E);  // ld a, 99h
  m.mem.write_phys(0x20101, 0x99);
  m.mem.write_phys(0x20102, 0xED);  // lret
  m.mem.write_phys(0x20103, 0xC9);
  m.load({0xED, 0xCD, 0x00, 0xE1, 0x12,  // lcall 0xE100, 0x12
          0x76});                        // halt
  m.step_n(4);
  EXPECT_TRUE(m.cpu.halted());
  EXPECT_EQ(m.cpu.regs().a, 0x99);
  EXPECT_EQ(m.mem.xpc(), 0x00);  // restored by lret
}

TEST(Cpu, Rst28CountsDebugTraps) {
  BareMachine m;
  m.mem.write_phys(0x0028, 0xC9);  // ret at the debug vector
  m.load({0xEF, 0xEF, 0xEF, 0x76});  // rst 28h x3; halt
  m.step_n(7);
  EXPECT_EQ(m.cpu.debug_traps(), 3u);
  EXPECT_TRUE(m.cpu.halted());
}

// ---------------------------------------------------------------------------
// Cycle accounting
// ---------------------------------------------------------------------------

TEST(Cpu, CyclesAccumulate) {
  BareMachine m;
  m.load({0x00, 0x00, 0x3E, 0x01});  // nop; nop; ld a,1
  m.step_n(3);
  EXPECT_EQ(m.cpu.cycles(), 2u + 2u + 4u);
  EXPECT_EQ(m.cpu.instructions_retired(), 3u);
}

TEST(Cpu, MemoryOpsCostMoreThanRegisterOps) {
  BareMachine m1, m2;
  m1.load({0x78});  // ld a, b        (register)
  m2.load({0x7E});  // ld a, (hl)     (memory)
  m1.cpu.step();
  m2.cpu.step();
  EXPECT_LT(m1.cpu.cycles(), m2.cpu.cycles());
}

TEST(Cpu, IllegalOpcodeReported) {
  BareMachine m;
  m.load({0xED, 0x00});
  const StopReason r = m.cpu.run(100);
  EXPECT_EQ(r, StopReason::kIllegal);
  EXPECT_NE(m.cpu.illegal_message().find("illegal opcode"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Interrupts + peripherals
// ---------------------------------------------------------------------------

TEST(Board, SerialRxInterruptVectorsToHandler) {
  Board board;
  auto& mem = board.mem();
  mem.set_flash_writable(true);
  // Interrupt slot for serial (vector 1) at 0x0048: jp 0x0200.
  mem.write_phys(0x0048, 0xC3);
  mem.write_phys(0x0049, 0x00);
  mem.write_phys(0x004A, 0x02);
  // ISR at 0x0200: read SADR into A, store to 0x7000, reti.
  const u8 isr[] = {0xDB, 0xC0,        // in a, (SADR)
                    0x32, 0x00, 0x70,  // ld (0x7000), a
                    0xED, 0x4D};       // reti
  for (std::size_t i = 0; i < sizeof isr; ++i)
    mem.write_phys(0x0200 + i, isr[i]);
  // Main at 0x0100: enable serial RX irq, ei, spin.
  const u8 main_prog[] = {0x3E, 0x01,        // ld a, 1
                          0xD3, 0xC2,        // out (SACR), a
                          0xFB,              // ei
                          0x18, 0xFE};       // jr $
  for (std::size_t i = 0; i < sizeof main_prog; ++i)
    mem.write_phys(0x0100 + i, main_prog[i]);
  mem.set_flash_writable(false);

  board.cpu().regs().pc = 0x0100;
  board.run(100);  // let it enable interrupts and start spinning
  board.serial().host_send("K");
  board.run(200);
  EXPECT_EQ(board.mem().read(0x7000), 'K');
}

TEST(Board, TimerFiresPeriodically) {
  Board board;
  auto& t = board.timer();
  // Program the timer directly via the bus: period 2 ticks (128 cycles), run.
  board.io().write(Board::kTimerBase + 1, 2);
  board.io().write(Board::kTimerBase + 0, 0x01);
  board.io().tick(128 * 5);
  EXPECT_GE(t.expirations(), 4u);
}

TEST(Board, CallUsesSentinelReturn) {
  Board board;
  Image img;
  img.chunks.push_back({0x0100, {0x21, 0x2A, 0x00,   // ld hl, 42
                                 0xC9}});            // ret
  img.symbols["answer"] = 0x0100;
  board.load(img);
  auto res = board.call("answer");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->stop, StopReason::kHalted);
  EXPECT_EQ(res->hl, 42);
  EXPECT_GT(res->cycles, 0u);
}

TEST(Board, CallUnknownSymbolFails) {
  Board board;
  Image img;
  img.chunks.push_back({0x0100, {0xC9}});
  board.load(img);
  auto res = board.call("missing");
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), common::ErrorCode::kNotFound);
}

// ---------------------------------------------------------------------------
// IoBus mapping edges
// ---------------------------------------------------------------------------

// Scriptable device: reads return `id`, writes are recorded.
struct StubDevice final : public IoDevice {
  u8 id;
  std::vector<std::pair<u16, u8>> writes;
  explicit StubDevice(u8 id_) : id(id_) {}
  u8 io_read(u16) override { return id; }
  void io_write(u16 port, u8 value) override { writes.push_back({port, value}); }
};

TEST(IoBus, UnclaimedPortsFloatAndAreCounted) {
  IoBus bus;
  EXPECT_EQ(bus.read(0x0123), 0xFF);  // floating bus
  EXPECT_EQ(bus.unclaimed_reads(), 1u);
  bus.write(0x0123, 0x42);  // dropped, nothing claims it
  EXPECT_EQ(bus.unclaimed_writes(), 1u);
}

TEST(IoBus, OverlappingRegistrationLaterWins) {
  IoBus bus;
  StubDevice under(0x11), over(0x22);
  bus.map(0x0100, 0x010F, &under);
  bus.map(0x0104, 0x0107, &over);  // jumper override shadows the middle

  EXPECT_EQ(bus.read(0x0100), 0x11);
  EXPECT_EQ(bus.read(0x0104), 0x22);
  EXPECT_EQ(bus.read(0x0107), 0x22);
  EXPECT_EQ(bus.read(0x0108), 0x11);
  bus.write(0x0105, 9);
  ASSERT_EQ(over.writes.size(), 1u);
  EXPECT_TRUE(under.writes.empty());
  EXPECT_EQ(bus.unclaimed_reads(), 0u);
}

TEST(IoBus, UnmapRestoresShadowedRangeAndReportsCount) {
  IoBus bus;
  StubDevice under(0x11), over(0x22);
  bus.map(0x0100, 0x010F, &under);
  bus.map(0x0104, 0x0107, &over);
  bus.map(0x0200, 0x0201, &over);  // same card claims a second range

  EXPECT_EQ(bus.unmap(&over), 2u);  // both ranges pulled
  EXPECT_EQ(bus.read(0x0104), 0x11);  // shadowed device visible again
  EXPECT_EQ(bus.read(0x0200), 0xFF);  // second range floats now
  EXPECT_EQ(bus.unmap(&over), 0u);  // already gone: no-op
  StubDevice stranger(0x33);
  EXPECT_EQ(bus.unmap(&stranger), 0u);  // never mapped: no-op

  EXPECT_EQ(bus.unmap(&under), 1u);
  EXPECT_EQ(bus.read(0x0100), 0xFF);  // bus fully bare again
}

TEST(Board, SerialTxCollectedByHost) {
  Board board;
  auto& mem = board.mem();
  mem.set_flash_writable(true);
  const u8 prog[] = {0x3E, 'h', 0xD3, 0xC0,   // out 'h'
                     0x3E, 'i', 0xD3, 0xC0,   // out 'i'
                     0x76};                   // halt
  for (std::size_t i = 0; i < sizeof prog; ++i)
    mem.write_phys(0x0100 + i, prog[i]);
  mem.set_flash_writable(false);
  board.cpu().regs().pc = 0x0100;
  board.run(1000);
  EXPECT_EQ(board.serial().host_collect(), "hi");
}

}  // namespace
}  // namespace rmc::rabbit
