// On-board network service tests: MiniDynC programs serving NIC frames on
// the simulated RMC2000 — the paper's title scenario ("a network
// cryptographic service") executing as Rabbit machine code.
//
// Covers the NIC device itself, the rdport/wrport builtins, the plain echo
// server (dc/echo_server.dc), and a *cryptographic* service built by
// concatenating dc/rc4.dc with a small NIC wrapper (MiniDynC's stand-in for
// Dynamic C's #use, §4.1).
#include <gtest/gtest.h>

#include "dcc/codegen.h"
#include "dcc/interp.h"
#include "dcc/parser.h"
#include "rabbit/board.h"
#include "rabbit/nic.h"
#include "services/aes_port.h"  // read_text_file

namespace rmc {
namespace {

using common::u16;
using common::u8;

// ---------------------------------------------------------------------------
// NIC device unit tests
// ---------------------------------------------------------------------------

TEST(Nic, RxFrameReadAndConsume) {
  rabbit::NicDevice nic(0xD0);
  EXPECT_EQ(nic.io_read(0xD0), 0x00);  // nothing waiting
  nic.push_rx_frame({0x11, 0x22, 0x33});
  EXPECT_EQ(nic.io_read(0xD0), 0x01);
  EXPECT_EQ(nic.io_read(0xD1), 3);  // length
  EXPECT_EQ(nic.io_read(0xD2), 0);
  EXPECT_EQ(nic.io_read(0xD3), 0x11);
  EXPECT_EQ(nic.io_read(0xD3), 0x22);
  EXPECT_EQ(nic.io_read(0xD3), 0x33);
  EXPECT_EQ(nic.io_read(0xD3), 0x00);  // past end
  nic.io_write(0xD0, 1);               // consume
  EXPECT_EQ(nic.io_read(0xD0), 0x00);
  EXPECT_EQ(nic.frames_consumed(), 1u);
}

TEST(Nic, TxFrameAssemblyAndCommit) {
  rabbit::NicDevice nic(0xD0);
  nic.io_write(0xD4, 'o');
  nic.io_write(0xD4, 'k');
  EXPECT_TRUE(nic.tx_frames().empty());  // not committed yet
  nic.io_write(0xD5, 1);
  ASSERT_EQ(nic.tx_frames().size(), 1u);
  EXPECT_EQ(nic.tx_frames().front(), (std::vector<u8>{'o', 'k'}));
}

TEST(Nic, FramesQueueInOrder) {
  rabbit::NicDevice nic(0xD0);
  nic.push_rx_frame({1});
  nic.push_rx_frame({2});
  EXPECT_EQ(nic.io_read(0xD3), 1);
  nic.io_write(0xD0, 1);
  EXPECT_EQ(nic.io_read(0xD3), 2);
}

// ---------------------------------------------------------------------------
// rdport / wrport builtins
// ---------------------------------------------------------------------------

TEST(PortBuiltins, RoundTripThroughSerialDataRegister) {
  // wrport to the serial TX register must reach the host; rdport from the
  // RX register must see host-sent bytes.
  const std::string src = R"(
    int f() {
      int v;
      v = rdport(0xC0);      /* serial data register */
      wrport(0xC0, v + 1);
      return v;
    }
  )";
  auto out = dcc::compile(src);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  rabbit::Board board;
  board.load(out->image);
  board.serial().host_send_byte(0x41);
  auto r = board.call("f_f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->hl, 0x41);
  EXPECT_EQ(board.serial().host_collect(), "B");
}

TEST(PortBuiltins, PortMustBeLiteral) {
  auto r = dcc::compile("int f() { int p; p = 1; return rdport(p); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("literal"), std::string::npos);
}

TEST(PortBuiltins, ArgumentCountChecked) {
  EXPECT_FALSE(dcc::compile("int f() { return rdport(1, 2); }").ok());
  EXPECT_FALSE(dcc::compile("int f() { return wrport(1); }").ok());
  EXPECT_FALSE(dcc::compile("int f() { return rdport(300); }").ok());
}

TEST(PortBuiltins, InterpreterRefusesPortIo) {
  auto prog = dcc::parse("int f() { return rdport(0xC0); }");
  ASSERT_TRUE(prog.ok());
  auto in = dcc::Interpreter::create(*prog);
  ASSERT_TRUE(in.ok());
  auto r = in->call("f", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("board"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The on-board echo server
// ---------------------------------------------------------------------------

struct OnBoard {
  rabbit::Board board;
  rabbit::NicDevice nic{0xD0};
  dcc::CompileOutput out;

  explicit OnBoard(const std::string& source,
                   const dcc::CodegenOptions& opts = {}) {
    board.io().map(0xD0, 0xD5, &nic);
    auto compiled = dcc::compile(source, opts);
    EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
    out = std::move(*compiled);
    board.load(out.image);
  }

  u16 call(const std::string& fn) {
    auto r = board.call("f_" + fn, 500'000'000);
    EXPECT_TRUE(r.ok()) << r.status().to_string();
    EXPECT_EQ(r->stop, rabbit::StopReason::kHalted)
        << board.cpu().illegal_message();
    return r.ok() ? r->hl : 0xDEAD;
  }
};

std::string echo_source() {
  auto src = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                      "/dc/echo_server.dc");
  EXPECT_TRUE(src.ok());
  return src.ok() ? *src : "";
}

TEST(OnBoardEcho, ServesOneFrame) {
  OnBoard ob(echo_source());
  ob.nic.push_rx_frame({'h', 'i', ' ', 'r', 'm', 'c', '2', '0', '0', '0'});
  EXPECT_EQ(ob.call("echo_step"), 10);
  ASSERT_EQ(ob.nic.tx_frames().size(), 1u);
  EXPECT_EQ(std::string(ob.nic.tx_frames()[0].begin(),
                        ob.nic.tx_frames()[0].end()),
            "HI RMC2000");
}

TEST(OnBoardEcho, IdleWhenNoFrames) {
  OnBoard ob(echo_source());
  EXPECT_EQ(ob.call("echo_step"), 0);
  EXPECT_TRUE(ob.nic.tx_frames().empty());
}

TEST(OnBoardEcho, ServesManyFramesInOrder) {
  OnBoard ob(echo_source(), dcc::CodegenOptions::all_optimizations());
  for (int i = 0; i < 5; ++i) {
    ob.nic.push_rx_frame({static_cast<u8>('a' + i)});
  }
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ob.call("echo_step"), 1);
  ASSERT_EQ(ob.nic.tx_frames().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ob.nic.tx_frames()[static_cast<std::size_t>(i)][0], 'A' + i);
  }
}

TEST(OnBoardEcho, OversizeFrameClamped) {
  OnBoard ob(echo_source());
  std::vector<u8> big(600, 'x');
  ob.nic.push_rx_frame(big);
  EXPECT_EQ(ob.call("echo_step"), 512);
  ASSERT_EQ(ob.nic.tx_frames().size(), 1u);
  EXPECT_EQ(ob.nic.tx_frames()[0].size(), 512u);
}

// ---------------------------------------------------------------------------
// The on-board *cryptographic* service: RC4 + NIC, composed like Dynamic C
// #use by concatenating sources
// ---------------------------------------------------------------------------

std::string crypto_service_source() {
  auto rc4 = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                      "/dc/rc4.dc");
  EXPECT_TRUE(rc4.ok());
  // The service wrapper: read a frame into rc4_buf, crypt it, transmit.
  const std::string wrapper = R"(
    int serve_step() {
      int n; int i;
      if ((rdport(0xD0) & 1) == 0) return 0;
      n = rdport(0xD1) | (rdport(0xD2) << 8);
      if (n > 256) n = 256;
      for (i = 0; i < n; i = i + 1) rc4_buf[i] = rdport(0xD3);
      wrport(0xD0, 1);
      rc4_crypt(n);
      for (i = 0; i < n; i = i + 1) wrport(0xD4, rc4_buf[i]);
      wrport(0xD5, 1);
      return n;
    }
  )";
  return (rc4.ok() ? *rc4 : "") + wrapper;
}

TEST(OnBoardCryptoService, EncryptsFramesHostCanDecrypt) {
  OnBoard ob(crypto_service_source());
  // Key the service (host writes the key, calls rc4_setup).
  const std::vector<u8> key = {'s', '3', 'c', 'r', '3', 't'};
  common::u32 key_addr = 0;
  ASSERT_TRUE(ob.out.image.find_symbol("g_rc4_key", key_addr));
  for (std::size_t i = 0; i < key.size(); ++i) {
    ob.board.mem().write(static_cast<u16>(key_addr + i), key[i]);
  }
  common::u32 klen_addr = 0;
  ASSERT_TRUE(ob.out.image.find_symbol("l_rc4_setup_klen", klen_addr));
  ob.board.mem().write16(static_cast<u16>(klen_addr),
                         static_cast<u16>(key.size()));
  ASSERT_TRUE(ob.board.call("f_rc4_setup", 500'000'000).ok());

  // Send two plaintext frames through the service.
  const std::string msg1 = "wire this to the bank";
  const std::string msg2 = "and this one too";
  ob.nic.push_rx_frame({msg1.begin(), msg1.end()});
  ob.nic.push_rx_frame({msg2.begin(), msg2.end()});
  EXPECT_EQ(ob.call("serve_step"), msg1.size());
  EXPECT_EQ(ob.call("serve_step"), msg2.size());
  ASSERT_EQ(ob.nic.tx_frames().size(), 2u);

  // The ciphertext must not contain the plaintext...
  const auto& ct1 = ob.nic.tx_frames()[0];
  EXPECT_EQ(std::string(ct1.begin(), ct1.end()).find("bank"),
            std::string::npos);

  // ...and a host-side RC4 with the same key must decrypt both frames
  // (continuing the keystream across frames, as the service does).
  struct HostRc4 {
    u8 S[256];
    int i = 0, j = 0;
    explicit HostRc4(std::span<const u8> k) {
      for (int x = 0; x < 256; ++x) S[x] = static_cast<u8>(x);
      int jj = 0;
      for (int x = 0; x < 256; ++x) {
        jj = (jj + S[x] + k[x % k.size()]) & 255;
        std::swap(S[x], S[jj]);
      }
    }
    u8 next() {
      i = (i + 1) & 255;
      j = (j + S[i]) & 255;
      std::swap(S[i], S[j]);
      return S[(S[i] + S[j]) & 255];
    }
  } host(key);
  std::string dec1, dec2;
  for (u8 b : ob.nic.tx_frames()[0]) dec1.push_back(static_cast<char>(b ^ host.next()));
  for (u8 b : ob.nic.tx_frames()[1]) dec2.push_back(static_cast<char>(b ^ host.next()));
  EXPECT_EQ(dec1, msg1);
  EXPECT_EQ(dec2, msg2);
}

TEST(OnBoardCryptoService, CycleCostReported) {
  OnBoard ob(crypto_service_source());
  common::u32 klen_addr = 0;
  ASSERT_TRUE(ob.out.image.find_symbol("l_rc4_setup_klen", klen_addr));
  ob.board.mem().write16(static_cast<u16>(klen_addr), 4);
  auto setup = ob.board.call("f_rc4_setup", 500'000'000);
  ASSERT_TRUE(setup.ok());
  EXPECT_GT(setup->cycles, 10'000u);  // 256-entry KSA is real work

  ob.nic.push_rx_frame(std::vector<u8>(64, 'x'));
  auto serve = ob.board.call("f_serve_step", 500'000'000);
  ASSERT_TRUE(serve.ok());
  EXPECT_EQ(serve->hl, 64);
  // Per-byte cost on a 30 MHz 8-bit CPU: must be orders of magnitude above
  // a workstation, the paper's whole premise.
  EXPECT_GT(serve->cycles / 64, 200u);
}

}  // namespace
}  // namespace rmc
