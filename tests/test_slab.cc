// Production-memory tests (DESIGN.md §14): the slab allocator's size-class
// and large-spill paths, real free with page-run coalescing, the poison/
// quarantine debug mode (double-free, foreign-free, use-after-free), the
// seeded AllocFaultMonitor, freelist-order determinism, and the slab-mode
// redirector shedding one connection instead of restarting the board.
#include <gtest/gtest.h>

#include <cstring>

#include "dynk/allocfault.h"
#include "dynk/slab.h"
#include "services/supervisor.h"
#include "telemetry/metrics.h"

namespace rmc {
namespace {

using common::u64;
using common::u8;
using dynk::AllocFaultMonitor;
using dynk::AllocFaultPlan;
using dynk::SlabAllocator;
using dynk::SlabConfig;
using dynk::SlabHandle;

SlabConfig small_config(std::size_t pages = 8, bool quarantine = false,
                        std::size_t depth = 4) {
  SlabConfig c;
  c.capacity = pages * 4096;
  c.quarantine = quarantine;
  c.quarantine_depth = depth;
  return c;
}

// ---------------------------------------------------------------------------
// Size classes and basic alloc/free accounting
// ---------------------------------------------------------------------------

TEST(SlabTest, ClassForMapsPow2Boundaries) {
  EXPECT_EQ(SlabAllocator::class_for(1), 0u);
  EXPECT_EQ(SlabAllocator::class_for(16), 0u);
  EXPECT_EQ(SlabAllocator::class_for(17), 1u);
  EXPECT_EQ(SlabAllocator::class_for(32), 1u);
  EXPECT_EQ(SlabAllocator::class_for(2048), 7u);
  // Over the top class: the whole-page spill path.
  EXPECT_EQ(SlabAllocator::class_for(2049), SlabAllocator::kNumClasses);
  EXPECT_EQ(SlabAllocator::class_block_bytes(0), 16u);
  EXPECT_EQ(SlabAllocator::class_block_bytes(7), 2048u);
}

TEST(SlabTest, ZeroByteAllocIsInvalidNotExhausted) {
  SlabAllocator slab(small_config());
  auto h = slab.alloc(0, "test.zero");
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), common::ErrorCode::kInvalidArgument);
  // Not counted as an exhaustion failure and nothing was committed.
  EXPECT_EQ(slab.failed_allocs(), 0u);
  EXPECT_EQ(slab.committed_bytes(), 0u);
}

TEST(SlabTest, AllocFreeRoundTripReturnsToZeroLive) {
  SlabAllocator slab(small_config());
  std::vector<SlabHandle> hs;
  for (int i = 0; i < 10; ++i) {
    auto h = slab.alloc(100, "test.rt");  // class 128
    ASSERT_TRUE(h.ok());
    hs.push_back(*h);
  }
  EXPECT_EQ(slab.live_blocks(), 10u);
  EXPECT_EQ(slab.live_bytes(), 10u * 128);
  EXPECT_EQ(slab.requested_bytes(), 10u * 100);
  for (SlabHandle h : hs) EXPECT_TRUE(slab.free(h).is_ok());
  EXPECT_EQ(slab.live_blocks(), 0u);
  EXPECT_EQ(slab.live_bytes(), 0u);
  EXPECT_EQ(slab.requested_bytes(), 0u);
  EXPECT_EQ(slab.free_count(), 10u);
  // High waters remember the peak; the slab page stays committed (cached).
  EXPECT_EQ(slab.high_water_live_bytes(), 10u * 128);
  EXPECT_GE(slab.committed_bytes(), 4096u);
}

TEST(SlabTest, ViewExposesWritableClassBlock) {
  SlabAllocator slab(small_config());
  auto h = slab.alloc(100, "test.view");
  ASSERT_TRUE(h.ok());
  auto span = slab.view(*h);
  ASSERT_EQ(span.size(), 128u);  // class block, naturally aligned
  std::memset(span.data(), 0x5A, span.size());
  EXPECT_EQ(slab.view(*h)[127], 0x5A);
  ASSERT_TRUE(slab.free(*h).is_ok());
  // Dead handles view nothing.
  EXPECT_TRUE(slab.view(*h).empty());
}

TEST(SlabTest, FreelistIsLifoAndDeterministic) {
  // Two identically configured slabs fed the same sequence must hand out
  // the same handles — the property the byte-reproducible soak rests on.
  SlabAllocator a(small_config());
  SlabAllocator b(small_config());
  std::vector<SlabHandle> ha, hb;
  for (int i = 0; i < 8; ++i) {
    auto x = a.alloc(60, "t");
    auto y = b.alloc(60, "t");
    ASSERT_TRUE(x.ok() && y.ok());
    ha.push_back(*x);
    hb.push_back(*y);
  }
  EXPECT_EQ(ha, hb);
  // LIFO reuse: free one block, the next same-class alloc gets it back.
  ASSERT_TRUE(a.free(ha[3]).is_ok());
  auto again = a.alloc(64, "t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, ha[3]);
}

// ---------------------------------------------------------------------------
// Large (over-class) spill path and page-run coalescing
// ---------------------------------------------------------------------------

TEST(SlabTest, OverMaxClassSpillsToWholePagesAndReturnsThem) {
  SlabAllocator slab(small_config(8));
  // kMaxClassBytes + 1: one byte over the top class => one whole page.
  auto h = slab.alloc(SlabAllocator::kMaxClassBytes + 1, "test.large");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(slab.committed_bytes(), 4096u);
  EXPECT_EQ(slab.live_bytes(), 4096u);  // page-rounded
  EXPECT_EQ(slab.view(*h).size(), 4096u);
  // Unlike class slabs, large pages go back to the run list on free.
  ASSERT_TRUE(slab.free(*h).is_ok());
  EXPECT_EQ(slab.committed_bytes(), 0u);
  EXPECT_EQ(slab.live_bytes(), 0u);
}

TEST(SlabTest, FreedPageRunsCoalesceForBigAllocations) {
  SlabAllocator slab(small_config(4));
  auto a = slab.alloc(2 * 4096, "A");  // pages 0-1
  auto b = slab.alloc(2 * 4096, "B");  // pages 2-3
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_FALSE(slab.alloc(4096, "full").ok());  // budget spent
  ASSERT_TRUE(slab.free(*a).is_ok());
  ASSERT_TRUE(slab.free(*b).is_ok());
  // Only a coalesced run can hold all four pages again.
  EXPECT_TRUE(slab.alloc(4 * 4096, "whole").ok());
}

TEST(SlabTest, ExhaustionFailsCleanAndRecoversAfterFree) {
  SlabAllocator slab(small_config(1));  // one page: 32 blocks of 128
  std::vector<SlabHandle> hs;
  while (true) {
    auto h = slab.alloc(128, "fill");
    if (!h.ok()) {
      EXPECT_EQ(h.status().code(), common::ErrorCode::kResourceExhausted);
      break;
    }
    hs.push_back(*h);
  }
  EXPECT_EQ(hs.size(), 32u);
  EXPECT_EQ(slab.failed_allocs(), 1u);
  ASSERT_TRUE(slab.free(hs.back()).is_ok());
  EXPECT_TRUE(slab.alloc(128, "again").ok());
}

// ---------------------------------------------------------------------------
// Fault detection: foreign free, double free, use-after-free
// ---------------------------------------------------------------------------

TEST(SlabTest, ForeignHandleFreeTripsNamedFault) {
  SlabAllocator slab(small_config());
  std::string fault_kind;
  slab.set_fault_handler(
      [&](const char* kind, SlabHandle) { fault_kind = kind; });
  // Below base: never a handle of this allocator.
  EXPECT_EQ(slab.free(0x1000).code(), common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(fault_kind, "foreign-free");
  // Misaligned inside the range: also foreign.
  auto h = slab.alloc(64, "t");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(slab.free(*h + 8).code(), common::ErrorCode::kInvalidArgument);
  EXPECT_EQ(slab.foreign_free_faults(), 2u);
  // The live block is untouched by the bad frees.
  EXPECT_TRUE(slab.free(*h).is_ok());
}

TEST(SlabTest, DoubleFreeDetectedWithAndWithoutQuarantine) {
  for (bool q : {false, true}) {
    SlabAllocator slab(small_config(8, q));
    std::string fault_kind;
    slab.set_fault_handler(
        [&](const char* kind, SlabHandle) { fault_kind = kind; });
    auto h = slab.alloc(64, "t");
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(slab.free(*h).is_ok());
    EXPECT_EQ(slab.free(*h).code(), common::ErrorCode::kFailedPrecondition);
    EXPECT_EQ(fault_kind, "double-free");
    EXPECT_EQ(slab.double_free_faults(), 1u);
  }
}

TEST(SlabTest, QuarantineDelaysReuseAndPoisonsFrees) {
  SlabAllocator slab(small_config(8, /*quarantine=*/true, /*depth=*/4));
  auto h = slab.alloc(64, "t");
  ASSERT_TRUE(h.ok());
  const SlabHandle first = *h;
  ASSERT_TRUE(slab.free(first).is_ok());
  EXPECT_EQ(slab.quarantined_blocks(), 1u);
  // The freed block must NOT come back while quarantine holds it.
  auto h2 = slab.alloc(64, "t");
  ASSERT_TRUE(h2.ok());
  EXPECT_NE(*h2, first);
  ASSERT_TRUE(slab.free(*h2).is_ok());
  slab.flush_quarantine();
  EXPECT_EQ(slab.quarantined_blocks(), 0u);
  EXPECT_EQ(slab.poison_trips(), 0u);  // nobody wrote through stale handles
}

TEST(SlabTest, UseAfterFreeWriteTripsPoisonAudit) {
  SlabAllocator slab(small_config(8, /*quarantine=*/true, /*depth=*/8));
  std::string fault_kind;
  slab.set_fault_handler(
      [&](const char* kind, SlabHandle) { fault_kind = kind; });
  auto h = slab.alloc(64, "t");
  ASSERT_TRUE(h.ok());
  auto stale = slab.view(*h);  // keep the host view across the free
  ASSERT_TRUE(slab.free(*h).is_ok());
  stale[5] = 0x42;  // write through the stale handle while quarantined
  slab.flush_quarantine();
  EXPECT_EQ(slab.poison_trips(), 1u);
  EXPECT_EQ(fault_kind, "use-after-free");
}

TEST(SlabTest, QuarantineModeFillsFreshBlocksWithAllocPoison) {
  SlabAllocator slab(small_config(8, /*quarantine=*/true));
  auto h = slab.alloc(64, "t");
  ASSERT_TRUE(h.ok());
  for (u8 byte : slab.view(*h)) EXPECT_EQ(byte, SlabAllocator::kPoisonAlloc);
}

// ---------------------------------------------------------------------------
// AllocFaultMonitor: seeded, re-arming failure injection
// ---------------------------------------------------------------------------

TEST(AllocFaultTest, ExplicitGapsFailTheScheduledAttempts) {
  AllocFaultMonitor m(AllocFaultPlan::at({2, 0}));
  // Two attempts survive, then two consecutive attempts fail.
  EXPECT_FALSE(m.step("a"));
  EXPECT_FALSE(m.step("b"));
  EXPECT_TRUE(m.step("c"));
  EXPECT_TRUE(m.step("d"));
  EXPECT_FALSE(m.step("e"));  // plan exhausted, back to normal
  EXPECT_EQ(m.attempts(), 5u);
  EXPECT_EQ(m.injected(), 2u);
  EXPECT_EQ(m.last_site(), "d");
  ASSERT_EQ(m.sites_tripped().size(), 2u);
  EXPECT_EQ(m.sites_tripped()[0], "c");
  EXPECT_FALSE(m.more_pending());
}

TEST(AllocFaultTest, SeededRandomPlanIsReproducible) {
  auto p1 = AllocFaultPlan::random(0xBEEF, 16, 1, 50);
  auto p2 = AllocFaultPlan::random(0xBEEF, 16, 1, 50);
  EXPECT_EQ(p1.failures, p2.failures);
  for (u64 gap : p1.failures) {
    EXPECT_GE(gap, 1u);
    EXPECT_LE(gap, 50u);
  }
}

TEST(AllocFaultTest, MonitorInjectsIntoSlabAlloc) {
  SlabAllocator slab(small_config());
  AllocFaultMonitor m(AllocFaultPlan::at({0}));
  slab.attach_fault_monitor(&m);
  auto h = slab.alloc(64, "inject.here");
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), common::ErrorCode::kResourceExhausted);
  EXPECT_EQ(slab.injected_failures(), 1u);
  // Nothing was committed for the injected failure; next attempt succeeds.
  EXPECT_EQ(slab.committed_bytes(), 0u);
  EXPECT_TRUE(slab.alloc(64, "inject.here").ok());
  EXPECT_EQ(m.sites_tripped().front(), "inject.here");
}

// ---------------------------------------------------------------------------
// Slab-mode service board: exhaustion sheds one connection, never restarts
// ---------------------------------------------------------------------------

constexpr net::IpAddr kBoardIp = 1;
constexpr net::IpAddr kBackendIp = 2;
constexpr net::IpAddr kClientIp = 3;
constexpr net::Port kTlsPort = 4433;
constexpr net::Port kBackendPort = 8000;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

struct SlabWorld {
  net::SimNet net{777};
  net::TcpStack backend_stack{net, kBackendIp};
  net::TcpStack client_stack{net, kClientIp};
  services::EchoBackend backend{backend_stack, kBackendPort};

  services::ServiceBoardConfig board_config() {
    services::ServiceBoardConfig cfg;
    cfg.redirector.listen_port = kTlsPort;
    cfg.redirector.backend_ip = kBackendIp;
    cfg.redirector.backend_port = kBackendPort;
    cfg.redirector.secure = false;  // unit tests drive the memory path only
    cfg.board_ip = kBoardIp;
    cfg.wdt_period_ms = 500;
    cfg.reboot_ms = 2;
    cfg.allocator = dynk::AllocatorKind::kSlab;
    cfg.xalloc_capacity = 64 * 1024;
    return cfg;
  }

  bool echo_once(services::ServiceBoard& board, std::string_view msg,
                 u64 seed, u64 budget_ms = 1'200) {
    services::Client c(client_stack, kBoardIp, kTlsPort, false,
                       issl::Config::embedded_port(), {}, seed);
    if (!c.start().is_ok()) return false;
    if (!c.send(bytes_of(msg)).is_ok()) return false;
    for (u64 i = 0; i < budget_ms; ++i) {
      board.poll();
      backend.poll();
      (void)c.poll();
      net.tick(1);
      if (c.received().size() >= msg.size()) {
        c.close();
        for (u64 j = 0; j < 80; ++j) {
          board.poll();
          backend.poll();
          (void)c.poll();
          net.tick(1);
        }
        return true;
      }
    }
    return false;
  }
};

TEST(SlabBoardTest, SlabModeServesAndFreesPerConnectionState) {
  SlabWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  services::ServiceBoard board(w.net, w.board_config());
  ASSERT_NE(board.slab(), nullptr);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(w.echo_once(board, "slab echo", 0x5000 + i));
  }
  // Every recipe was allocated AND returned: zero live bytes at idle, many
  // more sessions than an equal xalloc budget could ever serve per boot.
  EXPECT_EQ(board.slab()->live_bytes(), 0u);
  EXPECT_GE(board.slab()->free_count(), 6u * 4);
  EXPECT_EQ(board.resets(), 0u);
  EXPECT_EQ(board.redirector()->stats().alloc_sheds, 0u);
}

TEST(SlabBoardTest, InjectedAllocFailureShedsOneConnectionNotTheBoard) {
  SlabWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.board_config();
  // Fail the very first allocation attempt (conn.state of the first
  // accepted connection); everything after runs normally.
  cfg.alloc_fault_plan = dynk::AllocFaultPlan::at({0});
  services::ServiceBoard board(w.net, cfg);

  // The first client is shed (its recipe never arrived) ...
  (void)w.echo_once(board, "doomed", 0x6000, 600);
  EXPECT_EQ(board.redirector()->stats().alloc_sheds, 1u);
  EXPECT_EQ(board.alloc_faults().injected(), 1u);
  EXPECT_EQ(board.alloc_faults().sites_tripped().front(), "conn.state");
  // ... and the board neither restarted nor asked to.
  EXPECT_EQ(board.resets(), 0u);
  EXPECT_EQ(board.xalloc_restarts(), 0u);
  EXPECT_FALSE(board.redirector()->restart_requested());

  // The very next client is served on the recycled slot.
  EXPECT_TRUE(w.echo_once(board, "survivor", 0x6001));
  EXPECT_EQ(board.slab()->live_bytes(), 0u);
}

TEST(SlabBoardTest, MidRecipeFailureReleasesThePartialRecipe) {
  SlabWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.board_config();
  // Survive 2 attempts (conn.state, conn.session), fail the third
  // (conn.buf): the shed path must free the partial recipe.
  cfg.alloc_fault_plan = dynk::AllocFaultPlan::at({2});
  services::ServiceBoard board(w.net, cfg);

  (void)w.echo_once(board, "doomed", 0x7000, 600);
  EXPECT_EQ(board.redirector()->stats().alloc_sheds, 1u);
  EXPECT_EQ(board.alloc_faults().sites_tripped().front(), "conn.buf");
  EXPECT_EQ(board.slab()->live_bytes(), 0u);  // partials released
  EXPECT_EQ(board.resets(), 0u);
  EXPECT_TRUE(w.echo_once(board, "survivor", 0x7001));
}

}  // namespace
}  // namespace rmc
