// Network substrate tests: the simulated medium, the TCP implementation
// (handshake, transfer, loss recovery, teardown, resets, backlog), and both
// API facades (BSD-style and Dynamic-C-style).
#include <gtest/gtest.h>

#include "net/bsd.h"
#include "net/dcnet.h"
#include "net/simnet.h"
#include "net/tcp.h"

namespace rmc::net {
namespace {

using common::ErrorCode;
using common::u8;

constexpr IpAddr kServerIp = 0x0A000001;
constexpr IpAddr kClientIp = 0x0A000002;
constexpr Port kPort = 4433;

struct TwoHosts {
  SimNet net{42};
  TcpStack server{net, kServerIp};
  TcpStack client{net, kClientIp};

  // Establish a connection and return {server_conn, client_conn}.
  std::pair<int, int> connect() {
    auto l = server.listen(kPort);
    EXPECT_TRUE(l.ok());
    auto c = client.connect(kServerIp, kPort);
    EXPECT_TRUE(c.ok());
    net.tick(20);
    auto sc = server.accept(*l);
    EXPECT_TRUE(sc.ok()) << sc.status().to_string();
    EXPECT_TRUE(client.is_established(*c));
    return {sc.ok() ? *sc : -1, *c};
  }

  std::vector<u8> drain(TcpStack& stack, int sock) {
    std::vector<u8> got;
    u8 buf[256];
    while (true) {
      auto n = stack.recv(sock, buf);
      if (!n.ok() || *n == 0) break;
      got.insert(got.end(), buf, buf + *n);
    }
    return got;
  }
};

// ---------------------------------------------------------------------------
// SimNet medium
// ---------------------------------------------------------------------------

class Sink : public NetworkEndpoint {
 public:
  std::vector<Segment> got;
  void deliver(const Segment& s) override { got.push_back(s); }
  void on_tick(u64) override {}
};

TEST(SimNet, DeliversAfterLatency) {
  SimNet net(1);
  net.set_latency_ms(5);
  Sink sink;
  net.attach(2, &sink);
  Segment seg;
  seg.src_ip = 1;
  seg.dst_ip = 2;
  seg.payload = {1, 2, 3};
  net.send(seg);
  net.tick(3);
  EXPECT_TRUE(sink.got.empty());
  net.tick(3);
  ASSERT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(sink.got[0].payload.size(), 3u);
  EXPECT_EQ(net.payload_bytes_delivered(), 3u);
}

TEST(SimNet, DropsToUnknownHosts) {
  SimNet net(1);
  Segment seg;
  seg.dst_ip = 99;
  net.send(seg);
  net.tick(5);
  EXPECT_EQ(net.segments_dropped(), 1u);
}

TEST(SimNet, LossIsApplied) {
  SimNet net(7);
  net.set_loss_probability(1.0);
  Sink sink;
  net.attach(2, &sink);
  for (int i = 0; i < 10; ++i) {
    Segment seg;
    seg.dst_ip = 2;
    net.send(seg);
  }
  net.tick(10);
  EXPECT_TRUE(sink.got.empty());
  EXPECT_EQ(net.segments_dropped(), 10u);
}

// ---------------------------------------------------------------------------
// TCP core
// ---------------------------------------------------------------------------

TEST(Tcp, ThreeWayHandshake) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  EXPECT_EQ(h.server.state(sconn), TcpState::kEstablished);
  EXPECT_EQ(h.client.state(cconn), TcpState::kEstablished);
}

TEST(Tcp, DataBothDirections) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  const std::vector<u8> ping = {'p', 'i', 'n', 'g'};
  const std::vector<u8> pong = {'p', 'o', 'n', 'g', '!'};
  ASSERT_TRUE(h.client.send(cconn, ping).ok());
  h.net.tick(10);
  EXPECT_EQ(h.drain(h.server, sconn), ping);
  ASSERT_TRUE(h.server.send(sconn, pong).ok());
  h.net.tick(10);
  EXPECT_EQ(h.drain(h.client, cconn), pong);
}

TEST(Tcp, LargeTransferSegmentsAndReassembles) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  std::vector<u8> big(10'000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i * 7);
  ASSERT_TRUE(h.client.send(cconn, big).ok());
  std::vector<u8> got;
  for (int i = 0; i < 500 && got.size() < big.size(); ++i) {
    h.net.tick(1);
    auto part = h.drain(h.server, sconn);
    got.insert(got.end(), part.begin(), part.end());
  }
  EXPECT_EQ(got, big);
}

TEST(Tcp, RecoversFromHeavyLoss) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  h.net.set_loss_probability(0.25);  // every 4th segment vanishes
  std::vector<u8> data(4'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<u8>(i ^ (i >> 8));
  }
  ASSERT_TRUE(h.client.send(cconn, data).ok());
  std::vector<u8> got;
  for (int i = 0; i < 20'000 && got.size() < data.size(); ++i) {
    h.net.tick(1);
    auto part = h.drain(h.server, sconn);
    got.insert(got.end(), part.begin(), part.end());
  }
  EXPECT_EQ(got, data);  // exact bytes despite drops: retransmission works
  EXPECT_GT(h.client.retransmissions(), 0u);
}

TEST(Tcp, HandshakeSurvivesSynLoss) {
  SimNet net(13);
  net.set_loss_probability(0.5);
  TcpStack server(net, kServerIp);
  TcpStack client(net, kClientIp);
  auto l = server.listen(kPort);
  ASSERT_TRUE(l.ok());
  auto c = client.connect(kServerIp, kPort);
  ASSERT_TRUE(c.ok());
  // Under 50% loss the exponentially backed-off handshake can exhaust
  // kMaxRetx and give up (RST + was_reset); a real client retries, so the
  // test does too.
  for (int i = 0; i < 60'000 && !client.is_established(*c); ++i) {
    net.tick(1);
    if (client.was_reset(*c)) {
      c = client.connect(kServerIp, kPort);
      ASSERT_TRUE(c.ok());
    }
  }
  EXPECT_TRUE(client.is_established(*c));
  // The client can reach Established before the server does (its final ACK
  // may be in flight or lost); give the server time to catch up.
  common::Result<int> sc = server.accept(*l);
  for (int i = 0; i < 60'000 && !sc.ok(); ++i) {
    net.tick(1);
    sc = server.accept(*l);
  }
  EXPECT_TRUE(sc.ok());
}

TEST(Tcp, GracefulCloseDeliversEof) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  const std::vector<u8> last = {'b', 'y', 'e'};
  ASSERT_TRUE(h.client.send(cconn, last).ok());
  ASSERT_TRUE(h.client.close(cconn).is_ok());
  h.net.tick(30);
  EXPECT_EQ(h.drain(h.server, sconn), last);
  u8 buf[8];
  auto eof = h.server.recv(sconn, buf);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);  // orderly shutdown
  // Server closes its side; both reach terminal states.
  ASSERT_TRUE(h.server.close(sconn).is_ok());
  h.net.tick(30);
  EXPECT_FALSE(h.client.is_open(cconn));
  EXPECT_FALSE(h.server.is_open(sconn));
}

TEST(Tcp, ConnectToDeadPortGetsReset) {
  TwoHosts h;
  auto c = h.client.connect(kServerIp, 9999);  // nobody listening
  ASSERT_TRUE(c.ok());
  h.net.tick(20);
  EXPECT_TRUE(h.client.was_reset(*c));
  EXPECT_EQ(h.client.state(*c), TcpState::kClosed);
}

TEST(Tcp, BacklogLimitsPendingConnections) {
  TwoHosts h;
  auto l = h.server.listen(kPort, /*backlog=*/2);
  ASSERT_TRUE(l.ok());
  std::vector<int> conns;
  for (int i = 0; i < 4; ++i) {
    auto c = h.client.connect(kServerIp, kPort);
    ASSERT_TRUE(c.ok());
    conns.push_back(*c);
  }
  h.net.tick(20);
  int established = 0;
  for (int c : conns) established += h.client.is_established(c) ? 1 : 0;
  EXPECT_EQ(established, 2);  // two SYNs beyond backlog got no SYN-ACK yet
  // Draining the queue lets the retransmitted SYNs through eventually.
  ASSERT_TRUE(h.server.accept(*l).ok());
  ASSERT_TRUE(h.server.accept(*l).ok());
  h.net.tick(2'000);
  established = 0;
  for (int c : conns) established += h.client.is_established(c) ? 1 : 0;
  EXPECT_EQ(established, 4);
}

TEST(Tcp, SendOnClosedSocketFails) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  ASSERT_TRUE(h.client.close(cconn).is_ok());
  const std::vector<u8> data = {1};
  EXPECT_FALSE(h.client.send(cconn, data).ok());
  (void)sconn;
}

TEST(Tcp, AcceptOnNonListenerFails) {
  TwoHosts h;
  auto [sconn, cconn] = h.connect();
  EXPECT_FALSE(h.server.accept(sconn).ok());
  (void)cconn;
}

TEST(Tcp, StateNamesAreHuman) {
  EXPECT_STREQ(tcp_state_name(TcpState::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(tcp_state_name(TcpState::kFinWait1), "FIN_WAIT_1");
}

// ---------------------------------------------------------------------------
// BSD facade
// ---------------------------------------------------------------------------

TEST(Bsd, EchoServerShape) {
  // The Figure 2(a) call sequence, non-blocking flavor.
  TwoHosts h;
  BsdSocketApi server_api(h.server);
  BsdSocketApi client_api(h.client);

  auto lfd = server_api.socket_fd();
  ASSERT_TRUE(lfd.ok());
  ASSERT_TRUE(server_api.bind_fd(*lfd, kPort).is_ok());
  ASSERT_TRUE(server_api.listen_fd(*lfd, 4).is_ok());

  auto cfd = client_api.socket_fd();
  ASSERT_TRUE(cfd.ok());
  ASSERT_TRUE(client_api.connect_fd(*cfd, kServerIp, kPort).is_ok());
  h.net.tick(20);
  ASSERT_TRUE(client_api.connected_fd(*cfd));

  auto conn = server_api.accept_fd(*lfd);
  ASSERT_TRUE(conn.ok());

  const std::vector<u8> msg = {'h', 'e', 'l', 'l', 'o'};
  ASSERT_TRUE(client_api.send_fd(*cfd, msg).ok());
  h.net.tick(10);
  u8 buf[64];
  auto n = server_api.recv_fd(*conn, buf);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(server_api.send_fd(*conn, std::span<const u8>(buf, *n)).ok());
  h.net.tick(10);
  auto echo = client_api.recv_fd(*cfd, buf);
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(std::vector<u8>(buf, buf + *echo), msg);

  EXPECT_TRUE(server_api.close_fd(*conn).is_ok());
  EXPECT_TRUE(client_api.close_fd(*cfd).is_ok());
}

TEST(Bsd, ApiMisuseErrors) {
  TwoHosts h;
  BsdSocketApi api(h.server);
  EXPECT_FALSE(api.bind_fd(99, kPort).is_ok());           // bad fd
  auto fd = api.socket_fd();
  ASSERT_TRUE(fd.ok());
  EXPECT_FALSE(api.listen_fd(*fd, 4).is_ok());            // listen before bind
  ASSERT_TRUE(api.bind_fd(*fd, kPort).is_ok());
  EXPECT_FALSE(api.bind_fd(*fd, kPort + 1).is_ok());      // double bind
  ASSERT_TRUE(api.listen_fd(*fd, 4).is_ok());
  auto r = api.accept_fd(*fd);
  EXPECT_FALSE(r.ok());                                   // would block
  EXPECT_EQ(r.status().code(), ErrorCode::kUnavailable);
  u8 buf[4];
  EXPECT_FALSE(api.recv_fd(*fd, buf).ok());               // recv on listener
}

// ---------------------------------------------------------------------------
// Dynamic C facade
// ---------------------------------------------------------------------------

TEST(DcNet, Figure2bEchoShape) {
  // sock_init / tcp_listen / sock_established / sock_gets / sock_puts.
  TwoHosts h;
  DcTcpApi dc(h.server, &h.net);
  BsdSocketApi client_api(h.client);

  dc.sock_init();
  tcp_Socket sock;
  ASSERT_TRUE(dc.tcp_listen(&sock, kPort).is_ok());
  dc.sock_mode(&sock, /*ascii=*/true);

  auto cfd = client_api.socket_fd();
  ASSERT_TRUE(cfd.ok());
  ASSERT_TRUE(client_api.connect_fd(*cfd, kServerIp, kPort).is_ok());

  // The server loop: waitfor(sock_established) via ticking.
  for (int i = 0; i < 50 && !dc.sock_established(&sock); ++i) dc.tcp_tick(nullptr);
  ASSERT_TRUE(dc.sock_established(&sock));

  const std::string line = "GET /secret\n";
  ASSERT_TRUE(client_api
                  .send_fd(*cfd, std::span<const u8>(
                                     reinterpret_cast<const u8*>(line.data()),
                                     line.size()))
                  .ok());
  for (int i = 0; i < 50; ++i) dc.tcp_tick(nullptr);
  auto got = dc.sock_gets(&sock, 128);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  EXPECT_EQ(*got, "GET /secret");

  ASSERT_TRUE(dc.sock_puts(&sock, "403 DENIED").is_ok());
  for (int i = 0; i < 50; ++i) dc.tcp_tick(nullptr);
  u8 buf[64];
  auto n = client_api.recv_fd(*cfd, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, buf + *n), "403 DENIED\n");

  dc.sock_close(&sock);
}

TEST(DcNet, ListenBeforeInitFails) {
  TwoHosts h;
  DcTcpApi dc(h.server);
  tcp_Socket sock;
  EXPECT_FALSE(dc.tcp_listen(&sock, kPort).is_ok());
}

TEST(DcNet, SocketReArmsAfterClose) {
  // The §5.3 pattern: each connection needs a fresh tcp_listen on the same
  // tcp_Socket; the facade must reuse the port's listener.
  TwoHosts h;
  DcTcpApi dc(h.server, &h.net);
  BsdSocketApi client_api(h.client);
  dc.sock_init();
  tcp_Socket sock;

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(dc.tcp_listen(&sock, kPort).is_ok()) << round;
    auto cfd = client_api.socket_fd();
    ASSERT_TRUE(cfd.ok());
    ASSERT_TRUE(client_api.connect_fd(*cfd, kServerIp, kPort).is_ok());
    for (int i = 0; i < 100 && !dc.sock_established(&sock); ++i) {
      dc.tcp_tick(nullptr);
    }
    ASSERT_TRUE(dc.sock_established(&sock)) << round;
    const std::vector<u8> msg = {static_cast<u8>('0' + round)};
    ASSERT_TRUE(dc.sock_fastwrite(&sock, msg).ok());
    for (int i = 0; i < 50; ++i) dc.tcp_tick(nullptr);
    u8 buf[4];
    auto n = client_api.recv_fd(*cfd, buf);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(buf[0], '0' + round);
    dc.sock_close(&sock);
    ASSERT_TRUE(client_api.close_fd(*cfd).is_ok());
    for (int i = 0; i < 100; ++i) dc.tcp_tick(nullptr);
  }
}

TEST(DcNet, GetsRequiresAsciiMode) {
  TwoHosts h;
  DcTcpApi dc(h.server);
  dc.sock_init();
  tcp_Socket sock;
  ASSERT_TRUE(dc.tcp_listen(&sock, kPort).is_ok());
  auto r = dc.sock_gets(&sock, 16);
  EXPECT_FALSE(r.ok());
}

TEST(DcNet, TickNullAdvancesMedium) {
  TwoHosts h;
  DcTcpApi dc(h.server, &h.net);
  dc.sock_init();
  const u64 t0 = h.net.now_ms();
  for (int i = 0; i < 10; ++i) dc.tcp_tick(nullptr);
  EXPECT_EQ(h.net.now_ms(), t0 + 10);
  EXPECT_EQ(dc.tick_calls(), 10u);
}

}  // namespace
}  // namespace rmc::net
