// issl tests: record-layer properties (confidentiality framing, MAC
// rejection, sequence binding), full handshakes over the simulated network
// in both key-exchange modes, negotiation failures that reproduce the
// paper's dropped features, data transfer under packet loss, and clean
// close semantics.
#include <gtest/gtest.h>

#include "issl/issl.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "telemetry/metrics.h"

namespace rmc::issl {
namespace {

using common::ErrorCode;
using common::u8;
using net::IpAddr;
using net::Port;
using net::SimNet;
using net::TcpStack;

constexpr IpAddr kServerIp = 1;
constexpr IpAddr kClientIp = 2;
constexpr Port kTlsPort = 4433;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// ---------------------------------------------------------------------------
// Record layer in isolation (loopback buffer stream)
// ---------------------------------------------------------------------------

class PipeStream final : public ByteStream {
 public:
  common::Result<std::size_t> write(std::span<const u8> data) override {
    buf_.insert(buf_.end(), data.begin(), data.end());
    return data.size();
  }
  common::Result<std::size_t> read(std::span<u8> out) override {
    if (buf_.empty()) {
      return common::Status(ErrorCode::kUnavailable, "empty");
    }
    const std::size_t n = std::min(out.size(), buf_.size());
    std::copy(buf_.begin(), buf_.begin() + static_cast<long>(n), out.begin());
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(n));
    return n;
  }
  bool open() const override { return true; }
  void close() override {}

  std::vector<u8> buf_;
};

DirectionKeys test_keys(u8 fill) {
  DirectionKeys k;
  k.aes_key.assign(16, fill);
  k.mac_key.fill(static_cast<u8>(fill ^ 0xFF));
  return k;
}

// Pop expecting a complete, valid record.
Record pop_record(RecordCodec& codec) {
  auto r = codec.pop();
  EXPECT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_TRUE(r.ok() && r->has_value());
  return (r.ok() && r->has_value()) ? **r : Record{RecordType::kAlert, {}};
}

TEST(Record, PlaintextModeRoundTrip) {
  common::Xorshift64 rng(1);
  RecordCodec a(rng), b(rng);
  auto wire = a.seal(RecordType::kHandshake, bytes_of("hello"));
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(b.feed(*wire).is_ok());
  Record rec = pop_record(b);
  EXPECT_EQ(rec.type, RecordType::kHandshake);
  EXPECT_EQ(rec.payload, bytes_of("hello"));
}

TEST(Record, SealedRoundTripAndCiphertextHidesPlaintext) {
  common::Xorshift64 rng(2);
  RecordCodec sender(rng), receiver(rng);
  ASSERT_TRUE(sender.activate_keys(test_keys(1), test_keys(2)).is_ok());
  ASSERT_TRUE(receiver.activate_keys(test_keys(2), test_keys(1)).is_ok());
  const auto msg = bytes_of("attack at dawn, repeatedly, attack at dawn");
  auto wire = sender.seal(RecordType::kApplicationData, msg);
  ASSERT_TRUE(wire.ok());
  // Plaintext must not appear in the sealed bytes.
  const std::string wire_str(wire->begin(), wire->end());
  EXPECT_EQ(wire_str.find("attack"), std::string::npos);
  ASSERT_TRUE(receiver.feed(*wire).is_ok());
  EXPECT_EQ(pop_record(receiver).payload, msg);
}

TEST(Record, TamperedCiphertextRejectedAndPoisons) {
  common::Xorshift64 rng(3);
  RecordCodec sender(rng), receiver(rng);
  ASSERT_TRUE(sender.activate_keys(test_keys(1), test_keys(2)).is_ok());
  ASSERT_TRUE(receiver.activate_keys(test_keys(2), test_keys(1)).is_ok());
  auto wire = sender.seal(RecordType::kApplicationData, bytes_of("secret"));
  ASSERT_TRUE(wire.ok());
  (*wire)[wire->size() - 3] ^= 0x40;
  ASSERT_TRUE(receiver.feed(*wire).is_ok());
  auto popped = receiver.pop();
  EXPECT_FALSE(popped.ok());
  EXPECT_EQ(popped.status().code(), ErrorCode::kDataLoss);
  // Poisoned: even a good record is now refused (fail closed).
  auto wire2 = sender.seal(RecordType::kApplicationData, bytes_of("more"));
  ASSERT_TRUE(wire2.ok());
  EXPECT_FALSE(receiver.feed(*wire2).is_ok());
  EXPECT_FALSE(receiver.pop().ok());
}

TEST(Record, ReplayedRecordRejected) {
  // The sequence number is in the MAC: feeding the same sealed record twice
  // must fail the second time.
  common::Xorshift64 rng(4);
  RecordCodec sender(rng), receiver(rng);
  ASSERT_TRUE(sender.activate_keys(test_keys(1), test_keys(2)).is_ok());
  ASSERT_TRUE(receiver.activate_keys(test_keys(2), test_keys(1)).is_ok());
  auto wire = sender.seal(RecordType::kApplicationData, bytes_of("pay $100"));
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(receiver.feed(*wire).is_ok());
  EXPECT_EQ(pop_record(receiver).payload, bytes_of("pay $100"));
  ASSERT_TRUE(receiver.feed(*wire).is_ok());  // replay the same bytes
  EXPECT_FALSE(receiver.pop().ok());          // sequence-bound MAC rejects
}

TEST(Record, FragmentedDeliveryReassembles) {
  common::Xorshift64 rng(5);
  RecordCodec sender(rng), receiver(rng);
  auto wire = sender.seal(RecordType::kHandshake, bytes_of("fragmented"));
  ASSERT_TRUE(wire.ok());
  for (std::size_t i = 0; i + 1 < wire->size(); ++i) {
    ASSERT_TRUE(receiver.feed(std::span<const u8>(&(*wire)[i], 1)).is_ok());
    auto partial = receiver.pop();
    ASSERT_TRUE(partial.ok());
    EXPECT_FALSE(partial->has_value()) << "record complete too early at " << i;
  }
  ASSERT_TRUE(
      receiver.feed(std::span<const u8>(&wire->back(), 1)).is_ok());
  EXPECT_EQ(pop_record(receiver).payload, bytes_of("fragmented"));
}

TEST(Record, MalformedHeaderPoisons) {
  common::Xorshift64 rng(6);
  RecordCodec receiver(rng);
  const u8 junk[] = {0x77, 0x77, 0x00, 0x01, 0x00};
  ASSERT_TRUE(receiver.feed(junk).is_ok());
  EXPECT_FALSE(receiver.pop().ok());
}

TEST(Record, WrongKeysFailMac) {
  common::Xorshift64 rng(7);
  RecordCodec sender(rng), receiver(rng);
  ASSERT_TRUE(sender.activate_keys(test_keys(1), test_keys(2)).is_ok());
  ASSERT_TRUE(receiver.activate_keys(test_keys(9), test_keys(8)).is_ok());
  auto wire = sender.seal(RecordType::kApplicationData, bytes_of("x"));
  ASSERT_TRUE(wire.ok());
  ASSERT_TRUE(receiver.feed(*wire).is_ok());
  EXPECT_FALSE(receiver.pop().ok());
}

// ---------------------------------------------------------------------------
// Session-level fail-closed behaviour under wire corruption
// ---------------------------------------------------------------------------

// One direction of a duplex link: writes go to `out`, reads come from `in`.
// Cross-wiring two of these over a pair of PipeStreams gives the test a
// hand on the raw wire bytes between two live sessions.
class HalfStream final : public ByteStream {
 public:
  HalfStream(PipeStream& out, PipeStream& in) : out_(out), in_(in) {}
  common::Result<std::size_t> write(std::span<const u8> data) override {
    return out_.write(data);
  }
  common::Result<std::size_t> read(std::span<u8> o) override {
    return in_.read(o);
  }
  bool open() const override { return true; }
  void close() override {}

 private:
  PipeStream& out_;
  PipeStream& in_;
};

common::u64 mac_failure_count() {
  const auto* c =
      telemetry::Registry::global().find_counter("issl.mac_failures");
  return c != nullptr ? c->value() : 0;
}

TEST(SessionTest, FlippedCiphertextBitFailsClosedWithExactlyOneMacFailure) {
  PipeStream c2s, s2c;
  HalfStream client_end(c2s, s2c), server_end(s2c, c2s);
  common::Xorshift64 client_rng(31), server_rng(32);
  const auto psk = bytes_of("tamper-key");
  auto client =
      issl_bind_client(client_end, Config::embedded_port(), client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server =
      issl_bind_server(server_end, Config::embedded_port(), server_rng, id);
  for (int i = 0;
       i < 200 && !(client.established() && server.established()); ++i) {
    (void)client.pump();
    (void)server.pump();
  }
  ASSERT_TRUE(client.established() && server.established());

  const common::u64 before = mac_failure_count();
  ASSERT_TRUE(issl_write(client, bytes_of("launch code 0000")).ok());
  // Flip one bit of the IV (right after the 4-byte record header): CBC
  // turns that into a single flipped plaintext bit in the first block, so
  // padding stays valid and the corruption reaches the MAC check itself.
  ASSERT_GT(c2s.buf_.size(), 4u);
  c2s.buf_[4] ^= 0x01;

  std::vector<u8> leaked;
  for (int i = 0; i < 50; ++i) {
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok() && !r->empty()) leaked = *r;
  }
  // The tampered record must never surface as plaintext, the session must
  // poison itself, and the failure must be attributed exactly once.
  EXPECT_TRUE(leaked.empty());
  EXPECT_TRUE(server.failed());
  EXPECT_EQ(mac_failure_count(), before + 1);

  // Fail closed stays closed: even a freshly sealed, valid record from the
  // honest peer is refused after the poisoning.
  ASSERT_TRUE(issl_write(client, bytes_of("legitimate retry")).ok());
  for (int i = 0; i < 50; ++i) {
    (void)server.pump();
    EXPECT_FALSE(issl_read(server).ok());
  }
  EXPECT_TRUE(server.failed());
}

// ---------------------------------------------------------------------------
// Full sessions over the simulated network
// ---------------------------------------------------------------------------

struct TlsHarness {
  SimNet net{99};
  TcpStack server_stack{net, kServerIp};
  TcpStack client_stack{net, kClientIp};
  common::Xorshift64 server_rng{11};
  common::Xorshift64 client_rng{22};
  int server_sock = -1;
  int client_sock = -1;
  std::unique_ptr<TcpStream> server_stream;
  std::unique_ptr<TcpStream> client_stream;

  void connect_transport() {
    auto l = server_stack.listen(kTlsPort);
    ASSERT_TRUE(l.ok());
    auto c = client_stack.connect(kServerIp, kTlsPort);
    ASSERT_TRUE(c.ok());
    client_sock = *c;
    net.tick(20);
    auto sc = server_stack.accept(*l);
    ASSERT_TRUE(sc.ok());
    server_sock = *sc;
    server_stream = std::make_unique<TcpStream>(server_stack, server_sock);
    client_stream = std::make_unique<TcpStream>(client_stack, client_sock);
  }

  // Pump both sessions + network until both established (or give up).
  bool drive(Session& client, Session& server, int rounds = 400) {
    for (int i = 0; i < rounds; ++i) {
      (void)client.pump();
      (void)server.pump();
      net.tick(1);
      if (client.established() && server.established()) return true;
      if (client.failed() && server.failed()) return false;
    }
    return client.established() && server.established();
  }
};

TEST(SessionTest, PskHandshakeEstablishes) {
  TlsHarness h;
  h.connect_transport();
  const auto psk = bytes_of("embedded-shared-secret");
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  EXPECT_TRUE(h.drive(client, server));
  EXPECT_EQ(client.state(), SessionState::kEstablished);
  EXPECT_EQ(server.state(), SessionState::kEstablished);
}

TEST(SessionTest, RsaHandshakeEstablishes) {
  TlsHarness h;
  h.connect_transport();
  Config cfg = Config::unix_default();
  auto client = issl_bind_client(*h.client_stream, cfg, h.client_rng);
  ServerIdentity id;
  id.rsa = crypto::rsa_generate(cfg.rsa_modulus_bits, h.server_rng);
  auto server = issl_bind_server(*h.server_stream, cfg, h.server_rng, id);
  EXPECT_TRUE(h.drive(client, server));
}

TEST(SessionTest, SecureEchoTransfersData) {
  TlsHarness h;
  h.connect_transport();
  const auto psk = bytes_of("k");
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  ASSERT_TRUE(h.drive(client, server));

  const auto msg = bytes_of("GET /balance HTTP/1.0");
  ASSERT_TRUE(issl_write(client, msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 200 && got.empty(); ++i) {
    h.net.tick(1);
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok()) got = *r;
  }
  EXPECT_EQ(got, msg);

  // And back.
  const auto reply = bytes_of("200 OK balance=42");
  ASSERT_TRUE(issl_write(server, reply).ok());
  got.clear();
  for (int i = 0; i < 200 && got.empty(); ++i) {
    h.net.tick(1);
    (void)client.pump();
    auto r = issl_read(client);
    if (r.ok()) got = *r;
  }
  EXPECT_EQ(got, reply);
}

TEST(SessionTest, PlaintextNeverOnTheWireAfterHandshake) {
  // Sniff every segment: the application payload must not appear.
  class Sniffer : public net::NetworkEndpoint {
   public:
    std::string all_bytes;
    void deliver(const net::Segment& s) override {
      all_bytes.append(s.payload.begin(), s.payload.end());
    }
    void on_tick(common::u64) override {}
  };
  TlsHarness h;
  h.connect_transport();
  const auto psk = bytes_of("sniffer-psk");
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  ASSERT_TRUE(h.drive(client, server));
  // Mirror all server-bound traffic to a sniffer address is not possible on
  // this point-to-point medium, so instead check the TCP payload the server
  // *received* via the record bytes: tap the stream by sealing and checking
  // the sealed wire (already covered) — here we check end-to-end that the
  // secret string does not appear in any segment payload counter. Simplest
  // honest check: encrypt, deliver, and scan the receive-side raw TCP data.
  const std::string secret = "SSN=123-45-6789";
  ASSERT_TRUE(issl_write(client, bytes_of(secret)).ok());
  // Capture raw TCP bytes at the server *before* the session consumes them.
  std::string raw;
  for (int i = 0; i < 100; ++i) {
    h.net.tick(1);
    u8 buf[512];
    auto n = h.server_stack.recv(h.server_sock, buf);
    if (n.ok() && *n > 0) raw.append(reinterpret_cast<char*>(buf), *n);
  }
  EXPECT_EQ(raw.find(secret), std::string::npos);
  EXPECT_GT(raw.size(), secret.size());  // something did arrive, encrypted
}

TEST(SessionTest, EmbeddedServerRefusesRsaClient) {
  // The port dropped RSA; a full-featured client asking for it must be
  // turned away (kx negotiation failure), not silently downgraded.
  TlsHarness h;
  h.connect_transport();
  auto client = issl_bind_client(*h.client_stream, Config::unix_default(),
                                 h.client_rng);
  ServerIdentity id;
  id.psk = bytes_of("psk-only-server");
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  EXPECT_FALSE(h.drive(client, server, 200));
  EXPECT_TRUE(server.failed());
  for (int i = 0; i < 100 && !client.failed(); ++i) {
    h.net.tick(1);
    (void)client.pump();
  }
  EXPECT_TRUE(client.failed());  // received handshake_failure alert
}

TEST(SessionTest, EmbeddedServerRefuses256BitRequest) {
  TlsHarness h;
  h.connect_transport();
  Config want256 = Config::embedded_port();
  want256.aes_key_bits = 256;  // the port only implemented 128
  auto client = issl_bind_client(*h.client_stream, want256, h.client_rng,
                                 bytes_of("p"));
  ServerIdentity id;
  id.psk = bytes_of("p");
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  EXPECT_FALSE(h.drive(client, server, 200));
  EXPECT_TRUE(server.failed());
}

TEST(SessionTest, WrongPskFailsHandshake) {
  TlsHarness h;
  h.connect_transport();
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, bytes_of("alpha"));
  ServerIdentity id;
  id.psk = bytes_of("beta");
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  EXPECT_FALSE(h.drive(client, server, 200));
  EXPECT_TRUE(server.failed());
}

TEST(SessionTest, HandshakeSurvivesPacketLoss) {
  TlsHarness h;
  h.connect_transport();
  h.net.set_loss_probability(0.2);
  const auto psk = bytes_of("lossy");
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  EXPECT_TRUE(h.drive(client, server, 20'000));  // TCP hides the loss
}

TEST(SessionTest, CleanCloseDeliversEmptyRead) {
  TlsHarness h;
  h.connect_transport();
  const auto psk = bytes_of("bye");
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  ASSERT_TRUE(h.drive(client, server));
  ASSERT_TRUE(issl_close(client).is_ok());
  for (int i = 0; i < 100 && !server.closed(); ++i) {
    h.net.tick(1);
    (void)server.pump();
  }
  EXPECT_TRUE(server.closed());
  auto r = issl_read(server);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());  // clean EOF
}

TEST(SessionTest, WriteBeforeEstablishedFails) {
  TlsHarness h;
  h.connect_transport();
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, bytes_of("x"));
  EXPECT_FALSE(issl_write(client, bytes_of("too soon")).ok());
}

TEST(SessionTest, LargeTransferAcrossManyRecords) {
  TlsHarness h;
  h.connect_transport();
  const auto psk = bytes_of("bulk");
  auto client = issl_bind_client(*h.client_stream, Config::embedded_port(),
                                 h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);
  ASSERT_TRUE(h.drive(client, server));
  std::vector<u8> big(50'000);
  common::Xorshift64 fill(5);
  fill.fill(big);
  ASSERT_TRUE(issl_write(client, big).ok());
  std::vector<u8> got;
  for (int i = 0; i < 5'000 && got.size() < big.size(); ++i) {
    h.net.tick(1);
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok()) got.insert(got.end(), r->begin(), r->end());
  }
  EXPECT_EQ(got, big);
}

TEST(ConfigTest, RejectsRsaModulusBelowPremasterFloor) {
  Config cfg = Config::unix_default();
  cfg.rsa_modulus_bits = 96;  // the 12-byte PKCS#1 floor: one premaster byte
  EXPECT_TRUE(cfg.valid());
  cfg.rsa_modulus_bits = 95;
  EXPECT_FALSE(cfg.valid());
  cfg.rsa_modulus_bits = 64;
  EXPECT_FALSE(cfg.valid());
  // The floor is an RSA-framing constraint; PSK has no premaster to carry.
  cfg.key_exchange = KeyExchange::kPsk;
  EXPECT_TRUE(cfg.valid());
}

TEST(ConfigTest, RejectsEngineBackendWithWideKeys) {
  Config cfg = Config::embedded_port();
  cfg.backend = Backend::kEngine;
  EXPECT_TRUE(cfg.valid());  // AES-128: the engine's one key size
  cfg.aes_key_bits = 256;
  EXPECT_FALSE(cfg.valid());  // offload hardware is AES-128 only
  cfg.backend = Backend::kC;
  EXPECT_TRUE(cfg.valid());  // software handles 256 fine
}

TEST(SessionTest, EngineWithWideKeysFailsAtConstruction) {
  TlsHarness h;
  h.connect_transport();
  Config cfg = Config::embedded_port();
  cfg.backend = Backend::kEngine;
  cfg.aes_key_bits = 256;  // non-engine-capable combo
  auto client = issl_bind_client(*h.client_stream, cfg, h.client_rng,
                                 bytes_of("psk"));
  EXPECT_TRUE(client.failed());  // before any pump: rejected at construction
  EXPECT_EQ(client.error().code(), common::ErrorCode::kFailedPrecondition);
}

TEST(SessionTest, NullEngineFallsBackToSoftwareAndInterops) {
  TlsHarness h;
  h.connect_transport();
  const auto psk = bytes_of("offload-psk");
  Config cfg = Config::embedded_port();
  cfg.backend = Backend::kEngine;  // asked for offload, wired no engine
  auto client = issl_bind_client(*h.client_stream, cfg, h.client_rng, psk);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*h.server_stream, Config::embedded_port(),
                                 h.server_rng, id);  // plain kC peer
  ASSERT_TRUE(h.drive(client, server));
  EXPECT_TRUE(client.engine_fallback());
  EXPECT_EQ(client.effective_backend(), Backend::kC);

  const auto msg = bytes_of("still works in software");
  ASSERT_TRUE(client.write(msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 200 && got.size() < msg.size(); ++i) {
    (void)client.pump();
    (void)server.pump();
    h.net.tick(1);
    auto r = server.read();
    if (r.ok()) got.insert(got.end(), r->begin(), r->end());
  }
  EXPECT_EQ(got, msg);
}

TEST(SessionTest, StateNames) {
  EXPECT_STREQ(session_state_name(SessionState::kEstablished), "ESTABLISHED");
  EXPECT_STREQ(session_state_name(SessionState::kFailed), "FAILED");
}

// ---------------------------------------------------------------------------
// Stall watchdog boundaries (regression: the old watchdog reset whenever any
// raw bytes arrived, so a one-byte-per-pump peer could evade it forever)
// ---------------------------------------------------------------------------

TEST(SessionTest, StallBudgetBoundaryFailsOnLimitNotBefore) {
  // Client against a silent server: the first pump sends ClientHello
  // (progress), every later pump stalls. limit-1 stalled pumps must leave
  // the session alive; the limit-th must fail it with kTimeout.
  PipeStream c2s, s2c;
  HalfStream client_end(c2s, s2c);
  common::Xorshift64 rng(41);
  Config cfg = Config::embedded_port();
  cfg.handshake_stall_limit = 25;
  auto client = issl_bind_client(client_end, cfg, rng, bytes_of("k"));
  ASSERT_TRUE(client.pump().is_ok());  // ClientHello out: progress
  for (std::size_t i = 0; i + 1 < cfg.handshake_stall_limit; ++i) {
    ASSERT_TRUE(client.pump().is_ok()) << "failed early at stall pump " << i;
  }
  EXPECT_EQ(client.stalled_pumps(), cfg.handshake_stall_limit - 1);
  EXPECT_FALSE(client.failed());
  auto s = client.pump();  // crosses the budget
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_TRUE(client.failed());
}

TEST(SessionTest, OneByteTricklePerPumpStillHitsTheStallBudget) {
  // Drip a valid ClientHello into the server one byte per pump. Bytes are
  // arriving every single pump, but no complete record ever lands within
  // the budget — the server must still time the handshake out.
  PipeStream c2s, s2c;
  HalfStream client_end(c2s, s2c), server_end(s2c, c2s);
  common::Xorshift64 crng(42), srng(43);
  auto client =
      issl_bind_client(client_end, Config::embedded_port(), crng, bytes_of("k"));
  ASSERT_TRUE(client.pump().is_ok());
  const std::vector<u8> hello = std::move(c2s.buf_);
  c2s.buf_.clear();
  Config scfg = Config::embedded_port();
  scfg.handshake_stall_limit = 10;  // far fewer pumps than hello has bytes
  ASSERT_GT(hello.size(), scfg.handshake_stall_limit + 1);
  ServerIdentity id;
  id.psk = bytes_of("k");
  auto server = issl_bind_server(server_end, scfg, srng, id);
  common::Status last = common::Status::ok();
  std::size_t fed = 0;
  while (fed < hello.size() && last.is_ok()) {
    c2s.buf_.push_back(hello[fed++]);
    last = server.pump();
  }
  EXPECT_FALSE(last.is_ok());
  EXPECT_EQ(last.code(), ErrorCode::kTimeout);
  EXPECT_LT(fed, hello.size());  // gave up before the record completed
  EXPECT_TRUE(server.failed());
}

TEST(SessionTest, PartialRecordTailNeverArrivingFailsWithTimeout) {
  // Established + idle never stalls, but a partial record sitting in
  // reassembly is a promise the peer must keep: if the tail never arrives,
  // the record budget fails the session instead of wedging the reader.
  PipeStream c2s, s2c;
  HalfStream client_end(c2s, s2c), server_end(s2c, c2s);
  common::Xorshift64 crng(44), srng(45);
  auto client =
      issl_bind_client(client_end, Config::embedded_port(), crng, bytes_of("k"));
  Config scfg = Config::embedded_port();
  scfg.record_stall_limit = 15;
  ServerIdentity id;
  id.psk = bytes_of("k");
  auto server = issl_bind_server(server_end, scfg, srng, id);
  for (int i = 0; i < 200 && !(client.established() && server.established());
       ++i) {
    (void)client.pump();
    (void)server.pump();
  }
  ASSERT_TRUE(client.established() && server.established());
  // Idle-established: pumps forever without stalling.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(server.pump().is_ok());
  EXPECT_EQ(server.stalled_pumps(), 0u);
  // Now deliver only a header fragment of a real record.
  ASSERT_TRUE(issl_write(client, bytes_of("half a record")).ok());
  const std::vector<u8> full = std::move(c2s.buf_);
  c2s.buf_.assign(full.begin(), full.begin() + 3);
  common::Status last = common::Status::ok();
  for (int i = 0; i < 100 && last.is_ok(); ++i) last = server.pump();
  EXPECT_FALSE(last.is_ok());
  EXPECT_EQ(last.code(), ErrorCode::kTimeout);
}

// ---------------------------------------------------------------------------
// Premaster transport vs small RSA moduli (regression: silent truncation)
// ---------------------------------------------------------------------------

common::u64 premaster_expansions() {
  const auto* c =
      telemetry::Registry::global().find_counter("issl.premaster_expansions");
  return c != nullptr ? c->value() : 0;
}

TEST(SessionTest, SmallRsaModulusExpandsPremasterOnBothSides) {
  // A 256-bit modulus can carry at most 21 premaster bytes under PKCS#1.
  // The old code silently keyed the whole session off that truncated seed;
  // now both sides must expand the carried seed to the full 48 bytes (and
  // say so), and the session must actually interoperate.
  TlsHarness h;
  h.connect_transport();
  Config cfg = Config::unix_default();
  ASSERT_EQ(cfg.rsa_modulus_bits, 256u);
  auto client = issl_bind_client(*h.client_stream, cfg, h.client_rng);
  ServerIdentity id;
  id.rsa = crypto::rsa_generate(cfg.rsa_modulus_bits, h.server_rng);
  auto server = issl_bind_server(*h.server_stream, cfg, h.server_rng, id);
  const common::u64 before = premaster_expansions();
  ASSERT_TRUE(h.drive(client, server));
  EXPECT_TRUE(client.premaster_expanded());
  EXPECT_TRUE(server.premaster_expanded());
  EXPECT_EQ(premaster_expansions(), before + 2);
  // Matching masters or nothing: prove it with an application-data echo.
  const auto msg = bytes_of("expanded but interoperable");
  ASSERT_TRUE(issl_write(client, msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 200 && got.empty(); ++i) {
    h.net.tick(1);
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok()) got = *r;
  }
  EXPECT_EQ(got, msg);
}

TEST(SessionTest, LargeRsaModulusCarriesFullPremasterUnexpanded) {
  TlsHarness h;
  h.connect_transport();
  Config cfg = Config::unix_default();
  cfg.rsa_modulus_bits = 512;  // 53-byte chunk >= 48: full premaster fits
  auto client = issl_bind_client(*h.client_stream, cfg, h.client_rng);
  ServerIdentity id;
  id.rsa = crypto::rsa_generate(cfg.rsa_modulus_bits, h.server_rng);
  auto server = issl_bind_server(*h.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(client, server));
  EXPECT_FALSE(client.premaster_expanded());
  EXPECT_FALSE(server.premaster_expanded());
}

TEST(SessionTest, TinyRsaModulusFailsClearlyInsteadOfTruncating) {
  // Below 12 modulus bytes PKCS#1 type-2 cannot carry a single payload
  // byte; the client must refuse with kFailedPrecondition up front.
  TlsHarness h;
  h.connect_transport();
  Config cfg = Config::unix_default();
  cfg.rsa_modulus_bits = 64;
  auto client = issl_bind_client(*h.client_stream, cfg, h.client_rng);
  ServerIdentity id;
  id.rsa = crypto::rsa_generate(cfg.rsa_modulus_bits, h.server_rng);
  auto server = issl_bind_server(*h.server_stream, cfg, h.server_rng, id);
  EXPECT_FALSE(h.drive(client, server, 200));
  EXPECT_TRUE(client.failed());
  EXPECT_EQ(client.error().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rmc::issl
