// Flight-recorder tracing tests (DESIGN.md §11): connection-id hashing, the
// zero-cost-when-off contract, cross-layer span capture over real TCP and
// issl traffic, the completeness audit E12 gates on, the battery-SRAM black
// box (tail == trace suffix, survival across a WDT warm reset), both
// exporters (Chrome trace JSON, libpcap), and the metric-handle-caching
// regression (steady-state polling does zero registry name lookups).
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "net/simnet.h"
#include "net/tcp.h"
#include "services/redirector.h"
#include "services/supervisor.h"
#include "telemetry/flightrec.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rmc {
namespace {

using common::u32;
using common::u64;
using common::u8;
using telemetry::TraceEvent;
using telemetry::TraceLayer;
using telemetry::Tracer;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

/// Tracer::global() is process-wide state shared by every test in this
/// binary; scope enablement so one test's capture never leaks into the next.
struct ScopedTracer {
  explicit ScopedTracer(bool pcap = false) {
    auto& t = Tracer::global();
    t.clear();
    t.set_enabled(true);
    t.set_pcap_capture(pcap);
  }
  ~ScopedTracer() {
    auto& t = Tracer::global();
    t.set_enabled(false);
    t.set_pcap_capture(false);
    t.attach_ring(nullptr);
    t.clear();
  }
};

// ---------------------------------------------------------------------------
// Connection ids
// ---------------------------------------------------------------------------

TEST(TraceConnId, OrderlessNonzeroAndDistinct) {
  const u32 ab = telemetry::trace_conn_id(1, 4433, 3, 2001);
  const u32 ba = telemetry::trace_conn_id(3, 2001, 1, 4433);
  EXPECT_EQ(ab, ba);  // both directions of one connection share a track
  EXPECT_NE(ab, 0u);  // 0 is reserved for "no connection"

  // Different tuples get different ids (not a guarantee of the hash, but a
  // collision among a handful of nearby tuples would make traces useless).
  const u32 other_port = telemetry::trace_conn_id(1, 4433, 3, 2002);
  const u32 other_ip = telemetry::trace_conn_id(1, 4433, 4, 2001);
  EXPECT_NE(ab, other_port);
  EXPECT_NE(ab, other_ip);
  EXPECT_NE(other_port, other_ip);
}

// ---------------------------------------------------------------------------
// Hand-built audits (no simulation; exercises the invariant logic directly)
// ---------------------------------------------------------------------------

TraceEvent ev(u64 t, TraceLayer layer, u8 event, u32 conn, u32 a = 0,
              u32 b = 0) {
  TraceEvent e;
  e.t_ms = t;
  e.layer = static_cast<u8>(layer);
  e.event = event;
  e.conn = conn;
  e.a = a;
  e.b = b;
  return e;
}

TEST(TraceAudit, OrphanHandshakeIsExcusedByATcpTerminalAfterItsStart) {
  // conn 5: handshake starts, never ends, but the connection is torn down
  // (board died mid-handshake; the RST terminal accounts for it).
  // conn 9: handshake starts after the terminal — nothing excuses it.
  const std::vector<TraceEvent> events = {
      ev(10, TraceLayer::kIssl, telemetry::IsslTrace::kHello, 5, 0),
      ev(20, TraceLayer::kTcp, telemetry::TcpTrace::kState, 5, 4, 0),
      ev(30, TraceLayer::kTcp, telemetry::TcpTrace::kState, 9, 0, 4),
      ev(40, TraceLayer::kIssl, telemetry::IsslTrace::kHello, 9, 0),
  };
  const telemetry::TraceAudit audit = telemetry::audit_trace(events);
  EXPECT_EQ(audit.orphan_handshakes, 1u);  // conn 9 only
  EXPECT_FALSE(audit.clean());
}

TEST(TraceAudit, EstablishedWithoutTerminalIsAnOrphanConnection) {
  const std::vector<TraceEvent> events = {
      ev(10, TraceLayer::kTcp, telemetry::TcpTrace::kState, 7, 3, 4),
  };
  const telemetry::TraceAudit audit = telemetry::audit_trace(events);
  EXPECT_EQ(audit.established_connections, 1u);
  EXPECT_EQ(audit.orphan_connections, 1u);
  EXPECT_FALSE(audit.clean());
}

TEST(TraceAudit, TimeWaitCountsAsATerminal) {
  const std::vector<TraceEvent> events = {
      ev(10, TraceLayer::kTcp, telemetry::TcpTrace::kState, 7, 3, 4),
      ev(20, TraceLayer::kTcp, telemetry::TcpTrace::kState, 7, 6, 9),
  };
  const telemetry::TraceAudit audit = telemetry::audit_trace(events);
  EXPECT_EQ(audit.orphan_connections, 0u);
  EXPECT_TRUE(audit.clean());
}

// ---------------------------------------------------------------------------
// Formatting / exporters that need no capture
// ---------------------------------------------------------------------------

TEST(TraceFormat, PostmortemLineIsStable) {
  const TraceEvent e =
      ev(1234, TraceLayer::kTcp, telemetry::TcpTrace::kState, 0xABCD, 4, 5);
  EXPECT_EQ(telemetry::format_trace_event(e),
            "trace t=1234 conn=0000abcd tcp.state a=4 b=5");
}

TEST(TraceFormat, ChromeJsonHasTheTraceEventShape) {
  const std::vector<TraceEvent> events = {
      ev(10, TraceLayer::kTcp, telemetry::TcpTrace::kState, 7, 3, 4),
      ev(20, TraceLayer::kIssl, telemetry::IsslTrace::kEstablished, 7, 0, 1),
      ev(30, TraceLayer::kTcp, telemetry::TcpTrace::kState, 7, 6, 9),
  };
  const std::string json = telemetry::chrome_trace_json(events);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Braces balance (cheap structural check; names contain no braces).
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

#if RMC_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Capture over live scenarios
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  auto& tracer = Tracer::global();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  tracer.emit(TraceLayer::kTcp, telemetry::TcpTrace::kState, 1, 2, 3);
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_FALSE(tracer.pcap_capture());
}

TEST(TracerTest, TcpConnectAndCloseLeaveACleanAudit) {
  ScopedTracer scoped;
  net::SimNet medium(42);
  net::TcpStack server(medium, 1);
  net::TcpStack client(medium, 2);
  auto listener = server.listen(80);
  ASSERT_TRUE(listener.ok());
  auto sock = client.connect(1, 80);
  ASSERT_TRUE(sock.ok());
  for (int i = 0; i < 50 && !client.is_established(*sock); ++i) {
    medium.tick(1);
  }
  ASSERT_TRUE(client.is_established(*sock));
  // The server reaches ESTABLISHED one delivery later (the client's ACK).
  auto accepted = server.accept(*listener);
  for (int i = 0; i < 20 && !accepted.ok(); ++i) {
    medium.tick(1);
    accepted = server.accept(*listener);
  }
  ASSERT_TRUE(accepted.ok());
  ASSERT_TRUE(client.close(*sock).is_ok());
  for (int i = 0; i < 20; ++i) medium.tick(1);
  ASSERT_TRUE(server.close(*accepted).is_ok());
  for (int i = 0; i < 200; ++i) medium.tick(1);

  const auto& events = Tracer::global().events();
  ASSERT_FALSE(events.empty());
  const telemetry::TraceAudit audit = telemetry::audit_trace(events);
  EXPECT_EQ(audit.established_connections, 1u);
  EXPECT_EQ(audit.orphan_connections, 0u);
  EXPECT_TRUE(audit.clean());
  // Both endpoints emitted under one conn id, and net events share it too.
  bool net_seen = false;
  for (const TraceEvent& e : events) {
    if (e.layer == static_cast<u8>(TraceLayer::kNet) && e.conn != 0) {
      net_seen = true;
      EXPECT_EQ(e.conn, events.front().conn);
    }
  }
  EXPECT_TRUE(net_seen);
}

TEST(TracerTest, FinWait2TimeoutGivesAbandonedHalfClosesATerminal) {
  ScopedTracer scoped;
  net::SimNet medium(43);
  net::TcpStack server(medium, 1);
  net::TcpStack client(medium, 2);
  client.set_fin_wait2_timeout_ms(500);
  ASSERT_TRUE(server.listen(80).ok());
  auto sock = client.connect(1, 80);
  ASSERT_TRUE(sock.ok());
  for (int i = 0; i < 50 && !client.is_established(*sock); ++i) {
    medium.tick(1);
  }
  ASSERT_TRUE(client.close(*sock).is_ok());
  // Let the close handshake reach FIN_WAIT_2 (FIN acked), then cut the
  // wire so the server's own FIN can never arrive.
  for (int i = 0; i < 20; ++i) medium.tick(1);
  ASSERT_EQ(client.state(*sock), net::TcpState::kFinWait2);
  medium.set_fault_plan(net::FaultPlan::uniform_loss(1.0));
  for (int i = 0; i < 600; ++i) medium.tick(1);
  EXPECT_EQ(client.state(*sock), net::TcpState::kClosed);
  // The quiet kill emitted the terminal transition the audit needs, and
  // sent no RST (there is nobody to receive one).
  const telemetry::TraceAudit audit =
      telemetry::audit_trace(Tracer::global().events());
  EXPECT_EQ(audit.orphan_connections, 0u);
  EXPECT_EQ(client.resets_sent(), 0u);
}

// ---------------------------------------------------------------------------
// Secure board scenarios (handshake spans, black box, lookup regression)
// ---------------------------------------------------------------------------

constexpr net::IpAddr kBoardIp = 1;
constexpr net::IpAddr kBackendIp = 2;
constexpr net::IpAddr kClientIp = 3;
constexpr net::Port kTlsPort = 4433;
constexpr net::Port kBackendPort = 8000;

struct TraceWorld {
  net::SimNet net{99};
  net::TcpStack backend_stack{net, kBackendIp};
  net::TcpStack client_stack{net, kClientIp};
  services::EchoBackend backend{backend_stack, kBackendPort};

  services::ServiceBoardConfig board_config() {
    services::ServiceBoardConfig cfg;
    cfg.redirector.listen_port = kTlsPort;
    cfg.redirector.backend_ip = kBackendIp;
    cfg.redirector.backend_port = kBackendPort;
    cfg.redirector.secure = true;
    cfg.redirector.psk = bytes_of("trace-psk");
    cfg.board_ip = kBoardIp;
    cfg.wdt_period_ms = 500;
    cfg.reboot_ms = 2;
    return cfg;
  }

  void drive(services::ServiceBoard& board, services::Client* client,
             u64 ms) {
    for (u64 i = 0; i < ms; ++i) {
      board.poll();
      backend.poll();
      if (client) (void)client->poll();
      net.tick(1);
    }
  }

  bool echo_once(services::ServiceBoard& board, std::string_view msg,
                 u64 seed) {
    services::Client c(client_stack, kBoardIp, kTlsPort, true,
                       issl::Config::embedded_port(), bytes_of("trace-psk"),
                       seed);
    if (!c.start().is_ok()) return false;
    if (!c.send(bytes_of(msg)).is_ok()) return false;
    for (u64 i = 0; i < 1'200; ++i) {
      board.poll();
      backend.poll();
      (void)c.poll();
      net.tick(1);
      if (c.received().size() >= msg.size()) {
        c.close();
        drive(board, &c, 120);
        return true;
      }
    }
    return false;
  }
};

TEST(TracerTest, HandshakeSpansNestInsideTheirConnection) {
  TraceWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  ScopedTracer scoped;  // after the backend, before the board: clean capture
  services::ServiceBoard board(w.net, w.board_config());
  ASSERT_TRUE(w.echo_once(board, "span nesting", 0x7001));

  const telemetry::TraceAudit audit =
      telemetry::audit_trace(Tracer::global().events());
  // Client and server each complete a span on the front connection; the
  // redirector's backend hop establishes without issl.
  EXPECT_GE(audit.handshakes_completed, 2u);
  EXPECT_EQ(audit.orphan_handshakes, 0u);
  EXPECT_EQ(audit.nesting_violations, 0u);
  EXPECT_EQ(audit.orphan_connections, 0u);
  EXPECT_TRUE(audit.clean());
  // Slot lifecycle rode the same conn id as the TLS handshake.
  bool slot_open = false;
  for (const TraceEvent& e : Tracer::global().events()) {
    if (e.layer == static_cast<u8>(TraceLayer::kService) &&
        e.event == telemetry::ServiceTrace::kSlotOpen && e.conn != 0) {
      slot_open = true;
    }
  }
  EXPECT_TRUE(slot_open);
}

TEST(FlightRecorderTest, TailIsExactlyTheTraceSuffix) {
  ScopedTracer scoped;
  telemetry::FlightRecorder ring;
  auto& tracer = Tracer::global();
  tracer.attach_ring(&ring);
  constexpr std::size_t kEmit = telemetry::kFlightRecorderCapacity * 3 + 17;
  for (std::size_t i = 0; i < kEmit; ++i) {
    tracer.set_now_ms(i);
    tracer.emit(TraceLayer::kNet, telemetry::NetTrace::kSend,
                static_cast<u32>(i + 1), static_cast<u32>(i), 0);
  }
  EXPECT_EQ(ring.total(), kEmit);
  EXPECT_EQ(ring.size(), telemetry::kFlightRecorderCapacity);
  const std::vector<TraceEvent> tail = ring.tail();
  const auto& events = tracer.events();
  ASSERT_EQ(tail.size(), telemetry::kFlightRecorderCapacity);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(),
                         events.end() - static_cast<long>(tail.size())));
  EXPECT_EQ(ring.tail_lines().size(), tail.size());
}

TEST(FlightRecorderTest, BlackBoxSurvivesAWdtBiteIntoThePostmortem) {
  TraceWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  ScopedTracer scoped;
  services::ServiceBoard board(w.net, w.board_config());
  ASSERT_TRUE(w.echo_once(board, "before the bite", 0x7002));
  const u64 recorded_before = board.battery().flightrec.total();
  ASSERT_GT(recorded_before, 0u);

  board.wedge_for_ms(600);
  w.drive(board, nullptr, 700);
  ASSERT_EQ(board.wdt_bites(), 1u);
  ASSERT_TRUE(board.up());

  // The ring lives in the BatteryFile: the warm reset preserved it.
  EXPECT_GE(board.battery().flightrec.total(), recorded_before);
  // The supervisor dumped the pre-death tail into the postmortem.
  u64 trace_lines = 0;
  for (const auto& line : board.postmortem()) {
    if (line.rfind("trace ", 0) == 0) ++trace_lines;
  }
  EXPECT_GT(trace_lines, 0u);
  EXPECT_EQ(trace_lines, board.battery().flightrec.tail_lines().size());
}

TEST(TracerTest, PcapCaptureIsAValidLibpcapFile) {
  ScopedTracer scoped(/*pcap=*/true);
  net::SimNet medium(44);
  net::TcpStack server(medium, 1);
  net::TcpStack client(medium, 2);
  ASSERT_TRUE(server.listen(80).ok());
  auto sock = client.connect(1, 80);
  ASSERT_TRUE(sock.ok());
  for (int i = 0; i < 50 && !client.is_established(*sock); ++i) {
    medium.tick(1);
  }
  ASSERT_TRUE(client.close(*sock).is_ok());
  for (int i = 0; i < 200; ++i) medium.tick(1);

  auto& tracer = Tracer::global();
  ASSERT_GT(tracer.pcap_packets(), 0u);
  const std::vector<u8> bytes = tracer.pcap_file_bytes();
  ASSERT_GE(bytes.size(), 24u);
  auto u32le = [&](std::size_t at) {
    return static_cast<u32>(bytes[at]) | (static_cast<u32>(bytes[at + 1]) << 8) |
           (static_cast<u32>(bytes[at + 2]) << 16) |
           (static_cast<u32>(bytes[at + 3]) << 24);
  };
  auto u16le = [&](std::size_t at) {
    return static_cast<u32>(bytes[at]) | (static_cast<u32>(bytes[at + 1]) << 8);
  };
  EXPECT_EQ(u32le(0), 0xA1B2C3D4u);  // magic, microsecond timestamps
  EXPECT_EQ(u16le(4), 2u);           // version 2.4
  EXPECT_EQ(u16le(6), 4u);
  EXPECT_EQ(u32le(20), 1u);  // linktype: Ethernet

  // Walk every packet record: lengths consistent, Ethernet + IPv4 framing.
  std::size_t at = 24;
  u64 packets = 0;
  while (at < bytes.size()) {
    ASSERT_LE(at + 16, bytes.size());
    const u32 incl = u32le(at + 8);
    const u32 orig = u32le(at + 12);
    EXPECT_EQ(incl, orig);  // nothing truncated in a simulated capture
    ASSERT_LE(at + 16 + incl, bytes.size());
    ASSERT_GE(incl, 14u + 20u);                  // Ethernet + IPv4 minimum
    EXPECT_EQ(u16le(at + 16 + 12), 0x0008u);     // ethertype IPv4 (BE 0x0800)
    EXPECT_EQ(bytes[at + 16 + 14] >> 4, 4);      // IP version nibble
    at += 16 + incl;
    ++packets;
  }
  EXPECT_EQ(packets, tracer.pcap_packets());
}

TEST(RegistryRegression, SteadyStatePollingDoesZeroNameLookups) {
  // Satellite of DESIGN.md §11: hot paths pin instrument handles once
  // (function-local static references), so a polling loop — ticks, WDT
  // hits, live traffic bookkeeping — must not resolve metric names per
  // event. A regression here turns every packet into a map lookup.
  TraceWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  services::ServiceBoard board(w.net, w.board_config());
  ASSERT_TRUE(w.echo_once(board, "warm the handle caches", 0x7003));

  auto& registry = telemetry::Registry::global();
  const u64 before = registry.name_lookups();
  ASSERT_TRUE(w.echo_once(board, "and again with pinned handles", 0x7004));
  w.drive(board, nullptr, 500);
  EXPECT_EQ(registry.name_lookups(), before);
}

#endif  // RMC_TELEMETRY_ENABLED

}  // namespace
}  // namespace rmc
