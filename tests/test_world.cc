// Whole-world integration stress: the embedded (Figure-3/PSK) and Unix
// (fork/RSA) redirectors serving concurrently on one lossy medium, with UDP
// and ICMP background noise, multiple secure clients against each, and
// everything verified end-to-end. The closest this repository gets to the
// deployment the paper describes.
#include <gtest/gtest.h>

#include <memory>

#include "services/redirector.h"

namespace rmc::services {
namespace {

using common::u8;
using net::IpAddr;

constexpr IpAddr kRmcBoard = 1;
constexpr IpAddr kUnixHost = 2;
constexpr IpAddr kBackendHost = 3;
constexpr IpAddr kClientHost = 4;
constexpr IpAddr kNoiseHost = 5;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

TEST(World, TwoGenerationsOfServiceUnderLossAndNoise) {
  net::SimNet medium(0xD47E2003);
  medium.set_loss_probability(0.05);

  net::TcpStack rmc_stack(medium, kRmcBoard);
  net::TcpStack unix_stack(medium, kUnixHost);
  net::TcpStack backend_stack(medium, kBackendHost);
  net::TcpStack client_stack(medium, kClientHost);
  net::TcpStack noise_stack(medium, kNoiseHost);

  EchoBackend backend(backend_stack, 8000, [](u8 b) {
    return static_cast<u8>(std::toupper(b));
  });
  ASSERT_TRUE(backend.start().is_ok());
  ASSERT_TRUE(noise_stack.udp_bind(9999).is_ok());

  // The embedded service (PSK, 3 slots).
  RedirectorConfig rmc_cfg;
  rmc_cfg.listen_port = 4433;
  rmc_cfg.backend_ip = kBackendHost;
  rmc_cfg.backend_port = 8000;
  rmc_cfg.psk = bytes_of("fleet-psk");
  rmc_cfg.handler_slots = 3;
  RmcRedirector rmc_red(rmc_stack, medium, rmc_cfg);
  ASSERT_TRUE(rmc_red.start().is_ok());

  // The Unix original (RSA).
  common::Xorshift64 keygen(0xCAFE);
  RedirectorConfig unix_cfg;
  unix_cfg.listen_port = 4433;
  unix_cfg.backend_ip = kBackendHost;
  unix_cfg.backend_port = 8000;
  unix_cfg.tls = issl::Config::unix_default();
  unix_cfg.rsa = crypto::rsa_generate(unix_cfg.tls.rsa_modulus_bits, keygen);
  UnixRedirector unix_red(unix_stack, unix_cfg);
  ASSERT_TRUE(unix_red.start().is_ok());

  // Three clients to each service, distinct payloads.
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<std::string> expected;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<Client>(
        client_stack, kRmcBoard, 4433, true, issl::Config::embedded_port(),
        bytes_of("fleet-psk"), 0xA000 + i));
    expected.push_back("RMC REQ " + std::to_string(i));
    ASSERT_TRUE(clients.back()->start().is_ok());
    ASSERT_TRUE(
        clients.back()->send(bytes_of("rmc req " + std::to_string(i))).is_ok());
  }
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<Client>(
        client_stack, kUnixHost, 4433, true, issl::Config::unix_default(),
        std::vector<u8>{}, 0xB000 + i));
    expected.push_back("UNIX REQ " + std::to_string(i));
    ASSERT_TRUE(clients.back()->start().is_ok());
    ASSERT_TRUE(clients.back()
                    ->send(bytes_of("unix req " + std::to_string(i)))
                    .is_ok());
  }

  // Drive the world; sprinkle UDP/ICMP noise every few ticks.
  int complete = 0;
  for (int round = 0; round < 60'000 && complete < 6; ++round) {
    if (round % 7 == 0) {
      client_stack.udp_sendto(kNoiseHost, 9999, bytes_of("noise"), 777);
      client_stack.ping(kNoiseHost, static_cast<common::u32>(round));
    }
    rmc_red.poll();
    unix_red.poll();
    backend.poll();
    medium.tick(1);
    complete = 0;
    for (std::size_t i = 0; i < clients.size(); ++i) {
      (void)clients[i]->poll();
      if (clients[i]->received().size() >= expected[i].size()) ++complete;
    }
  }

  ASSERT_EQ(complete, 6) << "some clients never completed under loss";
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(std::string(clients[i]->received().begin(),
                          clients[i]->received().end()),
              expected[i]);
  }
  // Noise flowed too, independently of the TCP world.
  int noise_frames = 0;
  while (noise_stack.udp_recvfrom(9999).ok()) ++noise_frames;
  EXPECT_GT(noise_frames, 10);
  EXPECT_GT(client_stack.echo_replies(), 10u);
  // Loss really happened and TCP really hid it.
  EXPECT_GT(medium.segments_dropped(), 0u);
  EXPECT_GT(rmc_stack.retransmissions() + unix_stack.retransmissions() +
                client_stack.retransmissions(),
            0u);
  EXPECT_EQ(rmc_red.stats().handshake_failures, 0u);
  EXPECT_EQ(unix_red.stats().handshake_failures, 0u);
}

}  // namespace
}  // namespace rmc::services
