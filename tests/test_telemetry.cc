// Tests for src/telemetry: metrics registry semantics, histogram bucketing,
// span timing, JSON writing, and the cycle-attribution profiler.
//
// The profiler tests run a small known rasm program and assert attribution
// *exactly*: steps per region, cycle sums that reconcile against the CPU's
// own counter with no remainder, linearity (two calls cost exactly twice
// one call), and the zero-perturbation contract (attaching an observer does
// not change the cycle stream).
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/prng.h"
#include "rabbit/board.h"
#include "rasm/assembler.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace rmc {
namespace {

using common::u64;
using telemetry::CycleProfiler;
using telemetry::JsonWriter;
using telemetry::ProfileEntry;
using telemetry::Registry;

// ---------------------------------------------------------------------------
// Metrics core
// ---------------------------------------------------------------------------

// Recording is compiled out under RMC_TELEMETRY=OFF (values stay zero by
// contract), so the value-asserting tests only apply to the ON build; the
// structural tests (JSON writer, profiler) run either way.
#if RMC_TELEMETRY_ENABLED

TEST(Registry, LookupCreatesOnceAndReturnsStableReferences) {
  Registry r;
  telemetry::Counter& a = r.counter("hits");
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5u);
  // Same name -> same instrument, not a fresh zeroed one.
  EXPECT_EQ(&r.counter("hits"), &a);
  EXPECT_EQ(r.counter("hits").value(), 5u);
  EXPECT_EQ(r.size(), 1u);

  EXPECT_EQ(r.find_counter("hits"), &a);
  EXPECT_EQ(r.find_counter("missing"), nullptr);
  EXPECT_EQ(r.find_gauge("hits"), nullptr);  // separate namespaces per kind
}

TEST(Registry, ResetZeroesValuesButKeepsInstruments) {
  Registry r;
  telemetry::Counter& c = r.counter("c");
  telemetry::Gauge& g = r.gauge("g");
  c.add(7);
  g.set(3);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max(), 3);

  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max(), 0);
  // References survive reset and keep recording.
  c.add();
  EXPECT_EQ(r.find_counter("c")->value(), 1u);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Registry, GlobalIsASingleton) {
  Registry::global().counter("test_telemetry.probe").add();
  EXPECT_EQ(Registry::global().find_counter("test_telemetry.probe")->value(),
            1u);
  Registry::global().reset();
}

TEST(Histogram, BucketsByUpperBoundWithOverflow) {
  Registry r;
  const u64 bounds[] = {10, 100};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  h.record(5);    // <= 10          -> bucket 0
  h.record(10);   // boundary is inclusive -> bucket 0
  h.record(11);   // <= 100         -> bucket 1
  h.record(101);  // past all bounds -> overflow bucket

  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 127u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 101u);
  EXPECT_DOUBLE_EQ(h.mean(), 127.0 / 4.0);

  // Creation bounds win; a second lookup with different bounds is ignored.
  const u64 other_bounds[] = {1};
  EXPECT_EQ(&r.histogram("lat", other_bounds), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Registry r;
  const u64 bounds[] = {10, 100};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 0.0);
}

TEST(Histogram, PercentileSingleBucketInterpolatesBetweenMinAndBound) {
  Registry r;
  const u64 bounds[] = {100};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  for (u64 v = 20; v <= 80; v += 20) h.record(v);  // 20 40 60 80, bucket 0
  // Every mass is in bucket 0: edges are min()=20 and max()=80 (bound 100
  // clamped to the recorded max), so percentiles stay within what was seen.
  EXPECT_GE(h.percentile(50.0), 20.0);
  EXPECT_LE(h.percentile(50.0), 80.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 80.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 20.0);
}

TEST(Histogram, PercentileAllOverflowMassUsesRecordedMax) {
  Registry r;
  const u64 bounds[] = {10};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  h.record(500);
  h.record(900);
  h.record(1'000);
  // All mass beyond the last bound: the overflow bucket's edges are
  // min()=500 and max()=1000, never infinity or the bound.
  const double p99 = h.percentile(99.0);
  EXPECT_GE(p99, 500.0);
  EXPECT_LE(p99, 1'000.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1'000.0);
}

TEST(Histogram, PercentileExactBoundaryValues) {
  Registry r;
  const u64 bounds[] = {10, 100};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  for (int i = 0; i < 50; ++i) h.record(10);   // boundary -> bucket 0
  for (int i = 0; i < 50; ++i) h.record(100);  // boundary -> bucket 1
  // p50 falls exactly on the edge between the buckets; interpolation must
  // land on the shared bound, and p100 on the recorded max.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
  const double p99 = h.percentile(99.0);
  EXPECT_GE(p99, 10.0);
  EXPECT_LE(p99, 100.0);
}

TEST(Histogram, PercentileMonotoneInP) {
  Registry r;
  const u64 bounds[] = {10, 100, 1'000};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  common::Xorshift64 rng(99);
  for (int i = 0; i < 500; ++i) h.record(rng.next() % 2'000);
  double prev = h.percentile(0.0);
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
  EXPECT_GE(h.percentile(0.0), static_cast<double>(h.min()));
  EXPECT_LE(h.percentile(100.0), static_cast<double>(h.max()));
}

TEST(Span, RecordsElapsedMicrosOnDestructionExactlyOnce) {
  Registry r;
  const u64 bounds[] = {1'000'000};
  telemetry::Histogram& h = r.histogram("span_us", bounds);
  {
    telemetry::Span span(h);
    EXPECT_EQ(h.count(), 0u);  // nothing recorded until scope exit
  }
  EXPECT_EQ(h.count(), 1u);

  telemetry::Span span(h);
  span.stop();
  EXPECT_EQ(h.count(), 2u);
  // Destructor after stop() must not double-record. (Checked below.)
  {
    telemetry::Span inner(h);
    inner.stop();
  }
  EXPECT_EQ(h.count(), 3u);
}

#endif  // RMC_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

TEST(JsonWriter, EscapesAndNestsDeterministically) {
  JsonWriter w;
  w.begin_object();
  w.kv("a\"b", "line\nbreak\ttab\\");
  w.key("arr");
  w.begin_array();
  w.value(1);
  w.value(true);
  w.null();
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.balanced());
  EXPECT_EQ(w.str(),
            "{\"a\\\"b\":\"line\\nbreak\\ttab\\\\\","
            "\"arr\":[1,true,null,2.5]}");
}

TEST(JsonWriter, BalancedTracksOpenScopes) {
  JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.balanced());
  w.end_object();
  EXPECT_TRUE(w.balanced());
}

#if RMC_TELEMETRY_ENABLED
TEST(JsonWriter, RegistryExportRoundTrip) {
  Registry r;
  r.counter("zeta").add(3);
  r.counter("alpha").add(1);
  r.gauge("g").set(-2);
  const u64 bounds[] = {10, 100};
  telemetry::Histogram& h = r.histogram("h", bounds);
  h.record(5);
  h.record(10);
  h.record(11);
  h.record(101);

  // Exact text: sorted names, stable field order — the schema benches diff.
  EXPECT_EQ(r.to_json(),
            "{\"counters\":{\"alpha\":1,\"zeta\":3},"
            "\"gauges\":{\"g\":{\"value\":-2,\"max\":0}},"
            "\"histograms\":{\"h\":{\"count\":4,\"sum\":127,\"min\":5,"
            "\"max\":101,\"bounds\":[10,100],\"counts\":[2,1,1],"
            "\"cum_counts\":[2,3,4]}}}");
}
#endif  // RMC_TELEMETRY_ENABLED

TEST(JsonWriter, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "test_telemetry_rt.json";
  const std::string text = "{\"k\":\"v\"}";
  ASSERT_TRUE(telemetry::write_file(path, text));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), text + "\n");
}

// ---------------------------------------------------------------------------
// Cycle-attribution profiler
// ---------------------------------------------------------------------------

// f1 calls f2 twice; f2 is two instructions. The `func` directives feed
// Image::functions, so attribution regions are exactly {f1, f2} plus the
// synthetic "(other)" (the call sentinel's HALT).
constexpr const char* kProgram = R"(
        func f1, f2
        org 0100h
f1:
        call f2
        call f2
        ret
f2:
        ld a, 5
        ret
)";

rabbit::Image assemble_program() {
  auto out = rasm::assemble(kProgram);
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  return out->image;
}

const ProfileEntry* find_region(const std::vector<ProfileEntry>& entries,
                                const std::string& name) {
  for (const ProfileEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(CycleProfilerTest, FuncDirectiveFillsImageFunctions) {
  const rabbit::Image image = assemble_program();
  ASSERT_EQ(image.functions.size(), 2u);
  EXPECT_EQ(image.functions[0], "f1");
  EXPECT_EQ(image.functions[1], "f2");
}

TEST(CycleProfilerTest, FuncDirectiveRejectsUnknownLabel) {
  auto out = rasm::assemble("        func nosuch\n        org 0100h\nf1: ret\n");
  EXPECT_FALSE(out.ok());
}

TEST(CycleProfilerTest, AttributesKnownProgramExactly) {
  const rabbit::Image image = assemble_program();
  rabbit::Board board;
  board.load(image);
  CycleProfiler prof;
  prof.attach(board.cpu(), image);
  const u64 cyc0 = board.cpu().cycles();

  auto res = board.call("f1");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->stop, rabbit::StopReason::kHalted);

  // Exact reconciliation: every cycle the CPU counted is attributed.
  EXPECT_EQ(prof.total_cycles(), board.cpu().cycles() - cyc0);

  const auto flat = prof.flat();
  u64 sum = 0;
  for (const ProfileEntry& e : flat) sum += e.cycles;
  EXPECT_EQ(sum, prof.total_cycles());

  // Steps are instruction-exact: f1 = call+call+ret, f2 = 2*(ld+ret),
  // (other) = the sentinel HALT.
  const ProfileEntry* f1 = find_region(flat, "f1");
  const ProfileEntry* f2 = find_region(flat, "f2");
  const ProfileEntry* other = find_region(flat, CycleProfiler::kOther);
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(f1->steps, 3u);
  EXPECT_EQ(f2->steps, 4u);
  EXPECT_EQ(other->steps, 1u);

  // Region boundaries come from the function map: f1 = [0x100, f2).
  EXPECT_EQ(f1->phys_lo, 0x100u);
  EXPECT_EQ(f1->phys_hi, f2->phys_lo);
  EXPECT_GT(f2->phys_hi, f2->phys_lo);
}

TEST(CycleProfilerTest, AttributionIsLinearInCalls) {
  const rabbit::Image image = assemble_program();
  rabbit::Board board;
  board.load(image);
  CycleProfiler prof;
  prof.attach(board.cpu(), image);

  // One direct call to f2 (ld+ret, then the sentinel HALT).
  ASSERT_TRUE(board.call("f2").ok());
  const ProfileEntry* f2_single = find_region(prof.flat(), "f2");
  ASSERT_NE(f2_single, nullptr);
  const u64 single_cycles = f2_single->cycles;
  EXPECT_EQ(f2_single->steps, 2u);

  // f1 invokes f2 twice: exactly double, no smearing into other regions.
  prof.reset_counts();
  ASSERT_TRUE(board.call("f1").ok());
  const ProfileEntry* f2_double = find_region(prof.flat(), "f2");
  ASSERT_NE(f2_double, nullptr);
  EXPECT_EQ(f2_double->cycles, 2 * single_cycles);
  EXPECT_EQ(f2_double->steps, 4u);
}

TEST(CycleProfilerTest, PhasesPartitionTheTotal) {
  const rabbit::Image image = assemble_program();
  rabbit::Board board;
  board.load(image);
  CycleProfiler prof;
  prof.attach(board.cpu(), image);

  prof.set_phase("first");
  ASSERT_TRUE(board.call("f2").ok());
  prof.set_phase("second");
  ASSERT_TRUE(board.call("f1").ok());

  EXPECT_EQ(prof.phase_cycles("first") + prof.phase_cycles("second"),
            prof.total_cycles());
  EXPECT_EQ(prof.phase_cycles("init"), 0u);  // nothing ran before first

  // The first phase never entered f1.
  EXPECT_EQ(find_region(prof.flat("first"), "f1"), nullptr);
  EXPECT_NE(find_region(prof.flat("second"), "f1"), nullptr);
}

TEST(CycleProfilerTest, ObserverDoesNotPerturbTheSimulation) {
  const rabbit::Image image = assemble_program();

  rabbit::Board plain;
  plain.load(image);
  auto res_plain = plain.call("f1");
  ASSERT_TRUE(res_plain.ok());

  rabbit::Board observed;
  observed.load(image);
  CycleProfiler prof;
  prof.attach(observed.cpu(), image);
  auto res_observed = observed.call("f1");
  ASSERT_TRUE(res_observed.ok());

  // Bit-identical run: same cycles, same instruction count, same result.
  EXPECT_EQ(res_observed->cycles, res_plain->cycles);
  EXPECT_EQ(res_observed->instructions, res_plain->instructions);
  EXPECT_EQ(res_observed->a, res_plain->a);

  // Detaching stops collection without touching the CPU.
  const u64 before = prof.total_cycles();
  observed.cpu().set_observer(nullptr);
  auto res_detached = observed.call("f1");
  ASSERT_TRUE(res_detached.ok());
  EXPECT_EQ(res_detached->cycles, res_plain->cycles);
  EXPECT_EQ(prof.total_cycles(), before);
}

TEST(CycleProfilerTest, WriteJsonEmitsPhasesAndRegions) {
  const rabbit::Image image = assemble_program();
  rabbit::Board board;
  board.load(image);
  CycleProfiler prof;
  prof.attach(board.cpu(), image);
  prof.set_phase("run");
  ASSERT_TRUE(board.call("f1").ok());

  JsonWriter w;
  prof.write_json(w);
  ASSERT_TRUE(w.balanced());
  const std::string json = w.str();
  EXPECT_NE(json.find("\"total_cycles\":"), std::string::npos);
  EXPECT_NE(json.find("\"run\":"), std::string::npos);
  EXPECT_NE(json.find("\"f2\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Export edge cases: hostile instrument names, degenerate histograms
// ---------------------------------------------------------------------------

#if RMC_TELEMETRY_ENABLED
TEST(JsonWriter, MetricNamesWithJsonMetacharactersExportEscaped) {
  // Instrument names come from code today, but nothing in the registry
  // forbids a quote or newline — the export must stay parseable anyway.
  Registry r;
  r.counter("he said \"hi\"").add(1);
  r.counter("back\\slash").add(2);
  r.gauge("line\nbreak").set(3);
  EXPECT_EQ(r.to_json(),
            "{\"counters\":{\"back\\\\slash\":2,\"he said \\\"hi\\\"\":1},"
            "\"gauges\":{\"line\\nbreak\":{\"value\":3,\"max\":3}},"
            "\"histograms\":{}}");
}

TEST(JsonWriter, EmptyHistogramExportsZeroesNotGarbage) {
  Registry r;
  const u64 bounds[] = {10};
  (void)r.histogram("latency", bounds);  // registered, never recorded
  EXPECT_EQ(r.to_json(),
            "{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{\"latency\":{\"count\":0,\"sum\":0,\"min\":0,"
            "\"max\":0,\"bounds\":[10],\"counts\":[0,0],"
            "\"cum_counts\":[0,0]}}}");
}
#endif  // RMC_TELEMETRY_ENABLED

}  // namespace
}  // namespace rmc
