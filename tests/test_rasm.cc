// Tests for the assembler and disassembler: encoding correctness (checked
// byte-for-byte and by executing on the board), expressions, directives,
// error reporting, and assemble->disassemble round trips.
#include <gtest/gtest.h>

#include "rabbit/board.h"
#include "rasm/assembler.h"
#include "rasm/disasm.h"

namespace rmc::rasm {
namespace {

using common::u16;
using common::u8;
using rabbit::Board;
using rabbit::StopReason;

std::vector<u8> bytes_of(const std::string& src) {
  auto out = assemble(src);
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  if (!out.ok()) return {};
  EXPECT_EQ(out->image.chunks.size(), 1u);
  return out->image.chunks[0].bytes;
}

// Assemble, load, call `main`, return HL.
u16 run_main(const std::string& src) {
  auto out = assemble(src);
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  if (!out.ok()) return 0xDEAD;
  Board board;
  board.load(out->image);
  auto res = board.call("main");
  EXPECT_TRUE(res.ok()) << res.status().to_string();
  if (!res.ok()) return 0xDEAD;
  EXPECT_EQ(res->stop, StopReason::kHalted);
  return res->hl;
}

// ---------------------------------------------------------------------------
// Encodings
// ---------------------------------------------------------------------------

TEST(Asm, BasicLoadEncodings) {
  EXPECT_EQ(bytes_of("ld a, 12h"), (std::vector<u8>{0x3E, 0x12}));
  EXPECT_EQ(bytes_of("ld b, c"), (std::vector<u8>{0x41}));
  EXPECT_EQ(bytes_of("ld a, (hl)"), (std::vector<u8>{0x7E}));
  EXPECT_EQ(bytes_of("ld (hl), 7"), (std::vector<u8>{0x36, 0x07}));
  EXPECT_EQ(bytes_of("ld hl, 1234h"), (std::vector<u8>{0x21, 0x34, 0x12}));
  EXPECT_EQ(bytes_of("ld a, (0e000h)"), (std::vector<u8>{0x3A, 0x00, 0xE0}));
  EXPECT_EQ(bytes_of("ld (4000h), hl"), (std::vector<u8>{0x22, 0x00, 0x40}));
  EXPECT_EQ(bytes_of("ld sp, hl"), (std::vector<u8>{0xF9}));
}

TEST(Asm, IndexedEncodings) {
  EXPECT_EQ(bytes_of("ld ix, 8000h"),
            (std::vector<u8>{0xDD, 0x21, 0x00, 0x80}));
  EXPECT_EQ(bytes_of("ld a, (ix+3)"), (std::vector<u8>{0xDD, 0x7E, 0x03}));
  EXPECT_EQ(bytes_of("ld (iy-2), b"), (std::vector<u8>{0xFD, 0x70, 0xFE}));
  EXPECT_EQ(bytes_of("inc (ix+0)"), (std::vector<u8>{0xDD, 0x34, 0x00}));
}

TEST(Asm, AluEncodings) {
  EXPECT_EQ(bytes_of("add a, b"), (std::vector<u8>{0x80}));
  EXPECT_EQ(bytes_of("adc a, 5"), (std::vector<u8>{0xCE, 0x05}));
  EXPECT_EQ(bytes_of("sub (hl)"), (std::vector<u8>{0x96}));
  EXPECT_EQ(bytes_of("xor a"), (std::vector<u8>{0xAF}));
  EXPECT_EQ(bytes_of("cp 0ffh"), (std::vector<u8>{0xFE, 0xFF}));
  EXPECT_EQ(bytes_of("add hl, de"), (std::vector<u8>{0x19}));
  EXPECT_EQ(bytes_of("sbc hl, bc"), (std::vector<u8>{0xED, 0x42}));
  EXPECT_EQ(bytes_of("add ix, bc"), (std::vector<u8>{0xDD, 0x09}));
}

TEST(Asm, RotateAndBitEncodings) {
  EXPECT_EQ(bytes_of("rlc b"), (std::vector<u8>{0xCB, 0x00}));
  EXPECT_EQ(bytes_of("srl a"), (std::vector<u8>{0xCB, 0x3F}));
  EXPECT_EQ(bytes_of("bit 7, (hl)"), (std::vector<u8>{0xCB, 0x7E}));
  EXPECT_EQ(bytes_of("set 0, c"), (std::vector<u8>{0xCB, 0xC1}));
  EXPECT_EQ(bytes_of("res 3, (ix+1)"),
            (std::vector<u8>{0xDD, 0xCB, 0x01, 0x9E}));
}

TEST(Asm, RabbitSpecificEncodings) {
  EXPECT_EQ(bytes_of("mul"), (std::vector<u8>{0xF7}));
  EXPECT_EQ(bytes_of("bool hl"), (std::vector<u8>{0xED, 0x90}));
  EXPECT_EQ(bytes_of("ld xpc, a"), (std::vector<u8>{0xED, 0x67}));
  EXPECT_EQ(bytes_of("ld a, xpc"), (std::vector<u8>{0xED, 0x77}));
  EXPECT_EQ(bytes_of("lret"), (std::vector<u8>{0xED, 0xC9}));
  EXPECT_EQ(bytes_of("lcall 0e100h, 12h"),
            (std::vector<u8>{0xED, 0xCD, 0x00, 0xE1, 0x12}));
}

TEST(Asm, ControlFlowEncodings) {
  EXPECT_EQ(bytes_of("jp 0200h"), (std::vector<u8>{0xC3, 0x00, 0x02}));
  EXPECT_EQ(bytes_of("jp nz, 0200h"), (std::vector<u8>{0xC2, 0x00, 0x02}));
  EXPECT_EQ(bytes_of("call 0300h"), (std::vector<u8>{0xCD, 0x00, 0x03}));
  EXPECT_EQ(bytes_of("ret z"), (std::vector<u8>{0xC8}));
  EXPECT_EQ(bytes_of("jp (hl)"), (std::vector<u8>{0xE9}));
  EXPECT_EQ(bytes_of("rst 28h"), (std::vector<u8>{0xEF}));
}

TEST(Asm, JrComputesDisplacement) {
  // org 0x0100: jr 0x0104 -> displacement +2.
  const auto b = bytes_of("jr 0104h\nnop\nnop");
  ASSERT_GE(b.size(), 2u);
  EXPECT_EQ(b[0], 0x18);
  EXPECT_EQ(b[1], 0x02);
}

TEST(Asm, JrBackwardLoop) {
  const auto b = bytes_of("loop: nop\n jr loop");
  EXPECT_EQ(b, (std::vector<u8>{0x00, 0x18, 0xFD}));
}

TEST(Asm, JrOutOfRangeRejected) {
  std::string src = "jr far\n";
  src += "ds 200\n";
  src += "far: nop\n";
  auto out = assemble(src);
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("out of range"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Directives / expressions / symbols
// ---------------------------------------------------------------------------

TEST(Asm, DbDwDsEmitData) {
  const auto b = bytes_of("db 1, 2, \"hi\", 0\ndw 1234h\nds 3");
  EXPECT_EQ(b, (std::vector<u8>{1, 2, 'h', 'i', 0, 0x34, 0x12, 0, 0, 0}));
}

TEST(Asm, EquAndExpressions) {
  const auto b = bytes_of(
      "base equ 40h\n"
      "ld a, base+2\n"
      "ld b, (base<<2)|1\n"
      "ld c, ~0 & 0ffh\n");
  EXPECT_EQ(b, (std::vector<u8>{0x3E, 0x42, 0x06, 0x01, 0x0E, 0xFF}));
}

TEST(Asm, CharLiteralsAndBinary) {
  const auto b = bytes_of("ld a, 'A'\nld b, %1010\n");
  EXPECT_EQ(b, (std::vector<u8>{0x3E, 0x41, 0x06, 0x0A}));
}

TEST(Asm, ForwardReferencesResolve) {
  const u16 hl = run_main(
      "main: ld hl, (value)\n"
      "      ret\n"
      "value: dw 777\n");
  EXPECT_EQ(hl, 777);
}

TEST(Asm, CurrentAddressDollar) {
  const auto b = bytes_of("dw $\n");  // default org 0x0100
  EXPECT_EQ(b, (std::vector<u8>{0x00, 0x01}));
}

TEST(Asm, DuplicateLabelRejected) {
  auto out = assemble("x: nop\nx: nop\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("duplicate"), std::string::npos);
}

TEST(Asm, UnknownMnemonicRejectedWithLineNumber) {
  auto out = assemble("nop\nfrobnicate a, b\n");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("line 2"), std::string::npos);
}

TEST(Asm, OrgPlacesChunksAtBoardPhysical) {
  auto out = assemble("org 6000h\ndb 1\n");
  ASSERT_TRUE(out.ok());
  // Data segment logical 0x6000 -> physical 0x80000 on the board map.
  EXPECT_EQ(out->image.chunks[0].phys_addr, 0x80000u);
}

TEST(Asm, XorgPlacesPhysicalAndHelpersWork) {
  auto out = assemble(
      "xorg 20100h\n"
      "table: db 0aah\n"
      "org 0100h\n"
      "main: ld a, xpcof(table)\n"
      "      ld xpc, a\n"
      "      ld hl, winof(table)\n"
      "      ld a, (hl)\n"
      "      ld l, a\n"
      "      ld h, 0\n"
      "      ret\n");
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  Board board;
  board.load(out->image);
  auto res = board.call("main");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->hl, 0xAA);
}

TEST(Asm, ListingContainsAddressesAndBytes) {
  AssembleOptions opts;
  opts.want_listing = true;
  auto out = assemble("main: ld a, 1\n ret\n", opts);
  ASSERT_TRUE(out.ok());
  EXPECT_NE(out->listing.find("00100"), std::string::npos);
  EXPECT_NE(out->listing.find("3E 01"), std::string::npos);
}

TEST(Asm, BoardLogicalToPhysMap) {
  EXPECT_EQ(*board_logical_to_phys(0x0100), 0x0100u);
  EXPECT_EQ(*board_logical_to_phys(0x6000), 0x80000u);
  EXPECT_EQ(*board_logical_to_phys(0xD000), 0x8E000u);
  EXPECT_FALSE(board_logical_to_phys(0xE000).ok());
}

// ---------------------------------------------------------------------------
// Execution smoke tests (assembled programs on the board)
// ---------------------------------------------------------------------------

TEST(Asm, SumLoopProgram) {
  // Sum 1..10 into HL.
  const u16 hl = run_main(
      "main:\n"
      "    ld hl, 0\n"
      "    ld b, 10\n"
      "    ld de, 0\n"
      "loop:\n"
      "    ld e, b\n"
      "    add hl, de\n"
      "    djnz loop\n"
      "    ret\n");
  EXPECT_EQ(hl, 55);
}

TEST(Asm, MulProgram) {
  const u16 hl = run_main(
      "main:\n"
      "    ld bc, 123\n"
      "    ld de, 45\n"
      "    mul\n"
      "    ld h, b\n"
      "    ld l, c\n"
      "    ret\n");
  EXPECT_EQ(hl, 123 * 45);
}

TEST(Asm, DataSegmentReadWrite) {
  const u16 hl = run_main(
      "org 6000h\n"
      "counter: dw 0\n"
      "org 0100h\n"
      "main:\n"
      "    ld hl, (counter)\n"
      "    inc hl\n"
      "    inc hl\n"
      "    ld (counter), hl\n"
      "    ld hl, (counter)\n"
      "    ret\n");
  EXPECT_EQ(hl, 2);
}

TEST(Asm, CallingConventionNestedCalls) {
  const u16 hl = run_main(
      "main:\n"
      "    ld hl, 5\n"
      "    call double\n"
      "    call double\n"
      "    ret\n"
      "double:\n"
      "    add hl, hl\n"
      "    ret\n");
  EXPECT_EQ(hl, 20);
}

// ---------------------------------------------------------------------------
// Disassembler round trips
// ---------------------------------------------------------------------------

TEST(Disasm, SingleInstructionText) {
  const std::vector<u8> code = {0x3E, 0x42};
  auto one = disassemble_one(code, 0, 0x0100);
  EXPECT_TRUE(one.valid);
  EXPECT_EQ(one.length, 2u);
  EXPECT_EQ(one.text, "ld a, 042h");
}

TEST(Disasm, RelativeTargetsUseAbsoluteAddresses) {
  const std::vector<u8> code = {0x18, 0xFE};  // jr $
  auto one = disassemble_one(code, 0, 0x0200);
  EXPECT_EQ(one.text, "jr 00200h");
}

TEST(Disasm, InvalidByteFallsBackToDb) {
  const std::vector<u8> code = {0xED, 0x01};
  auto one = disassemble_one(code, 0, 0);
  EXPECT_FALSE(one.valid);
  EXPECT_EQ(one.length, 1u);
}

// Round-trip property: assemble each mnemonic form, disassemble, reassemble,
// and require identical bytes. This pins the assembler and disassembler to
// the same encoding table.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, AssembleDisassembleAssemble) {
  const std::string src = GetParam();
  auto first = assemble(src);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  const auto& bytes = first->image.chunks[0].bytes;
  auto dis = disassemble_one(bytes, 0, 0x0100);
  ASSERT_TRUE(dis.valid) << src;
  EXPECT_EQ(dis.length, bytes.size()) << src << " -> " << dis.text;
  auto second = assemble(dis.text);
  ASSERT_TRUE(second.ok()) << dis.text << ": " << second.status().to_string();
  EXPECT_EQ(second->image.chunks[0].bytes, bytes) << src << " -> " << dis.text;
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, RoundTrip,
    ::testing::Values(
        "nop", "halt", "di", "ei", "exx", "daa", "cpl", "scf", "ccf", "neg",
        "ldir", "lddr", "ldi", "ldd", "mul", "bool hl", "lret", "reti",
        "ld a, 5", "ld b, c", "ld d, (hl)", "ld (hl), e", "ld (hl), 9",
        "ld a, (bc)", "ld a, (de)", "ld (bc), a", "ld (de), a",
        "ld a, (1234h)", "ld (1234h), a", "ld bc, 5678h", "ld de, 1h",
        "ld hl, 0ffffh", "ld sp, 200h", "ld hl, (30h)", "ld (30h), hl",
        "ld bc, (40h)", "ld (40h), de", "ld sp, hl", "ld ix, 7000h",
        "ld a, (ix+5)", "ld (iy-3), c", "ld (ix+2), 7h", "ld xpc, a",
        "ld a, xpc", "push bc", "pop af", "push ix", "pop iy",
        "ex de, hl", "ex af, af'", "ex (sp), hl", "ex (sp), ix",
        "add a, b", "adc a, 1", "sub (hl)", "sbc a, c", "and 0fh", "xor a",
        "or (ix+1)", "cp 30h", "add hl, sp", "adc hl, de", "sbc hl, bc",
        "add ix, de", "inc a", "dec (hl)", "inc de", "dec iy", "inc (ix+4)",
        "rlca", "rrca", "rla", "rra", "rlc c", "rrc (hl)", "rl a", "rr b",
        "sla d", "sra e", "srl h", "bit 0, a", "bit 7, (hl)", "set 3, b",
        "res 5, (ix+2)", "jp 4000h", "jp nz, 4000h", "jp (hl)", "jp (ix)",
        "call 300h", "call pe, 300h", "ret", "ret nc", "rst 18h",
        "in a, (0c0h)", "out (0c0h), a", "lcall 0e000h, 2h",
        "ljp 0e100h, 3h"));

}  // namespace
}  // namespace rmc::rasm
