// Device-fault tolerance tests: the hardware watchdog peripheral, the
// power-failure injector, the torn-write-detecting `protected` storage, the
// two-slot durable store, and the ServiceBoard supervisor's warm-restart
// recovery of the secure redirector (wedge -> WDT bite, power cut mid-store,
// xalloc exhaustion -> controlled restart).
#include <gtest/gtest.h>

#include "dynk/persist.h"
#include "dynk/power.h"
#include "dynk/storage.h"
#include "rabbit/board.h"
#include "rabbit/watchdog.h"
#include "services/supervisor.h"
#include "telemetry/metrics.h"

namespace rmc {
namespace {

using common::u64;
using common::u8;

// ---------------------------------------------------------------------------
// Watchdog peripheral
// ---------------------------------------------------------------------------

TEST(WatchdogTest, FiresAfterPeriodWithoutHit) {
  rabbit::Watchdog wdt(0x08, 1'000'000);  // 1 MHz for round numbers
  wdt.set_period_cycles(10'000);
  wdt.tick(9'999);
  EXPECT_FALSE(wdt.fired());
  wdt.tick(1);
  EXPECT_TRUE(wdt.fired());
  EXPECT_EQ(wdt.fires(), 1u);
  // Latched: more time does not refire.
  wdt.tick(100'000);
  EXPECT_EQ(wdt.fires(), 1u);
}

TEST(WatchdogTest, HitRestartsCountdown) {
  rabbit::Watchdog wdt(0x08, 1'000'000);
  wdt.set_period_cycles(10'000);
  for (int i = 0; i < 100; ++i) {
    wdt.tick(9'000);
    wdt.hit();
  }
  EXPECT_FALSE(wdt.fired());
}

TEST(WatchdogTest, HitCodesSelectPeriodThroughRegister) {
  rabbit::Watchdog wdt(0x08, 1'000'000);
  wdt.io_write(0x08, rabbit::Watchdog::kHit500ms);
  EXPECT_EQ(wdt.period_cycles(), 500'000u);
  wdt.io_write(0x08, rabbit::Watchdog::kHit250ms);
  EXPECT_EQ(wdt.period_cycles(), 250'000u);
  // Garbage hit codes neither hit nor change the period (as on silicon).
  wdt.tick(200'000);
  wdt.io_write(0x08, 0x00);
  wdt.tick(60'000);
  EXPECT_TRUE(wdt.fired());
  // Status read: bit0 fired, bit1 enabled.
  EXPECT_EQ(wdt.io_read(0x08), 0x03);
}

TEST(WatchdogTest, DisableNeedsTheTwoWriteSequence) {
  rabbit::Watchdog wdt(0x08, 1'000'000);
  wdt.set_period_cycles(1'000);
  // Broken sequence: 0x51, garbage, 0x54 must NOT disable.
  wdt.io_write(0x09, rabbit::Watchdog::kDisable1);
  wdt.io_write(0x09, 0x00);
  wdt.io_write(0x09, rabbit::Watchdog::kDisable2);
  EXPECT_TRUE(wdt.enabled());
  // Proper sequence disables; a disabled WDT never fires.
  wdt.io_write(0x09, rabbit::Watchdog::kDisable1);
  wdt.io_write(0x09, rabbit::Watchdog::kDisable2);
  EXPECT_FALSE(wdt.enabled());
  wdt.tick(1'000'000);
  EXPECT_FALSE(wdt.fired());
}

// ---------------------------------------------------------------------------
// Board-level watchdog: wedged firmware gets hard-reset and rebooted
// ---------------------------------------------------------------------------

rabbit::Image image_of(std::vector<u8> code) {
  rabbit::Image img;
  img.chunks.push_back({0x0100, std::move(code)});
  img.entry = 0x0100;
  return img;
}

TEST(BoardWatchdogTest, WedgedFirmwareIsResetAndRebooted) {
  rabbit::Board board;
  // JR -2: the tightest possible wedge — never hits the WDT.
  board.load(image_of({0x18, 0xFE}));
  board.watchdog().set_period_cycles(100'000);
  auto r = board.run_guarded(1'000'000, 10'000);
  EXPECT_GE(r.watchdog_resets, 5u);
  EXPECT_TRUE(board.sys_is_soft_reset());
  EXPECT_EQ(board.last_reset_cause(), rabbit::ResetCause::kWatchdog);
  EXPECT_EQ(board.resets(), r.watchdog_resets);
  EXPECT_EQ(reset_cause_name(board.last_reset_cause()),
            std::string("watchdog"));
}

TEST(BoardWatchdogTest, FirmwareThatHitsTheWdtRunsForever) {
  rabbit::Board board;
  // LD A,0x5A / OUT (0x08),A / JR -6: hit the watchdog every iteration.
  board.load(image_of({0x3E, 0x5A, 0xD3, 0x08, 0x18, 0xFA}));
  board.watchdog().set_period_cycles(100'000);
  auto r = board.run_guarded(1'000'000, 10'000);
  EXPECT_EQ(r.watchdog_resets, 0u);
  EXPECT_FALSE(board.sys_is_soft_reset());
  // The OUT hit codes also reprogram the period to the 2 s the 0x5A code
  // names — countdown restarted each loop either way.
  EXPECT_FALSE(board.watchdog().fired());
}

TEST(BoardWatchdogTest, WarmResetPreservesSramCold1ResetsCount) {
  rabbit::Board board;
  const u64 before = board.resets();
  board.warm_reset(rabbit::ResetCause::kSoft);
  EXPECT_TRUE(board.sys_is_soft_reset());
  EXPECT_EQ(board.resets(), before + 1);
  board.reset();  // cold
  EXPECT_FALSE(board.sys_is_soft_reset());
  EXPECT_EQ(board.last_reset_cause(), rabbit::ResetCause::kPowerOn);
}

// ---------------------------------------------------------------------------
// Power-failure injection
// ---------------------------------------------------------------------------

TEST(PowerMonitorTest, CountdownTripsAtTheExactFaultPoint) {
  dynk::PowerMonitor mon(dynk::PowerFaultPlan::at({2}));
  EXPECT_FALSE(mon.step("a"));
  EXPECT_FALSE(mon.step("b"));
  EXPECT_TRUE(mon.step("c"));  // the cut lands exactly here
  EXPECT_FALSE(mon.powered());
  EXPECT_EQ(mon.cuts(), 1u);
  EXPECT_EQ(mon.last_cut_site(), "c");
  // Dead is dead until the cord goes back in.
  EXPECT_TRUE(mon.step("d"));
  EXPECT_EQ(mon.cuts(), 1u);
  mon.restore_power();
  EXPECT_TRUE(mon.powered());
  EXPECT_FALSE(mon.step("e"));  // no second cut scheduled
  EXPECT_FALSE(mon.more_cuts_pending());
  EXPECT_EQ(mon.points_seen(), 5u);
}

TEST(PowerMonitorTest, EachPowerCycleGetsItsOwnScheduledCut) {
  dynk::PowerMonitor mon(dynk::PowerFaultPlan::at({0, 1}));
  EXPECT_TRUE(mon.step("x"));  // first cycle dies at its first fault point
  mon.restore_power();
  EXPECT_FALSE(mon.step("y"));
  EXPECT_TRUE(mon.step("z"));
  EXPECT_EQ(mon.cuts(), 2u);
}

TEST(PowerMonitorTest, RandomPlanIsSeedDeterministic) {
  auto a = dynk::PowerFaultPlan::random(42, 8, 5, 500);
  auto b = dynk::PowerFaultPlan::random(42, 8, 5, 500);
  ASSERT_EQ(a.cuts.size(), 8u);
  EXPECT_EQ(a.cuts, b.cuts);
  for (u64 gap : a.cuts) {
    EXPECT_GE(gap, 5u);
    EXPECT_LE(gap, 500u);
  }
  auto c = dynk::PowerFaultPlan::random(43, 8, 5, 500);
  EXPECT_NE(a.cuts, c.cuts);
}

// ---------------------------------------------------------------------------
// ProtectedVar: the torn-write blind spot, fixed
// ---------------------------------------------------------------------------

TEST(ProtectedVarRecoveryTest, CleanValueIsNotClobberedByRestore) {
  // The old blind spot's dual: a reset with NO store in flight must keep the
  // live value — blindly restoring the backup would roll back a completed
  // store.
  dynk::ProtectedVar<int> v(1);
  v.store(2);
  EXPECT_EQ(v.restore_after_reset(), dynk::RestoreOutcome::kIntact);
  EXPECT_EQ(v.load(), 2);
  EXPECT_EQ(v.restores(), 0u);
  EXPECT_EQ(v.restored_stale(), 0u);
}

TEST(ProtectedVarRecoveryTest, PowerCutMidWriteIsDetectedByTheMarker) {
  // Cut at the second fault point of the store protocol: [pvar.backup] then
  // [pvar.write] — the multibyte value is half-written, and only the
  // validity marker makes that detectable.
  dynk::PowerMonitor mon(dynk::PowerFaultPlan::at({1}));
  dynk::ProtectedVar<common::u32> v(0x11111111u);
  v.attach_power(&mon);
  v.store(0xAAAA5555u);
  EXPECT_FALSE(mon.powered());
  EXPECT_EQ(mon.last_cut_site(), "pvar.write");
  EXPECT_TRUE(v.store_in_progress());
  EXPECT_NE(v.load(), 0xAAAA5555u);  // torn: half old, half new
  EXPECT_NE(v.load(), 0x11111111u);
  EXPECT_EQ(v.restore_after_reset(), dynk::RestoreOutcome::kRestoredStale);
  EXPECT_EQ(v.load(), 0x11111111u);  // last good value
  EXPECT_EQ(v.restored_stale(), 1u);
  EXPECT_FALSE(v.store_in_progress());
}

TEST(ProtectedVarRecoveryTest, CutBetweenWriteAndCommitRollsBackBounded) {
  // Cut after the value landed but before the marker dropped: restore
  // conservatively rolls back — one update lost, reported, never torn.
  dynk::PowerMonitor mon(dynk::PowerFaultPlan::at({2}));
  dynk::ProtectedVar<common::u32> v(7);
  v.attach_power(&mon);
  v.store(8);
  EXPECT_EQ(mon.last_cut_site(), "pvar.commit");
  EXPECT_EQ(v.load(), 8u);  // the write itself completed...
  EXPECT_EQ(v.restore_after_reset(), dynk::RestoreOutcome::kRestoredStale);
  EXPECT_EQ(v.load(), 7u);  // ...but recovery cannot trust it
  EXPECT_EQ(v.restored_stale(), 1u);
}

TEST(ProtectedVarRecoveryTest, LegacyCorruptMeansInterruptedStore) {
  dynk::ProtectedVar<int> v(1);
  v.store(2);
  v.corrupt(-999);  // mid-store power loss trashes main RAM
  EXPECT_TRUE(v.store_in_progress());
  EXPECT_EQ(v.restore_after_reset(), dynk::RestoreOutcome::kRestoredStale);
  EXPECT_EQ(v.load(), 1);
}

// ---------------------------------------------------------------------------
// DurableVar: two-slot committed storage
// ---------------------------------------------------------------------------

TEST(DurableVarTest, EmptyThenCleanRoundTrips) {
  dynk::DurableVar<u64> d;
  auto r0 = d.load();
  EXPECT_EQ(r0.outcome, dynk::DurableLoadOutcome::kEmpty);
  EXPECT_TRUE(d.store(1111));
  EXPECT_TRUE(d.store(2222));
  auto r = d.load();
  EXPECT_EQ(r.outcome, dynk::DurableLoadOutcome::kClean);
  EXPECT_EQ(r.value, 2222u);
  EXPECT_EQ(r.seq, 2u);
}

TEST(DurableVarTest, CutAtEveryProtocolSiteLeavesCommittedValueIntact) {
  // Whichever of the three fault sites the cut lands on, the previously
  // committed value must survive and the tear must be reported exactly once.
  const char* sites[] = {"durable.open", "durable.mid", "durable.commit"};
  for (u64 k = 0; k < 3; ++k) {
    dynk::DurableVar<u64> d;
    ASSERT_TRUE(d.store(0xBEEF));
    dynk::PowerMonitor mon(dynk::PowerFaultPlan::at({k}));
    d.attach_power(&mon);
    EXPECT_FALSE(d.store(0xDEAD)) << sites[k];
    EXPECT_EQ(mon.last_cut_site(), sites[k]);
    EXPECT_TRUE(d.tear_pending());
    auto r = d.load();
    EXPECT_EQ(r.outcome, dynk::DurableLoadOutcome::kTornRecovered) << sites[k];
    EXPECT_EQ(r.value, 0xBEEFu) << sites[k];
    // Reported once: the next load is clean.
    EXPECT_EQ(d.load().outcome, dynk::DurableLoadOutcome::kClean);
  }
}

TEST(DurableVarTest, TornVeryFirstWriteReportsTornWithDefaultValue) {
  dynk::PowerMonitor mon(dynk::PowerFaultPlan::at({1}));
  dynk::DurableVar<u64> d(&mon);
  EXPECT_FALSE(d.store(42));
  auto r = d.load();
  EXPECT_EQ(r.outcome, dynk::DurableLoadOutcome::kTornRecovered);
  EXPECT_EQ(r.value, 0u);  // nothing was ever committed
  EXPECT_EQ(r.seq, 0u);
}

// ---------------------------------------------------------------------------
// ServiceBoard: warm-restart recovery of the whole redirector
// ---------------------------------------------------------------------------

constexpr net::IpAddr kBoardIp = 1;
constexpr net::IpAddr kBackendIp = 2;
constexpr net::IpAddr kClientIp = 3;
constexpr net::Port kTlsPort = 4433;
constexpr net::Port kBackendPort = 8000;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

struct FaultWorld {
  net::SimNet net{777};
  net::TcpStack backend_stack{net, kBackendIp};
  net::TcpStack client_stack{net, kClientIp};
  services::EchoBackend backend{backend_stack, kBackendPort};

  services::ServiceBoardConfig board_config(bool secure) {
    services::ServiceBoardConfig cfg;
    cfg.redirector.listen_port = kTlsPort;
    cfg.redirector.backend_ip = kBackendIp;
    cfg.redirector.backend_port = kBackendPort;
    cfg.redirector.secure = secure;
    cfg.redirector.psk = bytes_of("board-psk");
    cfg.board_ip = kBoardIp;
    cfg.wdt_period_ms = 500;
    cfg.power_off_ms = 40;
    cfg.reboot_ms = 2;
    return cfg;
  }

  void drive(services::ServiceBoard& board, services::Client* client,
             u64 ms) {
    for (u64 i = 0; i < ms; ++i) {
      board.poll();
      backend.poll();
      if (client) (void)client->poll();
      net.tick(1);
    }
  }

  /// One full echo session against the board; true when the client got its
  /// bytes back within the budget.
  bool echo_once(services::ServiceBoard& board, bool secure,
                 std::string_view msg, u64 seed, u64 budget_ms = 1'200) {
    services::Client c(client_stack, kBoardIp, kTlsPort, secure,
                       issl::Config::embedded_port(),
                       secure ? bytes_of("board-psk") : std::vector<u8>{},
                       seed);
    if (!c.start().is_ok()) return false;
    if (!c.send(bytes_of(msg)).is_ok()) return false;
    for (u64 i = 0; i < budget_ms; ++i) {
      board.poll();
      backend.poll();
      (void)c.poll();
      net.tick(1);
      if (c.received().size() >= msg.size()) {
        c.close();
        drive(board, &c, 80);
        return true;
      }
    }
    return false;
  }
};

TEST(ServiceBoardTest, WatchdogBiteRebootsRearmsAndKeepsTheBatteryLog) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  services::ServiceBoard board(w.net, w.board_config(/*secure=*/true));
  ASSERT_TRUE(board.up());

  ASSERT_TRUE(w.echo_once(board, true, "before the bite", 0x1001));
  const u64 served_before = board.redirector()->durable_state().served;
  EXPECT_GE(served_before, 1u);

  // Wedge the main loop past the WDT period: nobody hits the watchdog.
  board.wedge_for_ms(600);
  w.drive(board, nullptr, 700);
  EXPECT_EQ(board.wdt_bites(), 1u);
  EXPECT_EQ(board.resets(), 1u);
  EXPECT_EQ(board.last_fault(), services::FaultKind::kWatchdogBite);
  ASSERT_TRUE(board.up());

  // Post-mortem: the pre-crash battery log was snapshotted at the bite.
  EXPECT_FALSE(board.postmortem().empty());
  bool saw_boot1 = false;
  for (const auto& line : board.postmortem()) {
    if (line.find("boot gen 1") != std::string::npos) saw_boot1 = true;
  }
  EXPECT_TRUE(saw_boot1);

  // The battery-backed log survived the reset and shows both generations
  // plus the bite marker — history across the crash, not just after it.
  std::string joined;
  for (const auto& line : board.battery().log.entries()) joined += line + "\n";
  EXPECT_NE(joined.find("boot gen 1"), std::string::npos);
  EXPECT_NE(joined.find("wdt-bite"), std::string::npos);
  EXPECT_NE(joined.find("boot gen 2"), std::string::npos);

  // Costatements re-armed: the reborn scheduler serves a fresh client, and
  // the durable bookkeeping continued from the pre-crash value.
  ASSERT_TRUE(w.echo_once(board, true, "after the bite", 0x1002));
  EXPECT_EQ(board.redirector()->durable_state().generation, 2u);
  EXPECT_GT(board.redirector()->durable_state().served, served_before);
}

TEST(ServiceBoardTest, SessionLiveAtTheBiteFailsClosedNotHalfOpen) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  services::ServiceBoard board(w.net, w.board_config(/*secure=*/true));

  // Establish a secure session and leave it open across the bite.
  services::Client c(w.client_stack, kBoardIp, kTlsPort, true,
                     issl::Config::embedded_port(), bytes_of("board-psk"),
                     0x2001);
  ASSERT_TRUE(c.start().is_ok());
  ASSERT_TRUE(c.send(bytes_of("hold the line")).is_ok());
  w.drive(board, &c, 400);
  ASSERT_TRUE(c.handshake_done());

  board.wedge_for_ms(600);
  w.drive(board, &c, 700);  // bite + reboot while the session sits open
  ASSERT_EQ(board.wdt_bites(), 1u);

  // The moment the peer *uses* the dead session it must learn its fate
  // within the TCP give-up horizon (8 retx, RTO 200..3200 ms): either a RST
  // from the reborn stack or a local retransmission give-up — anything but
  // a forever-half-open session.
  ASSERT_TRUE(c.send(bytes_of("are you still there?")).is_ok());
  bool alive = true;
  for (u64 i = 0; i < 25'000 && alive; ++i) {
    board.poll();
    w.backend.poll();
    alive = c.poll() && !c.failed();
    w.net.tick(1);
  }
  EXPECT_FALSE(alive);
  EXPECT_GE(board.sessions_dropped(), 1u);
}

TEST(ServiceBoardTest, PowerCutMidDurableStoreIsDetectedOnReboot) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.board_config(/*secure=*/false);
  // Fault point #1 of the first power cycle = [durable.mid] of the boot
  // commit: the generation bump is cut mid-write.
  cfg.power_plan = dynk::PowerFaultPlan::at({1});
  services::ServiceBoard board(w.net, cfg);
  EXPECT_FALSE(board.power().powered());

  w.drive(board, nullptr, 60);  // outage + reboot
  ASSERT_TRUE(board.up());
  EXPECT_EQ(board.power_cuts_seen(), 1u);
  EXPECT_EQ(board.last_fault(), services::FaultKind::kPowerCut);
  // The reborn service *knows* the update tore — never silently half-applied.
  EXPECT_EQ(board.redirector()->recovery_outcome(),
            dynk::DurableLoadOutcome::kTornRecovered);
  EXPECT_EQ(board.redirector()->durable_state().generation, 1u);

  // And it still serves.
  EXPECT_TRUE(w.echo_once(board, false, "after the cut", 0x3001));
}

TEST(ServiceBoardTest, XallocExhaustionTriggersControlledRestart) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.board_config(/*secure=*/false);
  cfg.xalloc_capacity = 3 * 64;  // three sessions per boot (§5.2: no free)
  cfg.session_xalloc_bytes = 64;
  services::ServiceBoard board(w.net, cfg);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.echo_once(board, false, "fill the arena", 0x4000 + i));
  }
  EXPECT_EQ(board.xalloc_restarts(), 0u);
  const u64 served_before = board.redirector()->durable_state().served;

  // The fourth session cannot allocate: it is failed closed and the board
  // performs the counted restart that reclaims the arena.
  (void)w.echo_once(board, false, "spill the arena", 0x4003);
  w.drive(board, nullptr, 40);
  EXPECT_EQ(board.xalloc_restarts(), 1u);
  EXPECT_EQ(board.last_fault(), services::FaultKind::kXallocExhausted);
  ASSERT_TRUE(board.up());

  // Fresh arena, re-armed costatements, durable counters intact.
  ASSERT_TRUE(w.echo_once(board, false, "fresh arena", 0x4004));
  EXPECT_GE(board.redirector()->durable_state().served, served_before);
  EXPECT_EQ(board.redirector()->durable_state().generation, 2u);
}

TEST(ServiceBoardTest, SeededRandomCutSoakRecoversEveryTime) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.board_config(/*secure=*/false);
  cfg.power_plan = dynk::PowerFaultPlan::random(0xC0FFEE, 4, 50, 600);
  services::ServiceBoard board(w.net, cfg);

  u64 served_ok = 0;
  for (int i = 0; i < 24; ++i) {
    if (w.echo_once(board, false, "soak", 0x5000 + i, 2'000)) ++served_ok;
    w.drive(board, nullptr, 60);  // let any in-progress recovery finish
  }
  w.drive(board, nullptr, 3'000);  // flush any cut still counting down
  EXPECT_EQ(board.power_cuts_seen(), 4u);
  EXPECT_FALSE(board.power().more_cuts_pending());
  ASSERT_TRUE(board.up());
  // Generation bumped exactly once per boot, no torn update ever silently
  // applied: served only moves forward.
  EXPECT_EQ(board.redirector()->durable_state().generation, board.boots());
  EXPECT_GE(served_ok, 12u);  // most sessions between cuts still complete
  EXPECT_GE(board.redirector()->durable_state().served, served_ok);
}

TEST(ServiceBoardTest, ResetCauseTelemetryNamesEachCauseWhenOptedIn) {
  // Off by default: a wedge must not create per-cause counters (the E10/E15
  // byte-identity gates depend on that).
  ASSERT_FALSE(services::reset_cause_telemetry());
  {
    FaultWorld w;
    ASSERT_TRUE(w.backend.start().is_ok());
    services::ServiceBoard board(w.net, w.board_config(/*secure=*/false));
    board.wedge_for_ms(600);
    w.drive(board, nullptr, 700);
    ASSERT_EQ(board.wdt_bites(), 1u);
    EXPECT_EQ(telemetry::Registry::global().find_counter(
                  "board.resets.watchdog"),
              nullptr);
  }

  // Opted in: the same fault now lands a named counter AND a battery-log
  // line, so E16 can assert "zero alloc-caused restarts" by name.
  services::set_reset_cause_telemetry(true);
  {
    FaultWorld w;
    ASSERT_TRUE(w.backend.start().is_ok());
    services::ServiceBoard board(w.net, w.board_config(/*secure=*/false));
    board.wedge_for_ms(600);
    w.drive(board, nullptr, 700);
    ASSERT_EQ(board.wdt_bites(), 1u);
    const auto* named =
        telemetry::Registry::global().find_counter("board.resets.watchdog");
    ASSERT_NE(named, nullptr);
    EXPECT_GE(named->value(), 1u);
    // Distinct causes get distinct counters: no xalloc restart happened, so
    // its counter must not even exist.
    EXPECT_EQ(telemetry::Registry::global().find_counter(
                  "board.resets.xalloc"),
              nullptr);
    bool saw_cause_line = false;
    for (const auto& line : board.battery().log.entries()) {
      if (line == "reset-cause watchdog") saw_cause_line = true;
    }
    EXPECT_TRUE(saw_cause_line);
  }
  services::set_reset_cause_telemetry(false);
}

}  // namespace
}  // namespace rmc
