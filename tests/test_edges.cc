// Edge-case and failure-injection coverage across modules: session behaviour
// on corrupted transports, simultaneous TCP close, DC-facade EOF paths,
// compiler output introspection, and resource-limit paths.
#include <gtest/gtest.h>

#include "dcc/codegen.h"
#include "dynk/xalloc.h"
#include "issl/issl.h"
#include "net/dcnet.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "rabbit/board.h"
#include "rasm/assembler.h"

namespace rmc {
namespace {

using common::ErrorCode;
using common::u16;
using common::u8;

// ---------------------------------------------------------------------------
// Session over a hostile transport
// ---------------------------------------------------------------------------

class GarbageStream final : public issl::ByteStream {
 public:
  common::Result<std::size_t> write(std::span<const u8> data) override {
    return data.size();  // swallow
  }
  common::Result<std::size_t> read(std::span<u8> out) override {
    // An attacker squirting non-issl bytes at the server.
    for (auto& b : out) b = 0x99;
    return out.size();
  }
  bool open() const override { return true; }
  void close() override {}
};

TEST(SessionEdge, GarbageBytesFailTheSessionNotTheProcess) {
  GarbageStream stream;
  common::Xorshift64 rng(1);
  issl::ServerIdentity id;
  id.psk = {1, 2, 3};
  auto session = issl::issl_bind_server(stream, issl::Config::embedded_port(),
                                        rng, id);
  (void)session.pump();
  EXPECT_TRUE(session.failed());
  EXPECT_EQ(session.error().code(), ErrorCode::kDataLoss);
  // Latched: pumping again keeps reporting the failure, no crash.
  auto again = session.pump();
  EXPECT_FALSE(again.is_ok());
}

class EofStream final : public issl::ByteStream {
 public:
  common::Result<std::size_t> write(std::span<const u8> data) override {
    return data.size();
  }
  common::Result<std::size_t> read(std::span<u8>) override {
    return std::size_t{0};  // immediate EOF
  }
  bool open() const override { return false; }
  void close() override {}
};

TEST(SessionEdge, TransportEofMidHandshakeFails) {
  EofStream stream;
  common::Xorshift64 rng(2);
  auto session = issl::issl_bind_client(stream, issl::Config::embedded_port(),
                                        rng, {1});
  (void)session.pump();  // sends ClientHello, then reads EOF
  EXPECT_TRUE(session.failed());
  EXPECT_EQ(session.error().code(), ErrorCode::kAborted);
}

// ---------------------------------------------------------------------------
// TCP simultaneous close
// ---------------------------------------------------------------------------

TEST(TcpEdge, SimultaneousCloseBothSidesReachTerminalStates) {
  net::SimNet medium(5);
  net::TcpStack a(medium, 1), b(medium, 2);
  auto l = a.listen(80);
  auto cb = b.connect(1, 80);
  medium.tick(20);
  auto ca = a.accept(*l);
  ASSERT_TRUE(ca.ok());
  // Both close before seeing the other's FIN.
  ASSERT_TRUE(a.close(*ca).is_ok());
  ASSERT_TRUE(b.close(*cb).is_ok());
  medium.tick(50);
  EXPECT_FALSE(a.is_open(*ca));
  EXPECT_FALSE(b.is_open(*cb));
}

TEST(TcpEdge, DataBeforeCloseStillDelivered) {
  net::SimNet medium(6);
  net::TcpStack a(medium, 1), b(medium, 2);
  auto l = a.listen(80);
  auto cb = b.connect(1, 80);
  medium.tick(20);
  auto ca = a.accept(*l);
  ASSERT_TRUE(ca.ok());
  // Queue data then close immediately: the FIN must trail the payload.
  std::vector<u8> big(3000, 0x5A);
  ASSERT_TRUE(b.send(*cb, big).ok());
  ASSERT_TRUE(b.close(*cb).is_ok());
  std::vector<u8> got;
  u8 buf[512];
  for (int i = 0; i < 500; ++i) {
    medium.tick(1);
    auto n = a.recv(*ca, buf);
    if (n.ok()) {
      if (*n == 0 && got.size() == big.size()) break;
      got.insert(got.end(), buf, buf + *n);
    }
  }
  EXPECT_EQ(got, big);
}

// ---------------------------------------------------------------------------
// DC facade EOF / partial line
// ---------------------------------------------------------------------------

TEST(DcNetEdge, PartialLineSurrenderedAtEof) {
  net::SimNet medium(7);
  net::TcpStack server(medium, 1), client(medium, 2);
  net::DcTcpApi dc(server, &medium);
  dc.sock_init();
  net::tcp_Socket sock;
  ASSERT_TRUE(dc.tcp_listen(&sock, 23).is_ok());
  dc.sock_mode(&sock, true);
  auto c = client.connect(1, 23);
  for (int i = 0; i < 60 && !dc.sock_established(&sock); ++i) {
    dc.tcp_tick(nullptr);
  }
  ASSERT_TRUE(dc.sock_established(&sock));
  // Send a line with no terminator, then close.
  const std::vector<u8> partial = {'h', 'a', 'l', 'f'};
  ASSERT_TRUE(client.send(*c, partial).ok());
  for (int i = 0; i < 30; ++i) dc.tcp_tick(nullptr);
  EXPECT_FALSE(dc.sock_gets(&sock, 64).ok());  // incomplete: would block
  ASSERT_TRUE(client.close(*c).is_ok());
  for (int i = 0; i < 60; ++i) dc.tcp_tick(nullptr);
  auto line = dc.sock_gets(&sock, 64);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "half");  // EOF surrenders the remainder
}

// ---------------------------------------------------------------------------
// xalloc / scheduler resource edges
// ---------------------------------------------------------------------------

TEST(XallocEdge, AlignmentLargerThanRemainingFails) {
  dynk::XallocArena arena(10);
  ASSERT_TRUE(arena.xalloc(7).ok());
  EXPECT_FALSE(arena.xalloc(4, 8).ok());  // aligned start would be at 8, 8+4>10
  EXPECT_TRUE(arena.xalloc(2, 1).ok());   // unaligned tail still usable
}

// ---------------------------------------------------------------------------
// Board / compiler introspection
// ---------------------------------------------------------------------------

TEST(BoardEdge, CycleBudgetExceededReported) {
  auto out = rasm::assemble("main: jr main\n");  // spin forever
  ASSERT_TRUE(out.ok());
  rabbit::Board board;
  board.load(out->image);
  auto res = board.call("main", 5'000);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->stop, rabbit::StopReason::kCycleLimit);
  EXPECT_GE(res->cycles, 5'000u);
}

TEST(CompilerOutput, AsmTextReflectsKnobs) {
  const std::string src = "xmem uchar t[4]; int f() { t[0] = 1; return t[0]; }";
  auto debug_build = dcc::compile(src, dcc::CodegenOptions::debug_defaults());
  ASSERT_TRUE(debug_build.ok());
  EXPECT_NE(debug_build->asm_text.find("rst 28h"), std::string::npos);
  EXPECT_NE(debug_build->asm_text.find("xorg"), std::string::npos);
  EXPECT_NE(debug_build->asm_text.find("xpcof"), std::string::npos);
  EXPECT_GT(debug_build->xmem_bytes, 0u);

  auto opt_build = dcc::compile(src, dcc::CodegenOptions::all_optimizations());
  ASSERT_TRUE(opt_build.ok());
  EXPECT_EQ(opt_build->asm_text.find("rst 28h"), std::string::npos);
  EXPECT_EQ(opt_build->asm_text.find("xorg"), std::string::npos);  // forced root
  EXPECT_EQ(opt_build->xmem_bytes, 0u);
  EXPECT_GT(opt_build->data_bytes, 0u);
}

TEST(CompilerOutput, GeneratedAsmIsReassemblable) {
  // The emitted text itself must round-trip through the assembler to the
  // identical image (the compile() path already assembles it once).
  const std::string src = R"(
    uchar buf[8];
    int f() { int i; for (i = 0; i < 8; i = i + 1) buf[i] = i; return buf[3]; }
  )";
  auto out = dcc::compile(src);
  ASSERT_TRUE(out.ok());
  auto re = rasm::assemble(out->asm_text);
  ASSERT_TRUE(re.ok()) << re.status().to_string();
  ASSERT_EQ(re->image.chunks.size(), out->image.chunks.size());
  for (std::size_t i = 0; i < re->image.chunks.size(); ++i) {
    EXPECT_EQ(re->image.chunks[i].phys_addr, out->image.chunks[i].phys_addr);
    EXPECT_EQ(re->image.chunks[i].bytes, out->image.chunks[i].bytes);
  }
}

}  // namespace
}  // namespace rmc
