// MiniDynC compiler tests.
//
// The central strategy is differential execution: every program is run both
// through the host interpreter and as compiled Rabbit machine code on the
// board simulator, under every optimization-knob combination, and the
// results (return value + observable globals) must agree. That pins the
// compiler, the assembler, and the CPU core against each other.
#include <gtest/gtest.h>

#include "dcc/codegen.h"
#include "dcc/interp.h"
#include "dcc/parser.h"
#include "rabbit/board.h"

namespace rmc::dcc {
namespace {

using common::u16;
using common::u32;
using rabbit::Board;
using rabbit::StopReason;

// Run `fn()` (no args) compiled with `opts`; returns HL.
u16 run_compiled(const std::string& src, const std::string& fn,
                 const CodegenOptions& opts) {
  auto out = compile(src, opts);
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  if (!out.ok()) return 0xDEAD;
  Board board;
  board.load(out->image);
  auto res = board.call("f_" + fn, 200'000'000);
  EXPECT_TRUE(res.ok()) << res.status().to_string();
  if (!res.ok()) return 0xDEAD;
  EXPECT_EQ(res->stop, StopReason::kHalted) << board.cpu().illegal_message();
  return res->hl;
}

u16 run_interp(const std::string& src, const std::string& fn) {
  auto prog = parse(src);
  EXPECT_TRUE(prog.ok()) << prog.status().to_string();
  if (!prog.ok()) return 0xBEEF;
  auto in = Interpreter::create(*prog);
  EXPECT_TRUE(in.ok()) << in.status().to_string();
  if (!in.ok()) return 0xBEEF;
  auto v = in->call(fn, {});
  EXPECT_TRUE(v.ok()) << v.status().to_string();
  return v.ok() ? *v : 0xBEEF;
}

std::vector<CodegenOptions> all_option_combos() {
  std::vector<CodegenOptions> combos;
  for (int bits = 0; bits < 32; ++bits) {
    CodegenOptions o;
    o.debug_hooks = bits & 1;
    o.fold_constants = bits & 2;
    o.peephole = bits & 4;
    o.unroll_loops = bits & 8;
    o.xmem_tables = bits & 16;
    combos.push_back(o);
  }
  return combos;
}

// Differential check under the default options and the fully-optimized set.
void check_agrees(const std::string& src, const std::string& fn) {
  const u16 expected = run_interp(src, fn);
  EXPECT_EQ(run_compiled(src, fn, CodegenOptions::debug_defaults()), expected)
      << "debug build diverged for " << fn;
  EXPECT_EQ(run_compiled(src, fn, CodegenOptions::all_optimizations()),
            expected)
      << "optimized build diverged for " << fn;
}

// ---------------------------------------------------------------------------
// Parser-level checks
// ---------------------------------------------------------------------------

TEST(Parser, RejectsSyntaxErrors) {
  EXPECT_FALSE(parse("int f( {}").ok());
  EXPECT_FALSE(parse("int f() { return ; ").ok());
  EXPECT_FALSE(parse("int f() { 1 + ; }").ok());
  EXPECT_FALSE(parse("int 5x;").ok());
  EXPECT_FALSE(parse("int f() { x = = 3; }").ok());
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto r = parse("int f() {\n  return 1;\n}\nint g() { @ }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 4"), std::string::npos);
}

TEST(Parser, AcceptsRepresentativeProgram) {
  auto r = parse(R"(
    xmem uchar table[16];
    int counter = 3;
    uchar buf[8] = {1, 2, 3};
    int add(int a, int b) { return a + b; }
    void fill(void) {
      int i;
      for (i = 0; i < 8; i = i + 1) buf[i] = i * 2;
    }
  )");
  ASSERT_TRUE(r.ok()) << r.status().to_string();
  EXPECT_EQ(r->globals.size(), 3u);
  EXPECT_EQ(r->functions.size(), 2u);
  EXPECT_TRUE(r->globals[0].is_xmem);
  EXPECT_EQ(r->globals[2].init.size(), 3u);
}

TEST(Parser, AssignmentTargetValidation) {
  EXPECT_FALSE(parse("int f() { 3 = 4; }").ok());
  EXPECT_FALSE(parse("int f() { (1+2) = 4; }").ok());
}

// ---------------------------------------------------------------------------
// Compiler error paths
// ---------------------------------------------------------------------------

TEST(Compiler, UndefinedVariableRejected) {
  auto r = compile("int f() { return nope; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undefined variable"),
            std::string::npos);
}

TEST(Compiler, UndefinedFunctionRejected) {
  EXPECT_FALSE(compile("int f() { return g(); }").ok());
}

TEST(Compiler, ArgumentCountMismatchRejected) {
  EXPECT_FALSE(
      compile("int g(int a) { return a; } int f() { return g(1, 2); }").ok());
}

TEST(Compiler, ArrayMisuseRejected) {
  EXPECT_FALSE(compile("uchar b[4]; int f() { return b; }").ok());
  EXPECT_FALSE(compile("int x; int f() { return x[0]; }").ok());
  EXPECT_FALSE(compile("uchar b[4]; int f() { b = 3; return 0; }").ok());
}

// ---------------------------------------------------------------------------
// Differential tests: compiled == interpreted
// ---------------------------------------------------------------------------

TEST(Differential, ArithmeticKitchenSink) {
  check_agrees(R"(
    int f() {
      int a; int b; int c;
      a = 1234; b = 567;
      c = a + b * 3 - (a / b) + (a % b);
      c = c ^ (a & 0x0F0F) | (b << 2);
      return c + (a >> 3);
    }
  )", "f");
}

TEST(Differential, UnsignedWraparound) {
  check_agrees(R"(
    int f() {
      int a;
      a = 65535;
      a = a + 1;          /* wraps to 0 */
      a = a - 1;          /* wraps to 65535 */
      return a / 3 + 40000 + 40000;   /* overflow in the sum */
    }
  )", "f");
}

TEST(Differential, ComparisonsAreUnsigned) {
  check_agrees(R"(
    int f() {
      int big; int small; int r;
      big = 0x8000; small = 5; r = 0;
      if (big > small) r = r + 1;       /* unsigned: 0x8000 > 5 */
      if (small < big) r = r + 10;
      if (big >= 0x8000) r = r + 100;
      if (small <= 5) r = r + 1000;
      if (big == 0x8000) r = r + 10000;
      return r;
    }
  )", "f");
}

TEST(Differential, LogicalOperatorsShortCircuit) {
  check_agrees(R"(
    int hits;
    int bump() { hits = hits + 1; return 1; }
    int f() {
      int r;
      hits = 0;
      r = 0 && bump();        /* bump not called */
      r = r + (1 || bump());  /* bump not called */
      r = r + (1 && bump());  /* called */
      return r * 100 + hits;
    }
  )", "f");
}

TEST(Differential, UnaryOperators) {
  check_agrees(R"(
    int f() {
      int a;
      a = 7;
      return (-a) + (~a) * 2 + (!a) + !0;
    }
  )", "f");
}

TEST(Differential, WhileAndForLoops) {
  check_agrees(R"(
    int f() {
      int i; int sum;
      sum = 0;
      for (i = 0; i < 20; i = i + 1) sum = sum + i;
      i = 0;
      while (i < 5) { sum = sum * 2; i = i + 1; }
      return sum;
    }
  )", "f");
}

TEST(Differential, NestedLoopsAndBreaksViaConditions) {
  check_agrees(R"(
    int f() {
      int i; int j; int acc;
      acc = 0;
      for (i = 0; i < 8; i = i + 1) {
        for (j = 0; j < 8; j = j + 1) {
          if ((i ^ j) & 1) acc = acc + i * j;
        }
      }
      return acc;
    }
  )", "f");
}

TEST(Differential, UcharArraysTruncate) {
  check_agrees(R"(
    uchar buf[16];
    int f() {
      int i; int sum;
      for (i = 0; i < 16; i = i + 1) buf[i] = i * 37;  /* truncates */
      sum = 0;
      for (i = 0; i < 16; i = i + 1) sum = sum + buf[i];
      return sum;
    }
  )", "f");
}

TEST(Differential, IntArrays) {
  check_agrees(R"(
    int values[10];
    int f() {
      int i;
      for (i = 0; i < 10; i = i + 1) values[i] = i * 1000 + 7;
      return values[9] - values[1] + values[0];
    }
  )", "f");
}

TEST(Differential, XmemArrays) {
  check_agrees(R"(
    xmem uchar table[64];
    int f() {
      int i; int sum;
      for (i = 0; i < 64; i = i + 1) table[i] = 255 - i;
      sum = 0;
      for (i = 0; i < 64; i = i + 1) sum = sum + table[i];
      return sum;
    }
  )", "f");
}

TEST(Differential, GlobalInitializers) {
  check_agrees(R"(
    int base = 100;
    uchar pattern[6] = {1, 2, 3, 4};   /* trailing elements zero */
    int f() {
      return base + pattern[0] + pattern[3] * 10 + pattern[5];
    }
  )", "f");
}

TEST(Differential, FunctionCallsAndStaticLocals) {
  check_agrees(R"(
    int counter() {
      int n;        /* static storage: persists across calls */
      n = n + 1;
      return n;
    }
    int f() {
      counter(); counter(); counter();
      return counter();
    }
  )", "f");
}

TEST(Differential, ArgumentPassing) {
  check_agrees(R"(
    int mix(int a, int b, int c) { return a * 100 + b * 10 + c; }
    int f() {
      return mix(1, 2, 3) + mix(3 + 4, mix(0, 0, 1), 2);
    }
  )", "f");
}

TEST(Differential, DivModBehaviour) {
  check_agrees(R"(
    int f() {
      int q; int r; int i; int acc;
      acc = 0;
      for (i = 1; i < 30; i = i + 1) {
        q = 50000 / i;
        r = 50000 % i;
        acc = acc + q - r + (q * i + r == 50000);
      }
      return acc;
    }
  )", "f");
}

TEST(Differential, ShiftBehaviour) {
  check_agrees(R"(
    int f() {
      int i; int acc; int v;
      acc = 0;
      v = 0x1234;
      for (i = 0; i < 18; i = i + 1) {
        acc = acc + (v << i) + (v >> i);
      }
      return acc;
    }
  )", "f");
}

// Exhaustive knob sweep on a nontrivial program: all 32 combinations must
// agree with the interpreter.
TEST(Differential, AllOptionCombinationsAgree) {
  const std::string src = R"(
    xmem uchar tab[32];
    uchar state[8];
    int rounds;
    int mixup(int x) { return ((x * 7) ^ (x >> 2)) & 0xFF; }
    int f() {
      int i; int j; int acc;
      for (i = 0; i < 32; i = i + 1) tab[i] = mixup(i + 3);
      for (i = 0; i < 8; i = i + 1) state[i] = i;
      rounds = 0;
      for (j = 0; j < 4; j = j + 1) {
        for (i = 0; i < 8; i = i + 1) {
          state[i] = state[i] ^ tab[(state[i] + j) & 31];
        }
        rounds = rounds + 1;
      }
      acc = 0;
      for (i = 0; i < 8; i = i + 1) acc = acc * 3 + state[i];
      return acc + rounds;
    }
  )";
  const u16 expected = run_interp(src, "f");
  for (const auto& opts : all_option_combos()) {
    const u16 got = run_compiled(src, "f", opts);
    EXPECT_EQ(got, expected)
        << "diverged with debug=" << opts.debug_hooks
        << " fold=" << opts.fold_constants << " peep=" << opts.peephole
        << " unroll=" << opts.unroll_loops << " xmem=" << opts.xmem_tables;
  }
}

// ---------------------------------------------------------------------------
// Optimization knobs change cost, not semantics
// ---------------------------------------------------------------------------

common::u64 cycles_for(const std::string& src, const CodegenOptions& opts,
                       const std::string& fn = "f") {
  auto out = compile(src, opts);
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  Board board;
  board.load(out->image);
  auto res = board.call("f_" + fn, 500'000'000);
  EXPECT_TRUE(res.ok());
  return res->cycles;
}

TEST(Knobs, DebugHooksCostCycles) {
  const std::string src = R"(
    int f() {
      int i; int s;
      s = 0;
      for (i = 0; i < 50; i = i + 1) s = s + i;
      return s;
    }
  )";
  CodegenOptions with = CodegenOptions::debug_defaults();
  CodegenOptions without = with;
  without.debug_hooks = false;
  EXPECT_GT(cycles_for(src, with), cycles_for(src, without));
}

TEST(Knobs, UnrollRemovesLoopOverhead) {
  const std::string src = R"(
    uchar b[16];
    int f() {
      int i;
      for (i = 0; i < 16; i = i + 1) b[i] = i;
      return b[15];
    }
  )";
  CodegenOptions rolled;
  rolled.debug_hooks = false;
  CodegenOptions unrolled = rolled;
  unrolled.unroll_loops = true;
  EXPECT_GT(cycles_for(src, rolled), cycles_for(src, unrolled));
}

TEST(Knobs, RootPlacementBeatsXmem) {
  const std::string src = R"(
    xmem uchar t[64];
    int f() {
      int i; int s;
      s = 0;
      for (i = 0; i < 64; i = i + 1) s = s + t[i];
      return s;
    }
  )";
  CodegenOptions xmem;
  xmem.debug_hooks = false;
  CodegenOptions root = xmem;
  root.xmem_tables = false;
  EXPECT_GT(cycles_for(src, xmem), cycles_for(src, root));
}

TEST(Knobs, PeepholeShrinksOrMatchesCode) {
  const std::string src = R"(
    int f() {
      int a; int b;
      a = 3; b = 4;
      return a * b + a - b;
    }
  )";
  CodegenOptions plain;
  plain.debug_hooks = false;
  CodegenOptions peep = plain;
  peep.peephole = true;
  auto p1 = compile(src, plain);
  auto p2 = compile(src, peep);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_LE(p2->code_bytes, p1->code_bytes);
  EXPECT_LT(cycles_for(src, peep), cycles_for(src, plain));
}

TEST(Knobs, DebugHookCountReported) {
  auto out = compile("int f() { int i; i = 1; i = 2; return i; }",
                     CodegenOptions::debug_defaults());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->debug_hook_count, 3u);
  auto out2 = compile("int f() { int i; i = 1; i = 2; return i; }",
                      CodegenOptions::all_optimizations());
  ASSERT_TRUE(out2.ok());
  EXPECT_EQ(out2->debug_hook_count, 0u);
}

// ---------------------------------------------------------------------------
// Board-observable state: globals land at their symbols
// ---------------------------------------------------------------------------

TEST(Compiled, GlobalsReadableThroughImageSymbols) {
  const std::string src = R"(
    uchar out[4];
    int f() {
      out[0] = 0xDE; out[1] = 0xAD; out[2] = 0xBE; out[3] = 0xEF;
      return 0;
    }
  )";
  auto compiled = compile(src, CodegenOptions::debug_defaults());
  ASSERT_TRUE(compiled.ok());
  Board board;
  board.load(compiled->image);
  ASSERT_TRUE(board.call("f_f").ok());
  u32 addr = 0;
  ASSERT_TRUE(compiled->image.find_symbol("g_out", addr));
  EXPECT_EQ(board.mem().read(static_cast<u16>(addr)), 0xDE);
  EXPECT_EQ(board.mem().read(static_cast<u16>(addr + 3)), 0xEF);
}

TEST(Compiled, InterpreterGlobalAccessors) {
  auto prog = parse("int x; uchar b[3]; int f() { x = 7; b[2] = 300; return 0; }");
  ASSERT_TRUE(prog.ok());
  auto in = Interpreter::create(*prog);
  ASSERT_TRUE(in.ok());
  ASSERT_TRUE(in->call("f", {}).ok());
  EXPECT_EQ(*in->global("x"), 7);
  EXPECT_EQ(*in->global("b", 2), 300 & 0xFF);
  ASSERT_TRUE(in->set_global("x", 0, 99).is_ok());
  EXPECT_EQ(*in->global("x"), 99);
  EXPECT_FALSE(in->global("nope").ok());
  EXPECT_FALSE(in->global("b", 9).ok());
}

TEST(Interp, CallWithArguments) {
  auto prog = parse("int add(int a, int b) { return a + b; }");
  ASSERT_TRUE(prog.ok());
  auto in = Interpreter::create(*prog);
  ASSERT_TRUE(in.ok());
  EXPECT_EQ(*in->call("add", {40000, 30000}), static_cast<u16>(70000));
}

TEST(Interp, InfiniteLoopHitsBudget) {
  auto prog = parse("int f() { while (1) { } return 0; }");
  ASSERT_TRUE(prog.ok());
  auto in = Interpreter::create(*prog);
  ASSERT_TRUE(in.ok());
  auto r = in->call("f", {}, 10'000);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::ErrorCode::kTimeout);
}

}  // namespace
}  // namespace rmc::dcc
