// Abuse-harness tests: the hardened record bounds, session-cache integrity
// rejection, the deterministic fuzzer, the regression corpus
// (tests/corpus/issl/*.bin — every file is a shape that once mattered), and
// the TCP front door under spoofed SYN floods (DESIGN.md §13, E15).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "abuse/fuzz.h"
#include "abuse/hostile.h"
#include "common/prng.h"
#include "issl/record.h"
#include "issl/session_cache.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "telemetry/metrics.h"

namespace rmc {
namespace {

using common::u64;
using common::u8;

std::string corpus_path(const char* file) {
  return std::string(RMC_REPO_ROOT) + "/tests/corpus/issl/" + file;
}

const char* const kCorpusFiles[] = {
    "oversize_len.bin",   "bad_version.bin",     "zero_len_alert.bin",
    "truncated_hello.bin", "hs_len_bomb.bin",
};

// ---------------------------------------------------------------------------
// Record-layer hardening (satellite a)
// ---------------------------------------------------------------------------

TEST(RecordHardening, LengthAtBoundIsBufferedNotRefused) {
  common::Xorshift64 rng(1);
  issl::RecordCodec codec(rng);
  // A header claiming exactly kMaxRecordLen is legal: the codec should wait
  // for the body, not poison itself.
  const auto rec = abuse::raw_record(
      1, issl::kIsslVersion, static_cast<common::u16>(issl::kMaxRecordLen),
      {});
  ASSERT_TRUE(codec.feed(rec).is_ok());
  auto popped = codec.pop();
  ASSERT_TRUE(popped.ok());
  EXPECT_FALSE(popped.value().has_value());  // need more bytes
  EXPECT_FALSE(codec.poisoned());
  EXPECT_EQ(codec.malformed_records(), 0u);
}

TEST(RecordHardening, LengthPastBoundPoisonsBeforeBuffering) {
  common::Xorshift64 rng(1);
  issl::RecordCodec codec(rng);
  const auto rec = abuse::raw_record(
      1, issl::kIsslVersion,
      static_cast<common::u16>(issl::kMaxRecordLen + 1), {});
  ASSERT_TRUE(codec.feed(rec).is_ok());
  auto popped = codec.pop();
  EXPECT_FALSE(popped.ok());
  EXPECT_TRUE(codec.poisoned());
  EXPECT_EQ(codec.malformed_records(), 1u);
  // Nothing was buffered on the attacker's behalf beyond the refused header.
  EXPECT_LE(codec.buffered_bytes(), issl::kRecordHeaderBytes);
}

TEST(RecordHardening, GatedTelemetryMirrorsMalformedCounter) {
  auto& counter =
      telemetry::Registry::global().counter("issl.malformed_records");
  const u64 before = counter.value();

  // Telemetry off (the default): the codec counts, the registry does not —
  // this is what keeps pre-existing bench JSON byte-identical.
  {
    common::Xorshift64 rng(2);
    issl::RecordCodec codec(rng);
    ASSERT_TRUE(codec.feed(abuse::raw_record(1, 0x31, 1, {})).is_ok());
    EXPECT_FALSE(codec.pop().ok());
    EXPECT_EQ(codec.malformed_records(), 1u);
    EXPECT_EQ(counter.value(), before);
  }

  issl::set_hardening_telemetry(true);
  {
    common::Xorshift64 rng(2);
    issl::RecordCodec codec(rng);
    ASSERT_TRUE(codec.feed(abuse::raw_record(1, 0x31, 1, {})).is_ok());
    EXPECT_FALSE(codec.pop().ok());
    EXPECT_EQ(counter.value(), before + 1);
  }
  issl::set_hardening_telemetry(false);
}

// ---------------------------------------------------------------------------
// Session-cache integrity (satellite b)
// ---------------------------------------------------------------------------

TEST(CacheIntegrity, TamperedEntryIsRejectedAtLookupAndWiped) {
  issl::SessionCache cache(4);
  u8 id[issl::kSessionIdBytes];
  u8 master[issl::kMasterSecretBytes];
  for (std::size_t i = 0; i < sizeof id; ++i) id[i] = static_cast<u8>(i);
  for (std::size_t i = 0; i < sizeof master; ++i)
    master[i] = static_cast<u8>(0x40 + i);
  cache.insert(id, master, 1, 16);

  // The battery-poisoning choreography: snapshot, flip one master byte,
  // restore. restore() takes the image at face value (boot stays O(1)).
  issl::SessionCacheData snap = cache.data();
  snap.entries[0].master[0] ^= 0xFF;
  cache.restore(snap);
  EXPECT_EQ(cache.size(), 1u);

  // lookup() is where the checksum is enforced: reject, wipe, count.
  issl::ResumptionTicket out;
  EXPECT_FALSE(cache.lookup(id, &out));
  EXPECT_EQ(cache.integrity_rejects(), 1u);
  EXPECT_EQ(cache.size(), 0u);  // the slot was scrubbed, not just skipped
  // And the reject is also a miss: the caller falls back to a full
  // handshake rather than erroring out.
  EXPECT_GE(cache.misses(), 1u);
}

TEST(CacheIntegrity, UntamperedEntrySurvivesSnapshotRoundTrip) {
  issl::SessionCache cache(4);
  u8 id[issl::kSessionIdBytes] = {9};
  u8 master[issl::kMasterSecretBytes] = {7};
  cache.insert(id, master, 0, 16);
  issl::SessionCacheData snap = cache.data();
  cache.restore(snap);
  issl::ResumptionTicket out;
  EXPECT_TRUE(cache.lookup(id, &out));
  EXPECT_EQ(out.valid, 1);
  EXPECT_EQ(cache.integrity_rejects(), 0u);
}

// ---------------------------------------------------------------------------
// Deterministic fuzzer (tentpole)
// ---------------------------------------------------------------------------

TEST(Fuzzer, SameSeedSameEverything) {
  abuse::Fuzzer a(0xD00D), b(0xD00D);
  a.add_default_seeds();
  b.add_default_seeds();
  const auto sa = a.run(150);
  const auto sb = b.run(150);
  EXPECT_EQ(sa.iterations, sb.iterations);
  EXPECT_EQ(sa.wedges, sb.wedges);
  EXPECT_EQ(sa.session_failures, sb.session_failures);
  EXPECT_EQ(sa.record_poisons, sb.record_poisons);
  EXPECT_EQ(sa.malformed_records, sb.malformed_records);
  EXPECT_EQ(sa.coverage_features, sb.coverage_features);
  EXPECT_EQ(sa.corpus_size, sb.corpus_size);
  ASSERT_EQ(a.corpus().size(), b.corpus().size());
  for (std::size_t i = 0; i < a.corpus().size(); ++i) {
    EXPECT_EQ(a.corpus()[i], b.corpus()[i]) << "corpus entry " << i;
  }
}

TEST(Fuzzer, SeedsGrowCoverageAndNothingWedges) {
  abuse::Fuzzer f(0xE15);
  f.add_default_seeds();
  const auto s = f.run(200);
  EXPECT_EQ(s.wedges, 0u) << "an input wedged a session: "
                          << f.wedge_inputs().size() << " repro(s) held";
  EXPECT_GE(s.coverage_features, 16u);  // the seeds alone clear this bar
  EXPECT_GE(s.corpus_size, 8u);         // every default seed is interesting
}

TEST(Fuzzer, MutatorIsDeterministicAndBounded) {
  abuse::Fuzzer a(42), b(42);
  std::vector<u8> base = {1, 0x30, 0, 4, 9, 9, 9, 9};
  for (int i = 0; i < 50; ++i) {
    const auto ma = a.mutate(base);
    const auto mb = b.mutate(base);
    EXPECT_EQ(ma, mb);
    EXPECT_LE(ma.size(), 4096u);
  }
}

// ---------------------------------------------------------------------------
// Regression corpus: shapes that once mattered must never wedge again
// ---------------------------------------------------------------------------

TEST(Corpus, FilesLoadAndAreNonEmpty) {
  for (const char* f : kCorpusFiles) {
    EXPECT_FALSE(abuse::load_corpus_file(corpus_path(f)).empty())
        << corpus_path(f);
  }
}

TEST(Corpus, NoInputWedgesAnyTarget) {
  abuse::Fuzzer f(1);
  for (const char* file : kCorpusFiles) {
    const auto bytes = abuse::load_corpus_file(corpus_path(file));
    ASSERT_FALSE(bytes.empty()) << file;
    for (const bool sealed : {false, true}) {
      const auto r = f.run_record_target(bytes, sealed);
      EXPECT_FALSE(r.wedged) << file << " sealed=" << sealed;
    }
    for (const bool eof : {false, true}) {
      const auto r = f.run_session_target(bytes, eof);
      EXPECT_FALSE(r.wedged) << file << " eof=" << eof;
    }
  }
}

TEST(Corpus, LengthBombFailsFastWithoutBuffering) {
  abuse::Fuzzer f(1);
  const auto bomb = abuse::load_corpus_file(corpus_path("hs_len_bomb.bin"));
  ASSERT_FALSE(bomb.empty());
  // The 64 KB handshake-length claim must terminate the session (alert +
  // failed), not leave it pumping toward a body that will never arrive.
  const auto r = f.run_session_target(bomb, /*eof_after_input=*/false);
  EXPECT_FALSE(r.wedged);
  EXPECT_EQ(r.final_state,
            static_cast<int>(issl::SessionState::kFailed));
}

// ---------------------------------------------------------------------------
// TCP front door: spoofed SYN flood vs the counted backlog
// ---------------------------------------------------------------------------

TEST(SynFlood, EmbryoTimeoutReclaimsBacklogAndServiceRecovers) {
  net::SimNet medium(99);
  net::TcpStack board(medium, 1);
  net::TcpStack client_host(medium, 3);
  net::TcpStack attacker_host(medium, 4);
  board.set_syn_rcvd_timeout_ms(500);
  auto listener = board.listen(4433, /*backlog=*/4);
  ASSERT_TRUE(listener.ok());

  abuse::HostileClient::Options opts;
  opts.behavior = abuse::Behavior::kSynFlood;
  opts.flood_syns_per_poll = 4;
  opts.flood_polls = 300;
  abuse::HostileClient flood(attacker_host, medium, 1, 4433, 0xF100D, opts);

  for (int t = 0; t < 300; ++t) {
    (void)flood.poll();
    medium.tick(1);
  }
  // The flood parked embryos and overflowed the counted backlog...
  EXPECT_GT(board.syn_backlog_drops(), 0u);
  EXPECT_LE(board.half_open_count(), 4u);
  // ...run past the timeout horizon and the embryos are reclaimed.
  medium.tick(600);
  EXPECT_GT(board.embryonic_timeouts(), 0u);
  EXPECT_EQ(board.half_open_count(), 0u);

  // A legitimate client connects fine afterwards: no permanent damage.
  auto c = client_host.connect(1, 4433);
  ASSERT_TRUE(c.ok());
  medium.tick(20);
  EXPECT_TRUE(client_host.is_established(*c));
  auto sc = board.accept(*listener);
  EXPECT_TRUE(sc.ok());
}

// ---------------------------------------------------------------------------
// Crafting helpers shared across bench / fuzzer / tests
// ---------------------------------------------------------------------------

TEST(Crafting, RawRecordWritesClaimedLengthVerbatim) {
  const u8 body[3] = {0xAA, 0xBB, 0xCC};
  const auto rec = abuse::raw_record(2, issl::kIsslVersion, 0xFFFF, body);
  ASSERT_EQ(rec.size(), issl::kRecordHeaderBytes + 3);
  EXPECT_EQ(rec[2], 0xFF);  // the lie survives crafting untouched
  EXPECT_EQ(rec[3], 0xFF);
}

TEST(Crafting, ClientHelloRecordIsAcceptedByAServer) {
  // The crafted hello must be protocol-valid: feed it to a real server
  // session and the server should reply (ServerHello bytes written), not
  // fail. This pins the crafting helpers to the real wire format — if the
  // protocol evolves, this test fails before a bench silently tests nothing.
  common::Xorshift64 rng(5);
  const auto hello = abuse::client_hello_record(
      rng, issl::Config::embedded_port(), nullptr);
  abuse::Fuzzer f(1);
  const auto r = f.run_session_target(hello, /*eof_after_input=*/false);
  EXPECT_FALSE(r.wedged);
  EXPECT_EQ(r.malformed, 0u);
}

}  // namespace
}  // namespace rmc
