// Timeseries sampler + SLO engine (DESIGN.md §16): bounded delta rings and
// wraparound determinism, windowed counter sums and histogram percentiles,
// alert fire/clear semantics (hold-down, min-events, multi-window burn
// rate), kSlo trace emission, bounded sampler memory, and the hot-path
// discipline satellite: zero registry name lookups across repeated secure
// handshakes once every site has warmed its cached handle.
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "issl/issl.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "services/supervisor.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace rmc {
namespace {

using common::u64;
using common::u8;
using telemetry::Registry;
using telemetry::Sampler;
using telemetry::SamplerConfig;
using telemetry::SloEngine;
using telemetry::SloKind;
using telemetry::SloRule;

#if RMC_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Sampler: delta rings
// ---------------------------------------------------------------------------

TEST(SamplerTest, CountersBecomePerPeriodDeltas) {
  Registry r;
  telemetry::Counter& c = r.counter("svc.requests");
  Sampler s(SamplerConfig{.period_ms = 10, .ring_capacity = 16}, r);

  EXPECT_FALSE(s.tick(0));  // first period has not elapsed yet
  c.add(5);
  EXPECT_FALSE(s.tick(9));
  EXPECT_TRUE(s.tick(10));
  c.add(7);
  EXPECT_FALSE(s.tick(15));  // mid-period: cheap no-op
  EXPECT_TRUE(s.tick(20));
  EXPECT_TRUE(s.tick(30));  // no traffic this period -> delta 0

  const auto pts = s.points("svc.requests");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].t_ms, 10u);
  EXPECT_DOUBLE_EQ(pts[0].value, 5.0);
  EXPECT_EQ(pts[1].t_ms, 20u);
  EXPECT_DOUBLE_EQ(pts[1].value, 7.0);
  EXPECT_EQ(pts[2].t_ms, 30u);
  EXPECT_DOUBLE_EQ(pts[2].value, 0.0);
  EXPECT_EQ(s.samples(), 3u);
  EXPECT_EQ(s.window_counter_sum("svc.requests", 2), 7u);
  EXPECT_EQ(s.window_counter_sum("svc.requests", 99), 12u);  // clamped
}

TEST(SamplerTest, ClockJumpTakesOneSampleAndRealigns) {
  Registry r;
  telemetry::Counter& c = r.counter("c");
  Sampler s(SamplerConfig{.period_ms = 10, .ring_capacity = 8}, r);
  c.add(3);
  // The board was wedged for 75 virtual ms: one catch-up sample covering
  // the whole gap, then the schedule realigns to the next boundary.
  EXPECT_TRUE(s.tick(75));
  EXPECT_FALSE(s.tick(76));
  EXPECT_FALSE(s.tick(79));
  EXPECT_TRUE(s.tick(80));
  const auto pts = s.points("c");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].t_ms, 75u);
  EXPECT_DOUBLE_EQ(pts[0].value, 3.0);
  EXPECT_EQ(pts[1].t_ms, 80u);
}

TEST(SamplerTest, RingWraparoundIsDeterministic) {
  Registry r;
  telemetry::Counter& c = r.counter("c");
  // Two identical samplers scraping the same registry: sampling is
  // read-only, so both must retain byte-identical rings through wraparound.
  Sampler a(SamplerConfig{.period_ms = 1, .ring_capacity = 4}, r);
  Sampler b(SamplerConfig{.period_ms = 1, .ring_capacity = 4}, r);
  for (u64 t = 1; t <= 10; ++t) {
    c.add(t);  // distinct delta per period
    EXPECT_TRUE(a.tick(t));
    EXPECT_TRUE(b.tick(t));
  }
  const auto pa = a.points("c");
  const auto pb = b.points("c");
  ASSERT_EQ(pa.size(), 4u);  // capacity, not sample count
  ASSERT_EQ(pb.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pa[i].t_ms, pb[i].t_ms);
    EXPECT_DOUBLE_EQ(pa[i].value, pb[i].value);
  }
  // Oldest retained point is t=7 (10 samples, capacity 4).
  EXPECT_EQ(pa[0].t_ms, 7u);
  EXPECT_DOUBLE_EQ(pa[0].value, 7.0);
  EXPECT_EQ(pa[3].t_ms, 10u);
  EXPECT_DOUBLE_EQ(pa[3].value, 10.0);
  EXPECT_EQ(a.samples(), 10u);
}

TEST(SamplerTest, MemoryIsBoundedByRingCapacity) {
  Registry r;
  telemetry::Counter& c = r.counter("c");
  r.gauge("g").set(1);
  const u64 bounds[] = {10, 100};
  telemetry::Histogram& h = r.histogram("h", bounds);
  Sampler s(SamplerConfig{.period_ms = 1, .ring_capacity = 4}, r);
  for (u64 t = 1; t <= 6; ++t) {
    c.add(1);
    h.record(t);
    s.tick(t);
  }
  const std::size_t after_fill = s.memory_bytes();
  EXPECT_GT(after_fill, 0u);
  for (u64 t = 7; t <= 200; ++t) {
    c.add(1);
    h.record(t);
    s.tick(t);
  }
  // Rings overwrite in place: not one byte of growth after fill.
  EXPECT_EQ(s.memory_bytes(), after_fill);
  EXPECT_EQ(s.series_count(), 3u);
}

TEST(SamplerTest, HistogramWindowPercentileUsesOnlyWindowedDeltas) {
  Registry r;
  const u64 bounds[] = {100, 1'000};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  Sampler s(SamplerConfig{.period_ms = 1, .ring_capacity = 16}, r);
  // Periods 1..3: fast traffic (bucket 0); periods 4..5: slow (overflow).
  for (u64 t = 1; t <= 3; ++t) {
    for (int i = 0; i < 10; ++i) h.record(50);
    s.tick(t);
  }
  for (u64 t = 4; t <= 5; ++t) {
    for (int i = 0; i < 10; ++i) h.record(5'000);
    s.tick(t);
  }
  EXPECT_EQ(s.window_histogram_count("lat", 2), 20u);
  EXPECT_EQ(s.window_histogram_count("lat", 5), 50u);
  // Last 2 periods are all-slow: p99 interpolates in the overflow bucket.
  EXPECT_GT(s.window_percentile("lat", 2, 99.0), 1'000.0);
  // A 5-period window mixes 30 fast + 20 slow: the median is still fast.
  EXPECT_LE(s.window_percentile("lat", 5, 50.0), 100.0);
  const auto counts = s.histogram_count_points("lat");
  ASSERT_EQ(counts.size(), 5u);
  EXPECT_DOUBLE_EQ(counts[0].value, 10.0);
}

TEST(SamplerTest, RegistryResetReadsAsFreshBaselineNotGarbage) {
  Registry r;
  telemetry::Counter& c = r.counter("c");
  Sampler s(SamplerConfig{.period_ms = 1, .ring_capacity = 8}, r);
  c.add(100);
  s.tick(1);
  r.reset();  // scenario isolation in the benches
  c.add(4);
  s.tick(2);
  const auto pts = s.points("c");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 100.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 4.0);  // not a u64 underflow
}

TEST(SamplerTest, ExportsAreDeterministicAndCarrySeries) {
  Registry r;
  telemetry::Counter& c = r.counter("c");
  const u64 bounds[] = {100};
  telemetry::Histogram& h = r.histogram("lat", bounds);
  Sampler s(SamplerConfig{.period_ms = 1, .ring_capacity = 8}, r);
  for (u64 t = 1; t <= 3; ++t) {
    c.add(2);
    h.record(50);
    s.tick(t);
  }
  telemetry::JsonWriter w;
  s.write_json(w);
  EXPECT_TRUE(w.balanced());
  const std::string json = w.str();
  EXPECT_NE(json.find("\"period_ms\":1"), std::string::npos);
  EXPECT_NE(json.find("\"c\":{\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"kind\":\"histogram\""), std::string::npos);

  const std::string csv = s.csv();
  EXPECT_NE(csv.find("series,t_ms,value\n"), std::string::npos);
  EXPECT_NE(csv.find("c,1,2\n"), std::string::npos);
  EXPECT_NE(csv.find("lat.count,3,1\n"), std::string::npos);

  telemetry::JsonWriter w2;
  s.write_json(w2);
  EXPECT_EQ(json, w2.str());  // byte-deterministic re-export
  EXPECT_EQ(csv, s.csv());

  // Chrome export carries "ph":"C" counter tracks and stays balanced JSON.
  const std::string trace = s.chrome_trace_json({});
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"lat.p99\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO engine
// ---------------------------------------------------------------------------

struct SloWorld {
  Registry reg;
  telemetry::Counter& good = reg.counter("ok");
  telemetry::Counter& bad = reg.counter("err");
  Sampler sampler{SamplerConfig{.period_ms = 1, .ring_capacity = 64}, reg};
  SloEngine engine{sampler};
  u64 now = 0;

  // One sample period: `g` successes, `b` failures, then evaluate.
  void step(u64 g, u64 b) {
    ++now;
    good.add(g);
    bad.add(b);
    sampler.tick(now);
    engine.evaluate(now);
  }
};

TEST(SloEngineTest, AvailabilityFiresOnBreachAndClearsAfterHoldDown) {
  SloWorld w;
  SloRule rule;
  rule.name = "availability";
  rule.kind = SloKind::kAvailability;
  rule.good_counter = "ok";
  rule.bad_counter = "err";
  rule.availability_floor = 0.9;
  rule.window = 5;
  rule.clear_after = 2;
  const std::size_t idx = w.engine.add_rule(rule);

  for (int i = 0; i < 10; ++i) w.step(10, 0);
  EXPECT_FALSE(w.engine.firing(idx));
  EXPECT_TRUE(w.engine.alerts().empty());

  // Full outage: availability collapses within the 5-period window.
  for (int i = 0; i < 5; ++i) w.step(0, 10);
  ASSERT_FALSE(w.engine.alerts().empty());
  EXPECT_TRUE(w.engine.alerts().front().fire);
  EXPECT_TRUE(w.engine.firing(idx));
  const u64 fire_at = w.engine.alerts().front().t_ms;
  EXPECT_LE(fire_at, 12u);  // within 2 periods of onset (t=11)

  // Recovery: the breach ages out of the window, then the hold-down runs.
  for (int i = 0; i < 10; ++i) w.step(10, 0);
  ASSERT_EQ(w.engine.alerts().size(), 2u);
  EXPECT_FALSE(w.engine.alerts().back().fire);
  EXPECT_FALSE(w.engine.firing(idx));
  EXPECT_GE(w.engine.alerts().back().value, 0.9);
}

TEST(SloEngineTest, IdleWindowsAreNotJudged) {
  SloWorld w;
  SloRule rule;
  rule.name = "availability";
  rule.kind = SloKind::kAvailability;
  rule.good_counter = "ok";
  rule.bad_counter = "err";
  rule.availability_floor = 0.9;
  rule.window = 3;
  rule.min_events = 5;
  const std::size_t idx = w.engine.add_rule(rule);
  // A lone failure in an otherwise idle service is below min_events: no
  // verdict, no alert — silence is not evidence.
  w.step(0, 1);
  for (int i = 0; i < 10; ++i) w.step(0, 0);
  EXPECT_FALSE(w.engine.firing(idx));
  EXPECT_TRUE(w.engine.alerts().empty());
}

TEST(SloEngineTest, BurnRateNeedsBothWindows) {
  SloWorld w;
  SloRule rule;
  rule.name = "burn";
  rule.kind = SloKind::kBurnRate;
  rule.good_counter = "ok";
  rule.bad_counter = "err";
  rule.target = 0.9;       // budget = 0.1
  rule.threshold = 2.0;    // fire at >= 20% errors in BOTH windows
  rule.short_window = 2;
  rule.long_window = 20;
  rule.clear_after = 2;
  const std::size_t idx = w.engine.add_rule(rule);

  for (int i = 0; i < 20; ++i) w.step(10, 0);
  // A 2-period blip: the short window burns hot (100% errors) but the long
  // window has digested only 20/200 = 10% -> burn 1.0 < 2.0. No page.
  w.step(0, 10);
  w.step(0, 10);
  EXPECT_FALSE(w.engine.firing(idx));
  for (int i = 0; i < 20; ++i) w.step(10, 0);
  EXPECT_TRUE(w.engine.alerts().empty());

  // A sustained outage trips both windows.
  for (int i = 0; i < 10; ++i) w.step(0, 10);
  EXPECT_TRUE(w.engine.firing(idx));
  ASSERT_FALSE(w.engine.alerts().empty());
  EXPECT_TRUE(w.engine.alerts().front().fire);
  EXPECT_GE(w.engine.alerts().front().value, 2.0);
}

TEST(SloEngineTest, LatencyCeilingOnWindowedPercentile) {
  SloWorld w;
  const u64 bounds[] = {100, 1'000};
  telemetry::Histogram& lat = w.reg.histogram("lat", bounds);
  SloRule rule;
  rule.name = "p99";
  rule.kind = SloKind::kLatency;
  rule.histogram = "lat";
  rule.quantile = 99.0;
  rule.ceiling = 500.0;
  rule.window = 3;
  rule.clear_after = 2;
  const std::size_t idx = w.engine.add_rule(rule);

  const auto step_lat = [&](u64 v) {
    ++w.now;
    for (int i = 0; i < 10; ++i) lat.record(v);
    w.sampler.tick(w.now);
    w.engine.evaluate(w.now);
  };
  for (int i = 0; i < 5; ++i) step_lat(50);
  EXPECT_FALSE(w.engine.firing(idx));
  for (int i = 0; i < 3; ++i) step_lat(5'000);
  EXPECT_TRUE(w.engine.firing(idx));
  ASSERT_FALSE(w.engine.alerts().empty());
  EXPECT_GT(w.engine.alerts().front().value, 500.0);
  // Fast again: the slow periods age out of the window, then hold-down.
  for (int i = 0; i < 6; ++i) step_lat(50);
  EXPECT_FALSE(w.engine.firing(idx));
  EXPECT_EQ(w.engine.alerts().size(), 2u);
}

TEST(SloEngineTest, TransitionsEmitKSloTraceEvents) {
  auto& tracer = telemetry::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  tracer.set_now_ms(777);

  SloWorld w;
  SloRule rule;
  rule.name = "availability";
  rule.kind = SloKind::kAvailability;
  rule.good_counter = "ok";
  rule.bad_counter = "err";
  rule.availability_floor = 0.9;
  rule.window = 2;
  const std::size_t idx = w.engine.add_rule(rule);
  w.step(0, 10);
  w.step(0, 10);
  EXPECT_TRUE(w.engine.firing(idx));

  ASSERT_FALSE(tracer.events().empty());
  const telemetry::TraceEvent& e = tracer.events().back();
  EXPECT_EQ(e.layer, static_cast<u8>(telemetry::TraceLayer::kSlo));
  EXPECT_EQ(e.event, telemetry::SloTrace::kFire);
  EXPECT_EQ(e.a, static_cast<common::u32>(idx));
  EXPECT_EQ(e.t_ms, 777u);
  EXPECT_STREQ(telemetry::trace_layer_name(telemetry::TraceLayer::kSlo),
               "slo");
  EXPECT_STREQ(
      telemetry::trace_event_name(telemetry::TraceLayer::kSlo, e.event),
      "slo_fire");

  tracer.set_enabled(false);
  tracer.clear();
}

// ---------------------------------------------------------------------------
// Hot-path discipline: zero name lookups across warmed handshakes
// ---------------------------------------------------------------------------

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

TEST(HotPathTest, NoRegistryNameLookupsAcrossWarmedHandshakes) {
  // Latency telemetry ON: its histogram handles must be as warmed-up as
  // every other hot-path instrument (the satellite this test pins).
  services::set_latency_telemetry(true);

  net::SimNet net(515);
  net::TcpStack backend_stack(net, 2);
  net::TcpStack client_stack(net, 3);
  services::EchoBackend backend(backend_stack, 8000);
  ASSERT_TRUE(backend.start().is_ok());

  services::ServiceBoardConfig cfg;
  cfg.redirector.listen_port = 4433;
  cfg.redirector.backend_ip = 2;
  cfg.redirector.backend_port = 8000;
  cfg.redirector.secure = true;
  cfg.redirector.psk = bytes_of("hot-psk");
  cfg.redirector.tls = issl::Config::embedded_port();
  cfg.redirector.tls.resumption = true;
  cfg.redirector.session_cache_capacity = 8;
  cfg.board_ip = 1;
  cfg.wdt_period_ms = 500;
  services::ServiceBoard board(net, cfg);
  for (int i = 0; i < 30; ++i) {
    board.poll();
    backend.poll();
    net.tick(1);
  }

  issl::Config client_tls = issl::Config::embedded_port();
  client_tls.resumption = true;
  services::Client client(client_stack, 1, 4433, true, client_tls,
                          bytes_of("hot-psk"));
  ASSERT_TRUE(client.start().is_ok());

  const auto echo = [&](std::string_view msg) {
    const std::size_t want = client.received().size() + msg.size();
    if (!client.send(bytes_of(msg)).is_ok()) return false;
    for (int i = 0; i < 2'000; ++i) {
      board.poll();
      backend.poll();
      (void)client.poll();
      net.tick(1);
      if (client.received().size() >= want) return true;
    }
    return false;
  };

  // Warm-up: one full handshake, one resumed handshake — every lazily
  // cached handle (issl record/handshake counters, redirector counters,
  // the full AND resumed latency histograms, the RTT histogram) resolves
  // its name now or never.
  ASSERT_TRUE(echo("warm full"));
  ASSERT_TRUE(client.reconnect().is_ok());
  ASSERT_TRUE(echo("warm resumed"));

  const u64 lookups_before = telemetry::Registry::global().name_lookups();
  for (int cycle = 0; cycle < 4; ++cycle) {
    ASSERT_TRUE(client.reconnect().is_ok()) << "cycle " << cycle;
    ASSERT_TRUE(echo("steady state")) << "cycle " << cycle;
  }
  // The whole point: per-handshake work resolves zero names.
  EXPECT_EQ(telemetry::Registry::global().name_lookups(), lookups_before);

  services::set_latency_telemetry(false);
}

#endif  // RMC_TELEMETRY_ENABLED

}  // namespace
}  // namespace rmc
