// Crypto tests: FIPS-197 known answers for AES (all key sizes, both
// implementations), RFC 3174 / RFC 2202 vectors for SHA-1 / HMAC-SHA1,
// property tests for modes and bignum, and RSA round trips.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/prng.h"
#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/modes.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"

namespace rmc::crypto {
namespace {

using common::from_hex;
using common::to_hex;
using common::u8;

// ---------------------------------------------------------------------------
// GF(2^8) / S-box
// ---------------------------------------------------------------------------

TEST(Gf, MultiplicationKnownValues) {
  EXPECT_EQ(gf_mul(0x57, 0x83), 0xC1);  // FIPS-197 example
  EXPECT_EQ(gf_mul(0x57, 0x13), 0xFE);
  EXPECT_EQ(gf_mul(0x01, 0xAB), 0xAB);
  EXPECT_EQ(gf_mul(0x00, 0xAB), 0x00);
}

TEST(Gf, MultiplicationCommutesAndDistributes) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 11) {
      EXPECT_EQ(gf_mul(static_cast<u8>(a), static_cast<u8>(b)),
                gf_mul(static_cast<u8>(b), static_cast<u8>(a)));
      const u8 c = 0x35;
      EXPECT_EQ(gf_mul(static_cast<u8>(a), static_cast<u8>(b ^ c)),
                gf_mul(static_cast<u8>(a), static_cast<u8>(b)) ^
                    gf_mul(static_cast<u8>(a), c));
    }
  }
}

TEST(Sbox, KnownEntries) {
  EXPECT_EQ(aes_sbox(0x00), 0x63);
  EXPECT_EQ(aes_sbox(0x01), 0x7C);
  EXPECT_EQ(aes_sbox(0x53), 0xED);
  EXPECT_EQ(aes_sbox(0xFF), 0x16);
}

TEST(Sbox, InverseIsInverse) {
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(aes_inv_sbox(aes_sbox(static_cast<u8>(i))), i);
  }
}

TEST(Sbox, IsPermutation) {
  std::array<bool, 256> seen{};
  for (int i = 0; i < 256; ++i) seen[aes_sbox(static_cast<u8>(i))] = true;
  for (bool b : seen) EXPECT_TRUE(b);
}

// ---------------------------------------------------------------------------
// AES known-answer tests (FIPS-197 Appendix C)
// ---------------------------------------------------------------------------

struct AesKat {
  const char* key;
  const char* plain;
  const char* cipher;
};

class AesKnownAnswer : public ::testing::TestWithParam<AesKat> {};

TEST_P(AesKnownAnswer, ReferenceEncryptDecrypt) {
  const auto& kat = GetParam();
  auto aes = Aes::create(from_hex(kat.key));
  ASSERT_TRUE(aes.ok());
  std::array<u8, 16> out{};
  aes->encrypt_block(from_hex(kat.plain), out);
  EXPECT_EQ(to_hex(out), kat.cipher);
  std::array<u8, 16> back{};
  aes->decrypt_block(out, back);
  EXPECT_EQ(to_hex(back), kat.plain);
}

TEST_P(AesKnownAnswer, FastMatchesReference) {
  const auto& kat = GetParam();
  auto fast = AesFast::create(from_hex(kat.key));
  ASSERT_TRUE(fast.ok());
  std::array<u8, 16> out{};
  fast->encrypt_block(from_hex(kat.plain), out);
  EXPECT_EQ(to_hex(out), kat.cipher);
  std::array<u8, 16> back{};
  fast->decrypt_block(out, back);
  EXPECT_EQ(to_hex(back), kat.plain);
}

INSTANTIATE_TEST_SUITE_P(
    Fips197, AesKnownAnswer,
    ::testing::Values(
        AesKat{"000102030405060708090a0b0c0d0e0f",
               "00112233445566778899aabbccddeeff",
               "69c4e0d86a7b0430d8cdb78070b4c55a"},
        AesKat{"000102030405060708090a0b0c0d0e0f1011121314151617",
               "00112233445566778899aabbccddeeff",
               "dda97ca4864cdfe06eaf70a0ec0d7191"},
        AesKat{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1"
               "d1e1f",
               "00112233445566778899aabbccddeeff",
               "8ea2b7ca516745bfeafc49904b496089"},
        // FIPS-197 Appendix B worked example.
        AesKat{"2b7e151628aed2a6abf7158809cf4f3c",
               "3243f6a8885a308d313198a2e0370734",
               "3925841d02dc09fbdc118597196a0b32"}));

TEST(Aes, RejectsBadKeyLength) {
  std::vector<u8> key(15, 0);
  EXPECT_FALSE(Aes::create(key).ok());
  EXPECT_FALSE(AesFast::create(key).ok());
}

TEST(Aes, FastAgreesWithReferenceOnRandomInputs) {
  common::Xorshift64 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u8> key(16 + 8 * (trial % 3));
    rng.fill(key);
    auto ref = Aes::create(key);
    auto fast = AesFast::create(key);
    ASSERT_TRUE(ref.ok() && fast.ok());
    std::array<u8, 16> pt{}, a{}, b{};
    rng.fill(pt);
    ref->encrypt_block(pt, a);
    fast->encrypt_block(pt, b);
    EXPECT_EQ(a, b);
  }
}

TEST(Aes, EncryptDecryptRoundTripProperty) {
  common::Xorshift64 rng(7);
  std::vector<u8> key(16);
  rng.fill(key);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.ok());
  for (int trial = 0; trial < 100; ++trial) {
    std::array<u8, 16> pt{}, ct{}, back{};
    rng.fill(pt);
    aes->encrypt_block(pt, ct);
    aes->decrypt_block(ct, back);
    EXPECT_EQ(pt, back);
    EXPECT_NE(pt, ct);  // identity would be a catastrophic bug
  }
}

// ---------------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------------

TEST(Modes, Pkcs7PadAlwaysAddsBytes) {
  for (std::size_t n = 0; n <= 48; ++n) {
    std::vector<u8> data(n, 0xAA);
    const auto padded = pkcs7_pad(data, 16);
    EXPECT_EQ(padded.size() % 16, 0u);
    EXPECT_GT(padded.size(), data.size());
    auto back = pkcs7_unpad(padded, 16);
    ASSERT_TRUE(back.ok()) << n;
    EXPECT_EQ(*back, data);
  }
}

TEST(Modes, Pkcs7UnpadRejectsTampering) {
  std::vector<u8> data(10, 0x42);
  auto padded = pkcs7_pad(data, 16);
  padded.back() = 0;  // invalid pad byte
  EXPECT_FALSE(pkcs7_unpad(padded, 16).ok());
  padded.back() = 17;  // > block
  EXPECT_FALSE(pkcs7_unpad(padded, 16).ok());
  padded.back() = 6;
  padded[padded.size() - 3] ^= 0xFF;  // inconsistent fill
  EXPECT_FALSE(pkcs7_unpad(padded, 16).ok());
  EXPECT_FALSE(pkcs7_unpad(std::vector<u8>{}, 16).ok());
  EXPECT_FALSE(pkcs7_unpad(std::vector<u8>(15, 1), 16).ok());
}

TEST(Modes, CbcRoundTripAndChaining) {
  common::Xorshift64 rng(3);
  std::vector<u8> key(16), iv(16);
  rng.fill(key);
  rng.fill(iv);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.ok());
  std::vector<u8> pt(64);
  rng.fill(pt);
  const auto ct = cbc_encrypt(*aes, iv, pt);
  EXPECT_EQ(cbc_decrypt(*aes, iv, ct), pt);
  // Identical plaintext blocks must encrypt differently under CBC.
  std::vector<u8> repeated(32, 0x55);
  const auto ct2 = cbc_encrypt(*aes, iv, repeated);
  EXPECT_NE(std::vector<u8>(ct2.begin(), ct2.begin() + 16),
            std::vector<u8>(ct2.begin() + 16, ct2.end()));
}

TEST(Modes, CbcIvChangesCiphertext) {
  std::vector<u8> key(16, 1), iv1(16, 2), iv2(16, 3), pt(32, 4);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.ok());
  EXPECT_NE(cbc_encrypt(*aes, iv1, pt), cbc_encrypt(*aes, iv2, pt));
}

TEST(Modes, EcbLeaksEqualBlocks) {
  // Documents *why* the record layer uses CBC.
  std::vector<u8> key(16, 9), pt(32, 0x77);
  auto aes = Aes::create(key);
  ASSERT_TRUE(aes.ok());
  const auto ct = ecb_encrypt(*aes, pt);
  EXPECT_EQ(std::vector<u8>(ct.begin(), ct.begin() + 16),
            std::vector<u8>(ct.begin() + 16, ct.end()));
}

// ---------------------------------------------------------------------------
// SHA-1 / HMAC (RFC 3174, RFC 2202)
// ---------------------------------------------------------------------------

std::string sha1_hex(std::string_view msg) {
  const auto d = Sha1::digest(std::span<const u8>(
      reinterpret_cast<const u8*>(msg.data()), msg.size()));
  return to_hex(d);
}

TEST(Sha1, Rfc3174Vectors) {
  EXPECT_EQ(sha1_hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(sha1_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnop"
                     "q"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(sha1_hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 s;
  std::vector<u8> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(to_hex(s.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  common::Xorshift64 rng(11);
  std::vector<u8> data(777);
  rng.fill(data);
  Sha1 s;
  // Feed in awkward chunk sizes across the 64-byte boundary.
  std::size_t off = 0;
  const std::size_t sizes[] = {1, 63, 64, 65, 100, 484};
  for (std::size_t sz : sizes) {
    s.update(std::span<const u8>(data.data() + off, sz));
    off += sz;
  }
  ASSERT_EQ(off, data.size());
  EXPECT_EQ(s.finish(), Sha1::digest(data));
}

TEST(Hmac, Rfc2202Vectors) {
  {
    std::vector<u8> key(20, 0x0b);
    const std::string msg = "Hi There";
    EXPECT_EQ(to_hex(hmac_sha1(key, std::span<const u8>(
                                        reinterpret_cast<const u8*>(msg.data()),
                                        msg.size()))),
              "b617318655057264e28bc0b6fb378c8ef146be00");
  }
  {
    const std::string key = "Jefe";
    const std::string msg = "what do ya want for nothing?";
    EXPECT_EQ(
        to_hex(hmac_sha1(
            std::span<const u8>(reinterpret_cast<const u8*>(key.data()),
                                key.size()),
            std::span<const u8>(reinterpret_cast<const u8*>(msg.data()),
                                msg.size()))),
        "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
  }
  {
    std::vector<u8> key(80, 0xaa);  // key longer than block -> hashed
    const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key "
                            "First";
    EXPECT_EQ(to_hex(hmac_sha1(key, std::span<const u8>(
                                        reinterpret_cast<const u8*>(msg.data()),
                                        msg.size()))),
              "aa4ae5e15272d00e95705637ce8a3b55ed402112");
  }
}

TEST(Prf, DeterministicAndLengthExact) {
  std::vector<u8> secret(16, 1), label{'k', 'b'}, seed(32, 2);
  std::vector<u8> out1(100), out2(100);
  prf_sha1(secret, label, seed, out1);
  prf_sha1(secret, label, seed, out2);
  EXPECT_EQ(out1, out2);
  std::vector<u8> out3(100);
  seed[0] ^= 1;
  prf_sha1(secret, label, seed, out3);
  EXPECT_NE(out1, out3);
}

TEST(Prf, PrefixConsistency) {
  // Asking for fewer bytes must give a prefix of asking for more.
  std::vector<u8> secret(16, 7), label{'x'}, seed(8, 9);
  std::vector<u8> small(25), large(80);
  prf_sha1(secret, label, seed, small);
  prf_sha1(secret, label, seed, large);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), large.begin()));
}

// ---------------------------------------------------------------------------
// BigNum
// ---------------------------------------------------------------------------

TEST(BigNumTest, ConstructionAndHex) {
  EXPECT_EQ(BigNum(0).to_hex(), "0");
  EXPECT_EQ(BigNum(0xDEADBEEFull).to_hex(), "deadbeef");
  EXPECT_EQ(BigNum(0x1122334455667788ull).to_hex(), "1122334455667788");
  auto n = BigNum::from_hex("ffeeddccbbaa99887766554433221100");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->to_hex(), "ffeeddccbbaa99887766554433221100");
}

TEST(BigNumTest, BytesRoundTrip) {
  const std::vector<u8> bytes = {0x01, 0x02, 0x03, 0x04, 0x05};
  const BigNum n = BigNum::from_bytes(bytes);
  EXPECT_EQ(n.to_bytes(), bytes);
  auto padded = n.to_bytes_padded(8);
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded->size(), 8u);
  EXPECT_EQ((*padded)[0], 0);
  EXPECT_EQ((*padded)[3], 0x01);
  EXPECT_FALSE(n.to_bytes_padded(3).ok());
}

TEST(BigNumTest, ArithmeticIdentities) {
  common::Xorshift64 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const BigNum a = BigNum::random_bits(96, rng);
    const BigNum b = BigNum::random_bits(64, rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * BigNum(1), a);
    EXPECT_EQ(a * BigNum(0), BigNum(0));
    auto dm = (a * b + a).divmod(b);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient, a + a.divmod(b)->quotient);
  }
}

TEST(BigNumTest, DivModInvariant) {
  common::Xorshift64 rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    const BigNum a = BigNum::random_bits(128, rng);
    const BigNum b = BigNum::random_bits(40 + trial % 60, rng);
    auto dm = a.divmod(b);
    ASSERT_TRUE(dm.ok());
    EXPECT_EQ(dm->quotient * b + dm->remainder, a);
    EXPECT_TRUE(dm->remainder < b);
  }
}

TEST(BigNumTest, DivisionByZeroFails) {
  EXPECT_FALSE(BigNum(5).divmod(BigNum(0)).ok());
}

TEST(BigNumTest, Shifts) {
  const BigNum one(1);
  EXPECT_EQ((one << 100).bit_length(), 101u);
  EXPECT_EQ((one << 100) >> 100, one);
  const BigNum v(0xABCDu);
  EXPECT_EQ((v << 4).to_hex(), "abcd0");
  EXPECT_EQ((v >> 4).to_hex(), "abc");
}

TEST(BigNumTest, ModExpSmallKnown) {
  // 4^13 mod 497 = 445 (classic example)
  EXPECT_EQ(BigNum(4).modexp(BigNum(13), BigNum(497)), BigNum(445));
  // Fermat: a^(p-1) = 1 mod p
  const BigNum p(1000003);
  EXPECT_EQ(BigNum(12345).modexp(p - BigNum(1), p), BigNum(1));
}

TEST(BigNumTest, ModInverse) {
  common::Xorshift64 rng(17);
  const BigNum m = BigNum::generate_prime(64, rng);
  for (int trial = 0; trial < 20; ++trial) {
    const BigNum a = BigNum(2) + BigNum::random_below(m - BigNum(3), rng);
    auto inv = BigNum::modinverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ((a * *inv).mod(m), BigNum(1));
  }
}

TEST(BigNumTest, ModInverseFailsWhenNotCoprime) {
  EXPECT_FALSE(BigNum::modinverse(BigNum(6), BigNum(9)).ok());
}

TEST(BigNumTest, PrimalityKnownValues) {
  common::Xorshift64 rng(23);
  EXPECT_TRUE(BigNum::is_probable_prime(BigNum(2), rng));
  EXPECT_TRUE(BigNum::is_probable_prime(BigNum(65537), rng));
  EXPECT_TRUE(BigNum::is_probable_prime(BigNum(1000003), rng));
  EXPECT_FALSE(BigNum::is_probable_prime(BigNum(1), rng));
  EXPECT_FALSE(BigNum::is_probable_prime(BigNum(1000001), rng));  // 101*9901
  EXPECT_FALSE(BigNum::is_probable_prime(BigNum(561), rng));  // Carmichael
}

TEST(BigNumTest, GeneratePrimeHasRequestedWidth) {
  common::Xorshift64 rng(31);
  const BigNum p = BigNum::generate_prime(80, rng);
  EXPECT_EQ(p.bit_length(), 80u);
  EXPECT_TRUE(p.is_odd());
}

// ---------------------------------------------------------------------------
// RSA
// ---------------------------------------------------------------------------

TEST(Rsa, EncryptDecryptRoundTrip) {
  common::Xorshift64 rng(101);
  const RsaKeyPair kp = rsa_generate(256, rng);
  const std::vector<u8> msg = {'s', 'e', 's', 's', 'i', 'o', 'n', 'k'};
  auto ct = rsa_encrypt(kp.pub, msg, rng);
  ASSERT_TRUE(ct.ok()) << ct.status().to_string();
  EXPECT_EQ(ct->size(), kp.pub.modulus_bytes());
  auto pt = rsa_decrypt(kp.priv, *ct);
  ASSERT_TRUE(pt.ok()) << pt.status().to_string();
  EXPECT_EQ(*pt, msg);
}

TEST(Rsa, PaddingIsRandomized) {
  common::Xorshift64 rng(102);
  const RsaKeyPair kp = rsa_generate(256, rng);
  const std::vector<u8> msg = {1, 2, 3};
  auto c1 = rsa_encrypt(kp.pub, msg, rng);
  auto c2 = rsa_encrypt(kp.pub, msg, rng);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);
}

TEST(Rsa, RejectsOversizeMessage) {
  common::Xorshift64 rng(103);
  const RsaKeyPair kp = rsa_generate(256, rng);
  std::vector<u8> msg(kp.pub.modulus_bytes() - 10, 0x41);
  EXPECT_FALSE(rsa_encrypt(kp.pub, msg, rng).ok());
}

TEST(Rsa, WrongKeyFailsCleanly) {
  common::Xorshift64 rng(104);
  const RsaKeyPair kp1 = rsa_generate(256, rng);
  const RsaKeyPair kp2 = rsa_generate(256, rng);
  const std::vector<u8> msg = {9, 9, 9};
  auto ct = rsa_encrypt(kp1.pub, msg, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = rsa_decrypt(kp2.priv, *ct);
  // Either explicit padding failure or garbage != msg; both acceptable,
  // but it must not crash and must not return the plaintext.
  if (pt.ok()) {
    EXPECT_NE(*pt, msg);
  }
}

TEST(Rsa, TamperedCiphertextRejectedOrGarbage) {
  common::Xorshift64 rng(105);
  const RsaKeyPair kp = rsa_generate(256, rng);
  const std::vector<u8> msg = {7, 7, 7, 7};
  auto ct = rsa_encrypt(kp.pub, msg, rng);
  ASSERT_TRUE(ct.ok());
  (*ct)[5] ^= 0x80;
  auto pt = rsa_decrypt(kp.priv, *ct);
  if (pt.ok()) {
    EXPECT_NE(*pt, msg);
  }
}

}  // namespace
}  // namespace rmc::crypto
