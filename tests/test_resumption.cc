// Session resumption (DESIGN.md §10): the bounded session cache itself
// (LRU eviction, TTL expiry in virtual time, capacity clamp, snapshot /
// restore), the abbreviated handshake end to end (full then resumed, ticket
// reuse, unknown-ID and mixed-config fallback), the modeled crypto-cycle
// saving that motivates the whole feature, and the service-level carry: the
// redirector's cache surviving a warm restart in battery-backed RAM and a
// reconnect-heavy client that keeps its ticket while the TCP stack reaps
// its dead TCBs.
#include <gtest/gtest.h>

#include "issl/issl.h"
#include "issl/session_cache.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "services/supervisor.h"

namespace rmc {
namespace {

using common::u64;
using common::u8;

constexpr net::IpAddr kServerIp = 1;
constexpr net::IpAddr kBackendIp = 2;
constexpr net::IpAddr kClientIp = 3;
constexpr net::Port kTlsPort = 4433;
constexpr net::Port kBackendPort = 8000;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// ---------------------------------------------------------------------------
// SessionCache in isolation
// ---------------------------------------------------------------------------

std::array<u8, issl::kSessionIdBytes> id_of(u8 tag) {
  std::array<u8, issl::kSessionIdBytes> id{};
  id[0] = tag;
  return id;
}

const std::array<u8, issl::kMasterSecretBytes> kMaster = [] {
  std::array<u8, issl::kMasterSecretBytes> m{};
  for (std::size_t i = 0; i < m.size(); ++i) m[i] = static_cast<u8>(i);
  return m;
}();

TEST(SessionCacheTest, LruEvictionPrefersLeastRecentlyUsed) {
  issl::SessionCache cache(3);
  cache.set_now(1);
  cache.insert(id_of(1), kMaster, 0, 16);
  cache.set_now(2);
  cache.insert(id_of(2), kMaster, 0, 16);
  cache.set_now(3);
  cache.insert(id_of(3), kMaster, 0, 16);
  // Touch 1 so 2 becomes the LRU victim.
  cache.set_now(4);
  EXPECT_TRUE(cache.lookup(id_of(1), nullptr));
  cache.set_now(5);
  cache.insert(id_of(4), kMaster, 0, 16);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_TRUE(cache.lookup(id_of(1), nullptr));
  EXPECT_FALSE(cache.lookup(id_of(2), nullptr));  // the LRU one went
  EXPECT_TRUE(cache.lookup(id_of(3), nullptr));
  EXPECT_TRUE(cache.lookup(id_of(4), nullptr));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(SessionCacheTest, TtlExpiresEntriesInVirtualTime) {
  issl::SessionCache cache(4, /*ttl_ms=*/100);
  cache.set_now(0);
  cache.insert(id_of(7), kMaster, 0, 16);
  cache.set_now(99);
  EXPECT_TRUE(cache.lookup(id_of(7), nullptr));  // also refreshes last-used
  cache.set_now(198);
  EXPECT_TRUE(cache.lookup(id_of(7), nullptr));
  cache.set_now(298);  // 100ms past the refresh: stale
  EXPECT_FALSE(cache.lookup(id_of(7), nullptr));
  EXPECT_EQ(cache.expirations(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SessionCacheTest, CapacityClampedToFixedStorage) {
  // xalloc discipline: the backing array is fixed at compile time; a config
  // asking for more silently gets the clamp, never a heap.
  issl::SessionCache cache(1'000);
  for (u8 i = 0; i < 40; ++i) cache.insert(id_of(i), kMaster, 0, 16);
  EXPECT_EQ(cache.size(), issl::kSessionCacheMaxEntries);
  EXPECT_EQ(cache.evictions(), 40 - issl::kSessionCacheMaxEntries);
}

TEST(SessionCacheTest, ZeroCapacityNeverHitsNeverStores) {
  issl::SessionCache cache(0);
  cache.insert(id_of(1), kMaster, 0, 16);
  EXPECT_FALSE(cache.lookup(id_of(1), nullptr));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.insertions(), 0u);
}

TEST(SessionCacheTest, RestoreRoundTripsAndShrinkDropsExtras) {
  issl::SessionCache big(8);
  for (u8 i = 0; i < 8; ++i) big.insert(id_of(i), kMaster, 1, 32);
  issl::SessionCache copy(8);
  copy.restore(big.data());
  issl::ResumptionTicket t;
  ASSERT_TRUE(copy.lookup(id_of(3), &t));
  EXPECT_EQ(t.valid, 1);
  EXPECT_EQ(t.key_exchange, 1);
  EXPECT_EQ(t.key_bytes, 32);
  EXPECT_EQ(0, std::memcmp(t.master, kMaster.data(), kMaster.size()));
  // A smaller cache this boot: entries past its capacity are dropped, not
  // left resident-but-unreachable.
  issl::SessionCache small(2);
  small.restore(big.data());
  EXPECT_EQ(small.size(), 2u);
}

// ---------------------------------------------------------------------------
// Abbreviated handshake, session level
// ---------------------------------------------------------------------------

struct TlsHarness {
  net::SimNet net{1234};
  net::TcpStack server_stack{net, kServerIp};
  net::TcpStack client_stack{net, kClientIp};
  common::Xorshift64 server_rng{51};
  common::Xorshift64 client_rng{52};
  int listener = -1;

  struct Pair {
    std::unique_ptr<issl::TcpStream> server_stream;
    std::unique_ptr<issl::TcpStream> client_stream;
  };

  // Fresh TCP connection per handshake (as reconnecting clients make).
  Pair connect_transport() {
    if (listener < 0) {
      auto l = server_stack.listen(kTlsPort);
      EXPECT_TRUE(l.ok());
      listener = *l;
    }
    auto c = client_stack.connect(kServerIp, kTlsPort);
    EXPECT_TRUE(c.ok());
    net.tick(20);
    auto s = server_stack.accept(listener);
    EXPECT_TRUE(s.ok());
    Pair p;
    p.server_stream = std::make_unique<issl::TcpStream>(server_stack, *s);
    p.client_stream = std::make_unique<issl::TcpStream>(client_stack, *c);
    return p;
  }

  bool drive(issl::Session& client, issl::Session& server, int rounds = 600) {
    for (int i = 0; i < rounds; ++i) {
      (void)client.pump();
      (void)server.pump();
      net.tick(1);
      if (client.established() && server.established()) return true;
      if (client.failed() && server.failed()) return false;
    }
    return client.established() && server.established();
  }
};

issl::Config rsa_resuming_config() {
  issl::Config cfg = issl::Config::unix_default();
  cfg.rsa_modulus_bits = 512;  // full premaster fits, cost model is honest
  cfg.resumption = true;
  return cfg;
}

TEST(ResumptionTest, FullThenResumedThenReusedTicket) {
  TlsHarness h;
  issl::Config cfg = rsa_resuming_config();
  const auto key = crypto::rsa_generate(cfg.rsa_modulus_bits, h.server_rng);
  issl::SessionCache cache(8);
  issl::ServerIdentity id;
  id.rsa = key;
  id.session_cache = &cache;

  // First contact: no ticket, full handshake, but a ticket comes back.
  auto t1 = h.connect_transport();
  auto c1 = issl::issl_bind_client(*t1.client_stream, cfg, h.client_rng);
  auto s1 = issl::issl_bind_server(*t1.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(c1, s1));
  EXPECT_FALSE(c1.resumed());
  ASSERT_EQ(c1.ticket().valid, 1);
  const u64 full_cost = c1.handshake_cost_cycles() + s1.handshake_cost_cycles();

  // Second contact offers the ticket: abbreviated, and at least 5x cheaper
  // in modeled crypto cycles (the E11 gate, asserted here too).
  const issl::ResumptionTicket ticket = c1.ticket();
  auto t2 = h.connect_transport();
  auto c2 = issl::issl_bind_client(*t2.client_stream, cfg, h.client_rng, {},
                                   &ticket);
  auto s2 = issl::issl_bind_server(*t2.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(c2, s2));
  EXPECT_TRUE(c2.resumed());
  EXPECT_TRUE(s2.resumed());
  const u64 resumed_cost =
      c2.handshake_cost_cycles() + s2.handshake_cost_cycles();
  EXPECT_GE(full_cost, 5 * resumed_cost);
  EXPECT_EQ(cache.hits(), 1u);

  // The resumed channel must actually carry data (same master, same keys).
  const auto msg = bytes_of("resumed but real");
  ASSERT_TRUE(issl::issl_write(c2, msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 200 && got.empty(); ++i) {
    h.net.tick(1);
    (void)s2.pump();
    auto r = issl::issl_read(s2);
    if (r.ok()) got = *r;
  }
  EXPECT_EQ(got, msg);

  // Tickets are multi-use: the same ID resumes again.
  auto t3 = h.connect_transport();
  auto c3 = issl::issl_bind_client(*t3.client_stream, cfg, h.client_rng, {},
                                   &ticket);
  auto s3 = issl::issl_bind_server(*t3.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(c3, s3));
  EXPECT_TRUE(c3.resumed());
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(ResumptionTest, EmbeddedPskConfigResumesToo) {
  TlsHarness h;
  issl::Config cfg = issl::Config::embedded_port();
  cfg.resumption = true;
  const auto psk = bytes_of("board-psk");
  issl::SessionCache cache(8);
  issl::ServerIdentity id;
  id.psk = psk;
  id.session_cache = &cache;

  auto t1 = h.connect_transport();
  auto c1 = issl::issl_bind_client(*t1.client_stream, cfg, h.client_rng, psk);
  auto s1 = issl::issl_bind_server(*t1.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(c1, s1));
  ASSERT_EQ(c1.ticket().valid, 1);
  const issl::ResumptionTicket ticket = c1.ticket();

  auto t2 = h.connect_transport();
  auto c2 = issl::issl_bind_client(*t2.client_stream, cfg, h.client_rng, psk,
                                   &ticket);
  auto s2 = issl::issl_bind_server(*t2.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(c2, s2));
  EXPECT_TRUE(c2.resumed() && s2.resumed());
  EXPECT_LT(c2.handshake_cost_cycles(), c1.handshake_cost_cycles());
}

TEST(ResumptionTest, UnknownIdFallsBackToFullHandshake) {
  // A ticket the server never issued (cold cache, forged, or long evicted)
  // must produce a working *full* handshake, never a failure.
  TlsHarness h;
  issl::Config cfg = rsa_resuming_config();
  const auto key = crypto::rsa_generate(cfg.rsa_modulus_bits, h.server_rng);
  issl::SessionCache cache(8);
  issl::ServerIdentity id;
  id.rsa = key;
  id.session_cache = &cache;

  issl::ResumptionTicket forged{};
  forged.valid = 1;
  forged.key_exchange = static_cast<u8>(cfg.key_exchange);
  forged.key_bytes = static_cast<u8>(cfg.aes_key_bits / 8);
  forged.id[0] = 0xEE;

  auto t = h.connect_transport();
  auto c = issl::issl_bind_client(*t.client_stream, cfg, h.client_rng, {},
                                  &forged);
  auto s = issl::issl_bind_server(*t.server_stream, cfg, h.server_rng, id);
  ASSERT_TRUE(h.drive(c, s));
  EXPECT_FALSE(c.resumed());
  EXPECT_FALSE(s.resumed());
  EXPECT_EQ(cache.misses(), 1u);
  // And the full handshake re-issued a (different) ticket.
  EXPECT_EQ(c.ticket().valid, 1);
  EXPECT_NE(0, std::memcmp(c.ticket().id, forged.id, issl::kSessionIdBytes));
}

TEST(ResumptionTest, ResumingClientAgainstLegacyServerFallsBack) {
  // The server has resumption compiled out (config off): it answers the
  // offer with an empty trailer and the client runs the full handshake.
  TlsHarness h;
  issl::Config client_cfg = rsa_resuming_config();
  issl::Config server_cfg = client_cfg;
  server_cfg.resumption = false;
  const auto key =
      crypto::rsa_generate(client_cfg.rsa_modulus_bits, h.server_rng);
  issl::ServerIdentity id;
  id.rsa = key;

  issl::ResumptionTicket stale{};
  stale.valid = 1;
  stale.key_exchange = static_cast<u8>(client_cfg.key_exchange);
  stale.key_bytes = static_cast<u8>(client_cfg.aes_key_bits / 8);

  auto t = h.connect_transport();
  auto c = issl::issl_bind_client(*t.client_stream, client_cfg, h.client_rng,
                                  {}, &stale);
  auto s = issl::issl_bind_server(*t.server_stream, server_cfg, h.server_rng,
                                  id);
  ASSERT_TRUE(h.drive(c, s));
  EXPECT_FALSE(c.resumed());
  EXPECT_EQ(c.ticket().valid, 0);  // legacy server issues nothing
}

TEST(ResumptionTest, LegacyClientAgainstResumingServerUnaffected) {
  // Off-client / on-server: the hello carries no ID field, so the server
  // answers the original 34-byte-body wire format and caches nothing.
  TlsHarness h;
  issl::Config client_cfg = issl::Config::unix_default();
  client_cfg.rsa_modulus_bits = 512;
  issl::Config server_cfg = client_cfg;
  server_cfg.resumption = true;
  const auto key =
      crypto::rsa_generate(client_cfg.rsa_modulus_bits, h.server_rng);
  issl::SessionCache cache(8);
  issl::ServerIdentity id;
  id.rsa = key;
  id.session_cache = &cache;

  auto t = h.connect_transport();
  auto c = issl::issl_bind_client(*t.client_stream, client_cfg, h.client_rng);
  auto s = issl::issl_bind_server(*t.server_stream, server_cfg, h.server_rng,
                                  id);
  ASSERT_TRUE(h.drive(c, s));
  EXPECT_FALSE(c.resumed());
  EXPECT_EQ(cache.size(), 0u);  // nothing cached for a client that can't use it
}

// ---------------------------------------------------------------------------
// Service level: warm-restart carry and the reconnecting client
// ---------------------------------------------------------------------------

struct BoardWorld {
  net::SimNet net{4242};
  net::TcpStack backend_stack{net, kBackendIp};
  net::TcpStack client_stack{net, kClientIp};
  services::EchoBackend backend{backend_stack, kBackendPort};

  services::ServiceBoardConfig board_config() {
    services::ServiceBoardConfig cfg;
    cfg.redirector.listen_port = kTlsPort;
    cfg.redirector.backend_ip = kBackendIp;
    cfg.redirector.backend_port = kBackendPort;
    cfg.redirector.secure = true;
    cfg.redirector.psk = bytes_of("board-psk");
    cfg.redirector.tls = issl::Config::embedded_port();
    cfg.redirector.tls.resumption = true;
    cfg.redirector.session_cache_capacity = 8;
    cfg.board_ip = kServerIp;
    cfg.wdt_period_ms = 500;
    cfg.reboot_ms = 2;
    return cfg;
  }

  issl::Config client_tls() {
    issl::Config cfg = issl::Config::embedded_port();
    cfg.resumption = true;
    return cfg;
  }

  void drive(services::ServiceBoard& board, services::Client* client, u64 ms) {
    for (u64 i = 0; i < ms; ++i) {
      board.poll();
      backend.poll();
      if (client != nullptr) (void)client->poll();
      net.tick(1);
    }
  }

  bool echo(services::ServiceBoard& board, services::Client& client,
            std::string_view msg, u64 budget_ms = 1'500) {
    const std::size_t want = client.received().size() + msg.size();
    if (!client.send(bytes_of(msg)).is_ok()) return false;
    for (u64 i = 0; i < budget_ms; ++i) {
      board.poll();
      backend.poll();
      (void)client.poll();
      net.tick(1);
      if (client.received().size() >= want) return true;
    }
    return false;
  }
};

TEST(ResumptionTest, CacheSurvivesWarmRestartInBatteryRam) {
  BoardWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  services::ServiceBoard board(w.net, w.board_config());
  w.drive(board, nullptr, 30);

  services::Client client(w.client_stack, kServerIp, kTlsPort, true,
                          w.client_tls(), bytes_of("board-psk"));
  ASSERT_TRUE(client.start().is_ok());
  ASSERT_TRUE(w.echo(board, client, "before the bite"));
  ASSERT_EQ(client.ticket().valid, 1);
  EXPECT_FALSE(client.resumed());  // first contact was the full handshake
  // Finish this conversation cleanly (the ticket outlives the connection);
  // crashes with connections open are test_recovery's subject.
  client.close();
  w.drive(board, &client, 100);

  // Wedge the main loop past the watchdog period: hard reset, warm reboot.
  board.wedge_for_ms(600);
  w.drive(board, nullptr, 700);
  ASSERT_TRUE(board.up());
  ASSERT_EQ(board.wdt_bites(), 1u);

  // The reborn redirector restored the cache from battery RAM, so the
  // client's kept ticket resumes instead of paying the full handshake.
  ASSERT_NE(board.redirector(), nullptr);
  EXPECT_EQ(board.redirector()->session_cache().size(), 1u);
  ASSERT_TRUE(client.reconnect().is_ok());
  ASSERT_TRUE(w.echo(board, client, "after the bite"));
  EXPECT_TRUE(client.resumed());
  ASSERT_NE(board.redirector(), nullptr);
  EXPECT_GE(board.redirector()->session_cache().hits(), 1u);
}

TEST(ResumptionTest, ReconnectingClientKeepsTicketAndReapsTcbs) {
  BoardWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  services::ServiceBoard board(w.net, w.board_config());
  w.drive(board, nullptr, 30);

  services::Client client(w.client_stack, kServerIp, kTlsPort, true,
                          w.client_tls(), bytes_of("board-psk"));
  ASSERT_TRUE(client.start().is_ok());
  const int kCycles = 6;
  int resumed = 0;
  for (int i = 0; i < kCycles; ++i) {
    ASSERT_TRUE(w.echo(board, client, "cycle")) << "cycle " << i;
    if (client.resumed()) ++resumed;
    if (i + 1 < kCycles) ASSERT_TRUE(client.reconnect().is_ok());
  }
  EXPECT_EQ(resumed, kCycles - 1);  // everything after first contact resumes
  ASSERT_NE(board.redirector(), nullptr);
  EXPECT_GE(board.redirector()->session_cache().hits(),
            static_cast<u64>(kCycles - 1));
  // The reconnect loop must not grow the socket table without bound: each
  // reconnect reaps the previous connection's dead TCB.
  EXPECT_LE(w.client_stack.tcb_count(), 2u);
  EXPECT_GE(w.client_stack.tcbs_reaped(), static_cast<u64>(kCycles - 2));
}

}  // namespace
}  // namespace rmc
