// Cofunction and slice-scheduler tests (paper §4.2's remaining constructs).
#include <gtest/gtest.h>

#include "dynk/cofunc.h"

namespace rmc::dynk {
namespace {

Cofunc<int> sum_with_yields(int n) {
  int total = 0;
  for (int i = 1; i <= n; ++i) {
    total += i;
    co_await Yield{};
  }
  co_return total;
}

Cofunc<int> waits_for_flag(bool& flag, int value) {
  co_await WaitFor{[&] { return flag; }};
  co_return value;
}

TEST(Cofunc, ProducesResultAfterPolling) {
  auto cf = sum_with_yields(10);
  EXPECT_FALSE(cf.done());
  int polls = 0;
  while (!cf.done()) {
    ASSERT_TRUE(cf.poll());
    ++polls;
  }
  ASSERT_TRUE(cf.has_result());
  EXPECT_EQ(cf.result(), 55);
  EXPECT_EQ(polls, 11);  // 10 yields + final resume to co_return
}

TEST(Cofunc, WaitForBlocksPolling) {
  bool flag = false;
  auto cf = waits_for_flag(flag, 42);
  ASSERT_TRUE(cf.poll());   // runs up to the waitfor
  EXPECT_FALSE(cf.poll());  // blocked
  EXPECT_FALSE(cf.done());
  flag = true;
  EXPECT_TRUE(cf.poll());
  ASSERT_TRUE(cf.has_result());
  EXPECT_EQ(cf.result(), 42);
}

TEST(Cofunc, RunToCompletionBudget) {
  auto cf = sum_with_yields(5);
  EXPECT_EQ(cf.run_to_completion(3), std::nullopt);  // budget too small
  auto r = cf.run_to_completion(100);                // finishes the rest
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 15);
}

TEST(Cofunc, WfdFromInsideACostatement) {
  // The Dynamic C pattern: a costatement invoking a cofunction and waiting
  // for its result (wfd).
  Scheduler sched(2);
  int result = 0;
  auto driver = [&]() -> Costate {
    auto cf = sum_with_yields(4);
    while (!cf.done()) {
      cf.poll();
      co_await Yield{};
    }
    result = cf.result();
  };
  ASSERT_TRUE(sched.add(driver()).is_ok());
  EXPECT_TRUE(sched.run(100));
  EXPECT_EQ(result, 10);
}

// ---------------------------------------------------------------------------
// SliceScheduler
// ---------------------------------------------------------------------------

Costate appender(std::vector<int>& log, int id, int steps) {
  for (int i = 0; i < steps; ++i) {
    log.push_back(id);
    co_await Yield{};
  }
}

TEST(Slice, BudgetControlsInterleavingGranularity) {
  // Budget 3: task 1 runs 3 steps, then task 2 runs 3 steps, ...
  std::vector<int> log;
  SliceScheduler sched(3);
  ASSERT_TRUE(sched.add(appender(log, 1, 6)).is_ok());
  ASSERT_TRUE(sched.add(appender(log, 2, 6)).is_ok());
  EXPECT_TRUE(sched.run(10));
  EXPECT_EQ(log, (std::vector<int>{1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 2, 2}));
}

TEST(Slice, BudgetOneIsRoundRobin) {
  std::vector<int> log;
  SliceScheduler sched(1);
  ASSERT_TRUE(sched.add(appender(log, 1, 3)).is_ok());
  ASSERT_TRUE(sched.add(appender(log, 2, 3)).is_ok());
  EXPECT_TRUE(sched.run(10));
  EXPECT_EQ(log, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Slice, BlockedTaskYieldsItsSliceEarly) {
  std::vector<int> log;
  bool flag = false;
  SliceScheduler sched(100);  // huge budget
  auto blocked = [&]() -> Costate {
    log.push_back(-1);
    co_await WaitFor{[&] { return flag; }};
    log.push_back(-2);
  };
  ASSERT_TRUE(sched.add(blocked()).is_ok());
  ASSERT_TRUE(sched.add(appender(log, 7, 2)).is_ok());
  sched.tick();
  // The blocked task must not starve the other despite its big budget.
  EXPECT_EQ(log, (std::vector<int>{-1, 7, 7}));
  flag = true;
  sched.tick();
  EXPECT_EQ(log.back(), -2);
  EXPECT_TRUE(sched.all_done());
}

}  // namespace
}  // namespace rmc::dynk
