// break / continue tests: differential (compiled == interpreted) in every
// structural position, plus the error paths and the unroll interaction.
#include <gtest/gtest.h>

#include "dcc/codegen.h"
#include "dcc/interp.h"
#include "dcc/parser.h"
#include "rabbit/board.h"

namespace rmc::dcc {
namespace {

using common::u16;
using rabbit::Board;

u16 run_compiled(const std::string& src, const CodegenOptions& opts) {
  auto out = compile(src, opts);
  EXPECT_TRUE(out.ok()) << out.status().to_string();
  if (!out.ok()) return 0xDEAD;
  Board board;
  board.load(out->image);
  auto res = board.call("f_f", 200'000'000);
  EXPECT_TRUE(res.ok());
  return res.ok() ? res->hl : 0xDEAD;
}

void check_agrees(const std::string& src) {
  auto prog = parse(src);
  ASSERT_TRUE(prog.ok()) << prog.status().to_string();
  auto in = Interpreter::create(*prog);
  ASSERT_TRUE(in.ok());
  auto want = in->call("f", {});
  ASSERT_TRUE(want.ok()) << want.status().to_string();
  EXPECT_EQ(run_compiled(src, CodegenOptions::debug_defaults()), *want);
  EXPECT_EQ(run_compiled(src, CodegenOptions::all_optimizations()), *want);
}

TEST(BreakContinue, BreakExitsWhile) {
  check_agrees(R"(
    int f() {
      int i; int s;
      s = 0; i = 0;
      while (1) {
        i = i + 1;
        if (i > 7) break;
        s = s + i;
      }
      return s * 100 + i;
    }
  )");
}

TEST(BreakContinue, ContinueSkipsInWhile) {
  check_agrees(R"(
    int f() {
      int i; int s;
      s = 0; i = 0;
      while (i < 10) {
        i = i + 1;
        if (i & 1) continue;
        s = s + i;         /* evens only */
      }
      return s;
    }
  )");
}

TEST(BreakContinue, ContinueRunsForStep) {
  // In a for loop, continue must still execute the step expression —
  // otherwise this would never terminate.
  check_agrees(R"(
    int f() {
      int i; int s;
      s = 0;
      for (i = 0; i < 20; i = i + 1) {
        if (i % 3 == 0) continue;
        s = s + i;
      }
      return s;
    }
  )");
}

TEST(BreakContinue, BreakInForWithSearch) {
  check_agrees(R"(
    uchar hay[16];
    int f() {
      int i; int found;
      for (i = 0; i < 16; i = i + 1) hay[i] = i * 5;
      found = 999;
      for (i = 0; i < 16; i = i + 1) {
        if (hay[i] == 35) { found = i; break; }
      }
      return found;
    }
  )");
}

TEST(BreakContinue, BindsToInnermostLoop) {
  check_agrees(R"(
    int f() {
      int i; int j; int s;
      s = 0;
      for (i = 0; i < 5; i = i + 1) {
        for (j = 0; j < 5; j = j + 1) {
          if (j == 2) break;          /* inner only */
          if ((i ^ j) == 3) continue; /* inner only */
          s = s + i * 10 + j;
        }
        s = s + 1000;                 /* still runs per outer iteration */
      }
      return s;
    }
  )");
}

TEST(BreakContinue, NestedWhileInsideFor) {
  check_agrees(R"(
    int f() {
      int i; int n; int steps;
      steps = 0;
      for (i = 1; i < 8; i = i + 1) {
        n = i * 13 + 1;
        while (1) {
          steps = steps + 1;
          if (n == 1) break;
          if (n & 1) n = n * 3 + 1;
          else n = n / 2;
          if (steps > 500) break;
        }
      }
      return steps;
    }
  )");
}

TEST(BreakContinue, OutsideLoopRejected) {
  auto r1 = compile("int f() { break; return 0; }");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("outside"), std::string::npos);
  EXPECT_FALSE(compile("int f() { continue; return 0; }").ok());
}

TEST(BreakContinue, LoopWithBreakIsNotUnrolled) {
  // Unrolling a counted loop whose body breaks would change semantics; the
  // compiler must refuse (and still produce correct code).
  const std::string src = R"(
    int f() {
      int i; int s;
      s = 0;
      for (i = 0; i < 10; i = i + 1) {
        if (i == 4) break;
        s = s + i;
      }
      return s * 10 + i;
    }
  )";
  check_agrees(src);
  // Also verify the unrolled build didn't balloon: with the break the loop
  // must stay rolled, so unroll_loops has no effect on code size here.
  CodegenOptions rolled;
  rolled.debug_hooks = false;
  CodegenOptions unrolled = rolled;
  unrolled.unroll_loops = true;
  auto a = compile(src, rolled);
  auto b = compile(src, unrolled);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->code_bytes, b->code_bytes);
}

TEST(BreakContinue, DoesNotLeakAcrossCallBoundary) {
  // A helper whose loop breaks must not disturb the caller's loop.
  check_agrees(R"(
    int helper() {
      int k;
      for (k = 0; k < 10; k = k + 1) {
        if (k == 3) break;
      }
      return k;
    }
    int f() {
      int i; int s;
      s = 0;
      for (i = 0; i < 4; i = i + 1) s = s + helper() + i;
      return s;
    }
  )");
}

}  // namespace
}  // namespace rmc::dcc
