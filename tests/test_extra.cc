// Cross-cutting coverage: the redirector's crypto CPU-cost model, a second
// on-board cipher workload (dc/rc4.dc) checked against a host RC4 (RFC 6229
// vectors), whole-program disassembly of the hand AES, and IoBus fallback
// behaviour.
#include <gtest/gtest.h>

#include "dcc/codegen.h"
#include "rabbit/board.h"
#include "rasm/assembler.h"
#include "rasm/disasm.h"
#include "services/aes_port.h"
#include "services/redirector.h"

namespace rmc {
namespace {

using common::u32;
using common::u8;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

// ---------------------------------------------------------------------------
// Crypto cost model: charging measured cycles must slow the secure service
// ---------------------------------------------------------------------------

common::u64 virtual_ms_for_request(common::u64 cycles_per_byte,
                                   common::u64 handshake_cycles) {
  net::SimNet medium(0xC0);
  net::TcpStack board(medium, 1);
  net::TcpStack backend_host(medium, 2);
  net::TcpStack client_host(medium, 3);
  services::EchoBackend backend(backend_host, 8000);
  (void)backend.start();
  services::RedirectorConfig cfg;
  cfg.listen_port = 4433;
  cfg.backend_ip = 2;
  cfg.backend_port = 8000;
  cfg.psk = bytes_of("c");
  cfg.crypto_cycles_per_byte = cycles_per_byte;
  cfg.crypto_cycles_handshake = handshake_cycles;
  services::RmcRedirector red(board, medium, cfg);
  (void)red.start();
  services::Client client(client_host, 1, 4433, true,
                          issl::Config::embedded_port(), bytes_of("c"));
  (void)client.start();
  std::vector<u8> payload(256, 0x42);
  (void)client.send(payload);
  const common::u64 t0 = medium.now_ms();
  for (int i = 0; i < 400'000; ++i) {
    red.poll();
    backend.poll();
    (void)client.poll();
    medium.tick(1);
    if (client.received().size() >= payload.size()) break;
  }
  EXPECT_EQ(client.received().size(), payload.size());
  return medium.now_ms() - t0;
}

TEST(CryptoCostModel, ChargedCyclesStretchVirtualTime) {
  const common::u64 free_time = virtual_ms_for_request(0, 0);
  const common::u64 hs_only = virtual_ms_for_request(0, 3'000'000);  // 100 ms
  const common::u64 bulk_too =
      virtual_ms_for_request(30'000, 3'000'000);  // +1 ms/byte
  EXPECT_GE(hs_only, free_time + 90);
  EXPECT_GE(bulk_too, hs_only + 400);  // 512 forwarded bytes at 1 ms each
}

// ---------------------------------------------------------------------------
// RC4 on the board vs host RC4 (RFC 6229 vector + random agreement)
// ---------------------------------------------------------------------------

struct HostRc4 {
  u8 S[256];
  int i = 0, j = 0;
  explicit HostRc4(std::span<const u8> key) {
    for (int k = 0; k < 256; ++k) S[k] = static_cast<u8>(k);
    int jj = 0;
    for (int k = 0; k < 256; ++k) {
      jj = (jj + S[k] + key[k % key.size()]) & 255;
      std::swap(S[k], S[jj]);
    }
  }
  u8 next() {
    i = (i + 1) & 255;
    j = (j + S[i]) & 255;
    std::swap(S[i], S[j]);
    return S[(S[i] + S[j]) & 255];
  }
};

struct Rc4Board {
  dcc::CompileOutput out;
  rabbit::Board board;

  explicit Rc4Board(const dcc::CodegenOptions& opts) {
    auto src = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                        "/dc/rc4.dc");
    EXPECT_TRUE(src.ok());
    auto compiled = dcc::compile(*src, opts);
    EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
    out = std::move(*compiled);
    board.load(out.image);
  }

  u32 sym(const char* name) {
    u32 a = 0;
    EXPECT_TRUE(out.image.find_symbol(name, a)) << name;
    return a;
  }

  // MiniDynC calling convention: write the argument into the static
  // parameter slot, then call.
  void call1(const std::string& fn, const std::string& param,
             common::u16 value) {
    board.mem().write16(
        static_cast<common::u16>(sym(("l_" + fn + "_" + param).c_str())),
        value);
    auto r = board.call("f_" + fn, 500'000'000);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->stop, rabbit::StopReason::kHalted);
  }
};

TEST(Rc4Port, MatchesHostRc4OnRfc6229Vector) {
  // RFC 6229, key 0102030405: first keystream bytes b2 39 63 05 ...
  Rc4Board rc4(dcc::CodegenOptions::debug_defaults());
  const std::vector<u8> key = {1, 2, 3, 4, 5};
  const u32 key_addr = rc4.sym("g_rc4_key");
  for (std::size_t i = 0; i < key.size(); ++i) {
    rc4.board.mem().write(static_cast<common::u16>(key_addr + i), key[i]);
  }
  rc4.call1("rc4_setup", "klen", static_cast<common::u16>(key.size()));
  // Encrypt 16 zero bytes: the output IS the keystream.
  const u32 buf_addr = rc4.sym("g_rc4_buf");
  for (int i = 0; i < 16; ++i) {
    rc4.board.mem().write(static_cast<common::u16>(buf_addr + i), 0);
  }
  rc4.call1("rc4_crypt", "n", 16);
  std::vector<u8> stream;
  for (int i = 0; i < 16; ++i) {
    stream.push_back(rc4.board.mem().read(static_cast<common::u16>(buf_addr + i)));
  }
  EXPECT_EQ(common::to_hex(stream), "b2396305f03dc027ccc3524a0a1118a8");
}

TEST(Rc4Port, OptimizedBuildAgreesWithHostOnRandomData) {
  Rc4Board rc4(dcc::CodegenOptions::all_optimizations());
  common::Xorshift64 rng(0x6229);
  std::vector<u8> key(16);
  rng.fill(key);
  const u32 key_addr = rc4.sym("g_rc4_key");
  for (std::size_t i = 0; i < key.size(); ++i) {
    rc4.board.mem().write(static_cast<common::u16>(key_addr + i), key[i]);
  }
  rc4.call1("rc4_setup", "klen", 16);

  std::vector<u8> data(200);
  rng.fill(data);
  const u32 buf_addr = rc4.sym("g_rc4_buf");
  for (std::size_t i = 0; i < data.size(); ++i) {
    rc4.board.mem().write(static_cast<common::u16>(buf_addr + i), data[i]);
  }
  rc4.call1("rc4_crypt", "n", 200);

  HostRc4 host(key);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const u8 want = static_cast<u8>(data[i] ^ host.next());
    EXPECT_EQ(rc4.board.mem().read(static_cast<common::u16>(buf_addr + i)),
              want)
        << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Whole-program disassembly of the hand AES
// ---------------------------------------------------------------------------

TEST(Disasm, HandAesCodeFullyDecodable) {
  auto src = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                      "/asm/aes_hand.asm");
  ASSERT_TRUE(src.ok());
  auto out = rasm::assemble(*src);
  ASSERT_TRUE(out.ok());
  // Find the code chunk (root flash, org 0x0100).
  const rabbit::ImageChunk* code = nullptr;
  for (const auto& chunk : out->image.chunks) {
    if (chunk.phys_addr == 0x0100) code = &chunk;
  }
  ASSERT_NE(code, nullptr);
  std::size_t offset = 0;
  int instructions = 0;
  while (offset < code->bytes.size()) {
    auto one = rasm::disassemble_one(code->bytes, offset,
                                     static_cast<common::u16>(0x0100 + offset));
    ASSERT_TRUE(one.valid) << "undecodable byte at offset " << offset << ": "
                           << one.text;
    offset += one.length;
    ++instructions;
  }
  EXPECT_GT(instructions, 300);  // the unrolled cipher is sizeable
}

// ---------------------------------------------------------------------------
// IoBus fallback accounting
// ---------------------------------------------------------------------------

TEST(IoBusExtra, UnclaimedAccessesCounted) {
  rabbit::Board board;
  const u8 v = board.io().read(0x0042);  // nothing mapped there
  EXPECT_EQ(v, 0xFF);                    // floating bus
  board.io().write(0x0042, 1);
  EXPECT_EQ(board.io().unclaimed_reads(), 1u);
  EXPECT_EQ(board.io().unclaimed_writes(), 1u);
}

TEST(BoardExtra, SecondsHelper) {
  EXPECT_DOUBLE_EQ(rabbit::Board::seconds(30'000'000), 1.0);
  EXPECT_DOUBLE_EQ(rabbit::Board::seconds(30'000), 0.001);
}

}  // namespace
}  // namespace rmc
