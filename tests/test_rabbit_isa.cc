// Property-style ISA sweeps: every 8-bit ALU operation, rotate/shift, and
// 16-bit arithmetic form is executed on the CPU core over a grid of operand
// values and compared against independently computed golden results
// (including full flag semantics). This pins the interpreter far more
// densely than the hand-picked cases in test_rabbit.cc.
#include <gtest/gtest.h>

#include "rabbit/cpu.h"
#include "rabbit/memory.h"

namespace rmc::rabbit {
namespace {

using common::u16;
using common::u32;
using common::u8;

struct AluGolden {
  u8 result;
  bool s, z, h, pv, n, c;
};

bool parity_even(u8 v) { return (__builtin_popcount(v) & 1) == 0; }

// Independent (re-derived, not copied) golden models.
AluGolden golden_add(u8 a, u8 b, bool cin) {
  const unsigned r = unsigned{a} + b + (cin ? 1 : 0);
  const u8 res = static_cast<u8>(r);
  return {res,
          (res & 0x80) != 0,
          res == 0,
          ((a & 0xF) + (b & 0xF) + (cin ? 1 : 0)) > 0xF,
          ((a ^ res) & (b ^ res) & 0x80) != 0,  // overflow, alternative form
          false,
          r > 0xFF};
}

AluGolden golden_sub(u8 a, u8 b, bool cin) {
  const unsigned r = unsigned{a} - b - (cin ? 1 : 0);
  const u8 res = static_cast<u8>(r);
  const auto sa = static_cast<common::i8>(a);
  const auto sb = static_cast<common::i8>(b);
  const int wide = sa - sb - (cin ? 1 : 0);
  return {res,
          (res & 0x80) != 0,
          res == 0,
          (a & 0xF) < ((b & 0xF) + (cin ? 1 : 0)),
          wide < -128 || wide > 127,
          true,
          r > 0xFF};
}

class AluMachine {
 public:
  AluMachine() : cpu_(mem_, io_) {
    mem_.set_flash_writable(true);
    cpu_.regs().sp = 0xDFF0;
  }

  // Run "ld a,<a>; [scf] ; <op> b" with B=<b>; returns A and flags.
  AluGolden run(u8 opcode, u8 a, u8 b, bool carry_in) {
    cpu_.reset();
    cpu_.regs().sp = 0xDFF0;
    cpu_.regs().pc = 0x0100;
    cpu_.regs().a = a;
    cpu_.regs().b = b;
    cpu_.regs().f = carry_in ? Flag::C : 0;
    mem_.write_phys(0x0100, opcode);  // ALU A,B form
    cpu_.step();
    const u8 f = cpu_.regs().f;
    return {cpu_.regs().a,
            (f & Flag::S) != 0,
            (f & Flag::Z) != 0,
            (f & Flag::H) != 0,
            (f & Flag::PV) != 0,
            (f & Flag::N) != 0,
            (f & Flag::C) != 0};
  }

  Cpu& cpu() { return cpu_; }
  Memory& mem() { return mem_; }

 private:
  Memory mem_;
  IoBus io_;
  Cpu cpu_;
};

// Operand grid: denser near the interesting edges.
const u8 kGrid[] = {0x00, 0x01, 0x02, 0x0F, 0x10, 0x3C, 0x7E, 0x7F,
                    0x80, 0x81, 0xAA, 0xCD, 0xF0, 0xFE, 0xFF};

class AluSweep : public ::testing::TestWithParam<bool> {};  // param: carry_in

TEST_P(AluSweep, AddAdcAgainstGolden) {
  const bool cin = GetParam();
  AluMachine m;
  for (u8 a : kGrid) {
    for (u8 b : kGrid) {
      // ADD ignores incoming carry; ADC consumes it.
      const AluGolden want_add = golden_add(a, b, false);
      const AluGolden got_add = m.run(0x80, a, b, cin);
      EXPECT_EQ(got_add.result, want_add.result) << +a << "+" << +b;
      EXPECT_EQ(got_add.c, want_add.c) << +a << "+" << +b;
      EXPECT_EQ(got_add.z, want_add.z);
      EXPECT_EQ(got_add.s, want_add.s);
      EXPECT_EQ(got_add.pv, want_add.pv) << +a << "+" << +b;
      EXPECT_EQ(got_add.h, want_add.h);
      EXPECT_FALSE(got_add.n);

      const AluGolden want_adc = golden_add(a, b, cin);
      const AluGolden got_adc = m.run(0x88, a, b, cin);
      EXPECT_EQ(got_adc.result, want_adc.result) << +a << "+" << +b << "+" << cin;
      EXPECT_EQ(got_adc.c, want_adc.c);
      EXPECT_EQ(got_adc.pv, want_adc.pv);
    }
  }
}

TEST_P(AluSweep, SubSbcCpAgainstGolden) {
  const bool cin = GetParam();
  AluMachine m;
  for (u8 a : kGrid) {
    for (u8 b : kGrid) {
      const AluGolden want_sub = golden_sub(a, b, false);
      const AluGolden got_sub = m.run(0x90, a, b, cin);
      EXPECT_EQ(got_sub.result, want_sub.result) << +a << "-" << +b;
      EXPECT_EQ(got_sub.c, want_sub.c) << +a << "-" << +b;
      EXPECT_EQ(got_sub.s, want_sub.s);
      EXPECT_EQ(got_sub.pv, want_sub.pv) << +a << "-" << +b;
      EXPECT_TRUE(got_sub.n);

      const AluGolden want_sbc = golden_sub(a, b, cin);
      const AluGolden got_sbc = m.run(0x98, a, b, cin);
      EXPECT_EQ(got_sbc.result, want_sbc.result);
      EXPECT_EQ(got_sbc.c, want_sbc.c);

      // CP: flags of SUB, A preserved.
      const AluGolden got_cp = m.run(0xB8, a, b, cin);
      EXPECT_EQ(got_cp.result, a) << "cp must not modify A";
      EXPECT_EQ(got_cp.z, want_sub.z);
      EXPECT_EQ(got_cp.c, want_sub.c);
    }
  }
}

TEST_P(AluSweep, LogicOpsAgainstGolden) {
  const bool cin = GetParam();
  AluMachine m;
  for (u8 a : kGrid) {
    for (u8 b : kGrid) {
      struct {
        u8 opcode;
        u8 expect;
        bool h;
      } cases[] = {
          {0xA0, static_cast<u8>(a & b), true},   // AND
          {0xA8, static_cast<u8>(a ^ b), false},  // XOR
          {0xB0, static_cast<u8>(a | b), false},  // OR
      };
      for (const auto& c : cases) {
        const AluGolden got = m.run(c.opcode, a, b, cin);
        EXPECT_EQ(got.result, c.expect);
        EXPECT_FALSE(got.c) << "logic ops clear carry";
        EXPECT_EQ(got.z, c.expect == 0);
        EXPECT_EQ(got.s, (c.expect & 0x80) != 0);
        EXPECT_EQ(got.pv, parity_even(c.expect));
        EXPECT_EQ(got.h, c.h);
        EXPECT_FALSE(got.n);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CarryStates, AluSweep, ::testing::Bool());

// ---------------------------------------------------------------------------
// Rotate / shift sweep
// ---------------------------------------------------------------------------

struct RotCase {
  u8 cb_op;       // CB-prefixed opcode for register B
  const char* name;
  u8 (*model)(u8 v, bool cin, bool& cout);
};

u8 model_rlc(u8 v, bool, bool& cout) {
  cout = v & 0x80;
  return static_cast<u8>((v << 1) | (v >> 7));
}
u8 model_rrc(u8 v, bool, bool& cout) {
  cout = v & 1;
  return static_cast<u8>((v >> 1) | (v << 7));
}
u8 model_rl(u8 v, bool cin, bool& cout) {
  cout = v & 0x80;
  return static_cast<u8>((v << 1) | (cin ? 1 : 0));
}
u8 model_rr(u8 v, bool cin, bool& cout) {
  cout = v & 1;
  return static_cast<u8>((v >> 1) | (cin ? 0x80 : 0));
}
u8 model_sla(u8 v, bool, bool& cout) {
  cout = v & 0x80;
  return static_cast<u8>(v << 1);
}
u8 model_sra(u8 v, bool, bool& cout) {
  cout = v & 1;
  return static_cast<u8>((v >> 1) | (v & 0x80));
}
u8 model_srl(u8 v, bool, bool& cout) {
  cout = v & 1;
  return static_cast<u8>(v >> 1);
}

class RotSweep : public ::testing::TestWithParam<RotCase> {};

TEST_P(RotSweep, AllBytesBothCarryStates) {
  const RotCase& rc = GetParam();
  AluMachine m;
  for (int v = 0; v < 256; ++v) {
    for (bool cin : {false, true}) {
      m.cpu().reset();
      m.cpu().regs().pc = 0x0100;
      m.cpu().regs().b = static_cast<u8>(v);
      m.cpu().regs().f = cin ? Flag::C : 0;
      m.mem().write_phys(0x0100, 0xCB);
      m.mem().write_phys(0x0101, rc.cb_op);
      m.cpu().step();
      bool want_c = false;
      const u8 want = rc.model(static_cast<u8>(v), cin, want_c);
      EXPECT_EQ(m.cpu().regs().b, want) << rc.name << " v=" << v;
      EXPECT_EQ((m.cpu().regs().f & Flag::C) != 0, want_c)
          << rc.name << " v=" << v;
      EXPECT_EQ((m.cpu().regs().f & Flag::Z) != 0, want == 0);
      EXPECT_EQ((m.cpu().regs().f & Flag::PV) != 0, parity_even(want));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRotates, RotSweep,
    ::testing::Values(RotCase{0x00, "rlc", model_rlc},
                      RotCase{0x08, "rrc", model_rrc},
                      RotCase{0x10, "rl", model_rl},
                      RotCase{0x18, "rr", model_rr},
                      RotCase{0x20, "sla", model_sla},
                      RotCase{0x28, "sra", model_sra},
                      RotCase{0x38, "srl", model_srl}),
    [](const auto& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// 16-bit arithmetic sweep
// ---------------------------------------------------------------------------

const u16 kGrid16[] = {0x0000, 0x0001, 0x00FF, 0x0100, 0x0FFF, 0x1000,
                       0x7FFF, 0x8000, 0x8001, 0xAAAA, 0xFFFE, 0xFFFF};

TEST(Alu16, AddHlSweep) {
  AluMachine m;
  for (u16 a : kGrid16) {
    for (u16 b : kGrid16) {
      m.cpu().reset();
      m.cpu().regs().pc = 0x0100;
      m.cpu().regs().set_hl(a);
      m.cpu().regs().set_de(b);
      m.mem().write_phys(0x0100, 0x19);  // add hl, de
      m.cpu().step();
      EXPECT_EQ(m.cpu().regs().hl(), static_cast<u16>(a + b));
      EXPECT_EQ((m.cpu().regs().f & Flag::C) != 0,
                (u32{a} + b) > 0xFFFF);
    }
  }
}

TEST(Alu16, SbcHlSweep) {
  AluMachine m;
  for (u16 a : kGrid16) {
    for (u16 b : kGrid16) {
      for (bool cin : {false, true}) {
        m.cpu().reset();
        m.cpu().regs().pc = 0x0100;
        m.cpu().regs().set_hl(a);
        m.cpu().regs().set_de(b);
        m.cpu().regs().f = cin ? Flag::C : 0;
        m.mem().write_phys(0x0100, 0xED);
        m.mem().write_phys(0x0101, 0x52);  // sbc hl, de
        m.cpu().step();
        const u16 want = static_cast<u16>(a - b - (cin ? 1 : 0));
        EXPECT_EQ(m.cpu().regs().hl(), want);
        EXPECT_EQ((m.cpu().regs().f & Flag::C) != 0,
                  (u32{a} - b - (cin ? 1 : 0)) > 0xFFFF);
        EXPECT_EQ((m.cpu().regs().f & Flag::Z) != 0, want == 0);
      }
    }
  }
}

TEST(Alu16, MulSweepAgainstHost) {
  AluMachine m;
  for (u16 a : kGrid16) {
    for (u16 b : kGrid16) {
      m.cpu().reset();
      m.cpu().regs().pc = 0x0100;
      m.cpu().regs().set_bc(a);
      m.cpu().regs().set_de(b);
      m.mem().write_phys(0x0100, 0xF7);  // mul
      m.cpu().step();
      const auto want = static_cast<common::i32>(
                            static_cast<common::i16>(a)) *
                        static_cast<common::i16>(b);
      const u32 got = (u32{m.cpu().regs().hl()} << 16) | m.cpu().regs().bc();
      EXPECT_EQ(static_cast<common::i32>(got), want)
          << a << " * " << b;
    }
  }
}

TEST(Alu16, IncDecDontTouchFlags) {
  AluMachine m;
  for (u16 a : kGrid16) {
    m.cpu().reset();
    m.cpu().regs().pc = 0x0100;
    m.cpu().regs().set_bc(a);
    m.cpu().regs().f = Flag::C | Flag::Z | Flag::S;
    m.mem().write_phys(0x0100, 0x03);  // inc bc
    m.mem().write_phys(0x0101, 0x0B);  // dec bc
    m.cpu().step();
    EXPECT_EQ(m.cpu().regs().bc(), static_cast<u16>(a + 1));
    m.cpu().step();
    EXPECT_EQ(m.cpu().regs().bc(), a);
    EXPECT_EQ(m.cpu().regs().f, Flag::C | Flag::Z | Flag::S);
  }
}

// ---------------------------------------------------------------------------
// DAA: pin against BCD addition semantics
// ---------------------------------------------------------------------------

TEST(Daa, BcdAdditionProperty) {
  // For BCD digits a,b in 0..99: add binary, DAA, result must be the BCD
  // encoding of (a+b) % 100 with carry = (a+b) >= 100.
  AluMachine m;
  auto to_bcd = [](int v) {
    return static_cast<u8>(((v / 10) << 4) | (v % 10));
  };
  for (int a = 0; a < 100; a += 3) {
    for (int b = 0; b < 100; b += 7) {
      m.cpu().reset();
      m.cpu().regs().pc = 0x0100;
      m.cpu().regs().a = to_bcd(a);
      m.cpu().regs().b = to_bcd(b);
      m.mem().write_phys(0x0100, 0x80);  // add a, b
      m.mem().write_phys(0x0101, 0x27);  // daa
      m.cpu().step();
      m.cpu().step();
      const int sum = a + b;
      EXPECT_EQ(m.cpu().regs().a, to_bcd(sum % 100)) << a << "+" << b;
      EXPECT_EQ((m.cpu().regs().f & Flag::C) != 0, sum >= 100) << a << "+" << b;
    }
  }
}

}  // namespace
}  // namespace rmc::rabbit
