// Cross-validation of the paper's two AES implementations (E1's subjects):
//
//   asm/aes_hand.asm  (hand-optimized Rabbit assembly)
//   dc/aes.dc         (MiniDynC "direct C port", several knob settings)
//
// against the host C++ reference (itself pinned by FIPS-197 vectors in
// test_crypto.cc). Three independently-written implementations must agree
// byte-for-byte, which pins the CPU simulator, assembler, and compiler in
// one shot. Also asserts the performance *ordering* the paper reports.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/prng.h"
#include "crypto/aes.h"
#include "services/aes_port.h"

namespace rmc::services {
namespace {

using common::from_hex;
using common::to_hex;
using common::u64;
using common::u8;

AesOnBoard make(AesImpl impl, const dcc::CodegenOptions& opts = {}) {
  auto ab = AesOnBoard::create_from_repo(impl, RMC_REPO_ROOT, opts);
  EXPECT_TRUE(ab.ok()) << ab.status().to_string();
  return std::move(*ab);
}

void expect_fips_vector(AesOnBoard& aes) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  ASSERT_TRUE(aes.set_key(key).ok());
  std::array<u8, 16> ct{};
  auto cycles = aes.encrypt(pt, ct);
  ASSERT_TRUE(cycles.ok()) << cycles.status().to_string();
  EXPECT_EQ(to_hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesPort, HandAssemblyMatchesFips197) {
  auto aes = make(AesImpl::kHandAssembly);
  expect_fips_vector(aes);
}

TEST(AesPort, CompiledCDebugBuildMatchesFips197) {
  auto aes = make(AesImpl::kCompiledC, dcc::CodegenOptions::debug_defaults());
  expect_fips_vector(aes);
}

TEST(AesPort, CompiledCOptimizedBuildMatchesFips197) {
  auto aes =
      make(AesImpl::kCompiledC, dcc::CodegenOptions::all_optimizations());
  expect_fips_vector(aes);
}

TEST(AesPort, AllThreeImplementationsAgreeOnRandomKeys) {
  auto hand = make(AesImpl::kHandAssembly);
  auto compiled = make(AesImpl::kCompiledC,
                       dcc::CodegenOptions::all_optimizations());
  common::Xorshift64 rng(2003);  // DATE 2003
  for (int trial = 0; trial < 8; ++trial) {
    std::array<u8, 16> key{}, pt{}, host_ct{}, hand_ct{}, c_ct{};
    rng.fill(key);
    rng.fill(pt);
    auto host = crypto::Aes::create(key);
    ASSERT_TRUE(host.ok());
    host->encrypt_block(pt, host_ct);
    ASSERT_TRUE(hand.set_key(key).ok());
    ASSERT_TRUE(hand.encrypt(pt, hand_ct).ok());
    ASSERT_TRUE(compiled.set_key(key).ok());
    ASSERT_TRUE(compiled.encrypt(pt, c_ct).ok());
    EXPECT_EQ(to_hex(hand_ct), to_hex(host_ct)) << "trial " << trial;
    EXPECT_EQ(to_hex(c_ct), to_hex(host_ct)) << "trial " << trial;
  }
}

TEST(AesPort, RekeyingChangesCiphertext) {
  auto hand = make(AesImpl::kHandAssembly);
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  std::array<u8, 16> ct1{}, ct2{};
  ASSERT_TRUE(hand.set_key(from_hex("000102030405060708090a0b0c0d0e0f")).ok());
  ASSERT_TRUE(hand.encrypt(pt, ct1).ok());
  ASSERT_TRUE(hand.set_key(from_hex("ffeeddccbbaa99887766554433221100")).ok());
  ASSERT_TRUE(hand.encrypt(pt, ct2).ok());
  EXPECT_NE(to_hex(ct1), to_hex(ct2));
}

// ---------------------------------------------------------------------------
// The paper's performance ordering (exact factors are measured in bench/)
// ---------------------------------------------------------------------------

u64 encrypt_cycles(AesOnBoard& aes) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = from_hex("3243f6a8885a308d313198a2e0370734");
  EXPECT_TRUE(aes.set_key(key).ok());
  std::array<u8, 16> ct{};
  auto cycles = aes.encrypt(pt, ct);
  EXPECT_TRUE(cycles.ok());
  return cycles.ok() ? *cycles : 0;
}

TEST(AesPort, AssemblyAtLeastAnOrderOfMagnitudeFasterThanDebugC) {
  auto hand = make(AesImpl::kHandAssembly);
  auto compiled = make(AesImpl::kCompiledC,
                       dcc::CodegenOptions::debug_defaults());
  const u64 hand_cycles = encrypt_cycles(hand);
  const u64 c_cycles = encrypt_cycles(compiled);
  EXPECT_GE(c_cycles, 10 * hand_cycles)
      << "hand=" << hand_cycles << " c=" << c_cycles;
}

TEST(AesPort, OptimizedCStillMuchSlowerThanAssembly) {
  // §6: "this only improved run time by perhaps 20%" — optimization does not
  // close the gap.
  auto hand = make(AesImpl::kHandAssembly);
  auto optimized = make(AesImpl::kCompiledC,
                        dcc::CodegenOptions::all_optimizations());
  const u64 hand_cycles = encrypt_cycles(hand);
  const u64 c_cycles = encrypt_cycles(optimized);
  EXPECT_GE(c_cycles, 5 * hand_cycles)
      << "hand=" << hand_cycles << " c=" << c_cycles;
}

TEST(AesPort, OptimizationKnobsImproveButModestly) {
  auto debug_build = make(AesImpl::kCompiledC,
                          dcc::CodegenOptions::debug_defaults());
  auto opt_build = make(AesImpl::kCompiledC,
                        dcc::CodegenOptions::all_optimizations());
  const u64 debug_cycles = encrypt_cycles(debug_build);
  const u64 opt_cycles = encrypt_cycles(opt_build);
  EXPECT_LT(opt_cycles, debug_cycles);
  // The knobs must not magically fix the compiled code (paper: ~20%; we
  // allow up to 60% improvement before calling the model broken).
  EXPECT_GT(opt_cycles, debug_cycles * 2 / 5)
      << "debug=" << debug_cycles << " opt=" << opt_cycles;
}

TEST(AesPort, DebugBuildTrapsFireDuringEncrypt) {
  auto compiled = make(AesImpl::kCompiledC,
                       dcc::CodegenOptions::debug_defaults());
  const u64 before = compiled.debug_traps();
  encrypt_cycles(compiled);
  EXPECT_GT(compiled.debug_traps(), before);

  auto nodebug = make(AesImpl::kCompiledC,
                      dcc::CodegenOptions::all_optimizations());
  encrypt_cycles(nodebug);
  EXPECT_EQ(nodebug.debug_traps(), 0u);
}

TEST(AesPort, ImageSizesReported) {
  auto hand = make(AesImpl::kHandAssembly);
  auto compiled = make(AesImpl::kCompiledC,
                       dcc::CodegenOptions::debug_defaults());
  EXPECT_GT(hand.image_bytes(), 200u);
  EXPECT_GT(compiled.image_bytes(), 200u);
}

TEST(AesPort, ErrorsOnBadBufferSizes) {
  auto hand = make(AesImpl::kHandAssembly);
  std::array<u8, 8> short_key{};
  EXPECT_FALSE(hand.set_key(short_key).ok());
  std::array<u8, 16> in{};
  std::array<u8, 8> out{};
  EXPECT_FALSE(hand.encrypt(in, out).ok());
}

}  // namespace
}  // namespace rmc::services
