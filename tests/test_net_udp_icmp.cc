// UDP and ICMP tests — the rest of the kit's advertised stack ("software
// implementing TCP/IP, UDP and ICMP", paper §4). UDP is fire-and-forget
// (loss is visible, unlike TCP); ICMP echo answers automatically.
#include <gtest/gtest.h>

#include "net/simnet.h"
#include "net/tcp.h"

namespace rmc::net {
namespace {

using common::u8;

struct Pair {
  SimNet net{11};
  TcpStack a{net, 1};
  TcpStack b{net, 2};
};

TEST(Udp, DatagramRoundTrip) {
  Pair p;
  ASSERT_TRUE(p.b.udp_bind(5353).is_ok());
  const std::vector<u8> q = {'w', 'h', 'o', '?'};
  p.a.udp_sendto(2, 5353, q, 1234);
  p.net.tick(5);
  auto d = p.b.udp_recvfrom(5353);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->payload, q);
  EXPECT_EQ(d->src_ip, 1u);
  EXPECT_EQ(d->src_port, 1234);
  // Reply to the source address/port (bound before delivery).
  ASSERT_TRUE(p.a.udp_bind(1234).is_ok());
  p.b.udp_sendto(d->src_ip, d->src_port, std::vector<u8>{'m', 'e'}, 5353);
  p.net.tick(5);
  auto r = p.a.udp_recvfrom(1234);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->payload, (std::vector<u8>{'m', 'e'}));
  EXPECT_EQ(r->src_port, 5353);
}

TEST(Udp, PreservesMessageBoundaries) {
  Pair p;
  ASSERT_TRUE(p.b.udp_bind(9).is_ok());
  p.a.udp_sendto(2, 9, std::vector<u8>{1, 2, 3}, 100);
  p.a.udp_sendto(2, 9, std::vector<u8>{4}, 100);
  p.net.tick(5);
  auto d1 = p.b.udp_recvfrom(9);
  auto d2 = p.b.udp_recvfrom(9);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->payload.size(), 3u);
  EXPECT_EQ(d2->payload.size(), 1u);
  EXPECT_FALSE(p.b.udp_recvfrom(9).ok());
}

TEST(Udp, UnboundPortErrorsAndUnreachableDrops) {
  Pair p;
  EXPECT_FALSE(p.a.udp_recvfrom(7).ok());           // never bound
  p.a.udp_sendto(2, 7, std::vector<u8>{1}, 8);      // nobody listening
  p.net.tick(5);                                    // silently dropped
  ASSERT_TRUE(p.b.udp_bind(7).is_ok());
  EXPECT_FALSE(p.b.udp_recvfrom(7).ok());
  EXPECT_FALSE(p.b.udp_bind(7).is_ok());            // double bind
}

TEST(Udp, LossIsVisibleUnlikeTcp) {
  Pair p;
  p.net.set_loss_probability(0.5);
  ASSERT_TRUE(p.b.udp_bind(60).is_ok());
  const int kSent = 200;
  for (int i = 0; i < kSent; ++i) {
    p.a.udp_sendto(2, 60, std::vector<u8>{static_cast<u8>(i)}, 61);
  }
  p.net.tick(10);
  int received = 0;
  while (p.b.udp_recvfrom(60).ok()) ++received;
  EXPECT_GT(received, kSent / 4);   // some got through
  EXPECT_LT(received, kSent);       // ...and some really are gone
}

TEST(Icmp, PingEcho) {
  Pair p;
  p.a.ping(2, 1);
  p.a.ping(2, 2);
  p.net.tick(10);
  EXPECT_EQ(p.a.echo_replies(), 2u);
  EXPECT_EQ(p.a.last_echo_seq(), 2u);
  EXPECT_EQ(p.b.echo_requests_answered(), 2u);
}

TEST(Icmp, PingDeadHostGetsNoReply) {
  Pair p;
  p.a.ping(99, 1);  // nobody there
  p.net.tick(10);
  EXPECT_EQ(p.a.echo_replies(), 0u);
}

TEST(Icmp, PingSurvivesSomeLoss) {
  Pair p;
  p.net.set_loss_probability(0.3);
  for (common::u32 seq = 1; seq <= 50; ++seq) p.a.ping(2, seq);
  p.net.tick(20);
  EXPECT_GT(p.a.echo_replies(), 10u);
  EXPECT_LT(p.a.echo_replies(), 50u);
}

TEST(MixedProtocols, TcpUnaffectedByUdpAndIcmpTraffic) {
  Pair p;
  auto l = p.b.listen(80);
  auto c = p.a.connect(2, 80);
  ASSERT_TRUE(p.b.udp_bind(53).is_ok());
  // Interleave all three protocols.
  for (int i = 0; i < 30; ++i) {
    p.a.udp_sendto(2, 53, std::vector<u8>{9}, 53);
    p.a.ping(2, static_cast<common::u32>(i));
    p.net.tick(1);
  }
  auto sc = p.b.accept(*l);
  ASSERT_TRUE(sc.ok());
  const std::vector<u8> msg = {'t', 'c', 'p'};
  ASSERT_TRUE(p.a.send(*c, msg).ok());
  p.net.tick(10);
  u8 buf[8];
  auto n = p.b.recv(*sc, buf);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::vector<u8>(buf, buf + *n), msg);
}

}  // namespace
}  // namespace rmc::net
