// Tests for the Dynamic C runtime model: costatements (yield / waitfor /
// delay / slot limits), xalloc's no-free arena, shared/protected storage,
// function chains, and the error dispatcher.
#include <gtest/gtest.h>

#include <limits>

#include "dynk/costate.h"
#include "dynk/error.h"
#include "dynk/funcchain.h"
#include "dynk/storage.h"
#include "dynk/xalloc.h"

namespace rmc::dynk {
namespace {

// ---------------------------------------------------------------------------
// Costatements
// ---------------------------------------------------------------------------

Costate counter_task(int& out, int times) {
  for (int i = 0; i < times; ++i) {
    ++out;
    co_await Yield{};
  }
}

TEST(Costate, YieldInterleavesRoundRobin) {
  Scheduler sched(4);
  std::vector<int> order;
  auto task = [&order](int id) -> Costate {
    for (int i = 0; i < 3; ++i) {
      order.push_back(id);
      co_await Yield{};
    }
  };
  ASSERT_TRUE(sched.add(task(1)).is_ok());
  ASSERT_TRUE(sched.add(task(2)).is_ok());
  EXPECT_TRUE(sched.run(100));
  // Round-robin: 1 2 1 2 1 2
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Costate, WaitForBlocksUntilPredicate) {
  Scheduler sched(2);
  bool flag = false;
  int stage = 0;
  auto waiter = [&]() -> Costate {
    stage = 1;
    co_await WaitFor{[&] { return flag; }};
    stage = 2;
  };
  ASSERT_TRUE(sched.add(waiter()).is_ok());
  sched.tick();
  sched.tick();
  sched.tick();
  EXPECT_EQ(stage, 1);  // still waiting
  flag = true;
  sched.tick();
  EXPECT_EQ(stage, 2);
  EXPECT_TRUE(sched.all_done());
}

TEST(Costate, DelayUsesVirtualClock) {
  Scheduler sched(1);
  common::u64 woke_at = 0;
  auto sleeper = [&]() -> Costate {
    co_await sched.delay(50);
    woke_at = sched.now_ms();
  };
  ASSERT_TRUE(sched.add(sleeper()).is_ok());
  sched.run(200);
  EXPECT_GE(woke_at, 50u);
  EXPECT_LT(woke_at, 60u);
}

TEST(Costate, SlotLimitIsHard) {
  // Figure 3: the number of connections is bounded by the number of
  // costatements compiled in; the fourth add on a 3-slot scheduler fails.
  Scheduler sched(3);
  int dummy = 0;
  EXPECT_TRUE(sched.add(counter_task(dummy, 1)).is_ok());
  EXPECT_TRUE(sched.add(counter_task(dummy, 1)).is_ok());
  EXPECT_TRUE(sched.add(counter_task(dummy, 1)).is_ok());
  auto status = sched.add(counter_task(dummy, 1));
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), common::ErrorCode::kResourceExhausted);
}

TEST(Costate, DoneTasksStopRunning) {
  Scheduler sched(2);
  int a = 0, b = 0;
  ASSERT_TRUE(sched.add(counter_task(a, 2)).is_ok());
  ASSERT_TRUE(sched.add(counter_task(b, 10)).is_ok());
  sched.run(100);
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 10);
}

TEST(Costate, TickReportsRunnableCount) {
  Scheduler sched(2);
  bool never = false;
  auto blocked = [&]() -> Costate {
    co_await WaitFor{[&] { return never; }};
  };
  int n = 0;
  ASSERT_TRUE(sched.add(blocked()).is_ok());
  ASSERT_TRUE(sched.add(counter_task(n, 1)).is_ok());
  EXPECT_EQ(sched.tick(), 2u);  // both start; blocked suspends at waitfor
  EXPECT_EQ(sched.tick(), 1u);  // counter resumes once more and finishes
  EXPECT_EQ(sched.tick(), 0u);  // counter done, waiter still blocked
}

TEST(Costate, NamesAreTracked) {
  Scheduler sched(2);
  int n = 0;
  ASSERT_TRUE(sched.add(counter_task(n, 1), "handler0").is_ok());
  EXPECT_EQ(sched.task_name(0), "handler0");
}

// ---------------------------------------------------------------------------
// xalloc
// ---------------------------------------------------------------------------

TEST(Xalloc, BumpAllocatesAligned) {
  XallocArena arena(64, 0x90000);
  auto a = arena.xalloc(3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 0x90000u);
  auto b = arena.xalloc(4, 4);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b % 4, 0u);
  EXPECT_GE(*b, 0x90003u);
}

TEST(Xalloc, ExhaustionIsPermanent) {
  XallocArena arena(32);
  ASSERT_TRUE(arena.xalloc(30).ok());
  auto fail = arena.xalloc(16);
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), common::ErrorCode::kResourceExhausted);
  // There is no free(); the arena can never recover.
  EXPECT_FALSE(arena.xalloc(16).ok());
  EXPECT_EQ(arena.failed_allocations(), 2u);
}

TEST(Xalloc, RejectsDegenerateRequests) {
  XallocArena arena(64);
  EXPECT_FALSE(arena.xalloc(0).ok());
  EXPECT_FALSE(arena.xalloc(8, 3).ok());  // non-power-of-two alignment
}

TEST(Xalloc, StatsTrackUsage) {
  XallocArena arena(100);
  ASSERT_TRUE(arena.xalloc(10).ok());
  ASSERT_TRUE(arena.xalloc(20).ok());
  EXPECT_EQ(arena.used(), 30u);
  EXPECT_EQ(arena.remaining(), 70u);
  EXPECT_EQ(arena.allocation_count(), 2u);
}

TEST(Xalloc, RemainingNeverUnderflowsAtTheExhaustionBoundary) {
  // The old check computed `aligned + n` first, which wraps for a huge n:
  // the request would "succeed", used_ would pass capacity_, and
  // remaining() underflowed to ~SIZE_MAX. The subtraction-only boundary
  // must reject these with the arena untouched.
  XallocArena arena(100);
  ASSERT_TRUE(arena.xalloc(10).ok());
  auto huge = arena.xalloc(std::numeric_limits<std::size_t>::max() - 4);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), common::ErrorCode::kResourceExhausted);
  EXPECT_EQ(arena.used(), 10u);        // failed request left no trace
  EXPECT_EQ(arena.remaining(), 90u);   // and cannot underflow
  EXPECT_LE(arena.used(), arena.capacity());

  // A huge alignment must not wrap the padding computation either.
  auto big_align = arena.xalloc(
      1, std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1));
  EXPECT_FALSE(big_align.ok());
  EXPECT_EQ(arena.remaining(), 90u);
}

TEST(Xalloc, ExactFillReachesZeroRemainingAndPadsConsistently) {
  // Filling to the byte is legal and leaves remaining() == 0 exactly.
  XallocArena arena(100);
  ASSERT_TRUE(arena.xalloc(100).ok());
  EXPECT_EQ(arena.remaining(), 0u);
  EXPECT_FALSE(arena.xalloc(1).ok());
  EXPECT_EQ(arena.remaining(), 0u);

  // Alignment padding is charged with the allocation it precedes — a
  // request whose pad+size overflows the budget fails without consuming
  // the pad, so a smaller request can still use those bytes.
  XallocArena tight(16);
  ASSERT_TRUE(tight.xalloc(1).ok());              // used = 1
  EXPECT_FALSE(tight.xalloc(15, 2).ok());         // pad 1 + 15 > 15
  EXPECT_EQ(tight.remaining(), 15u);              // pad not charged on failure
  ASSERT_TRUE(tight.xalloc(14, 2).ok());          // pad 1 + 14 fits exactly
  EXPECT_EQ(tight.remaining(), 0u);
  EXPECT_LE(tight.used(), tight.capacity());
}

// ---------------------------------------------------------------------------
// shared / protected
// ---------------------------------------------------------------------------

TEST(SharedVarTest, UpdatesAreCriticalSections) {
  InterruptGate gate;
  SharedVar<common::u32> v(gate, 0);
  v.store(0xDEADBEEF);
  EXPECT_EQ(v.load(), 0xDEADBEEFu);
  v.update([](common::u32 x) { return x + 1; });
  EXPECT_EQ(v.load(), 0xDEADBEF0u);
  // store + load + update + load = 4 disable windows
  EXPECT_EQ(gate.windows(), 4u);
  EXPECT_TRUE(gate.enabled());
}

TEST(ProtectedVarTest, BackupBeforeModify) {
  ProtectedVar<int> v(10);
  v.store(20);
  EXPECT_EQ(v.load(), 20);
  EXPECT_EQ(v.backup(), 10);
  v.store(30);
  EXPECT_EQ(v.backup(), 20);
}

TEST(ProtectedVarTest, RestoreAfterPowerLoss) {
  ProtectedVar<int> v(1);
  v.store(2);        // backup=1, value=2
  v.corrupt(-999);   // power failure trashes main RAM
  v.restore_after_reset();
  EXPECT_EQ(v.load(), 1);  // last committed backup
  EXPECT_EQ(v.restores(), 1u);
}

// ---------------------------------------------------------------------------
// Function chains
// ---------------------------------------------------------------------------

TEST(FuncChain, SegmentsRunInOrder) {
  FuncChainRegistry reg;
  std::vector<std::string> ran;
  ASSERT_TRUE(reg.make_chain("recover").is_ok());
  ASSERT_TRUE(reg.add("recover", [&] { ran.push_back("free"); }).is_ok());
  ASSERT_TRUE(reg.add("recover", [&] { ran.push_back("declare"); }).is_ok());
  ASSERT_TRUE(reg.add("recover", [&] { ran.push_back("init"); }).is_ok());
  auto n = reg.invoke("recover");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3u);
  EXPECT_EQ(ran, (std::vector<std::string>{"free", "declare", "init"}));
}

TEST(FuncChain, ErrorsOnUnknownOrDuplicate) {
  FuncChainRegistry reg;
  EXPECT_FALSE(reg.add("nochain", [] {}).is_ok());
  EXPECT_FALSE(reg.invoke("nochain").ok());
  ASSERT_TRUE(reg.make_chain("c").is_ok());
  EXPECT_FALSE(reg.make_chain("c").is_ok());
  EXPECT_TRUE(reg.has_chain("c"));
  EXPECT_EQ(reg.segment_count("c"), 0u);
}

// ---------------------------------------------------------------------------
// Error dispatcher
// ---------------------------------------------------------------------------

TEST(ErrorDispatch, DefaultIsFatal) {
  ErrorDispatcher d;
  d.raise({RuntimeErrorKind::kDivideByZero, 0x1234, "div0 in cipher"});
  EXPECT_TRUE(d.fatal_pending());
  ASSERT_EQ(d.history().size(), 1u);
  EXPECT_EQ(d.history()[0].address, 0x1234);
}

TEST(ErrorDispatch, UserHandlerSuppressesReset) {
  // The port's policy: install a handler and "simply ignore most errors".
  ErrorDispatcher d;
  int seen = 0;
  d.define_error_handler([&](const RuntimeErrorInfo& info) {
    ++seen;
    (void)info;  // ignore
  });
  d.raise({RuntimeErrorKind::kRangeFault, 0x2000, ""});
  d.raise({RuntimeErrorKind::kDivideByZero, 0x2004, ""});
  EXPECT_FALSE(d.fatal_pending());
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(d.raised_count(), 2u);
}

TEST(ErrorDispatch, NamesAreStable) {
  EXPECT_STREQ(runtime_error_name(RuntimeErrorKind::kDivideByZero),
               "divide_by_zero");
  EXPECT_STREQ(runtime_error_name(RuntimeErrorKind::kWatchdog), "watchdog");
}

}  // namespace
}  // namespace rmc::dynk
