// Unit tests for src/common: byte helpers, hex codecs, Status/Result,
// RingLog (the paper's circular-buffer logging fix), and the PRNGs.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/prng.h"
#include "common/ringlog.h"
#include "common/status.h"

namespace rmc::common {
namespace {

TEST(Bytes, Make16RoundTrip) {
  EXPECT_EQ(make16(0x34, 0x12), 0x1234);
  EXPECT_EQ(lo8(0x1234), 0x34);
  EXPECT_EQ(hi8(0x1234), 0x12);
  for (unsigned v = 0; v <= 0xFFFF; v += 257) {
    EXPECT_EQ(make16(lo8(static_cast<u16>(v)), hi8(static_cast<u16>(v))), v);
  }
}

TEST(Bytes, LoadStore16LittleEndian) {
  u8 buf[2];
  store16le(buf, 0xBEEF);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
  EXPECT_EQ(load16le(buf), 0xBEEF);
}

TEST(Bytes, LoadStore32BothEndiannesses) {
  u8 buf[4];
  store32le(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(load32le(buf), 0x01020304u);
  store32be(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(load32be(buf), 0x01020304u);
}

TEST(Bytes, Rotl32) {
  EXPECT_EQ(rotl32(0x80000000u, 1), 1u);
  EXPECT_EQ(rotl32(0x12345678u, 0), 0x12345678u);
  EXPECT_EQ(rotl32(0x12345678u, 32), 0x12345678u);
  EXPECT_EQ(rotr32(rotl32(0xDEADBEEFu, 13), 13), 0xDEADBEEFu);
}

TEST(Bytes, HexRoundTrip) {
  const std::vector<u8> data = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x7f};
  EXPECT_EQ(to_hex(data), "deadbeef007f");
  EXPECT_EQ(from_hex("deadbeef007f"), data);
  EXPECT_EQ(from_hex("DE AD be ef 00 7f"), data);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd nibbles
  EXPECT_TRUE(from_hex("zz").empty());    // non-hex
}

TEST(Bytes, HexdumpShape) {
  std::vector<u8> data(20, 0x41);
  const std::string dump = hexdump(data, 0x100);
  EXPECT_NE(dump.find("000100"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST(Bytes, ConstantTimeEqual) {
  const std::vector<u8> a = {1, 2, 3};
  const std::vector<u8> b = {1, 2, 3};
  const std::vector<u8> c = {1, 2, 4};
  const std::vector<u8> d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = make_error(ErrorCode::kTimeout, "handshake stalled");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kTimeout);
  EXPECT_EQ(s.to_string(), "timeout: handshake stalled");
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().is_ok());

  Result<int> bad(make_error(ErrorCode::kNotFound, "nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kNotFound);
}

TEST(RingLog, RetainsEverythingUnderCapacity) {
  RingLog log(1024);
  log.append("alpha");
  log.append("beta");
  EXPECT_EQ(log.entry_count(), 2u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.entries()[0], "alpha");
}

TEST(RingLog, EvictsOldestFirst) {
  RingLog log(10);
  log.append("aaaa");  // 4
  log.append("bbbb");  // 8
  log.append("cccc");  // would be 12 -> evict "aaaa"
  const auto e = log.entries();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0], "bbbb");
  EXPECT_EQ(e[1], "cccc");
  EXPECT_EQ(log.dropped(), 1u);
}

TEST(RingLog, OversizeEntryTruncatedToCapacity) {
  RingLog log(8);
  log.append("0123456789abcdef");
  ASSERT_EQ(log.entry_count(), 1u);
  EXPECT_EQ(log.entries()[0], "01234567");
}

TEST(RingLog, TotalAppendedCountsEvicted) {
  RingLog log(4);
  for (int i = 0; i < 100; ++i) log.append("xx");
  EXPECT_EQ(log.total_appended(), 100u);
  EXPECT_EQ(log.entry_count(), 2u);
  EXPECT_EQ(log.used_bytes(), 4u);
}

TEST(Prng, Xorshift64Deterministic) {
  Xorshift64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, XorshiftZeroSeedStillAdvances) {
  Xorshift64 g(0);
  EXPECT_NE(g.next(), 0u);
}

TEST(Prng, ChanceBounds) {
  Xorshift64 g(1);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(g.chance(0.0));
    EXPECT_TRUE(g.chance(1.0));
  }
}

TEST(Prng, ChanceRoughlyCalibrated) {
  Xorshift64 g(123);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += g.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Prng, Rmc16RandMatchesLcgRecurrence) {
  Rmc16Rand r(1);
  u16 x = 1;
  for (int i = 0; i < 50; ++i) {
    x = static_cast<u16>(25173U * x + 13849U);
    EXPECT_EQ(r.next(), x);
  }
}

TEST(Prng, FillCoversBuffer) {
  Xorshift64 g(99);
  std::vector<u8> buf(64, 0);
  g.fill(buf);
  int nonzero = 0;
  for (u8 b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 32);  // all-zero fill would indicate a broken generator
}

}  // namespace
}  // namespace rmc::common
