// Fault-injection coverage: the FaultPlan medium itself (drop attribution,
// corruption, duplication, jitter reordering, partitions, determinism), the
// TCP hardening it exposed (exponential RTO backoff, retransmission give-up
// latching was_reset, backlog-full SYN drops that recover on retry), the
// issl stall watchdog, and the redirector's degradation paths (handshake
// timeout recycling a slot, shedding under saturation, backend reconnect
// with backoff). Companion to bench_fault_soak (E9), which exercises the
// same machinery at scale.
#include <gtest/gtest.h>

#include <bit>

#include "issl/issl.h"
#include "net/simnet.h"
#include "net/tcp.h"
#include "services/redirector.h"
#include "telemetry/metrics.h"

namespace rmc {
namespace {

using common::u64;
using common::u8;
using net::FaultPlan;
using net::IpAddr;
using net::Port;
using net::Segment;
using net::SimNet;
using net::TcpStack;

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

u64 counter_value(std::string_view name) {
  const auto* c = telemetry::Registry::global().find_counter(name);
  return c != nullptr ? c->value() : 0;
}

/// Bare wire tap: records every segment the medium delivers to it.
class CaptureEndpoint final : public net::NetworkEndpoint {
 public:
  void deliver(const Segment& segment) override {
    received.push_back(segment);
  }
  void on_tick(u64) override {}

  std::vector<Segment> received;
};

// ---------------------------------------------------------------------------
// The FaultPlan medium
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, FactoriesAndAnyFault) {
  EXPECT_FALSE(FaultPlan{}.any_fault());
  EXPECT_TRUE(FaultPlan::uniform_loss(0.01).any_fault());
  EXPECT_TRUE(FaultPlan::burst_loss(0.05).any_fault());

  // burst_loss solves the Gilbert–Elliott stationary distribution so the
  // long-run average loss matches the request.
  const FaultPlan p = FaultPlan::burst_loss(0.05);
  const double p_bad = p.p_good_to_bad / (p.p_good_to_bad + p.p_bad_to_good);
  EXPECT_NEAR(p_bad * p.loss_bad, 0.05, 1e-9);
}

TEST(SimNetFaults, PartitionDropsAttributedSeparatelyFromLoss) {
  SimNet net(5);
  CaptureEndpoint ep;
  net.attach(7, &ep);
  FaultPlan plan;
  plan.partitions = {{5, 10}};  // end exclusive
  net.set_fault_plan(plan);

  Segment s;
  s.dst_ip = 7;
  s.payload = {1};
  net.send(s);   // t=0: before the window
  net.tick(5);
  net.send(s);   // t=5: inside -> dropped, attributed to the partition
  net.tick(5);
  net.send(s);   // t=10: window is exclusive, delivered again
  net.tick(5);

  EXPECT_EQ(ep.received.size(), 2u);
  EXPECT_EQ(net.drops_partition(), 1u);
  EXPECT_EQ(net.drops_loss(), 0u);
  EXPECT_EQ(net.segments_dropped(), 1u);  // legacy total = sum of causes

  // An unattached destination is its own cause, not "loss".
  s.dst_ip = 99;
  net.send(s);
  net.tick(5);
  EXPECT_EQ(net.drops_no_host(), 1u);
  EXPECT_EQ(net.drops_loss(), 0u);
  EXPECT_EQ(net.segments_dropped(), 2u);
}

TEST(SimNetFaults, BurstLossDropsAreAttributedToLoss) {
  SimNet net(6);
  CaptureEndpoint ep;
  net.attach(7, &ep);
  net.set_fault_plan(FaultPlan::burst_loss(0.20));

  Segment s;
  s.dst_ip = 7;
  const int kSent = 2'000;
  for (int i = 0; i < kSent; ++i) net.send(s);
  net.tick(10);

  EXPECT_GT(net.drops_loss(), 0u);
  EXPECT_EQ(net.drops_partition(), 0u);
  EXPECT_EQ(net.drops_no_host(), 0u);
  EXPECT_EQ(ep.received.size() + net.drops_loss(),
            static_cast<std::size_t>(kSent));
  // Loose band around the configured 20% average (seeded, so stable).
  const double rate = static_cast<double>(net.drops_loss()) / kSent;
  EXPECT_GT(rate, 0.08);
  EXPECT_LT(rate, 0.40);
}

TEST(SimNetFaults, CorruptionFlipsExactlyOneBitPerByteAndSparesHeaders) {
  SimNet net(8);
  CaptureEndpoint ep;
  net.attach(7, &ep);
  FaultPlan plan;
  plan.corrupt_byte_probability = 1.0;
  net.set_fault_plan(plan);

  Segment s;
  s.dst_ip = 7;
  s.src_port = 1234;
  s.dst_port = 80;
  s.seq = 42;
  for (u8 i = 0; i < 64; ++i) s.payload.push_back(i);
  net.send(s);
  net.tick(3);

  ASSERT_EQ(ep.received.size(), 1u);
  const Segment& got = ep.received[0];
  ASSERT_EQ(got.payload.size(), s.payload.size());
  for (std::size_t i = 0; i < got.payload.size(); ++i) {
    EXPECT_EQ(std::popcount(static_cast<unsigned>(
                  got.payload[i] ^ s.payload[i])),
              1)
        << "byte " << i;
  }
  // Headers ride through untouched — only the payload is corruptible.
  EXPECT_EQ(got.src_port, s.src_port);
  EXPECT_EQ(got.dst_port, s.dst_port);
  EXPECT_EQ(got.seq, s.seq);
  EXPECT_EQ(net.segments_corrupted(), 1u);
  EXPECT_EQ(net.segments_dropped(), 0u);  // corruption is not a drop
}

TEST(SimNetFaults, DuplicationDeliversBothCopies) {
  SimNet net(9);
  CaptureEndpoint ep;
  net.attach(7, &ep);
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  net.set_fault_plan(plan);

  Segment s;
  s.dst_ip = 7;
  s.payload = {0xAB};
  net.send(s);
  net.tick(5);

  EXPECT_EQ(ep.received.size(), 2u);
  EXPECT_EQ(net.segments_sent(), 1u);
  EXPECT_EQ(net.segments_delivered(), 2u);
  EXPECT_EQ(net.segments_duplicated(), 1u);
}

TEST(SimNetFaults, JitterReordersDeliveries) {
  SimNet net(10);
  CaptureEndpoint ep;
  net.attach(7, &ep);
  FaultPlan plan;
  plan.jitter_ms = 10;
  net.set_fault_plan(plan);

  Segment s;
  s.dst_ip = 7;
  const int kSent = 30;
  for (int i = 0; i < kSent; ++i) {
    s.seq = static_cast<common::u32>(i);
    net.send(s);
  }
  net.tick(20);

  ASSERT_EQ(ep.received.size(), static_cast<std::size_t>(kSent));
  bool out_of_order = false;
  for (std::size_t i = 0; i + 1 < ep.received.size(); ++i) {
    if (ep.received[i].seq > ep.received[i + 1].seq) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order) << "jitter should have reordered something";
}

// The whole point of seeding the medium: an identical scenario replays to
// identical wire statistics AND identical application bytes.
struct LossyRunResult {
  u64 delivered = 0;
  u64 drops = 0;
  u64 corrupted = 0;
  u64 retransmissions = 0;
  std::vector<u8> got;

  bool operator==(const LossyRunResult&) const = default;
};

LossyRunResult lossy_tcp_run(u64 seed) {
  LossyRunResult out;
  SimNet net(seed);
  net.set_fault_plan(FaultPlan::burst_loss(0.10));
  TcpStack server(net, 1);
  TcpStack client(net, 2);
  auto l = server.listen(80);
  auto c = client.connect(1, 80);
  EXPECT_TRUE(l.ok() && c.ok());
  if (!l.ok() || !c.ok()) return out;

  std::vector<u8> payload(4'000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<u8>(i * 31 + 7);
  }
  bool sent = false;
  int server_sock = -1;
  u8 buf[512];
  for (int t = 0; t < 30'000 && out.got.size() < payload.size(); ++t) {
    net.tick(1);
    if (!sent && client.is_established(*c)) {
      EXPECT_TRUE(client.send(*c, payload).ok());
      sent = true;
    }
    if (server_sock < 0) {
      auto a = server.accept(*l);
      if (a.ok()) server_sock = *a;
      continue;
    }
    auto n = server.recv(server_sock, buf);
    if (n.ok()) out.got.insert(out.got.end(), buf, buf + *n);
  }
  EXPECT_EQ(out.got, payload);  // go-back-N repairs every burst
  out.delivered = net.segments_delivered();
  out.drops = net.segments_dropped();
  out.corrupted = net.segments_corrupted();
  out.retransmissions = client.retransmissions() + server.retransmissions();
  return out;
}

TEST(SimNetFaults, LossyTransferIsDeterministicFromTheSeed) {
  const LossyRunResult a = lossy_tcp_run(0xFA0175);
  const LossyRunResult b = lossy_tcp_run(0xFA0175);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.drops, 0u);
  EXPECT_GT(a.retransmissions, 0u);
}

// ---------------------------------------------------------------------------
// TCP hardening
// ---------------------------------------------------------------------------

TEST(TcpHardening, RtoDoublesToCapThenGiveUpLatchesWasReset) {
  SimNet net(11);
  TcpStack server(net, 1);
  TcpStack client(net, 2);
  auto l = server.listen(80);
  ASSERT_TRUE(l.ok());
  auto c = client.connect(1, 80);
  ASSERT_TRUE(c.ok());
  net.tick(20);
  ASSERT_TRUE(client.is_established(*c));

  // Pull the cable: every segment from here on is lost.
  net.set_fault_plan(FaultPlan::uniform_loss(1.0));
  ASSERT_TRUE(client.send(*c, bytes_of("doomed")).ok());

  std::vector<u64> rto_steps{client.rto_ms(*c)};
  for (int t = 0; t < 40'000 && !client.was_reset(*c); ++t) {
    net.tick(1);
    const u64 rto = client.rto_ms(*c);
    if (rto != 0 && rto != rto_steps.back()) rto_steps.push_back(rto);
  }

  // 200 -> 400 -> 800 -> 1600 -> 3200, then pinned at the cap until the
  // kMaxRetx budget runs out.
  EXPECT_EQ(rto_steps,
            (std::vector<u64>{200, 400, 800, 1600, 3200}));
  EXPECT_TRUE(client.was_reset(*c));
  EXPECT_EQ(client.retx_giveups(), 1u);
  EXPECT_FALSE(client.is_open(*c));  // resources freed, not retried forever
}

TEST(TcpHardening, BacklogFullSynDropIsCountedAndClientRetryRecovers) {
  SimNet net(13);
  TcpStack server(net, 1);
  TcpStack client(net, 2);
  auto l = server.listen(80, /*backlog=*/1);
  ASSERT_TRUE(l.ok());

  // First client completes and parks in the (size-1) accept queue.
  auto c1 = client.connect(1, 80);
  ASSERT_TRUE(c1.ok());
  net.tick(10);
  ASSERT_TRUE(client.is_established(*c1));

  // Second SYN finds the backlog full: silently dropped on the wire, but
  // visible in the counter (the satellite this PR adds).
  auto c2 = client.connect(1, 80);
  ASSERT_TRUE(c2.ok());
  net.tick(10);
  EXPECT_GE(server.syn_backlog_drops(), 1u);
  EXPECT_FALSE(client.is_established(*c2));

  // Draining the queue frees the backlog; the client's SYN retransmission
  // then completes the handshake without any application-level retry.
  auto a1 = server.accept(*l);
  ASSERT_TRUE(a1.ok());
  int a2 = -1;
  for (int t = 0; t < 3'000 && a2 < 0; ++t) {
    net.tick(1);
    auto r = server.accept(*l);
    if (r.ok()) a2 = *r;
  }
  ASSERT_GE(a2, 0);
  EXPECT_TRUE(client.is_established(*c2));
}

// ---------------------------------------------------------------------------
// issl stall watchdog
// ---------------------------------------------------------------------------

TEST(IsslHardening, HandshakeAgainstSilentPeerFailsWithTimeout) {
  SimNet net(17);
  TcpStack server(net, 1);
  TcpStack client(net, 2);
  auto l = server.listen(4433);
  ASSERT_TRUE(l.ok());
  auto c = client.connect(1, 4433);
  ASSERT_TRUE(c.ok());
  net.tick(20);
  ASSERT_TRUE(client.is_established(*c));

  const u64 stalls_before = counter_value("issl.stall_timeouts");
  issl::TcpStream stream(client, *c);
  common::Xorshift64 rng(1);
  issl::Config cfg = issl::Config::embedded_port();
  cfg.handshake_stall_limit = 64;  // pump-count budget, tiny for the test
  auto session = issl_bind_client(stream, cfg, rng, bytes_of("psk"));

  // The peer accepts TCP but never speaks issl. Without the watchdog this
  // loop would pump forever; with it the session fails closed.
  for (int i = 0; i < 500 && !session.failed(); ++i) {
    (void)session.pump();
    net.tick(1);
  }
  EXPECT_TRUE(session.failed());
  EXPECT_EQ(session.error().code(), common::ErrorCode::kTimeout);
  EXPECT_EQ(counter_value("issl.stall_timeouts"), stalls_before + 1);
}

// ---------------------------------------------------------------------------
// Redirector degradation paths
// ---------------------------------------------------------------------------

constexpr IpAddr kRedirectorIp = 1;
constexpr IpAddr kBackendIp = 2;
constexpr IpAddr kClientIp = 3;
constexpr Port kTlsPort = 4433;
constexpr Port kBackendPort = 8000;

struct FaultWorld {
  SimNet net{321};
  TcpStack redirector_stack{net, kRedirectorIp};
  TcpStack backend_stack{net, kBackendIp};
  TcpStack client_stack{net, kClientIp};
  services::EchoBackend backend{backend_stack, kBackendPort, [](u8 b) {
                                  return static_cast<u8>(std::toupper(b));
                                }};

  services::RedirectorConfig config() {
    services::RedirectorConfig cfg;
    cfg.listen_port = kTlsPort;
    cfg.backend_ip = kBackendIp;
    cfg.backend_port = kBackendPort;
    cfg.secure = true;
    cfg.tls = issl::Config::embedded_port();
    cfg.psk = bytes_of("board-psk");
    cfg.handler_slots = 1;  // one slot makes recycling observable
    return cfg;
  }

  services::Client make_client(u64 seed) {
    return services::Client(client_stack, kRedirectorIp, kTlsPort,
                            /*secure=*/true, issl::Config::embedded_port(),
                            bytes_of("board-psk"), seed);
  }

  void run(services::RmcRedirector& red,
           std::vector<services::Client*> clients, int rounds) {
    for (int i = 0; i < rounds; ++i) {
      red.poll();
      backend.poll();
      for (services::Client* c : clients) c->poll();
      net.tick(1);
    }
  }
};

TEST(RedirectorHardening, HandshakeTimeoutRecyclesTheSlot) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.config();
  cfg.handshake_timeout_ms = 300;
  services::RmcRedirector red(w.redirector_stack, w.net, cfg);
  ASSERT_TRUE(red.start().is_ok());

  // A mute client: raw TCP connect, never a single issl byte. The handler
  // used to pump it until the issl stall budget; now the virtual-time
  // deadline aborts it.
  auto mute = w.client_stack.connect(kRedirectorIp, kTlsPort);
  ASSERT_TRUE(mute.ok());
  w.run(red, {}, 600);
  EXPECT_EQ(red.stats().handshake_timeouts, 1u);
  EXPECT_GE(red.stats().handshake_failures, 1u);
  EXPECT_TRUE(w.client_stack.was_reset(*mute));

  // The single slot must now be free again for a well-behaved client.
  services::Client good = w.make_client(0xD00D);
  ASSERT_TRUE(good.start().is_ok());
  ASSERT_TRUE(good.send(bytes_of("still alive")).is_ok());
  w.run(red, {&good}, 1'000);
  EXPECT_EQ(std::string(good.received().begin(), good.received().end()),
            "STILL ALIVE");
}

TEST(RedirectorHardening, ShedsExcessClientsWhenAllSlotsBusy) {
  FaultWorld w;
  ASSERT_TRUE(w.backend.start().is_ok());
  auto cfg = w.config();
  cfg.shed_when_busy = true;
  services::RmcRedirector red(w.redirector_stack, w.net, cfg);
  ASSERT_TRUE(red.start().is_ok());

  services::Client a = w.make_client(0xA);
  services::Client b = w.make_client(0xB);
  ASSERT_TRUE(a.start().is_ok());
  ASSERT_TRUE(b.start().is_ok());
  ASSERT_TRUE(a.send(bytes_of("first")).is_ok());
  ASSERT_TRUE(b.send(bytes_of("second")).is_ok());
  w.run(red, {&a, &b}, 1'500);

  // With one slot and shedding on, exactly one client is served; the other
  // is refused with RST instead of queueing unanswered (contrast with
  // test_services' ConnectionCeilingIsHandlerCount, where shedding is off
  // and the excess client waits).
  EXPECT_GE(red.stats().connections_shed, 1u);
  const int served =
      static_cast<int>(!a.received().empty()) +
      static_cast<int>(!b.received().empty());
  EXPECT_EQ(served, 1);
  EXPECT_TRUE(a.failed() || b.failed());
}

TEST(RedirectorHardening, BackendRetryWithBackoffRecoversLateBackend) {
  FaultWorld w;
  services::RmcRedirector red(w.redirector_stack, w.net, w.config());
  ASSERT_TRUE(red.start().is_ok());

  services::Client client = w.make_client(0xBEEF);
  ASSERT_TRUE(client.start().is_ok());
  ASSERT_TRUE(client.send(bytes_of("late backend")).is_ok());

  // The backend comes up only after the first connect attempt has already
  // been refused; the handler's capped-backoff retry loop must absorb that
  // instead of failing the client.
  for (int i = 0; i < 3'000; ++i) {
    if (i == 150) {
      ASSERT_TRUE(w.backend.start().is_ok());
    }
    red.poll();
    w.backend.poll();
    client.poll();
    w.net.tick(1);
  }
  EXPECT_GE(red.stats().backend_retries, 1u);
  EXPECT_EQ(std::string(client.received().begin(), client.received().end()),
            "LATE BACKEND");
}

}  // namespace
}  // namespace rmc
