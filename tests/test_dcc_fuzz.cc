// Differential fuzzing of the MiniDynC compiler.
//
// A structured generator emits random-but-valid programs (nested arithmetic,
// arrays incl. xmem, loops, conditionals, helper-function calls); each
// program is executed by the host interpreter and as compiled Rabbit machine
// code on the board simulator under a random knob set, and the observable
// results (return value + a checksum of every global) must match. Each seed
// is its own test case so failures name the offending seed.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "dcc/codegen.h"
#include "dcc/interp.h"
#include "dcc/parser.h"
#include "rabbit/board.h"

namespace rmc::dcc {
namespace {

using common::u16;
using common::u32;
using common::u64;
using rabbit::Board;

class ProgramGenerator {
 public:
  explicit ProgramGenerator(u64 seed) : rng_(seed) {}

  std::string generate() {
    src_.clear();
    // Globals: a couple of scalars and arrays; sometimes an xmem table.
    src_ += "int ga; int gb;\n";
    src_ += "uchar arr[16];\n";
    src_ += "int warr[8];\n";
    if (rng_.chance(0.5)) src_ += "xmem uchar xtab[32];\n";
    has_xmem_ = src_.find("xmem") != std::string::npos;

    // A helper function the main expression tree can call.
    src_ += "int helper(int a, int b) { return ((a ^ b) + (a & 0xFF)) * 3; }\n";

    src_ += "int f() {\n  int i; int j; int t;\n";
    if (has_xmem_) {
      src_ += "  for (i = 0; i < 32; i = i + 1) xtab[i] = i * 11;\n";
    }
    src_ += "  for (i = 0; i < 16; i = i + 1) arr[i] = i * 3;\n";
    src_ += "  for (i = 0; i < 8; i = i + 1) warr[i] = i * 1000;\n";
    const int stmts = 3 + static_cast<int>(rng_.next_below(5));
    for (int s = 0; s < stmts; ++s) emit_stmt(2);
    src_ += "  return ga + gb * 3 + arr[5] + warr[2];\n}\n";
    return src_;
  }

 private:
  void indent(int depth) { src_.append(depth * 2, ' '); }

  std::string lvalue() {
    switch (rng_.next_below(4)) {
      case 0: return "ga";
      case 1: return "gb";
      case 2: return "arr[" + expr_small() + " & 15]";
      default: return "warr[" + expr_small() + " & 7]";
    }
  }

  std::string expr_small() {
    return std::to_string(rng_.next_below(16));
  }

  std::string expr(int depth) {
    if (depth <= 0 || rng_.chance(0.3)) {
      switch (rng_.next_below(6)) {
        case 0: return std::to_string(rng_.next_below(60000));
        case 1: return "ga";
        case 2: return "gb";
        case 3: return "arr[" + std::to_string(rng_.next_below(16)) + "]";
        case 4: return "warr[" + std::to_string(rng_.next_below(8)) + "]";
        default: return "i";
      }
    }
    switch (rng_.next_below(10)) {
      case 0: return "(" + expr(depth - 1) + " + " + expr(depth - 1) + ")";
      case 1: return "(" + expr(depth - 1) + " - " + expr(depth - 1) + ")";
      case 2: return "(" + expr(depth - 1) + " * " + expr(depth - 1) + ")";
      case 3:
        // Division guarded against zero by or-ing in a constant.
        return "(" + expr(depth - 1) + " / (" + expr(depth - 1) + " | 3))";
      case 4:
        return "(" + expr(depth - 1) + " % (" + expr(depth - 1) + " | 7))";
      case 5: return "(" + expr(depth - 1) + " ^ " + expr(depth - 1) + ")";
      case 6: return "(" + expr(depth - 1) + " & " + expr(depth - 1) + ")";
      case 7:
        return "(" + expr(depth - 1) + " << (" + expr_small() + " & 7))";
      case 8:
        return "(" + expr(depth - 1) + " < " + expr(depth - 1) + ")";
      default:
        return "helper(" + expr(depth - 1) + ", " + expr(depth - 1) + ")";
    }
  }

  void emit_stmt(int depth) {
    switch (rng_.next_below(5)) {
      case 0:
      case 1:
        indent(depth);
        src_ += lvalue() + " = " + expr(2) + ";\n";
        break;
      case 2: {
        indent(depth);
        src_ += "if (" + expr(1) + ") {\n";
        indent(depth + 1);
        src_ += lvalue() + " = " + expr(1) + ";\n";
        if (rng_.chance(0.5)) {
          indent(depth);
          src_ += "} else {\n";
          indent(depth + 1);
          src_ += lvalue() + " = " + expr(1) + ";\n";
        }
        indent(depth);
        src_ += "}\n";
        break;
      }
      case 3: {
        const int n = 1 + static_cast<int>(rng_.next_below(12));
        indent(depth);
        src_ += "for (j = 0; j < " + std::to_string(n) + "; j = j + 1) {\n";
        if (rng_.chance(0.3)) {
          indent(depth + 1);
          src_ += "if ((j & 3) == " + std::to_string(rng_.next_below(4)) +
                  ") continue;\n";
        }
        if (rng_.chance(0.2)) {
          indent(depth + 1);
          src_ += "if (j == " + std::to_string(rng_.next_below(12)) +
                  ") break;\n";
        }
        indent(depth + 1);
        src_ += lvalue() + " = " + expr(1) + " + j;\n";
        indent(depth);
        src_ += "}\n";
        break;
      }
      default: {
        if (has_xmem_) {
          indent(depth);
          src_ += "xtab[" + expr_small() + " & 31] = " + expr(1) + ";\n";
          indent(depth);
          src_ += "ga = ga + xtab[" + expr_small() + " & 31];\n";
        } else {
          indent(depth);
          src_ += "gb = gb ^ " + expr(1) + ";\n";
        }
        break;
      }
    }
  }

  common::Xorshift64 rng_;
  std::string src_;
  bool has_xmem_ = false;
};

CodegenOptions random_options(common::Xorshift64& rng) {
  CodegenOptions o;
  o.debug_hooks = rng.chance(0.5);
  o.fold_constants = rng.chance(0.5);
  o.peephole = rng.chance(0.5);
  o.unroll_loops = rng.chance(0.5);
  o.xmem_tables = rng.chance(0.5);
  return o;
}

// Checksum of all observable globals from the interpreter side.
u32 interp_checksum(Interpreter& in) {
  u32 sum = 0;
  auto mix = [&](u16 v) { sum = sum * 31 + v; };
  mix(*in.global("ga"));
  mix(*in.global("gb"));
  for (u16 i = 0; i < 16; ++i) mix(*in.global("arr", i));
  for (u16 i = 0; i < 8; ++i) mix(*in.global("warr", i));
  return sum;
}

// Checksum of the same globals from board memory via image symbols.
u32 board_checksum(Board& board, const rabbit::Image& image) {
  u32 sum = 0;
  auto addr_of = [&](const char* sym) {
    u32 a = 0;
    EXPECT_TRUE(image.find_symbol(sym, a)) << sym;
    return a;
  };
  auto mix = [&](u16 v) { sum = sum * 31 + v; };
  mix(board.mem().read16(static_cast<u16>(addr_of("g_ga"))));
  mix(board.mem().read16(static_cast<u16>(addr_of("g_gb"))));
  const u32 arr = addr_of("g_arr");
  for (u16 i = 0; i < 16; ++i) {
    mix(board.mem().read(static_cast<u16>(arr + i)));
  }
  const u32 warr = addr_of("g_warr");
  for (u16 i = 0; i < 8; ++i) {
    mix(board.mem().read16(static_cast<u16>(warr + 2 * i)));
  }
  return sum;
}

class FuzzDifferential : public ::testing::TestWithParam<u64> {};

TEST_P(FuzzDifferential, CompiledMatchesInterpreted) {
  const u64 seed = GetParam();
  ProgramGenerator gen(seed);
  const std::string src = gen.generate();
  SCOPED_TRACE("seed " + std::to_string(seed) + "\n" + src);

  auto prog = parse(src);
  ASSERT_TRUE(prog.ok()) << prog.status().to_string();
  auto interp = Interpreter::create(*prog);
  ASSERT_TRUE(interp.ok());
  auto want = interp->call("f", {}, 50'000'000);
  ASSERT_TRUE(want.ok()) << want.status().to_string();

  common::Xorshift64 opt_rng(seed ^ 0xABCD);
  const CodegenOptions opts = random_options(opt_rng);
  auto compiled = compile(src, opts);
  ASSERT_TRUE(compiled.ok()) << compiled.status().to_string();

  Board board;
  board.load(compiled->image);
  auto got = board.call("f_f", 2'000'000'000ULL);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  ASSERT_EQ(got->stop, rabbit::StopReason::kHalted)
      << board.cpu().illegal_message();

  EXPECT_EQ(got->hl, *want) << "return value diverged";
  EXPECT_EQ(board_checksum(board, compiled->image), interp_checksum(*interp))
      << "global state diverged";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<u64>(1, 41));

}  // namespace
}  // namespace rmc::dcc
