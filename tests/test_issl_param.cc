// Parameterized issl sweeps: every supported AES key size, a grid of record
// payload sizes (block-boundary edges), and a range of network loss rates —
// the property being that the secure channel delivers exact bytes or fails
// closed, never silently corrupts.
#include <gtest/gtest.h>

#include "issl/issl.h"
#include "net/simnet.h"
#include "net/tcp.h"

namespace rmc::issl {
namespace {

using common::u8;
using net::SimNet;
using net::TcpStack;

struct Link {
  SimNet net;
  TcpStack server_stack;
  TcpStack client_stack;
  int server_sock = -1;
  int client_sock = -1;
  std::unique_ptr<TcpStream> server_stream;
  std::unique_ptr<TcpStream> client_stream;

  explicit Link(common::u64 seed, double loss = 0.0)
      : net(seed), server_stack(net, 1), client_stack(net, 2) {
    net.set_loss_probability(loss);
    auto l = server_stack.listen(443);
    auto c = client_stack.connect(1, 443);
    client_sock = *c;
    // Even with loss, SYNs retransmit — but under heavy loss the
    // backed-off handshake can give up entirely (RST + was_reset), so
    // retry the connect like a real client.
    for (int i = 0; i < 30'000; ++i) {
      net.tick(1);
      if (auto sc = server_stack.accept(*l); sc.ok()) {
        if (client_stack.is_established(client_sock)) {
          server_sock = *sc;
          break;
        }
        (void)server_stack.abort(*sc);  // stale: from a given-up attempt
      }
      if (client_stack.was_reset(client_sock)) {
        c = client_stack.connect(1, 443);
        client_sock = *c;
      }
    }
    server_stream = std::make_unique<TcpStream>(server_stack, server_sock);
    client_stream = std::make_unique<TcpStream>(client_stack, client_sock);
  }
};

bool drive(Link& link, Session& client, Session& server, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    (void)client.pump();
    (void)server.pump();
    link.net.tick(1);
    if (client.established() && server.established()) return true;
    if (client.failed() || server.failed()) return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Key-size sweep (PSK key exchange, all three AES widths the library keeps)
// ---------------------------------------------------------------------------

class KeySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KeySizeSweep, HandshakeAndEchoAtEveryWidth) {
  const std::size_t bits = GetParam();
  Link link(bits);
  ASSERT_GE(link.server_sock, 0);
  Config cfg;
  cfg.key_exchange = KeyExchange::kPsk;
  cfg.aes_key_bits = bits;
  const std::vector<u8> psk = {'k', 's'};
  common::Xorshift64 srng(1), crng(2);
  ServerIdentity id;
  id.psk = psk;
  auto server = issl_bind_server(*link.server_stream, cfg, srng, id);
  auto client = issl_bind_client(*link.client_stream, cfg, crng, psk);
  ASSERT_TRUE(drive(link, client, server, 500)) << bits << " bits";

  std::vector<u8> msg(100);
  common::Xorshift64 fill(bits);
  fill.fill(msg);
  ASSERT_TRUE(issl_write(client, msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 300 && got.size() < msg.size(); ++i) {
    link.net.tick(1);
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok()) got.insert(got.end(), r->begin(), r->end());
  }
  EXPECT_EQ(got, msg);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, KeySizeSweep,
                         ::testing::Values(128, 192, 256));

// ---------------------------------------------------------------------------
// Record payload-size sweep (block-boundary edge cases)
// ---------------------------------------------------------------------------

class PayloadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSweep, ExactBytesAcrossBoundaries) {
  const std::size_t n = GetParam();
  Link link(n + 7);
  ASSERT_GE(link.server_sock, 0);
  const std::vector<u8> psk = {'p'};
  common::Xorshift64 srng(3), crng(4);
  ServerIdentity id;
  id.psk = psk;
  auto server =
      issl_bind_server(*link.server_stream, Config::embedded_port(), srng, id);
  auto client = issl_bind_client(*link.client_stream,
                                 Config::embedded_port(), crng, psk);
  ASSERT_TRUE(drive(link, client, server, 500));

  std::vector<u8> msg(n);
  common::Xorshift64 fill(n * 31 + 1);
  fill.fill(msg);
  ASSERT_TRUE(issl_write(client, msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 2'000 && got.size() < msg.size(); ++i) {
    link.net.tick(1);
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok()) got.insert(got.end(), r->begin(), r->end());
  }
  EXPECT_EQ(got, msg) << "payload " << n;
}

INSTANTIATE_TEST_SUITE_P(Boundaries, PayloadSweep,
                         ::testing::Values(1, 15, 16, 17, 31, 32, 33, 255,
                                           256, 511, 512, 4095, 4096,
                                           16384,   // one max record
                                           16385,   // splits into two
                                           40000));

// ---------------------------------------------------------------------------
// Loss-rate sweep: the secure channel over lossy TCP must deliver exactly
// or fail closed.
// ---------------------------------------------------------------------------

class LossSweep : public ::testing::TestWithParam<int> {};  // loss percent

TEST_P(LossSweep, ExactDeliveryUnderLoss) {
  const double loss = GetParam() / 100.0;
  Link link(0x10 + GetParam(), loss);
  ASSERT_GE(link.server_sock, 0) << "transport never established";
  const std::vector<u8> psk = {'l'};
  common::Xorshift64 srng(5), crng(6);
  ServerIdentity id;
  id.psk = psk;
  auto server =
      issl_bind_server(*link.server_stream, Config::embedded_port(), srng, id);
  auto client = issl_bind_client(*link.client_stream,
                                 Config::embedded_port(), crng, psk);
  ASSERT_TRUE(drive(link, client, server, 50'000)) << "loss " << loss;

  std::vector<u8> msg(2'000);
  common::Xorshift64 fill(9);
  fill.fill(msg);
  ASSERT_TRUE(issl_write(client, msg).ok());
  std::vector<u8> got;
  for (int i = 0; i < 100'000 && got.size() < msg.size(); ++i) {
    link.net.tick(1);
    (void)server.pump();
    auto r = issl_read(server);
    if (r.ok()) got.insert(got.end(), r->begin(), r->end());
    if (server.failed()) break;
  }
  // TCP hides the loss entirely: the record layer must never see a gap.
  EXPECT_EQ(got, msg) << "loss " << loss;
  EXPECT_FALSE(server.failed());
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0, 5, 10, 20, 30));

}  // namespace
}  // namespace rmc::issl
