// The SHA-1 MiniDynC port (dc/sha1.dc): FIPS 180-1 known answers on the
// board, agreement with the host implementation on random blocks, and the
// on-board compression cost used by the E5/E6 handshake model.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/prng.h"
#include "crypto/sha1.h"
#include "dcc/codegen.h"
#include "rabbit/board.h"
#include "services/aes_port.h"

namespace rmc {
namespace {

using common::u16;
using common::u32;
using common::u8;

struct Sha1Board {
  dcc::CompileOutput out;
  rabbit::Board board;
  u32 msg_addr = 0, hi_addr = 0, lo_addr = 0;

  explicit Sha1Board(const dcc::CodegenOptions& opts = {}) {
    auto src = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                        "/dc/sha1.dc");
    EXPECT_TRUE(src.ok());
    auto compiled = dcc::compile(*src, opts);
    EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
    out = std::move(*compiled);
    board.load(out.image);
    EXPECT_TRUE(out.image.find_symbol("g_sha1_msg", msg_addr));
    EXPECT_TRUE(out.image.find_symbol("g_h_hi", hi_addr));
    EXPECT_TRUE(out.image.find_symbol("g_h_lo", lo_addr));
  }

  // Hash a single pre-padded 64-byte block; returns the 20-byte digest and
  // the cycles of the compression call.
  std::pair<std::array<u8, 20>, common::u64> hash_block(
      std::span<const u8> block) {
    EXPECT_TRUE(board.call("f_sha1_init", 100'000'000).ok());
    for (std::size_t i = 0; i < 64; ++i) {
      board.mem().write(static_cast<u16>(msg_addr + i), block[i]);
    }
    auto r = board.call("f_sha1_block", 500'000'000);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r->stop, rabbit::StopReason::kHalted)
        << board.cpu().illegal_message();
    std::array<u8, 20> digest{};
    for (int w = 0; w < 5; ++w) {
      const u16 hi = board.mem().read16(static_cast<u16>(hi_addr + 2 * w));
      const u16 lo = board.mem().read16(static_cast<u16>(lo_addr + 2 * w));
      digest[4 * w + 0] = static_cast<u8>(hi >> 8);
      digest[4 * w + 1] = static_cast<u8>(hi & 0xFF);
      digest[4 * w + 2] = static_cast<u8>(lo >> 8);
      digest[4 * w + 3] = static_cast<u8>(lo & 0xFF);
    }
    return {digest, r.ok() ? r->cycles : 0};
  }
};

// SHA-1 padding for messages < 56 bytes (single block).
std::array<u8, 64> pad_block(std::span<const u8> msg) {
  std::array<u8, 64> block{};
  std::copy(msg.begin(), msg.end(), block.begin());
  block[msg.size()] = 0x80;
  const common::u64 bits = msg.size() * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<u8>(bits >> (56 - 8 * i));
  }
  return block;
}

TEST(Sha1Port, Fips180AbcVector) {
  Sha1Board sb;
  const std::string msg = "abc";
  const auto block = pad_block(std::span<const u8>(
      reinterpret_cast<const u8*>(msg.data()), msg.size()));
  auto [digest, cycles] = sb.hash_block(block);
  EXPECT_EQ(common::to_hex(digest),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_GT(cycles, 10'000u);
}

TEST(Sha1Port, EmptyMessageVector) {
  Sha1Board sb;
  const auto block = pad_block({});
  auto [digest, cycles] = sb.hash_block(block);
  (void)cycles;
  EXPECT_EQ(common::to_hex(digest),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Port, OptimizedBuildMatchesHostOnRandomMessages) {
  Sha1Board sb(dcc::CodegenOptions::all_optimizations());
  common::Xorshift64 rng(0x5A1);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<u8> msg(1 + rng.next_below(50));
    rng.fill(msg);
    const auto block = pad_block(msg);
    auto [digest, cycles] = sb.hash_block(block);
    (void)cycles;
    const auto want = crypto::Sha1::digest(msg);
    EXPECT_EQ(common::to_hex(digest), common::to_hex(want))
        << "trial " << trial << " len " << msg.size();
  }
}

TEST(Sha1Port, CompressionCostIsSameOrderAsAesBlock) {
  // The E5/E6 handshake model prices PRF compressions in AES-block
  // equivalents; verify the two measured costs are within one order of
  // magnitude of each other on the same (debug) build.
  Sha1Board sb;
  const auto block = pad_block({});
  auto [digest, sha_cycles] = sb.hash_block(block);
  (void)digest;

  auto aes = services::AesOnBoard::create_from_repo(
      services::AesImpl::kCompiledC, RMC_REPO_ROOT,
      dcc::CodegenOptions::debug_defaults());
  ASSERT_TRUE(aes.ok());
  std::array<u8, 16> key{}, pt{}, ct{};
  (void)aes->set_key(key);
  const common::u64 aes_cycles = *aes->encrypt(pt, ct);

  EXPECT_GT(sha_cycles, aes_cycles / 10);
  EXPECT_LT(sha_cycles, aes_cycles * 10);
}

}  // namespace
}  // namespace rmc
