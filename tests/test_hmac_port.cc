// HMAC-SHA1 MiniDynC port (dc/hmac.dc over dc/sha1.dc): RFC 2202 vectors on
// the board, multi-block streaming, agreement with the host implementation,
// and the on-board cost of one record MAC.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/prng.h"
#include "crypto/sha1.h"
#include "dcc/codegen.h"
#include "rabbit/board.h"
#include "services/aes_port.h"

namespace rmc {
namespace {

using common::u16;
using common::u32;
using common::u8;

struct HmacBoard {
  dcc::CompileOutput out;
  rabbit::Board board;
  u32 key_addr = 0, hi_addr = 0, lo_addr = 0;
  common::u64 last_cycles = 0;

  HmacBoard() {
    auto sha = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                        "/dc/sha1.dc");
    auto hmac = services::read_text_file(std::string(RMC_REPO_ROOT) +
                                         "/dc/hmac.dc");
    EXPECT_TRUE(sha.ok() && hmac.ok());
    auto compiled = dcc::compile(*sha + *hmac);
    EXPECT_TRUE(compiled.ok()) << compiled.status().to_string();
    out = std::move(*compiled);
    board.load(out.image);
    EXPECT_TRUE(out.image.find_symbol("g_hmac_key", key_addr));
    EXPECT_TRUE(out.image.find_symbol("g_h_hi", hi_addr));
    EXPECT_TRUE(out.image.find_symbol("g_h_lo", lo_addr));
  }

  void call1(const char* fn, const char* param, u16 value) {
    u32 slot = 0;
    ASSERT_TRUE(out.image.find_symbol(
        ("l_" + std::string(fn) + "_" + param).c_str(), slot));
    board.mem().write16(static_cast<u16>(slot), value);
    auto r = board.call("f_" + std::string(fn), 2'000'000'000ULL);
    ASSERT_TRUE(r.ok());
    last_cycles = r->cycles;
  }

  std::array<u8, 20> mac(std::span<const u8> key, std::span<const u8> msg) {
    std::array<u8, 20> digest{};
    EXPECT_LE(key.size(), 64u);
    for (std::size_t i = 0; i < key.size(); ++i) {
      board.mem().write(static_cast<u16>(key_addr + i), key[i]);
    }
    call1("hmac_begin", "klen", static_cast<u16>(key.size()));
    common::u64 total = last_cycles;
    for (u8 b : msg) {
      call1("hmac_byte", "b", b);
      total += last_cycles;
    }
    auto r = board.call("f_hmac_end", 2'000'000'000ULL);
    EXPECT_TRUE(r.ok());
    total += r->cycles;
    last_cycles = total;
    for (int w = 0; w < 5; ++w) {
      const u16 hi = board.mem().read16(static_cast<u16>(hi_addr + 2 * w));
      const u16 lo = board.mem().read16(static_cast<u16>(lo_addr + 2 * w));
      digest[4 * w + 0] = static_cast<u8>(hi >> 8);
      digest[4 * w + 1] = static_cast<u8>(hi & 0xFF);
      digest[4 * w + 2] = static_cast<u8>(lo >> 8);
      digest[4 * w + 3] = static_cast<u8>(lo & 0xFF);
    }
    return digest;
  }
};

std::vector<u8> bytes_of(std::string_view s) {
  return {reinterpret_cast<const u8*>(s.data()),
          reinterpret_cast<const u8*>(s.data()) + s.size()};
}

TEST(HmacPort, Rfc2202Vector1) {
  HmacBoard hb;
  const std::vector<u8> key(20, 0x0b);
  const auto digest = hb.mac(key, bytes_of("Hi There"));
  EXPECT_EQ(common::to_hex(digest),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacPort, Rfc2202Vector2) {
  HmacBoard hb;
  const auto digest =
      hb.mac(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"));
  EXPECT_EQ(common::to_hex(digest),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacPort, MultiBlockMessageMatchesHost) {
  // > 64 bytes forces the streaming path across block boundaries.
  HmacBoard hb;
  common::Xorshift64 rng(0x2202);
  std::vector<u8> key(32), msg(150);
  rng.fill(key);
  rng.fill(msg);
  const auto digest = hb.mac(key, msg);
  const auto want = crypto::hmac_sha1(key, msg);
  EXPECT_EQ(common::to_hex(digest), common::to_hex(want));
}

TEST(HmacPort, RecordMacCostReported) {
  // One issl record MAC (~64 B payload) on the board, debug build: this is
  // the per-record overhead the E5 cost model charges.
  HmacBoard hb;
  const std::vector<u8> key(20, 1);
  std::vector<u8> payload(64, 0x42);
  (void)hb.mac(key, payload);
  // 4 compressions (2 inner blocks + padding + outer): six digits of cycles.
  EXPECT_GT(hb.last_cycles, 400'000u);
}

}  // namespace
}  // namespace rmc
