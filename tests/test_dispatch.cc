// Fast-dispatch interpreter tests: fast-vs-legacy equivalence, the
// predecoded-cache coherence protocol (self-modifying code, targeted
// invalidation), the logical-address-space wrap and XPC-window fetch edge
// cases pinned for both dispatch modes, the zero-breakpoint hot-loop
// regression, and the Fleet's threaded-vs-sequential determinism gate.
#include <gtest/gtest.h>

#include <initializer_list>
#include <memory>
#include <vector>

#include "rabbit/board.h"
#include "rabbit/cpu.h"
#include "rabbit/fleet.h"
#include "rabbit/memory.h"

namespace rmc::rabbit {
namespace {

using common::u16;
using common::u32;
using common::u64;
using common::u8;

struct BareMachine {
  Memory mem;
  IoBus io;
  Cpu cpu{mem, io};

  explicit BareMachine(DispatchMode mode) {
    mem.set_flash_writable(true);
    cpu.set_dispatch(mode);
    cpu.regs().sp = 0xDFF0;
    cpu.regs().pc = 0x0100;
  }

  void load(std::initializer_list<u8> code, u32 at = 0x0100) {
    for (u8 b : code) mem.write_phys(at++, b);
  }
  void load(const std::vector<u8>& code, u32 at = 0x0100) {
    for (u8 b : code) mem.write_phys(at++, b);
  }
};

// ---------------------------------------------------------------------------
// Memory edge cases (satellite: pin the wrap and XPC-window semantics)
// ---------------------------------------------------------------------------

// A 16-bit access at logical 0xFFFF wraps to logical 0x0000 — the *logical*
// address space wraps, so the two bytes land in different segments (XPC
// window, then root), not at adjacent physical addresses.
TEST(MemoryEdge, SixteenBitAccessWrapsLogicalSpace) {
  Memory m;
  m.set_flash_writable(true);  // both target phys addresses sit in flash
  m.set_xpc(0x10);  // 0xE000..0xFFFF -> phys 0x1E000..0x1FFFF
  m.write16(0xFFFF, 0xBEEF);
  EXPECT_EQ(m.read_phys(0x1FFFF), 0xEF);  // low byte via the XPC window
  EXPECT_EQ(m.read_phys(0x00000), 0xBE);  // high byte wrapped to root
  EXPECT_EQ(m.read16(0xFFFF), 0xBEEF);
  // And the wrap tracks XPC: move the window, the low byte moves with it.
  m.set_xpc(0x20);
  m.write_phys(0x2FFFF, 0x11);
  EXPECT_EQ(m.read16(0xFFFF), 0xBE11u);
}

// An instruction fetch spanning the 0xDFFF/0xE000 boundary reads its opcode
// from the stack segment and its operands through the XPC window — and a
// later XPC switch must change which operands the same logical PC sees.
// Run in both dispatch modes; in fast mode the page-edge guard forces this
// fetch down the slow path, which this test pins.
class DispatchMode2 : public ::testing::TestWithParam<DispatchMode> {};

TEST_P(DispatchMode2, Fetch16SpansXpcWindowAfterXpcSwitch) {
  BareMachine m(GetParam());
  // LD HL,nn with the opcode at logical 0xDFFF (identity-mapped) and the
  // immediate at 0xE000/0xE001 (XPC window).
  m.mem.write_phys(0xDFFF, 0x21);
  m.mem.set_xpc(0x10);
  m.mem.write_phys(0x1E000, 0x34);  // logical 0xE000
  m.mem.write_phys(0x1E001, 0x12);  // logical 0xE001
  m.cpu.regs().pc = 0xDFFF;
  m.cpu.run(1);  // budget 1: exactly one instruction executes
  EXPECT_EQ(m.cpu.regs().hl(), 0x1234);
  EXPECT_EQ(m.cpu.regs().pc, 0xE002);

  // Same logical PC, different XPC: the operand bytes come from the new
  // window mapping.
  m.mem.set_xpc(0x20);
  m.mem.write_phys(0x2E000, 0x78);
  m.mem.write_phys(0x2E001, 0x56);
  m.cpu.regs().pc = 0xDFFF;
  m.cpu.run(1);  // budget 1: exactly one instruction executes
  EXPECT_EQ(m.cpu.regs().hl(), 0x5678);
}

INSTANTIATE_TEST_SUITE_P(BothModes, DispatchMode2,
                         ::testing::Values(DispatchMode::kLegacy,
                                           DispatchMode::kFast));

// ---------------------------------------------------------------------------
// Fast vs legacy equivalence
// ---------------------------------------------------------------------------

// A program touching every dispatch family: 8/16-bit ALU, rotates, CB
// bit-ops, EX/EXX, IX/IY displacement ops, MUL/BOOL (Rabbit ED page),
// PUSH/POP, DJNZ, conditional flow, memory stores.
std::vector<u8> mixed_program() {
  return {
      0x3E, 0x1B,              // LD A,0x1B
      0x06, 0x05,              // LD B,5
      0x0E, 0xF0,              // LD C,0xF0
      0x11, 0x34, 0x12,        // LD DE,0x1234
      0x21, 0x00, 0x60,        // LD HL,0x6000
      0x70,                    // LD (HL),B
      0x34,                    // INC (HL)
      0x86,                    // ADD A,(HL)
      0x17,                    // RLA
      0xCB, 0x11,              // RL C
      0xCB, 0x6E,              // BIT 5,(HL)
      0xCB, 0xDE,              // SET 3,(HL)
      0xF7,                    // MUL (Rabbit: HL:BC = BC * DE)
      0xED, 0x44,              // NEG
      0xED, 0x4A,              // ADC HL,BC
      0xDD, 0x21, 0x10, 0x60,  // LD IX,0x6010
      0xDD, 0x36, 0x02, 0x7E,  // LD (IX+2),0x7E
      0xDD, 0x86, 0x02,        // ADD A,(IX+2)
      0xD5,                    // PUSH DE
      0xE5,                    // PUSH HL
      0xE1,                    // POP HL
      0xD1,                    // POP DE
      0x08,                    // EX AF,AF'
      0xD9,                    // EXX
      0x3E, 0x03,              // LD A,3
      0x3D,                    // DEC A          <- DJNZ-style loop below
      0x20, 0xFD,              // JR NZ,-3
      0x06, 0x04,              // LD B,4
      0x10, 0xFE,              // DJNZ -2
      0x76,                    // HALT
  };
}

u64 mem_digest(const Memory& m) {
  u64 h = 1469598103934665603ULL;
  const u8* p = m.raw_phys();
  for (u32 i = 0; i < Memory::kPhysSize; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(FastDispatch, MatchesLegacyOnMixedProgram) {
  BareMachine fast(DispatchMode::kFast);
  BareMachine legacy(DispatchMode::kLegacy);
  fast.load(mixed_program());
  legacy.load(mixed_program());
  EXPECT_EQ(fast.cpu.run(100000), StopReason::kHalted);
  EXPECT_EQ(legacy.cpu.run(100000), StopReason::kHalted);

  const Registers& a = fast.cpu.regs();
  const Registers& b = legacy.cpu.regs();
  EXPECT_EQ(a.af(), b.af());
  EXPECT_EQ(a.bc(), b.bc());
  EXPECT_EQ(a.de(), b.de());
  EXPECT_EQ(a.hl(), b.hl());
  EXPECT_EQ(a.ix, b.ix);
  EXPECT_EQ(a.iy, b.iy);
  EXPECT_EQ(a.sp, b.sp);
  EXPECT_EQ(a.pc, b.pc);
  EXPECT_EQ(fast.cpu.cycles(), legacy.cpu.cycles());
  EXPECT_EQ(fast.cpu.instructions_retired(),
            legacy.cpu.instructions_retired());
  EXPECT_EQ(mem_digest(fast.mem), mem_digest(legacy.mem));
}

// Satellite regression: with zero breakpoints registered, a 1M-cycle run
// must retire exactly as many instructions under fast dispatch as under the
// legacy switch — the hoisted breakpoint check and the predecoded cache may
// not change what executes.
TEST(FastDispatch, MillionCycleRunRetiresSameInstructionCount) {
  // 16-bit counter loop: INC HL; LD A,H; OR L; JR NZ (6+2+4+5 cycles/iter).
  std::initializer_list<u8> loop = {
      0x21, 0x00, 0x00,  // LD HL,0
      0x23,              // INC HL
      0x7C,              // LD A,H
      0xB5,              // OR L
      0x20, 0xFB,        // JR NZ,-5
      0x76,              // HALT
  };
  BareMachine fast(DispatchMode::kFast);
  BareMachine legacy(DispatchMode::kLegacy);
  fast.load(loop);
  legacy.load(loop);
  fast.cpu.run(1'000'000);
  legacy.cpu.run(1'000'000);
  EXPECT_GT(fast.cpu.instructions_retired(), 200'000u);
  EXPECT_EQ(fast.cpu.instructions_retired(),
            legacy.cpu.instructions_retired());
  EXPECT_EQ(fast.cpu.cycles(), legacy.cpu.cycles());
  EXPECT_EQ(fast.cpu.regs().hl(), legacy.cpu.regs().hl());
}

// ---------------------------------------------------------------------------
// Predecode-cache coherence (targeted invalidation)
// ---------------------------------------------------------------------------

// Self-modifying code: pass 1 executes a NOP and overwrites it with INC A;
// pass 2 must execute the new byte. A stale predecoded uop would leave
// A == 0x3C.
TEST(FastDispatch, SelfModifyingCodeReDecodes) {
  BareMachine m(DispatchMode::kFast);
  m.load({
      0x3E, 0x3C,        // 0x0100: LD A,0x3C   (0x3C = INC A opcode)
      0x06, 0x02,        // 0x0102: LD B,2
      0x00,              // 0x0104: NOP         <- overwritten below
      0x32, 0x04, 0x01,  // 0x0105: LD (0x0104),A
      0x10, 0xFA,        // 0x0108: DJNZ -6 (back to 0x0104)
      0x76,              // 0x010A: HALT
  });
  EXPECT_EQ(m.cpu.run(100000), StopReason::kHalted);
  EXPECT_EQ(m.cpu.regs().a, 0x3D);  // INC A ran on the second pass
}

// A store into a watched code page must invalidate instructions that
// *start* up to kMaxUopBytes-1 before the written byte (a multi-byte
// instruction caches its immediate). Overwrite the immediate of an already-
// executed LD A,n and re-run it.
TEST(FastDispatch, StoreIntoCachedImmediateInvalidates) {
  BareMachine m(DispatchMode::kFast);
  m.load({
      0x3E, 0x11,  // 0x0100: LD A,0x11
      0x76,        // 0x0102: HALT
  });
  EXPECT_EQ(m.cpu.run(100000), StopReason::kHalted);
  EXPECT_EQ(m.cpu.regs().a, 0x11);

  m.mem.write_phys(0x0101, 0x22);  // patch the immediate byte only
  m.cpu.clear_halt();
  m.cpu.regs().pc = 0x0100;
  EXPECT_EQ(m.cpu.run(100000), StopReason::kHalted);
  EXPECT_EQ(m.cpu.regs().a, 0x22);
}

// ---------------------------------------------------------------------------
// Fleet determinism
// ---------------------------------------------------------------------------

// Give each board a distinct endless workload (counter loop with a
// per-board stride) and check that N threads produce the exact same
// architectural digest as the sequential run — the ISSUE's
// "threaded == sequential" gate.
void load_counter_program(Board& b, u8 stride) {
  // LD A,stride; loop: LD HL,0x6000; ADD A,(HL); LD (HL),A; JP loop
  const u8 prog[] = {0x3E, stride,            // LD A,stride
                     0x21, 0x00, 0x60,        // LD HL,0x6000
                     0x86,                    // ADD A,(HL)
                     0x77,                    // LD (HL),A
                     0xC3, 0x02, 0x01};       // JP 0x0102
  u32 at = 0x0100;
  for (u8 byte : prog) b.mem().write_phys(at++, byte);
  b.cpu().regs().pc = 0x0100;
}

u64 run_fleet(unsigned threads, u64* hook_calls) {
  std::vector<std::unique_ptr<Board>> boards;
  Fleet fleet;
  fleet.set_threads(threads);
  for (u8 i = 0; i < 3; ++i) {
    boards.push_back(std::make_unique<Board>());
    load_counter_program(*boards.back(), static_cast<u8>(i + 1));
    fleet.add(boards.back().get());
  }
  u64 calls = 0;
  const Fleet::RunResult r =
      fleet.run(5'000, 40, [&calls](u64) { ++calls; });
  EXPECT_EQ(r.quanta, 40u);
  EXPECT_GT(r.cycles, 0u);
  if (hook_calls != nullptr) *hook_calls = calls;
  return fleet.digest();
}

TEST(Fleet, ThreadedRunMatchesSequentialDigest) {
  u64 seq_hooks = 0, thr_hooks = 0;
  const u64 sequential = run_fleet(1, &seq_hooks);
  const u64 threaded = run_fleet(4, &thr_hooks);
  EXPECT_EQ(sequential, threaded);
  EXPECT_EQ(seq_hooks, 40u);
  EXPECT_EQ(thr_hooks, 40u);
  // And the digest is actually sensitive to board state: a different
  // workload digests differently.
  std::vector<std::unique_ptr<Board>> boards;
  Fleet other;
  boards.push_back(std::make_unique<Board>());
  load_counter_program(*boards.back(), 9);
  other.add(boards.back().get());
  other.run(5'000, 40);
  EXPECT_NE(other.digest(), sequential);
}

// The barrier hook observes every board at the same virtual-time floor:
// when it runs, each board has consumed at least (q+1) quanta of cycles.
TEST(Fleet, BarrierHookSeesLockstepVirtualTime) {
  std::vector<std::unique_ptr<Board>> boards;
  Fleet fleet;
  fleet.set_threads(3);
  for (u8 i = 0; i < 3; ++i) {
    boards.push_back(std::make_unique<Board>());
    load_counter_program(*boards.back(), static_cast<u8>(i + 1));
    fleet.add(boards.back().get());
  }
  constexpr u64 kQuantum = 2'000;
  bool lockstep = true;
  fleet.run(kQuantum, 25, [&](u64 q) {
    for (auto& b : boards) {
      if (b->cpu().cycles() < (q + 1) * kQuantum) lockstep = false;
    }
  });
  EXPECT_TRUE(lockstep);
}

TEST(Fleet, ThreadsFromEnvDefaultsToOne) {
  // The test runner doesn't set RMC_BOARD_THREADS; the default must be
  // sequential so every existing bench stays single-threaded unless asked.
  EXPECT_GE(Fleet::threads_from_env(), 1u);
}

}  // namespace
}  // namespace rmc::rabbit
