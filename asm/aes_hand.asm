; AES-128 encryption, hand-optimized Rabbit 2000 assembly.
;
; This plays the role of the assembly implementation "supplied by Rabbit
; Semiconductor" in the paper's Section 6 experiment: the same cipher as
; dc/aes.dc, but written the way a human optimizes for this CPU:
;   * all tables page-aligned in root RAM, so a lookup is just
;     "ld l, value / ld a, (hl)" with H pinned to the table page;
;   * SubBytes+ShiftRows and MixColumns fully unrolled with the state held
;     in registers (B,C,D,E) per column;
;   * MixColumns uses the identity a0^t = a1^a2^a3 so no temporary is
;     needed at all;
;   * round keys walked with IY, key expansion with IX-relative accesses.
;
; Tables are *computed* by aes_init (log/antilog over generator 3, affine
; transform), so the source carries no transcribed constants; tests verify
; every byte against the host C++ implementation.
;
; Host interface (image symbols):
;   aes_init      build sbox/xtime tables                 (call once)
;   aes_set_key   expand key_buf into the round keys
;   aes_encrypt   out_buf = AES-128-Encrypt(in_buf)
;   key_buf/in_buf/out_buf  16-byte buffers

; Function map for the telemetry cycle profiler (emits no bytes). Interior
; loop labels (ai_log, ks_round, enc_round, ...) are deliberately absent so
; each routine's cycles stay attributed to the routine.
        func aes_init, aes_set_key, aes_encrypt
        func sub_shift, mix_columns, add_round_key

; ---------------------------------------------------------------------------
; Data (data segment RAM; tables page-aligned)
; ---------------------------------------------------------------------------
        org 6100h
sbox_t:  ds 256
        org 6200h
xt_t:    ds 256
        org 6300h
alog_t:  ds 256
        org 6400h
logt_t:  ds 256
        org 6500h
rk_t:    ds 176
rcon_v:  ds 1
round_v: ds 1
        org 65c0h
st_t:    ds 16
tmp_t:   ds 16
key_buf: ds 16
in_buf:  ds 16
out_buf: ds 16

; ---------------------------------------------------------------------------
; aes_init: build alog/log, xtime and sbox tables
; ---------------------------------------------------------------------------
        org 0100h
aes_init:
        ; alog[i] = 3^i, logt[3^i] = i   (255 entries)
        ld hl, alog_t
        ld c, 1                 ; x = 1
        ld e, 0                 ; i = 0
        ld b, 255
ai_log:
        ld (hl), c
        push hl
        ld h, hi(logt_t)
        ld l, c
        ld (hl), e
        ld a, c                 ; x = x ^ xtime(x)  (multiply by 3)
        add a, a
        jr nc, ai1
        xor 1bh
ai1:
        xor c
        ld c, a
        pop hl
        inc hl
        inc e
        djnz ai_log

        ; xt[i] = xtime(i)   (256 entries; b=0 loops 256 times)
        ld hl, xt_t
        ld b, 0
        ld c, 0
ai_xt:
        ld a, c
        add a, a
        jr nc, ai2
        xor 1bh
ai2:
        ld (hl), a
        inc hl
        inc c
        djnz ai_xt

        ; sbox[i] = affine(inverse(i))
        ld hl, sbox_t
        ld b, 0
        ld c, 0
ai_sb:
        ld a, c
        or a
        jr nz, ai3
        xor a                   ; inverse(0) = 0
        jr ai_aff
ai3:
        push hl
        ld h, hi(logt_t)
        ld l, c
        ld a, (hl)              ; log(i)
        cpl                     ; 255 - log(i)
        cp 255
        jr nz, ai4
        xor a                   ; (255 - 0) mod 255 = 0
ai4:
        ld h, hi(alog_t)
        ld l, a
        ld a, (hl)              ; inverse
        pop hl
ai_aff:
        ld d, a                 ; rotating copy
        ld e, a                 ; accumulator
        rlc d
        ld a, d
        xor e
        ld e, a
        rlc d
        ld a, d
        xor e
        ld e, a
        rlc d
        ld a, d
        xor e
        ld e, a
        rlc d
        ld a, d
        xor e
        xor 63h
        ld (hl), a
        inc hl
        inc c
        djnz ai_sb
        ret

; ---------------------------------------------------------------------------
; aes_set_key: expand key_buf -> rk_t (11 round keys)
; ---------------------------------------------------------------------------
aes_set_key:
        ld hl, key_buf
        ld de, rk_t
        ld bc, 16
        ldir
        ld ix, rk_t+16
        ld a, 1
        ld (rcon_v), a
        ld b, 10
ks_round:
        push bc
        ; first word of the group: Rot+Sub+Rcon
        ld h, hi(sbox_t)
        ld a, (ix-3)
        ld l, a
        ld c, (hl)              ; c = sbox[b1]
        ld a, (rcon_v)
        xor c
        xor (ix-16)
        ld (ix+0), a
        ld a, (ix-2)
        ld l, a
        ld a, (hl)
        xor (ix-15)
        ld (ix+1), a
        ld a, (ix-1)
        ld l, a
        ld a, (hl)
        xor (ix-14)
        ld (ix+2), a
        ld a, (ix-4)
        ld l, a
        ld a, (hl)
        xor (ix-13)
        ld (ix+3), a
        ; rcon = xtime(rcon)
        ld a, (rcon_v)
        add a, a
        jr nc, ks1
        xor 1bh
ks1:
        ld (rcon_v), a
        ; three plain words, byte-wise: w[i] = w[i-1] ^ w[i-4]
        ld de, 4
        add ix, de
        ld b, 12
ks_plain:
        ld a, (ix-4)
        xor (ix-16)
        ld (ix+0), a
        inc ix
        djnz ks_plain
        pop bc
        djnz ks_round
        ret

; ---------------------------------------------------------------------------
; sub_shift: tmp = ShiftRows(SubBytes(st)), fully unrolled
; ---------------------------------------------------------------------------
sub_shift:
        ld h, hi(sbox_t)
        ld a, (st_t+0)
        ld l, a
        ld a, (hl)
        ld (tmp_t+0), a
        ld a, (st_t+5)
        ld l, a
        ld a, (hl)
        ld (tmp_t+1), a
        ld a, (st_t+10)
        ld l, a
        ld a, (hl)
        ld (tmp_t+2), a
        ld a, (st_t+15)
        ld l, a
        ld a, (hl)
        ld (tmp_t+3), a
        ld a, (st_t+4)
        ld l, a
        ld a, (hl)
        ld (tmp_t+4), a
        ld a, (st_t+9)
        ld l, a
        ld a, (hl)
        ld (tmp_t+5), a
        ld a, (st_t+14)
        ld l, a
        ld a, (hl)
        ld (tmp_t+6), a
        ld a, (st_t+3)
        ld l, a
        ld a, (hl)
        ld (tmp_t+7), a
        ld a, (st_t+8)
        ld l, a
        ld a, (hl)
        ld (tmp_t+8), a
        ld a, (st_t+13)
        ld l, a
        ld a, (hl)
        ld (tmp_t+9), a
        ld a, (st_t+2)
        ld l, a
        ld a, (hl)
        ld (tmp_t+10), a
        ld a, (st_t+7)
        ld l, a
        ld a, (hl)
        ld (tmp_t+11), a
        ld a, (st_t+12)
        ld l, a
        ld a, (hl)
        ld (tmp_t+12), a
        ld a, (st_t+1)
        ld l, a
        ld a, (hl)
        ld (tmp_t+13), a
        ld a, (st_t+6)
        ld l, a
        ld a, (hl)
        ld (tmp_t+14), a
        ld a, (st_t+11)
        ld l, a
        ld a, (hl)
        ld (tmp_t+15), a
        ret

; ---------------------------------------------------------------------------
; mix_columns: st = MixColumns(tmp), registers per column, no temporaries
; (uses a0^t = a1^a2^a3 with t = a0^a1^a2^a3)
; ---------------------------------------------------------------------------
mix_columns:
        ld h, hi(xt_t)
        ; ---- column 0: B,C,D,E = a0..a3
        ld a, (tmp_t+0)
        ld b, a
        ld a, (tmp_t+1)
        ld c, a
        ld a, (tmp_t+2)
        ld d, a
        ld a, (tmp_t+3)
        ld e, a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor c
        xor d
        xor e
        ld (st_t+0), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor b
        xor d
        xor e
        ld (st_t+1), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor e
        ld (st_t+2), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor d
        ld (st_t+3), a
        ; ---- column 1
        ld a, (tmp_t+4)
        ld b, a
        ld a, (tmp_t+5)
        ld c, a
        ld a, (tmp_t+6)
        ld d, a
        ld a, (tmp_t+7)
        ld e, a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor c
        xor d
        xor e
        ld (st_t+4), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor b
        xor d
        xor e
        ld (st_t+5), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor e
        ld (st_t+6), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor d
        ld (st_t+7), a
        ; ---- column 2
        ld a, (tmp_t+8)
        ld b, a
        ld a, (tmp_t+9)
        ld c, a
        ld a, (tmp_t+10)
        ld d, a
        ld a, (tmp_t+11)
        ld e, a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor c
        xor d
        xor e
        ld (st_t+8), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor b
        xor d
        xor e
        ld (st_t+9), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor e
        ld (st_t+10), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor d
        ld (st_t+11), a
        ; ---- column 3
        ld a, (tmp_t+12)
        ld b, a
        ld a, (tmp_t+13)
        ld c, a
        ld a, (tmp_t+14)
        ld d, a
        ld a, (tmp_t+15)
        ld e, a
        ld a, b
        xor c
        ld l, a
        ld a, (hl)
        xor c
        xor d
        xor e
        ld (st_t+12), a
        ld a, c
        xor d
        ld l, a
        ld a, (hl)
        xor b
        xor d
        xor e
        ld (st_t+13), a
        ld a, d
        xor e
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor e
        ld (st_t+14), a
        ld a, e
        xor b
        ld l, a
        ld a, (hl)
        xor b
        xor c
        xor d
        ld (st_t+15), a
        ret

; ---------------------------------------------------------------------------
; add_round_key: st ^= (iy..iy+15); advances IY to the next round key
; ---------------------------------------------------------------------------
add_round_key:
        ld hl, st_t
        ld b, 16
ark_loop:
        ld a, (iy+0)
        xor (hl)
        ld (hl), a
        inc hl
        inc iy
        djnz ark_loop
        ret

; ---------------------------------------------------------------------------
; aes_encrypt: out_buf = Encrypt(in_buf) under the expanded key
; ---------------------------------------------------------------------------
aes_encrypt:
        ld hl, in_buf
        ld de, st_t
        ld bc, 16
        ldir
        ld iy, rk_t
        call add_round_key      ; round 0
        ld a, 9
        ld (round_v), a
enc_round:
        call sub_shift
        call mix_columns
        call add_round_key
        ld a, (round_v)
        dec a
        ld (round_v), a
        jr nz, enc_round
        ; final round: no MixColumns
        call sub_shift
        ld hl, tmp_t
        ld de, st_t
        ld bc, 16
        ldir
        call add_round_key
        ld hl, st_t
        ld de, out_buf
        ld bc, 16
        ldir
        ret
