#include "dcc/codegen.h"

#include <algorithm>
#include <map>
#include <set>

#include "dcc/parser.h"
#include "rasm/assembler.h"

namespace rmc::dcc {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

// ---------------------------------------------------------------------------
// Constant folding (shares semantics with the interpreter: unsigned 16-bit)
// ---------------------------------------------------------------------------

bool fold_expr(ExprPtr& e);

bool fold_binary(Expr& e) {
  const u16 a = e.lhs->number, b = e.rhs->number;
  u16 v = 0;
  switch (e.bin_op) {
    case BinOp::kAdd: v = static_cast<u16>(a + b); break;
    case BinOp::kSub: v = static_cast<u16>(a - b); break;
    case BinOp::kMul: v = static_cast<u16>(a * b); break;
    case BinOp::kDiv:
      if (b == 0) return false;  // preserve the runtime's div-by-zero path
      v = static_cast<u16>(a / b);
      break;
    case BinOp::kMod:
      if (b == 0) return false;
      v = static_cast<u16>(a % b);
      break;
    case BinOp::kAnd: v = static_cast<u16>(a & b); break;
    case BinOp::kOr: v = static_cast<u16>(a | b); break;
    case BinOp::kXor: v = static_cast<u16>(a ^ b); break;
    case BinOp::kShl: v = static_cast<u16>(b >= 16 ? 0 : a << b); break;
    case BinOp::kShr: v = static_cast<u16>(b >= 16 ? 0 : a >> b); break;
    case BinOp::kLt: v = static_cast<u16>(a < b); break;
    case BinOp::kLe: v = static_cast<u16>(a <= b); break;
    case BinOp::kGt: v = static_cast<u16>(a > b); break;
    case BinOp::kGe: v = static_cast<u16>(a >= b); break;
    case BinOp::kEq: v = static_cast<u16>(a == b); break;
    case BinOp::kNe: v = static_cast<u16>(a != b); break;
    case BinOp::kLogAnd: v = static_cast<u16>(a && b); break;
    case BinOp::kLogOr: v = static_cast<u16>(a || b); break;
  }
  e.kind = ExprKind::kNumber;
  e.number = v;
  e.lhs.reset();
  e.rhs.reset();
  return true;
}

bool fold_expr(ExprPtr& e) {
  if (!e) return false;
  bool changed = false;
  switch (e->kind) {
    case ExprKind::kNumber:
    case ExprKind::kVar:
      return false;
    case ExprKind::kIndex:
      return fold_expr(e->lhs);
    case ExprKind::kCall:
      for (auto& a : e->args) changed |= fold_expr(a);
      return changed;
    case ExprKind::kAssign:
      changed |= fold_expr(e->lhs->lhs);  // index expression, if any
      changed |= fold_expr(e->rhs);
      return changed;
    case ExprKind::kUnary:
      changed |= fold_expr(e->lhs);
      if (e->lhs->kind == ExprKind::kNumber) {
        const u16 v = e->lhs->number;
        u16 r = 0;
        switch (e->unary_op) {
          case '-': r = static_cast<u16>(-v); break;
          case '~': r = static_cast<u16>(~v); break;
          case '!': r = static_cast<u16>(v == 0 ? 1 : 0); break;
        }
        e->kind = ExprKind::kNumber;
        e->number = r;
        e->lhs.reset();
        return true;
      }
      return changed;
    case ExprKind::kBinary:
      changed |= fold_expr(e->lhs);
      changed |= fold_expr(e->rhs);
      if (e->lhs->kind == ExprKind::kNumber &&
          e->rhs->kind == ExprKind::kNumber) {
        changed |= fold_binary(*e);
      }
      return changed;
  }
  return changed;
}

void fold_stmt(Stmt& s) {
  fold_expr(s.expr);
  fold_expr(s.init);
  fold_expr(s.step);
  if (s.then_branch) fold_stmt(*s.then_branch);
  if (s.else_branch) fold_stmt(*s.else_branch);
  if (s.body) fold_stmt(*s.body);
  for (auto& inner : s.stmts) fold_stmt(*inner);
}

// ---------------------------------------------------------------------------
// Unroll analysis
// ---------------------------------------------------------------------------

// Does this subtree assign to `name` (directly or via any call — calls are
// treated as opaque and conservatively block unrolling)?
bool may_modify(const Expr* e, const std::string& name) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kNumber:
    case ExprKind::kVar:
      return false;
    case ExprKind::kIndex:
      return may_modify(e->lhs.get(), name);
    case ExprKind::kCall:
      return true;  // conservative
    case ExprKind::kUnary:
      return may_modify(e->lhs.get(), name);
    case ExprKind::kBinary:
      return may_modify(e->lhs.get(), name) || may_modify(e->rhs.get(), name);
    case ExprKind::kAssign:
      if (e->lhs->kind == ExprKind::kVar && e->lhs->name == name) return true;
      return may_modify(e->lhs->lhs.get(), name) ||
             may_modify(e->rhs.get(), name);
  }
  return true;
}

bool may_modify(const Stmt* s, const std::string& name) {
  if (s == nullptr) return false;
  if (may_modify(s->expr.get(), name) || may_modify(s->init.get(), name) ||
      may_modify(s->step.get(), name)) {
    return true;
  }
  if (may_modify(s->then_branch.get(), name)) return true;
  if (may_modify(s->else_branch.get(), name)) return true;
  if (may_modify(s->body.get(), name)) return true;
  for (const auto& inner : s->stmts) {
    if (may_modify(inner.get(), name)) return true;
  }
  return false;
}

struct UnrollPlan {
  bool viable = false;
  std::string var;
  u16 start = 0;
  u16 limit = 0;  // exclusive
};

// Does the subtree contain a break/continue that would bind to THIS loop
// (i.e. not nested inside a deeper loop)? Such loops cannot be unrolled.
bool has_loose_break(const Stmt* s) {
  if (s == nullptr) return false;
  switch (s->kind) {
    case StmtKind::kBreak:
    case StmtKind::kContinue:
      return true;
    case StmtKind::kWhile:
    case StmtKind::kFor:
      return false;  // inner loop captures its own break/continue
    case StmtKind::kIf:
      return has_loose_break(s->then_branch.get()) ||
             has_loose_break(s->else_branch.get());
    case StmtKind::kBlock:
      for (const auto& inner : s->stmts) {
        if (has_loose_break(inner.get())) return true;
      }
      return false;
    default:
      return false;
  }
}

// Rough AST size of a statement/expression, used to gate unrolling so a big
// loop body (e.g. a whole cipher round) never gets replicated into more code
// than the 24 KiB root region can hold.
std::size_t weight(const Expr* e) {
  if (e == nullptr) return 0;
  std::size_t w = 1 + weight(e->lhs.get()) + weight(e->rhs.get());
  for (const auto& a : e->args) w += weight(a.get());
  return w;
}

std::size_t weight(const Stmt* s) {
  if (s == nullptr) return 0;
  std::size_t w = 1 + weight(s->expr.get()) + weight(s->init.get()) +
                  weight(s->step.get()) + weight(s->then_branch.get()) +
                  weight(s->else_branch.get()) + weight(s->body.get());
  for (const auto& inner : s->stmts) w += weight(inner.get());
  return w;
}

// Matches: for (i = C0; i < C1; i = i + 1) body, with body not touching i
// and trip count in (0, 32].
UnrollPlan analyze_unroll(const Stmt& s) {
  UnrollPlan plan;
  if (s.kind != StmtKind::kFor || !s.init || !s.expr || !s.step || !s.body) {
    return plan;
  }
  const Expr& init = *s.init;
  if (init.kind != ExprKind::kAssign || init.lhs->kind != ExprKind::kVar ||
      init.rhs->kind != ExprKind::kNumber) {
    return plan;
  }
  const std::string& var = init.lhs->name;
  const Expr& cond = *s.expr;
  if (cond.kind != ExprKind::kBinary || cond.bin_op != BinOp::kLt ||
      cond.lhs->kind != ExprKind::kVar || cond.lhs->name != var ||
      cond.rhs->kind != ExprKind::kNumber) {
    return plan;
  }
  const Expr& step = *s.step;
  if (step.kind != ExprKind::kAssign || step.lhs->kind != ExprKind::kVar ||
      step.lhs->name != var || step.rhs->kind != ExprKind::kBinary ||
      step.rhs->bin_op != BinOp::kAdd ||
      step.rhs->lhs->kind != ExprKind::kVar || step.rhs->lhs->name != var ||
      step.rhs->rhs->kind != ExprKind::kNumber ||
      step.rhs->rhs->number != 1) {
    return plan;
  }
  const u16 start = init.rhs->number;
  const u16 limit = cond.rhs->number;
  if (limit <= start || limit - start > 32) return plan;
  // Expansion budget: replicating the body must stay cheap in code bytes.
  if (static_cast<std::size_t>(limit - start) * weight(s.body.get()) > 400) {
    return plan;
  }
  if (may_modify(s.body.get(), var)) return plan;
  if (has_loose_break(s.body.get())) return plan;
  plan.viable = true;
  plan.var = var;
  plan.start = start;
  plan.limit = limit;
  return plan;
}

// ---------------------------------------------------------------------------
// Code generator
// ---------------------------------------------------------------------------

struct VarInfo {
  std::string label;
  Type type = Type::kInt;
  bool is_array = false;
  bool is_xmem = false;
  u16 array_len = 0;
};

class Codegen {
 public:
  Codegen(const Program& prog, const CodegenOptions& opts)
      : prog_(prog), opts_(opts) {}

  Result<CompileOutput> run() {
    // Collect globals.
    for (const auto& g : prog_.globals) {
      VarInfo info;
      info.label = "g_" + g.name;
      info.type = g.type;
      info.is_array = g.is_array;
      info.array_len = g.array_len;
      info.is_xmem = g.is_xmem && g.is_array && opts_.xmem_tables;
      if (globals_.count(g.name)) {
        return err(g.line, "duplicate global: " + g.name);
      }
      globals_.emplace(g.name, info);
    }

    emit("        org 0100h");
    // Runtime helpers first so short jumps inside them stay local.
    emit_runtime();
    for (const auto& fn : prog_.functions) {
      Status s = gen_function(fn);
      if (!s.is_ok()) return s;
    }
    // Function symbol map for the cycle profiler: every C function plus the
    // runtime helpers (so division/shift time is attributed to the runtime,
    // not smeared into whichever function called it last).
    std::string func_decl = "        func rt_udiv, rt_shl, rt_shr";
    for (const auto& fn : prog_.functions) {
      func_decl += ", f_" + fn.name;
    }
    emit(func_decl);
    emit_data_segment();
    Status sx = emit_xmem_segment();
    if (!sx.is_ok()) return sx;

    if (opts_.peephole) peephole();

    std::string text;
    for (const auto& line : lines_) {
      text += line;
      text += '\n';
    }

    auto assembled = rasm::assemble(text);
    if (!assembled.ok()) {
      return Status(assembled.status().code(),
                    "internal: generated assembly rejected: " +
                        assembled.status().message());
    }
    CompileOutput out;
    out.asm_text = std::move(text);
    out.image = std::move(assembled->image);
    out.debug_hook_count = debug_hooks_;
    for (const auto& chunk : out.image.chunks) {
      if (chunk.phys_addr < 0x6000) {
        out.code_bytes += chunk.bytes.size();
        // The root region ends at logical 0x6000; code flowing past it would
        // be fetched through the data-segment mapping and executed as
        // garbage.
        if (chunk.phys_addr + chunk.bytes.size() > 0x6000) {
          return Status(ErrorCode::kResourceExhausted,
                        "generated code overflows the 24 KiB root region");
        }
      } else if (chunk.phys_addr >= 0x90000) {
        out.xmem_bytes += chunk.bytes.size();
      } else {
        out.data_bytes += chunk.bytes.size();
      }
    }
    return out;
  }

 private:
  Status err(int line, const std::string& msg) const {
    return Status(ErrorCode::kInvalidArgument,
                  "line " + std::to_string(line) + ": " + msg);
  }

  void emit(std::string line) { lines_.push_back(std::move(line)); }
  void op(const std::string& text) { emit("        " + text); }
  void label(const std::string& name) { emit(name + ":"); }
  std::string new_label() { return "lbl_" + std::to_string(label_counter_++); }

  // ----- variable resolution ----------------------------------------------

  Result<VarInfo> resolve(const std::string& name, int line) const {
    auto lit = locals_.find(name);
    if (lit != locals_.end()) return lit->second;
    auto git = globals_.find(name);
    if (git != globals_.end()) return git->second;
    return err(line, "undefined variable: " + name);
  }

  // ----- expressions (result in HL) ---------------------------------------

  Status gen_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kNumber:
        op("ld hl, " + std::to_string(e.number));
        return Status::ok();
      case ExprKind::kVar: {
        auto v = resolve(e.name, e.line);
        if (!v.ok()) return v.status();
        if (v->is_array) return err(e.line, "array used as scalar: " + e.name);
        if (v->type == Type::kUchar) {
          op("ld a, (" + v->label + ")");
          op("ld l, a");
          op("ld h, 0");
        } else {
          op("ld hl, (" + v->label + ")");
        }
        return Status::ok();
      }
      case ExprKind::kIndex:
        return gen_load_element(e);
      case ExprKind::kUnary: {
        Status s = gen_expr(*e.lhs);
        if (!s.is_ok()) return s;
        switch (e.unary_op) {
          case '-':
            op("ld a, l");
            op("cpl");
            op("ld l, a");
            op("ld a, h");
            op("cpl");
            op("ld h, a");
            op("inc hl");
            break;
          case '~':
            op("ld a, l");
            op("cpl");
            op("ld l, a");
            op("ld a, h");
            op("cpl");
            op("ld h, a");
            break;
          case '!':
            op("bool hl");
            op("ld a, l");
            op("xor 1");
            op("ld l, a");
            break;
        }
        return Status::ok();
      }
      case ExprKind::kBinary:
        return gen_binary(e);
      case ExprKind::kAssign:
        return gen_assign(e);
      case ExprKind::kCall:
        return gen_call(e);
    }
    return err(e.line, "unreachable expression kind");
  }

  Status gen_binary(const Expr& e) {
    if (e.bin_op == BinOp::kLogAnd || e.bin_op == BinOp::kLogOr) {
      const std::string short_lbl = new_label();
      const std::string end_lbl = new_label();
      Status s = gen_expr(*e.lhs);
      if (!s.is_ok()) return s;
      op("bool hl");
      if (e.bin_op == BinOp::kLogAnd) {
        op("jp z, " + short_lbl);
      } else {
        op("jp nz, " + short_lbl);
      }
      s = gen_expr(*e.rhs);
      if (!s.is_ok()) return s;
      op("bool hl");
      op("jp " + end_lbl);
      label(short_lbl);
      op(e.bin_op == BinOp::kLogAnd ? "ld hl, 0" : "ld hl, 1");
      label(end_lbl);
      return Status::ok();
    }

    Status s = gen_expr(*e.lhs);
    if (!s.is_ok()) return s;
    op("push hl");
    s = gen_expr(*e.rhs);
    if (!s.is_ok()) return s;
    op("pop de");  // DE = lhs, HL = rhs
    switch (e.bin_op) {
      case BinOp::kAdd:
        op("add hl, de");
        break;
      case BinOp::kSub:
        op("ex de, hl");
        op("or a");
        op("sbc hl, de");
        break;
      case BinOp::kMul:
        op("ld b, d");
        op("ld c, e");
        op("ex de, hl");  // DE = rhs
        op("mul");        // HL:BC = BC*DE
        op("ld h, b");
        op("ld l, c");
        break;
      case BinOp::kDiv:
        op("ex de, hl");
        op("call rt_udiv");
        break;
      case BinOp::kMod:
        op("ex de, hl");
        op("call rt_udiv");
        op("ex de, hl");
        break;
      case BinOp::kAnd:
        op("ld a, h");
        op("and d");
        op("ld h, a");
        op("ld a, l");
        op("and e");
        op("ld l, a");
        break;
      case BinOp::kOr:
        op("ld a, h");
        op("or d");
        op("ld h, a");
        op("ld a, l");
        op("or e");
        op("ld l, a");
        break;
      case BinOp::kXor:
        op("ld a, h");
        op("xor d");
        op("ld h, a");
        op("ld a, l");
        op("xor e");
        op("ld l, a");
        break;
      case BinOp::kShl:
        op("ld a, l");    // count (rhs low byte; rhs >= 256 -> handled in rt)
        op("ex de, hl");  // HL = value
        op("call rt_shl");
        break;
      case BinOp::kShr:
        op("ld a, l");
        op("ex de, hl");
        op("call rt_shr");
        break;
      case BinOp::kEq:
        op("ex de, hl");
        op("or a");
        op("sbc hl, de");
        op("bool hl");
        op("ld a, l");
        op("xor 1");
        op("ld l, a");
        break;
      case BinOp::kNe:
        op("ex de, hl");
        op("or a");
        op("sbc hl, de");
        op("bool hl");
        break;
      case BinOp::kLt:  // lhs < rhs: compute lhs - rhs, carry => true
        op("ex de, hl");
        op("or a");
        op("sbc hl, de");
        op("ld hl, 0");
        op("adc hl, hl");
        break;
      case BinOp::kGt:  // lhs > rhs <=> rhs < lhs: rhs - lhs carries
        op("or a");
        op("sbc hl, de");
        op("ld hl, 0");
        op("adc hl, hl");
        break;
      case BinOp::kLe:  // !(lhs > rhs)
        op("or a");
        op("sbc hl, de");
        op("ld hl, 0");
        op("adc hl, hl");
        op("ld a, l");
        op("xor 1");
        op("ld l, a");
        break;
      case BinOp::kGe:  // !(lhs < rhs)
        op("ex de, hl");
        op("or a");
        op("sbc hl, de");
        op("ld hl, 0");
        op("adc hl, hl");
        op("ld a, l");
        op("xor 1");
        op("ld l, a");
        break;
      default:
        return err(e.line, "unhandled binary op");
    }
    return Status::ok();
  }

  // Load array element, result in HL.
  Status gen_load_element(const Expr& e) {
    auto v = resolve(e.name, e.line);
    if (!v.ok()) return v.status();
    if (!v->is_array) return err(e.line, "indexing non-array: " + e.name);
    Status s = gen_expr(*e.lhs);  // index in HL
    if (!s.is_ok()) return s;
    if (!v->is_xmem) {
      if (v->type == Type::kInt) op("add hl, hl");
      op("ld de, " + v->label);
      op("add hl, de");
      if (v->type == Type::kUchar) {
        op("ld a, (hl)");
        op("ld l, a");
        op("ld h, 0");
      } else {
        op("ld a, (hl)");
        op("inc hl");
        op("ld h, (hl)");
        op("ld l, a");
      }
      return Status::ok();
    }
    // xmem element load: bank-switch dance around the access.
    op("ld a, xpc");
    op("ld (t_xpc), a");
    op("ld a, xpcof(" + v->label + ")");
    op("ld xpc, a");
    if (v->type == Type::kInt) op("add hl, hl");
    op("ld de, winof(" + v->label + ")");
    op("add hl, de");
    if (v->type == Type::kUchar) {
      op("ld a, (hl)");
      op("ld l, a");
      op("ld h, 0");
    } else {
      op("ld a, (hl)");
      op("inc hl");
      op("ld h, (hl)");
      op("ld l, a");
    }
    op("ld a, (t_xpc)");
    op("ld xpc, a");
    return Status::ok();
  }

  Status gen_assign(const Expr& e) {
    const Expr& target = *e.lhs;
    auto v = resolve(target.name, e.line);
    if (!v.ok()) return v.status();

    if (target.kind == ExprKind::kVar) {
      if (v->is_array) return err(e.line, "assigning to array: " + target.name);
      Status s = gen_expr(*e.rhs);
      if (!s.is_ok()) return s;
      if (v->type == Type::kUchar) {
        op("ld a, l");
        op("ld (" + v->label + "), a");
        op("ld h, 0");
      } else {
        op("ld (" + v->label + "), hl");
      }
      return Status::ok();
    }

    // Element store.
    if (!v->is_array) return err(e.line, "indexing non-array: " + target.name);
    Status s = gen_expr(*target.lhs);  // index
    if (!s.is_ok()) return s;
    if (!v->is_xmem) {
      if (v->type == Type::kInt) op("add hl, hl");
      op("ld de, " + v->label);
      op("add hl, de");
      op("push hl");  // element address
      s = gen_expr(*e.rhs);
      if (!s.is_ok()) return s;
      op("pop de");
      if (v->type == Type::kUchar) {
        op("ld a, l");
        op("ld (de), a");
        op("ld h, 0");
      } else {
        op("ex de, hl");
        op("ld (hl), e");
        op("inc hl");
        op("ld (hl), d");
        op("ex de, hl");
      }
      return Status::ok();
    }
    // xmem element store: index is only an offset (the window address is
    // computed after the value, inside the switched bank).
    if (v->type == Type::kInt) op("add hl, hl");
    op("push hl");  // offset
    s = gen_expr(*e.rhs);
    if (!s.is_ok()) return s;
    op("pop de");  // DE = offset, HL = value
    op("ld a, xpc");
    op("ld (t_xpc), a");
    op("ld a, xpcof(" + v->label + ")");
    op("ld xpc, a");
    op("push hl");  // value
    op("ld hl, winof(" + v->label + ")");
    op("add hl, de");  // HL = window address
    op("pop de");      // DE = value
    if (v->type == Type::kUchar) {
      op("ld a, e");
      op("ld (hl), a");
      op("ld l, e");
      op("ld h, 0");
    } else {
      op("ld (hl), e");
      op("inc hl");
      op("ld (hl), d");
      op("ex de, hl");
    }
    op("ld a, (t_xpc)");
    op("ld xpc, a");
    return Status::ok();
  }

  Status gen_call(const Expr& e) {
    // Builtin port I/O — MiniDynC's RdPortI/WrPortI (the Dynamic C calls
    // the paper's §5.1 interrupt setup uses). The port number must be a
    // literal (matching the IN A,(n)/OUT (n),A encodings).
    if (e.name == "rdport" || e.name == "wrport") {
      const bool is_write = e.name == "wrport";
      const std::size_t want_args = is_write ? 2u : 1u;
      if (e.args.size() != want_args) {
        return err(e.line, e.name + " takes " + std::to_string(want_args) +
                               " argument(s)");
      }
      if (e.args[0]->kind != ExprKind::kNumber) {
        return err(e.line, e.name + " port must be a literal constant");
      }
      const u16 port = e.args[0]->number;
      if (port > 0xFF) return err(e.line, "port out of range");
      if (is_write) {
        Status s = gen_expr(*e.args[1]);
        if (!s.is_ok()) return s;
        op("ld a, l");
        op("out (" + std::to_string(port) + "), a");
        op("ld h, 0");
      } else {
        op("in a, (" + std::to_string(port) + ")");
        op("ld l, a");
        op("ld h, 0");
      }
      return Status::ok();
    }

    const Function* fn = prog_.find_function(e.name);
    if (fn == nullptr) return err(e.line, "undefined function: " + e.name);
    if (fn->params.size() != e.args.size()) {
      return err(e.line, "argument count mismatch calling " + e.name);
    }
    for (const auto& arg : e.args) {
      Status s = gen_expr(*arg);
      if (!s.is_ok()) return s;
      op("push hl");
    }
    for (std::size_t i = e.args.size(); i-- > 0;) {
      op("pop hl");
      op("ld (l_" + fn->name + "_" + fn->params[i] + "), hl");
    }
    op("call f_" + fn->name);
    return Status::ok();
  }

  // ----- statements ---------------------------------------------------------

  void debug_hook() {
    if (opts_.debug_hooks) {
      op("rst 28h");
      ++debug_hooks_;
    }
  }

  Status gen_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kEmpty:
        return Status::ok();
      case StmtKind::kBreak:
        if (loop_stack_.empty()) {
          return err(s.line, "break outside a loop");
        }
        debug_hook();
        op("jp " + loop_stack_.back().break_label);
        return Status::ok();
      case StmtKind::kContinue:
        if (loop_stack_.empty()) {
          return err(s.line, "continue outside a loop");
        }
        debug_hook();
        op("jp " + loop_stack_.back().continue_label);
        return Status::ok();
      case StmtKind::kExpr:
        debug_hook();
        return gen_expr(*s.expr);
      case StmtKind::kReturn: {
        debug_hook();
        if (s.expr) {
          Status st = gen_expr(*s.expr);
          if (!st.is_ok()) return st;
        } else {
          op("ld hl, 0");
        }
        op("ret");
        return Status::ok();
      }
      case StmtKind::kBlock:
        for (const auto& inner : s.stmts) {
          Status st = gen_stmt(*inner);
          if (!st.is_ok()) return st;
        }
        return Status::ok();
      case StmtKind::kIf: {
        debug_hook();
        Status st = gen_expr(*s.expr);
        if (!st.is_ok()) return st;
        const std::string else_lbl = new_label();
        op("ld a, h");
        op("or l");
        op("jp z, " + else_lbl);
        st = gen_stmt(*s.then_branch);
        if (!st.is_ok()) return st;
        if (s.else_branch) {
          const std::string end_lbl = new_label();
          op("jp " + end_lbl);
          label(else_lbl);
          st = gen_stmt(*s.else_branch);
          if (!st.is_ok()) return st;
          label(end_lbl);
        } else {
          label(else_lbl);
        }
        return Status::ok();
      }
      case StmtKind::kWhile: {
        const std::string cond_lbl = new_label();
        const std::string end_lbl = new_label();
        label(cond_lbl);
        debug_hook();
        Status st = gen_expr(*s.expr);
        if (!st.is_ok()) return st;
        op("ld a, h");
        op("or l");
        op("jp z, " + end_lbl);
        loop_stack_.push_back({end_lbl, cond_lbl});
        st = gen_stmt(*s.body);
        loop_stack_.pop_back();
        if (!st.is_ok()) return st;
        op("jp " + cond_lbl);
        label(end_lbl);
        return Status::ok();
      }
      case StmtKind::kFor: {
        if (opts_.unroll_loops) {
          const UnrollPlan plan = analyze_unroll(s);
          if (plan.viable) return gen_unrolled_for(s, plan);
        }
        debug_hook();
        if (s.init) {
          Status st = gen_expr(*s.init);
          if (!st.is_ok()) return st;
        }
        const std::string cond_lbl = new_label();
        const std::string step_lbl = new_label();
        const std::string end_lbl = new_label();
        label(cond_lbl);
        if (s.expr) {
          debug_hook();
          Status st = gen_expr(*s.expr);
          if (!st.is_ok()) return st;
          op("ld a, h");
          op("or l");
          op("jp z, " + end_lbl);
        }
        loop_stack_.push_back({end_lbl, step_lbl});  // continue -> step
        Status st = gen_stmt(*s.body);
        loop_stack_.pop_back();
        if (!st.is_ok()) return st;
        label(step_lbl);
        if (s.step) {
          Status st2 = gen_expr(*s.step);
          if (!st2.is_ok()) return st2;
        }
        op("jp " + cond_lbl);
        label(end_lbl);
        return Status::ok();
      }
    }
    return err(s.line, "unreachable statement kind");
  }

  // Fully unrolled counted loop: init once, then (body; step) per iteration
  // with no compare/branch overhead. The induction variable is still stored
  // through its static slot so observable state matches the rolled loop.
  Status gen_unrolled_for(const Stmt& s, const UnrollPlan& plan) {
    debug_hook();
    Status st = gen_expr(*s.init);
    if (!st.is_ok()) return st;
    for (u16 k = plan.start; k < plan.limit; ++k) {
      st = gen_stmt(*s.body);
      if (!st.is_ok()) return st;
      st = gen_expr(*s.step);
      if (!st.is_ok()) return st;
    }
    return Status::ok();
  }

  // ----- functions / segments ----------------------------------------------

  Status gen_function(const Function& fn) {
    locals_.clear();
    for (const auto& p : fn.params) {
      VarInfo info;
      info.label = "l_" + fn.name + "_" + p;
      info.type = Type::kInt;
      locals_.emplace(p, info);
      data_decls_.emplace_back(info.label, 2, std::vector<u16>{});
    }
    for (const auto& l : fn.locals) {
      if (locals_.count(l.name)) {
        return err(l.line, "duplicate local: " + l.name);
      }
      VarInfo info;
      info.label = "l_" + fn.name + "_" + l.name;
      info.type = l.type;
      info.is_array = l.is_array;
      info.array_len = l.array_len;
      locals_.emplace(l.name, info);
      const std::size_t elem = (l.type == Type::kUchar) ? 1 : 2;
      const std::size_t count = l.is_array ? l.array_len : 1;
      data_decls_.emplace_back(info.label, elem * count, std::vector<u16>{});
    }
    emit("");
    label("f_" + fn.name);
    for (const auto& stmt : fn.body) {
      Status s = gen_stmt(*stmt);
      if (!s.is_ok()) return s;
    }
    op("ld hl, 0");
    op("ret");
    return Status::ok();
  }

  void emit_runtime() {
    // rt_udiv: HL = HL / DE (unsigned), remainder in DE. Division by zero
    // yields 0/0 (the interpreter treats it as an error; programs that hit
    // this path are outside the language contract).
    label("rt_udiv");
    op("ld a, d");
    op("or e");
    op("jp nz, rt_udiv_go");
    op("ld hl, 0");
    op("ld d, h");
    op("ld e, l");
    op("ret");
    label("rt_udiv_go");
    op("ld b, 0");
    op("ld c, 0");
    op("ld a, 16");
    label("rt_udiv_loop");
    op("add hl, hl");
    op("rl c");
    op("rl b");
    op("push hl");
    op("ld h, b");
    op("ld l, c");
    op("or a");
    op("sbc hl, de");
    op("jr c, rt_udiv_nosub");
    op("ld b, h");
    op("ld c, l");
    op("pop hl");
    op("inc hl");
    op("jr rt_udiv_cont");
    label("rt_udiv_nosub");
    op("pop hl");
    label("rt_udiv_cont");
    op("dec a");
    op("jr nz, rt_udiv_loop");
    op("ld d, b");
    op("ld e, c");
    op("ret");

    // rt_shl / rt_shr: HL shifted by A bits (A >= 16 -> 0).
    label("rt_shl");
    op("or a");
    op("ret z");
    op("cp 16");
    op("jr c, rt_shl_go");
    op("ld hl, 0");
    op("ret");
    label("rt_shl_go");
    op("add hl, hl");
    op("dec a");
    op("jr nz, rt_shl_go");
    op("ret");

    label("rt_shr");
    op("or a");
    op("ret z");
    op("cp 16");
    op("jr c, rt_shr_go");
    op("ld hl, 0");
    op("ret");
    label("rt_shr_go");
    op("srl h");
    op("rr l");
    op("dec a");
    op("jr nz, rt_shr_go");
    op("ret");
  }

  void emit_data_segment() {
    emit("");
    emit("        org 6000h");
    label("t_xpc");
    op("ds 1");
    for (const auto& g : prog_.globals) {
      const auto& info = globals_.at(g.name);
      if (info.is_xmem) continue;
      emit_var_storage(info.label, g);
    }
    for (const auto& [lbl, size, init] : data_decls_) {
      (void)init;
      label(lbl);
      op("ds " + std::to_string(size));
    }
  }

  Status emit_xmem_segment() {
    bool any = false;
    for (const auto& g : prog_.globals) {
      if (globals_.at(g.name).is_xmem) any = true;
    }
    if (!any) return Status::ok();
    emit("");
    emit("        xorg 98000h");  // extended SRAM, writable, behind XPC
    std::size_t used = 0;
    for (const auto& g : prog_.globals) {
      const auto& info = globals_.at(g.name);
      if (!info.is_xmem) continue;
      const std::size_t bytes =
          (g.type == Type::kUchar ? 1u : 2u) * g.array_len;
      // Keep each array inside one window mapping (see rasm's winof).
      if (used + bytes > 0x1000) {
        return err(g.line, "xmem data exceeds the single-bank budget");
      }
      used += bytes;
      emit_var_storage(info.label, g);
    }
    return Status::ok();
  }

  void emit_var_storage(const std::string& lbl, const VarDecl& g) {
    label(lbl);
    const std::size_t count = g.is_array ? g.array_len : 1;
    if (!g.has_init) {
      op("ds " + std::to_string((g.type == Type::kUchar ? 1 : 2) * count));
      return;
    }
    std::string dir = (g.type == Type::kUchar) ? "db " : "dw ";
    std::string line;
    for (std::size_t i = 0; i < count; ++i) {
      const u16 v = i < g.init.size() ? g.init[i] : 0;
      if (!line.empty()) line += ", ";
      line += std::to_string(g.type == Type::kUchar ? (v & 0xFF) : v);
      if (line.size() > 60 || i + 1 == count) {
        op(dir + line);
        line.clear();
      }
    }
  }

  // ----- peephole ------------------------------------------------------------

  static std::string_view trimmed(const std::string& s) {
    std::string_view v = s;
    while (!v.empty() && (v.front() == ' ' || v.front() == '\t'))
      v.remove_prefix(1);
    return v;
  }

  void peephole() {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<std::string> out;
      out.reserve(lines_.size());
      for (std::size_t i = 0; i < lines_.size(); ++i) {
        const std::string_view cur = trimmed(lines_[i]);
        const std::string_view next =
            i + 1 < lines_.size() ? trimmed(lines_[i + 1]) : std::string_view();

        // push hl / pop de -> register copy (17 -> 4 cycles).
        if (cur == "push hl" && next == "pop de") {
          out.push_back("        ld d, h");
          out.push_back("        ld e, l");
          ++i;
          changed = true;
          continue;
        }
        // push hl / <reload hl> / pop de -> ex de, hl / <reload hl>.
        // The reload forms are the two scalar-operand loads the generator
        // emits; neither touches DE or the stack.
        if (cur == "push hl" && next.rfind("ld hl, ", 0) == 0 &&
            i + 2 < lines_.size() && trimmed(lines_[i + 2]) == "pop de") {
          out.push_back("        ex de, hl");
          out.push_back(lines_[i + 1]);
          i += 2;
          changed = true;
          continue;
        }
        if (cur == "push hl" && next.rfind("ld a, (", 0) == 0 &&
            i + 4 < lines_.size() && trimmed(lines_[i + 2]) == "ld l, a" &&
            trimmed(lines_[i + 3]) == "ld h, 0" &&
            trimmed(lines_[i + 4]) == "pop de") {
          out.push_back("        ex de, hl");
          out.push_back(lines_[i + 1]);
          out.push_back(lines_[i + 2]);
          out.push_back(lines_[i + 3]);
          i += 4;
          changed = true;
          continue;
        }
        // ex de, hl / ex de, hl cancels.
        if (cur == "ex de, hl" && next == "ex de, hl") {
          ++i;
          changed = true;
          continue;
        }
        // ld (X), hl / ld hl, (X) -> drop the reload.
        if (cur.rfind("ld (", 0) == 0 && cur.size() > 8 &&
            cur.substr(cur.size() - 4) == ", hl" &&
            next.rfind("ld hl, (", 0) == 0) {
          const std::string_view store_target =
              cur.substr(4, cur.size() - 4 - 5);  // between "ld (" and "), hl"
          const std::string_view load_source =
              next.substr(8, next.size() - 8 - 1);  // between "(" and ")"
          if (store_target == load_source) {
            out.push_back(lines_[i]);
            ++i;
            changed = true;
            continue;
          }
        }
        // jp L directly followed by label L:.
        if (cur.rfind("jp ", 0) == 0 && !next.empty() && next.back() == ':' &&
            cur.substr(3) == next.substr(0, next.size() - 1)) {
          changed = true;
          continue;
        }
        out.push_back(lines_[i]);
      }
      lines_ = std::move(out);
    }
  }

  const Program& prog_;
  const CodegenOptions& opts_;
  std::vector<std::string> lines_;
  std::map<std::string, VarInfo> globals_;
  std::map<std::string, VarInfo> locals_;
  std::vector<std::tuple<std::string, std::size_t, std::vector<u16>>>
      data_decls_;
  struct LoopLabels {
    std::string break_label;
    std::string continue_label;
  };
  std::vector<LoopLabels> loop_stack_;
  int label_counter_ = 0;
  std::size_t debug_hooks_ = 0;
};

}  // namespace

Result<CompileOutput> compile(std::string_view source,
                              const CodegenOptions& options) {
  auto prog = parse(source);
  if (!prog.ok()) return prog.status();
  if (options.fold_constants) {
    for (auto& fn : prog->functions) {
      for (auto& stmt : fn.body) fold_stmt(*stmt);
    }
  }
  Codegen cg(*prog, options);
  return cg.run();
}

}  // namespace rmc::dcc
