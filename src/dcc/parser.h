// MiniDynC recursive-descent parser.
#pragma once

#include <string_view>

#include "common/status.h"
#include "dcc/lang.h"

namespace rmc::dcc {

/// Parse a whole translation unit. Errors carry "line N: ...".
common::Result<Program> parse(std::string_view source);

}  // namespace rmc::dcc
