// MiniDynC host interpreter — the reference semantics the compiler is
// differentially tested against: every compiled program must produce the
// same observable state (return value + globals) as the interpreter.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "dcc/lang.h"

namespace rmc::dcc {

class Interpreter {
 public:
  /// Binds globals (zero- or initializer-filled). The program must outlive
  /// the interpreter.
  static common::Result<Interpreter> create(const Program& program);

  /// Call a function by name with u16 arguments; returns its value
  /// (0 for void). Enforces a step budget to catch runaway loops.
  common::Result<u16> call(const std::string& name,
                           const std::vector<u16>& args,
                           common::u64 max_steps = 10'000'000);

  /// Read back a global scalar or array element (for differential tests).
  common::Result<u16> global(const std::string& name, u16 index = 0) const;
  /// Write a global (to set up test inputs).
  common::Status set_global(const std::string& name, u16 index, u16 value);

 private:
  Interpreter() = default;

  struct Storage {
    Type type = Type::kInt;
    bool is_array = false;
    std::vector<u16> values;  // uchar storage still held in u16, masked
  };

  struct Frame {
    std::map<std::string, Storage>* locals;  // static per-function storage
  };

  common::Result<u16> eval(const Expr& e);
  common::Status exec(const Stmt& s);
  common::Result<Storage*> lookup(const std::string& name);

  common::Status step_budget_check();
  common::Status rt_error(int line, const std::string& msg) const;

  const Program* program_ = nullptr;
  std::map<std::string, Storage> globals_;
  // Static local storage per function (Dynamic C semantics: locals persist
  // across calls).
  std::map<std::string, std::map<std::string, Storage>> function_statics_;
  std::vector<Frame> stack_;
  common::u64 steps_ = 0;
  common::u64 max_steps_ = 0;
  bool returning_ = false;
  bool breaking_ = false;
  bool continuing_ = false;
  u16 return_value_ = 0;
};

}  // namespace rmc::dcc
