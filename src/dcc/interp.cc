#include "dcc/interp.h"

namespace rmc::dcc {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {
u16 mask_for(Type t, u16 v) {
  return t == Type::kUchar ? static_cast<u16>(v & 0xFF) : v;
}
}  // namespace

Result<Interpreter> Interpreter::create(const Program& program) {
  Interpreter in;
  in.program_ = &program;
  for (const auto& g : program.globals) {
    Storage st;
    st.type = g.type;
    st.is_array = g.is_array;
    st.values.assign(g.is_array ? g.array_len : 1, 0);
    for (std::size_t i = 0; i < g.init.size() && i < st.values.size(); ++i) {
      st.values[i] = mask_for(g.type, g.init[i]);
    }
    if (in.globals_.count(g.name)) {
      return Status(ErrorCode::kAlreadyExists, "duplicate global: " + g.name);
    }
    in.globals_.emplace(g.name, std::move(st));
  }
  // Pre-create static storage for every function's params + locals.
  for (const auto& f : program.functions) {
    auto& statics = in.function_statics_[f.name];
    for (const auto& p : f.params) {
      Storage st;
      st.type = Type::kInt;
      st.values.assign(1, 0);
      statics.emplace(p, std::move(st));
    }
    for (const auto& l : f.locals) {
      Storage st;
      st.type = l.type;
      st.is_array = l.is_array;
      st.values.assign(l.is_array ? l.array_len : 1, 0);
      if (statics.count(l.name)) {
        return Status(ErrorCode::kAlreadyExists,
                      "duplicate local in " + f.name + ": " + l.name);
      }
      statics.emplace(l.name, std::move(st));
    }
  }
  return in;
}

Status Interpreter::rt_error(int line, const std::string& msg) const {
  return Status(ErrorCode::kInternal,
                "line " + std::to_string(line) + ": " + msg);
}

Status Interpreter::step_budget_check() {
  if (++steps_ > max_steps_) {
    return Status(ErrorCode::kTimeout, "interpreter step budget exhausted");
  }
  return Status::ok();
}

Result<Interpreter::Storage*> Interpreter::lookup(const std::string& name) {
  if (!stack_.empty()) {
    auto& locals = *stack_.back().locals;
    auto it = locals.find(name);
    if (it != locals.end()) return &it->second;
  }
  auto it = globals_.find(name);
  if (it != globals_.end()) return &it->second;
  return Status(ErrorCode::kNotFound, "undefined variable: " + name);
}

Result<u16> Interpreter::eval(const Expr& e) {
  if (Status s = step_budget_check(); !s.is_ok()) return s;
  switch (e.kind) {
    case ExprKind::kNumber:
      return e.number;
    case ExprKind::kVar: {
      auto st = lookup(e.name);
      if (!st.ok()) return st.status();
      if ((*st)->is_array) {
        return rt_error(e.line, "array used as scalar: " + e.name);
      }
      return (*st)->values[0];
    }
    case ExprKind::kIndex: {
      auto st = lookup(e.name);
      if (!st.ok()) return st.status();
      if (!(*st)->is_array) {
        return rt_error(e.line, "indexing non-array: " + e.name);
      }
      auto idx = eval(*e.lhs);
      if (!idx.ok()) return idx;
      if (*idx >= (*st)->values.size()) {
        return rt_error(e.line, "index out of bounds on " + e.name);
      }
      return (*st)->values[*idx];
    }
    case ExprKind::kUnary: {
      auto v = eval(*e.lhs);
      if (!v.ok()) return v;
      switch (e.unary_op) {
        case '-': return static_cast<u16>(-*v);
        case '~': return static_cast<u16>(~*v);
        case '!': return static_cast<u16>(*v == 0 ? 1 : 0);
        default: return rt_error(e.line, "bad unary op");
      }
    }
    case ExprKind::kBinary: {
      // Short-circuit forms first.
      if (e.bin_op == BinOp::kLogAnd || e.bin_op == BinOp::kLogOr) {
        auto lhs = eval(*e.lhs);
        if (!lhs.ok()) return lhs;
        const bool lhs_true = *lhs != 0;
        if (e.bin_op == BinOp::kLogAnd && !lhs_true) return u16{0};
        if (e.bin_op == BinOp::kLogOr && lhs_true) return u16{1};
        auto rhs = eval(*e.rhs);
        if (!rhs.ok()) return rhs;
        return static_cast<u16>(*rhs != 0 ? 1 : 0);
      }
      auto lhs = eval(*e.lhs);
      if (!lhs.ok()) return lhs;
      auto rhs = eval(*e.rhs);
      if (!rhs.ok()) return rhs;
      const u16 a = *lhs, b = *rhs;
      switch (e.bin_op) {
        case BinOp::kAdd: return static_cast<u16>(a + b);
        case BinOp::kSub: return static_cast<u16>(a - b);
        case BinOp::kMul: return static_cast<u16>(a * b);
        case BinOp::kDiv:
          if (b == 0) return rt_error(e.line, "division by zero");
          return static_cast<u16>(a / b);
        case BinOp::kMod:
          if (b == 0) return rt_error(e.line, "modulo by zero");
          return static_cast<u16>(a % b);
        case BinOp::kAnd: return static_cast<u16>(a & b);
        case BinOp::kOr: return static_cast<u16>(a | b);
        case BinOp::kXor: return static_cast<u16>(a ^ b);
        case BinOp::kShl: return static_cast<u16>(b >= 16 ? 0 : a << b);
        case BinOp::kShr: return static_cast<u16>(b >= 16 ? 0 : a >> b);
        case BinOp::kLt: return static_cast<u16>(a < b);
        case BinOp::kLe: return static_cast<u16>(a <= b);
        case BinOp::kGt: return static_cast<u16>(a > b);
        case BinOp::kGe: return static_cast<u16>(a >= b);
        case BinOp::kEq: return static_cast<u16>(a == b);
        case BinOp::kNe: return static_cast<u16>(a != b);
        default: return rt_error(e.line, "bad binary op");
      }
    }
    case ExprKind::kAssign: {
      auto value = eval(*e.rhs);
      if (!value.ok()) return value;
      const Expr& target = *e.lhs;
      auto st = lookup(target.name);
      if (!st.ok()) return st.status();
      if (target.kind == ExprKind::kVar) {
        if ((*st)->is_array) {
          return rt_error(e.line, "assigning to array: " + target.name);
        }
        (*st)->values[0] = mask_for((*st)->type, *value);
        return (*st)->values[0];
      }
      auto idx = eval(*target.lhs);
      if (!idx.ok()) return idx;
      if (!(*st)->is_array || *idx >= (*st)->values.size()) {
        return rt_error(e.line, "bad element assignment on " + target.name);
      }
      (*st)->values[*idx] = mask_for((*st)->type, *value);
      return (*st)->values[*idx];
    }
    case ExprKind::kCall: {
      if (e.name == "rdport" || e.name == "wrport") {
        return rt_error(e.line,
                        "port I/O is only meaningful on the board; the "
                        "interpreter has no I/O bus");
      }
      const Function* fn = program_->find_function(e.name);
      if (fn == nullptr) {
        return rt_error(e.line, "undefined function: " + e.name);
      }
      if (fn->params.size() != e.args.size()) {
        return rt_error(e.line, "argument count mismatch calling " + e.name);
      }
      // Evaluate args in the caller's frame, then write into the callee's
      // static parameter slots (matching the compiler's protocol).
      std::vector<u16> values;
      values.reserve(e.args.size());
      for (const auto& arg : e.args) {
        auto v = eval(*arg);
        if (!v.ok()) return v;
        values.push_back(*v);
      }
      auto& statics = function_statics_[fn->name];
      for (std::size_t i = 0; i < values.size(); ++i) {
        statics[fn->params[i]].values[0] = values[i];
      }
      stack_.push_back(Frame{&statics});
      returning_ = false;
      return_value_ = 0;
      Status s = Status::ok();
      for (const auto& stmt : fn->body) {
        s = exec(*stmt);
        if (!s.is_ok() || returning_ || breaking_ || continuing_) break;
      }
      stack_.pop_back();
      // break/continue must never leak across a call boundary.
      breaking_ = false;
      continuing_ = false;
      if (!s.is_ok()) return s;
      const u16 rv = returning_ ? return_value_ : 0;
      returning_ = false;
      return rv;
    }
  }
  return rt_error(e.line, "unreachable expression kind");
}

Status Interpreter::exec(const Stmt& s) {
  if (Status b = step_budget_check(); !b.is_ok()) return b;
  switch (s.kind) {
    case StmtKind::kEmpty:
      return Status::ok();
    case StmtKind::kBreak:
      breaking_ = true;
      return Status::ok();
    case StmtKind::kContinue:
      continuing_ = true;
      return Status::ok();
    case StmtKind::kExpr: {
      auto v = eval(*s.expr);
      return v.ok() ? Status::ok() : v.status();
    }
    case StmtKind::kReturn: {
      if (s.expr) {
        auto v = eval(*s.expr);
        if (!v.ok()) return v.status();
        return_value_ = *v;
      } else {
        return_value_ = 0;
      }
      returning_ = true;
      return Status::ok();
    }
    case StmtKind::kBlock:
      for (const auto& inner : s.stmts) {
        Status st = exec(*inner);
        if (!st.is_ok() || returning_ || breaking_ || continuing_) return st;
      }
      return Status::ok();
    case StmtKind::kIf: {
      auto cond = eval(*s.expr);
      if (!cond.ok()) return cond.status();
      if (*cond != 0) return exec(*s.then_branch);
      if (s.else_branch) return exec(*s.else_branch);
      return Status::ok();
    }
    case StmtKind::kWhile:
      while (true) {
        auto cond = eval(*s.expr);
        if (!cond.ok()) return cond.status();
        if (*cond == 0) return Status::ok();
        Status st = exec(*s.body);
        if (!st.is_ok() || returning_) return st;
        continuing_ = false;
        if (breaking_) {
          breaking_ = false;
          return Status::ok();
        }
      }
    case StmtKind::kFor: {
      if (s.init) {
        auto v = eval(*s.init);
        if (!v.ok()) return v.status();
      }
      while (true) {
        if (s.expr) {
          auto cond = eval(*s.expr);
          if (!cond.ok()) return cond.status();
          if (*cond == 0) return Status::ok();
        }
        Status st = exec(*s.body);
        if (!st.is_ok() || returning_) return st;
        continuing_ = false;  // continue still runs the step expression
        if (breaking_) {
          breaking_ = false;
          return Status::ok();
        }
        if (s.step) {
          auto v = eval(*s.step);
          if (!v.ok()) return v.status();
        }
      }
    }
  }
  return Status(ErrorCode::kInternal, "unreachable statement kind");
}

Result<u16> Interpreter::call(const std::string& name,
                              const std::vector<u16>& args,
                              common::u64 max_steps) {
  const Function* fn = program_->find_function(name);
  if (fn == nullptr) {
    return Status(ErrorCode::kNotFound, "no such function: " + name);
  }
  if (fn->params.size() != args.size()) {
    return Status(ErrorCode::kInvalidArgument, "argument count mismatch");
  }
  steps_ = 0;
  max_steps_ = max_steps;
  Expr call_expr;
  call_expr.kind = ExprKind::kCall;
  call_expr.name = name;
  for (u16 a : args) {
    auto lit = std::make_unique<Expr>();
    lit->kind = ExprKind::kNumber;
    lit->number = a;
    call_expr.args.push_back(std::move(lit));
  }
  return eval(call_expr);
}

Result<u16> Interpreter::global(const std::string& name, u16 index) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) {
    return Status(ErrorCode::kNotFound, "no such global: " + name);
  }
  if (index >= it->second.values.size()) {
    return Status(ErrorCode::kOutOfRange, "global index out of range");
  }
  return it->second.values[index];
}

Status Interpreter::set_global(const std::string& name, u16 index, u16 value) {
  auto it = globals_.find(name);
  if (it == globals_.end()) {
    return Status(ErrorCode::kNotFound, "no such global: " + name);
  }
  if (index >= it->second.values.size()) {
    return Status(ErrorCode::kOutOfRange, "global index out of range");
  }
  it->second.values[index] = mask_for(it->second.type, value);
  return Status::ok();
}

}  // namespace rmc::dcc
