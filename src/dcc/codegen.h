// MiniDynC -> Rabbit assembly code generator, plus the optimization knobs
// the paper's Section 6 sweeps:
//
//   debug_hooks     Dynamic C plants an RST 28h debugger hook before every
//                   statement; `false` reproduces "disabling debugging".
//   fold_constants  constant folding ("enabling compiler optimization").
//   peephole        assembly-level peephole pass (same knob).
//   unroll_loops    full unrolling of small counted loops ("unrolling
//                   loops").
//   xmem_tables     honor `xmem` array placement (Dynamic C keeps large
//                   constant tables in extended flash); `false` forces all
//                   arrays into root/data memory ("moving data to root").
//
// Code model (deliberately naive, mirroring a one-pass Dynamic-C-style
// compiler): every expression evaluates into HL through a stack-machine
// discipline (push/pop around binary operators); all locals, parameters,
// and temporaries are static memory slots; xmem array accesses save/switch/
// restore XPC around every element touch. This is what makes compiled code
// an order of magnitude slower than the register-resident hand assembly —
// the mechanism behind the paper's E1 result, not just its number.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "dcc/lang.h"
#include "rabbit/image.h"

namespace rmc::dcc {

struct CodegenOptions {
  bool debug_hooks = true;
  bool fold_constants = false;
  bool peephole = false;
  bool unroll_loops = false;
  bool xmem_tables = true;

  /// Convenience presets.
  static CodegenOptions debug_defaults() { return {}; }
  static CodegenOptions all_optimizations() {
    CodegenOptions o;
    o.debug_hooks = false;
    o.fold_constants = true;
    o.peephole = true;
    o.unroll_loops = true;
    o.xmem_tables = false;
    return o;
  }
};

struct CompileOutput {
  std::string asm_text;    // generated assembly (before assembling)
  rabbit::Image image;     // loadable image
  std::size_t code_bytes = 0;   // root code+const bytes (E3's size metric)
  std::size_t data_bytes = 0;   // data-segment footprint
  std::size_t xmem_bytes = 0;   // extended-memory footprint
  std::size_t debug_hook_count = 0;  // RST 28h sites emitted
};

/// Compile MiniDynC source all the way to a loadable image.
/// Symbol naming in the image: function `f` -> `f_f`, global `g` -> `g_g`
/// (assembler symbols are lower-cased; see mangle notes in codegen.cc).
common::Result<CompileOutput> compile(std::string_view source,
                                      const CodegenOptions& options = {});

}  // namespace rmc::dcc
