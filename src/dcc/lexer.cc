#include "dcc/lexer.h"

#include <cctype>
#include <map>

namespace rmc::dcc {

using common::ErrorCode;
using common::Result;
using common::Status;

Result<std::vector<Token>> lex(std::string_view src) {
  static const std::map<std::string, Tok, std::less<>> kKeywords = {
      {"int", Tok::kInt},     {"uchar", Tok::kUchar}, {"char", Tok::kUchar},
      {"void", Tok::kVoid},   {"if", Tok::kIf},       {"else", Tok::kElse},
      {"while", Tok::kWhile}, {"for", Tok::kFor},     {"return", Tok::kReturn},
      {"xmem", Tok::kXmem},   {"const", Tok::kConst},
      {"break", Tok::kBreak}, {"continue", Tok::kContinue},
  };

  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  auto error = [&](const std::string& msg) {
    return Status(ErrorCode::kInvalidArgument,
                  "line " + std::to_string(line) + ": " + msg);
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) return error("unterminated comment");
      i += 2;
      continue;
    }

    Token tok;
    tok.line = line;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_')) {
        ++i;
      }
      const std::string_view word = src.substr(start, i - start);
      auto kw = kKeywords.find(word);
      if (kw != kKeywords.end()) {
        tok.kind = kw->second;
      } else {
        tok.kind = Tok::kIdent;
        tok.text = std::string(word);
      }
      out.push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      unsigned value = 0;
      if (c == '0' && i + 1 < src.size() &&
          (src[i + 1] == 'x' || src[i + 1] == 'X')) {
        i += 2;
        bool any = false;
        while (i < src.size() &&
               std::isxdigit(static_cast<unsigned char>(src[i]))) {
          const char d = src[i];
          value = value * 16 +
                  (d <= '9' ? d - '0'
                            : (d | 0x20) - 'a' + 10);
          ++i;
          any = true;
        }
        if (!any) return error("malformed hex literal");
      } else {
        while (i < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[i]))) {
          value = value * 10 + (src[i] - '0');
          ++i;
        }
      }
      tok.kind = Tok::kNumber;
      tok.value = static_cast<u16>(value);
      out.push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      if (i + 2 >= src.size()) return error("unterminated char literal");
      char v = src[i + 1];
      std::size_t close = i + 2;
      if (v == '\\') {
        if (i + 3 >= src.size()) return error("unterminated char literal");
        switch (src[i + 2]) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case 'r': v = '\r'; break;
          case '0': v = '\0'; break;
          default: v = src[i + 2]; break;
        }
        close = i + 3;
      }
      if (close >= src.size() || src[close] != '\'') {
        return error("unterminated char literal");
      }
      tok.kind = Tok::kNumber;
      tok.value = static_cast<u8>(v);
      out.push_back(std::move(tok));
      i = close + 1;
      continue;
    }

    auto two = [&](char a, char b, Tok kind) -> bool {
      if (c == a && i + 1 < src.size() && src[i + 1] == b) {
        tok.kind = kind;
        out.push_back(tok);
        i += 2;
        return true;
      }
      return false;
    };
    if (two('<', '<', Tok::kShl) || two('>', '>', Tok::kShr) ||
        two('<', '=', Tok::kLe) || two('>', '=', Tok::kGe) ||
        two('=', '=', Tok::kEq) || two('!', '=', Tok::kNe) ||
        two('&', '&', Tok::kAndAnd) || two('|', '|', Tok::kOrOr)) {
      continue;
    }

    Tok kind;
    switch (c) {
      case '(': kind = Tok::kLParen; break;
      case ')': kind = Tok::kRParen; break;
      case '{': kind = Tok::kLBrace; break;
      case '}': kind = Tok::kRBrace; break;
      case '[': kind = Tok::kLBracket; break;
      case ']': kind = Tok::kRBracket; break;
      case ';': kind = Tok::kSemi; break;
      case ',': kind = Tok::kComma; break;
      case '=': kind = Tok::kAssign; break;
      case '+': kind = Tok::kPlus; break;
      case '-': kind = Tok::kMinus; break;
      case '*': kind = Tok::kStar; break;
      case '/': kind = Tok::kSlash; break;
      case '%': kind = Tok::kPercent; break;
      case '&': kind = Tok::kAmp; break;
      case '|': kind = Tok::kPipe; break;
      case '^': kind = Tok::kCaret; break;
      case '<': kind = Tok::kLt; break;
      case '>': kind = Tok::kGt; break;
      case '!': kind = Tok::kBang; break;
      case '~': kind = Tok::kTilde; break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
    tok.kind = kind;
    out.push_back(tok);
    ++i;
  }

  Token end;
  end.kind = Tok::kEnd;
  end.line = line;
  out.push_back(end);
  return out;
}

}  // namespace rmc::dcc
