#include "dcc/parser.h"

#include "dcc/lexer.h"

namespace rmc::dcc {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> parse_program() {
    Program prog;
    while (peek().kind != Tok::kEnd) {
      Status s = parse_top_level(prog);
      if (!s.is_ok()) return s;
    }
    return prog;
  }

 private:
  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool at(Tok k) const { return peek().kind == k; }
  bool accept(Tok k) {
    if (at(k)) {
      take();
      return true;
    }
    return false;
  }
  Status error(const std::string& msg) const {
    return Status(ErrorCode::kInvalidArgument,
                  "line " + std::to_string(peek().line) + ": " + msg);
  }
  Status expect(Tok k, const char* what) {
    if (accept(k)) return Status::ok();
    return error(std::string("expected ") + what);
  }

  // type-specifier := [xmem] [const] (int | uchar | void)
  struct TypeSpec {
    Type type = Type::kInt;
    bool is_xmem = false;
    bool is_const = false;
  };
  Result<TypeSpec> parse_type() {
    TypeSpec ts;
    while (true) {
      if (accept(Tok::kXmem)) {
        ts.is_xmem = true;
      } else if (accept(Tok::kConst)) {
        ts.is_const = true;
      } else {
        break;
      }
    }
    if (accept(Tok::kInt)) ts.type = Type::kInt;
    else if (accept(Tok::kUchar)) ts.type = Type::kUchar;
    else if (accept(Tok::kVoid)) ts.type = Type::kVoid;
    else return error("expected type");
    return ts;
  }

  Status parse_top_level(Program& prog) {
    auto ts = parse_type();
    if (!ts.ok()) return ts.status();
    if (!at(Tok::kIdent)) return error("expected identifier");
    Token name = take();

    if (at(Tok::kLParen)) {
      return parse_function(prog, ts->type, name);
    }
    // Global variable(s).
    if (ts->type == Type::kVoid) return error("void variable");
    while (true) {
      auto decl = parse_var_tail(ts->type, name, /*allow_init=*/true);
      if (!decl.ok()) return decl.status();
      decl->is_xmem = ts->is_xmem;
      decl->is_const = ts->is_const;
      prog.globals.push_back(std::move(*decl));
      if (accept(Tok::kComma)) {
        if (!at(Tok::kIdent)) return error("expected identifier");
        name = take();
        continue;
      }
      return expect(Tok::kSemi, "';'");
    }
  }

  // After "type name": optional [N], optional initializer.
  Result<VarDecl> parse_var_tail(Type type, const Token& name,
                                 bool allow_init) {
    VarDecl decl;
    decl.name = name.text;
    decl.type = type;
    decl.line = name.line;
    if (accept(Tok::kLBracket)) {
      if (!at(Tok::kNumber)) return error("array length must be a literal");
      decl.is_array = true;
      decl.array_len = take().value;
      if (decl.array_len == 0) return error("zero-length array");
      Status s = expect(Tok::kRBracket, "']'");
      if (!s.is_ok()) return s;
    }
    if (allow_init && accept(Tok::kAssign)) {
      decl.has_init = true;
      if (decl.is_array) {
        Status s = expect(Tok::kLBrace, "'{'");
        if (!s.is_ok()) return s;
        while (!at(Tok::kRBrace)) {
          if (!at(Tok::kNumber)) {
            return error("array initializers must be literals");
          }
          decl.init.push_back(take().value);
          if (!accept(Tok::kComma)) break;
        }
        Status s2 = expect(Tok::kRBrace, "'}'");
        if (!s2.is_ok()) return s2;
        if (decl.init.size() > decl.array_len) {
          return error("too many initializers");
        }
      } else {
        if (!at(Tok::kNumber)) {
          return error("scalar initializers must be literals");
        }
        decl.init.push_back(take().value);
      }
    }
    return decl;
  }

  Status parse_function(Program& prog, Type ret, const Token& name) {
    Function fn;
    fn.name = name.text;
    fn.return_type = ret;
    fn.line = name.line;
    Status s = expect(Tok::kLParen, "'('");
    if (!s.is_ok()) return s;
    if (!accept(Tok::kRParen)) {
      if (accept(Tok::kVoid)) {
        s = expect(Tok::kRParen, "')'");
        if (!s.is_ok()) return s;
      } else {
        while (true) {
          if (!accept(Tok::kInt)) return error("parameters must be int");
          if (!at(Tok::kIdent)) return error("expected parameter name");
          fn.params.push_back(take().text);
          if (accept(Tok::kComma)) continue;
          s = expect(Tok::kRParen, "')'");
          if (!s.is_ok()) return s;
          break;
        }
      }
    }
    s = expect(Tok::kLBrace, "'{'");
    if (!s.is_ok()) return s;

    // Local declarations first (C89 style), then statements.
    while (at(Tok::kInt) || at(Tok::kUchar)) {
      auto ts = parse_type();
      if (!ts.ok()) return ts.status();
      while (true) {
        if (!at(Tok::kIdent)) return error("expected identifier");
        Token lname = take();
        auto decl = parse_var_tail(ts->type, lname, /*allow_init=*/false);
        if (!decl.ok()) return decl.status();
        fn.locals.push_back(std::move(*decl));
        if (accept(Tok::kComma)) continue;
        s = expect(Tok::kSemi, "';'");
        if (!s.is_ok()) return s;
        break;
      }
    }
    while (!at(Tok::kRBrace)) {
      if (at(Tok::kEnd)) return error("unexpected end of file in function");
      auto stmt = parse_stmt();
      if (!stmt.ok()) return stmt.status();
      fn.body.push_back(std::move(*stmt));
    }
    take();  // '}'
    prog.functions.push_back(std::move(fn));
    return Status::ok();
  }

  Result<StmtPtr> parse_stmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;
    if (accept(Tok::kSemi)) {
      stmt->kind = StmtKind::kEmpty;
      return stmt;
    }
    if (accept(Tok::kLBrace)) {
      stmt->kind = StmtKind::kBlock;
      while (!at(Tok::kRBrace)) {
        if (at(Tok::kEnd)) return error("unexpected end of file in block");
        auto inner = parse_stmt();
        if (!inner.ok()) return inner.status();
        stmt->stmts.push_back(std::move(*inner));
      }
      take();
      return stmt;
    }
    if (accept(Tok::kIf)) {
      stmt->kind = StmtKind::kIf;
      Status s = expect(Tok::kLParen, "'('");
      if (!s.is_ok()) return s;
      auto cond = parse_expr();
      if (!cond.ok()) return cond.status();
      stmt->expr = std::move(*cond);
      s = expect(Tok::kRParen, "')'");
      if (!s.is_ok()) return s;
      auto then_branch = parse_stmt();
      if (!then_branch.ok()) return then_branch.status();
      stmt->then_branch = std::move(*then_branch);
      if (accept(Tok::kElse)) {
        auto else_branch = parse_stmt();
        if (!else_branch.ok()) return else_branch.status();
        stmt->else_branch = std::move(*else_branch);
      }
      return stmt;
    }
    if (accept(Tok::kWhile)) {
      stmt->kind = StmtKind::kWhile;
      Status s = expect(Tok::kLParen, "'('");
      if (!s.is_ok()) return s;
      auto cond = parse_expr();
      if (!cond.ok()) return cond.status();
      stmt->expr = std::move(*cond);
      s = expect(Tok::kRParen, "')'");
      if (!s.is_ok()) return s;
      auto body = parse_stmt();
      if (!body.ok()) return body.status();
      stmt->body = std::move(*body);
      return stmt;
    }
    if (accept(Tok::kFor)) {
      stmt->kind = StmtKind::kFor;
      Status s = expect(Tok::kLParen, "'('");
      if (!s.is_ok()) return s;
      if (!at(Tok::kSemi)) {
        auto init = parse_expr();
        if (!init.ok()) return init.status();
        stmt->init = std::move(*init);
      }
      s = expect(Tok::kSemi, "';'");
      if (!s.is_ok()) return s;
      if (!at(Tok::kSemi)) {
        auto cond = parse_expr();
        if (!cond.ok()) return cond.status();
        stmt->expr = std::move(*cond);
      }
      s = expect(Tok::kSemi, "';'");
      if (!s.is_ok()) return s;
      if (!at(Tok::kRParen)) {
        auto step = parse_expr();
        if (!step.ok()) return step.status();
        stmt->step = std::move(*step);
      }
      s = expect(Tok::kRParen, "')'");
      if (!s.is_ok()) return s;
      auto body = parse_stmt();
      if (!body.ok()) return body.status();
      stmt->body = std::move(*body);
      return stmt;
    }
    if (accept(Tok::kBreak)) {
      stmt->kind = StmtKind::kBreak;
      return expect(Tok::kSemi, "';'").is_ok()
                 ? common::Result<StmtPtr>(std::move(stmt))
                 : common::Result<StmtPtr>(error("expected ';' after break"));
    }
    if (accept(Tok::kContinue)) {
      stmt->kind = StmtKind::kContinue;
      return expect(Tok::kSemi, "';'").is_ok()
                 ? common::Result<StmtPtr>(std::move(stmt))
                 : common::Result<StmtPtr>(
                       error("expected ';' after continue"));
    }
    if (accept(Tok::kReturn)) {
      stmt->kind = StmtKind::kReturn;
      if (!at(Tok::kSemi)) {
        auto value = parse_expr();
        if (!value.ok()) return value.status();
        stmt->expr = std::move(*value);
      }
      Status s = expect(Tok::kSemi, "';'");
      if (!s.is_ok()) return s;
      return stmt;
    }
    stmt->kind = StmtKind::kExpr;
    auto expr = parse_expr();
    if (!expr.ok()) return expr.status();
    stmt->expr = std::move(*expr);
    Status s = expect(Tok::kSemi, "';'");
    if (!s.is_ok()) return s;
    return stmt;
  }

  // Expression grammar (lowest to highest precedence):
  //   assign := logor ('=' assign)?       (target must be var or index)
  //   logor  := logand ('||' logand)*
  //   logand := bitor ('&&' bitor)*
  //   bitor  := bitxor ('|' bitxor)*
  //   bitxor := bitand ('^' bitand)*
  //   bitand := equality ('&' equality)*
  //   equality := rel (('=='|'!=') rel)*
  //   rel    := shift (('<'|'<='|'>'|'>=') shift)*
  //   shift  := add (('<<'|'>>') add)*
  //   add    := mul (('+'|'-') mul)*
  //   mul    := unary (('*'|'/'|'%') unary)*
  //   unary  := ('-'|'~'|'!') unary | primary
  //   primary := number | ident | ident '[' expr ']' | ident '(' args ')'
  //            | '(' expr ')'
  Result<ExprPtr> parse_expr() { return parse_assign(); }

  Result<ExprPtr> parse_assign() {
    auto lhs = parse_binary(0);
    if (!lhs.ok()) return lhs;
    if (accept(Tok::kAssign)) {
      if ((*lhs)->kind != ExprKind::kVar && (*lhs)->kind != ExprKind::kIndex) {
        return error("assignment target must be a variable or element");
      }
      auto rhs = parse_assign();
      if (!rhs.ok()) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kAssign;
      node->line = (*lhs)->line;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      return node;
    }
    return lhs;
  }

  struct Level {
    Tok tok;
    BinOp op;
  };

  Result<ExprPtr> parse_binary(int level) {
    static const std::vector<std::vector<Level>> kLevels = {
        {{Tok::kOrOr, BinOp::kLogOr}},
        {{Tok::kAndAnd, BinOp::kLogAnd}},
        {{Tok::kPipe, BinOp::kOr}},
        {{Tok::kCaret, BinOp::kXor}},
        {{Tok::kAmp, BinOp::kAnd}},
        {{Tok::kEq, BinOp::kEq}, {Tok::kNe, BinOp::kNe}},
        {{Tok::kLt, BinOp::kLt},
         {Tok::kLe, BinOp::kLe},
         {Tok::kGt, BinOp::kGt},
         {Tok::kGe, BinOp::kGe}},
        {{Tok::kShl, BinOp::kShl}, {Tok::kShr, BinOp::kShr}},
        {{Tok::kPlus, BinOp::kAdd}, {Tok::kMinus, BinOp::kSub}},
        {{Tok::kStar, BinOp::kMul},
         {Tok::kSlash, BinOp::kDiv},
         {Tok::kPercent, BinOp::kMod}},
    };
    if (level >= static_cast<int>(kLevels.size())) return parse_unary();
    auto lhs = parse_binary(level + 1);
    if (!lhs.ok()) return lhs;
    while (true) {
      const Level* match = nullptr;
      for (const auto& l : kLevels[level]) {
        if (at(l.tok)) {
          match = &l;
          break;
        }
      }
      if (match == nullptr) return lhs;
      const int line = peek().line;
      take();
      auto rhs = parse_binary(level + 1);
      if (!rhs.ok()) return rhs;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kBinary;
      node->bin_op = match->op;
      node->line = line;
      node->lhs = std::move(*lhs);
      node->rhs = std::move(*rhs);
      *lhs = std::move(node);
    }
  }

  Result<ExprPtr> parse_unary() {
    char op = 0;
    if (accept(Tok::kMinus)) op = '-';
    else if (accept(Tok::kTilde)) op = '~';
    else if (accept(Tok::kBang)) op = '!';
    if (op) {
      auto operand = parse_unary();
      if (!operand.ok()) return operand;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->unary_op = op;
      node->line = (*operand)->line;
      node->lhs = std::move(*operand);
      return node;
    }
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    auto node = std::make_unique<Expr>();
    node->line = peek().line;
    if (at(Tok::kNumber)) {
      node->kind = ExprKind::kNumber;
      node->number = take().value;
      return node;
    }
    if (accept(Tok::kLParen)) {
      auto inner = parse_expr();
      if (!inner.ok()) return inner;
      Status s = expect(Tok::kRParen, "')'");
      if (!s.is_ok()) return s;
      return std::move(*inner);
    }
    if (at(Tok::kIdent)) {
      node->name = take().text;
      if (accept(Tok::kLBracket)) {
        node->kind = ExprKind::kIndex;
        auto index = parse_expr();
        if (!index.ok()) return index;
        node->lhs = std::move(*index);
        Status s = expect(Tok::kRBracket, "']'");
        if (!s.is_ok()) return s;
        return node;
      }
      if (accept(Tok::kLParen)) {
        node->kind = ExprKind::kCall;
        if (!accept(Tok::kRParen)) {
          while (true) {
            auto arg = parse_expr();
            if (!arg.ok()) return arg;
            node->args.push_back(std::move(*arg));
            if (accept(Tok::kComma)) continue;
            Status s = expect(Tok::kRParen, "')'");
            if (!s.is_ok()) return s;
            break;
          }
        }
        return node;
      }
      node->kind = ExprKind::kVar;
      return node;
    }
    return error("expected expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Program> parse(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens.ok()) return tokens.status();
  Parser p(std::move(*tokens));
  return p.parse_program();
}

}  // namespace rmc::dcc
