// MiniDynC — a restricted Dynamic-C-like language.
//
// This is the compiler the reproduction uses where the paper used Dynamic C:
// the AES "C port" (dc/aes.dc) is written in it, compiled to Rabbit assembly
// by src/dcc, assembled by src/rasm, and executed/cycle-counted by
// src/rabbit. Its *semantics deliberately mirror the Dynamic C hazards the
// paper describes*:
//
//  * all locals and parameters have static storage (Dynamic C: "local
//    variables are static by default" §4.1) — so recursion is unsupported,
//    exactly the hazard the paper calls out;
//  * `xmem` global arrays live in extended memory behind the 8 KiB XPC
//    window and every access pays the bank-switch dance (the reason
//    "moving data to root memory" was one of the paper's optimizations);
//  * debug builds plant an RST 28h hook before every statement, as Dynamic C
//    does (the reason "disabling debugging" was another).
//
// Language summary:
//   types        int (u16), uchar (u8); 1-D arrays of both
//   globals      [xmem] [const] type name[N] [= {..}]; type name [= expr];
//   functions    int f(int a, int b) { ... }   (ints only in signatures)
//   locals       declared at block top; static storage
//   statements   if/else, while, for, return, expression-stmt, blocks
//   expressions  = + - * / % & | ^ << >> < <= > >= == != && || ! ~ unary-
//                array indexing, calls, decimal/hex/char literals
//   builtins     rdport(LIT) / wrport(LIT, expr) — the RdPortI/WrPortI
//                port I/O of Dynamic C (board builds only; the interpreter
//                rejects them)
//   semantics    ALL arithmetic is unsigned 16-bit; uchar array elements
//                zero-extend on load and truncate on store
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace rmc::dcc {

using common::u16;
using common::u32;
using common::u8;

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  // keywords
  kInt, kUchar, kVoid, kIf, kElse, kWhile, kFor, kReturn, kXmem, kConst,
  kBreak, kContinue,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAndAnd, kOrOr, kBang, kTilde,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;   // identifier spelling
  u16 value = 0;      // number value
  int line = 1;
};

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

enum class Type { kInt, kUchar, kVoid };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kNumber,     // value
  kVar,        // name
  kIndex,      // name[index]
  kCall,       // name(args...)
  kUnary,      // op: '-' '~' '!'
  kBinary,     // op: see BinOp
  kAssign,     // target (kVar or kIndex) = value
};

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr, kXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogAnd, kLogOr,
};

struct Expr {
  ExprKind kind;
  int line = 0;

  u16 number = 0;                // kNumber
  std::string name;              // kVar / kIndex / kCall
  std::vector<ExprPtr> args;     // kCall
  ExprPtr lhs, rhs;              // kBinary / kIndex(index in lhs) / kAssign
  char unary_op = 0;             // kUnary
  BinOp bin_op = BinOp::kAdd;    // kBinary
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kExpr, kIf, kWhile, kFor, kReturn, kBlock, kEmpty, kBreak, kContinue,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;                  // kExpr / kReturn (may be null) / condition
  StmtPtr then_branch, else_branch;  // kIf
  StmtPtr body;                  // kWhile / kFor
  ExprPtr init, step;            // kFor (init/step are expressions)
  std::vector<StmtPtr> stmts;    // kBlock
};

struct VarDecl {
  std::string name;
  Type type = Type::kInt;
  bool is_array = false;
  u16 array_len = 0;
  bool is_xmem = false;   // globals only
  bool is_const = false;
  std::vector<u16> init;  // scalar: one entry; array: up to array_len
  bool has_init = false;
  int line = 0;
};

struct Function {
  std::string name;
  Type return_type = Type::kInt;
  std::vector<std::string> params;  // all int
  std::vector<VarDecl> locals;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<VarDecl> globals;
  std::vector<Function> functions;

  const Function* find_function(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

}  // namespace rmc::dcc
