// MiniDynC lexer.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.h"
#include "dcc/lang.h"

namespace rmc::dcc {

/// Tokenize source. Comments: // and /* */. Numbers: decimal, 0x hex, 'c'
/// char literals. Fails with "line N: ..." on a bad character.
common::Result<std::vector<Token>> lex(std::string_view source);

}  // namespace rmc::dcc
