#include "rasm/assembler.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <optional>

namespace rmc::rasm {

using common::ErrorCode;
using common::i64;
using common::make_error;
using common::Result;
using common::Status;
using common::u16;
using common::u32;
using common::u8;

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

// ---------------------------------------------------------------------------
// Source line splitting
// ---------------------------------------------------------------------------

struct Line {
  int number = 0;
  std::string label;
  std::string mnemonic;            // lower-case
  std::vector<std::string> operands;  // trimmed, original case preserved
  std::string raw;
};

// Strip comments (';' outside quotes) and split "label: mnem op, op".
Line parse_line(int number, std::string_view text) {
  Line line;
  line.number = number;
  line.raw = std::string(text);

  // Remove comment.
  std::string body;
  char quote = 0;
  for (char c : text) {
    if (quote) {
      body.push_back(c);
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
      body.push_back(c);
      continue;
    }
    if (c == ';') break;
    body.push_back(c);
  }

  std::string_view rest = trim(body);
  if (rest.empty()) return line;

  // Label: leading identifier followed by ':', or an identifier followed by
  // the `equ` keyword.
  if (is_ident_start(rest.front())) {
    std::size_t i = 1;
    while (i < rest.size() && is_ident_char(rest[i])) ++i;
    if (i < rest.size() && rest[i] == ':') {
      line.label = std::string(rest.substr(0, i));
      rest = trim(rest.substr(i + 1));
    } else {
      // Peek: "name equ expr"
      std::string_view after = trim(rest.substr(i));
      if (lower(after.substr(0, 4)) == "equ " || lower(after) == "equ") {
        line.label = std::string(rest.substr(0, i));
        rest = after;
      }
    }
  }
  if (rest.empty()) return line;

  // Mnemonic.
  std::size_t i = 0;
  while (i < rest.size() && !std::isspace(static_cast<unsigned char>(rest[i])))
    ++i;
  line.mnemonic = lower(rest.substr(0, i));
  rest = trim(rest.substr(i));

  // Operands: split on commas at paren depth 0 outside quotes.
  if (!rest.empty()) {
    int depth = 0;
    quote = 0;
    std::string cur;
    for (char c : rest) {
      if (quote) {
        cur.push_back(c);
        if (c == quote) quote = 0;
        continue;
      }
      if (c == '"' || c == '\'') {
        quote = c;
        cur.push_back(c);
        continue;
      }
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        line.operands.emplace_back(trim(cur));
        cur.clear();
        continue;
      }
      cur.push_back(c);
    }
    if (!trim(cur).empty()) line.operands.emplace_back(trim(cur));
  }
  return line;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct ExprValue {
  i64 value = 0;
  bool resolved = true;
};

class ExprParser {
 public:
  ExprParser(std::string_view text, const std::map<std::string, i64>& symbols,
             i64 here)
      : text_(text), symbols_(symbols), here_(here) {}

  Result<ExprValue> parse() {
    auto v = parse_or();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return Status(ErrorCode::kInvalidArgument,
                    "trailing characters in expression: '" +
                        std::string(text_.substr(pos_)) + "'");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool eat2(const char* two) {
    skip_ws();
    if (pos_ + 1 < text_.size() && text_[pos_] == two[0] &&
        text_[pos_ + 1] == two[1]) {
      pos_ += 2;
      return true;
    }
    return false;
  }

  Result<ExprValue> parse_or() {
    auto lhs = parse_xor();
    if (!lhs.ok()) return lhs;
    while (true) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        auto rhs = parse_xor();
        if (!rhs.ok()) return rhs;
        lhs->value |= rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else {
        return lhs;
      }
    }
  }
  Result<ExprValue> parse_xor() {
    auto lhs = parse_and();
    if (!lhs.ok()) return lhs;
    while (true) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        auto rhs = parse_and();
        if (!rhs.ok()) return rhs;
        lhs->value ^= rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else {
        return lhs;
      }
    }
  }
  Result<ExprValue> parse_and() {
    auto lhs = parse_shift();
    if (!lhs.ok()) return lhs;
    while (true) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
        auto rhs = parse_shift();
        if (!rhs.ok()) return rhs;
        lhs->value &= rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else {
        return lhs;
      }
    }
  }
  Result<ExprValue> parse_shift() {
    auto lhs = parse_add();
    if (!lhs.ok()) return lhs;
    while (true) {
      if (eat2("<<")) {
        auto rhs = parse_add();
        if (!rhs.ok()) return rhs;
        lhs->value <<= rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else if (eat2(">>")) {
        auto rhs = parse_add();
        if (!rhs.ok()) return rhs;
        lhs->value = static_cast<i64>(static_cast<common::u64>(lhs->value) >>
                                      rhs->value);
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else {
        return lhs;
      }
    }
  }
  Result<ExprValue> parse_add() {
    auto lhs = parse_mul();
    if (!lhs.ok()) return lhs;
    while (true) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '+') {
        ++pos_;
        auto rhs = parse_mul();
        if (!rhs.ok()) return rhs;
        lhs->value += rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else if (pos_ < text_.size() && text_[pos_] == '-') {
        ++pos_;
        auto rhs = parse_mul();
        if (!rhs.ok()) return rhs;
        lhs->value -= rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else {
        return lhs;
      }
    }
  }
  Result<ExprValue> parse_mul() {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    while (true) {
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '*') {
        ++pos_;
        auto rhs = parse_unary();
        if (!rhs.ok()) return rhs;
        lhs->value *= rhs->value;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else if (pos_ < text_.size() && text_[pos_] == '/') {
        ++pos_;
        auto rhs = parse_unary();
        if (!rhs.ok()) return rhs;
        if (rhs->value == 0 && rhs->resolved) {
          return Status(ErrorCode::kInvalidArgument, "division by zero");
        }
        lhs->value = rhs->value ? lhs->value / rhs->value : 0;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else if (pos_ < text_.size() && text_[pos_] == '%' &&
                 !(pos_ + 1 < text_.size() &&
                   (text_[pos_ + 1] == '0' || text_[pos_ + 1] == '1'))) {
        ++pos_;
        auto rhs = parse_unary();
        if (!rhs.ok()) return rhs;
        if (rhs->value == 0 && rhs->resolved) {
          return Status(ErrorCode::kInvalidArgument, "modulo by zero");
        }
        lhs->value = rhs->value ? lhs->value % rhs->value : 0;
        lhs->resolved = lhs->resolved && rhs->resolved;
      } else {
        return lhs;
      }
    }
  }
  Result<ExprValue> parse_unary() {
    skip_ws();
    if (eat('-')) {
      auto v = parse_unary();
      if (!v.ok()) return v;
      v->value = -v->value;
      return v;
    }
    if (eat('~')) {
      auto v = parse_unary();
      if (!v.ok()) return v;
      v->value = ~v->value;
      return v;
    }
    if (eat('+')) return parse_unary();
    return parse_primary();
  }

  Result<ExprValue> parse_primary() {
    skip_ws();
    if (pos_ >= text_.size()) {
      return Status(ErrorCode::kInvalidArgument, "unexpected end of expression");
    }
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto v = parse_or();
      if (!v.ok()) return v;
      if (!eat(')')) {
        return Status(ErrorCode::kInvalidArgument, "missing ')'");
      }
      return v;
    }
    if (c == '$') {
      // `$ff` = hex literal; bare `$` = current address.
      if (pos_ + 1 < text_.size() &&
          std::isxdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        ++pos_;
        return parse_number(16);
      }
      ++pos_;
      return ExprValue{here_, true};
    }
    if (c == '%') {
      ++pos_;
      return parse_number(2);
    }
    if (c == '\'') {
      // Character literal 'x' (with \n \t \\ \' \0 escapes).
      ++pos_;
      if (pos_ >= text_.size()) {
        return Status(ErrorCode::kInvalidArgument, "unterminated char literal");
      }
      char v = text_[pos_++];
      if (v == '\\' && pos_ < text_.size()) {
        const char e = text_[pos_++];
        switch (e) {
          case 'n': v = '\n'; break;
          case 't': v = '\t'; break;
          case 'r': v = '\r'; break;
          case '0': v = '\0'; break;
          default: v = e; break;
        }
      }
      if (pos_ >= text_.size() || text_[pos_] != '\'') {
        return Status(ErrorCode::kInvalidArgument, "unterminated char literal");
      }
      ++pos_;
      return ExprValue{static_cast<i64>(static_cast<u8>(v)), true};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (c == '0' && pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == 'x' || text_[pos_ + 1] == 'X')) {
        pos_ += 2;
        return parse_number(16);
      }
      return parse_number_maybe_h();
    }
    if (is_ident_start(c)) {
      std::size_t start = pos_;
      while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
      std::string name = lower(text_.substr(start, pos_ - start));
      // Builtin functions.
      if (name == "xpcof" || name == "winof" || name == "hi" || name == "lo") {
        if (!eat('(')) {
          return Status(ErrorCode::kInvalidArgument,
                        name + " requires parenthesized argument");
        }
        auto v = parse_or();
        if (!v.ok()) return v;
        if (!eat(')')) {
          return Status(ErrorCode::kInvalidArgument, "missing ')'");
        }
        const i64 x = v->value;
        i64 r = 0;
        if (name == "xpcof") r = ((x >> 12) - 0x0E) & 0xFF;
        else if (name == "winof") r = 0xE000 + (x & 0x0FFF);
        else if (name == "hi") r = (x >> 8) & 0xFF;
        else r = x & 0xFF;
        return ExprValue{r, v->resolved};
      }
      auto it = symbols_.find(name);
      if (it == symbols_.end()) {
        unresolved_name_ = name;
        return ExprValue{0, false};
      }
      return ExprValue{it->second, true};
    }
    return Status(ErrorCode::kInvalidArgument,
                  std::string("unexpected character '") + c + "' in expression");
  }

  Result<ExprValue> parse_number(int base) {
    i64 v = 0;
    bool any = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else break;
      if (digit >= base) break;
      v = v * base + digit;
      ++pos_;
      any = true;
    }
    if (!any) {
      return Status(ErrorCode::kInvalidArgument, "malformed number");
    }
    return ExprValue{v, true};
  }

  // Decimal, or hex with trailing 'h' (e.g. 0E000h / 12h).
  Result<ExprValue> parse_number_maybe_h() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isxdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == 'h' || text_[pos_] == 'H')) {
      i64 v = 0;
      for (std::size_t i = start; i < pos_; ++i) {
        const char c = text_[i];
        const int digit = (c <= '9') ? c - '0'
                          : (c >= 'a') ? c - 'a' + 10
                                       : c - 'A' + 10;
        v = v * 16 + digit;
      }
      ++pos_;  // consume 'h'
      return ExprValue{v, true};
    }
    // Plain decimal: re-scan digits only.
    pos_ = start;
    i64 v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return ExprValue{v, true};
  }

  std::string_view text_;
  const std::map<std::string, i64>& symbols_;
  i64 here_;
  std::size_t pos_ = 0;
  std::string unresolved_name_;
};

// ---------------------------------------------------------------------------
// Operands
// ---------------------------------------------------------------------------

enum class OpKind {
  kNone,
  kReg8,    // reg = B0 C1 D2 E3 H4 L5 A7
  kReg16,   // reg = BC0 DE1 HL2 SP3 IX4 IY5 AF6
  kAfAlt,   // af'
  kXpc,     // the XPC register
  kMemHl,   // (hl)
  kMemBc,   // (bc)
  kMemDe,   // (de)
  kMemSp,   // (sp)
  kMemNn,   // (expr)
  kMemIdx,  // (ix+d) / (iy+d); reg = 4 (ix) or 5 (iy)
  kImm,     // expr
  kString,  // "..." (db only)
};

struct Op {
  OpKind kind = OpKind::kNone;
  int reg = -1;
  i64 value = 0;
  bool resolved = true;
  i64 disp = 0;          // for kMemIdx
  std::string text;      // original (for strings / errors)
};

int reg8_code(std::string_view name) {
  const std::string n = lower(name);
  if (n == "b") return 0;
  if (n == "c") return 1;
  if (n == "d") return 2;
  if (n == "e") return 3;
  if (n == "h") return 4;
  if (n == "l") return 5;
  if (n == "a") return 7;
  return -1;
}

int reg16_code(std::string_view name) {
  const std::string n = lower(name);
  if (n == "bc") return 0;
  if (n == "de") return 1;
  if (n == "hl") return 2;
  if (n == "sp") return 3;
  if (n == "ix") return 4;
  if (n == "iy") return 5;
  if (n == "af") return 6;
  return -1;
}

int cond_code(std::string_view name) {
  const std::string n = lower(name);
  if (n == "nz") return 0;
  if (n == "z") return 1;
  if (n == "nc") return 2;
  if (n == "c") return 3;
  if (n == "po" || n == "lz") return 4;
  if (n == "pe" || n == "lo") return 5;
  if (n == "p") return 6;
  if (n == "m") return 7;
  return -1;
}

}  // namespace

Result<u32> board_logical_to_phys(u32 logical) {
  if (logical < 0x6000) return logical;
  if (logical < 0xD000) return logical + 0x7A000;
  if (logical < 0xE000) return logical + 0x81000;
  return Status(ErrorCode::kInvalidArgument,
                "logical address in XPC window; use xorg for extended memory");
}

namespace {

// ---------------------------------------------------------------------------
// Assembler proper
// ---------------------------------------------------------------------------

class Assembler {
 public:
  explicit Assembler(const AssembleOptions& options) : options_(options) {}

  Result<AssembleOutput> assemble(std::string_view source) {
    std::vector<Line> lines;
    int n = 1;
    std::size_t start = 0;
    while (start <= source.size()) {
      std::size_t end = source.find('\n', start);
      if (end == std::string_view::npos) end = source.size();
      lines.push_back(parse_line(n++, source.substr(start, end - start)));
      start = end + 1;
    }

    for (pass_ = 1; pass_ <= 2; ++pass_) {
      addr_ = options_.default_org;
      xmem_mode_ = false;
      chunk_ = nullptr;
      if (pass_ == 2) output_.image.chunks.clear();
      for (const Line& line : lines) {
        Status s = do_line(line);
        if (!s.is_ok()) {
          return Status(s.code(), "line " + std::to_string(line.number) +
                                      ": " + s.message());
        }
      }
    }

    for (const auto& [name, value] : symbols_) {
      output_.image.symbols[name] = static_cast<u32>(value);
    }
    for (const std::string& fn : functions_) {
      if (!symbols_.count(fn)) {
        return Status(ErrorCode::kNotFound,
                      "func declares unknown label: " + fn);
      }
      output_.image.functions.push_back(fn);
    }
    if (options_.want_listing) {
      // Symbol-map appendix: address / F(unction) flag / name, sorted by
      // address — the map CycleProfiler attribution is built from.
      output_.listing += "\n; symbols\n";
      std::vector<std::pair<i64, std::string>> by_addr;
      for (const auto& [name, value] : symbols_) {
        by_addr.emplace_back(value, name);
      }
      std::sort(by_addr.begin(), by_addr.end());
      for (const auto& [value, name] : by_addr) {
        const bool is_fn =
            std::find(functions_.begin(), functions_.end(), name) !=
            functions_.end();
        char head[32];
        std::snprintf(head, sizeof head, "; %05llX %c ",
                      static_cast<unsigned long long>(value),
                      is_fn ? 'F' : ' ');
        output_.listing += head + name + "\n";
      }
    }
    auto main_it = symbols_.find("main");
    if (main_it != symbols_.end()) {
      output_.image.entry = static_cast<u32>(main_it->second);
    } else if (!output_.image.chunks.empty()) {
      output_.image.entry = options_.default_org;
    }
    return std::move(output_);
  }

 private:
  Status do_line(const Line& line) {
    line_ = &line;
    emitted_.clear();
    const i64 line_addr = addr_;

    if (!line.label.empty() && line.mnemonic != "equ") {
      Status s = define_symbol(lower(line.label), addr_);
      if (!s.is_ok()) return s;
    }

    Status s = Status::ok();
    if (!line.mnemonic.empty()) s = dispatch(line);
    if (!s.is_ok()) return s;

    if (pass_ == 2) {
      if (!emitted_.empty()) {
        ensure_chunk();
        chunk_->bytes.insert(chunk_->bytes.end(), emitted_.begin(),
                             emitted_.end());
      }
      if (options_.want_listing) {
        char head[32];
        std::snprintf(head, sizeof head, "%05llX  ",
                      static_cast<unsigned long long>(line_addr));
        std::string bytes;
        for (std::size_t i = 0; i < emitted_.size() && i < 6; ++i) {
          char b[4];
          std::snprintf(b, sizeof b, "%02X ", emitted_[i]);
          bytes += b;
        }
        if (emitted_.size() > 6) bytes += "...";
        bytes.resize(20, ' ');
        output_.listing += head + bytes + line.raw + "\n";
      }
    }
    addr_ += static_cast<i64>(emitted_.size());
    return Status::ok();
  }

  Status define_symbol(const std::string& name, i64 value) {
    if (pass_ == 1) {
      if (symbols_.count(name)) {
        return Status(ErrorCode::kAlreadyExists, "duplicate symbol: " + name);
      }
      symbols_[name] = value;
    } else if (symbols_[name] != value) {
      // Phase error: an instruction changed size between passes.
      return Status(ErrorCode::kInternal,
                    "phase error on symbol '" + name + "'");
    }
    return Status::ok();
  }

  void ensure_chunk() {
    if (chunk_ != nullptr) return;
    u32 phys;
    if (xmem_mode_) {
      phys = static_cast<u32>(addr_);
    } else {
      auto r = board_logical_to_phys(static_cast<u32>(addr_));
      phys = r.ok() ? *r : static_cast<u32>(addr_);
    }
    output_.image.chunks.push_back(rabbit::ImageChunk{phys, {}});
    chunk_ = &output_.image.chunks.back();
  }

  // ----- operand parsing ---------------------------------------------------

  Result<ExprValue> eval(std::string_view text) {
    ExprParser p(text, symbols_, addr_);
    auto v = p.parse();
    if (!v.ok()) return v;
    if (pass_ == 2 && !v->resolved) {
      return Status(ErrorCode::kNotFound,
                    "unresolved symbol in '" + std::string(text) + "'");
    }
    return v;
  }

  Result<Op> parse_operand(const std::string& text) {
    Op op;
    op.text = text;
    if (text.empty()) {
      return Status(ErrorCode::kInvalidArgument, "empty operand");
    }
    if (text.front() == '"') {
      if (text.size() < 2 || text.back() != '"') {
        return Status(ErrorCode::kInvalidArgument, "unterminated string");
      }
      op.kind = OpKind::kString;
      return op;
    }
    const std::string low = lower(text);
    if (low == "af'") {
      op.kind = OpKind::kAfAlt;
      return op;
    }
    if (low == "xpc") {
      op.kind = OpKind::kXpc;
      return op;
    }
    if (int r = reg8_code(low); r >= 0) {
      op.kind = OpKind::kReg8;
      op.reg = r;
      return op;
    }
    if (int r = reg16_code(low); r >= 0) {
      op.kind = OpKind::kReg16;
      op.reg = r;
      return op;
    }
    if (text.front() == '(' && text.back() == ')') {
      const std::string inner =
          std::string(trim(std::string_view(text).substr(1, text.size() - 2)));
      const std::string ilow = lower(inner);
      if (ilow == "hl") { op.kind = OpKind::kMemHl; return op; }
      if (ilow == "bc") { op.kind = OpKind::kMemBc; return op; }
      if (ilow == "de") { op.kind = OpKind::kMemDe; return op; }
      if (ilow == "sp") { op.kind = OpKind::kMemSp; return op; }
      if (ilow.rfind("ix", 0) == 0 || ilow.rfind("iy", 0) == 0) {
        op.kind = OpKind::kMemIdx;
        op.reg = (ilow[1] == 'x') ? 4 : 5;
        std::string_view rest = trim(std::string_view(inner).substr(2));
        if (rest.empty()) {
          op.disp = 0;
        } else {
          auto v = eval(rest);  // rest begins with +/-, handled as unary
          if (!v.ok()) return v.status();
          op.disp = v->value;
          op.resolved = v->resolved;
        }
        return op;
      }
      auto v = eval(inner);
      if (!v.ok()) return v.status();
      op.kind = OpKind::kMemNn;
      op.value = v->value;
      op.resolved = v->resolved;
      return op;
    }
    auto v = eval(text);
    if (!v.ok()) return v.status();
    op.kind = OpKind::kImm;
    op.value = v->value;
    op.resolved = v->resolved;
    return op;
  }

  // ----- emission ----------------------------------------------------------

  void emit(u8 b) { emitted_.push_back(b); }
  void emit2(u8 a, u8 b) { emit(a); emit(b); }
  void emit16(i64 v) {
    emit(static_cast<u8>(v & 0xFF));
    emit(static_cast<u8>((v >> 8) & 0xFF));
  }

  /// jp/call/jr targets: xorg labels (physical, >0xFFFF) become window
  /// addresses automatically.
  i64 to_logical(i64 v) const {
    if (v > 0xFFFF) return 0xE000 + (v & 0x0FFF);
    return v;
  }

  Status need_operands(const Line& line, std::size_t n) {
    if (line.operands.size() != n) {
      return Status(ErrorCode::kInvalidArgument,
                    line.mnemonic + " expects " + std::to_string(n) +
                        " operand(s), got " +
                        std::to_string(line.operands.size()));
    }
    return Status::ok();
  }

  // ----- instruction dispatch ---------------------------------------------

  Status dispatch(const Line& line) {
    const std::string& m = line.mnemonic;

    // Directives.
    if (m == "org" || m == "xorg") {
      Status s = need_operands(line, 1);
      if (!s.is_ok()) return s;
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      addr_ = v->value;
      xmem_mode_ = (m == "xorg");
      if (!xmem_mode_) {
        auto p = board_logical_to_phys(static_cast<u32>(addr_));
        if (!p.ok()) return p.status();
      }
      chunk_ = nullptr;  // start a new chunk on next emission
      return Status::ok();
    }
    if (m == "equ") {
      if (line.label.empty()) {
        return Status(ErrorCode::kInvalidArgument, "equ requires a label");
      }
      Status s = need_operands(line, 1);
      if (!s.is_ok()) return s;
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      return define_symbol(lower(line.label), v->value);
    }
    if (m == "db" || m == "defb") {
      for (const auto& text : line.operands) {
        if (!text.empty() && text.front() == '"') {
          if (text.size() < 2 || text.back() != '"') {
            return Status(ErrorCode::kInvalidArgument, "unterminated string");
          }
          for (std::size_t i = 1; i + 1 < text.size(); ++i) {
            char c = text[i];
            if (c == '\\' && i + 2 < text.size()) {
              ++i;
              switch (text[i]) {
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                case '0': c = '\0'; break;
                default: c = text[i]; break;
              }
            }
            emit(static_cast<u8>(c));
          }
        } else {
          auto v = eval(text);
          if (!v.ok()) return v.status();
          emit(static_cast<u8>(v->value & 0xFF));
        }
      }
      return Status::ok();
    }
    if (m == "dw" || m == "defw") {
      for (const auto& text : line.operands) {
        auto v = eval(text);
        if (!v.ok()) return v.status();
        emit16(v->value);
      }
      return Status::ok();
    }
    if (m == "ds" || m == "defs") {
      Status s = need_operands(line, 1);
      if (!s.is_ok()) return s;
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      if (v->value < 0 || v->value > 0x10000) {
        return Status(ErrorCode::kOutOfRange, "ds size out of range");
      }
      for (i64 i = 0; i < v->value; ++i) emit(0);
      return Status::ok();
    }
    if (m == "align") {
      Status s = need_operands(line, 1);
      if (!s.is_ok()) return s;
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      if (v->value <= 0) {
        return Status(ErrorCode::kInvalidArgument, "bad alignment");
      }
      while ((addr_ + static_cast<i64>(emitted_.size())) % v->value != 0) {
        emit(0);
      }
      return Status::ok();
    }
    if (m == "func") {
      // `func name[, name...]` — declare labels as function entry points.
      // Emits nothing; the names land in Image::functions (resolved against
      // the symbol table after pass 2) for cycle attribution.
      if (line.operands.empty()) {
        return Status(ErrorCode::kInvalidArgument,
                      "func requires at least one label name");
      }
      if (pass_ == 1) {
        for (const auto& text : line.operands) {
          functions_.push_back(lower(trim(text)));
        }
      }
      return Status::ok();
    }

    // Zero-operand instructions.
    static const std::map<std::string, std::vector<u8>> kSimple = {
        {"nop", {0x00}},    {"halt", {0x76}},   {"di", {0xF3}},
        {"ei", {0xFB}},     {"exx", {0xD9}},    {"rlca", {0x07}},
        {"rrca", {0x0F}},   {"rla", {0x17}},    {"rra", {0x1F}},
        {"daa", {0x27}},    {"cpl", {0x2F}},    {"scf", {0x37}},
        {"ccf", {0x3F}},    {"neg", {0xED, 0x44}}, {"reti", {0xED, 0x4D}},
        {"ldi", {0xED, 0xA0}}, {"ldd", {0xED, 0xA8}},
        {"ldir", {0xED, 0xB0}}, {"lddr", {0xED, 0xB8}},
        {"mul", {0xF7}},    {"lret", {0xED, 0xC9}},
    };
    if (auto it = kSimple.find(m); it != kSimple.end()) {
      if (!line.operands.empty()) {
        return Status(ErrorCode::kInvalidArgument,
                      m + " takes no operands");
      }
      for (u8 b : it->second) emit(b);
      return Status::ok();
    }

    if (m == "bool") {
      // `bool hl`
      Status s = need_operands(line, 1);
      if (!s.is_ok()) return s;
      if (lower(line.operands[0]) != "hl") {
        return Status(ErrorCode::kInvalidArgument, "bool only supports HL");
      }
      emit2(0xED, 0x90);
      return Status::ok();
    }

    if (m == "ld") return do_ld(line);
    if (m == "push" || m == "pop") return do_push_pop(line, m == "push");
    if (m == "ex") return do_ex(line);
    if (m == "add" || m == "adc" || m == "sub" || m == "sbc" || m == "and" ||
        m == "or" || m == "xor" || m == "cp") {
      return do_alu(line);
    }
    if (m == "inc" || m == "dec") return do_incdec(line, m == "inc");
    if (m == "rlc" || m == "rrc" || m == "rl" || m == "rr" || m == "sla" ||
        m == "sra" || m == "srl") {
      return do_rot(line);
    }
    if (m == "bit" || m == "res" || m == "set") return do_bit(line);
    if (m == "jp") return do_jp(line);
    if (m == "jr") return do_jr(line);
    if (m == "djnz") return do_djnz(line);
    if (m == "call") return do_call(line);
    if (m == "ret") return do_ret(line);
    if (m == "rst") return do_rst(line);
    if (m == "in") return do_in(line);
    if (m == "out") return do_out(line);
    if (m == "lcall" || m == "ljp") return do_far(line, m == "lcall");

    return Status(ErrorCode::kInvalidArgument, "unknown mnemonic: " + m);
  }

  Status do_ld(const Line& line) {
    Status s = need_operands(line, 2);
    if (!s.is_ok()) return s;
    auto dst_r = parse_operand(line.operands[0]);
    if (!dst_r.ok()) return dst_r.status();
    auto src_r = parse_operand(line.operands[1]);
    if (!src_r.ok()) return src_r.status();
    const Op& dst = *dst_r;
    const Op& src = *src_r;

    // ld xpc,a / ld a,xpc
    if (dst.kind == OpKind::kXpc && src.kind == OpKind::kReg8 && src.reg == 7) {
      emit2(0xED, 0x67);
      return Status::ok();
    }
    if (dst.kind == OpKind::kReg8 && dst.reg == 7 && src.kind == OpKind::kXpc) {
      emit2(0xED, 0x77);
      return Status::ok();
    }

    // 8-bit register destination.
    if (dst.kind == OpKind::kReg8) {
      switch (src.kind) {
        case OpKind::kReg8:
          emit(static_cast<u8>(0x40 | (dst.reg << 3) | src.reg));
          return Status::ok();
        case OpKind::kMemHl:
          emit(static_cast<u8>(0x40 | (dst.reg << 3) | 6));
          return Status::ok();
        case OpKind::kMemIdx:
          emit(src.reg == 4 ? 0xDD : 0xFD);
          emit(static_cast<u8>(0x40 | (dst.reg << 3) | 6));
          emit(static_cast<u8>(src.disp & 0xFF));
          return Status::ok();
        case OpKind::kMemBc:
          if (dst.reg != 7) break;
          emit(0x0A);
          return Status::ok();
        case OpKind::kMemDe:
          if (dst.reg != 7) break;
          emit(0x1A);
          return Status::ok();
        case OpKind::kMemNn:
          if (dst.reg != 7) break;
          emit(0x3A);
          emit16(src.value);
          return Status::ok();
        case OpKind::kImm:
          emit(static_cast<u8>(0x06 | (dst.reg << 3)));
          emit(static_cast<u8>(src.value & 0xFF));
          return Status::ok();
        default:
          break;
      }
    }

    // (hl)/(ix+d)/(bc)/(de)/(nn) destination.
    if (dst.kind == OpKind::kMemHl) {
      if (src.kind == OpKind::kReg8) {
        emit(static_cast<u8>(0x70 | src.reg));
        return Status::ok();
      }
      if (src.kind == OpKind::kImm) {
        emit(0x36);
        emit(static_cast<u8>(src.value & 0xFF));
        return Status::ok();
      }
    }
    if (dst.kind == OpKind::kMemIdx) {
      if (src.kind == OpKind::kReg8) {
        emit(dst.reg == 4 ? 0xDD : 0xFD);
        emit(static_cast<u8>(0x70 | src.reg));
        emit(static_cast<u8>(dst.disp & 0xFF));
        return Status::ok();
      }
      if (src.kind == OpKind::kImm) {
        emit(dst.reg == 4 ? 0xDD : 0xFD);
        emit(0x36);
        emit(static_cast<u8>(dst.disp & 0xFF));
        emit(static_cast<u8>(src.value & 0xFF));
        return Status::ok();
      }
    }
    if (dst.kind == OpKind::kMemBc && src.kind == OpKind::kReg8 &&
        src.reg == 7) {
      emit(0x02);
      return Status::ok();
    }
    if (dst.kind == OpKind::kMemDe && src.kind == OpKind::kReg8 &&
        src.reg == 7) {
      emit(0x12);
      return Status::ok();
    }
    if (dst.kind == OpKind::kMemNn) {
      if (src.kind == OpKind::kReg8 && src.reg == 7) {
        emit(0x32);
        emit16(dst.value);
        return Status::ok();
      }
      if (src.kind == OpKind::kReg16) {
        switch (src.reg) {
          case 2: emit(0x22); break;                  // hl
          case 0: emit2(0xED, 0x43); break;           // bc
          case 1: emit2(0xED, 0x53); break;           // de
          case 3: emit2(0xED, 0x73); break;           // sp
          case 4: emit2(0xDD, 0x22); break;           // ix
          case 5: emit2(0xFD, 0x22); break;           // iy
          default:
            return Status(ErrorCode::kInvalidArgument, "ld (nn),af invalid");
        }
        emit16(dst.value);
        return Status::ok();
      }
    }

    // 16-bit register destination.
    if (dst.kind == OpKind::kReg16) {
      if (src.kind == OpKind::kImm) {
        switch (dst.reg) {
          case 0: emit(0x01); break;
          case 1: emit(0x11); break;
          case 2: emit(0x21); break;
          case 3: emit(0x31); break;
          case 4: emit2(0xDD, 0x21); break;
          case 5: emit2(0xFD, 0x21); break;
          default:
            return Status(ErrorCode::kInvalidArgument, "ld af,nn invalid");
        }
        emit16(src.value);
        return Status::ok();
      }
      if (src.kind == OpKind::kMemNn) {
        switch (dst.reg) {
          case 2: emit(0x2A); break;
          case 0: emit2(0xED, 0x4B); break;
          case 1: emit2(0xED, 0x5B); break;
          case 3: emit2(0xED, 0x7B); break;
          case 4: emit2(0xDD, 0x2A); break;
          case 5: emit2(0xFD, 0x2A); break;
          default:
            return Status(ErrorCode::kInvalidArgument, "ld af,(nn) invalid");
        }
        emit16(src.value);
        return Status::ok();
      }
      if (dst.reg == 3 && src.kind == OpKind::kReg16) {  // ld sp,hl/ix/iy
        switch (src.reg) {
          case 2: emit(0xF9); return Status::ok();
          case 4: emit2(0xDD, 0xF9); return Status::ok();
          case 5: emit2(0xFD, 0xF9); return Status::ok();
          default: break;
        }
      }
    }

    return Status(ErrorCode::kInvalidArgument,
                  "unsupported ld form: ld " + line.operands[0] + ", " +
                      line.operands[1]);
  }

  Status do_push_pop(const Line& line, bool is_push) {
    Status s = need_operands(line, 1);
    if (!s.is_ok()) return s;
    const int r = reg16_code(line.operands[0]);
    const u8 base = is_push ? 0xC5 : 0xC1;
    switch (r) {
      case 0: emit(base); return Status::ok();
      case 1: emit(static_cast<u8>(base + 0x10)); return Status::ok();
      case 2: emit(static_cast<u8>(base + 0x20)); return Status::ok();
      case 6: emit(static_cast<u8>(base + 0x30)); return Status::ok();
      case 4: emit2(0xDD, static_cast<u8>(base + 0x20)); return Status::ok();
      case 5: emit2(0xFD, static_cast<u8>(base + 0x20)); return Status::ok();
      default:
        return Status(ErrorCode::kInvalidArgument,
                      "bad push/pop operand: " + line.operands[0]);
    }
  }

  Status do_ex(const Line& line) {
    Status s = need_operands(line, 2);
    if (!s.is_ok()) return s;
    const std::string a = lower(line.operands[0]);
    const std::string b = lower(line.operands[1]);
    if (a == "de" && b == "hl") { emit(0xEB); return Status::ok(); }
    if (a == "af" && b == "af'") { emit(0x08); return Status::ok(); }
    if (a == "(sp)" && b == "hl") { emit(0xE3); return Status::ok(); }
    if (a == "(sp)" && b == "ix") { emit2(0xDD, 0xE3); return Status::ok(); }
    if (a == "(sp)" && b == "iy") { emit2(0xFD, 0xE3); return Status::ok(); }
    return Status(ErrorCode::kInvalidArgument, "unsupported ex form");
  }

  Status do_alu(const Line& line) {
    static const std::map<std::string, unsigned> kAluIdx = {
        {"add", 0}, {"adc", 1}, {"sub", 2}, {"sbc", 3},
        {"and", 4}, {"xor", 5}, {"or", 6},  {"cp", 7}};
    const unsigned idx = kAluIdx.at(line.mnemonic);

    // Two-operand 16-bit forms: add hl,ss / adc hl,ss / sbc hl,ss /
    // add ix,ss.
    if (line.operands.size() == 2) {
      const int d16 = reg16_code(line.operands[0]);
      const int s16 = reg16_code(line.operands[1]);
      if (d16 >= 0 && s16 >= 0) {
        if (line.mnemonic == "add" && d16 == 2 && s16 <= 3) {
          emit(static_cast<u8>(0x09 | (s16 << 4)));
          return Status::ok();
        }
        if (line.mnemonic == "adc" && d16 == 2 && s16 <= 3) {
          emit2(0xED, static_cast<u8>(0x4A | (s16 << 4)));
          return Status::ok();
        }
        if (line.mnemonic == "sbc" && d16 == 2 && s16 <= 3) {
          emit2(0xED, static_cast<u8>(0x42 | (s16 << 4)));
          return Status::ok();
        }
        if (line.mnemonic == "add" && (d16 == 4 || d16 == 5)) {
          // add ix,ss: "hl" slot means ix itself
          int slot = s16;
          if (s16 == d16) slot = 2;
          if (slot > 3) {
            return Status(ErrorCode::kInvalidArgument, "bad add ix operand");
          }
          emit(d16 == 4 ? 0xDD : 0xFD);
          emit(static_cast<u8>(0x09 | (slot << 4)));
          return Status::ok();
        }
        return Status(ErrorCode::kInvalidArgument, "unsupported 16-bit alu");
      }
    }

    // 8-bit accumulator form: optional leading "a,".
    std::string operand;
    if (line.operands.size() == 2) {
      if (lower(line.operands[0]) != "a") {
        return Status(ErrorCode::kInvalidArgument,
                      "alu destination must be a");
      }
      operand = line.operands[1];
    } else if (line.operands.size() == 1) {
      operand = line.operands[0];
    } else {
      return Status(ErrorCode::kInvalidArgument, "bad alu operand count");
    }
    auto op_r = parse_operand(operand);
    if (!op_r.ok()) return op_r.status();
    const Op& op = *op_r;
    switch (op.kind) {
      case OpKind::kReg8:
        emit(static_cast<u8>(0x80 | (idx << 3) | op.reg));
        return Status::ok();
      case OpKind::kMemHl:
        emit(static_cast<u8>(0x80 | (idx << 3) | 6));
        return Status::ok();
      case OpKind::kMemIdx:
        emit(op.reg == 4 ? 0xDD : 0xFD);
        emit(static_cast<u8>(0x80 | (idx << 3) | 6));
        emit(static_cast<u8>(op.disp & 0xFF));
        return Status::ok();
      case OpKind::kImm:
        emit(static_cast<u8>(0xC6 | (idx << 3)));
        emit(static_cast<u8>(op.value & 0xFF));
        return Status::ok();
      default:
        return Status(ErrorCode::kInvalidArgument,
                      "bad alu operand: " + operand);
    }
  }

  Status do_incdec(const Line& line, bool is_inc) {
    Status s = need_operands(line, 1);
    if (!s.is_ok()) return s;
    auto op_r = parse_operand(line.operands[0]);
    if (!op_r.ok()) return op_r.status();
    const Op& op = *op_r;
    if (op.kind == OpKind::kReg16) {
      switch (op.reg) {
        case 0: emit(is_inc ? 0x03 : 0x0B); return Status::ok();
        case 1: emit(is_inc ? 0x13 : 0x1B); return Status::ok();
        case 2: emit(is_inc ? 0x23 : 0x2B); return Status::ok();
        case 3: emit(is_inc ? 0x33 : 0x3B); return Status::ok();
        case 4: emit2(0xDD, is_inc ? 0x23 : 0x2B); return Status::ok();
        case 5: emit2(0xFD, is_inc ? 0x23 : 0x2B); return Status::ok();
        default:
          return Status(ErrorCode::kInvalidArgument, "inc/dec af invalid");
      }
    }
    const u8 base = is_inc ? 0x04 : 0x05;
    if (op.kind == OpKind::kReg8) {
      emit(static_cast<u8>(base | (op.reg << 3)));
      return Status::ok();
    }
    if (op.kind == OpKind::kMemHl) {
      emit(static_cast<u8>(base | (6 << 3)));
      return Status::ok();
    }
    if (op.kind == OpKind::kMemIdx) {
      emit(op.reg == 4 ? 0xDD : 0xFD);
      emit(static_cast<u8>(base | (6 << 3)));
      emit(static_cast<u8>(op.disp & 0xFF));
      return Status::ok();
    }
    return Status(ErrorCode::kInvalidArgument, "bad inc/dec operand");
  }

  Status do_rot(const Line& line) {
    static const std::map<std::string, unsigned> kRotIdx = {
        {"rlc", 0}, {"rrc", 1}, {"rl", 2}, {"rr", 3},
        {"sla", 4}, {"sra", 5}, {"srl", 7}};
    const unsigned idx = kRotIdx.at(line.mnemonic);
    Status s = need_operands(line, 1);
    if (!s.is_ok()) return s;
    auto op_r = parse_operand(line.operands[0]);
    if (!op_r.ok()) return op_r.status();
    const Op& op = *op_r;
    if (op.kind == OpKind::kReg8) {
      emit2(0xCB, static_cast<u8>((idx << 3) | op.reg));
      return Status::ok();
    }
    if (op.kind == OpKind::kMemHl) {
      emit2(0xCB, static_cast<u8>((idx << 3) | 6));
      return Status::ok();
    }
    if (op.kind == OpKind::kMemIdx) {
      emit(op.reg == 4 ? 0xDD : 0xFD);
      emit(0xCB);
      emit(static_cast<u8>(op.disp & 0xFF));
      emit(static_cast<u8>((idx << 3) | 6));
      return Status::ok();
    }
    return Status(ErrorCode::kInvalidArgument, "bad rotate operand");
  }

  Status do_bit(const Line& line) {
    Status s = need_operands(line, 2);
    if (!s.is_ok()) return s;
    auto bit_r = eval(line.operands[0]);
    if (!bit_r.ok()) return bit_r.status();
    if (bit_r->value < 0 || bit_r->value > 7) {
      return Status(ErrorCode::kOutOfRange, "bit index out of range");
    }
    const unsigned bit = static_cast<unsigned>(bit_r->value);
    unsigned group;
    if (line.mnemonic == "bit") group = 1;
    else if (line.mnemonic == "res") group = 2;
    else group = 3;
    auto op_r = parse_operand(line.operands[1]);
    if (!op_r.ok()) return op_r.status();
    const Op& op = *op_r;
    if (op.kind == OpKind::kReg8) {
      emit2(0xCB, static_cast<u8>((group << 6) | (bit << 3) | op.reg));
      return Status::ok();
    }
    if (op.kind == OpKind::kMemHl) {
      emit2(0xCB, static_cast<u8>((group << 6) | (bit << 3) | 6));
      return Status::ok();
    }
    if (op.kind == OpKind::kMemIdx) {
      emit(op.reg == 4 ? 0xDD : 0xFD);
      emit(0xCB);
      emit(static_cast<u8>(op.disp & 0xFF));
      emit(static_cast<u8>((group << 6) | (bit << 3) | 6));
      return Status::ok();
    }
    return Status(ErrorCode::kInvalidArgument, "bad bit operand");
  }

  Status do_jp(const Line& line) {
    if (line.operands.size() == 1) {
      const std::string low = lower(line.operands[0]);
      if (low == "(hl)") { emit(0xE9); return Status::ok(); }
      if (low == "(ix)") { emit2(0xDD, 0xE9); return Status::ok(); }
      if (low == "(iy)") { emit2(0xFD, 0xE9); return Status::ok(); }
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      emit(0xC3);
      emit16(to_logical(v->value));
      return Status::ok();
    }
    if (line.operands.size() == 2) {
      const int cc = cond_code(line.operands[0]);
      if (cc < 0) {
        return Status(ErrorCode::kInvalidArgument,
                      "bad condition: " + line.operands[0]);
      }
      auto v = eval(line.operands[1]);
      if (!v.ok()) return v.status();
      emit(static_cast<u8>(0xC2 | (cc << 3)));
      emit16(to_logical(v->value));
      return Status::ok();
    }
    return Status(ErrorCode::kInvalidArgument, "bad jp form");
  }

  Status do_jr(const Line& line) {
    std::string target;
    int cc = -1;
    if (line.operands.size() == 1) {
      target = line.operands[0];
    } else if (line.operands.size() == 2) {
      cc = cond_code(line.operands[0]);
      if (cc < 0 || cc > 3) {
        return Status(ErrorCode::kInvalidArgument,
                      "jr supports nz/z/nc/c only");
      }
      target = line.operands[1];
    } else {
      return Status(ErrorCode::kInvalidArgument, "bad jr form");
    }
    auto v = eval(target);
    if (!v.ok()) return v.status();
    const i64 dest = to_logical(v->value);
    const i64 disp = dest - (addr_ + static_cast<i64>(emitted_.size()) + 2);
    if (pass_ == 2 && (disp < -128 || disp > 127)) {
      return Status(ErrorCode::kOutOfRange,
                    "jr target out of range (" + std::to_string(disp) + ")");
    }
    emit(cc < 0 ? 0x18 : static_cast<u8>(0x20 | (cc << 3)));
    emit(static_cast<u8>(disp & 0xFF));
    return Status::ok();
  }

  Status do_djnz(const Line& line) {
    Status s = need_operands(line, 1);
    if (!s.is_ok()) return s;
    auto v = eval(line.operands[0]);
    if (!v.ok()) return v.status();
    const i64 dest = to_logical(v->value);
    const i64 disp = dest - (addr_ + static_cast<i64>(emitted_.size()) + 2);
    if (pass_ == 2 && (disp < -128 || disp > 127)) {
      return Status(ErrorCode::kOutOfRange, "djnz target out of range");
    }
    emit(0x10);
    emit(static_cast<u8>(disp & 0xFF));
    return Status::ok();
  }

  Status do_call(const Line& line) {
    if (line.operands.size() == 1) {
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      emit(0xCD);
      emit16(to_logical(v->value));
      return Status::ok();
    }
    if (line.operands.size() == 2) {
      const int cc = cond_code(line.operands[0]);
      if (cc < 0) {
        return Status(ErrorCode::kInvalidArgument,
                      "bad condition: " + line.operands[0]);
      }
      auto v = eval(line.operands[1]);
      if (!v.ok()) return v.status();
      emit(static_cast<u8>(0xC4 | (cc << 3)));
      emit16(to_logical(v->value));
      return Status::ok();
    }
    return Status(ErrorCode::kInvalidArgument, "bad call form");
  }

  Status do_ret(const Line& line) {
    if (line.operands.empty()) {
      emit(0xC9);
      return Status::ok();
    }
    if (line.operands.size() == 1) {
      const int cc = cond_code(line.operands[0]);
      if (cc < 0) {
        return Status(ErrorCode::kInvalidArgument,
                      "bad condition: " + line.operands[0]);
      }
      emit(static_cast<u8>(0xC0 | (cc << 3)));
      return Status::ok();
    }
    return Status(ErrorCode::kInvalidArgument, "bad ret form");
  }

  Status do_rst(const Line& line) {
    Status s = need_operands(line, 1);
    if (!s.is_ok()) return s;
    auto v = eval(line.operands[0]);
    if (!v.ok()) return v.status();
    if (v->value % 8 != 0 || v->value < 0 || v->value > 0x38) {
      return Status(ErrorCode::kOutOfRange, "bad rst vector");
    }
    if (v->value == 0x30) {
      return Status(ErrorCode::kInvalidArgument,
                    "rst 30h is MUL on the Rabbit");
    }
    emit(static_cast<u8>(0xC7 | v->value));
    return Status::ok();
  }

  Status do_in(const Line& line) {
    Status s = need_operands(line, 2);
    if (!s.is_ok()) return s;
    if (lower(line.operands[0]) != "a") {
      return Status(ErrorCode::kInvalidArgument, "in destination must be a");
    }
    auto op_r = parse_operand(line.operands[1]);
    if (!op_r.ok()) return op_r.status();
    if (op_r->kind != OpKind::kMemNn) {
      return Status(ErrorCode::kInvalidArgument, "in source must be (port)");
    }
    emit(0xDB);
    emit(static_cast<u8>(op_r->value & 0xFF));
    return Status::ok();
  }

  Status do_out(const Line& line) {
    Status s = need_operands(line, 2);
    if (!s.is_ok()) return s;
    auto op_r = parse_operand(line.operands[0]);
    if (!op_r.ok()) return op_r.status();
    if (op_r->kind != OpKind::kMemNn) {
      return Status(ErrorCode::kInvalidArgument, "out target must be (port)");
    }
    if (lower(line.operands[1]) != "a") {
      return Status(ErrorCode::kInvalidArgument, "out source must be a");
    }
    emit(0xD3);
    emit(static_cast<u8>(op_r->value & 0xFF));
    return Status::ok();
  }

  // lcall/ljp: one operand (physical label -> window addr + bank computed)
  // or two operands (explicit logical addr, xpc byte).
  Status do_far(const Line& line, bool is_call) {
    i64 logical, xpc;
    if (line.operands.size() == 1) {
      auto v = eval(line.operands[0]);
      if (!v.ok()) return v.status();
      logical = 0xE000 + (v->value & 0x0FFF);
      xpc = ((v->value >> 12) - 0x0E) & 0xFF;
    } else if (line.operands.size() == 2) {
      auto v1 = eval(line.operands[0]);
      if (!v1.ok()) return v1.status();
      auto v2 = eval(line.operands[1]);
      if (!v2.ok()) return v2.status();
      logical = v1->value;
      xpc = v2->value;
    } else {
      return Status(ErrorCode::kInvalidArgument, "bad lcall/ljp form");
    }
    emit2(0xED, is_call ? 0xCD : 0xC3);
    emit16(logical);
    emit(static_cast<u8>(xpc & 0xFF));
    return Status::ok();
  }

  const AssembleOptions& options_;
  AssembleOutput output_;
  std::map<std::string, i64> symbols_;
  std::vector<std::string> functions_;  // func-declared, pass-1 order
  int pass_ = 1;
  i64 addr_ = 0;
  bool xmem_mode_ = false;
  rabbit::ImageChunk* chunk_ = nullptr;
  std::vector<u8> emitted_;
  const Line* line_ = nullptr;
};

}  // namespace

Result<AssembleOutput> assemble(std::string_view source,
                                const AssembleOptions& options) {
  Assembler a(options);
  return a.assemble(source);
}

}  // namespace rmc::rasm
