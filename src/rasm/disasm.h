// Disassembler for the same Rabbit 2000 subset src/rabbit executes.
//
// Used by tests (assemble -> disassemble -> reassemble round trips), by
// debugging helpers, and by the compiler driver's --listing mode.
#pragma once

#include <cstddef>
#include <span>
#include <string>

#include "common/bytes.h"

namespace rmc::rasm {

struct DisasmResult {
  std::string text;     // e.g. "ld a, 05h"
  std::size_t length = 1;  // bytes consumed
  bool valid = false;
};

/// Decode a single instruction at `code[offset]`. `pc` is the logical
/// address of the instruction (needed for relative-branch targets).
DisasmResult disassemble_one(std::span<const common::u8> code,
                             std::size_t offset, common::u16 pc);

/// Decode a whole buffer into "ADDR  bytes  mnemonic" lines.
std::string disassemble_all(std::span<const common::u8> code,
                            common::u16 base_pc);

}  // namespace rmc::rasm
