// rasm — a two-pass assembler for the Rabbit 2000 subset implemented by
// src/rabbit.
//
// The paper's experiments hinge on comparing a hand-written assembly AES
// against compiled C (E1/E3); this assembler is how the hand-written version
// (asm/aes_hand.asm) and the compiler's output (src/dcc) both become
// runnable images.
//
// Syntax (classic Z80 style, case-insensitive mnemonics):
//
//   ; comment                       — to end of line
//   label:   ld a, 5                — labels get the current address
//   name     equ 40h                — symbolic constant
//            org 0100h              — logical placement (root/data/stack,
//                                     translated to physical with the board's
//                                     reset-time segment map)
//            xorg 10000h            — physical placement in extended memory;
//                                     labels defined here hold 20-bit
//                                     physical addresses
//            db 1, 2, "text", 0     — bytes / strings
//            dw 1234h, label        — little-endian words
//            ds 16                  — reserve zero-filled space
//            align 16               — pad to alignment
//            func aes_init, ks      — declare labels as function entry
//                                     points (recorded in Image::functions
//                                     for the telemetry cycle profiler;
//                                     emits nothing)
//
// Expressions: + - * / % & | ^ << >> ~, parentheses, decimal / 0x / trailing
// 'h' / $hex / %binary literals, 'c' chars, `$` = current address, and the
// bank helpers XPCOF(x) (XPC value that maps physical x into the window) and
// WINOF(x) (logical window address of physical x), HI(x), LO(x).
//
// Control-flow targets (jp/jr/call/djnz) pointing at xorg labels are
// translated to their window address automatically; `lcall`/`ljp` take the
// physical label directly and encode the bank byte themselves.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rabbit/image.h"

namespace rmc::rasm {

struct AssembleOptions {
  /// Logical address used before the first org directive.
  common::u32 default_org = 0x0100;
  /// Emit a listing (address / bytes / source) alongside the image.
  bool want_listing = false;
};

struct AssembleOutput {
  rabbit::Image image;
  std::string listing;
};

/// Assemble `source`. On error the Status message contains
/// "line N: <problem>" for the first failing line.
common::Result<AssembleOutput> assemble(std::string_view source,
                                        const AssembleOptions& options = {});

/// The board's logical->physical map (shared convention with
/// rabbit::Board::reset): root identity, data segment +0x7A000, stack
/// segment +0x81000. Logical addresses in the XPC window are rejected —
/// use xorg for extended memory.
common::Result<common::u32> board_logical_to_phys(common::u32 logical);

}  // namespace rmc::rasm
