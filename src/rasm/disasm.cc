#include "rasm/disasm.h"

#include <cstdarg>
#include <cstdio>

namespace rmc::rasm {

using common::u16;
using common::u8;

namespace {

const char* kR8[] = {"b", "c", "d", "e", "h", "l", "(hl)", "a"};
const char* kR16[] = {"bc", "de", "hl", "sp"};
const char* kCond[] = {"nz", "z", "nc", "c", "po", "pe", "p", "m"};
const char* kAlu[] = {"add a,", "adc a,", "sub", "sbc a,",
                      "and", "xor", "or", "cp"};
const char* kRot[] = {"rlc", "rrc", "rl", "rr", "sla", "sra", "sll?", "srl"};

std::string fmt(const char* f, ...) {
  char buf[64];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

struct Reader {
  std::span<const u8> code;
  std::size_t pos;
  bool overrun = false;

  u8 next() {
    if (pos >= code.size()) {
      overrun = true;
      return 0;
    }
    return code[pos++];
  }
  u16 next16() {
    const u8 lo = next();
    const u8 hi = next();
    return common::make16(lo, hi);
  }
};

std::string dis_cb(Reader& r) {
  const u8 op = r.next();
  const unsigned reg = op & 7;
  const unsigned bit = (op >> 3) & 7;
  switch (op >> 6) {
    case 0:
      if (bit == 6) return {};
      return fmt("%s %s", kRot[bit], kR8[reg]);
    case 1: return fmt("bit %u, %s", bit, kR8[reg]);
    case 2: return fmt("res %u, %s", bit, kR8[reg]);
    default: return fmt("set %u, %s", bit, kR8[reg]);
  }
}

std::string dis_ed(Reader& r) {
  const u8 op = r.next();
  switch (op) {
    case 0x42: case 0x52: case 0x62: case 0x72:
      return fmt("sbc hl, %s", kR16[(op >> 4) & 3]);
    case 0x4A: case 0x5A: case 0x6A: case 0x7A:
      return fmt("adc hl, %s", kR16[(op >> 4) & 3]);
    case 0x43: case 0x53: case 0x63: case 0x73:
      return fmt("ld (0%04xh), %s", r.next16(), kR16[(op >> 4) & 3]);
    case 0x4B: case 0x5B: case 0x6B: case 0x7B:
      return fmt("ld %s, (0%04xh)", kR16[(op >> 4) & 3], r.next16());
    case 0x44: return "neg";
    case 0x4D: return "reti";
    case 0x67: return "ld xpc, a";
    case 0x77: return "ld a, xpc";
    case 0x90: return "bool hl";
    case 0xA0: return "ldi";
    case 0xA8: return "ldd";
    case 0xB0: return "ldir";
    case 0xB8: return "lddr";
    case 0xC3: {
      const u16 nn = r.next16();
      return fmt("ljp 0%04xh, 0%02xh", nn, r.next());
    }
    case 0xCD: {
      const u16 nn = r.next16();
      return fmt("lcall 0%04xh, 0%02xh", nn, r.next());
    }
    case 0xC9: return "lret";
    default: return {};
  }
}

std::string dis_index(Reader& r, const char* xy) {
  const u8 op = r.next();
  if (op >= 0x40 && op <= 0x7F && op != 0x76) {
    const unsigned dst = (op >> 3) & 7;
    const unsigned src = op & 7;
    if (src == 6) {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("ld %s, (%s%+d)", kR8[dst], xy, d);
    }
    if (dst == 6) {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("ld (%s%+d), %s", xy, d, kR8[src]);
    }
    return {};
  }
  if (op >= 0x80 && op <= 0xBF && (op & 7) == 6) {
    const auto d = static_cast<common::i8>(r.next());
    return fmt("%s (%s%+d)", kAlu[(op >> 3) & 7], xy, d);
  }
  switch (op) {
    case 0x21: return fmt("ld %s, 0%04xh", xy, r.next16());
    case 0x22: return fmt("ld (0%04xh), %s", r.next16(), xy);
    case 0x2A: return fmt("ld %s, (0%04xh)", xy, r.next16());
    case 0x23: return fmt("inc %s", xy);
    case 0x2B: return fmt("dec %s", xy);
    case 0x09: return fmt("add %s, bc", xy);
    case 0x19: return fmt("add %s, de", xy);
    case 0x29: return fmt("add %s, %s", xy, xy);
    case 0x39: return fmt("add %s, sp", xy);
    case 0x34: {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("inc (%s%+d)", xy, d);
    }
    case 0x35: {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("dec (%s%+d)", xy, d);
    }
    case 0x36: {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("ld (%s%+d), 0%02xh", xy, d, r.next());
    }
    case 0xE1: return fmt("pop %s", xy);
    case 0xE5: return fmt("push %s", xy);
    case 0xE3: return fmt("ex (sp), %s", xy);
    case 0xE9: return fmt("jp (%s)", xy);
    case 0xF9: return fmt("ld sp, %s", xy);
    case 0xCB: {
      const auto d = static_cast<common::i8>(r.next());
      const u8 sub = r.next();
      if ((sub & 7) != 6) return {};
      const unsigned bit = (sub >> 3) & 7;
      switch (sub >> 6) {
        case 0:
          if (bit == 6) return {};
          return fmt("%s (%s%+d)", kRot[bit], xy, d);
        case 1: return fmt("bit %u, (%s%+d)", bit, xy, d);
        case 2: return fmt("res %u, (%s%+d)", bit, xy, d);
        default: return fmt("set %u, (%s%+d)", bit, xy, d);
      }
    }
    default: return {};
  }
}

std::string dis_main(Reader& r, u16 pc) {
  const u8 op = r.next();
  if (op >= 0x40 && op <= 0x7F) {
    if (op == 0x76) return "halt";
    return fmt("ld %s, %s", kR8[(op >> 3) & 7], kR8[op & 7]);
  }
  if (op >= 0x80 && op <= 0xBF) {
    return fmt("%s %s", kAlu[(op >> 3) & 7], kR8[op & 7]);
  }
  switch (op) {
    case 0x00: return "nop";
    case 0x01: return fmt("ld bc, 0%04xh", r.next16());
    case 0x11: return fmt("ld de, 0%04xh", r.next16());
    case 0x21: return fmt("ld hl, 0%04xh", r.next16());
    case 0x31: return fmt("ld sp, 0%04xh", r.next16());
    case 0x02: return "ld (bc), a";
    case 0x12: return "ld (de), a";
    case 0x0A: return "ld a, (bc)";
    case 0x1A: return "ld a, (de)";
    case 0x03: return "inc bc";
    case 0x13: return "inc de";
    case 0x23: return "inc hl";
    case 0x33: return "inc sp";
    case 0x0B: return "dec bc";
    case 0x1B: return "dec de";
    case 0x2B: return "dec hl";
    case 0x3B: return "dec sp";
    case 0x04: case 0x0C: case 0x14: case 0x1C:
    case 0x24: case 0x2C: case 0x34: case 0x3C:
      return fmt("inc %s", kR8[(op >> 3) & 7]);
    case 0x05: case 0x0D: case 0x15: case 0x1D:
    case 0x25: case 0x2D: case 0x35: case 0x3D:
      return fmt("dec %s", kR8[(op >> 3) & 7]);
    case 0x06: case 0x0E: case 0x16: case 0x1E:
    case 0x26: case 0x2E: case 0x36: case 0x3E:
      return fmt("ld %s, 0%02xh", kR8[(op >> 3) & 7], r.next());
    case 0x07: return "rlca";
    case 0x0F: return "rrca";
    case 0x17: return "rla";
    case 0x1F: return "rra";
    case 0x08: return "ex af, af'";
    case 0xD9: return "exx";
    case 0x09: case 0x19: case 0x29: case 0x39:
      return fmt("add hl, %s", kR16[(op >> 4) & 3]);
    case 0x10: {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("djnz 0%04xh", static_cast<u16>(pc + 2 + d));
    }
    case 0x18: {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("jr 0%04xh", static_cast<u16>(pc + 2 + d));
    }
    case 0x20: case 0x28: case 0x30: case 0x38: {
      const auto d = static_cast<common::i8>(r.next());
      return fmt("jr %s, 0%04xh", kCond[(op >> 3) & 3],
                 static_cast<u16>(pc + 2 + d));
    }
    case 0x22: return fmt("ld (0%04xh), hl", r.next16());
    case 0x2A: return fmt("ld hl, (0%04xh)", r.next16());
    case 0x32: return fmt("ld (0%04xh), a", r.next16());
    case 0x3A: return fmt("ld a, (0%04xh)", r.next16());
    case 0x27: return "daa";
    case 0x2F: return "cpl";
    case 0x37: return "scf";
    case 0x3F: return "ccf";
    case 0xC0: case 0xC8: case 0xD0: case 0xD8:
    case 0xE0: case 0xE8: case 0xF0: case 0xF8:
      return fmt("ret %s", kCond[(op >> 3) & 7]);
    case 0xC9: return "ret";
    case 0xC1: return "pop bc";
    case 0xD1: return "pop de";
    case 0xE1: return "pop hl";
    case 0xF1: return "pop af";
    case 0xC5: return "push bc";
    case 0xD5: return "push de";
    case 0xE5: return "push hl";
    case 0xF5: return "push af";
    case 0xC3: return fmt("jp 0%04xh", r.next16());
    case 0xC2: case 0xCA: case 0xD2: case 0xDA:
    case 0xE2: case 0xEA: case 0xF2: case 0xFA:
      return fmt("jp %s, 0%04xh", kCond[(op >> 3) & 7], r.next16());
    case 0xCD: return fmt("call 0%04xh", r.next16());
    case 0xC4: case 0xCC: case 0xD4: case 0xDC:
    case 0xE4: case 0xEC: case 0xF4: case 0xFC:
      return fmt("call %s, 0%04xh", kCond[(op >> 3) & 7], r.next16());
    case 0xC6: return fmt("add a, 0%02xh", r.next());
    case 0xCE: return fmt("adc a, 0%02xh", r.next());
    case 0xD6: return fmt("sub 0%02xh", r.next());
    case 0xDE: return fmt("sbc a, 0%02xh", r.next());
    case 0xE6: return fmt("and 0%02xh", r.next());
    case 0xEE: return fmt("xor 0%02xh", r.next());
    case 0xF6: return fmt("or 0%02xh", r.next());
    case 0xFE: return fmt("cp 0%02xh", r.next());
    case 0xC7: case 0xCF: case 0xD7: case 0xDF:
    case 0xE7: case 0xEF: case 0xFF:
      return fmt("rst 0%02xh", op & 0x38);
    case 0xF7: return "mul";
    case 0xD3: return fmt("out (0%02xh), a", r.next());
    case 0xDB: return fmt("in a, (0%02xh)", r.next());
    case 0xE3: return "ex (sp), hl";
    case 0xE9: return "jp (hl)";
    case 0xEB: return "ex de, hl";
    case 0xF9: return "ld sp, hl";
    case 0xF3: return "di";
    case 0xFB: return "ei";
    default: return {};
  }
}

}  // namespace

DisasmResult disassemble_one(std::span<const u8> code, std::size_t offset,
                             u16 pc) {
  DisasmResult res;
  if (offset >= code.size()) return res;
  Reader r{code, offset};
  const u8 op = code[offset];
  std::string text;
  switch (op) {
    case 0xCB: r.next(); text = dis_cb(r); break;
    case 0xED: r.next(); text = dis_ed(r); break;
    case 0xDD: r.next(); text = dis_index(r, "ix"); break;
    case 0xFD: r.next(); text = dis_index(r, "iy"); break;
    default: text = dis_main(r, pc); break;
  }
  if (text.empty() || r.overrun) {
    res.text = fmt("db 0%02xh", op);
    res.length = 1;
    res.valid = false;
    return res;
  }
  res.text = std::move(text);
  res.length = r.pos - offset;
  res.valid = true;
  return res;
}

std::string disassemble_all(std::span<const u8> code, u16 base_pc) {
  std::string out;
  std::size_t offset = 0;
  while (offset < code.size()) {
    const u16 pc = static_cast<u16>(base_pc + offset);
    DisasmResult one = disassemble_one(code, offset, pc);
    char head[16];
    std::snprintf(head, sizeof head, "%04X  ", pc);
    out += head;
    for (std::size_t i = 0; i < one.length; ++i) {
      char b[4];
      std::snprintf(b, sizeof b, "%02X", code[offset + i]);
      out += b;
    }
    out.resize(out.size() + (one.length < 5 ? (5 - one.length) * 2 : 1), ' ');
    out += ' ';
    out += one.text;
    out += '\n';
    offset += one.length;
  }
  return out;
}

}  // namespace rmc::rasm
