#include "abuse/hostile.h"

#include <algorithm>
#include <cstring>

#include "issl/session_cache.h"

namespace rmc::abuse {

namespace {

void put_u16(std::vector<u8>& out, u16 v) {
  out.push_back(static_cast<u8>(v >> 8));
  out.push_back(static_cast<u8>(v & 0xFF));
}

// Handshake message type codes (session.cc keeps them private; the attacker
// knows the wire protocol regardless).
constexpr u8 kMsgClientHello = 1;

}  // namespace

std::vector<u8> raw_record(u8 type, u8 version, u16 claimed_len,
                           std::span<const u8> body) {
  std::vector<u8> out;
  out.reserve(issl::kRecordHeaderBytes + body.size());
  out.push_back(type);
  out.push_back(version);
  put_u16(out, claimed_len);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<u8> plaintext_record(issl::RecordType type,
                                 std::span<const u8> body) {
  return raw_record(static_cast<u8>(type), issl::kIsslVersion,
                    static_cast<u16>(body.size()), body);
}

std::vector<u8> handshake_message(u8 msg_type, std::span<const u8> body) {
  std::vector<u8> out;
  out.reserve(3 + body.size());
  out.push_back(msg_type);
  put_u16(out, static_cast<u16>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<u8> client_hello_record(common::Xorshift64& rng,
                                    const issl::Config& cfg,
                                    const u8* session_id) {
  // Mirrors the client kickoff in Session::pump(): 32 random bytes, the
  // cipher-suite pair, and (when resumption is on) the optional
  // [id_len][id] offer.
  std::vector<u8> body(32);
  rng.fill(body);
  body.push_back(static_cast<u8>(cfg.key_exchange));
  body.push_back(static_cast<u8>(cfg.aes_key_bits / 8));
  if (cfg.resumption || session_id != nullptr) {
    body.push_back(session_id != nullptr
                       ? static_cast<u8>(issl::kSessionIdBytes)
                       : 0);
    if (session_id != nullptr) {
      body.insert(body.end(), session_id,
                  session_id + issl::kSessionIdBytes);
    }
  }
  return plaintext_record(issl::RecordType::kHandshake,
                          handshake_message(kMsgClientHello, body));
}

const char* behavior_name(Behavior b) {
  switch (b) {
    case Behavior::kMalformedRecord: return "malformed_record";
    case Behavior::kOversizedRecord: return "oversized_record";
    case Behavior::kTruncatedHandshake: return "truncated_handshake";
    case Behavior::kSlowDrip: return "slow_drip";
    case Behavior::kClientHelloStorm: return "hello_storm";
    case Behavior::kMidHandshakeReset: return "mid_reset";
    case Behavior::kSynFlood: return "syn_flood";
    case Behavior::kResumptionThrash: return "resumption_thrash";
  }
  return "?";
}

HostileClient::HostileClient(net::TcpStack& stack, net::SimNet& medium,
                             net::IpAddr server_ip, net::Port server_port,
                             u64 seed, Options opts)
    : stack_(stack),
      medium_(medium),
      server_ip_(server_ip),
      server_port_(server_port),
      rng_(seed),
      opts_(opts) {
  if (opts_.behavior == Behavior::kSynFlood) phase_ = Phase::kAct;
}

bool HostileClient::conn_dead() {
  return sock_ < 0 || !stack_.is_open(sock_) || stack_.was_reset(sock_);
}

void HostileClient::drain_recv() {
  if (sock_ < 0) return;
  u8 scratch[256];
  auto r = stack_.recv(sock_, scratch);
  // A graceful server close (FIN, not RST) reads as EOF; for the attacker
  // that's the same verdict — the server has hung up on us.
  if (r.ok() && r.value() == 0) peer_eof_ = true;
}

void HostileClient::send_bytes(std::span<const u8> bytes) {
  if (sock_ < 0) return;
  auto r = stack_.send(sock_, bytes);
  if (r.ok()) stats_.bytes_sent += r.value();
}

void HostileClient::start_round() {
  if (round_ >= opts_.rounds) {
    phase_ = Phase::kDone;
    return;
  }
  auto r = stack_.connect(server_ip_, server_port_);
  if (!r.ok()) {
    phase_ = Phase::kDone;
    return;
  }
  sock_ = r.value();
  ++stats_.conns_attempted;
  phase_ = Phase::kWaitEstablished;
  phase_polls_ = 0;
  act_step_ = 0;
  peer_eof_ = false;
  drip_buffer_.clear();
  drip_sent_ = 0;
}

void HostileClient::finish_round(bool abort_conn) {
  if (sock_ >= 0) {
    if (stack_.was_reset(sock_)) ++stats_.resets_seen;
    if (abort_conn && stack_.is_open(sock_)) stack_.abort(sock_);
    stack_.reap(sock_);
    sock_ = -1;
  }
  ++round_;
  ++stats_.rounds_done;
  phase_ = Phase::kConnect;
  phase_polls_ = 0;
}

void HostileClient::spoof_syns() {
  for (int i = 0; i < opts_.flood_syns_per_poll; ++i) {
    net::Segment syn;
    // Sources nobody answers from: addresses with no attached endpoint, so
    // the listener's SYN-ACKs die as no-host drops and the embryo can only
    // be reclaimed by timeout / retx give-up — the classic spoofed flood.
    syn.src_ip = 0x0A00'0000u + rng_.next_below(4096);
    syn.dst_ip = server_ip_;
    syn.src_port = static_cast<net::Port>(1024 + rng_.next_below(60000));
    syn.dst_port = server_port_;
    syn.seq = rng_.next_u32();
    syn.flags = net::TcpFlags::kSyn;
    medium_.send(syn);
    ++stats_.syns_spoofed;
  }
  if (++flood_polls_done_ >= opts_.flood_polls) phase_ = Phase::kDone;
}

void HostileClient::act_once() {
  // Drain whatever the server sent (ServerHello, alerts) so our half of the
  // conversation looks alive; the bytes themselves are irrelevant.
  drain_recv();
  if (conn_dead() || peer_eof_) {
    finish_round(true);
    return;
  }

  switch (opts_.behavior) {
    case Behavior::kMalformedRecord: {
      // One structural insult per poll; the first already poisons the
      // server's codec, the rest land on a dying connection.
      static constexpr int kSteps = 4;
      u8 garbage[32];
      rng_.fill(garbage);
      std::span<const u8> g(garbage);
      switch (act_step_) {
        case 0:  // wrong protocol version
          send_bytes(raw_record(1, 0x31, 4, g.subspan(0, 4)));
          break;
        case 1:  // impossible record type
          send_bytes(raw_record(static_cast<u8>(rng_.chance(0.5) ? 0 : 9),
                                issl::kIsslVersion, 8, g.subspan(0, 8)));
          break;
        case 2:  // valid framing, garbage handshake body
          send_bytes(plaintext_record(issl::RecordType::kHandshake,
                                      g.subspan(0, 16)));
          break;
        default:  // raw noise, not even a header
          send_bytes(g);
          break;
      }
      ++stats_.records_sent;
      if (++act_step_ >= kSteps) {
        phase_ = Phase::kLinger;
        phase_polls_ = 0;
      }
      break;
    }
    case Behavior::kOversizedRecord: {
      u8 few[8];
      rng_.fill(few);
      const u16 claim = act_step_ == 0
                            ? 0xFFFF
                            : static_cast<u16>(issl::kMaxRecordLen + 1);
      send_bytes(raw_record(static_cast<u8>(issl::RecordType::kHandshake),
                            issl::kIsslVersion, claim, few));
      ++stats_.records_sent;
      if (++act_step_ >= 2) {
        phase_ = Phase::kLinger;
        phase_polls_ = 0;
      }
      break;
    }
    case Behavior::kTruncatedHandshake: {
      std::vector<u8> msg;
      if (round_ % 2 == 0) {
        // Promise 300 body bytes, deliver 10, go silent: the reassembly
        // buffer holds the fragment until a watchdog reaps the slot.
        msg.push_back(kMsgClientHello);
        put_u16(msg, 300);
        for (int i = 0; i < 10; ++i) msg.push_back(rng_.next_u8());
      } else {
        // The length bomb: a claim past kMaxHandshakeBody must be refused
        // up front (alert + close), not buffered toward.
        msg.push_back(kMsgClientHello);
        put_u16(msg, 0xFFFF);
        msg.push_back(0xAA);
      }
      send_bytes(plaintext_record(issl::RecordType::kHandshake, msg));
      ++stats_.records_sent;
      phase_ = Phase::kLinger;
      phase_polls_ = 0;
      break;
    }
    case Behavior::kSlowDrip: {
      if (drip_buffer_.empty()) {
        drip_buffer_ = client_hello_record(rng_, opts_.tls, nullptr);
        drip_sent_ = 0;
      }
      // Trickle the hello but never finish it (the last two bytes stay
      // ours forever): pure Slowloris against the handshake budget.
      const std::size_t stop = drip_buffer_.size() - 2;
      if (drip_sent_ < stop &&
          phase_polls_ % opts_.drip_interval_polls == 0) {
        const std::size_t n =
            std::min(opts_.drip_bytes, stop - drip_sent_);
        send_bytes(std::span<const u8>(drip_buffer_).subspan(drip_sent_, n));
        drip_sent_ += n;
      }
      if (drip_sent_ >= stop) {
        ++stats_.records_sent;  // one (never-completed) record shipped
        phase_ = Phase::kLinger;
        phase_polls_ = 0;
      }
      break;
    }
    case Behavior::kClientHelloStorm: {
      // A fresh hello every poll: the first is legal, every repeat is an
      // "unexpected ClientHello" the server must refuse.
      send_bytes(client_hello_record(rng_, opts_.tls, nullptr));
      ++stats_.records_sent;
      if (++act_step_ >= opts_.storm_hellos) {
        phase_ = Phase::kLinger;
        phase_polls_ = 0;
      }
      break;
    }
    case Behavior::kMidHandshakeReset: {
      if (act_step_ == 0) {
        send_bytes(client_hello_record(rng_, opts_.tls, nullptr));
        ++stats_.records_sent;
      }
      // Give the ServerHello a few polls to arrive, then RST in its face.
      if (++act_step_ >= 4) finish_round(/*abort_conn=*/true);
      break;
    }
    case Behavior::kResumptionThrash: {
      if (act_step_ == 0) {
        u8 bogus[issl::kSessionIdBytes];
        rng_.fill(bogus);
        issl::Config cfg = opts_.tls;
        cfg.resumption = true;
        send_bytes(client_hello_record(rng_, cfg, bogus));
        ++stats_.records_sent;
      }
      // Every offer is a guaranteed cache miss; abandon once the server
      // has paid for the lookup and its ServerHello.
      if (++act_step_ >= 6) finish_round(/*abort_conn=*/true);
      break;
    }
    case Behavior::kSynFlood:
      break;  // handled in poll() without a connection
  }
}

bool HostileClient::poll() {
  if (phase_ == Phase::kDone) return false;
  ++phase_polls_;

  if (opts_.behavior == Behavior::kSynFlood) {
    spoof_syns();
    return phase_ != Phase::kDone;
  }

  switch (phase_) {
    case Phase::kConnect:
      if (round_ == 0 || phase_polls_ > opts_.reconnect_delay_polls) {
        start_round();
      }
      break;
    case Phase::kWaitEstablished:
      if (sock_ >= 0 && stack_.is_established(sock_)) {
        ++stats_.conns_established;
        phase_ = Phase::kAct;
        phase_polls_ = 0;
        act_step_ = 0;
      } else if (conn_dead() || phase_polls_ > opts_.wait_budget_polls) {
        finish_round(/*abort_conn=*/true);
      }
      break;
    case Phase::kAct:
      act_once();
      break;
    case Phase::kLinger: {
      // Sit on the connection until the server kills it — RST or a
      // graceful FIN both count — or our own give-up budget expires: the
      // attacker must never be the reason the bench loop can't settle.
      drain_recv();
      if (conn_dead() || peer_eof_ ||
          phase_polls_ > opts_.wait_budget_polls) {
        finish_round(/*abort_conn=*/true);
      }
      break;
    }
    case Phase::kDone:
      break;
  }
  return phase_ != Phase::kDone;
}

}  // namespace rmc::abuse
