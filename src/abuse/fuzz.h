// Host-native coverage-guided fuzzer for the issl parse paths — no
// libFuzzer, no sanitizer runtime, no process forking: just the repo's own
// seeded PRNG mutating bytes and a cheap coverage signal, so a fuzz run is
// a deterministic function of (seed, iterations) and can gate CI.
//
// Targets:
//   * record codec, null-cipher phase  — header parsing, reassembly bounds
//   * record codec, sealed phase       — CBC shape, unpad, MAC framing
//   * server Session over a ScriptedStream — the full front door a hostile
//     ClientHello reaches, resumption offers included
//
// Coverage signal: observable-feature edges. Each execution emits a set of
// u64 features — every (state -> state) transition the session took, plus
// bucketed outcome facts (error code, handshake messages, bytes the server
// wrote back, poisoned/malformed counts). An input that produces any
// feature the global map has not seen is "interesting" and joins the
// corpus. This is deliberately not branch coverage — it needs no
// instrumentation and stays bit-stable across compilers — but it drives the
// same feedback loop: mutants that reach new protocol behavior breed.
//
// The invariant the fuzzer exists to enforce: NO input may wedge a session.
// Every execution must reach a terminal state (failed/closed/established)
// within the pump budget; the stall watchdog is configured tight, so a
// "wedge" verdict means attacker bytes found a shape the watchdog misses.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/prng.h"
#include "issl/record.h"
#include "issl/session.h"
#include "issl/stream.h"

namespace rmc::abuse {

using common::u64;
using common::u8;

/// In-memory ByteStream: doles out a scripted input in fixed-size chunks
/// (modelling TCP segmentation) and captures everything the session writes.
/// After the input is exhausted it either reports kUnavailable forever (a
/// peer gone silent — the stall watchdog's problem) or EOF (peer closed).
class ScriptedStream final : public issl::ByteStream {
 public:
  explicit ScriptedStream(std::vector<u8> input, std::size_t chunk = 64,
                          bool eof_after_input = false)
      : input_(std::move(input)),
        chunk_(chunk == 0 ? 1 : chunk),
        eof_after_input_(eof_after_input) {}

  common::Result<std::size_t> write(std::span<const u8> data) override;
  common::Result<std::size_t> read(std::span<u8> out) override;
  bool open() const override { return open_; }
  void close() override { open_ = false; }

  const std::vector<u8>& written() const { return written_; }
  bool exhausted() const { return pos_ >= input_.size(); }

 private:
  std::vector<u8> input_;
  std::size_t pos_ = 0;
  std::size_t chunk_;
  bool eof_after_input_;
  std::vector<u8> written_;
  bool open_ = true;
};

enum class FuzzTarget : u8 {
  kRecordPlain = 0,
  kRecordSealed = 1,
  kSession = 2,
};

/// Outcome of one input execution.
struct FuzzResult {
  FuzzTarget target = FuzzTarget::kSession;
  bool wedged = false;     // no terminal state within the pump budget
  bool poisoned = false;   // record targets: codec latched poisoned
  u64 malformed = 0;       // codec-refused structural garbage
  int final_state = 0;     // issl::SessionState (session target)
  int error_code = 0;      // common::ErrorCode of the latched error
  u64 signature = 0;       // hash of the full feature set
  std::size_t pumps = 0;
  std::vector<u64> features;  // coverage features this run produced
};

struct FuzzStats {
  u64 iterations = 0;
  u64 wedges = 0;
  u64 session_failures = 0;
  u64 session_closed = 0;
  u64 session_established = 0;
  u64 record_poisons = 0;
  u64 malformed_records = 0;
  u64 new_feature_events = 0;  // iterations that grew the coverage map
  u64 coverage_features = 0;   // final map size
  u64 corpus_size = 0;
};

class Fuzzer {
 public:
  explicit Fuzzer(u64 seed) : rng_(seed ? seed : 1) {}

  /// Seed corpus management. add_default_seeds() installs protocol-shaped
  /// starting points (valid hello, resumption offer, alert, truncated and
  /// oversized frames) built from the hostile.h crafting helpers.
  void add_seed_input(std::vector<u8> input);
  void add_default_seeds();

  /// Run `iterations` mutate-execute-judge cycles (the first call replays
  /// the seed corpus once to baseline the coverage map). Deterministic for
  /// a given (constructor seed, call sequence).
  FuzzStats run(std::size_t iterations);

  /// Single-input execution, shared with the regression-corpus tests.
  FuzzResult run_record_target(std::span<const u8> input, bool sealed);
  FuzzResult run_session_target(std::span<const u8> input,
                                bool eof_after_input);

  const FuzzStats& stats() const { return stats_; }
  const std::vector<std::vector<u8>>& corpus() const { return corpus_; }
  const std::vector<std::vector<u8>>& wedge_inputs() const {
    return wedge_inputs_;
  }

  /// One mutation step (exposed for tests: determinism, shrinking).
  std::vector<u8> mutate(const std::vector<u8>& base);

 private:
  void execute_and_judge(const std::vector<u8>& input);
  std::size_t note_features(const FuzzResult& r);  // returns # new features

  common::Xorshift64 rng_;
  std::vector<std::vector<u8>> corpus_;
  std::vector<std::vector<u8>> wedge_inputs_;
  std::set<u64> features_;
  FuzzStats stats_;
  bool baselined_ = false;
};

/// Read a regression-corpus file (tests/corpus/issl/*.bin). Empty vector if
/// the file cannot be read — callers treat that as a test failure.
std::vector<u8> load_corpus_file(const std::string& path);

}  // namespace rmc::abuse
