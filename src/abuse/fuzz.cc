#include "abuse/fuzz.h"

#include <algorithm>
#include <fstream>

#include "abuse/hostile.h"
#include "issl/session_cache.h"

namespace rmc::abuse {

namespace {

// Feature-space encoding: [target:8][kind:8][value:48]. Keeping the target
// in the feature means "session reached FAILED" and "sealed codec poisoned"
// are distinct coverage, as they should be.
enum FeatKind : u8 {
  kFeatStateEdge = 1,   // (from_state << 8) | to_state
  kFeatErrorCode = 2,
  kFeatHsMessages = 3,  // exact count (small by construction)
  kFeatWroteBack = 4,   // log2 bucket of bytes the server wrote
  kFeatPoisoned = 5,
  kFeatMalformed = 6,   // log2 bucket
  kFeatOpened = 7,      // records successfully opened (exact, capped)
  kFeatBuffered = 8,    // log2 bucket of bytes left in reassembly
  kFeatWedged = 9,
};

u64 feat(FuzzTarget t, u8 kind, u64 value) {
  return (static_cast<u64>(t) << 56) | (static_cast<u64>(kind) << 48) |
         (value & 0xFFFF'FFFF'FFFFULL);
}

u64 log2_bucket(u64 v) {
  u64 b = 0;
  while (v != 0) {
    v >>= 1;
    ++b;
  }
  return b;
}

u64 mix(u64 h, u64 v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

u64 signature_of(const std::vector<u64>& features) {
  u64 h = 0xCBF29CE484222325ULL;
  for (u64 f : features) h = mix(h, f);
  return h;
}

// Fixed seeds for the *target-side* PRNGs: the server's randoms and the
// codec's IVs must be a function of the input alone, or the same input
// would produce different coverage on different iterations and the corpus
// would fill with noise.
constexpr u64 kSessionRngSeed = 0xFEEDFACE0000ABCDULL;
constexpr u64 kCodecRngSeed = 0x00C0FFEE00C0FFEEULL;

// The one resumable entry primed into the fuzz server's cache: a seed input
// offering this ID exercises the abbreviated-handshake path, and mutants of
// it exercise every way that offer can go wrong.
constexpr u8 kPrimedId = 0x11;
constexpr u8 kPrimedMaster = 0x22;

}  // namespace

common::Result<std::size_t> ScriptedStream::write(std::span<const u8> data) {
  // Capture everything, even post-close: an alert racing a teardown is
  // still bytes the server chose to emit, and the judge wants to see them.
  written_.insert(written_.end(), data.begin(), data.end());
  return data.size();
}

common::Result<std::size_t> ScriptedStream::read(std::span<u8> out) {
  if (pos_ >= input_.size()) {
    if (eof_after_input_) return static_cast<std::size_t>(0);
    return common::Status(common::ErrorCode::kUnavailable, "no data");
  }
  const std::size_t n =
      std::min({chunk_, input_.size() - pos_, out.size()});
  std::copy_n(input_.begin() + static_cast<long>(pos_), n, out.begin());
  pos_ += n;
  return n;
}

void Fuzzer::add_seed_input(std::vector<u8> input) {
  corpus_.push_back(std::move(input));
}

void Fuzzer::add_default_seeds() {
  // Seeds use their own fixed-seed PRNG so the corpus is identical no
  // matter when they are added relative to run() calls.
  common::Xorshift64 srng(0xABCD1234ULL);
  issl::Config plain = issl::Config::embedded_port();
  issl::Config res = plain;
  res.resumption = true;
  u8 primed_id[issl::kSessionIdBytes];
  std::fill(std::begin(primed_id), std::end(primed_id), kPrimedId);

  // The happy paths (the fuzzer breeds the unhappy ones from them).
  add_seed_input(client_hello_record(srng, plain, nullptr));
  add_seed_input(client_hello_record(srng, res, nullptr));
  add_seed_input(client_hello_record(srng, res, primed_id));

  // A clean close_notify alert.
  const u8 close_note[] = {0};
  add_seed_input(plaintext_record(issl::RecordType::kAlert, close_note));

  // A handshake message promising more than it delivers.
  std::vector<u8> truncated = {1, 0x01, 0x2C};  // claims 300 bytes
  for (int i = 0; i < 10; ++i) truncated.push_back(srng.next_u8());
  add_seed_input(
      plaintext_record(issl::RecordType::kHandshake, truncated));

  // Headers the codec must refuse outright.
  u8 few[4];
  srng.fill(few);
  add_seed_input(raw_record(1, issl::kIsslVersion, 0xFFFF, few));
  add_seed_input(raw_record(1, 0x31, 1, std::span<const u8>(few, 1)));

  // Unstructured noise.
  std::vector<u8> noise(40);
  srng.fill(noise);
  add_seed_input(std::move(noise));
}

FuzzResult Fuzzer::run_record_target(std::span<const u8> input,
                                     bool sealed) {
  FuzzResult r;
  r.target = sealed ? FuzzTarget::kRecordSealed : FuzzTarget::kRecordPlain;
  common::Xorshift64 crng(kCodecRngSeed);
  issl::RecordCodec codec(crng);
  if (sealed) {
    issl::DirectionKeys keys;
    keys.aes_key.assign(16, 0x5A);
    keys.mac_key.fill(0xA5);
    (void)codec.activate_keys(keys, keys);
  }

  // Feed in input-derived chunk sizes (TCP never promises record-aligned
  // delivery) and drain eagerly, like flush_and_fill does.
  const std::size_t chunk = 5 + input.size() % 23;
  std::size_t pos = 0;
  u64 opened = 0;
  while (pos < input.size()) {
    const std::size_t n = std::min(chunk, input.size() - pos);
    common::Status fed = codec.feed(input.subspan(pos, n));
    pos += n;
    if (!fed.is_ok()) break;  // reassembly overflow refused
    for (int i = 0; i < 64; ++i) {
      auto popped = codec.pop();
      if (!popped.ok() || !popped.value().has_value()) break;
      ++opened;
    }
    if (codec.poisoned()) break;
  }

  r.poisoned = codec.poisoned();
  r.malformed = codec.malformed_records();
  r.features.push_back(feat(r.target, kFeatPoisoned, r.poisoned ? 1 : 0));
  r.features.push_back(
      feat(r.target, kFeatMalformed, log2_bucket(r.malformed)));
  r.features.push_back(feat(r.target, kFeatOpened, std::min<u64>(opened, 64)));
  r.features.push_back(
      feat(r.target, kFeatBuffered, log2_bucket(codec.buffered_bytes())));
  r.signature = signature_of(r.features);
  return r;
}

FuzzResult Fuzzer::run_session_target(std::span<const u8> input,
                                      bool eof_after_input) {
  FuzzResult r;
  r.target = FuzzTarget::kSession;

  const std::size_t chunk = 1 + input.size() % 57;
  ScriptedStream stream(std::vector<u8>(input.begin(), input.end()), chunk,
                        eof_after_input);

  issl::Config cfg = issl::Config::embedded_port();
  cfg.resumption = true;
  // Tight watchdog budgets: the wedge invariant is only as strong as the
  // bound it is checked against, and 64 no-progress pumps inside a 400-pump
  // budget leaves room to verify the watchdog actually fired.
  cfg.handshake_stall_limit = 64;
  cfg.record_stall_limit = 64;

  issl::SessionCache cache(4);
  u8 id[issl::kSessionIdBytes];
  u8 master[issl::kMasterSecretBytes];
  std::fill(std::begin(id), std::end(id), kPrimedId);
  std::fill(std::begin(master), std::end(master), kPrimedMaster);
  cache.insert(id, master, static_cast<u8>(issl::KeyExchange::kPsk), 16);

  issl::ServerIdentity ident;
  ident.psk = {'f', 'u', 'z', 'z'};
  ident.session_cache = &cache;

  common::Xorshift64 srng(kSessionRngSeed);
  issl::Session session = issl::Session::server(cfg, stream, srng, ident);

  constexpr std::size_t kPumpBudget = 400;
  int prev = static_cast<int>(session.state());
  bool terminal = false;
  while (r.pumps < kPumpBudget) {
    ++r.pumps;
    (void)session.pump();
    const int now = static_cast<int>(session.state());
    if (now != prev) {
      r.features.push_back(
          feat(r.target, kFeatStateEdge,
               (static_cast<u64>(prev) << 8) | static_cast<u64>(now)));
      prev = now;
    }
    if (session.failed() || session.closed() || session.established()) {
      terminal = true;
      break;
    }
  }

  r.final_state = prev;
  r.error_code = static_cast<int>(session.error().code());
  r.wedged = !terminal;
  r.features.push_back(
      feat(r.target, kFeatErrorCode, static_cast<u64>(r.error_code)));
  r.features.push_back(
      feat(r.target, kFeatHsMessages,
           std::min<std::size_t>(session.handshake_messages_seen(), 64)));
  r.features.push_back(
      feat(r.target, kFeatWroteBack,
           log2_bucket(stream.written().size())));
  if (r.wedged) r.features.push_back(feat(r.target, kFeatWedged, 1));
  r.signature = signature_of(r.features);
  return r;
}

std::size_t Fuzzer::note_features(const FuzzResult& r) {
  std::size_t fresh = 0;
  for (u64 f : r.features) {
    if (features_.insert(f).second) ++fresh;
  }
  return fresh;
}

std::vector<u8> Fuzzer::mutate(const std::vector<u8>& base) {
  std::vector<u8> m = base;
  if (m.empty()) {
    m.resize(1 + rng_.next_below(32));
    rng_.fill(m);
    return m;
  }
  const u32 rounds = 1 + rng_.next_below(3);
  for (u32 round = 0; round < rounds; ++round) {
    switch (rng_.next_below(7)) {
      case 0: {  // flip one bit
        const std::size_t i = rng_.next_below(static_cast<u32>(m.size()));
        m[i] ^= static_cast<u8>(1u << rng_.next_below(8));
        break;
      }
      case 1: {  // rewrite one byte
        m[rng_.next_below(static_cast<u32>(m.size()))] = rng_.next_u8();
        break;
      }
      case 2: {  // truncate
        m.resize(1 + rng_.next_below(static_cast<u32>(m.size())));
        break;
      }
      case 3: {  // insert noise
        const std::size_t at = rng_.next_below(static_cast<u32>(m.size()) + 1);
        u8 noise[8];
        rng_.fill(noise);
        m.insert(m.begin() + static_cast<long>(at), noise,
                 noise + 1 + rng_.next_below(8));
        break;
      }
      case 4: {  // length-field surgery on the record header
        if (m.size() >= issl::kRecordHeaderBytes) {
          static constexpr u16 kMagic[] = {
              0, 1, 2, 16, 16384, 16432, 16448, 16449, 0x8000, 0xFFFF};
          const u16 v = kMagic[rng_.next_below(10)];
          m[2] = static_cast<u8>(v >> 8);
          m[3] = static_cast<u8>(v & 0xFF);
        } else {
          m.push_back(rng_.next_u8());
        }
        break;
      }
      case 5: {  // splice head of this with tail of another corpus entry
        if (!corpus_.empty()) {
          const std::vector<u8>& other =
              corpus_[rng_.next_below(static_cast<u32>(corpus_.size()))];
          if (!other.empty()) {
            const std::size_t keep =
                rng_.next_below(static_cast<u32>(m.size()) + 1);
            const std::size_t from =
                rng_.next_below(static_cast<u32>(other.size()));
            m.resize(keep);
            m.insert(m.end(), other.begin() + static_cast<long>(from),
                     other.end());
          }
        }
        break;
      }
      default: {  // duplicate a slice in place
        const std::size_t at = rng_.next_below(static_cast<u32>(m.size()));
        const std::size_t n =
            std::min<std::size_t>(1 + rng_.next_below(16), m.size() - at);
        std::vector<u8> slice(m.begin() + static_cast<long>(at),
                              m.begin() + static_cast<long>(at + n));
        m.insert(m.begin() + static_cast<long>(at), slice.begin(),
                 slice.end());
        break;
      }
    }
  }
  if (m.size() > 4096) m.resize(4096);  // keep iterations cheap
  return m;
}

void Fuzzer::execute_and_judge(const std::vector<u8>& input) {
  const u32 pick = rng_.next_below(4);
  FuzzResult r;
  if (pick == 0) {
    r = run_record_target(input, /*sealed=*/false);
  } else if (pick == 1) {
    r = run_record_target(input, /*sealed=*/true);
  } else {
    r = run_session_target(input, /*eof_after_input=*/pick == 3);
  }

  ++stats_.iterations;
  stats_.malformed_records += r.malformed;
  if (r.poisoned) ++stats_.record_poisons;
  if (r.target == FuzzTarget::kSession) {
    if (r.final_state == static_cast<int>(issl::SessionState::kFailed)) {
      ++stats_.session_failures;
    } else if (r.final_state ==
               static_cast<int>(issl::SessionState::kClosed)) {
      ++stats_.session_closed;
    } else if (r.final_state ==
               static_cast<int>(issl::SessionState::kEstablished)) {
      ++stats_.session_established;
    }
  }
  if (r.wedged) {
    ++stats_.wedges;
    if (wedge_inputs_.size() < 16) {
      wedge_inputs_.emplace_back(input.begin(), input.end());
    }
  }
  if (note_features(r) > 0) {
    ++stats_.new_feature_events;
    if (corpus_.size() < 128) {
      corpus_.emplace_back(input.begin(), input.end());
    }
  }
}

FuzzStats Fuzzer::run(std::size_t iterations) {
  if (!baselined_) {
    // Replay the seed corpus through every target once so the coverage map
    // starts from "known protocol behavior" and novelty means novelty.
    const std::size_t n_seeds = corpus_.size();
    for (std::size_t i = 0; i < n_seeds; ++i) {
      const std::vector<u8> seed = corpus_[i];  // copy: corpus_ may grow
      for (FuzzResult r : {run_record_target(seed, false),
                           run_record_target(seed, true),
                           run_session_target(seed, false)}) {
        ++stats_.iterations;
        if (r.wedged) ++stats_.wedges;
        note_features(r);
      }
    }
    baselined_ = true;
  }

  for (std::size_t i = 0; i < iterations; ++i) {
    if (corpus_.empty()) corpus_.push_back({});
    const std::vector<u8> base =
        corpus_[rng_.next_below(static_cast<u32>(corpus_.size()))];
    execute_and_judge(mutate(base));
  }

  stats_.coverage_features = features_.size();
  stats_.corpus_size = corpus_.size();
  return stats_;
}

std::vector<u8> load_corpus_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<u8>(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
}

}  // namespace rmc::abuse
