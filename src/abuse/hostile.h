// Hostile-peer library: deterministic, seeded attacker behaviors against the
// issl/TCP front door (ROADMAP item 5, DESIGN.md §13).
//
// PR 2's FaultPlan made the *network* hostile; everything here makes the
// *peer* hostile. Each HostileClient is a small scripted state machine that
// speaks just enough TCP/issl to reach the code path it attacks, driven one
// poll() per scheduler tick so a whole abuse mix stays byte-reproducible
// from one seed. The crafting helpers below are shared with the fuzzer
// (abuse/fuzz.h) and the regression tests — one definition of "what a
// malformed record looks like" for the whole tree.
//
// None of this machinery touches the stacks unless constructed: linking the
// library into every bench changes nothing (the check.sh baseline gate
// proves it byte-for-byte).
#pragma once

#include <vector>

#include "common/prng.h"
#include "issl/config.h"
#include "issl/record.h"
#include "issl/session.h"
#include "net/simnet.h"
#include "net/tcp.h"

namespace rmc::abuse {

using common::u16;
using common::u32;
using common::u64;
using common::u8;

// ---------------------------------------------------------------------------
// Wire-crafting helpers (attacker's view of the issl framing)
// ---------------------------------------------------------------------------

/// A raw record with every header field attacker-controlled: the claimed
/// length is written verbatim, independent of how many body bytes follow.
std::vector<u8> raw_record(u8 type, u8 version, u16 claimed_len,
                           std::span<const u8> body);

/// A correctly framed plaintext (null-cipher phase) record.
std::vector<u8> plaintext_record(issl::RecordType type,
                                 std::span<const u8> body);

/// One handshake message [u8 msg_type][u16 len][body] with an honest length.
std::vector<u8> handshake_message(u8 msg_type, std::span<const u8> body);

/// A protocol-valid ClientHello *record* for `cfg` (fresh random from
/// `rng`). `session_id` null = no resumption field when cfg.resumption is
/// off, an empty offer when on; non-null = offer these 16 bytes.
std::vector<u8> client_hello_record(common::Xorshift64& rng,
                                    const issl::Config& cfg,
                                    const u8* session_id);

// ---------------------------------------------------------------------------
// Scripted attacker behaviors
// ---------------------------------------------------------------------------

enum class Behavior {
  /// Structurally bad records once connected: wrong version, impossible
  /// type, garbage bodies. The server must alert+close (poisoned codec),
  /// never parse garbage as data.
  kMalformedRecord,
  /// Record headers claiming lengths past kMaxRecordLen — the
  /// attacker-supplied length field the hardening refuses up front.
  kOversizedRecord,
  /// A handshake message header promising bytes that never come (plus the
  /// 64 KB length-bomb variant): the stall watchdog / handshake timeout
  /// must reap the slot.
  kTruncatedHandshake,
  /// A valid ClientHello delivered one byte at a time, slower than any
  /// honest link: Slowloris against the handshake-timeout budget.
  kSlowDrip,
  /// Valid hellos, then more hellos: a renegotiation/ClientHello storm.
  /// Each extra hello is protocol-invalid and must be refused; the
  /// reconnect churn is the load.
  kClientHelloStorm,
  /// RST mid-handshake, over and over — the abandoned-handshake churn that
  /// leaks slots if any cleanup path is missing.
  kMidHandshakeReset,
  /// Spoofed-source SYNs injected straight onto the medium against the
  /// counted listener backlog. No TCP state on the attacker side at all.
  kSynFlood,
  /// ClientHellos offering random bogus session IDs: resumption-cache
  /// lookup thrash (every offer misses), then abandon the handshake.
  kResumptionThrash,
};

const char* behavior_name(Behavior b);

struct HostileStats {
  u64 conns_attempted = 0;
  u64 conns_established = 0;  // TCP-level
  u64 rounds_done = 0;
  u64 bytes_sent = 0;
  u64 records_sent = 0;
  u64 resets_seen = 0;   // our connection was RST/killed by the server side
  u64 syns_spoofed = 0;  // kSynFlood only
};

class HostileClient {
 public:
  struct Options {
    Behavior behavior = Behavior::kMalformedRecord;
    /// Reconnect cycles (ignored by kSynFlood).
    int rounds = 1;
    /// Polls to wait before redialing between rounds. Spacing the rounds
    /// out keeps an attacker relevant across the victim's whole busy/idle
    /// cycle instead of burning every round into a full accept queue in the
    /// first few ticks.
    u64 reconnect_delay_polls = 40;
    /// kSlowDrip: polls between bytes, and bytes per drip.
    u32 drip_interval_polls = 8;
    std::size_t drip_bytes = 1;
    /// kClientHelloStorm: hellos pushed per connection.
    int storm_hellos = 6;
    /// kSynFlood: spoofed SYNs injected per poll, and for how many polls.
    int flood_syns_per_poll = 2;
    u64 flood_polls = 1000;
    /// Per-phase poll budget: the attacker itself must never wedge the
    /// bench loop, so every wait gives up (abort + next round) after this.
    u64 wait_budget_polls = 6000;
    /// Protocol parameters to mimic when crafting valid-looking hellos.
    issl::Config tls = issl::Config::embedded_port();
  };

  /// `medium` is only used by kSynFlood (raw spoofed-segment injection);
  /// every other behavior speaks through `stack` like an honest client.
  HostileClient(net::TcpStack& stack, net::SimNet& medium,
                net::IpAddr server_ip, net::Port server_port, u64 seed,
                Options opts);

  /// One step per scheduler tick. Returns true while still attacking.
  bool poll();
  bool done() const { return phase_ == Phase::kDone; }
  const HostileStats& stats() const { return stats_; }
  Behavior behavior() const { return opts_.behavior; }

 private:
  enum class Phase { kConnect, kWaitEstablished, kAct, kLinger, kDone };

  void start_round();
  void finish_round(bool abort_conn);
  bool conn_dead();
  void drain_recv();  // discard server bytes; notes a peer FIN (EOF)
  void send_bytes(std::span<const u8> bytes);
  void act_once();  // behavior-specific payload, called from kAct
  void spoof_syns();

  net::TcpStack& stack_;
  net::SimNet& medium_;
  net::IpAddr server_ip_;
  net::Port server_port_;
  common::Xorshift64 rng_;
  Options opts_;
  HostileStats stats_;

  Phase phase_ = Phase::kConnect;
  int sock_ = -1;
  bool peer_eof_ = false;  // server FIN'd us: the kill we linger for
  int round_ = 0;
  u64 phase_polls_ = 0;   // polls spent in the current phase
  u64 flood_polls_done_ = 0;
  int act_step_ = 0;      // behavior-specific progress inside kAct
  std::vector<u8> drip_buffer_;   // kSlowDrip: the record being trickled
  std::size_t drip_sent_ = 0;
};

}  // namespace rmc::abuse
