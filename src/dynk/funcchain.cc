#include "dynk/funcchain.h"

namespace rmc::dynk {

using common::ErrorCode;
using common::Result;
using common::Status;

Status FuncChainRegistry::make_chain(const std::string& name) {
  if (chains_.count(name)) {
    return Status(ErrorCode::kAlreadyExists, "chain exists: " + name);
  }
  chains_[name];
  return Status::ok();
}

Status FuncChainRegistry::add(const std::string& name,
                              std::function<void()> segment) {
  auto it = chains_.find(name);
  if (it == chains_.end()) {
    return Status(ErrorCode::kNotFound, "no #makechain for: " + name);
  }
  it->second.push_back(std::move(segment));
  return Status::ok();
}

Result<std::size_t> FuncChainRegistry::invoke(const std::string& name) {
  auto it = chains_.find(name);
  if (it == chains_.end()) {
    return Status(ErrorCode::kNotFound, "no such chain: " + name);
  }
  for (auto& segment : it->second) segment();
  return it->second.size();
}

}  // namespace rmc::dynk
