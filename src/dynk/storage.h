// `shared` and `protected` storage-class emulation (paper §4.3).
//
// shared:    Dynamic C disables interrupts around updates of multibyte
//            `shared` variables so an ISR never sees a torn value.
//            SharedVar<T> models that with an explicit critical section and
//            counts the interrupt-disabled windows so tests/benches can
//            price the guarantee.
//
// protected: every modification first copies the old value to battery-backed
//            RAM, then raises an in-progress marker, writes, and lowers the
//            marker; after a reset, _sysIsSoftReset() checks the marker and
//            restores the last good value only when a store was actually
//            interrupted. ProtectedVar<T> keeps the backup copy and
//            implements that restore path, including the "power failed
//            mid-write" torn-value case (the marker is what makes a torn
//            multibyte write *detectable* instead of silently half-new).
#pragma once

#include <cstring>
#include <functional>
#include <type_traits>

#include "common/bytes.h"
#include "dynk/power.h"

namespace rmc::dynk {

/// Counts simulated interrupt-disable windows (DI/EI pairs).
class InterruptGate {
 public:
  void disable() { ++depth_; ++windows_; }
  void enable() { if (depth_ > 0) --depth_; }
  bool enabled() const { return depth_ == 0; }
  common::u64 windows() const { return windows_; }

 private:
  int depth_ = 0;
  common::u64 windows_ = 0;
};

template <typename T>
class SharedVar {
 public:
  SharedVar(InterruptGate& gate, T initial = T{})
      : gate_(&gate), value_(initial) {}

  /// Atomic store: interrupts disabled across the (multibyte) update.
  void store(const T& v) {
    gate_->disable();
    value_ = v;
    gate_->enable();
  }

  /// Atomic read-modify-write.
  void update(const std::function<T(T)>& f) {
    gate_->disable();
    value_ = f(value_);
    gate_->enable();
  }

  T load() const {
    gate_->disable();
    T v = value_;
    gate_->enable();
    return v;
  }

 private:
  mutable InterruptGate* gate_;
  T value_;
};

/// What the restore path found after a reset.
enum class RestoreOutcome : common::u8 {
  kIntact,         // no store in flight: the live value is trustworthy
  kRestoredStale,  // a store was interrupted: rolled back to the backup
};

template <typename T>
class ProtectedVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "protected variables are raw battery-backed bytes");

 public:
  explicit ProtectedVar(T initial = T{})
      : value_(initial), backup_(initial) {}

  /// Wire in a power monitor so a fault plan can cut power at any of the
  /// protocol's fault points (named below). Optional: with no monitor the
  /// store protocol runs to completion, same as before.
  void attach_power(PowerMonitor* mon) { mon_ = mon; }

  /// Modification protocol, in battery-backed write order:
  ///   1. copy the current value to the backup slot        [pvar.backup]
  ///   2. raise the in-progress marker                     [pvar.write]
  ///   3. write the new value (multibyte, tearable)        [pvar.commit]
  ///   4. lower the marker — the commit point
  /// A power cut at [pvar.backup] leaves the live value untouched and the
  /// marker down (clean). At [pvar.write] the new value is half-written with
  /// the marker up (torn, detectable). At [pvar.commit] the write finished
  /// but the marker is still up — restore conservatively rolls back, which
  /// is stale-but-consistent, exactly Dynamic C's contract.
  void store(const T& v) {
    backup_ = value_;  // copy to battery-backed RAM first
    backup_seq_ = seq_;
    ++backups_taken_;
    if (trip("pvar.backup")) return;
    in_progress_ = true;
    if (trip("pvar.write")) {  // die mid-write: tear the multibyte value
      std::memcpy(&value_, &v, sizeof(T) / 2);
      return;
    }
    value_ = v;
    ++seq_;
    if (trip("pvar.commit")) return;
    in_progress_ = false;
  }

  T load() const { return value_; }
  T backup() const { return backup_; }

  /// Simulate losing main RAM mid-store (power failure): the live value
  /// becomes garbage with the in-progress marker still up, which is exactly
  /// the state a cut at [pvar.write] leaves behind.
  void corrupt(const T& garbage) {
    value_ = garbage;
    in_progress_ = true;
  }

  /// _sysIsSoftReset(): if (and only if) a store was in flight when the
  /// board died, roll back to the battery-backed copy. A clean marker means
  /// the live value is valid and must NOT be clobbered by the older backup.
  RestoreOutcome restore_after_reset() {
    if (!in_progress_) return RestoreOutcome::kIntact;
    value_ = backup_;
    seq_ = backup_seq_;
    in_progress_ = false;
    ++restores_;
    ++restored_stale_;
    return RestoreOutcome::kRestoredStale;
  }

  /// True while a store is between marker-raise and marker-lower; after a
  /// reset this is the torn-write tell.
  bool store_in_progress() const { return in_progress_; }
  /// Completed stores since construction (survives resets with the value).
  common::u64 seq() const { return seq_; }

  common::u64 backups_taken() const { return backups_taken_; }
  common::u64 restores() const { return restores_; }
  /// Restores that discarded a possibly-newer in-flight value.
  common::u64 restored_stale() const { return restored_stale_; }

 private:
  bool trip(const char* site) { return mon_ && mon_->step(site); }

  T value_;
  T backup_;
  bool in_progress_ = false;  // validity marker, battery-backed
  common::u64 seq_ = 0;
  common::u64 backup_seq_ = 0;
  PowerMonitor* mon_ = nullptr;
  common::u64 backups_taken_ = 0;
  common::u64 restores_ = 0;
  common::u64 restored_stale_ = 0;
};

}  // namespace rmc::dynk
