// `shared` and `protected` storage-class emulation (paper §4.3).
//
// shared:    Dynamic C disables interrupts around updates of multibyte
//            `shared` variables so an ISR never sees a torn value.
//            SharedVar<T> models that with an explicit critical section and
//            counts the interrupt-disabled windows so tests/benches can
//            price the guarantee.
//
// protected: every modification first copies the old value to battery-backed
//            RAM; after a reset, _sysIsSoftReset() restores the last good
//            value. ProtectedVar<T> keeps the backup copy and implements the
//            restore path, including the "power failed mid-write" case.
#pragma once

#include <functional>

#include "common/bytes.h"

namespace rmc::dynk {

/// Counts simulated interrupt-disable windows (DI/EI pairs).
class InterruptGate {
 public:
  void disable() { ++depth_; ++windows_; }
  void enable() { if (depth_ > 0) --depth_; }
  bool enabled() const { return depth_ == 0; }
  common::u64 windows() const { return windows_; }

 private:
  int depth_ = 0;
  common::u64 windows_ = 0;
};

template <typename T>
class SharedVar {
 public:
  SharedVar(InterruptGate& gate, T initial = T{})
      : gate_(&gate), value_(initial) {}

  /// Atomic store: interrupts disabled across the (multibyte) update.
  void store(const T& v) {
    gate_->disable();
    value_ = v;
    gate_->enable();
  }

  /// Atomic read-modify-write.
  void update(const std::function<T(T)>& f) {
    gate_->disable();
    value_ = f(value_);
    gate_->enable();
  }

  T load() const {
    gate_->disable();
    T v = value_;
    gate_->enable();
    return v;
  }

 private:
  mutable InterruptGate* gate_;
  T value_;
};

template <typename T>
class ProtectedVar {
 public:
  explicit ProtectedVar(T initial = T{})
      : value_(initial), backup_(initial) {}

  /// Modification protocol: back up the current value (to battery-backed
  /// RAM), then write the new one.
  void store(const T& v) {
    backup_ = value_;  // copy to battery-backed RAM first
    ++backups_taken_;
    value_ = v;
  }

  T load() const { return value_; }
  T backup() const { return backup_; }

  /// Simulate losing main RAM mid-operation (power failure): the live value
  /// becomes garbage.
  void corrupt(const T& garbage) { value_ = garbage; }

  /// _sysIsSoftReset(): restore the battery-backed copy after a restart.
  void restore_after_reset() {
    value_ = backup_;
    ++restores_;
  }

  common::u64 backups_taken() const { return backups_taken_; }
  common::u64 restores() const { return restores_; }

 private:
  T value_;
  T backup_;
  common::u64 backups_taken_ = 0;
  common::u64 restores_ = 0;
};

}  // namespace rmc::dynk
