// Durable bookkeeping over battery-backed RAM (paper §4.3 extended).
//
// ProtectedVar protects a single in-RAM value across one interrupted store.
// The redirector needs more: counters and configuration that survive an
// unbounded sequence of watchdog bites and power cuts, with torn updates
// *detected* rather than silently half-applied. DurableVar<T> provides that
// with the classic two-slot commit protocol one writes for EEPROM/NVRAM:
//
//   slot = the one NOT holding the newest committed value
//   slot.valid = 0                       -> [durable.open]
//   slot.value = v   (multibyte, tearable at [durable.mid])
//   slot.seq   = newest_seq + 1
//   slot.sum   = fletcher32(value, seq)  -> [durable.commit]
//   slot.valid = 1                       <- the single-byte commit point
//
// A cut anywhere before the final byte leaves the previous slot untouched
// and committed; load() picks the valid slot with the good checksum and the
// highest sequence number. A started-vs-committed counter pair (also
// battery-backed) makes the tear observable: started != committed at load
// means the last write never landed, reported as kTornRecovered.
//
// Everything lives in ordinary members because in this model "battery-backed"
// means "owned by the supervisor object that outlives board resets" — the
// same trick BatteryFile uses for the ring log.
#pragma once

#include <cstring>
#include <type_traits>

#include "common/bytes.h"
#include "dynk/power.h"

namespace rmc::dynk {

/// Fletcher-32 over a raw byte span — cheap enough for an 8-bit part, strong
/// enough to catch a torn multibyte write.
inline common::u32 fletcher32(const common::u8* data, std::size_t len) {
  common::u32 a = 0xFFFF, b = 0xFFFF;
  while (len > 0) {
    std::size_t chunk = len > 359 ? 359 : len;
    len -= chunk;
    while (chunk-- > 0) {
      a += *data++;
      b += a;
    }
    a = (a & 0xFFFF) + (a >> 16);
    b = (b & 0xFFFF) + (b >> 16);
  }
  a = (a & 0xFFFF) + (a >> 16);
  b = (b & 0xFFFF) + (b >> 16);
  return (b << 16) | a;
}

enum class DurableLoadOutcome : common::u8 {
  kEmpty,          // nothing ever committed
  kClean,          // newest committed value, no interrupted write pending
  kTornRecovered,  // an interrupted write was detected; fell back to the
                   // newest committed value (possibly none -> value is T{})
};

inline const char* durable_outcome_name(DurableLoadOutcome o) {
  switch (o) {
    case DurableLoadOutcome::kEmpty: return "empty";
    case DurableLoadOutcome::kClean: return "clean";
    case DurableLoadOutcome::kTornRecovered: return "torn-recovered";
  }
  return "?";
}

template <typename T>
class DurableVar {
  static_assert(std::is_trivially_copyable_v<T>,
                "durable variables are raw battery-backed bytes");

 public:
  struct LoadResult {
    DurableLoadOutcome outcome = DurableLoadOutcome::kEmpty;
    T value{};
    common::u64 seq = 0;
  };

  DurableVar() = default;
  explicit DurableVar(PowerMonitor* mon) : mon_(mon) {}

  void attach_power(PowerMonitor* mon) { mon_ = mon; }

  /// Two-slot committed write. Returns false when a power cut interrupted
  /// it (the previous committed value is still intact and recoverable).
  bool store(const T& v) {
    ++writes_started_;
    Slot& dst = slots_[target_slot()];
    const common::u64 new_seq = newest_seq() + 1;
    dst.valid = 0;
    if (trip("durable.open")) return false;
    // Multibyte value write, tearable half-way.
    std::memcpy(&dst.value, &v, sizeof(T) / 2);
    if (trip("durable.mid")) return false;
    std::memcpy(reinterpret_cast<common::u8*>(&dst.value) + sizeof(T) / 2,
                reinterpret_cast<const common::u8*>(&v) + sizeof(T) / 2,
                sizeof(T) - sizeof(T) / 2);
    dst.seq = new_seq;
    dst.sum = slot_sum(dst);
    if (trip("durable.commit")) return false;
    dst.valid = 1;  // single-byte commit point
    ++writes_committed_;
    return true;
  }

  /// Recovery read: newest committed value plus what the write history says
  /// happened. Reconciles the started/committed counters so a detected tear
  /// is reported exactly once.
  LoadResult load() {
    LoadResult r;
    const Slot* best = nullptr;
    for (const Slot& s : slots_) {
      if (s.valid != 1 || s.sum != slot_sum(s)) continue;
      if (!best || s.seq > best->seq) best = &s;
    }
    const bool torn = writes_started_ != writes_committed_;
    writes_started_ = writes_committed_;
    if (best) {
      r.value = best->value;
      r.seq = best->seq;
      r.outcome =
          torn ? DurableLoadOutcome::kTornRecovered : DurableLoadOutcome::kClean;
    } else {
      r.outcome = torn ? DurableLoadOutcome::kTornRecovered
                       : DurableLoadOutcome::kEmpty;
    }
    return r;
  }

  /// Peek without reconciling (for invariant audits).
  common::u64 newest_seq() const {
    common::u64 best = 0;
    for (const Slot& s : slots_) {
      if (s.valid == 1 && s.sum == slot_sum(s) && s.seq > best) best = s.seq;
    }
    return best;
  }

  bool tear_pending() const { return writes_started_ != writes_committed_; }
  common::u64 writes_started() const { return writes_started_; }
  common::u64 writes_committed() const { return writes_committed_; }

 private:
  struct Slot {
    T value{};
    common::u64 seq = 0;
    common::u32 sum = 0;
    common::u8 valid = 0;
  };

  static common::u32 slot_sum(const Slot& s) {
    common::u8 buf[sizeof(T) + sizeof(common::u64)];
    std::memcpy(buf, &s.value, sizeof(T));
    std::memcpy(buf + sizeof(T), &s.seq, sizeof(common::u64));
    return fletcher32(buf, sizeof(buf));
  }

  /// Write into whichever slot is NOT the newest committed one.
  std::size_t target_slot() const {
    const common::u64 s0 = (slots_[0].valid == 1) ? slots_[0].seq : 0;
    const common::u64 s1 = (slots_[1].valid == 1) ? slots_[1].seq : 0;
    if (slots_[0].valid != 1) return 0;
    if (slots_[1].valid != 1) return 1;
    return s0 <= s1 ? 0 : 1;
  }

  bool trip(const char* site) { return mon_ && mon_->step(site); }

  Slot slots_[2];
  common::u64 writes_started_ = 0;
  common::u64 writes_committed_ = 0;
  PowerMonitor* mon_ = nullptr;
};

}  // namespace rmc::dynk
