// Cofunctions and the slice statement — the rest of Dynamic C's
// multitasking menu (paper §4.2):
//
//   "Cofunctions are similar [to costatements], but also take arguments and
//    may return a result."
//   "Dynamic C provides ... preemptive multitasking through either the
//    slice statement or a port of Labrosse's µC/OS-II."
//
// Cofunc<T>: a resumable computation that yields/waits like a costatement
// and eventually produces a value (Dynamic C's `wfd result = cofunc(...)`
// idiom becomes `co_await`-free polling: drive with poll(), read result()).
//
// SliceScheduler: budgeted round-robin — each task gets at most
// `budget_polls` resumptions per slice before the scheduler moves on,
// approximating the slice statement's time-boxing on top of cooperative
// tasks (the real thing preempts mid-statement; ours preempts at yield
// points, which is the closest a cooperative model can get — the paper's
// port used neither, so this is an extension, exercised by tests only).
#pragma once

#include <coroutine>
#include <exception>
#include <optional>

#include "dynk/costate.h"

namespace rmc::dynk {

template <typename T>
class Cofunc {
 public:
  struct promise_type {
    std::optional<T> value;
    std::function<bool()> wait_predicate;

    Cofunc get_return_object() {
      return Cofunc(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::terminate(); }

    auto await_transform(Yield) noexcept {
      wait_predicate = nullptr;
      return std::suspend_always{};
    }
    auto await_transform(WaitFor w) noexcept {
      wait_predicate = std::move(w.predicate);
      return std::suspend_always{};
    }
  };

  Cofunc() = default;
  explicit Cofunc(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Cofunc(Cofunc&& other) noexcept : handle_(other.handle_) {
    other.handle_ = {};
  }
  Cofunc& operator=(Cofunc&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  Cofunc(const Cofunc&) = delete;
  Cofunc& operator=(const Cofunc&) = delete;
  ~Cofunc() { destroy(); }

  bool done() const { return handle_ && handle_.done(); }
  bool has_result() const {
    return done() && handle_.promise().value.has_value();
  }
  const T& result() const { return *handle_.promise().value; }

  /// Resume to the next yield/waitfor/return. Returns true if it ran.
  bool poll() {
    if (!handle_ || handle_.done()) return false;
    auto& p = handle_.promise();
    if (p.wait_predicate && !p.wait_predicate()) return false;
    p.wait_predicate = nullptr;
    handle_.resume();
    return true;
  }

  /// The `wfd` idiom: drive to completion within a poll budget.
  std::optional<T> run_to_completion(int max_polls) {
    for (int i = 0; i < max_polls && !done(); ++i) poll();
    if (has_result()) return result();
    return std::nullopt;
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Budgeted round-robin over costatements: per tick, each task is resumed
/// at most `budget_polls` times (through its yields) before the scheduler
/// moves on — the slice statement's fairness on cooperative tasks.
class SliceScheduler {
 public:
  explicit SliceScheduler(std::size_t budget_polls)
      : budget_(budget_polls) {}

  common::Status add(Costate task) {
    if (!task.valid()) {
      return common::Status(common::ErrorCode::kInvalidArgument,
                            "invalid costate");
    }
    tasks_.push_back(std::move(task));
    return common::Status::ok();
  }

  /// One slice pass. Returns total resumptions performed.
  std::size_t tick() {
    std::size_t ran = 0;
    for (auto& t : tasks_) {
      for (std::size_t i = 0; i < budget_ && !t.done(); ++i) {
        if (!t.poll()) break;  // blocked in waitfor: yield the slice early
        ++ran;
      }
    }
    return ran;
  }

  bool all_done() const {
    for (const auto& t : tasks_) {
      if (!t.done()) return false;
    }
    return true;
  }

  bool run(common::u64 max_ticks) {
    for (common::u64 i = 0; i < max_ticks; ++i) {
      if (all_done()) return true;
      tick();
    }
    return all_done();
  }

 private:
  std::size_t budget_;
  std::vector<Costate> tasks_;
};

}  // namespace rmc::dynk
