// Deterministic power-failure injection (paper §6 robustness work).
//
// The case study's board lives in a wiring closet: power is yanked at
// arbitrary moments, including mid-way through the `protected` store
// protocol. Reproducing "arbitrary moment" deterministically needs an
// instrumented clock of *fault points*: every code location that matters for
// durability calls PowerMonitor::step("site") before doing its next
// irreversible byte of work. A PowerFaultPlan then says "cut the power at the
// Nth fault point of this boot", which lands the cut on an exact protocol
// step — same seed, same torn byte, every run.
//
// Division of labour mirrors the watchdog: the monitor only decides *whether
// the lights are on*; reacting (dropping the board, rebooting, restoring the
// battery-backed state) belongs to the supervisor that owns the board.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/prng.h"

namespace rmc::dynk {

/// A seeded schedule of power cuts. Each entry is the number of fault points
/// the board survives after (re)gaining power before the cut trips; entry k
/// governs the board's (k+1)-th power cycle.
struct PowerFaultPlan {
  std::vector<common::u64> cuts;

  bool enabled() const { return !cuts.empty(); }

  /// No cuts: power stays on forever (the E1-E9 baseline).
  static PowerFaultPlan none() { return {}; }

  /// Explicit cut points, one per power cycle — for aiming at a specific
  /// protocol step in tests ("die between backup and commit").
  static PowerFaultPlan at(std::vector<common::u64> steps) {
    PowerFaultPlan p;
    p.cuts = std::move(steps);
    return p;
  }

  /// `n_cuts` cuts at seeded-random depths in [min_gap, max_gap] fault
  /// points. Same seed, same schedule.
  static PowerFaultPlan random(common::u64 seed, std::size_t n_cuts,
                               common::u64 min_gap, common::u64 max_gap);
};

/// Counts fault points and trips the scheduled cuts. One monitor per board.
class PowerMonitor {
 public:
  PowerMonitor() = default;
  explicit PowerMonitor(const PowerFaultPlan& plan) { arm(plan); }

  void arm(const PowerFaultPlan& plan) {
    pending_ = plan.cuts;
    next_ = 0;
    load_next();
  }

  /// Declare a fault point named `site`. Returns true when the power is out
  /// at/after this point — the caller must abandon the operation exactly
  /// here, leaving whatever partial state it has already written.
  bool step(const char* site) {
    ++points_seen_;
    if (!powered_) return true;
    if (!armed_) return false;
    if (countdown_ == 0) {
      powered_ = false;
      armed_ = false;
      ++cuts_;
      last_cut_site_ = site;
      return true;
    }
    --countdown_;
    return false;
  }

  bool powered() const { return powered_; }

  /// Power comes back: the next scheduled cut (if any) starts counting from
  /// the reborn board's first fault point.
  void restore_power() {
    powered_ = true;
    load_next();
  }

  /// Cuts still scheduled after the current power cycle.
  bool more_cuts_pending() const {
    return armed_ || next_ < pending_.size();
  }

  common::u64 cuts() const { return cuts_; }
  common::u64 points_seen() const { return points_seen_; }
  const std::string& last_cut_site() const { return last_cut_site_; }

 private:
  void load_next() {
    if (next_ < pending_.size()) {
      countdown_ = pending_[next_++];
      armed_ = true;
    } else {
      armed_ = false;
    }
  }

  std::vector<common::u64> pending_;
  std::size_t next_ = 0;
  common::u64 countdown_ = 0;
  bool armed_ = false;
  bool powered_ = true;
  common::u64 cuts_ = 0;
  common::u64 points_seen_ = 0;
  std::string last_cut_site_;
};

}  // namespace rmc::dynk
