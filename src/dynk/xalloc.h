// xalloc — Dynamic C's extended-memory allocator (paper §5.2):
//
//   "Dynamic C does not support the standard library functions malloc and
//    free. Instead, it provides the xalloc function that allocates extended
//    memory only ... More seriously, there is no analogue to free; allocated
//    memory cannot be returned to a pool."
//
// This arena reproduces those semantics exactly: bump allocation out of a
// fixed budget, aligned, *no deallocation interface at all*. The returned
// XmemHandle is an opaque 20-bit-style offset — arithmetic on it is not
// pointer arithmetic (the real xalloc returns physical xmem addresses that
// cannot be dereferenced through a 16-bit pointer).
//
// The consequence the paper reports — "we chose to remove all references to
// malloc and statically allocate all variables", dropping multi-key-size
// support — is exercised by the services and measured by bench_memory.
#pragma once

#include <cstddef>

#include "common/bytes.h"
#include "common/status.h"

namespace rmc::dynk {

using XmemHandle = common::u32;

class XallocArena {
 public:
  /// `capacity` bytes of simulated extended SRAM. `base` is where handles
  /// start (cosmetic; mirrors physical xmem addresses).
  explicit XallocArena(std::size_t capacity, common::u32 base = 0x90000)
      : capacity_(capacity), base_(base) {}

  /// Allocate `n` bytes (aligned to `align`). Fails with kResourceExhausted
  /// when the arena is spent — permanently: there is deliberately no free().
  common::Result<XmemHandle> xalloc(std::size_t n, std::size_t align = 2);

  /// Bytes handed out so far (also the high-water mark; they never return).
  /// used() <= capacity() is an invariant — xalloc() checks the exhaustion
  /// boundary by subtraction, so neither a huge request nor alignment
  /// padding can push used_ past capacity_ and make remaining() underflow.
  std::size_t used() const { return used_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t remaining() const { return capacity_ - used_; }
  common::u64 allocation_count() const { return allocations_; }
  common::u64 failed_allocations() const { return failures_; }

 private:
  std::size_t capacity_;
  common::u32 base_;
  std::size_t used_ = 0;
  common::u64 allocations_ = 0;
  common::u64 failures_ = 0;
};

}  // namespace rmc::dynk
