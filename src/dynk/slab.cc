#include "dynk/slab.h"

#include <algorithm>
#include <cstring>

#include "telemetry/metrics.h"

namespace rmc::dynk {

using common::ErrorCode;
using common::Result;
using common::Status;
using common::u32;
using common::u8;

namespace {
// Lazy like every other instrument family in the tree: a build that never
// constructs a SlabAllocator (every paper-mode bench) must emit metrics
// JSON byte-identical to a build without this file.
telemetry::Gauge& live_gauge() {
  static telemetry::Gauge& g =
      telemetry::Registry::global().gauge("dynk.slab_live_bytes");
  return g;
}
telemetry::Gauge& committed_gauge() {
  static telemetry::Gauge& g =
      telemetry::Registry::global().gauge("dynk.slab_committed_bytes");
  return g;
}
// External fragmentation in basis points (0..10000): gauges are integers
// and the high-water max() is what E16's ceiling gate reads.
telemetry::Gauge& frag_gauge() {
  static telemetry::Gauge& g =
      telemetry::Registry::global().gauge("dynk.slab_external_frag_bp");
  return g;
}
telemetry::Counter& fail_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.slab_failed_allocs");
  return c;
}
telemetry::Counter& injected_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.slab_injected_faults");
  return c;
}
// Fault counters are created on the first actual fault (the PR 3 pattern):
// a clean soak's JSON should not even mention them.
telemetry::Counter& double_free_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.slab_double_frees");
  return c;
}
telemetry::Counter& foreign_free_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.slab_foreign_frees");
  return c;
}
telemetry::Counter& poison_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.slab_poison_trips");
  return c;
}

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

const char* allocator_kind_name(AllocatorKind kind) {
  switch (kind) {
    case AllocatorKind::kXalloc: return "xalloc";
    case AllocatorKind::kSlab: return "slab";
  }
  return "?";
}

SlabAllocator::SlabAllocator(SlabConfig config)
    : page_bytes_(config.page_bytes),
      base_(config.base),
      quarantine_(config.quarantine),
      quarantine_depth_(config.quarantine_depth) {
  if (!is_pow2(page_bytes_) || page_bytes_ < kMaxClassBytes) {
    page_bytes_ = 4096;  // refuse degenerate geometry rather than UB
  }
  page_count_ = config.capacity / page_bytes_;
  mem_.assign(page_count_ * page_bytes_, 0);
  const std::size_t granules = (page_count_ * page_bytes_) / kMinClassBytes;
  state_.assign(granules, BlockState::kUnmapped);
  block_class_.assign(granules, 0);
  block_req_.assign(granules, 0);
  if (page_count_ > 0) {
    free_runs_.emplace_back(0, static_cast<u32>(page_count_));
  }
}

std::size_t SlabAllocator::class_for(std::size_t n) {
  std::size_t cls = 0;
  std::size_t block = kMinClassBytes;
  while (block < n && cls < kNumClasses) {
    block <<= 1;
    ++cls;
  }
  return cls;  // == kNumClasses when n > kMaxClassBytes (large spill)
}

bool SlabAllocator::acquire_pages(std::size_t n, u32* out_page) {
  // First fit over the sorted run list: deterministic, and with uniform
  // page churn the list stays tiny.
  for (std::size_t i = 0; i < free_runs_.size(); ++i) {
    auto& [off, len] = free_runs_[i];
    if (len >= n) {
      *out_page = off;
      off += static_cast<u32>(n);
      len -= static_cast<u32>(n);
      if (len == 0) free_runs_.erase(free_runs_.begin() + static_cast<long>(i));
      committed_pages_ += n;
      high_water_committed_pages_ =
          std::max(high_water_committed_pages_, committed_pages_);
      return true;
    }
  }
  return false;
}

void SlabAllocator::release_pages(u32 page, std::size_t n) {
  committed_pages_ -= n;
  auto it = std::lower_bound(
      free_runs_.begin(), free_runs_.end(), page,
      [](const auto& run, u32 p) { return run.first < p; });
  it = free_runs_.insert(it, {page, static_cast<u32>(n)});
  // Coalesce with the right neighbour, then the left.
  if (it + 1 != free_runs_.end() && it->first + it->second == (it + 1)->first) {
    it->second += (it + 1)->second;
    free_runs_.erase(it + 1);
  }
  if (it != free_runs_.begin()) {
    auto prev = it - 1;
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_runs_.erase(it);
    }
  }
}

bool SlabAllocator::carve_slab(std::size_t cls) {
  u32 page = 0;
  if (!acquire_pages(1, &page)) return false;
  ClassList& cl = classes_[cls];
  ++cl.pages;
  const std::size_t block = class_block_bytes(cls);
  const u32 page_off = page * static_cast<u32>(page_bytes_);
  // Push in reverse so the LIFO freelist hands out ascending offsets first —
  // an arbitrary but *fixed* order the determinism test pins down.
  for (std::size_t i = page_bytes_ / block; i-- > 0;) {
    const u32 off = page_off + static_cast<u32>(i * block);
    state_[granule(off)] = BlockState::kFree;
    block_class_[granule(off)] = static_cast<u8>(cls);
    cl.freelist.push_back(off);
  }
  return true;
}

Result<SlabHandle> SlabAllocator::alloc(std::size_t n, const char* site) {
  if (n == 0) {
    return Status(ErrorCode::kInvalidArgument, "zero-byte slab alloc");
  }
  if (monitor_ != nullptr && monitor_->step(site)) {
    ++injected_failures_;
    ++failed_allocs_;
    injected_counter().add();
    fail_counter().add();
    return Status(ErrorCode::kResourceExhausted,
                  std::string("injected allocation fault at ") + site);
  }

  const std::size_t cls = class_for(n);
  u32 off = 0;
  if (cls < kNumClasses) {
    ClassList& cl = classes_[cls];
    if (cl.freelist.empty() && quarantine_ && !cl.quarantine.empty()) {
      // Budget pressure overrides the reuse delay: drain the oldest
      // quarantined block (with its poison audit) before carving a page.
      release_from_quarantine(cls);
    }
    if (cl.freelist.empty() && !carve_slab(cls)) {
      ++failed_allocs_;
      fail_counter().add();
      return Status(ErrorCode::kResourceExhausted,
                    std::string("slab budget exhausted at ") + site);
    }
    off = cl.freelist.back();
    cl.freelist.pop_back();
    const std::size_t block = class_block_bytes(cls);
    if (quarantine_) std::memset(mem_.data() + off, kPoisonAlloc, block);
    state_[granule(off)] = BlockState::kLive;
    block_req_[granule(off)] = static_cast<u32>(n);
    live_bytes_ += block;
  } else {
    const std::size_t pages = (n + page_bytes_ - 1) / page_bytes_;
    u32 page = 0;
    if (!acquire_pages(pages, &page)) {
      ++failed_allocs_;
      fail_counter().add();
      return Status(ErrorCode::kResourceExhausted,
                    std::string("slab budget exhausted at ") + site);
    }
    off = page * static_cast<u32>(page_bytes_);
    if (quarantine_) {
      std::memset(mem_.data() + off, kPoisonAlloc, pages * page_bytes_);
    }
    state_[granule(off)] = BlockState::kLargeLive;
    block_req_[granule(off)] = static_cast<u32>(n);
    large_[off] = static_cast<u32>(pages);
    live_bytes_ += pages * page_bytes_;
  }

  requested_bytes_ += n;
  ++live_blocks_;
  ++alloc_count_;
  high_water_live_ = std::max(high_water_live_, live_bytes_);
  update_gauges();
  return base_ + off;
}

Status SlabAllocator::free(SlabHandle h) {
  const u32 raw = h - base_;
  if (h < base_ || raw >= mem_.size() || raw % kMinClassBytes != 0) {
    ++foreign_free_faults_;
    foreign_free_counter().add();
    trip_fault("foreign-free", h);
    return Status(ErrorCode::kInvalidArgument, "free of foreign slab handle");
  }
  const std::size_t g = granule(raw);
  switch (state_[g]) {
    case BlockState::kLive: {
      const std::size_t cls = block_class_[g];
      const std::size_t block = class_block_bytes(cls);
      live_bytes_ -= block;
      requested_bytes_ -= block_req_[g];
      --live_blocks_;
      ++free_count_;
      ClassList& cl = classes_[cls];
      if (quarantine_) {
        std::memset(mem_.data() + raw, kPoisonFree, block);
        state_[g] = BlockState::kQuarantined;
        ++quarantined_blocks_;
        cl.quarantine.push_back(raw);
        while (cl.quarantine.size() > quarantine_depth_) {
          release_from_quarantine(cls);
        }
      } else {
        state_[g] = BlockState::kFree;
        cl.freelist.push_back(raw);
      }
      update_gauges();
      return Status::ok();
    }
    case BlockState::kLargeLive: {
      const u32 pages = large_[raw];
      live_bytes_ -= pages * page_bytes_;
      requested_bytes_ -= block_req_[g];
      --live_blocks_;
      ++free_count_;
      if (quarantine_) {
        std::memset(mem_.data() + raw, kPoisonFree, pages * page_bytes_);
      }
      state_[g] = BlockState::kUnmapped;
      large_.erase(raw);
      release_pages(raw / static_cast<u32>(page_bytes_), pages);
      update_gauges();
      return Status::ok();
    }
    case BlockState::kFree:
    case BlockState::kQuarantined:
      ++double_free_faults_;
      double_free_counter().add();
      trip_fault("double-free", h);
      return Status(ErrorCode::kFailedPrecondition, "double free");
    case BlockState::kUnmapped:
    default:
      ++foreign_free_faults_;
      foreign_free_counter().add();
      trip_fault("foreign-free", h);
      return Status(ErrorCode::kInvalidArgument,
                    "free of foreign slab handle");
  }
}

std::span<u8> SlabAllocator::view(SlabHandle h) {
  const u32 raw = h - base_;
  if (h < base_ || raw >= mem_.size() || raw % kMinClassBytes != 0) return {};
  const std::size_t g = granule(raw);
  if (state_[g] == BlockState::kLive) {
    return {mem_.data() + raw, class_block_bytes(block_class_[g])};
  }
  if (state_[g] == BlockState::kLargeLive) {
    return {mem_.data() + raw, large_[raw] * page_bytes_};
  }
  return {};
}

void SlabAllocator::release_from_quarantine(std::size_t cls) {
  ClassList& cl = classes_[cls];
  const u32 off = cl.quarantine.front();
  cl.quarantine.pop_front();
  --quarantined_blocks_;
  const std::size_t block = class_block_bytes(cls);
  // The poison audit: every byte must still read back 0xDD. A disturbed
  // byte means a write landed through a stale handle while the block sat
  // in quarantine — the embedded use-after-free ASan would have caught.
  bool intact = true;
  for (std::size_t i = 0; i < block; ++i) {
    if (mem_[off + i] != kPoisonFree) {
      intact = false;
      break;
    }
  }
  if (!intact) {
    ++poison_trips_;
    poison_counter().add();
    trip_fault("use-after-free", base_ + off);
    std::memset(mem_.data() + off, kPoisonFree, block);  // re-arm the pattern
  }
  state_[granule(off)] = BlockState::kFree;
  cl.freelist.push_back(off);
}

void SlabAllocator::flush_quarantine() {
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    while (!classes_[cls].quarantine.empty()) release_from_quarantine(cls);
  }
  update_gauges();
}

double SlabAllocator::external_fragmentation() const {
  const std::size_t committed = committed_bytes();
  if (committed == 0) return 0.0;
  return 1.0 - static_cast<double>(live_bytes_) /
                   static_cast<double>(committed);
}

double SlabAllocator::internal_fragmentation() const {
  if (live_bytes_ == 0) return 0.0;
  return 1.0 - static_cast<double>(requested_bytes_) /
                   static_cast<double>(live_bytes_);
}

void SlabAllocator::trip_fault(const char* kind, SlabHandle h) {
  if (fault_handler_) fault_handler_(kind, h);
}

void SlabAllocator::update_gauges() {
  live_gauge().set(static_cast<telemetry::i64>(live_bytes_));
  committed_gauge().set(static_cast<telemetry::i64>(committed_bytes()));
  frag_gauge().set(
      static_cast<telemetry::i64>(external_fragmentation() * 10'000.0));
}

}  // namespace rmc::dynk
