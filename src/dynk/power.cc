#include "dynk/power.h"

namespace rmc::dynk {

PowerFaultPlan PowerFaultPlan::random(common::u64 seed, std::size_t n_cuts,
                                      common::u64 min_gap,
                                      common::u64 max_gap) {
  if (max_gap < min_gap) max_gap = min_gap;
  common::Xorshift64 rng(seed);
  PowerFaultPlan p;
  p.cuts.reserve(n_cuts);
  const common::u64 span = max_gap - min_gap + 1;
  for (std::size_t i = 0; i < n_cuts; ++i) {
    p.cuts.push_back(min_gap + rng.next() % span);
  }
  return p;
}

}  // namespace rmc::dynk
