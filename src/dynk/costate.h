// Costatements — Dynamic C's cooperative multitasking (paper §4.2), modelled
// with C++20 coroutines.
//
// Dynamic C:                          this module:
//   costate { ... }                     Costate task = f(); scheduler.add(task)
//   yield;                              co_await Yield{};
//   waitfor(expr);                      co_await WaitFor{[&]{ return expr; }};
//   DelayMs(n) inside waitfor           co_await scheduler.delay(n);
//
// The scheduler polls tasks round-robin, exactly like the big-loop structure
// in the paper's Figure 3 (three connection handlers + one TCP-tick driver).
// The number of slots is fixed at construction — "Dynamic C effectively
// limits the number of simultaneous connections by limiting the number of
// costatements ... the program would have to be re-compiled" (§5.3) — and
// add() fails with kResourceExhausted once they are used.
#pragma once

#include <coroutine>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace rmc::dynk {

struct Yield {};

struct WaitFor {
  std::function<bool()> predicate;
};

/// A costatement: a coroutine that may `co_await Yield{}` / `co_await
/// WaitFor{...}`. Move-only handle; destroying it destroys the coroutine.
class Costate {
 public:
  struct promise_type {
    std::function<bool()> wait_predicate;  // empty => runnable
    bool finished = false;

    Costate get_return_object() {
      return Costate(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept {
      finished = true;
      return {};
    }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }

    auto await_transform(Yield) noexcept {
      wait_predicate = nullptr;
      return std::suspend_always{};
    }
    auto await_transform(WaitFor w) noexcept {
      wait_predicate = std::move(w.predicate);
      return std::suspend_always{};
    }
  };

  Costate() = default;
  explicit Costate(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Costate(Costate&& other) noexcept : handle_(other.handle_) {
    other.handle_ = {};
  }
  Costate& operator=(Costate&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  Costate(const Costate&) = delete;
  Costate& operator=(const Costate&) = delete;
  ~Costate() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return !handle_ || handle_.done(); }

  /// True if the task is blocked in a waitfor whose predicate is false.
  bool blocked() const {
    return valid() && !done() && handle_.promise().wait_predicate &&
           !handle_.promise().wait_predicate();
  }

  /// Resume up to the next yield/waitfor/completion. Returns false if the
  /// task was not runnable (done, or waitfor predicate still false).
  bool poll() {
    if (done() || blocked()) return false;
    handle_.promise().wait_predicate = nullptr;
    handle_.resume();
    return true;
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
    handle_ = {};
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Round-robin costatement scheduler with a fixed slot count and a virtual
/// millisecond clock (Dynamic C has no OS timer; the paper's port derived
/// timeouts from the hardware timer — `now_ms`/`delay` model that).
class Scheduler {
 public:
  explicit Scheduler(std::size_t max_slots) : max_slots_(max_slots) {}

  /// Install a costatement. Fails once all slots are taken (recompile-time
  /// limit in Dynamic C).
  common::Status add(Costate task, std::string name = {});

  /// One pass over all tasks (one trip around the Figure-3 main loop).
  /// Advances the virtual clock by `ms_per_tick`. Returns the number of
  /// tasks that actually ran.
  std::size_t tick(common::u32 ms_per_tick = 1);

  /// Run ticks until all tasks are done or `max_ticks` elapse. Returns true
  /// if everything completed.
  bool run(common::u64 max_ticks, common::u32 ms_per_tick = 1);

  /// Virtual time in milliseconds.
  common::u64 now_ms() const { return now_ms_; }

  /// Awaitable that blocks the costatement for `ms` virtual milliseconds:
  /// the waitfor(DelayMs(n)) idiom.
  WaitFor delay(common::u32 ms) {
    const common::u64 deadline = now_ms_ + ms;
    return WaitFor{[this, deadline] { return now_ms_ >= deadline; }};
  }

  std::size_t slots_total() const { return max_slots_; }
  std::size_t slots_used() const { return tasks_.size(); }
  std::size_t tasks_done() const;
  bool all_done() const { return tasks_done() == tasks_.size(); }
  common::u64 ticks() const { return tick_count_; }

  const std::string& task_name(std::size_t i) const { return names_[i]; }

 private:
  std::size_t max_slots_;
  std::vector<Costate> tasks_;
  std::vector<std::string> names_;
  common::u64 now_ms_ = 0;
  common::u64 tick_count_ = 0;
};

}  // namespace rmc::dynk
