// Deterministic allocation-failure injection (ROADMAP item 4).
//
// PR 3's PowerFaultPlan proved the recipe: reproducing "fails at an
// arbitrary moment" deterministically needs an instrumented count of fault
// points, not wall-clock randomness. Here the fault points are *allocation
// attempts*: every SlabAllocator::alloc() names its site ("conn.state",
// "conn.buf", ...) and asks the monitor whether this particular attempt is
// scheduled to fail. Same seed, same failing allocation, every run — which
// is what lets a bench assert "the redirector shed exactly the one
// connection whose memory never arrived" instead of hoping a soak happens
// to run out of memory at an interesting moment.
//
// Unlike a power cut, an allocation failure is transient: the monitor
// re-arms itself with the next scheduled failure automatically, so one plan
// drives many independent failures across one board life.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/prng.h"

namespace rmc::dynk {

/// A seeded schedule of injected allocation failures. Entry k is the number
/// of allocation attempts that *succeed normally* between the k-th and the
/// (k+1)-th injected failure (entry 0 counts from monitor arming).
struct AllocFaultPlan {
  std::vector<common::u64> failures;

  bool enabled() const { return !failures.empty(); }

  /// No injected failures: allocations succeed or fail on their own merits
  /// (the default for every pre-E16 bench).
  static AllocFaultPlan none() { return {}; }

  /// Explicit gaps, for aiming at a specific allocation in a known sequence
  /// ("fail the second alloc of the recipe" = survive 1, then trip).
  static AllocFaultPlan at(std::vector<common::u64> gaps) {
    AllocFaultPlan p;
    p.failures = std::move(gaps);
    return p;
  }

  /// `n` failures at seeded-random gaps in [min_gap, max_gap] attempts.
  /// Same seed, same schedule (mirrors PowerFaultPlan::random).
  static AllocFaultPlan random(common::u64 seed, std::size_t n,
                               common::u64 min_gap, common::u64 max_gap) {
    if (max_gap < min_gap) max_gap = min_gap;
    common::Xorshift64 rng(seed);
    AllocFaultPlan p;
    p.failures.reserve(n);
    const common::u64 span = max_gap - min_gap + 1;
    for (std::size_t i = 0; i < n; ++i) {
      p.failures.push_back(min_gap + rng.next() % span);
    }
    return p;
  }
};

/// Counts allocation attempts and trips the scheduled failures. One monitor
/// per board; it outlives warm restarts (like the PowerMonitor), so a plan
/// spans the board's whole life, not one boot.
class AllocFaultMonitor {
 public:
  AllocFaultMonitor() = default;
  explicit AllocFaultMonitor(const AllocFaultPlan& plan) { arm(plan); }

  void arm(const AllocFaultPlan& plan) {
    pending_ = plan.failures;
    next_ = 0;
    load_next();
  }

  /// Declare an allocation attempt at `site`. Returns true when this
  /// attempt is scheduled to fail — the allocator must return
  /// kResourceExhausted without touching any freelist. The monitor re-arms
  /// with the next scheduled failure immediately.
  bool step(const char* site) {
    ++attempts_;
    if (!armed_) return false;
    if (countdown_ == 0) {
      ++injected_;
      last_site_ = site;
      note_site(site);
      load_next();
      return true;
    }
    --countdown_;
    return false;
  }

  bool more_pending() const { return armed_; }
  common::u64 attempts() const { return attempts_; }
  common::u64 injected() const { return injected_; }
  const std::string& last_site() const { return last_site_; }
  /// Distinct sites that have tripped, in first-trip order (deterministic);
  /// E16 gates on fault coverage of the whole per-connection recipe.
  const std::vector<std::string>& sites_tripped() const { return sites_; }

 private:
  void load_next() {
    if (next_ < pending_.size()) {
      countdown_ = pending_[next_++];
      armed_ = true;
    } else {
      armed_ = false;
    }
  }

  void note_site(const char* site) {
    for (const std::string& s : sites_) {
      if (s == site) return;
    }
    sites_.emplace_back(site);
  }

  std::vector<common::u64> pending_;
  std::size_t next_ = 0;
  common::u64 countdown_ = 0;
  bool armed_ = false;
  common::u64 attempts_ = 0;
  common::u64 injected_ = 0;
  std::string last_site_;
  std::vector<std::string> sites_;
};

}  // namespace rmc::dynk
