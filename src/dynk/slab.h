// SlabAllocator — the production answer to the paper's §5.2 confession.
//
// Dynamic C gives you xalloc and *no free*: the port "statically allocated
// all variables" and a long-running service simply runs out. PR 3's remedy
// was a counted controlled restart — honest, but it caps every soak and
// makes ROADMAP item 1's millions-of-sessions fleet impossible. This is the
// firmware allocator a production port would write instead: pow2 size-class
// slabs carved from subheap pages over the same simulated xmem budget the
// XallocArena manages, with a real free(), per-class freelists, and
// telemetry for the two numbers that decide an embedded deployment's fate
// (live bytes and fragmentation against the SRAM ceiling).
//
// Layout: the budget is divided into fixed pages. A page is either unused
// (tracked in a sorted, coalescing run list), a *slab* for one size class
// (split into pow2 blocks, 16..2048 bytes, threaded onto that class's LIFO
// freelist), or part of a multi-page "large" allocation (anything over the
// top class spills to whole pages and returns them on free). Class slabs
// are never returned to the run list — real slab allocators keep empty
// slabs cached for exactly the churn this exists to serve — so
// committed_bytes() is monotone per class mix and the external-
// fragmentation gate in E16 measures steady-state waste honestly.
//
// Debug (quarantine) mode is the ASan the RMC2000 never had: frees are
// pattern-filled (0xDD) and parked in a bounded per-class FIFO before
// reuse; a block leaving quarantine with its poison disturbed means
// somebody wrote through a stale handle (use-after-free), and a free of a
// non-live block is a double free. Both trip a *named fault* through the
// installed handler and a counter — deterministic, so a soak that trips one
// fails byte-reproducibly.
//
// Handles are opaque simulated-xmem offsets, same address space and spirit
// as XmemHandle; view() exposes the backing bytes so services can actually
// keep connection buffers in this memory rather than merely charging for it.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "dynk/allocfault.h"

namespace rmc::dynk {

/// Which allocator a service runs its per-connection state on.
enum class AllocatorKind : common::u8 {
  kXalloc,  // paper mode (§5.2): bump arena, no free, exhaustion => restart
  kSlab,    // production mode: slab alloc/free, exhaustion => shed one conn
};

const char* allocator_kind_name(AllocatorKind kind);

/// Opaque handle into the slab's simulated xmem (0 is never a valid handle;
/// callers use it as the "nothing allocated" sentinel).
using SlabHandle = common::u32;

struct SlabConfig {
  /// Total simulated-xmem budget in bytes (rounded down to whole pages).
  std::size_t capacity = 0;
  /// Subheap page granularity; must be a power of two and at least
  /// SlabAllocator::kMaxClassBytes so one page holds whole blocks.
  std::size_t page_bytes = 4096;
  /// Where handles start (cosmetic, mirrors XallocArena's physical base).
  common::u32 base = 0x90000;
  /// Debug mode: poison-fill on free, delayed reuse, double-free and
  /// use-after-free detection.
  bool quarantine = false;
  /// Frees held back per size class before re-entering the freelist.
  std::size_t quarantine_depth = 16;
};

class SlabAllocator {
 public:
  static constexpr std::size_t kMinClassBytes = 16;
  static constexpr std::size_t kMaxClassBytes = 2048;
  static constexpr std::size_t kNumClasses = 8;  // 16,32,...,2048
  static constexpr common::u8 kPoisonFree = 0xDD;   // written on free
  static constexpr common::u8 kPoisonAlloc = 0xAA;  // written on alloc

  explicit SlabAllocator(SlabConfig config);

  /// Allocate `n` bytes. Requests up to kMaxClassBytes land in the matching
  /// pow2 class (blocks are naturally aligned to their class size);
  /// anything larger spills to whole pages. Fails with kResourceExhausted
  /// when the budget cannot cover it — or when the attached fault monitor
  /// scheduled this attempt to fail. `site` names the call site for
  /// injection plans and postmortems.
  common::Result<SlabHandle> alloc(std::size_t n, const char* site = "?");

  /// Return a block. kInvalidArgument for a handle this allocator never
  /// issued (foreign/misaligned), kFailedPrecondition for a double free;
  /// both also trip the named-fault handler and a counter.
  common::Status free(SlabHandle h);

  /// Host view of the simulated xmem backing a live block (class block or
  /// large region). Empty span for anything not currently live.
  std::span<common::u8> view(SlabHandle h);

  /// Seeded failure injection (AllocFaultPlan); null detaches.
  void attach_fault_monitor(AllocFaultMonitor* monitor) { monitor_ = monitor; }

  /// Named-fault hook: kind is "double-free", "foreign-free", or
  /// "use-after-free". Services route this into their ErrorDispatcher.
  using FaultHandler = std::function<void(const char* kind, SlabHandle h)>;
  void set_fault_handler(FaultHandler handler) {
    fault_handler_ = std::move(handler);
  }

  /// Drain every quarantined block back to its freelist, verifying poison.
  /// Tests and end-of-soak audits call this so fragmentation/live figures
  /// exclude the quarantine holdback.
  void flush_quarantine();

  // --- Accounting (all exact, all deterministic) ---------------------------
  std::size_t capacity() const { return page_count_ * page_bytes_; }
  std::size_t page_bytes() const { return page_bytes_; }
  bool quarantine() const { return quarantine_; }
  /// Block-granular bytes currently allocated (class block size or
  /// page-rounded large size). The SRAM actually unavailable to others.
  std::size_t live_bytes() const { return live_bytes_; }
  /// Caller-requested bytes currently allocated (<= live_bytes).
  std::size_t requested_bytes() const { return requested_bytes_; }
  /// Pages carved out of the budget (class slabs + live large regions).
  std::size_t committed_bytes() const { return committed_pages_ * page_bytes_; }
  std::size_t high_water_live_bytes() const { return high_water_live_; }
  std::size_t high_water_committed_bytes() const {
    return high_water_committed_pages_ * page_bytes_;
  }
  common::u64 live_blocks() const { return live_blocks_; }
  common::u64 quarantined_blocks() const { return quarantined_blocks_; }
  /// 1 - live/committed: budget held by the allocator but not by callers
  /// (free blocks on class freelists, quarantine holdback, page tails).
  double external_fragmentation() const;
  /// 1 - requested/live: pow2 round-up waste inside live blocks.
  double internal_fragmentation() const;

  common::u64 alloc_count() const { return alloc_count_; }
  common::u64 free_count() const { return free_count_; }
  common::u64 failed_allocs() const { return failed_allocs_; }
  common::u64 injected_failures() const { return injected_failures_; }
  common::u64 double_free_faults() const { return double_free_faults_; }
  common::u64 foreign_free_faults() const { return foreign_free_faults_; }
  common::u64 poison_trips() const { return poison_trips_; }

  /// The class (0..kNumClasses-1) a request of `n` bytes lands in, or
  /// kNumClasses for the large-page spill path. Exposed so benches can
  /// reason about the recipe they replay.
  static std::size_t class_for(std::size_t n);
  static std::size_t class_block_bytes(std::size_t cls) {
    return kMinClassBytes << cls;
  }

 private:
  enum class BlockState : common::u8 {
    kUnmapped,     // not the start of any block this allocator issued
    kFree,         // on a class freelist
    kLive,         // handed out (class block)
    kQuarantined,  // freed, poisoned, awaiting delayed reuse
    kLargeLive,    // head page of a live multi-page region
  };

  struct ClassList {
    std::vector<common::u32> freelist;     // LIFO stack of block offsets
    std::deque<common::u32> quarantine;    // FIFO of poisoned offsets
    common::u64 pages = 0;                 // slab pages owned by this class
  };

  // Page-run management (offsets and lengths in whole pages).
  bool acquire_pages(std::size_t n, common::u32* out_page);
  void release_pages(common::u32 page, std::size_t n);

  bool carve_slab(std::size_t cls);
  void release_from_quarantine(std::size_t cls);
  void trip_fault(const char* kind, SlabHandle h);
  void update_gauges();

  std::size_t granule(common::u32 off) const { return off / kMinClassBytes; }

  std::size_t page_bytes_;
  std::size_t page_count_;
  common::u32 base_;
  bool quarantine_;
  std::size_t quarantine_depth_;

  std::vector<common::u8> mem_;          // the simulated xmem backing
  std::vector<BlockState> state_;        // per 16-byte granule
  std::vector<common::u8> block_class_;  // class index, valid when not unmapped
  std::vector<common::u32> block_req_;   // requested bytes, valid when live
  std::vector<std::pair<common::u32, common::u32>> free_runs_;  // sorted
  std::map<common::u32, common::u32> large_;  // head offset -> page count
  ClassList classes_[kNumClasses];

  AllocFaultMonitor* monitor_ = nullptr;
  FaultHandler fault_handler_;

  std::size_t live_bytes_ = 0;
  std::size_t requested_bytes_ = 0;
  std::size_t committed_pages_ = 0;
  std::size_t high_water_live_ = 0;
  std::size_t high_water_committed_pages_ = 0;
  common::u64 live_blocks_ = 0;
  common::u64 quarantined_blocks_ = 0;
  common::u64 alloc_count_ = 0;
  common::u64 free_count_ = 0;
  common::u64 failed_allocs_ = 0;
  common::u64 injected_failures_ = 0;
  common::u64 double_free_faults_ = 0;
  common::u64 foreign_free_faults_ = 0;
  common::u64 poison_trips_ = 0;
};

}  // namespace rmc::dynk
