// Runtime error dispatch — defineErrorHandler() (paper §4.1):
//
//   "We could not rely on an operating system to handle these errors, so
//    instead we specified an error handler using the
//    defineerrorhandler(void *errfcn) system call. Whenever the system
//    encounters an error, the hardware passes information about the source
//    and type of error on the stack and calls this user-defined handler.
//    ... Because our application was not designed for high reliability, we
//    simply ignored most errors."
//
// The default handler here mimics the ROM behaviour (record and halt-flag);
// installing a handler replaces it. The "ignore most errors" policy of the
// port is reproduced in services/redirector_rmc.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace rmc::dynk {

enum class RuntimeErrorKind {
  kDivideByZero,
  kRangeFault,
  kStackOverflow,
  kBadInterrupt,
  kXmemFault,
  kWatchdog,
};

const char* runtime_error_name(RuntimeErrorKind kind);

struct RuntimeErrorInfo {
  RuntimeErrorKind kind;
  common::u16 address = 0;  // "information about the source ... on the stack"
  std::string detail;
};

class ErrorDispatcher {
 public:
  using Handler = std::function<void(const RuntimeErrorInfo&)>;

  /// defineErrorHandler(): install/replace the user handler.
  void define_error_handler(Handler handler) { handler_ = std::move(handler); }

  /// Raise an error: calls the user handler if installed, otherwise the
  /// default (records it and sets the fatal flag, like the ROM reset path).
  void raise(const RuntimeErrorInfo& info);

  bool fatal_pending() const { return fatal_; }
  void clear_fatal() { fatal_ = false; }
  const std::vector<RuntimeErrorInfo>& history() const { return history_; }
  common::u64 raised_count() const { return history_.size(); }

 private:
  Handler handler_;
  bool fatal_ = false;
  std::vector<RuntimeErrorInfo> history_;
};

}  // namespace rmc::dynk
