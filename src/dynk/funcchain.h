// Function chains (paper §4.4): named sequences of code segments that run
// together when the chain is invoked.
//
//   #makechain recover                  registry.make_chain("recover")
//   #funcchain recover free_memory      registry.add("recover", free_memory)
//   recover();                          registry.invoke("recover")
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rmc::dynk {

class FuncChainRegistry {
 public:
  /// #makechain: declare a chain. Fails if it already exists.
  common::Status make_chain(const std::string& name);

  /// #funcchain: append a segment. Fails if the chain was never declared.
  common::Status add(const std::string& name, std::function<void()> segment);

  /// Invoke every segment in registration order. Returns the number of
  /// segments run, or an error for an unknown chain.
  common::Result<std::size_t> invoke(const std::string& name);

  bool has_chain(const std::string& name) const {
    return chains_.count(name) != 0;
  }
  std::size_t segment_count(const std::string& name) const {
    auto it = chains_.find(name);
    return it == chains_.end() ? 0 : it->second.size();
  }

 private:
  std::map<std::string, std::vector<std::function<void()>>> chains_;
};

}  // namespace rmc::dynk
