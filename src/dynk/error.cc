#include "dynk/error.h"

namespace rmc::dynk {

const char* runtime_error_name(RuntimeErrorKind kind) {
  switch (kind) {
    case RuntimeErrorKind::kDivideByZero: return "divide_by_zero";
    case RuntimeErrorKind::kRangeFault: return "range_fault";
    case RuntimeErrorKind::kStackOverflow: return "stack_overflow";
    case RuntimeErrorKind::kBadInterrupt: return "bad_interrupt";
    case RuntimeErrorKind::kXmemFault: return "xmem_fault";
    case RuntimeErrorKind::kWatchdog: return "watchdog";
  }
  return "unknown";
}

void ErrorDispatcher::raise(const RuntimeErrorInfo& info) {
  history_.push_back(info);
  if (handler_) {
    handler_(info);
    return;
  }
  fatal_ = true;  // no handler: the ROM would reset the board
}

}  // namespace rmc::dynk
