#include "dynk/cryptodev.h"

#include <algorithm>

#include "telemetry/metrics.h"

namespace rmc::dynk {

namespace {
using rabbit::CryptoCell;
using rabbit::CryptoCellError;
using rabbit::CryptoCellOp;

telemetry::Counter& ops_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("cryptocell.ops");
  return c;
}
telemetry::Counter& stall_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("cryptocell.stall_cycles");
  return c;
}

common::Status engine_error_status(CryptoCellError err, const char* what) {
  switch (err) {
    case CryptoCellError::kBadOp:
      return common::make_error(common::ErrorCode::kInternal,
                                std::string(what) + ": engine rejected op");
    case CryptoCellError::kBadKeySlot:
      return common::make_error(common::ErrorCode::kInternal,
                                std::string(what) + ": bad key slot");
    case CryptoCellError::kBadLength:
      return common::make_error(common::ErrorCode::kInvalidArgument,
                                std::string(what) + ": bad length");
    case CryptoCellError::kRingMisconfig:
      return common::make_error(common::ErrorCode::kInternal,
                                std::string(what) + ": ring misconfigured");
    case CryptoCellError::kNone:
      break;
  }
  return common::make_error(common::ErrorCode::kInternal,
                            std::string(what) + ": unknown engine error");
}

const common::Status kAbsent = common::make_error(
    common::ErrorCode::kUnavailable, "crypto engine not present");
}  // namespace

CryptoDev::CryptoDev(rabbit::IoBus& bus, rabbit::Memory& mem, u16 base,
                     Layout layout)
    : bus_(&bus), mem_(&mem), base_(base), layout_(layout) {
  probe();
}

bool CryptoDev::probe() {
  present_ = bus_->read(base_) == CryptoCell::kIdValue;
  ring_programmed_ = false;  // hardware may have changed under us
  tail_ = 0;
  pending_ = Pending{};
  for (auto& s : slot_cache_) s = SlotCache{};
  return present_;
}

u8 CryptoDev::rd(u16 reg) { return bus_->read(static_cast<u16>(base_ + reg)); }
void CryptoDev::wr(u16 reg, u8 value) {
  bus_->write(static_cast<u16>(base_ + reg), value);
}

void CryptoDev::program_ring() {
  wr(3, static_cast<u8>(layout_.ring & 0xFF));
  wr(4, static_cast<u8>((layout_.ring >> 8) & 0xFF));
  wr(5, static_cast<u8>((layout_.ring >> 16) & 0x0F));
  wr(6, layout_.ring_capacity);
  tail_ = rd(7);  // resync with the engine's head (0 after reset)
  wr(8, tail_);
  ring_programmed_ = true;
}

void CryptoDev::write_addr24(u32 field, u32 addr) {
  mem_->write_phys(field, static_cast<u8>(addr & 0xFF));
  mem_->write_phys(field + 1, static_cast<u8>((addr >> 8) & 0xFF));
  mem_->write_phys(field + 2, static_cast<u8>((addr >> 16) & 0x0F));
}

void CryptoDev::push_descriptor(CryptoCellOp op, u8 slot, u32 src, u32 dst,
                                std::size_t len, u32 iv_addr) {
  const u32 d = layout_.ring + tail_ * static_cast<u32>(
                                          CryptoCell::kDescriptorBytes);
  mem_->write_phys(d + 0, static_cast<u8>(op));
  mem_->write_phys(d + 1, slot);
  write_addr24(d + 2, src);
  write_addr24(d + 5, dst);
  mem_->write_phys(d + 8, static_cast<u8>(len & 0xFF));
  mem_->write_phys(d + 9, static_cast<u8>((len >> 8) & 0xFF));
  write_addr24(d + 10, iv_addr);
  mem_->write_phys(d + 13, 0);  // polled completion; IRQ mode unused here
  mem_->write_phys(d + 14, 0);  // status: engine writes 1 ok / 2 error
  mem_->write_phys(d + 15, 0);
  tail_ = static_cast<u8>((tail_ + 1) % layout_.ring_capacity);
  wr(8, tail_);
}

common::Status CryptoDev::recover(const char* what) {
  const auto err = static_cast<CryptoCellError>(rd(9));
  wr(1, CryptoCell::kStatusError | CryptoCell::kStatusDone);  // ack latches
  wr(2, CryptoCell::kCtrlReset);  // ring halted at the bad descriptor
  ring_programmed_ = false;
  for (auto& s : slot_cache_) s = SlotCache{};  // reset cleared the slots
  ++engine_errors_;
  return engine_error_status(err, what);
}

common::Status CryptoDev::run_to_completion() {
  wr(2, CryptoCell::kCtrlGo);
  u8 status = rd(1);
  while (status & CryptoCell::kStatusBusy) {
    // CCSR only defines bits 0-2, so 0xFF is the floating bus: the card was
    // pulled after the probe. Without this check the stuck busy bit would
    // spin the driver forever.
    if (status == 0xFF) {
      present_ = false;
      pending_ = Pending{};
      return kAbsent;
    }
    constexpr u64 kSpinQuantum = 64;
    bus_->tick(kSpinQuantum);
    stall_cycles_ += kSpinQuantum;
    stall_counter().add(kSpinQuantum);
    status = rd(1);
  }
  if (status & CryptoCell::kStatusError) return recover("cryptodev");
  wr(1, CryptoCell::kStatusDone);
  return common::Status::ok();
}

common::Result<int> CryptoDev::ensure_key(bool mac, std::span<const u8> key) {
  ++lru_clock_;
  int victim = 0;
  for (int i = 0; i < CryptoCell::kKeySlots; ++i) {
    SlotCache& s = slot_cache_[i];
    if (s.used && s.mac == mac && s.key.size() == key.size() &&
        std::equal(key.begin(), key.end(), s.key.begin())) {
      s.last_use = lru_clock_;
      ++key_cache_hits_;
      return i;
    }
    if (!slot_cache_[victim].used) continue;  // keep first free slot
    if (!s.used || s.last_use < slot_cache_[victim].last_use) victim = i;
  }

  if (!ring_programmed_) program_ring();
  for (std::size_t i = 0; i < key.size(); ++i) {
    mem_->write_phys(layout_.key_staging + static_cast<u32>(i), key[i]);
  }
  push_descriptor(mac ? CryptoCellOp::kLoadMacKey : CryptoCellOp::kLoadAesKey,
                  static_cast<u8>(victim), layout_.key_staging, 0, key.size(),
                  0);
  if (auto st = run_to_completion(); !st.is_ok()) return st;
  slot_cache_[victim] =
      SlotCache{true, mac, std::vector<u8>(key.begin(), key.end()),
                lru_clock_};
  ++key_loads_;
  return victim;
}

common::Status CryptoDev::stage_and_go(CryptoCellOp op,
                                       std::span<const u8> key,
                                       std::span<const u8> iv,
                                       std::span<const u8> data) {
  if (!present_) return kAbsent;
  if (pending_.kind != Pending::kNone) {
    return common::make_error(common::ErrorCode::kFailedPrecondition,
                              "cryptodev: op already in flight");
  }
  if (data.size() > kMaxDataBytes) {
    return common::make_error(common::ErrorCode::kInvalidArgument,
                              "cryptodev: op exceeds bounce buffer");
  }
  const bool is_mac = op == CryptoCellOp::kHmacSha1;
  auto slot = ensure_key(is_mac, key);
  if (!slot.ok()) return slot.status();

  if (!ring_programmed_) program_ring();
  for (std::size_t i = 0; i < data.size(); ++i) {
    mem_->write_phys(layout_.src + static_cast<u32>(i), data[i]);
  }
  u32 iv_addr = 0;
  if (!is_mac) {
    for (std::size_t i = 0; i < iv.size(); ++i) {
      mem_->write_phys(layout_.iv + static_cast<u32>(i), iv[i]);
    }
    iv_addr = layout_.iv;
  }
  const u32 dst = is_mac ? layout_.digest : layout_.dst;
  push_descriptor(op, static_cast<u8>(*slot), layout_.src, dst, data.size(),
                  iv_addr);
  wr(2, CryptoCell::kCtrlGo);
  pending_.kind = is_mac ? Pending::kHmac : Pending::kAes;
  pending_.len = data.size();
  return common::Status::ok();
}

common::Status CryptoDev::submit_aes_cbc(bool encrypt,
                                         std::span<const u8> key,
                                         std::span<const u8> iv,
                                         std::span<const u8> data) {
  if (data.empty() || data.size() % crypto::kAesBlockBytes != 0) {
    return common::make_error(common::ErrorCode::kInvalidArgument,
                              "cryptodev: AES length not a block multiple");
  }
  return stage_and_go(encrypt ? CryptoCellOp::kAesCbcEncrypt
                              : CryptoCellOp::kAesCbcDecrypt,
                      key, iv, data);
}

common::Status CryptoDev::submit_hmac_sha1(std::span<const u8> key,
                                           std::span<const u8> message) {
  return stage_and_go(CryptoCellOp::kHmacSha1, key, {}, message);
}

common::Status CryptoDev::poll(u64 quantum) {
  if (!present_) return kAbsent;
  if (pending_.kind == Pending::kNone) {
    return common::make_error(common::ErrorCode::kFailedPrecondition,
                              "cryptodev: no op in flight");
  }
  u8 status = rd(1);
  if (status & CryptoCell::kStatusBusy) {
    if (status == 0xFF) {  // floating bus: card pulled mid-op (see above)
      present_ = false;
      pending_ = Pending{};
      return kAbsent;
    }
    bus_->tick(quantum);
    stall_cycles_ += quantum;
    stall_counter().add(quantum);
    status = rd(1);
    if (status & CryptoCell::kStatusBusy) {
      return common::make_error(common::ErrorCode::kUnavailable,
                                "cryptodev: engine busy");
    }
  }
  if (status & CryptoCell::kStatusError) {
    pending_ = Pending{};
    return recover("cryptodev.poll");
  }
  wr(1, CryptoCell::kStatusDone);
  ++ops_;
  ops_counter().add();
  return common::Status::ok();
}

std::vector<u8> CryptoDev::take_data() {
  std::vector<u8> out(pending_.len);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = mem_->read_phys(layout_.dst + static_cast<u32>(i));
  }
  pending_ = Pending{};
  return out;
}

std::array<u8, 20> CryptoDev::take_digest() {
  std::array<u8, 20> out{};
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = mem_->read_phys(layout_.digest + static_cast<u32>(i));
  }
  pending_ = Pending{};
  return out;
}

common::Result<std::vector<u8>> CryptoDev::aes_cbc(bool encrypt,
                                                   std::span<const u8> key,
                                                   std::span<const u8> iv,
                                                   std::span<const u8> data) {
  if (auto st = submit_aes_cbc(encrypt, key, iv, data); !st.is_ok()) return st;
  // kUnavailable with the op still pending = engine busy, keep spinning;
  // with pending cleared it means the card vanished mid-op — bail out.
  common::Status st = poll();
  while (!st.is_ok() && st.code() == common::ErrorCode::kUnavailable &&
         op_pending()) {
    st = poll();
  }
  if (!st.is_ok()) return st;
  return take_data();
}

common::Result<std::array<u8, 20>> CryptoDev::hmac_sha1(
    std::span<const u8> key, std::span<const u8> message) {
  if (auto st = submit_hmac_sha1(key, message); !st.is_ok()) return st;
  common::Status st = poll();
  while (!st.is_ok() && st.code() == common::ErrorCode::kUnavailable &&
         op_pending()) {
    st = poll();
  }
  if (!st.is_ok()) return st;
  return take_digest();
}

}  // namespace rmc::dynk
