// CryptoDev — the Dynamic C-style driver for the CryptoCell offload engine.
//
// The driver owns the engine's programming model the way a Dynamic C
// library owns a peripheral: it probes the identity register (a floating
// bus reads 0xFF, so a stock board without the expansion card fails the
// probe and every op reports kUnavailable), lays the descriptor ring and
// bounce buffers out in SRAM, manages the 8 hardware key slots as a
// content-addressed LRU cache so the record layer can stay key-stateless,
// and exposes two call styles:
//
//   * blocking — aes_cbc()/hmac_sha1() submit and spin the bus's tick()
//     until the busy bit clears (the simple foreground-loop shape);
//   * async — submit_*() then poll(quantum) from a costatement/cofunction:
//     poll ticks the bus a quantum at a time and returns kUnavailable
//     until the op completes, which is exactly the waitfor() idiom.
//
// Cycles the CPU spends waiting on the engine are accumulated in
// stall_cycles_total() (and the `cryptocell.stall_cycles` telemetry
// counter); completed data ops count in `cryptocell.ops`. The blocking API
// implements issl::RecordEngine, making CryptoDev the bridge between the
// issl record layer and the rabbit peripheral without issl ever linking
// against either.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "issl/engine.h"
#include "rabbit/cryptocell.h"
#include "rabbit/io.h"
#include "rabbit/memory.h"

namespace rmc::dynk {

using common::u16;
using common::u32;
using common::u64;
using common::u8;

class CryptoDev : public issl::RecordEngine {
 public:
  /// SRAM carve-out for the ring and bounce buffers. Defaults sit above the
  /// stack segment (0x8E000+) and below the top of SRAM, clear of the data
  /// segment the board maps at 0x80000.
  struct Layout {
    u32 ring = 0x90000;         // ring_capacity * 16 descriptor bytes
    u8 ring_capacity = 16;
    u32 key_staging = 0x90100;  // 64 B, key bytes for slot loads
    u32 iv = 0x90140;           // 16 B
    u32 digest = 0x90150;       // 20 B, HMAC output
    u32 src = 0x94000;          // kMaxDataBytes, op input
    u32 dst = 0x99000;          // kMaxDataBytes, op output
  };

  /// Largest single op: an issl record (16 KiB plaintext) plus MAC, padding
  /// and slack. Larger requests fail kInvalidArgument instead of clipping.
  static constexpr std::size_t kMaxDataBytes = 0x4800;

  /// Probes once at construction; re-probe with probe() after attaching or
  /// detaching hardware.
  CryptoDev(rabbit::IoBus& bus, rabbit::Memory& mem, u16 base, Layout layout);
  CryptoDev(rabbit::IoBus& bus, rabbit::Memory& mem, u16 base = 0x0100)
      : CryptoDev(bus, mem, base, Layout{}) {}

  /// Re-read the identity register; updates available().
  bool probe();
  bool available() const override { return present_; }

  // --- Blocking ops (issl::RecordEngine) ---------------------------------
  common::Result<std::vector<u8>> aes_cbc(bool encrypt,
                                          std::span<const u8> key,
                                          std::span<const u8> iv,
                                          std::span<const u8> data) override;
  common::Result<std::array<u8, 20>> hmac_sha1(
      std::span<const u8> key, std::span<const u8> message) override;
  u64 stall_cycles_total() const override { return stall_cycles_; }

  // --- Async ops (cofunction-friendly) -----------------------------------
  /// Stage and start an op; at most one op may be outstanding
  /// (kFailedPrecondition otherwise, kUnavailable when no engine).
  common::Status submit_aes_cbc(bool encrypt, std::span<const u8> key,
                                std::span<const u8> iv,
                                std::span<const u8> data);
  common::Status submit_hmac_sha1(std::span<const u8> key,
                                  std::span<const u8> message);
  bool op_pending() const { return pending_.kind != Pending::kNone; }
  /// Advance the bus `quantum` cycles and check the status register:
  /// kUnavailable while the engine is still busy (call again — the waitfor
  /// shape), Ok once the op completed (fetch results with take_data() /
  /// take_digest()), or the mapped engine error.
  common::Status poll(u64 quantum = 256);
  /// Output of the completed AES op (valid after poll() returned Ok).
  std::vector<u8> take_data();
  /// Digest of the completed HMAC op (valid after poll() returned Ok).
  std::array<u8, 20> take_digest();

  // --- Introspection ------------------------------------------------------
  u64 ops_completed() const { return ops_; }
  u64 key_loads() const { return key_loads_; }
  u64 key_cache_hits() const { return key_cache_hits_; }
  u64 engine_errors() const { return engine_errors_; }

 private:
  struct Pending {
    enum Kind : u8 { kNone, kAes, kHmac } kind = kNone;
    std::size_t len = 0;
  };
  struct SlotCache {
    bool used = false;
    bool mac = false;
    std::vector<u8> key;
    u64 last_use = 0;
  };

  u8 rd(u16 reg);
  void wr(u16 reg, u8 value);
  void write_addr24(u32 desc_field_phys, u32 addr);
  /// Write descriptor `fields` into ring slot tail_ and advance tail_.
  void push_descriptor(rabbit::CryptoCellOp op, u8 slot, u32 src, u32 dst,
                       std::size_t len, u32 iv_addr);
  void program_ring();
  /// GO + spin until idle; classifies CCSR into a Status. Used for key
  /// loads and as the engine half of the blocking ops.
  common::Status run_to_completion();
  /// After an error latch: ack, soft-reset the engine (its ring halts at
  /// the bad descriptor), reprogram, and drop the key cache (slots were
  /// cleared by the reset).
  common::Status recover(const char* what);
  /// Ensure `key` occupies a hardware slot of the right kind; returns the
  /// slot index. Loads through the ring (blocking) on a cache miss,
  /// evicting the least-recently-used slot.
  common::Result<int> ensure_key(bool mac, std::span<const u8> key);
  common::Status stage_and_go(rabbit::CryptoCellOp op,
                              std::span<const u8> key,
                              std::span<const u8> iv,
                              std::span<const u8> data);

  rabbit::IoBus* bus_;
  rabbit::Memory* mem_;
  u16 base_;
  Layout layout_;
  bool present_ = false;
  bool ring_programmed_ = false;
  u8 tail_ = 0;
  Pending pending_;
  u64 lru_clock_ = 0;
  std::array<SlotCache, rabbit::CryptoCell::kKeySlots> slot_cache_;

  u64 stall_cycles_ = 0;
  u64 ops_ = 0;
  u64 key_loads_ = 0;
  u64 key_cache_hits_ = 0;
  u64 engine_errors_ = 0;
};

}  // namespace rmc::dynk
