#include "dynk/xalloc.h"

#include "telemetry/metrics.h"

namespace rmc::dynk {

using common::ErrorCode;
using common::Result;
using common::Status;

namespace {
// The gauge's max() is the xalloc high-water mark across all arenas — the
// paper's "memory you can never get back" number for E7.
telemetry::Gauge& used_gauge() {
  static telemetry::Gauge& g =
      telemetry::Registry::global().gauge("dynk.xalloc_used_bytes");
  return g;
}
telemetry::Counter& fail_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.xalloc_failures");
  return c;
}
}  // namespace

Result<XmemHandle> XallocArena::xalloc(std::size_t n, std::size_t align) {
  if (n == 0 || align == 0 || (align & (align - 1)) != 0) {
    return Status(ErrorCode::kInvalidArgument, "bad xalloc request");
  }
  // Exhaustion boundary, subtraction-only: the old `aligned + n > capacity_`
  // could wrap for a huge n (or a huge align wrapping `used_ + align - 1`),
  // pass the check, and leave used_ > capacity_ — after which remaining()
  // underflowed to ~SIZE_MAX and the arena believed it was nearly empty.
  // Padding is charged exactly when the allocation it precedes succeeds
  // (a failed request leaves used_ untouched, so remaining() is consistent
  // across the failure), and used_ <= capacity_ is now an invariant.
  const std::size_t pad = (align - (used_ & (align - 1))) & (align - 1);
  if (pad > capacity_ - used_ || n > capacity_ - used_ - pad) {
    ++failures_;
    fail_counter().add();
    return Status(ErrorCode::kResourceExhausted,
                  "xalloc arena exhausted (no free exists; restart required)");
  }
  const std::size_t aligned = used_ + pad;
  used_ = aligned + n;
  ++allocations_;
  used_gauge().set(static_cast<telemetry::i64>(used_));
  return base_ + static_cast<common::u32>(aligned);
}

}  // namespace rmc::dynk
