#include "dynk/xalloc.h"

namespace rmc::dynk {

using common::ErrorCode;
using common::Result;
using common::Status;

Result<XmemHandle> XallocArena::xalloc(std::size_t n, std::size_t align) {
  if (n == 0 || align == 0 || (align & (align - 1)) != 0) {
    return Status(ErrorCode::kInvalidArgument, "bad xalloc request");
  }
  const std::size_t aligned = (used_ + align - 1) & ~(align - 1);
  if (aligned + n > capacity_) {
    ++failures_;
    return Status(ErrorCode::kResourceExhausted,
                  "xalloc arena exhausted (no free exists; restart required)");
  }
  used_ = aligned + n;
  ++allocations_;
  return base_ + static_cast<common::u32>(aligned);
}

}  // namespace rmc::dynk
