#include "dynk/costate.h"

#include "telemetry/metrics.h"

namespace rmc::dynk {

using common::ErrorCode;
using common::Status;

namespace {
telemetry::Gauge& slots_gauge() {
  static telemetry::Gauge& g =
      telemetry::Registry::global().gauge("dynk.costate_slots_in_use");
  return g;
}
telemetry::Counter& slots_exhausted_counter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("dynk.costate_slots_exhausted");
  return c;
}
}  // namespace

Status Scheduler::add(Costate task, std::string name) {
  if (tasks_.size() >= max_slots_) {
    slots_exhausted_counter().add();
    return Status(ErrorCode::kResourceExhausted,
                  "all " + std::to_string(max_slots_) +
                      " costatement slots in use (recompile with more)");
  }
  if (!task.valid()) {
    return Status(ErrorCode::kInvalidArgument, "invalid costate");
  }
  tasks_.push_back(std::move(task));
  names_.push_back(name.empty() ? "costate" + std::to_string(tasks_.size())
                                : std::move(name));
  slots_gauge().set(static_cast<telemetry::i64>(tasks_.size()));
  return Status::ok();
}

std::size_t Scheduler::tick(common::u32 ms_per_tick) {
  std::size_t ran = 0;
  // Index-based: a running task may add() new tasks (the fork-style
  // acceptor does), which can reallocate the vector. New tasks first run on
  // the next tick.
  const std::size_t n = tasks_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (tasks_[i].poll()) ++ran;
  }
  now_ms_ += ms_per_tick;
  ++tick_count_;
  return ran;
}

bool Scheduler::run(common::u64 max_ticks, common::u32 ms_per_tick) {
  for (common::u64 i = 0; i < max_ticks; ++i) {
    if (all_done()) return true;
    tick(ms_per_tick);
  }
  return all_done();
}

std::size_t Scheduler::tasks_done() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) {
    if (t.done()) ++n;
  }
  return n;
}

}  // namespace rmc::dynk
