// Byte-level utilities shared by every subsystem.
//
// The simulated target is an 8-bit little-endian machine (Rabbit 2000), so
// 8/16-bit loads/stores and hex formatting show up everywhere: the CPU core,
// the assembler, the compiler's constant emission, and the crypto test
// vectors. Centralising them keeps endianness handling in one audited place.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rmc::common {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Bytes of a 16-bit value, little-endian (Rabbit/Z80 memory order).
constexpr u8 lo8(u16 v) { return static_cast<u8>(v & 0xFF); }
constexpr u8 hi8(u16 v) { return static_cast<u8>((v >> 8) & 0xFF); }
constexpr u16 make16(u8 lo, u8 hi) {
  return static_cast<u16>(static_cast<u16>(lo) | (static_cast<u16>(hi) << 8));
}

/// Load/store little-endian 16/32-bit values from byte buffers.
constexpr u16 load16le(std::span<const u8> b) { return make16(b[0], b[1]); }
constexpr u32 load32le(std::span<const u8> b) {
  return static_cast<u32>(b[0]) | (static_cast<u32>(b[1]) << 8) |
         (static_cast<u32>(b[2]) << 16) | (static_cast<u32>(b[3]) << 24);
}
constexpr u32 load32be(std::span<const u8> b) {
  return (static_cast<u32>(b[0]) << 24) | (static_cast<u32>(b[1]) << 16) |
         (static_cast<u32>(b[2]) << 8) | static_cast<u32>(b[3]);
}
constexpr void store16le(std::span<u8> b, u16 v) {
  b[0] = lo8(v);
  b[1] = hi8(v);
}
constexpr void store32le(std::span<u8> b, u32 v) {
  b[0] = static_cast<u8>(v);
  b[1] = static_cast<u8>(v >> 8);
  b[2] = static_cast<u8>(v >> 16);
  b[3] = static_cast<u8>(v >> 24);
}
constexpr void store32be(std::span<u8> b, u32 v) {
  b[0] = static_cast<u8>(v >> 24);
  b[1] = static_cast<u8>(v >> 16);
  b[2] = static_cast<u8>(v >> 8);
  b[3] = static_cast<u8>(v);
}

/// Rotate helpers used by the crypto kernels.
constexpr u32 rotl32(u32 v, unsigned n) {
  n &= 31U;
  return n == 0 ? v : (v << n) | (v >> (32U - n));
}
constexpr u32 rotr32(u32 v, unsigned n) { return rotl32(v, 32U - (n & 31U)); }
constexpr u8 rotl8(u8 v, unsigned n) {
  n &= 7U;
  return n == 0 ? v : static_cast<u8>((v << n) | (v >> (8U - n)));
}

/// Format bytes as lowercase hex ("deadbeef"). Used by tests and dumps.
std::string to_hex(std::span<const u8> bytes);

/// Parse hex text ("dead beef", case-insensitive, whitespace ignored) into
/// bytes. Returns empty vector on malformed input with an odd nibble count or
/// a non-hex character.
std::vector<u8> from_hex(std::string_view text);

/// Classic side-by-side hex dump (offset / bytes / ASCII), one row per 16
/// bytes, suitable for serial-console debugging output.
std::string hexdump(std::span<const u8> bytes, u32 base_addr = 0);

/// Constant-time comparison for MACs and key material: never early-exits on
/// the first mismatching byte.
bool ct_equal(std::span<const u8> a, std::span<const u8> b);

}  // namespace rmc::common
