// RingLog — the paper's "circular buffer instead of a log file" fix (§5).
//
// The original Unix service logged to the filesystem; the RMC2000 has none.
// The port's documented solution is a fixed-capacity circular buffer that
// overwrites the oldest entries. This type reproduces that behaviour and is
// used by the embedded redirector service; the Unix-style service uses an
// unbounded sink instead (see services/).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace rmc::common {

class RingLog {
 public:
  /// `capacity_bytes` bounds the total payload stored, mimicking a static
  /// buffer carved out of SRAM. Entries are dropped oldest-first when a new
  /// entry would exceed the budget. A single entry larger than the capacity
  /// is truncated to fit.
  explicit RingLog(std::size_t capacity_bytes);

  /// Append one log line (newline not required).
  void append(std::string_view line);

  /// Oldest-to-newest snapshot of retained entries.
  std::vector<std::string> entries() const;

  std::size_t entry_count() const { return entries_.size(); }
  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return capacity_; }

  /// Total appends ever made, including those since evicted — lets tests and
  /// benches measure how much history a given SRAM budget retains.
  std::size_t total_appended() const { return total_appended_; }
  std::size_t dropped() const { return total_appended_ - entries_.size(); }

  void clear();

 private:
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t total_appended_ = 0;
  std::deque<std::string> entries_;
};

}  // namespace rmc::common
