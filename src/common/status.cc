#include "common/status.h"

namespace rmc::common {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnimplemented: return "unimplemented";
    case ErrorCode::kDataLoss: return "data_loss";
    case ErrorCode::kAborted: return "aborted";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = error_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rmc::common
