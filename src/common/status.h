// Lightweight status / result types.
//
// The embedded idiom (and the paper's target environment) has no exceptions;
// library entry points report failure through return values. `Status` carries
// an error code plus a human-readable message; `Result<T>` is a tiny
// expected-like wrapper so APIs can return values without out-parameters.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace rmc::common {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // e.g. xalloc arena full, no free costatement slot
  kFailedPrecondition,
  kUnimplemented,
  kDataLoss,     // MAC failure, corrupt record
  kAborted,      // peer reset, handshake failure
  kTimeout,
  kUnavailable,  // would-block: try again after more ticks
  kInternal,
};

/// Human-readable name of an error code ("resource_exhausted", ...).
const char* error_code_name(ErrorCode code);

class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>" for logs and test failure output.
  std::string to_string() const;

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status make_error(ErrorCode code, std::string message) {
  return Status(code, std::move(message));
}

/// Minimal expected<T, Status>. Intentionally tiny: value() asserts on error
/// (callers must check ok() first), mirroring the project's no-exceptions
/// policy.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : data_(std::move(status)) {    // NOLINT(implicit)
    assert(!std::get<Status>(data_).is_ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  Status status() const {
    if (ok()) return Status::ok();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace rmc::common
