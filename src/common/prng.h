// Deterministic PRNGs.
//
// Two generators live here for two different reasons:
//  * `Xorshift64` — the simulation-side source of randomness (network loss,
//    test fuzzing, nonce generation in the host build). Fast, seedable,
//    reproducible.
//  * `Rmc16Rand` — a reproduction of the tiny 16-bit generator the port had
//    to write because "Dynamic C does not provide the standard random
//    function" (§5). It is a classic 16-bit LCG of exactly the kind one
//    writes on an 8-bit micro: cheap, low quality, good enough for session
//    nonces in a case study. The embedded issl build draws from it.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.h"

namespace rmc::common {

class Xorshift64 {
 public:
  explicit Xorshift64(u64 seed = 0x9E3779B97F4A7C15ULL)
      : state_(seed ? seed : 1) {}

  u64 next() {
    u64 x = state_;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state_ = x;
    return x;
  }

  u32 next_u32() { return static_cast<u32>(next() >> 32); }
  u8 next_u8() { return static_cast<u8>(next() >> 56); }

  /// Uniform in [0, bound). bound must be nonzero.
  u32 next_below(u32 bound) { return next_u32() % bound; }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0) return false;
    if (p >= 1) return true;
    return (next() >> 11) * 0x1.0p-53 < p;
  }

  void fill(std::span<u8> out) {
    for (auto& b : out) b = next_u8();
  }

 private:
  u64 state_;
};

/// The "we had to write random() ourselves" generator: a 16-bit multiplicative
/// LCG (x' = 25173*x + 13849 mod 2^16), seeded from a timer value on the real
/// board, from an explicit seed here.
class Rmc16Rand {
 public:
  explicit Rmc16Rand(u16 seed = 0x1234) : state_(seed) {}

  u16 next() {
    state_ = static_cast<u16>(25173U * state_ + 13849U);
    return state_;
  }

  u8 next_u8() { return static_cast<u8>(next() >> 8); }

  void fill(std::span<u8> out) {
    for (auto& b : out) b = next_u8();
  }

 private:
  u16 state_;
};

}  // namespace rmc::common
