#include "common/ringlog.h"

namespace rmc::common {

RingLog::RingLog(std::size_t capacity_bytes) : capacity_(capacity_bytes) {}

void RingLog::append(std::string_view line) {
  ++total_appended_;
  std::string entry(line.substr(0, capacity_));
  while (!entries_.empty() && used_ + entry.size() > capacity_) {
    used_ -= entries_.front().size();
    entries_.pop_front();
  }
  if (entry.size() > capacity_) return;  // capacity 0 edge case
  used_ += entry.size();
  entries_.push_back(std::move(entry));
}

std::vector<std::string> RingLog::entries() const {
  return {entries_.begin(), entries_.end()};
}

void RingLog::clear() {
  entries_.clear();
  used_ = 0;
}

}  // namespace rmc::common
