#include "common/bytes.h"

#include <array>
#include <cctype>

namespace rmc::common {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int nibble_of(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(std::span<const u8> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (u8 b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::vector<u8> from_hex(std::string_view text) {
  std::vector<u8> out;
  out.reserve(text.size() / 2);
  int pending = -1;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    const int n = nibble_of(c);
    if (n < 0) return {};
    if (pending < 0) {
      pending = n;
    } else {
      out.push_back(static_cast<u8>((pending << 4) | n));
      pending = -1;
    }
  }
  if (pending >= 0) return {};  // odd nibble count
  return out;
}

std::string hexdump(std::span<const u8> bytes, u32 base_addr) {
  std::string out;
  for (std::size_t row = 0; row < bytes.size(); row += 16) {
    char addr[16];
    std::snprintf(addr, sizeof addr, "%06x  ",
                  static_cast<unsigned>(base_addr + row));
    out += addr;
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < bytes.size()) {
        const u8 b = bytes[row + i];
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0xF]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < bytes.size(); ++i) {
      const u8 b = bytes[row + i];
      out.push_back((b >= 0x20 && b < 0x7F) ? static_cast<char>(b) : '.');
    }
    out += "|\n";
  }
  return out;
}

bool ct_equal(std::span<const u8> a, std::span<const u8> b) {
  if (a.size() != b.size()) return false;
  u8 acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<u8>(a[i] ^ b[i]);
  return acc == 0;
}

}  // namespace rmc::common
