// RSA key exchange — present in the original issl, dropped from the embedded
// port ("we only ported the AES cipher ... the RSA algorithm uses a
// difficult-to-port bignum package", paper §2). The Unix-side issl build
// uses this; the embedded issl configuration compiles it out (see
// issl/config.h) exactly as the port did.
#pragma once

#include <vector>

#include "common/prng.h"
#include "common/status.h"
#include "crypto/bignum.h"

namespace rmc::crypto {

struct RsaPublicKey {
  BigNum n;  // modulus
  BigNum e;  // public exponent
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaPrivateKey {
  BigNum n;
  BigNum d;  // private exponent
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate a key pair with a modulus of roughly `bits` bits (e = 65537).
/// Intended for tests/benches (<= 1024 bits); not hardened key generation.
RsaKeyPair rsa_generate(std::size_t bits, common::Xorshift64& rng);

/// PKCS#1 v1.5-style type-2 encryption: message must be at most
/// modulus_bytes - 11. Output is exactly modulus_bytes long.
common::Result<std::vector<u8>> rsa_encrypt(const RsaPublicKey& key,
                                            std::span<const u8> message,
                                            common::Xorshift64& rng);

/// Inverse of rsa_encrypt; fails on bad padding (wrong key / corrupt data).
common::Result<std::vector<u8>> rsa_decrypt(const RsaPrivateKey& key,
                                            std::span<const u8> ciphertext);

}  // namespace rmc::crypto
