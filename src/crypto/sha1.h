// SHA-1 and HMAC-SHA1 — the integrity primitives of the issl record layer
// and the PRF used for session-key derivation (SSL 3.0 / TLS 1.0 vintage,
// matching the paper's 2002-era protocol stack).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "common/bytes.h"

namespace rmc::crypto {

using common::u8;

inline constexpr std::size_t kSha1DigestBytes = 20;

/// Incremental SHA-1 (FIPS 180-1).
class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const u8> data);
  std::array<u8, kSha1DigestBytes> finish();

  /// One-shot convenience.
  static std::array<u8, kSha1DigestBytes> digest(std::span<const u8> data);

 private:
  void process_block(const u8* block);

  std::array<common::u32, 5> h_{};
  std::array<u8, 64> buffer_{};
  std::size_t buffered_ = 0;
  common::u64 total_bytes_ = 0;
};

/// HMAC-SHA1 (RFC 2104).
std::array<u8, kSha1DigestBytes> hmac_sha1(std::span<const u8> key,
                                           std::span<const u8> message);

/// Key-derivation PRF: expands (secret, label, seed) into `out.size()` bytes
/// by counter-mode HMAC-SHA1, the shape of the SSLv3/TLS key-block
/// expansion. Both issl endpoints must call it with identical inputs.
void prf_sha1(std::span<const u8> secret, std::span<const u8> label,
              std::span<const u8> seed, std::span<u8> out);

}  // namespace rmc::crypto
