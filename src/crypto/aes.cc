#include "crypto/aes.h"

#include <cassert>

namespace rmc::crypto {

using common::ErrorCode;
using common::Result;
using common::Status;

// ---------------------------------------------------------------------------
// GF(2^8) arithmetic and derived tables
// ---------------------------------------------------------------------------

u8 gf_mul(u8 a, u8 b) {
  u8 p = 0;
  while (b) {
    if (b & 1) p ^= a;
    const bool hi = (a & 0x80) != 0;
    a = static_cast<u8>(a << 1);
    if (hi) a ^= 0x1B;  // x^8 + x^4 + x^3 + x + 1
    b >>= 1;
  }
  return p;
}

namespace {

struct Tables {
  std::array<u8, 256> sbox;
  std::array<u8, 256> inv_sbox;
  std::array<u32, 256> te0, te1, te2, te3;

  Tables() {
    // Multiplicative inverse via log/antilog over generator 3.
    std::array<u8, 256> alog{}, log{};
    u8 x = 1;
    for (int i = 0; i < 255; ++i) {
      alog[i] = x;
      log[x] = static_cast<u8>(i);
      x = static_cast<u8>(x ^ gf_mul(x, 2));  // multiply by 3
    }
    auto inverse = [&](u8 v) -> u8 {
      if (v == 0) return 0;
      return alog[(255 - log[v]) % 255];
    };
    for (int i = 0; i < 256; ++i) {
      const u8 inv = inverse(static_cast<u8>(i));
      u8 s = inv;
      s = static_cast<u8>(s ^ common::rotl8(inv, 1) ^ common::rotl8(inv, 2) ^
                          common::rotl8(inv, 3) ^ common::rotl8(inv, 4) ^
                          0x63);
      sbox[i] = s;
      inv_sbox[s] = static_cast<u8>(i);
    }
    for (int i = 0; i < 256; ++i) {
      const u8 s = sbox[i];
      const u32 t = (static_cast<u32>(gf_mul(s, 2)) << 24) |
                    (static_cast<u32>(s) << 16) | (static_cast<u32>(s) << 8) |
                    gf_mul(s, 3);
      te0[i] = t;
      te1[i] = common::rotr32(t, 8);
      te2[i] = common::rotr32(t, 16);
      te3[i] = common::rotr32(t, 24);
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

constexpr unsigned rounds_for(std::size_t key_len) {
  return static_cast<unsigned>(key_len / 4 + 6);
}

}  // namespace

u8 aes_sbox(u8 x) { return tables().sbox[x]; }
u8 aes_inv_sbox(u8 x) { return tables().inv_sbox[x]; }

// ---------------------------------------------------------------------------
// Reference implementation
// ---------------------------------------------------------------------------

Result<Aes> Aes::create(std::span<const u8> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    return Status(ErrorCode::kInvalidArgument,
                  "AES key must be 16/24/32 bytes, got " +
                      std::to_string(key.size()));
  }
  Aes aes;
  aes.rounds_ = rounds_for(key.size());
  aes.expand_key(key);
  return aes;
}

void Aes::expand_key(std::span<const u8> key) {
  const unsigned nk = static_cast<unsigned>(key.size() / 4);
  const unsigned total_words = 4 * (rounds_ + 1);
  auto& t = tables();
  // Words stored directly into round_keys_ bytes (column-major order).
  for (unsigned i = 0; i < nk * 4; ++i) round_keys_[i] = key[i];
  u8 rcon = 0x01;
  for (unsigned i = nk; i < total_words; ++i) {
    u8 w[4] = {round_keys_[(i - 1) * 4 + 0], round_keys_[(i - 1) * 4 + 1],
               round_keys_[(i - 1) * 4 + 2], round_keys_[(i - 1) * 4 + 3]};
    if (i % nk == 0) {
      const u8 tmp = w[0];  // RotWord
      w[0] = static_cast<u8>(t.sbox[w[1]] ^ rcon);
      w[1] = t.sbox[w[2]];
      w[2] = t.sbox[w[3]];
      w[3] = t.sbox[tmp];
      rcon = gf_mul(rcon, 2);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : w) b = t.sbox[b];
    }
    for (unsigned j = 0; j < 4; ++j) {
      round_keys_[i * 4 + j] =
          static_cast<u8>(round_keys_[(i - nk) * 4 + j] ^ w[j]);
    }
  }
}

void Aes::encrypt_block(std::span<const u8> in, std::span<u8> out) const {
  assert(in.size() >= kAesBlockBytes && out.size() >= kAesBlockBytes);
  auto& t = tables();
  u8 st[16];
  for (int i = 0; i < 16; ++i) st[i] = static_cast<u8>(in[i] ^ round_keys_[i]);

  for (unsigned round = 1; round <= rounds_; ++round) {
    // SubBytes + ShiftRows combined.
    u8 tmp[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        tmp[4 * c + r] = t.sbox[st[4 * ((c + r) % 4) + r]];
      }
    }
    if (round < rounds_) {
      // MixColumns.
      for (int c = 0; c < 4; ++c) {
        const u8 a0 = tmp[4 * c], a1 = tmp[4 * c + 1], a2 = tmp[4 * c + 2],
                 a3 = tmp[4 * c + 3];
        st[4 * c + 0] = static_cast<u8>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
        st[4 * c + 1] = static_cast<u8>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
        st[4 * c + 2] = static_cast<u8>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
        st[4 * c + 3] = static_cast<u8>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
      }
    } else {
      for (int i = 0; i < 16; ++i) st[i] = tmp[i];
    }
    for (int i = 0; i < 16; ++i) st[i] ^= round_keys_[16 * round + i];
  }
  for (int i = 0; i < 16; ++i) out[i] = st[i];
}

void Aes::decrypt_block(std::span<const u8> in, std::span<u8> out) const {
  assert(in.size() >= kAesBlockBytes && out.size() >= kAesBlockBytes);
  auto& t = tables();
  u8 st[16];
  for (int i = 0; i < 16; ++i) {
    st[i] = static_cast<u8>(in[i] ^ round_keys_[16 * rounds_ + i]);
  }
  for (unsigned round = rounds_; round >= 1; --round) {
    // InvShiftRows + InvSubBytes.
    u8 tmp[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        tmp[4 * ((c + r) % 4) + r] = t.inv_sbox[st[4 * c + r]];
      }
    }
    for (int i = 0; i < 16; ++i) {
      st[i] = static_cast<u8>(tmp[i] ^ round_keys_[16 * (round - 1) + i]);
    }
    if (round > 1) {
      // InvMixColumns.
      for (int c = 0; c < 4; ++c) {
        const u8 a0 = st[4 * c], a1 = st[4 * c + 1], a2 = st[4 * c + 2],
                 a3 = st[4 * c + 3];
        st[4 * c + 0] = static_cast<u8>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^
                                        gf_mul(a2, 13) ^ gf_mul(a3, 9));
        st[4 * c + 1] = static_cast<u8>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^
                                        gf_mul(a2, 11) ^ gf_mul(a3, 13));
        st[4 * c + 2] = static_cast<u8>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^
                                        gf_mul(a2, 14) ^ gf_mul(a3, 11));
        st[4 * c + 3] = static_cast<u8>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^
                                        gf_mul(a2, 9) ^ gf_mul(a3, 14));
      }
    }
  }
  for (int i = 0; i < 16; ++i) out[i] = st[i];
}

// ---------------------------------------------------------------------------
// T-table implementation
// ---------------------------------------------------------------------------

Result<AesFast> AesFast::create(std::span<const u8> key) {
  auto ref = Aes::create(key);
  if (!ref.ok()) return ref.status();
  AesFast fast;
  fast.ref_ = *ref;
  fast.rounds_ = ref->rounds();
  // Expand again as big-endian words (a big-endian load of each 4-byte
  // group of the byte schedule gives the word schedule).
  const unsigned nk = static_cast<unsigned>(key.size() / 4);
  const unsigned total_words = 4 * (fast.rounds_ + 1);
  auto& t = tables();
  std::array<u8, 4 * 60> w{};
  for (unsigned i = 0; i < nk * 4; ++i) w[i] = key[i];
  u8 rcon = 0x01;
  for (unsigned i = nk; i < total_words; ++i) {
    u8 word[4] = {w[(i - 1) * 4 + 0], w[(i - 1) * 4 + 1], w[(i - 1) * 4 + 2],
                  w[(i - 1) * 4 + 3]};
    if (i % nk == 0) {
      const u8 tmp = word[0];
      word[0] = static_cast<u8>(t.sbox[word[1]] ^ rcon);
      word[1] = t.sbox[word[2]];
      word[2] = t.sbox[word[3]];
      word[3] = t.sbox[tmp];
      rcon = gf_mul(rcon, 2);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : word) b = t.sbox[b];
    }
    for (unsigned j = 0; j < 4; ++j) {
      w[i * 4 + j] = static_cast<u8>(w[(i - nk) * 4 + j] ^ word[j]);
    }
  }
  for (unsigned i = 0; i < total_words; ++i) {
    fast.enc_keys_[i] =
        common::load32be(std::span<const u8>(w.data() + i * 4, 4));
  }
  return fast;
}

void AesFast::encrypt_block(std::span<const u8> in, std::span<u8> out) const {
  assert(in.size() >= kAesBlockBytes && out.size() >= kAesBlockBytes);
  auto& t = tables();
  const u32* rk = enc_keys_.data();
  u32 s0 = common::load32be(in.subspan(0, 4)) ^ rk[0];
  u32 s1 = common::load32be(in.subspan(4, 4)) ^ rk[1];
  u32 s2 = common::load32be(in.subspan(8, 4)) ^ rk[2];
  u32 s3 = common::load32be(in.subspan(12, 4)) ^ rk[3];

  for (unsigned round = 1; round < rounds_; ++round) {
    rk += 4;
    const u32 t0 = t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xFF] ^
                   t.te2[(s2 >> 8) & 0xFF] ^ t.te3[s3 & 0xFF] ^ rk[0];
    const u32 t1 = t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xFF] ^
                   t.te2[(s3 >> 8) & 0xFF] ^ t.te3[s0 & 0xFF] ^ rk[1];
    const u32 t2 = t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xFF] ^
                   t.te2[(s0 >> 8) & 0xFF] ^ t.te3[s1 & 0xFF] ^ rk[2];
    const u32 t3 = t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xFF] ^
                   t.te2[(s1 >> 8) & 0xFF] ^ t.te3[s2 & 0xFF] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }
  rk += 4;
  auto final_word = [&](u32 a, u32 b, u32 c, u32 d, u32 k) {
    return (static_cast<u32>(t.sbox[a >> 24]) << 24 |
            static_cast<u32>(t.sbox[(b >> 16) & 0xFF]) << 16 |
            static_cast<u32>(t.sbox[(c >> 8) & 0xFF]) << 8 |
            static_cast<u32>(t.sbox[d & 0xFF])) ^
           k;
  };
  common::store32be(out.subspan(0, 4), final_word(s0, s1, s2, s3, rk[0]));
  common::store32be(out.subspan(4, 4), final_word(s1, s2, s3, s0, rk[1]));
  common::store32be(out.subspan(8, 4), final_word(s2, s3, s0, s1, rk[2]));
  common::store32be(out.subspan(12, 4), final_word(s3, s0, s1, s2, rk[3]));
}

void AesFast::decrypt_block(std::span<const u8> in, std::span<u8> out) const {
  ref_.decrypt_block(in, out);
}

}  // namespace rmc::crypto
