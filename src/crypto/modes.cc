#include "crypto/modes.h"

namespace rmc::crypto {

using common::ErrorCode;
using common::Result;
using common::Status;

std::vector<u8> pkcs7_pad(std::span<const u8> data, std::size_t block) {
  const std::size_t pad = block - (data.size() % block);
  std::vector<u8> out(data.begin(), data.end());
  out.insert(out.end(), pad, static_cast<u8>(pad));
  return out;
}

Result<std::vector<u8>> pkcs7_unpad(std::span<const u8> data,
                                    std::size_t block) {
  if (data.empty() || data.size() % block != 0) {
    return Status(ErrorCode::kDataLoss, "bad padded length");
  }
  const u8 pad = data.back();
  if (pad == 0 || pad > block) {
    return Status(ErrorCode::kDataLoss, "bad padding byte");
  }
  for (std::size_t i = data.size() - pad; i < data.size(); ++i) {
    if (data[i] != pad) {
      return Status(ErrorCode::kDataLoss, "inconsistent padding");
    }
  }
  return std::vector<u8>(data.begin(), data.end() - pad);
}

}  // namespace rmc::crypto
