#include "crypto/sha1.h"

#include <cstring>

namespace rmc::crypto {

using common::rotl32;
using common::u32;
using common::u64;

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::process_block(const u8* block) {
  u32 w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = common::load32be(std::span<const u8>(block + i * 4, 4));
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  u32 a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    u32 f, k;
    if (i < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const u32 tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const u8> data) {
  total_bytes_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == 64) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (off + 64 <= data.size()) {
    process_block(data.data() + off);
    off += 64;
  }
  if (off < data.size()) {
    std::memcpy(buffer_.data(), data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

std::array<u8, kSha1DigestBytes> Sha1::finish() {
  const u64 bit_len = total_bytes_ * 8;
  const u8 one = 0x80;
  update(std::span<const u8>(&one, 1));
  const u8 zero = 0x00;
  while (buffered_ != 56) update(std::span<const u8>(&zero, 1));
  u8 len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<u8>(bit_len >> (56 - 8 * i));
  }
  update(len);
  std::array<u8, kSha1DigestBytes> out{};
  for (int i = 0; i < 5; ++i) {
    common::store32be(std::span<u8>(out.data() + i * 4, 4), h_[i]);
  }
  reset();
  return out;
}

std::array<u8, kSha1DigestBytes> Sha1::digest(std::span<const u8> data) {
  Sha1 s;
  s.update(data);
  return s.finish();
}

std::array<u8, kSha1DigestBytes> hmac_sha1(std::span<const u8> key,
                                           std::span<const u8> message) {
  std::array<u8, 64> k{};
  if (key.size() > 64) {
    const auto d = Sha1::digest(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<u8, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<u8>(k[i] ^ 0x36);
    opad[i] = static_cast<u8>(k[i] ^ 0x5C);
  }
  Sha1 inner;
  inner.update(ipad);
  inner.update(message);
  const auto inner_digest = inner.finish();
  Sha1 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

void prf_sha1(std::span<const u8> secret, std::span<const u8> label,
              std::span<const u8> seed, std::span<u8> out) {
  std::size_t produced = 0;
  u8 counter = 0;
  while (produced < out.size()) {
    std::vector<u8> msg;
    msg.push_back(counter++);
    msg.insert(msg.end(), label.begin(), label.end());
    msg.insert(msg.end(), seed.begin(), seed.end());
    const auto block = hmac_sha1(secret, msg);
    const std::size_t take = std::min(block.size(), out.size() - produced);
    std::memcpy(out.data() + produced, block.data(), take);
    produced += take;
  }
}

}  // namespace rmc::crypto
