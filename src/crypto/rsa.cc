#include "crypto/rsa.h"

namespace rmc::crypto {

using common::ErrorCode;
using common::Result;
using common::Status;

RsaKeyPair rsa_generate(std::size_t bits, common::Xorshift64& rng) {
  const BigNum e(65537);
  while (true) {
    const BigNum p = BigNum::generate_prime(bits / 2, rng);
    const BigNum q = BigNum::generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    const BigNum n = p * q;
    const BigNum phi = (p - BigNum(1)) * (q - BigNum(1));
    if (BigNum::gcd(e, phi) != BigNum(1)) continue;
    auto d = BigNum::modinverse(e, phi);
    if (!d.ok()) continue;
    RsaKeyPair kp;
    kp.pub = RsaPublicKey{n, e};
    kp.priv = RsaPrivateKey{n, *d};
    return kp;
  }
}

Result<std::vector<u8>> rsa_encrypt(const RsaPublicKey& key,
                                    std::span<const u8> message,
                                    common::Xorshift64& rng) {
  const std::size_t k = key.modulus_bytes();
  if (message.size() + 11 > k) {
    return Status(ErrorCode::kInvalidArgument, "message too long for modulus");
  }
  // EB = 00 || 02 || nonzero-random-pad || 00 || message
  std::vector<u8> eb;
  eb.reserve(k);
  eb.push_back(0x00);
  eb.push_back(0x02);
  const std::size_t pad_len = k - 3 - message.size();
  for (std::size_t i = 0; i < pad_len; ++i) {
    u8 b = 0;
    while (b == 0) b = rng.next_u8();
    eb.push_back(b);
  }
  eb.push_back(0x00);
  eb.insert(eb.end(), message.begin(), message.end());

  const BigNum m = BigNum::from_bytes(eb);
  const BigNum c = m.modexp(key.e, key.n);
  return c.to_bytes_padded(k);
}

Result<std::vector<u8>> rsa_decrypt(const RsaPrivateKey& key,
                                    std::span<const u8> ciphertext) {
  const std::size_t k = key.modulus_bytes();
  if (ciphertext.size() != k) {
    return Status(ErrorCode::kInvalidArgument, "ciphertext length mismatch");
  }
  const BigNum c = BigNum::from_bytes(ciphertext);
  if (c >= key.n) {
    return Status(ErrorCode::kInvalidArgument, "ciphertext out of range");
  }
  const BigNum m = c.modexp(key.d, key.n);
  auto eb_r = m.to_bytes_padded(k);
  if (!eb_r.ok()) return eb_r.status();
  const std::vector<u8>& eb = *eb_r;
  if (eb.size() < 11 || eb[0] != 0x00 || eb[1] != 0x02) {
    return Status(ErrorCode::kDataLoss, "bad PKCS#1 block type");
  }
  std::size_t sep = 2;
  while (sep < eb.size() && eb[sep] != 0x00) ++sep;
  if (sep < 10 || sep == eb.size()) {
    return Status(ErrorCode::kDataLoss, "bad PKCS#1 padding");
  }
  return std::vector<u8>(eb.begin() + sep + 1, eb.end());
}

}  // namespace rmc::crypto
