// AES (Rijndael) — the cipher the paper ports (§2: "issl ... uses the RSA and
// AES cipher algorithms"; the embedded port keeps AES-128 only).
//
// Two independent implementations:
//  * `Aes` — the byte-oriented reference implementation (FIPS-197 structure:
//    SubBytes/ShiftRows/MixColumns/AddRoundKey). This is the "C port" shape,
//    and the model for dc/aes.dc.
//  * `AesFast` — the 32-bit T-table implementation typical of tuned C on
//    workstations. Used by the host-side issl build and by E8's primitive
//    comparison.
//
// Both support 128/192/256-bit keys (the paper: "issl supports key lengths of
// 128, 192, or 256 bits"); the embedded port pins 128 (see issl/config).
// S-boxes and T-tables are derived at startup from GF(2^8) arithmetic rather
// than transcribed constants; FIPS-197 known-answer tests pin correctness.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "common/bytes.h"
#include "common/status.h"

namespace rmc::crypto {

using common::u32;
using common::u8;

inline constexpr std::size_t kAesBlockBytes = 16;

enum class AesKeySize : unsigned {
  k128 = 16,
  k192 = 24,
  k256 = 32,
};

/// GF(2^8) helpers (exposed for tests and for the hand-assembly generator).
u8 gf_mul(u8 a, u8 b);
u8 aes_sbox(u8 x);
u8 aes_inv_sbox(u8 x);

/// Byte-oriented reference AES.
class Aes {
 public:
  /// Default-constructed instances hold an empty schedule and must not be
  /// used; obtain working instances from create().
  Aes() = default;

  /// Expands the key schedule. Fails on a key length that is not 16/24/32.
  static common::Result<Aes> create(std::span<const u8> key);

  void encrypt_block(std::span<const u8> in, std::span<u8> out) const;
  void decrypt_block(std::span<const u8> in, std::span<u8> out) const;

  unsigned rounds() const { return rounds_; }

 private:
  void expand_key(std::span<const u8> key);

  std::array<u8, 16 * 15> round_keys_{};  // up to Nr=14 -> 15 round keys
  unsigned rounds_ = 0;
};

/// T-table AES (encrypt side shares the schedule logic with `Aes`;
/// decryption uses the reference path since bulk TLS decryption shares the
/// same tables in practice and the benches only sweep encryption).
class AesFast {
 public:
  static common::Result<AesFast> create(std::span<const u8> key);

  void encrypt_block(std::span<const u8> in, std::span<u8> out) const;
  void decrypt_block(std::span<const u8> in, std::span<u8> out) const;

 private:
  AesFast() = default;

  std::array<u32, 4 * 15> enc_keys_{};  // round keys as big-endian words
  unsigned rounds_ = 0;
  Aes ref_;  // decrypt fallback + schedule source
};

}  // namespace rmc::crypto
