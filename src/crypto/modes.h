// Block-cipher modes used by the issl record layer: CBC with PKCS#7 padding
// (bulk records) and raw ECB (key-block derivation, tests).
#pragma once

#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace rmc::crypto {

/// PKCS#7: pad to a multiple of `block` (always appends 1..block bytes).
std::vector<u8> pkcs7_pad(std::span<const u8> data, std::size_t block);

/// Strip PKCS#7 padding; fails on malformed padding (wrong length byte or
/// inconsistent fill) — the error path a tampered record takes.
common::Result<std::vector<u8>> pkcs7_unpad(std::span<const u8> data,
                                            std::size_t block);

/// CBC encrypt with explicit IV; input length must be a block multiple
/// (combine with pkcs7_pad). Cipher may be Aes or AesFast.
template <typename Cipher>
std::vector<u8> cbc_encrypt(const Cipher& cipher, std::span<const u8> iv,
                            std::span<const u8> plaintext) {
  std::vector<u8> out(plaintext.size());
  u8 chain[kAesBlockBytes];
  for (std::size_t i = 0; i < kAesBlockBytes; ++i) chain[i] = iv[i];
  for (std::size_t off = 0; off + kAesBlockBytes <= plaintext.size();
       off += kAesBlockBytes) {
    u8 block[kAesBlockBytes];
    for (std::size_t i = 0; i < kAesBlockBytes; ++i) {
      block[i] = static_cast<u8>(plaintext[off + i] ^ chain[i]);
    }
    cipher.encrypt_block(block, std::span<u8>(out).subspan(off));
    for (std::size_t i = 0; i < kAesBlockBytes; ++i) chain[i] = out[off + i];
  }
  return out;
}

template <typename Cipher>
std::vector<u8> cbc_decrypt(const Cipher& cipher, std::span<const u8> iv,
                            std::span<const u8> ciphertext) {
  std::vector<u8> out(ciphertext.size());
  u8 chain[kAesBlockBytes];
  for (std::size_t i = 0; i < kAesBlockBytes; ++i) chain[i] = iv[i];
  for (std::size_t off = 0; off + kAesBlockBytes <= ciphertext.size();
       off += kAesBlockBytes) {
    u8 block[kAesBlockBytes];
    cipher.decrypt_block(ciphertext.subspan(off), block);
    for (std::size_t i = 0; i < kAesBlockBytes; ++i) {
      out[off + i] = static_cast<u8>(block[i] ^ chain[i]);
      chain[i] = ciphertext[off + i];
    }
  }
  return out;
}

/// ECB over whole buffers (length must be a block multiple).
template <typename Cipher>
std::vector<u8> ecb_encrypt(const Cipher& cipher, std::span<const u8> data) {
  std::vector<u8> out(data.size());
  for (std::size_t off = 0; off + kAesBlockBytes <= data.size();
       off += kAesBlockBytes) {
    cipher.encrypt_block(data.subspan(off), std::span<u8>(out).subspan(off));
  }
  return out;
}

}  // namespace rmc::crypto
