// Arbitrary-precision unsigned integers — the "difficult-to-port bignum
// package" of the paper (§2). The embedded port abandoned RSA because of it;
// we implement it so the Unix-side issl build has the full RSA key exchange,
// and so E6 can price what the port gave up.
//
// Representation: little-endian vector of 32-bit limbs, no leading zero
// limbs (zero is an empty vector). Operations are schoolbook; modexp is
// square-and-multiply. Performance is adequate for the <=1024-bit keys the
// tests and benches use.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/prng.h"
#include "common/status.h"

namespace rmc::crypto {

using common::u8;

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(common::u64 value);

  /// Big-endian byte import/export (network order, as key material travels).
  static BigNum from_bytes(std::span<const u8> be_bytes);
  std::vector<u8> to_bytes() const;
  /// Fixed-width export, left-padded with zeros; fails if the value needs
  /// more than `width` bytes.
  common::Result<std::vector<u8>> to_bytes_padded(std::size_t width) const;

  static common::Result<BigNum> from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  std::strong_ordering operator<=>(const BigNum& other) const;
  bool operator==(const BigNum& other) const = default;

  BigNum operator+(const BigNum& other) const;
  /// Subtraction requires *this >= other (asserts otherwise).
  BigNum operator-(const BigNum& other) const;
  BigNum operator*(const BigNum& other) const;
  BigNum operator<<(std::size_t bits) const;
  BigNum operator>>(std::size_t bits) const;

  struct DivMod;
  /// Fails on division by zero.
  common::Result<DivMod> divmod(const BigNum& divisor) const;
  BigNum mod(const BigNum& m) const;  // asserts m != 0

  /// (this ^ exponent) mod m. Asserts m != 0.
  BigNum modexp(const BigNum& exponent, const BigNum& m) const;

  static BigNum gcd(BigNum a, BigNum b);
  /// Modular inverse via extended Euclid; fails when gcd(a, m) != 1.
  static common::Result<BigNum> modinverse(const BigNum& a, const BigNum& m);

  /// Uniform random value with exactly `bits` bits (top bit set).
  static BigNum random_bits(std::size_t bits, common::Xorshift64& rng);
  /// Uniform in [0, bound).
  static BigNum random_below(const BigNum& bound, common::Xorshift64& rng);

  /// Miller-Rabin with `rounds` random bases.
  static bool is_probable_prime(const BigNum& n, common::Xorshift64& rng,
                                int rounds = 20);
  /// Random probable prime with exactly `bits` bits.
  static BigNum generate_prime(std::size_t bits, common::Xorshift64& rng);

  const std::vector<common::u32>& limbs() const { return limbs_; }

 private:
  void trim();
  std::vector<common::u32> limbs_;
};

struct BigNum::DivMod {
  BigNum quotient;
  BigNum remainder;
};

}  // namespace rmc::crypto
