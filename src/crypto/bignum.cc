#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>

namespace rmc::crypto {

using common::ErrorCode;
using common::Result;
using common::Status;
using common::u32;
using common::u64;

BigNum::BigNum(u64 value) {
  while (value) {
    limbs_.push_back(static_cast<u32>(value));
    value >>= 32;
  }
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(std::span<const u8> be) {
  BigNum n;
  for (u8 b : be) {
    n = (n << 8) + BigNum(b);
  }
  return n;
}

std::vector<u8> BigNum::to_bytes() const {
  if (is_zero()) return {0};
  std::vector<u8> out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int s = 24; s >= 0; s -= 8) {
      out.push_back(static_cast<u8>(limbs_[i] >> s));
    }
  }
  // Strip leading zeros.
  std::size_t lead = 0;
  while (lead + 1 < out.size() && out[lead] == 0) ++lead;
  out.erase(out.begin(), out.begin() + lead);
  return out;
}

Result<std::vector<u8>> BigNum::to_bytes_padded(std::size_t width) const {
  std::vector<u8> raw = to_bytes();
  if (raw.size() == 1 && raw[0] == 0) raw.clear();
  if (raw.size() > width) {
    return Status(ErrorCode::kOutOfRange, "value wider than requested pad");
  }
  std::vector<u8> out(width - raw.size(), 0);
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

Result<BigNum> BigNum::from_hex(std::string_view hex) {
  BigNum n;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else if (std::isspace(static_cast<unsigned char>(c))) continue;
    else return Status(ErrorCode::kInvalidArgument, "bad hex digit");
    n = (n << 4) + BigNum(static_cast<u64>(d));
  }
  return n;
}

std::string BigNum::to_hex() const {
  if (is_zero()) return "0";
  std::string out;
  char buf[16];
  std::snprintf(buf, sizeof buf, "%x", limbs_.back());
  out += buf;
  for (std::size_t i = limbs_.size() - 1; i-- > 0;) {
    std::snprintf(buf, sizeof buf, "%08x", limbs_[i]);
    out += buf;
  }
  return out;
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  u32 top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::strong_ordering BigNum::operator<=>(const BigNum& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() <=> other.limbs_.size();
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] <=> other.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigNum BigNum::operator+(const BigNum& other) const {
  BigNum out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    u64 sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < other.limbs_.size()) sum += other.limbs_[i];
    out.limbs_[i] = static_cast<u32>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<u32>(carry);
  out.trim();
  return out;
}

BigNum BigNum::operator-(const BigNum& other) const {
  assert(*this >= other && "BigNum subtraction underflow");
  BigNum out;
  out.limbs_.resize(limbs_.size(), 0);
  common::i64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    common::i64 diff = static_cast<common::i64>(limbs_[i]) - borrow;
    if (i < other.limbs_.size()) diff -= other.limbs_[i];
    if (diff < 0) {
      diff += (common::i64{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<u32>(diff);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator*(const BigNum& other) const {
  if (is_zero() || other.is_zero()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      u64 cur = static_cast<u64>(limbs_[i]) * other.limbs_[j] +
                out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<u32>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + other.limbs_.size()] += static_cast<u32>(carry);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 v = static_cast<u64>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<u32>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<u32>(v >> 32);
  }
  out.trim();
  return out;
}

BigNum BigNum::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigNum();
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    u64 v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<u64>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<u32>(v);
  }
  out.trim();
  return out;
}

Result<BigNum::DivMod> BigNum::divmod(const BigNum& divisor) const {
  if (divisor.is_zero()) {
    return Status(ErrorCode::kInvalidArgument, "division by zero");
  }
  DivMod dm;
  if (*this < divisor) {
    dm.remainder = *this;
    return dm;
  }
  // Binary long division.
  const std::size_t shift = bit_length() - divisor.bit_length();
  BigNum rem = *this;
  BigNum den = divisor << shift;
  std::vector<bool> qbits(shift + 1, false);
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (rem >= den) {
      rem = rem - den;
      qbits[i] = true;
    }
    den = den >> 1;
  }
  BigNum q;
  q.limbs_.assign((qbits.size() + 31) / 32, 0);
  for (std::size_t i = 0; i < qbits.size(); ++i) {
    if (qbits[i]) q.limbs_[i / 32] |= (1u << (i % 32));
  }
  q.trim();
  dm.quotient = std::move(q);
  dm.remainder = std::move(rem);
  return dm;
}

BigNum BigNum::mod(const BigNum& m) const {
  auto dm = divmod(m);
  assert(dm.ok());
  return std::move(dm->remainder);
}

BigNum BigNum::modexp(const BigNum& exponent, const BigNum& m) const {
  assert(!m.is_zero());
  BigNum base = mod(m);
  BigNum result(1);
  result = result.mod(m);
  const std::size_t nbits = exponent.bit_length();
  for (std::size_t i = nbits; i-- > 0;) {
    result = (result * result).mod(m);
    if (exponent.bit(i)) result = (result * base).mod(m);
  }
  return result;
}

BigNum BigNum::gcd(BigNum a, BigNum b) {
  while (!b.is_zero()) {
    BigNum r = a.mod(b);
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

Result<BigNum> BigNum::modinverse(const BigNum& a, const BigNum& m) {
  // Extended Euclid on non-negative values, tracking signs separately.
  BigNum old_r = a.mod(m), r = m;
  BigNum old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    auto dm = old_r.divmod(r);
    if (!dm.ok()) return dm.status();
    const BigNum& q = dm->quotient;
    // (old_r, r) = (r, old_r - q*r)
    BigNum new_r = dm->remainder;
    old_r = r;
    r = std::move(new_r);
    // (old_s, s) = (s, old_s - q*s) with sign tracking.
    BigNum qs = q * s;
    BigNum new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      // old_s - q*s where both share sign: may flip.
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (old_r != BigNum(1)) {
    return Status(ErrorCode::kInvalidArgument, "values not coprime");
  }
  if (old_s_neg) return m - old_s.mod(m);
  return old_s.mod(m);
}

BigNum BigNum::random_bits(std::size_t bits, common::Xorshift64& rng) {
  assert(bits > 0);
  BigNum n;
  n.limbs_.assign((bits + 31) / 32, 0);
  for (auto& l : n.limbs_) l = rng.next_u32();
  const std::size_t top_bit = (bits - 1) % 32;
  // Clear bits above the requested width; force the top bit.
  n.limbs_.back() &= (top_bit == 31) ? 0xFFFFFFFFu : ((1u << (top_bit + 1)) - 1);
  n.limbs_.back() |= (1u << top_bit);
  n.trim();
  return n;
}

BigNum BigNum::random_below(const BigNum& bound, common::Xorshift64& rng) {
  assert(!bound.is_zero());
  const std::size_t bits = bound.bit_length();
  while (true) {
    BigNum n;
    n.limbs_.assign((bits + 31) / 32, 0);
    for (auto& l : n.limbs_) l = rng.next_u32();
    const std::size_t excess = n.limbs_.size() * 32 - bits;
    if (excess && !n.limbs_.empty()) {
      n.limbs_.back() >>= excess;
    }
    n.trim();
    if (n < bound) return n;
  }
}

bool BigNum::is_probable_prime(const BigNum& n, common::Xorshift64& rng,
                               int rounds) {
  if (n < BigNum(2)) return false;
  for (u64 p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull,
                29ull, 31ull, 37ull}) {
    const BigNum bp(p);
    if (n == bp) return true;
    if (n.mod(bp).is_zero()) return false;
  }
  // n - 1 = d * 2^r
  const BigNum n_minus_1 = n - BigNum(1);
  BigNum d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  for (int round = 0; round < rounds; ++round) {
    const BigNum a = BigNum(2) + random_below(n - BigNum(4), rng);
    BigNum x = a.modexp(d, n);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x).mod(n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigNum BigNum::generate_prime(std::size_t bits, common::Xorshift64& rng) {
  while (true) {
    BigNum candidate = random_bits(bits, rng);
    if (!candidate.is_odd()) candidate = candidate + BigNum(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace rmc::crypto
