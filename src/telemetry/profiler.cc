#include "telemetry/profiler.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/json.h"

namespace rmc::telemetry {

namespace {

// The board's reset-time logical->physical convention (rabbit::Board::reset,
// rasm::board_logical_to_phys). Symbols at or above 0x10000 are already
// physical (xorg labels). Returns false for untranslatable values (logical
// addresses inside the XPC window have no fixed physical home).
bool symbol_to_phys(u32 value, u32& phys) {
  if (value >= 0x10000) {
    phys = value;
    return true;
  }
  if (value < 0x6000) {
    phys = value;
    return true;
  }
  if (value < 0xD000) {
    phys = value + 0x7A000;
    return true;
  }
  if (value < 0xE000) {
    phys = value + 0x81000;
    return true;
  }
  return false;
}

}  // namespace

void CycleProfiler::bind(const rabbit::Image& image) {
  regions_.clear();

  // Chunk extents, sorted, so regions can clamp to their own chunk.
  struct Extent {
    u32 lo, hi;
  };
  std::vector<Extent> chunks;
  chunks.reserve(image.chunks.size());
  for (const auto& c : image.chunks) {
    if (!c.bytes.empty()) {
      chunks.push_back({c.phys_addr,
                        c.phys_addr + static_cast<u32>(c.bytes.size())});
    }
  }
  std::sort(chunks.begin(), chunks.end(),
            [](const Extent& a, const Extent& b) { return a.lo < b.lo; });

  const std::vector<std::string>* names = &image.functions;
  std::vector<std::string> all_symbols;
  if (names->empty()) {
    for (const auto& [name, _] : image.symbols) all_symbols.push_back(name);
    names = &all_symbols;
  }

  for (const std::string& name : *names) {
    u32 value = 0;
    if (!image.find_symbol(name, value)) continue;
    u32 phys = 0;
    if (!symbol_to_phys(value, phys)) continue;
    auto it = std::find_if(chunks.begin(), chunks.end(), [&](const Extent& e) {
      return e.lo <= phys && phys < e.hi;
    });
    if (it == chunks.end()) continue;
    regions_.push_back(Region{name, phys, it->hi});
  }
  std::sort(regions_.begin(), regions_.end(),
            [](const Region& a, const Region& b) { return a.lo < b.lo; });
  // Truncate each region at the next region's start (regions in different
  // chunks are already disjoint; same-chunk neighbours partition the chunk).
  for (std::size_t i = 0; i + 1 < regions_.size(); ++i) {
    regions_[i].hi = std::min(regions_[i].hi, regions_[i + 1].lo);
  }

  for (Phase& p : phases_) {
    p.cycles.assign(regions_.size() + 1, 0);
    p.steps.assign(regions_.size() + 1, 0);
  }

  // Dense lookup table equivalent to region_index(): default everything to
  // "(other)", then paint each region's [lo, hi). Later regions win where a
  // zero-length predecessor shares its lo, exactly like upper_bound's
  // last-of-equals predecessor.
  std::fill(region_of_.begin(), region_of_.end(),
            static_cast<u16>(regions_.size()));
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const u32 lo = std::min(regions_[i].lo, rabbit::Memory::kPhysSize);
    const u32 hi = std::min(regions_[i].hi, rabbit::Memory::kPhysSize);
    std::fill(region_of_.begin() + lo, region_of_.begin() + hi,
              static_cast<u16>(i));
  }
  refresh_sink();
}

void CycleProfiler::set_phase(const std::string& name) {
  if (!phases_.empty() && phases_[active_phase_].name == name) return;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].name == name) {
      active_phase_ = i;
      refresh_sink();
      return;
    }
  }
  Phase p;
  p.name = name;
  p.cycles.assign(regions_.size() + 1, 0);
  p.steps.assign(regions_.size() + 1, 0);
  phases_.push_back(std::move(p));  // may reallocate: sink must repoint
  active_phase_ = phases_.size() - 1;
  refresh_sink();
}

std::size_t CycleProfiler::region_index(u32 phys_pc) const {
  // First region with lo > phys_pc; the candidate is its predecessor.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), phys_pc,
      [](u32 pc, const Region& r) { return pc < r.lo; });
  if (it != regions_.begin()) {
    const Region& r = *(it - 1);
    if (phys_pc < r.hi) {
      return static_cast<std::size_t>((it - 1) - regions_.begin());
    }
  }
  return regions_.size();  // "(other)"
}

void CycleProfiler::on_step(u16 /*pc*/, u32 phys_pc, unsigned cycles) {
  Phase& p = phases_[active_phase_];
  const std::size_t i = region_index(phys_pc);
  p.cycles[i] += cycles;
  p.steps[i] += 1;
}

u64 CycleProfiler::total_cycles() const {
  u64 total = 0;
  for (const Phase& p : phases_) {
    for (u64 c : p.cycles) total += c;
  }
  return total;
}

u64 CycleProfiler::phase_cycles(const std::string& name) const {
  for (const Phase& p : phases_) {
    if (p.name == name) {
      u64 total = 0;
      for (u64 c : p.cycles) total += c;
      return total;
    }
  }
  return 0;
}

std::vector<ProfileEntry> CycleProfiler::flat(const std::string& phase) const {
  std::vector<ProfileEntry> out;
  const std::size_t n = regions_.size() + 1;
  std::vector<u64> cycles(n, 0), steps(n, 0);
  for (const Phase& p : phases_) {
    if (!phase.empty() && p.name != phase) continue;
    for (std::size_t i = 0; i < n && i < p.cycles.size(); ++i) {
      cycles[i] += p.cycles[i];
      steps[i] += p.steps[i];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (cycles[i] == 0) continue;
    ProfileEntry e;
    if (i < regions_.size()) {
      e.name = regions_[i].name;
      e.phys_lo = regions_[i].lo;
      e.phys_hi = regions_[i].hi;
    } else {
      e.name = kOther;
    }
    e.cycles = cycles[i];
    e.steps = steps[i];
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const ProfileEntry& a,
                                       const ProfileEntry& b) {
    if (a.cycles != b.cycles) return a.cycles > b.cycles;
    return a.name < b.name;  // deterministic tie-break
  });
  return out;
}

std::vector<ProfileEntry> CycleProfiler::top(std::size_t n,
                                             const std::string& phase) const {
  std::vector<ProfileEntry> out = flat(phase);
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<std::string> CycleProfiler::phase_names() const {
  std::vector<std::string> names;
  names.reserve(phases_.size());
  for (const Phase& p : phases_) names.push_back(p.name);
  return names;
}

void CycleProfiler::reset_counts() {
  for (Phase& p : phases_) {
    std::fill(p.cycles.begin(), p.cycles.end(), 0);
    std::fill(p.steps.begin(), p.steps.end(), 0);
  }
}

std::string CycleProfiler::report(std::size_t top_n,
                                  const std::string& phase) const {
  const u64 total = phase.empty() ? total_cycles() : phase_cycles(phase);
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof buf, "%-20s %14s %8s %10s\n", "function",
                "cycles", "share", "steps");
  out += buf;
  for (const ProfileEntry& e : top(top_n, phase)) {
    std::snprintf(buf, sizeof buf, "%-20s %14llu %7.1f%% %10llu\n",
                  e.name.c_str(), static_cast<unsigned long long>(e.cycles),
                  total ? 100.0 * static_cast<double>(e.cycles) /
                              static_cast<double>(total)
                        : 0.0,
                  static_cast<unsigned long long>(e.steps));
    out += buf;
  }
  return out;
}

void CycleProfiler::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("total_cycles", total_cycles());
  w.key("phases");
  w.begin_object();
  for (const Phase& p : phases_) {
    u64 phase_total = 0;
    for (u64 c : p.cycles) phase_total += c;
    w.key(p.name);
    w.begin_object();
    w.kv("total_cycles", phase_total);
    w.key("regions");
    w.begin_object();
    for (std::size_t i = 0; i < p.cycles.size(); ++i) {
      if (p.cycles[i] == 0) continue;
      w.key(i < regions_.size() ? regions_[i].name : kOther);
      w.begin_object();
      w.kv("cycles", p.cycles[i]);
      w.kv("steps", p.steps[i]);
      w.end_object();
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace rmc::telemetry
