// Flight-recorder tracing: cross-layer causal event spans.
//
// The metrics layer (DESIGN.md §7) answers "how much"; this layer answers
// "in what order and why". Every layer of the stack — SimNet delivery, TCP
// state transitions and RTO fires, issl handshake stages, redirector slot
// lifecycle, board boots and faults — emits fixed-size binary TraceEvents
// into one global, deterministically ordered buffer. Events are correlated
// by a *connection id* derived from the normalized TCP 4-tuple, so both
// directions of one connection (and every layer touching it) share an id:
// one grep of a trace reconstructs a connection end-to-end.
//
// Design rules (DESIGN.md §11):
//   * zero cost when off: every emission site is guarded by one inline bool
//     load; with RMC_TELEMETRY=OFF the emit paths compile to nothing;
//   * passive by construction: enabling tracing draws no PRNG values and
//     registers no metrics instruments, so every seeded bench produces
//     byte-identical BENCH_*.json whether tracing is on or off;
//   * deterministic: timestamps are the medium's virtual clock and buffer
//     order is emission order, so a fixed seed yields a byte-identical
//     Chrome trace and pcap (scripts/check.sh gates on exactly that);
//   * telemetry stays leaf-level: the pcap writer takes scalar header
//     fields, not net::Segment, so rmc_telemetry never depends on rmc_net.
//
// Exporters: chrome_trace_json() writes Chrome trace-event JSON
// (chrome://tracing / Perfetto, one track per layer per connection, derived
// "X" spans for connections and handshakes) and the Tracer's pcap capture
// writes a real libpcap file (Ethernet/IPv4/TCP-UDP-ICMP with valid
// checksums — opens in Wireshark/tcpdump). audit_trace() checks the
// completeness invariants E12 enforces.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"

#ifndef RMC_TELEMETRY_ENABLED
#define RMC_TELEMETRY_ENABLED 1
#endif

namespace rmc::telemetry {

using common::u16;
using common::u32;
using common::u64;
using common::u8;

class FlightRecorder;
class JsonWriter;

/// Layer that emitted an event (one trace track per layer per connection).
enum class TraceLayer : u8 {
  kNet = 0,      // SimNet medium: transmissions, deliveries, fault drops
  kTcp = 1,      // TcpStack: state transitions, RTO fires, give-ups
  kIssl = 2,     // issl sessions: handshake stages, alerts
  kService = 3,  // redirector: handler-slot lifecycle, shed, watchdog
  kBoard = 4,    // supervisor: boots and faults
  kSlo = 5,      // SLO engine: alert fire/clear transitions
};
inline constexpr std::size_t kTraceLayers = 6;

// Event ids, per layer. Payload word conventions are noted per event; `a`
// and `b` are free 32-bit words.
struct NetTrace {
  enum : u8 {
    kSend = 0,     // a = (protocol<<8)|flags, b = payload bytes
    kDeliver = 1,  // a = (protocol<<8)|flags, b = payload bytes
    kDropLoss = 2,
    kDropNoHost = 3,
    kDropPartition = 4,
    kCorrupt = 5,    // b = payload bytes
    kDuplicate = 6,
  };
};
struct TcpTrace {
  enum : u8 {
    kState = 0,       // a = from TcpState, b = to TcpState
    kRetransmit = 1,  // a = consecutive retx count, b = current rto_ms
    kGiveUp = 2,      // retransmission exhaustion -> RST
    kSynDrop = 3,     // backlog-full SYN drop; a = listening port
  };
};
struct IsslTrace {
  enum : u8 {
    kHello = 0,        // a = role (0 client / 1 server), b = id offered
    kKeyExchange = 1,  // a = role
    kResumed = 2,      // abbreviated path taken; a = role
    kFinished = 3,     // Finished sent; a = role
    kEstablished = 4,  // a = role, b = resumed flag
    kFailed = 5,       // a = role, b = common::ErrorCode
    kAlertSent = 6,    // a = role, b = alert code
    kAlertRecv = 7,    // a = role, b = alert code
  };
};
struct ServiceTrace {
  enum : u8 {
    kSlotOpen = 0,       // a = handler slot
    kSlotClose = 1,      // a = handler slot, b = 1 when aborted (RST)
    kShed = 2,           // refused at the ceiling
    kWatchdogAbort = 3,  // a = handler slot
    kHsTimeout = 4,      // a = handler slot
  };
};
struct BoardTrace {
  enum : u8 {
    kBoot = 0,   // a = boot count, b = last FaultKind
    kFault = 1,  // a = FaultKind, b = active sessions dropped
  };
};
struct SloTrace {
  enum : u8 {
    kFire = 0,   // a = rule index, b = observed value (rule-specific scaling)
    kClear = 1,  // a = rule index, b = observed value at clear time
  };
};

const char* trace_layer_name(TraceLayer layer);
const char* trace_event_name(TraceLayer layer, u8 event);

/// One fixed-size binary trace event (24 bytes, trivially copyable — the
/// flight-recorder ring stores these raw in battery SRAM).
struct TraceEvent {
  u64 t_ms = 0;  // virtual time (the medium's clock)
  u32 conn = 0;  // connection id (trace_conn_id); 0 = no connection context
  u32 a = 0;
  u32 b = 0;
  u8 layer = 0;
  u8 event = 0;
  u16 reserved = 0;  // explicit padding, always zero

  friend bool operator==(const TraceEvent& x, const TraceEvent& y) {
    return x.t_ms == y.t_ms && x.conn == y.conn && x.a == y.a && x.b == y.b &&
           x.layer == y.layer && x.event == y.event;
  }
};
static_assert(sizeof(TraceEvent) == 24, "flight-recorder slot layout");

/// Connection id from a TCP/UDP 4-tuple. Orderless — both directions of a
/// connection map to the same id — and deterministic across runs (a fixed
/// splitmix-style hash, no process state). Never returns 0 (reserved for
/// "no connection").
u32 trace_conn_id(u32 ip_a, u16 port_a, u32 ip_b, u16 port_b);

/// Process-wide event sink. Disabled by default; enabling it costs each
/// emission site one bool load. All state is explicit so benches can run
/// traced and untraced scenarios back to back.
class Tracer {
 public:
  static Tracer& global();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Virtual clock, advanced by SimNet::tick. Emissions between ticks carry
  /// the latest value.
  void set_now_ms(u64 t) { now_ms_ = t; }
  u64 now_ms() const { return now_ms_; }

  void emit(TraceLayer layer, u8 event, u32 conn, u32 a = 0, u32 b = 0) {
#if RMC_TELEMETRY_ENABLED
    if (!enabled_) return;
    TraceEvent e;
    e.t_ms = now_ms_;
    e.conn = conn;
    e.a = a;
    e.b = b;
    e.layer = static_cast<u8>(layer);
    e.event = event;
    events_.push_back(e);
    if (ring_ != nullptr) ring_record(e);
#else
    (void)layer; (void)event; (void)conn; (void)a; (void)b;
#endif
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Drop buffered events and pcap bytes (scenario isolation); the enabled
  /// flags, clock, and ring attachment are left alone.
  void clear();

  /// Attach the battery-SRAM flight recorder: every emitted event is also
  /// recorded into the ring. One ring at a time; null detaches.
  void attach_ring(FlightRecorder* ring) { ring_ = ring; }
  FlightRecorder* ring() const { return ring_; }

  // --- pcap capture (SimNet wire bytes) ------------------------------------
  /// Capture only happens while both the tracer and this flag are on.
  void set_pcap_capture(bool on) { pcap_on_ = on; }
  bool pcap_capture() const { return enabled_ && pcap_on_; }

  /// Append one packet record (timestamped with the virtual clock). The
  /// fields mirror net::Segment but stay scalar so telemetry never depends
  /// on net. `flags` are the sim's TCP flag bits (net::TcpFlags), mapped to
  /// real TCP header flags on the way out; for ICMP it is the type.
  void pcap_packet(u32 src_ip, u16 src_port, u32 dst_ip, u16 dst_port,
                   u8 protocol, u32 seq, u32 ack, u8 flags,
                   std::span<const u8> payload);

  u64 pcap_packets() const { return pcap_packets_; }
  /// Complete file image: 24-byte libpcap global header + packet records.
  std::vector<u8> pcap_file_bytes() const;

 private:
  void ring_record(const TraceEvent& e);  // out-of-line (needs flightrec.h)

  bool enabled_ = false;
  bool pcap_on_ = false;
  u64 now_ms_ = 0;
  std::vector<TraceEvent> events_;
  FlightRecorder* ring_ = nullptr;
  std::vector<u8> pcap_;  // packet records only (no global header)
  u64 pcap_packets_ = 0;
};

// ---------------------------------------------------------------------------
// Completeness audit (the E12 invariants)
// ---------------------------------------------------------------------------

/// Per-connection reconstruction. Handshake spans are tracked per role
/// (index 0 = client, 1 = server) because both endpoints of a connection
/// emit under the same conn id.
struct TraceConnAudit {
  struct HsSpan {
    bool started = false;
    bool ended = false;  // established or failed
    bool ok = false;     // established
    bool resumed = false;
    std::size_t start_index = 0;
    std::size_t end_index = 0;
    u64 start_ms = 0;
    u64 end_ms = 0;
  };

  u32 conn = 0;
  std::size_t first_index = 0;        // first event seen for this conn
  bool established = false;           // some side entered ESTABLISHED
  bool terminated = false;            // terminal tcp event after establish
  bool has_terminal = false;          // any CLOSED/TIME_WAIT transition
  std::size_t last_establish_index = 0;
  std::size_t last_terminal_index = 0;
  u64 open_ms = 0;
  u64 close_ms = 0;
  HsSpan hs[2];
};

struct TraceAudit {
  std::vector<TraceConnAudit> conns;  // ascending conn id
  u64 established_connections = 0;
  u64 handshakes_completed = 0;
  u64 handshakes_resumed = 0;
  /// Reached ESTABLISHED but no terminal close/reset followed — a half-open
  /// connection the trace cannot account for.
  u64 orphan_connections = 0;
  /// Handshake span started but neither completed, failed, nor excused by a
  /// TCP terminal event after its start (the board-died-mid-handshake case
  /// is excused: the peer's RST/give-up terminal covers it).
  u64 orphan_handshakes = 0;
  /// A completed handshake span that escapes its connection's lifetime.
  u64 nesting_violations = 0;

  bool clean() const {
    return orphan_connections == 0 && orphan_handshakes == 0 &&
           nesting_violations == 0;
  }
};

TraceAudit audit_trace(std::span<const TraceEvent> events);

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev):
/// pid = connection, tid = layer, instant events per TraceEvent plus derived
/// "X" spans for connection lifetimes and completed handshakes.
/// Byte-deterministic for a given event sequence.
std::string chrome_trace_json(std::span<const TraceEvent> events);

/// The traceEvents array *contents* (metadata + instants + derived spans),
/// emitted into an already-open array. Composition point for exporters that
/// append extra tracks — the timeseries Sampler adds "ph":"C" counter events
/// after this body so one file carries both the event stream and the curves.
void chrome_trace_body(JsonWriter& w, std::span<const TraceEvent> events);

bool write_chrome_trace(const std::string& path,
                        std::span<const TraceEvent> events);

/// Binary (no trailing newline) sibling of telemetry::write_file.
bool write_binary_file(const std::string& path, std::span<const u8> bytes);

}  // namespace rmc::telemetry
