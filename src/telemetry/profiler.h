// Cycle-attribution profiler for the simulated RMC2000.
//
// The board's CPU core exposes only a total cycle count; the paper's E1-E3
// arguments ("the assembly ran 10-15x faster", "optimization knobs buy
// ~20%") are really claims about *where* cycles go — key schedule vs
// rounds vs the xmem bank dance. CycleProfiler answers that: it consumes
// the rabbit::Cpu per-instruction observer hook together with the function
// symbol map the assembler/compiler record in the image (Image::functions)
// and attributes every observed cycle to a function/PC-range region.
//
// Accounting is exact by construction: the observer sees every cycle the
// CPU counts (instructions, interrupt dispatch, halted idle ticks), every
// cycle lands in exactly one region (or the synthetic "(other)" region for
// PC ranges outside any known function — crt0 vectors, the call-sentinel
// HALT), so total_cycles() reconciles against the CPU's own counter with no
// remainder. bench_aes_asm_vs_c asserts this.
//
// Phases slice the same attribution by workload stage ("init", "keyexp",
// "encrypt", ...): call set_phase() between stages and each region's cycles
// are kept per phase. This is what turns E1's single number into the
// paper-style breakdown.
//
// Overhead contract: attaching the profiler never perturbs the simulation —
// the observer is passive, and with it detached the CPU's cycle stream is
// bit-identical to a build without the hook (asserted by tests).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "rabbit/cpu.h"
#include "rabbit/image.h"

namespace rmc::telemetry {

using common::u16;
using common::u32;
using common::u64;

class JsonWriter;

/// One attribution region: a function's PC range with its cycle share.
struct ProfileEntry {
  std::string name;
  u32 phys_lo = 0;   // inclusive
  u32 phys_hi = 0;   // exclusive; phys_lo == phys_hi for "(other)"
  u64 cycles = 0;
  u64 steps = 0;     // observer callbacks (≈ instructions retired)
};

class CycleProfiler : public rabbit::CpuObserver {
 public:
  /// Name of the synthetic catch-all region.
  static constexpr const char* kOther = "(other)";

  CycleProfiler() { set_phase("init"); }

  /// Build attribution regions from the image's function symbol map (all
  /// symbols when the image declares no functions). Symbol values below
  /// 0x10000 are logical and translated with the board's reset-time segment
  /// convention; larger values are physical xmem addresses already. Each
  /// region extends to the next function start within the same chunk, else
  /// to its chunk's end. Clears any previously bound regions and collected
  /// cycles.
  void bind(const rabbit::Image& image);

  /// Direct attachment helper: bind(image) then cpu.set_observer(this).
  void attach(rabbit::Cpu& cpu, const rabbit::Image& image) {
    bind(image);
    cpu.set_observer(this);
  }

  /// Switch the active phase; creates it on first use. Cheap (no-op when the
  /// name is already active, index scan otherwise) but not meant for the
  /// per-instruction path.
  void set_phase(const std::string& name);
  const std::string& phase() const { return phases_[active_phase_].name; }

  // rabbit::CpuObserver
  void on_step(u16 pc, u32 phys_pc, unsigned cycles) override;

  /// Fast attribution channel: a dense phys->region table plus raw pointers
  /// into the active phase's accumulators. The CPU turns each step into two
  /// indexed adds instead of a virtual call and a region search; bind() and
  /// set_phase() repoint the sink so it always targets the active phase.
  /// Attribution through the sink is bit-identical to on_step().
  const rabbit::StepSink* step_sink() const override { return &sink_; }

  /// Every cycle observed since bind() across all phases; equals the CPU's
  /// cycle-counter delta over the attachment window, exactly.
  u64 total_cycles() const;
  u64 phase_cycles(const std::string& name) const;

  /// Regions with nonzero cycles, most expensive first. Empty `phase` merges
  /// all phases. The "(other)" catch-all appears like any region.
  std::vector<ProfileEntry> flat(const std::string& phase = {}) const;
  /// First `n` of flat(phase).
  std::vector<ProfileEntry> top(std::size_t n,
                                const std::string& phase = {}) const;

  std::vector<std::string> phase_names() const;

  /// Zero collected cycles; keeps regions and phases.
  void reset_counts();

  /// Printable flat report (name, cycles, share) — the bench tables' "where
  /// the gap lives" section.
  std::string report(std::size_t top_n = 10,
                     const std::string& phase = {}) const;

  /// {"total_cycles":N,"phases":{"keyexp":{"total":N,"regions":{...}},...}}
  void write_json(JsonWriter& w) const;

 private:
  struct Region {
    std::string name;
    u32 lo = 0;
    u32 hi = 0;
  };
  struct Phase {
    std::string name;
    std::vector<u64> cycles;  // indexed like regions_; back() = "(other)"
    std::vector<u64> steps;
  };

  std::size_t region_index(u32 phys_pc) const;

  /// Retarget sink_ at region_of_ and the active phase's accumulators. Must
  /// run after anything that can move them: bind() reassigns the vectors,
  /// set_phase() switches phases and may reallocate phases_.
  void refresh_sink() {
    sink_.region_of = region_of_.data();
    sink_.cycles = phases_[active_phase_].cycles.data();
    sink_.steps = phases_[active_phase_].steps.data();
  }

  std::vector<Region> regions_;     // sorted by lo, non-overlapping
  std::vector<Phase> phases_;
  std::size_t active_phase_ = 0;
  /// Dense phys -> region index; regions_.size() (= "(other)") elsewhere.
  /// Before bind() every entry is 0, which is "(other)" while regions_ is
  /// empty, so the sink is valid from construction on.
  std::vector<u16> region_of_ =
      std::vector<u16>(rabbit::Memory::kPhysSize, 0);
  rabbit::StepSink sink_;
};

}  // namespace rmc::telemetry
