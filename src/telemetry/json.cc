#include "telemetry/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace rmc::telemetry {

void JsonWriter::open(char opener, char closer) {
  comma_for_value();
  out_ += opener;
  stack_.push_back(Frame{closer, true, opener == '{'});
}

void JsonWriter::close(char closer) {
  assert(!stack_.empty() && stack_.back().closer == closer &&
         "mismatched end_object/end_array");
  assert(!key_pending_ && "dangling key before close");
  if (!stack_.empty() && stack_.back().closer == closer) {
    stack_.pop_back();
    out_ += closer;
  }
}

void JsonWriter::key(std::string_view name) {
  assert(!stack_.empty() && stack_.back().in_object && "key outside object");
  assert(!key_pending_ && "two keys in a row");
  if (!stack_.empty()) {
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
  }
  out_ += '"';
  append_escaped(name);
  out_ += "\":";
  key_pending_ = true;
}

void JsonWriter::comma_for_value() {
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    assert(!stack_.back().in_object && "object value requires a key");
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
  }
}

void JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  append_escaped(s);
  out_ += '"';
}

void JsonWriter::value(bool b) {
  comma_for_value();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(double d) {
  comma_for_value();
  if (!std::isfinite(d)) {
    out_ += "null";  // JSON has no inf/nan
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", d);
  out_ += buf;
}

void JsonWriter::value(common::u64 v) {
  comma_for_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(common::i64 v) {
  comma_for_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::null() {
  comma_for_value();
  out_ += "null";
}

void JsonWriter::append_escaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
}

bool write_file(const std::string& path, std::string_view text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.put('\n');
  return static_cast<bool>(out);
}

}  // namespace rmc::telemetry
