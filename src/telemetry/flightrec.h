// Flight recorder: the black box in battery SRAM.
//
// A bounded ring of the last kFlightRecorderCapacity TraceEvents. The
// supervisor owns one inside its BatteryFile, so — like the RingLog — it is
// battery-backed *by ownership*: the BatteryFile outlives warm resets, and
// the ring's contents survive WDT bites and power cuts without any commit
// protocol. It is deliberately NOT a DurableVar: a per-event two-slot
// commit would add named power-trip sites to every traced scenario and
// perturb the seeded fault schedules PR 3's benches pin down. The ring is
// append-only with a single writer, so the worst a mid-append power cut can
// lose is the event being written — exactly the semantics of a real
// battery-backed trace buffer.
//
// Storage is the trivially-copyable FlightRecorderData so the supervisor
// can snapshot/compare it raw; ~2.3 KB for the default 96-slot ring, small
// enough for the RMC2000's battery-backed SRAM budget.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace rmc::telemetry {

inline constexpr std::size_t kFlightRecorderCapacity = 96;

struct FlightRecorderData {
  u32 head = 0;     // next slot to write
  u32 wrapped = 0;  // ring has lapped at least once
  u64 total = 0;    // events ever recorded (monotonic across resets)
  TraceEvent events[kFlightRecorderCapacity];
};
static_assert(std::is_trivially_copyable_v<FlightRecorderData>);

class FlightRecorder {
 public:
  void record(const TraceEvent& e);

  /// Events currently retained (<= capacity).
  std::size_t size() const;
  /// Events ever recorded, including overwritten ones.
  u64 total() const { return data_.total; }
  bool empty() const { return data_.total == 0; }

  /// Retained tail, oldest first — by construction the last size() events
  /// of the full trace, in emission order.
  std::vector<TraceEvent> tail() const;

  /// Human-readable dump of the tail (one "trace ..." line per event),
  /// what the supervisor appends to a postmortem.
  std::vector<std::string> tail_lines() const;

  void clear() { data_ = FlightRecorderData{}; }

  const FlightRecorderData& data() const { return data_; }

 private:
  FlightRecorderData data_;
};

/// One postmortem line for an event: "trace t=<ms> conn=<hex> <layer>.<event>
/// a=<a> b=<b>". Shared by tail_lines() and the exporter tests.
std::string format_trace_event(const TraceEvent& e);

}  // namespace rmc::telemetry
