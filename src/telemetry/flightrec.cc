#include "telemetry/flightrec.h"

#include <cstdio>

namespace rmc::telemetry {

void FlightRecorder::record(const TraceEvent& e) {
  data_.events[data_.head] = e;
  data_.head = (data_.head + 1) % kFlightRecorderCapacity;
  if (data_.head == 0) data_.wrapped = 1;
  ++data_.total;
}

std::size_t FlightRecorder::size() const {
  return data_.wrapped != 0 ? kFlightRecorderCapacity : data_.head;
}

std::vector<TraceEvent> FlightRecorder::tail() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::size_t start =
      data_.wrapped != 0 ? data_.head : 0;  // oldest retained slot
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(data_.events[(start + i) % kFlightRecorderCapacity]);
  }
  return out;
}

std::vector<std::string> FlightRecorder::tail_lines() const {
  std::vector<std::string> lines;
  for (const TraceEvent& e : tail()) lines.push_back(format_trace_event(e));
  return lines;
}

std::string format_trace_event(const TraceEvent& e) {
  const auto layer = static_cast<TraceLayer>(e.layer);
  char buf[128];
  std::snprintf(buf, sizeof buf, "trace t=%llu conn=%08x %s.%s a=%u b=%u",
                static_cast<unsigned long long>(e.t_ms), e.conn,
                trace_layer_name(layer), trace_event_name(layer, e.event), e.a,
                e.b);
  return buf;
}

}  // namespace rmc::telemetry
