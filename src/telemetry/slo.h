// SLO rules over sampled time series: the "when did it break" layer.
//
// E10/E15 prove the service survives faults; what no run-total can show is
// how long users saw degraded service and whether the degradation cleared.
// The SloEngine evaluates declarative rules against the Sampler's windows at
// every sample tick and keeps a fire/clear alert timeline, so a postmortem
// lines alerts up against the injected fault schedule (E17 gates exactly
// that alignment).
//
// Rule kinds, the classic serving trio:
//   * kAvailability — good/(good+bad) over the last `window` periods must
//     stay >= availability_floor;
//   * kLatency — windowed quantile of a histogram series must stay
//     <= ceiling (the p99 handshake-latency ceiling in E17);
//   * kBurnRate — Google-SRE multi-window burn rate: bad/(good+bad) divided
//     by the error budget (1 - target) must exceed `threshold` in BOTH the
//     short and the long window to fire. The short window makes alerts fast,
//     the long window keeps one bad sample from paging.
//
// Alert semantics: a rule fires on the first judged breach and stays firing
// until `clear_after` consecutive judged-good evaluations (hold-down, so an
// oscillating signal does not flap). Windows with fewer than `min_events`
// events are not judged at all — silence is not evidence of health, and an
// idle service must not clear (or fire) an alert.
//
// Every transition is appended to the alert log and — when tracing is on —
// emitted as a TraceLayer::kSlo event into the PR 5 flight recorder and
// trace stream. Like the tracer, the engine is passive: evaluation reads
// the sampler, never the workload.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "telemetry/timeseries.h"

namespace rmc::telemetry {

enum class SloKind : u8 {
  kAvailability = 0,
  kLatency = 1,
  kBurnRate = 2,
};

struct SloRule {
  std::string name;
  SloKind kind = SloKind::kAvailability;

  // kAvailability / kBurnRate inputs: two counter series.
  std::string good_counter;
  std::string bad_counter;

  // kAvailability.
  double availability_floor = 0.999;
  std::size_t window = 10;  // sample periods (also the kLatency window)

  // kLatency.
  std::string histogram;
  double quantile = 99.0;
  double ceiling = 0.0;  // same unit as the histogram (virtual cycles here)

  // kBurnRate.
  double target = 0.999;     // SLO target; error budget = 1 - target
  double threshold = 2.0;    // fire when burn >= threshold in both windows
  std::size_t short_window = 5;
  std::size_t long_window = 30;

  // Shared.
  u64 min_events = 1;         // don't judge windows with fewer events
  std::size_t clear_after = 3;  // consecutive good evaluations to clear
};

/// One fire or clear transition. `value` is the observed signal at the
/// transition: availability ratio, latency in the histogram's unit, or
/// long-window burn rate.
struct SloAlert {
  std::size_t rule = 0;
  bool fire = false;
  u64 t_ms = 0;
  double value = 0.0;
};

class SloEngine {
 public:
  explicit SloEngine(const Sampler& sampler) : sampler_(&sampler) {}

  std::size_t add_rule(SloRule r);
  std::size_t rule_count() const { return rules_.size(); }
  const SloRule& rule(std::size_t i) const { return rules_[i]; }

  /// Evaluate every rule against the sampler's current windows; call after
  /// each sampler tick. Transitions are logged (and traced when tracing is
  /// enabled) with timestamp `now_ms`.
  void evaluate(u64 now_ms);

  bool firing(std::size_t rule) const { return states_[rule].firing; }
  const std::vector<SloAlert>& alerts() const { return alerts_; }
  u64 evaluations() const { return evaluations_; }

  /// {"rules":[...],"alerts":[...]} — the "slo" section of BENCH JSON.
  void write_json(JsonWriter& w) const;

 private:
  struct State {
    bool firing = false;
    std::size_t good_streak = 0;
  };
  // Returns the observed value; sets `judged` (enough events to have an
  // opinion) and `breach`.
  double observe(const SloRule& r, bool& judged, bool& breach) const;

  const Sampler* sampler_;
  std::vector<SloRule> rules_;
  std::vector<State> states_;
  std::vector<SloAlert> alerts_;
  u64 evaluations_ = 0;
};

}  // namespace rmc::telemetry
