#include "telemetry/slo.h"

#include <limits>

#include "telemetry/json.h"
#include "telemetry/trace.h"

namespace rmc::telemetry {

namespace {

const char* kind_name(SloKind k) {
  switch (k) {
    case SloKind::kAvailability: return "availability";
    case SloKind::kLatency: return "latency";
    case SloKind::kBurnRate: return "burn_rate";
  }
  return "?";
}

// Trace payload word: ratios scale poorly into u32 as-is, so carry
// millionths (availability 0.9993 -> 999300; burn 2.5 -> 2500000); latency
// values are already integral cycles and clamp.
u32 scaled(double v) {
  const double s = v < 1000.0 ? v * 1e6 : v;
  if (s >= static_cast<double>(std::numeric_limits<u32>::max())) {
    return std::numeric_limits<u32>::max();
  }
  return s <= 0.0 ? 0 : static_cast<u32>(s);
}

}  // namespace

std::size_t SloEngine::add_rule(SloRule r) {
  rules_.push_back(std::move(r));
  states_.emplace_back();
  return rules_.size() - 1;
}

double SloEngine::observe(const SloRule& r, bool& judged,
                          bool& breach) const {
  judged = false;
  breach = false;
  switch (r.kind) {
    case SloKind::kAvailability: {
      const u64 good = sampler_->window_counter_sum(r.good_counter, r.window);
      const u64 bad = sampler_->window_counter_sum(r.bad_counter, r.window);
      const u64 total = good + bad;
      if (total < r.min_events) return 1.0;
      judged = true;
      const double avail =
          static_cast<double>(good) / static_cast<double>(total);
      breach = avail < r.availability_floor;
      return avail;
    }
    case SloKind::kLatency: {
      const u64 n = sampler_->window_histogram_count(r.histogram, r.window);
      if (n < r.min_events) return 0.0;
      judged = true;
      const double v =
          sampler_->window_percentile(r.histogram, r.window, r.quantile);
      breach = v > r.ceiling;
      return v;
    }
    case SloKind::kBurnRate: {
      const double budget = 1.0 - r.target;
      if (budget <= 0.0) return 0.0;
      const auto burn = [&](std::size_t window, u64& total) {
        const u64 good =
            sampler_->window_counter_sum(r.good_counter, window);
        const u64 bad = sampler_->window_counter_sum(r.bad_counter, window);
        total = good + bad;
        if (total == 0) return 0.0;
        const double ratio =
            static_cast<double>(bad) / static_cast<double>(total);
        return ratio / budget;
      };
      u64 short_total = 0, long_total = 0;
      const double short_burn = burn(r.short_window, short_total);
      const double long_burn = burn(r.long_window, long_total);
      if (long_total < r.min_events) return long_burn;
      judged = true;
      breach = short_burn >= r.threshold && long_burn >= r.threshold;
      return long_burn;
    }
  }
  return 0.0;
}

void SloEngine::evaluate(u64 now_ms) {
  ++evaluations_;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    State& st = states_[i];
    bool judged = false, breach = false;
    const double value = observe(r, judged, breach);
    if (!judged) continue;  // silence is not evidence either way
    if (breach) {
      st.good_streak = 0;
      if (!st.firing) {
        st.firing = true;
        alerts_.push_back({i, true, now_ms, value});
        Tracer::global().emit(TraceLayer::kSlo, SloTrace::kFire, 0,
                              static_cast<u32>(i), scaled(value));
      }
    } else if (st.firing) {
      if (++st.good_streak >= r.clear_after) {
        st.firing = false;
        st.good_streak = 0;
        alerts_.push_back({i, false, now_ms, value});
        Tracer::global().emit(TraceLayer::kSlo, SloTrace::kClear, 0,
                              static_cast<u32>(i), scaled(value));
      }
    }
  }
}

void SloEngine::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("evaluations", evaluations_);
  w.key("rules");
  w.begin_array();
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    w.begin_object();
    w.kv("name", r.name);
    w.kv("kind", kind_name(r.kind));
    w.kv("firing", states_[i].firing);
    w.end_object();
  }
  w.end_array();
  w.key("alerts");
  w.begin_array();
  for (const SloAlert& a : alerts_) {
    w.begin_object();
    w.kv("rule", rules_[a.rule].name);
    w.kv("event", a.fire ? "fire" : "clear");
    w.kv("t_ms", a.t_ms);
    w.kv("value", a.value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace rmc::telemetry
