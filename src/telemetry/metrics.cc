#include "telemetry/metrics.h"

#include "telemetry/json.h"

namespace rmc::telemetry {

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min_);
  if (p >= 100.0) return static_cast<double>(max_);
  // Rank of the requested percentile within the recorded population.
  const double target = p / 100.0 * static_cast<double>(count_);
  u64 cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const u64 c = counts_[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      // Interpolate inside this bucket. The recorded min/max bound the
      // outermost edges: bucket bounds say only "<= bounds_[i]", and the
      // overflow bucket has no upper bound at all.
      double lo = i == 0 ? static_cast<double>(min_)
                         : static_cast<double>(bounds_[i - 1]);
      double hi = i < bounds_.size() ? static_cast<double>(bounds_[i])
                                     : static_cast<double>(max_);
      if (lo < static_cast<double>(min_)) lo = static_cast<double>(min_);
      if (hi > static_cast<double>(max_)) hi = static_cast<double>(max_);
      if (hi < lo) hi = lo;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return static_cast<double>(max_);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  ++name_lookups_;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  ++name_lookups_;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const u64> bounds) {
  ++name_lookups_;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name), bounds))
             .first;
  }
  return *it->second;
}

const Counter* Registry::find_counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::reset() {
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name);
    w.begin_object();
    w.kv("value", g->value());
    w.kv("max", g->max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("min", h->min());
    w.kv("max", h->max());
    w.key("bounds");
    w.begin_array();
    for (u64 b : h->bounds()) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (u64 c : h->counts()) w.value(c);
    w.end_array();
    // Running totals alongside the per-bucket counts: offline percentile
    // recomputation needs ranks, and re-deriving them from a truncated or
    // partially parsed counts array is lossy. The last entry equals "count".
    w.key("cum_counts");
    w.begin_array();
    u64 cum = 0;
    for (u64 c : h->counts()) {
      cum += c;
      w.value(cum);
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

}  // namespace rmc::telemetry
