#include "telemetry/timeseries.h"

#include <cmath>
#include <cstdio>

#include "telemetry/json.h"

namespace rmc::telemetry {

namespace {

// Interpolated percentile over one window's bucket deltas. Unlike
// Histogram::percentile() there is no windowed min/max, so bucket 0 starts
// at 0 and the overflow bucket ends at `overflow_hi` (the instrument's
// lifetime max — the tightest deterministic upper edge available).
double bucket_percentile(std::span<const u64> bounds,
                         std::span<const u64> counts, u64 overflow_hi,
                         double q) {
  u64 total = 0;
  for (u64 c : counts) total += c;
  if (total == 0) return 0.0;
  if (q <= 0.0) q = 0.0;
  if (q >= 100.0) q = 100.0;
  const double target = q / 100.0 * static_cast<double>(total);
  u64 cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const u64 c = counts[i];
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= target) {
      const double lo = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      double hi = i < bounds.size() ? static_cast<double>(bounds[i])
                                    : static_cast<double>(overflow_hi);
      if (hi < lo) hi = lo;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return static_cast<double>(overflow_hi);
}

// %.6g matches JsonWriter::value(double), so CSV and JSON agree on the same
// sample's text.
void append_value(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void ring_points(std::vector<Sampler::Point>& out, const auto& ring,
                 std::size_t cap) {
  out.reserve(ring.size);
  for (std::size_t i = 0; i < ring.size; ++i) out.push_back(ring.at(i, cap));
}

}  // namespace

void Sampler::sample(u64 now_ms) {
  scrape(now_ms);
  ++samples_;
  last_sample_ms_ = now_ms;
  // Realign to the next period boundary strictly after now_ms: one sample
  // per call even if the clock jumped several periods.
  if (next_due_ms_ <= now_ms) {
    const u64 behind = (now_ms - next_due_ms_) / cfg_.period_ms + 1;
    next_due_ms_ += behind * cfg_.period_ms;
  }
}

void Sampler::scrape(u64 t_ms) {
  const std::size_t cap = cfg_.ring_capacity;
  reg_->for_each_counter([&](const std::string& name, const Counter& c) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(name, CounterSeries{}).first;
      it->second.src = &c;
    }
    CounterSeries& s = it->second;
    const u64 now = c.value();
    // Benches reset() the registry between scenarios; treat a backwards
    // step as a fresh baseline rather than a garbage delta.
    const u64 delta = now >= s.prev ? now - s.prev : now;
    s.prev = now;
    s.ring.push({t_ms, static_cast<double>(delta)}, cap);
  });
  reg_->for_each_gauge([&](const std::string& name, const Gauge& g) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(name, GaugeSeries{}).first;
      it->second.src = &g;
    }
    it->second.ring.push({t_ms, static_cast<double>(g.value())}, cap);
  });
  reg_->for_each_histogram([&](const std::string& name, const Histogram& h) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      it = hists_.emplace(name, HistSeries{}).first;
      it->second.src = &h;
      it->second.prev_counts.assign(h.counts().size(), 0);
      it->second.bucket_deltas.assign(cap * h.counts().size(), 0);
    }
    HistSeries& s = it->second;
    const std::span<const u64> counts = h.counts();
    const std::size_t slot = s.ring.head;  // push() writes here next
    u64* row = s.bucket_deltas.data() + slot * s.prev_counts.size();
    const bool reset = h.count() < s.prev_count;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      row[i] = reset ? counts[i] : counts[i] - s.prev_counts[i];
      s.prev_counts[i] = counts[i];
    }
    const u64 delta = reset ? h.count() : h.count() - s.prev_count;
    s.prev_count = h.count();
    s.ring.push({t_ms, static_cast<double>(delta)}, cap);
  });
}

std::size_t Sampler::series_count() const {
  return counters_.size() + gauges_.size() + hists_.size();
}

std::size_t Sampler::memory_bytes() const {
  std::size_t total = 0;
  const auto ring_bytes = [](const Ring& r) {
    return r.pts.capacity() * sizeof(Point);
  };
  for (const auto& [name, s] : counters_) {
    total += name.size() + sizeof(CounterSeries) + ring_bytes(s.ring);
  }
  for (const auto& [name, s] : gauges_) {
    total += name.size() + sizeof(GaugeSeries) + ring_bytes(s.ring);
  }
  for (const auto& [name, s] : hists_) {
    total += name.size() + sizeof(HistSeries) + ring_bytes(s.ring) +
             (s.prev_counts.capacity() + s.bucket_deltas.capacity()) *
                 sizeof(u64);
  }
  return total;
}

std::vector<Sampler::Point> Sampler::points(std::string_view name) const {
  std::vector<Point> out;
  if (auto it = counters_.find(name); it != counters_.end()) {
    ring_points(out, it->second.ring, cfg_.ring_capacity);
  } else if (auto g = gauges_.find(name); g != gauges_.end()) {
    ring_points(out, g->second.ring, cfg_.ring_capacity);
  }
  return out;
}

std::vector<Sampler::Point> Sampler::histogram_count_points(
    std::string_view name) const {
  std::vector<Point> out;
  if (const HistSeries* h = find_hist(name)) {
    ring_points(out, h->ring, cfg_.ring_capacity);
  }
  return out;
}

u64 Sampler::window_counter_sum(std::string_view name,
                                std::size_t periods) const {
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  const Ring& r = it->second.ring;
  u64 sum = 0;
  const std::size_t n = periods < r.size ? periods : r.size;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<u64>(r.at(r.size - 1 - i, cfg_.ring_capacity).value);
  }
  return sum;
}

const Sampler::HistSeries* Sampler::find_hist(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

std::span<const u64> Sampler::hist_row(const HistSeries& h,
                                       std::size_t slot) const {
  const std::size_t buckets = h.prev_counts.size();
  return {h.bucket_deltas.data() + slot * buckets, buckets};
}

u64 Sampler::window_histogram_count(std::string_view name,
                                    std::size_t periods) const {
  const HistSeries* h = find_hist(name);
  if (h == nullptr) return 0;
  u64 sum = 0;
  const std::size_t n = periods < h->ring.size ? periods : h->ring.size;
  for (std::size_t i = 0; i < n; ++i) {
    sum += static_cast<u64>(
        h->ring.at(h->ring.size - 1 - i, cfg_.ring_capacity).value);
  }
  return sum;
}

double Sampler::hist_window_percentile(const HistSeries& h,
                                       std::size_t periods, double q) const {
  const std::size_t cap = cfg_.ring_capacity;
  const std::size_t buckets = h.prev_counts.size();
  std::vector<u64> window(buckets, 0);
  const std::size_t n = periods < h.ring.size ? periods : h.ring.size;
  for (std::size_t i = 0; i < n; ++i) {
    // Recover the physical slot of logical index (size - 1 - i).
    const std::size_t logical = h.ring.size - 1 - i;
    const std::size_t slot = (h.ring.head + cap - h.ring.size + logical) % cap;
    const std::span<const u64> row = hist_row(h, slot);
    for (std::size_t b = 0; b < buckets; ++b) window[b] += row[b];
  }
  return bucket_percentile(h.src->bounds(), window, h.src->max(), q);
}

double Sampler::window_percentile(std::string_view name, std::size_t periods,
                                  double q) const {
  const HistSeries* h = find_hist(name);
  if (h == nullptr || h->src == nullptr) return 0.0;
  return hist_window_percentile(*h, periods, q);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

namespace {

void write_points(JsonWriter& w, const char* key,
                  const std::vector<Sampler::Point>& pts) {
  w.key(key);
  w.begin_array();
  for (const Sampler::Point& p : pts) {
    w.begin_array();
    w.value(p.t_ms);
    w.value(p.value);
    w.end_array();
  }
  w.end_array();
}

}  // namespace

void Sampler::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("period_ms", cfg_.period_ms);
  w.kv("ring_capacity", static_cast<u64>(cfg_.ring_capacity));
  w.kv("samples", samples_);
  w.key("series");
  w.begin_object();
  for (const auto& [name, s] : counters_) {
    w.key(name);
    w.begin_object();
    w.kv("kind", "counter");
    write_points(w, "points", points(name));
    w.end_object();
  }
  for (const auto& [name, s] : gauges_) {
    w.key(name);
    w.begin_object();
    w.kv("kind", "gauge");
    write_points(w, "points", points(name));
    w.end_object();
  }
  for (const auto& [name, s] : hists_) {
    w.key(name);
    w.begin_object();
    w.kv("kind", "histogram");
    write_points(w, "count_points", histogram_count_points(name));
    // Per-period percentiles from that period's bucket deltas alone.
    for (const auto& [key, q] :
         {std::pair<const char*, double>{"p50_points", 50.0},
          std::pair<const char*, double>{"p99_points", 99.0}}) {
      w.key(key);
      w.begin_array();
      for (std::size_t i = 0; i < s.ring.size; ++i) {
        const Point& p = s.ring.at(i, cfg_.ring_capacity);
        const std::size_t slot =
            (s.ring.head + cfg_.ring_capacity - s.ring.size + i) %
            cfg_.ring_capacity;
        std::vector<u64> row(hist_row(s, slot).begin(),
                             hist_row(s, slot).end());
        w.begin_array();
        w.value(p.t_ms);
        w.value(bucket_percentile(s.src->bounds(), row, s.src->max(), q));
        w.end_array();
      }
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Sampler::csv() const {
  std::string out = "series,t_ms,value\n";
  const auto row = [&out](std::string_view series, u64 t, double v) {
    out += series;
    out += ',';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(t));
    out += buf;
    out += ',';
    append_value(out, v);
    out += '\n';
  };
  for (const auto& [name, s] : counters_) {
    for (std::size_t i = 0; i < s.ring.size; ++i) {
      const Point& p = s.ring.at(i, cfg_.ring_capacity);
      row(name, p.t_ms, p.value);
    }
  }
  for (const auto& [name, s] : gauges_) {
    for (std::size_t i = 0; i < s.ring.size; ++i) {
      const Point& p = s.ring.at(i, cfg_.ring_capacity);
      row(name, p.t_ms, p.value);
    }
  }
  for (const auto& [name, s] : hists_) {
    for (std::size_t i = 0; i < s.ring.size; ++i) {
      const Point& p = s.ring.at(i, cfg_.ring_capacity);
      const std::size_t slot =
          (s.ring.head + cfg_.ring_capacity - s.ring.size + i) %
          cfg_.ring_capacity;
      std::vector<u64> buckets(hist_row(s, slot).begin(),
                               hist_row(s, slot).end());
      row(name + ".count", p.t_ms, p.value);
      row(name + ".p50", p.t_ms,
          bucket_percentile(s.src->bounds(), buckets, s.src->max(), 50.0));
      row(name + ".p99", p.t_ms,
          bucket_percentile(s.src->bounds(), buckets, s.src->max(), 99.0));
    }
  }
  return out;
}

std::string Sampler::chrome_trace_json(
    std::span<const TraceEvent> events) const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  chrome_trace_body(w, events);
  // Counter tracks on pid 0 ("global"): one "ph":"C" event per sample.
  const auto counter_event = [&w](std::string_view name, u64 t_ms, double v) {
    w.begin_object();
    w.kv("name", name);
    w.kv("ph", "C");
    w.kv("ts", t_ms * 1000);
    w.kv("pid", 0);
    w.kv("tid", 0);
    w.key("args");
    w.begin_object();
    w.kv("value", v);
    w.end_object();
    w.end_object();
  };
  for (const auto& [name, s] : counters_) {
    for (std::size_t i = 0; i < s.ring.size; ++i) {
      const Point& p = s.ring.at(i, cfg_.ring_capacity);
      counter_event(name, p.t_ms, p.value);
    }
  }
  for (const auto& [name, s] : gauges_) {
    for (std::size_t i = 0; i < s.ring.size; ++i) {
      const Point& p = s.ring.at(i, cfg_.ring_capacity);
      counter_event(name, p.t_ms, p.value);
    }
  }
  for (const auto& [name, s] : hists_) {
    for (std::size_t i = 0; i < s.ring.size; ++i) {
      const Point& p = s.ring.at(i, cfg_.ring_capacity);
      const std::size_t slot =
          (s.ring.head + cfg_.ring_capacity - s.ring.size + i) %
          cfg_.ring_capacity;
      std::vector<u64> buckets(hist_row(s, slot).begin(),
                               hist_row(s, slot).end());
      counter_event(name + ".count", p.t_ms, p.value);
      counter_event(
          name + ".p99", p.t_ms,
          bucket_percentile(s.src->bounds(), buckets, s.src->max(), 99.0));
    }
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

}  // namespace rmc::telemetry
