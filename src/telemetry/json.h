// Minimal streaming JSON writer for bench exports and metric dumps.
//
// The repo's benches must emit a *stable machine-readable schema*
// (BENCH_E1.json, ...) that future PRs diff against; hand-rolled printf JSON
// rots the moment someone adds a field. This writer produces deterministic,
// valid JSON (proper escaping, no trailing commas, fixed number formatting)
// with no dependencies — the embedded-flavoured answer to pulling in a JSON
// library the container doesn't have.
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.kv("bench", "E1");
//   w.key("results"); w.begin_object(); ... w.end_object();
//   w.end_object();
//   std::string text = w.str();
//
// Misuse (value without a key inside an object, unbalanced end_*) is caught
// by assert in debug builds; the writer never throws.
#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

namespace rmc::telemetry {

class JsonWriter {
 public:
  void begin_object() { open('{', '}'); }
  void end_object() { close('}'); }
  void begin_array() { open('[', ']'); }
  void end_array() { close(']'); }

  /// Write an object key; the next value/begin_* supplies its value.
  void key(std::string_view name);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b);
  void value(double d);
  void value(common::u64 v);
  void value(common::i64 v);
  void value(int v) { value(static_cast<common::i64>(v)); }
  void value(unsigned v) { value(static_cast<common::u64>(v)); }
  void null();

  template <typename T>
  void kv(std::string_view name, T v) {
    key(name);
    value(v);
  }

  /// Finished document. Asserts all begin_* were closed.
  const std::string& str() const {
    assert(stack_.empty() && "unbalanced begin/end");
    return out_;
  }

  bool balanced() const { return stack_.empty(); }

 private:
  struct Frame {
    char closer;
    bool first = true;
    bool in_object;
  };

  void open(char opener, char closer);
  void close(char closer);
  void comma_for_value();
  void append_escaped(std::string_view s);

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
};

/// Write `text` to `path` (truncating). Returns false on I/O failure.
bool write_file(const std::string& path, std::string_view text);

}  // namespace rmc::telemetry
