// Virtual-time metrics sampler: run-total counters become curves.
//
// Every number the benches reported before this module was a run total —
// fine for "how many handshakes", useless for "when did the service degrade
// and when did it recover". The Sampler scrapes the metrics Registry on a
// configurable virtual-ms period and keeps, per instrument, a *bounded* ring
// of per-period points:
//
//   counters    -> per-period deltas (a rate curve when divided by period)
//   gauges      -> the sampled value
//   histograms  -> per-period count delta + per-period bucket-count deltas,
//                  so windowed percentiles (p50/p99 over the last N periods)
//                  can be computed after the fact — the SLO engine's latency
//                  ceiling and every E17 tail-latency curve come from these.
//
// Design rules, matching the rest of the telemetry layer:
//   * passive: sampling only reads instruments; it never creates them, never
//     draws PRNG values, and never perturbs the workload — a sampler-off run
//     is byte-identical to one that never constructed a Sampler (check.sh's
//     baseline gate and E17 gate (c) both pin this);
//   * bounded: ring capacity is fixed at construction; memory_bytes() reports
//     the retained footprint and E17 gates it against the configured budget;
//   * deterministic: scrape order is the registry's name order, timestamps
//     are the caller's virtual clock, and ring wraparound is pure arithmetic
//     — a fixed seed yields byte-identical JSON/CSV/trace exports;
//   * compile-out-able: under RMC_TELEMETRY_ENABLED=0 the registry is empty,
//     so the sampler scrapes nothing and exports empty sections.
//
// Driving it: call tick(now_ms) from any per-virtual-ms loop — ServiceBoard
// ticks an attached sampler in poll(), rabbit::Fleet from its barrier hook —
// and it samples only when a full period has elapsed.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rmc::telemetry {

struct SamplerConfig {
  u64 period_ms = 100;            // virtual ms between samples
  std::size_t ring_capacity = 600;  // points retained per series
};

class Sampler {
 public:
  /// One retained sample: virtual time and the per-period value (delta for
  /// counters and histogram counts, level for gauges).
  struct Point {
    u64 t_ms = 0;
    double value = 0.0;
  };

  explicit Sampler(SamplerConfig cfg = {},
                   const Registry& reg = Registry::global())
      : cfg_(cfg), reg_(&reg), next_due_ms_(cfg.period_ms) {
    if (cfg_.period_ms == 0) cfg_.period_ms = 1;
    if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  }

  const SamplerConfig& config() const { return cfg_; }

  /// Sample if a full period has elapsed; cheap no-op otherwise. When the
  /// virtual clock jumps several periods at once (a wedged board), exactly
  /// one sample is taken and the schedule realigns to the next period
  /// boundary after `now_ms` — deltas then cover the whole gap.
  bool tick(u64 now_ms) {
    if (now_ms < next_due_ms_) return false;
    sample(now_ms);
    return true;
  }

  /// Unconditional scrape at `now_ms` (benches force a final sample so the
  /// tail of the run is never lost to period alignment).
  void sample(u64 now_ms);

  u64 samples() const { return samples_; }
  u64 last_sample_ms() const { return last_sample_ms_; }
  std::size_t series_count() const;

  /// Bytes retained by rings and per-series bookkeeping (keys included).
  /// Grows only when a *new* instrument first appears, never per sample —
  /// E17 gates this against the configured budget.
  std::size_t memory_bytes() const;

  // --- series access (SLO engine, tests) -----------------------------------

  /// Points of a counter/gauge series in time order; empty when unknown.
  std::vector<Point> points(std::string_view name) const;
  /// Per-period histogram count deltas in time order; empty when unknown.
  std::vector<Point> histogram_count_points(std::string_view name) const;

  /// Sum of the last `periods` per-period deltas of a counter series.
  u64 window_counter_sum(std::string_view name, std::size_t periods) const;
  /// Recorded-value count over the last `periods` of a histogram series.
  u64 window_histogram_count(std::string_view name,
                             std::size_t periods) const;
  /// Interpolated percentile over the last `periods` bucket-delta rows of a
  /// histogram series (0 when no values landed in the window). The overflow
  /// bucket's upper edge is the instrument's lifetime max.
  double window_percentile(std::string_view name, std::size_t periods,
                           double q) const;

  // --- exporters (all byte-deterministic) ----------------------------------

  /// {"period_ms":..,"ring_capacity":..,"samples":..,"series":{...}} — the
  /// "timeseries" section of the BENCH_*.json schema.
  void write_json(JsonWriter& w) const;

  /// "series,t_ms,value\n" rows, series in name order then time order.
  /// Histograms contribute "<name>.count" / ".p50" / ".p99" series (the
  /// percentiles are per-period, from that period's bucket deltas).
  std::string csv() const;

  /// Chrome trace-event JSON: the standard event body (chrome_trace_body)
  /// plus one "ph":"C" counter track per series on pid 0, so Perfetto
  /// renders the curves above the event stream.
  std::string chrome_trace_json(std::span<const TraceEvent> events) const;

 private:
  // Fixed-capacity ring; wraparound overwrites the oldest point in place.
  struct Ring {
    std::vector<Point> pts;  // resized to capacity on first push
    std::size_t head = 0;    // next write slot
    std::size_t size = 0;

    void push(const Point& p, std::size_t cap) {
      if (pts.size() < cap) pts.resize(cap);
      pts[head] = p;
      head = (head + 1) % cap;
      if (size < cap) ++size;
    }
    // i = 0 is the oldest retained point.
    const Point& at(std::size_t i, std::size_t cap) const {
      return pts[(head + cap - size + i) % cap];
    }
  };

  struct CounterSeries {
    const Counter* src = nullptr;
    u64 prev = 0;
    Ring ring;
  };
  struct GaugeSeries {
    const Gauge* src = nullptr;
    Ring ring;
  };
  struct HistSeries {
    const Histogram* src = nullptr;
    u64 prev_count = 0;
    std::vector<u64> prev_counts;   // bucket snapshot at the previous sample
    Ring ring;                      // Point.value = per-period count delta
    std::vector<u64> bucket_deltas;  // capacity * buckets, row i <-> slot i
  };

  const HistSeries* find_hist(std::string_view name) const;
  // Bucket-delta row paired with ring slot `slot`.
  std::span<const u64> hist_row(const HistSeries& h, std::size_t slot) const;
  double hist_window_percentile(const HistSeries& h, std::size_t periods,
                                double q) const;
  void scrape(u64 t_ms);

  SamplerConfig cfg_;
  const Registry* reg_;
  u64 next_due_ms_ = 0;
  u64 samples_ = 0;
  u64 last_sample_ms_ = 0;
  std::map<std::string, CounterSeries, std::less<>> counters_;
  std::map<std::string, GaugeSeries, std::less<>> gauges_;
  std::map<std::string, HistSeries, std::less<>> hists_;
};

}  // namespace rmc::telemetry
