// Telemetry metrics core: a process-wide registry of named instruments.
//
// The paper's whole evaluation is a cycle-accounting argument, and the
// ROADMAP's north star ("as fast as the hardware allows") needs every
// optimization PR to prove itself with numbers. Before this module each
// bench hand-rolled counters and the stack had none; now any layer can do
//
//   static telemetry::Counter& drops =
//       telemetry::Registry::global().counter("simnet.segments_dropped");
//   ...
//   drops.add();
//
// and every bench's --json export carries the whole registry.
//
// Design rules (DESIGN.md "Telemetry & profiling"):
//   * zero allocation on the hot path — instruments are created once at
//     first use (function-local static reference); add()/set()/record() are
//     inline integer ops on preallocated storage;
//   * instruments are never destroyed and references stay stable for the
//     process lifetime (node-based storage in the registry);
//   * single-threaded by design, like the simulated board and every harness
//     in this repo — no atomics, no locks;
//   * compiled out via -DRMC_TELEMETRY_ENABLED=0 (CMake option
//     RMC_TELEMETRY=OFF): recording becomes a no-op and exports are empty,
//     but all call sites still compile.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"

#ifndef RMC_TELEMETRY_ENABLED
#define RMC_TELEMETRY_ENABLED 1
#endif

namespace rmc::telemetry {

using common::i64;
using common::u64;

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(u64 n = 1) {
#if RMC_TELEMETRY_ENABLED
    value_ += n;
#else
    (void)n;
#endif
  }
  u64 value() const { return value_; }
  void reset() { value_ = 0; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  u64 value_ = 0;
};

/// Last-written value plus the high-water mark (set() keeps the max seen —
/// the xalloc arena and the costatement scheduler both report occupancy this
/// way).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name))  {}

  void set(i64 v) {
#if RMC_TELEMETRY_ENABLED
    value_ = v;
    if (v > max_) max_ = v;
#else
    (void)v;
#endif
  }
  i64 value() const { return value_; }
  i64 max() const { return max_; }
  void reset() { value_ = 0; max_ = 0; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  i64 value_ = 0;
  i64 max_ = 0;
};

/// Fixed-bucket histogram: bucket i counts values <= bounds[i]; one implicit
/// overflow bucket counts the rest. Bounds are set at creation and never
/// reallocated, so record() is allocation-free.
class Histogram {
 public:
  Histogram(std::string name, std::span<const u64> bounds)
      : name_(std::move(name)),
        bounds_(bounds.begin(), bounds.end()),
        counts_(bounds.size() + 1, 0) {}

  void record(u64 v) {
#if RMC_TELEMETRY_ENABLED
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
#else
    (void)v;
#endif
  }

  u64 count() const { return count_; }
  u64 sum() const { return sum_; }
  u64 min() const { return count_ ? min_ : 0; }
  u64 max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  std::span<const u64> bounds() const { return bounds_; }
  /// counts()[i] pairs with bounds()[i]; the final entry is the overflow
  /// bucket.
  std::span<const u64> counts() const { return counts_; }

  /// Bucket-interpolated percentile, `p` in [0, 100] (p50/p90/p99/p99.9 in
  /// the benches). The value is linearly interpolated inside the bucket that
  /// holds the target rank, using the recorded min/max as the outermost
  /// edges (bucket 0 starts at min(); the overflow bucket ends at max()),
  /// and is always clamped into [min(), max()] so a sparse histogram never
  /// reports a value it could not have seen. An empty histogram returns 0.
  double percentile(double p) const;

  void reset() {
    count_ = sum_ = min_ = max_ = 0;
    for (u64& c : counts_) c = 0;
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<u64> bounds_;
  std::vector<u64> counts_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = 0;
  u64 max_ = 0;
};

/// Process-wide instrument registry. Lookup by name creates on first use and
/// returns a stable reference thereafter; the intended idiom at a hot call
/// site is a function-local `static Type& x = Registry::global().counter(..)`
/// so the map lookup happens exactly once.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is consulted only on first creation; later lookups of the same
  /// name return the existing instrument unchanged.
  Histogram& histogram(std::string_view name, std::span<const u64> bounds);

  /// Total by-name resolutions (counter()/gauge()/histogram() calls) since
  /// process start. Hot loops must pin handles via function-local statics,
  /// so this figure stops moving once every site has warmed up — the
  /// regression test in test_trace.cc asserts exactly that. Not exported to
  /// JSON (it is a property of the instrumentation, not the workload).
  u64 name_lookups() const { return name_lookups_; }

  /// nullptr when the instrument does not exist (tests, exports).
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Read-only visitation in name order (std::map), so scrapers that walk
  /// the registry — the timeseries Sampler — see a deterministic sequence.
  /// Visitors must not create instruments (that would invalidate iteration).
  template <class F>
  void for_each_counter(F&& f) const {
    for (const auto& [name, c] : counters_) f(name, *c);
  }
  template <class F>
  void for_each_gauge(F&& f) const {
    for (const auto& [name, g] : gauges_) f(name, *g);
  }
  template <class F>
  void for_each_histogram(F&& f) const {
    for (const auto& [name, h] : histograms_) f(name, *h);
  }

  /// Zero every instrument (benches isolate runs this way). Instruments are
  /// not destroyed; references stay valid.
  void reset();

  std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Emit {"counters":{...},"gauges":{...},"histograms":{...}} — sorted by
  /// name (std::map order), so output is deterministic and diffable.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

 private:
  // std::map + unique_ptr: node-based, references never invalidate.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  u64 name_lookups_ = 0;
};

/// Scoped wall-clock timer: records elapsed *microseconds* into a histogram
/// on destruction. For host-side phases (compiles, whole-bench stages);
/// simulated-target time is cycle-counted by CycleProfiler instead.
class Span {
 public:
  explicit Span(Histogram& h)
      : hist_(&h), start_(std::chrono::steady_clock::now()) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (hist_ != nullptr) hist_->record(elapsed_us());
  }

  /// Microseconds since construction (also what ~Span records).
  u64 elapsed_us() const {
    const auto d = std::chrono::steady_clock::now() - start_;
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }

  /// Record now and detach (the destructor then does nothing).
  void stop() {
    if (hist_ != nullptr) hist_->record(elapsed_us());
    hist_ = nullptr;
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rmc::telemetry
